#!/usr/bin/env python3
"""Gate CI on the Clang static analyzer's findings, against a baseline.

`scan-build -plist -o <dir>` drops one .plist file per analyzed TU. This
script walks those files, fingerprints every diagnostic, and compares the set
with the checked-in baseline (tools/scan-build-baseline.txt):

  * a finding whose fingerprint is NOT in the baseline fails the build — fix
    it, or (for a justified false positive) re-run with --update-baseline and
    commit the new baseline together with a comment explaining the entry;
  * baseline entries that no longer occur are reported as stale (a warning,
    not a failure: fingerprints can drift across clang releases).

A fingerprint is `issue_hash_content_of_line_in_context` (clang's
whitespace/line-shift-insensitive hash) plus the checker name and the
repo-relative file, so entries survive unrelated edits but do not hide a
second instance of the same defect elsewhere.

Usage:
  tools/check_scan_build.py <plist-output-dir> [--update-baseline]

Exits 0 when every finding is baselined, 1 on new findings, 2 on usage or
parse errors. Stdlib only (plistlib).
"""

import argparse
import os
import plistlib
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "tools", "scan-build-baseline.txt")


def iter_plists(root):
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".plist"):
                yield os.path.join(dirpath, name)


def rel_source(path):
    path = os.path.abspath(path)
    try:
        return os.path.relpath(path, REPO_ROOT)
    except ValueError:
        return path


def collect_findings(plist_dir):
    """-> {fingerprint: human description}, parse errors raise SystemExit."""
    findings = {}
    n_files = 0
    for path in iter_plists(plist_dir):
        n_files += 1
        try:
            with open(path, "rb") as fh:
                doc = plistlib.load(fh)
        except Exception as exc:  # noqa: BLE001 - any parse failure gates
            print("check_scan_build: cannot parse %s: %s" % (path, exc),
                  file=sys.stderr)
            raise SystemExit(2)
        files = doc.get("files", [])
        for diag in doc.get("diagnostics", []):
            loc = diag.get("location", {})
            file_idx = loc.get("file", -1)
            src = files[file_idx] if 0 <= file_idx < len(files) else "<unknown>"
            src = rel_source(src)
            issue_hash = diag.get(
                "issue_hash_content_of_line_in_context", "<no-hash>")
            checker = diag.get("check_name", diag.get("category", "<checker>"))
            fingerprint = "%s %s %s" % (checker, src, issue_hash)
            findings[fingerprint] = "%s:%s: [%s] %s" % (
                src, loc.get("line", "?"), checker,
                diag.get("description", "<no description>"))
    print("check_scan_build: %d plist file(s), %d finding(s)"
          % (n_files, len(findings)))
    return findings


def load_baseline():
    entries = set()
    if os.path.exists(BASELINE):
        with open(BASELINE, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line and not line.startswith("#"):
                    entries.add(line)
    return entries


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare scan-build plist output with the baseline.")
    parser.add_argument("plist_dir", help="scan-build -plist -o output dir")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite tools/scan-build-baseline.txt with the "
                             "current finding set instead of failing")
    opts = parser.parse_args(argv)

    if not os.path.isdir(opts.plist_dir):
        print("check_scan_build: no such directory: " + opts.plist_dir,
              file=sys.stderr)
        return 2

    findings = collect_findings(opts.plist_dir)
    baseline = load_baseline()

    if opts.update_baseline:
        with open(BASELINE, "w", encoding="utf-8") as fh:
            fh.write("# Clang static analyzer baseline "
                     "(tools/check_scan_build.py).\n"
                     "# One fingerprint per line: <checker> <file> "
                     "<issue-hash>. Comment every entry you add.\n")
            for fingerprint in sorted(findings):
                fh.write("# " + findings[fingerprint] + "\n")
                fh.write(fingerprint + "\n")
        print("check_scan_build: wrote %d entr%s to %s"
              % (len(findings), "y" if len(findings) == 1 else "ies",
                 os.path.relpath(BASELINE, REPO_ROOT)))
        return 0

    new = sorted(fp for fp in findings if fp not in baseline)
    stale = sorted(fp for fp in baseline if fp not in findings)

    for fingerprint in stale:
        print("check_scan_build: stale baseline entry (fixed? clang hash "
              "drift?): " + fingerprint)
    if new:
        print("check_scan_build: %d new finding(s) not in the baseline:"
              % len(new), file=sys.stderr)
        for fingerprint in new:
            print("  " + findings[fingerprint], file=sys.stderr)
            print("    fingerprint: " + fingerprint, file=sys.stderr)
        print("fix the findings, or baseline justified false positives with\n"
              "  tools/check_scan_build.py %s --update-baseline"
              % opts.plist_dir, file=sys.stderr)
        return 1

    print("check_scan_build: clean against baseline (%d entr%s)"
          % (len(baseline), "y" if len(baseline) == 1 else "ies"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
