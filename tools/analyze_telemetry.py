#!/usr/bin/env python3
"""Analyzer / CI gate for the live-serving telemetry stream.

Dependency-free (stdlib json only). Reads either

  * BENCH_telemetry.json — the run_server_bench document whose
    telemetry_pass.snapshots[] embed flattened snapshot rows, or
  * a raw .jsonl stream as written by util::TelemetrySnapshotter (one
    insertion-ordered record {seq, wall_ms, counters, gauges,
    window_quantiles} per line), e.g. telemetry_serve.jsonl from the bench
    or the file passed to `extdict_cli serve --telemetry`.

Default mode prints a human timeline: one row per snapshot with the gauge
levels, the windowed/cumulative latency quantiles, and the reconciliation
residual, plus a closing summary.

--check mode is the CI gate. It fails (exit 1) when

  * seq is not a contiguous 0-based sequence or wall_ms runs backwards,
  * any snapshot's reconciliation residual — (queue_depth + inflight)
    minus (accepted - served - encode_failures - shed - discarded) —
    exceeds the tolerance (embedded in the BENCH document, or --tolerance
    for raw streams),
  * the final snapshot of a drained stream is not exact (residual 0,
    queue_depth 0, inflight 0); pass --allow-live-tail for streams cut
    mid-load,
  * the serve.registry.epoch gauge ever decreases, or
  * on stationary segments (no epoch flip since the previous snapshot,
    window and cumulative counts both >= 50) the windowed p50 drifts more
    than a factor of 4 from the cumulative p50 — the windowed view must
    describe the same workload the cumulative view does, up to the
    histogram's log-bucket resolution and genuine load shifts.

Usage:
    tools/analyze_telemetry.py BENCH_telemetry.json
    tools/analyze_telemetry.py --check out/BENCH_telemetry.json
    tools/analyze_telemetry.py --check --tolerance 16 out/telemetry.jsonl
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

WINDOW_HIST = "serve.latency.total_seconds"
QUANTILE_DRIFT_FACTOR = 4.0
STATIONARY_MIN_COUNT = 50


def flatten_record(record):
    """Normalizes a raw snapshotter JSONL record to the flat row shape the
    BENCH document embeds, so both inputs share one checking path."""
    counters = record.get("counters", {})
    gauges = record.get("gauges", {})
    window = record.get("window_quantiles", {}).get(WINDOW_HIST, {})
    row = {
        "seq": record.get("seq"),
        "wall_ms": record.get("wall_ms"),
        "submitted": counters.get("serve.submitted", 0),
        "accepted": counters.get("serve.accepted", 0),
        "served": counters.get("serve.served", 0),
        "encode_failures": counters.get("serve.encode_failures", 0),
        "shed": counters.get("serve.shed", 0),
        "discarded": counters.get("serve.discarded", 0),
        "cache_hits": counters.get("serve.cache_hits", 0),
        "queue_depth": gauges.get("serve.queue.depth", 0),
        "inflight": gauges.get("serve.inflight", 0),
        "busy_workers": gauges.get("serve.workers.busy", 0),
        "epoch": gauges.get("serve.registry.epoch", 0),
        "live_epochs": gauges.get("serve.registry.live_epochs", 0),
        "cache_entries": gauges.get("serve.cache.entries", 0),
        "cache_resident_bytes": gauges.get("serve.cache.resident_bytes", 0),
        "window_count": window.get("count", 0),
        "window_p50": window.get("p50", 0.0),
        "window_p99": window.get("p99", 0.0),
        "cumulative_count": window.get("cumulative_count", 0),
        "cumulative_p50": window.get("cumulative_p50", 0.0),
        "cumulative_p99": window.get("cumulative_p99", 0.0),
    }
    row["residual"] = residual_of(row)
    return row


def residual_of(row):
    expected = (row.get("accepted", 0) - row.get("served", 0)
                - row.get("encode_failures", 0) - row.get("shed", 0)
                - row.get("discarded", 0))
    return row.get("queue_depth", 0) + row.get("inflight", 0) - expected


def load(path):
    """Returns (snapshots, tolerance_or_None). tolerance comes from the
    BENCH document's embedded config; raw streams carry none."""
    text = Path(path).read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "telemetry_pass" in doc:
        tele = doc["telemetry_pass"]
        return tele.get("snapshots", []), tele.get("config", {}).get(
            "tolerance")
    if isinstance(doc, dict):  # a single JSONL record that parsed whole
        return [flatten_record(doc)], None
    rows = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(flatten_record(json.loads(line)))
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not a JSON record: {exc}")
    return rows, None


def check(rows, tolerance, allow_live_tail):
    errors = []
    if len(rows) < 1:
        return ["no snapshots in the stream"]
    for i, row in enumerate(rows):
        if row.get("seq") != i:
            errors.append(f"snapshot {i}: seq {row.get('seq')} breaks the "
                          "contiguous 0-based sequence")
        if i > 0 and row.get("wall_ms", 0) < rows[i - 1].get("wall_ms", 0):
            errors.append(f"snapshot {i}: wall_ms runs backwards")
        res = row.get("residual", residual_of(row))
        if res != residual_of(row):
            errors.append(f"snapshot {i}: embedded residual {res} disagrees "
                          f"with its own counters ({residual_of(row)})")
        if abs(res) > tolerance:
            errors.append(f"snapshot {i}: residual {res} exceeds tolerance "
                          f"{tolerance} — gauges do not reconcile with the "
                          "monotone counters")
        if i > 0 and row.get("epoch", 0) < rows[i - 1].get("epoch", 0):
            errors.append(f"snapshot {i}: serve.registry.epoch decreased")
        # Windowed-vs-cumulative sanity on stationary, well-populated
        # segments only: a flip boundary or a thin window may legitimately
        # diverge.
        stationary = i > 0 and row.get("epoch") == rows[i - 1].get("epoch")
        if (stationary
                and row.get("window_count", 0) >= STATIONARY_MIN_COUNT
                and row.get("cumulative_count", 0) >= STATIONARY_MIN_COUNT
                and row.get("window_p50", 0) > 0
                and row.get("cumulative_p50", 0) > 0):
            ratio = row["window_p50"] / row["cumulative_p50"]
            if not (1.0 / QUANTILE_DRIFT_FACTOR
                    <= ratio <= QUANTILE_DRIFT_FACTOR):
                errors.append(
                    f"snapshot {i}: windowed p50 {row['window_p50']:.3g}s is "
                    f"{ratio:.2f}x the cumulative p50 "
                    f"{row['cumulative_p50']:.3g}s on a stationary segment "
                    f"(allowed factor {QUANTILE_DRIFT_FACTOR})")
    if not allow_live_tail:
        final = rows[-1]
        if final.get("queue_depth", 0) != 0 or final.get("inflight", 0) != 0:
            errors.append("final snapshot still has queued or in-flight "
                          "requests — stream did not end drained "
                          "(--allow-live-tail to accept)")
        if residual_of(final) != 0:
            errors.append("final snapshot residual is nonzero — a drained "
                          "server's books must close exactly")
    return errors


def print_timeline(rows):
    header = (f"{'seq':>4} {'wall_ms':>9} {'depth':>5} {'infl':>4} "
              f"{'busy':>4} {'epoch':>5} {'entries':>7} {'kbytes':>7} "
              f"{'win_n':>6} {'win_p50':>9} {'win_p99':>9} {'resid':>5}")
    print(header)
    for row in rows:
        print(f"{row.get('seq', -1):>4} {row.get('wall_ms', 0):>9.1f} "
              f"{row.get('queue_depth', 0):>5} {row.get('inflight', 0):>4} "
              f"{row.get('busy_workers', 0):>4} {row.get('epoch', 0):>5} "
              f"{row.get('cache_entries', 0):>7} "
              f"{row.get('cache_resident_bytes', 0) / 1024:>7.1f} "
              f"{row.get('window_count', 0):>6} "
              f"{row.get('window_p50', 0) * 1e6:>8.1f}u "
              f"{row.get('window_p99', 0) * 1e6:>8.1f}u "
              f"{row.get('residual', residual_of(row)):>5}")
    flips = sum(1 for a, b in zip(rows, rows[1:])
                if b.get("epoch", 0) > a.get("epoch", 0))
    span_ms = rows[-1].get("wall_ms", 0) - rows[0].get("wall_ms", 0)
    worst = max((abs(row.get("residual", residual_of(row))) for row in rows),
                default=0)
    print(f"\n{len(rows)} snapshots over {span_ms:.0f} ms, "
          f"{flips} epoch flip(s), max |residual| {worst}")


def main(argv):
    check_mode = False
    allow_live_tail = False
    tolerance = None
    paths = []
    i = 1
    while i < len(argv):
        arg = argv[i]
        if arg == "--check":
            check_mode = True
        elif arg == "--allow-live-tail":
            allow_live_tail = True
        elif arg == "--tolerance":
            i += 1
            if i >= len(argv):
                print("error: --tolerance needs a value", file=sys.stderr)
                return 2
            tolerance = int(argv[i])
        else:
            paths.append(arg)
        i += 1
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    ok = True
    for path in paths:
        try:
            rows, embedded_tolerance = load(path)
        except (OSError, ValueError) as exc:
            print(f"FAIL {path}: {exc}")
            ok = False
            continue
        effective = tolerance if tolerance is not None else (
            embedded_tolerance if embedded_tolerance is not None else 12)
        if check_mode:
            errors = check(rows, effective, allow_live_tail)
            for message in errors:
                print(f"FAIL {path}: {message}")
            if not errors:
                print(f"ok   {path}: {len(rows)} snapshots reconcile "
                      f"(tolerance {effective})")
            ok &= not errors
        else:
            print(f"== {path} (tolerance {effective})")
            print_timeline(rows)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
