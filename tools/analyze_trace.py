#!/usr/bin/env python3
"""Validate and analyze ExtDict Chrome trace-event JSON (util::TraceRecorder).

Usage:
    tools/analyze_trace.py [--check] [--allow-dropped] TRACE.json

Modes:
    --check           validate only (structure, B/E nesting, drop accounting)
                      and print a one-line verdict; this is what CI runs.
    (default)         validate, then reconstruct per-rank compute /
                      communication / wait attribution, load imbalance, and
                      the per-iteration critical path of the Gram update
                      phases, comparing measured words-on-critical-path with
                      the min(M, L) term of the paper's Eq. (2).

Options:
    --allow-dropped   tolerate a non-zero dropped_events count (the default
                      treats any drop as a failure — a truncated ring means
                      the timeline silently lies).

Exit codes: 0 valid, 1 malformed trace or failed invariant, 2 usage error.

The trace layout (src/util/trace.hpp): pid = emulated rank (HOST_PID for
untagged host threads), tid = ring-buffer registration index, ts in
microseconds. Waiting is recorded inside comm.recv / comm.barrier slices
(the receive scope opens before the blocking mailbox pop).

Serving-layer traces (bench/run_server_bench, src/serve/) have no rank
lanes at all — worker threads stay on HOST_PID. For those, analysis reports
the serve.batch.* family instead: batches formed, columns per batch, and
queue-wait vs encode-time attribution from the span args. Per-request
serve.request.{submit,cache_hit,enqueue,dequeue,shed,resolve} instants,
correlated by their "req" id arg, are stitched into request waterfalls:
both modes replay every request's lifecycle (a resolve before its submit,
a duplicate stage, or a dequeue without an enqueue is malformed), and
analysis mode prints queue-wait/service attribution plus the slowest
request's timeline.
"""

import json
import sys

# Mirrors util::TraceRecorder::kHostPid.
HOST_PID = 1 << 20

VALID_PHASES = {"B", "E", "i", "C", "M"}

# Slice names whose whole duration is communication, and the subset that is
# blocking wait. Everything else inside a rank lane counts as compute.
COMM_PREFIX = "comm."
WAIT_NAMES = {"comm.recv", "comm.barrier"}

# Phase spans carrying an "iteration" arg whose cross-rank envelope is the
# per-iteration critical path.
ITERATION_SPANS = (
    "dist_gram.update",
    "dist_gram.normalize",
    "lasso.iteration",
    "power_method.iteration",
)


class MalformedTrace(Exception):
    pass


def fail(message):
    raise MalformedTrace(message)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")
    if not isinstance(doc, dict):
        fail("top level is not an object")
    if not isinstance(doc.get("traceEvents"), list):
        fail("missing traceEvents array")
    return doc


def validate_events(doc):
    """Structural checks plus per-lane B/E stack replay.

    Returns ({(pid, tid): [span, ...]}, [instant, ...]) where each span is a
    dict with name/start/end/depth/args in start order per lane, and each
    instant (phase "i") is a dict with name/ts/args in emission order.
    """
    stacks = {}  # (pid, tid) -> [open span]
    spans = {}  # (pid, tid) -> [closed span]
    instants = []
    recorded = 0
    for index, event in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            fail(f"{where}: bad ph {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            fail(f"{where}: bad name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                fail(f"{where}: bad {key}")
        if phase == "M":
            continue
        recorded += 1
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            fail(f"{where}: bad ts")
        args = event.get("args", {})
        if not isinstance(args, dict):
            fail(f"{where}: bad args")
        lane = (event["pid"], event["tid"])
        if phase == "i":
            instants.append({"name": event["name"], "ts": ts,
                             "args": dict(args)})
        if phase == "B":
            stack = stacks.setdefault(lane, [])
            stack.append(
                {
                    "name": event["name"],
                    "start": ts,
                    "end": None,
                    "depth": len(stack),
                    "args": dict(args),
                }
            )
        elif phase == "E":
            stack = stacks.get(lane, [])
            if not stack:
                fail(f"{where}: E {event['name']!r} with no open span on "
                     f"lane pid={lane[0]} tid={lane[1]}")
            top = stack.pop()
            if top["name"] != event["name"]:
                fail(f"{where}: E {event['name']!r} closes open span "
                     f"{top['name']!r} on lane pid={lane[0]} tid={lane[1]}")
            if ts < top["start"]:
                fail(f"{where}: span {event['name']!r} ends before it begins")
            top["end"] = ts
            top["args"].update(args)
            spans.setdefault(lane, []).append(top)
    for lane, stack in stacks.items():
        if stack:
            names = ", ".join(s["name"] for s in stack)
            fail(f"unclosed span(s) on lane pid={lane[0]} tid={lane[1]}: "
                 f"{names}")

    other = doc.get("otherData", {})
    if isinstance(other, dict) and "recorded_events" in other:
        if other["recorded_events"] != recorded:
            fail(f"otherData.recorded_events={other['recorded_events']} but "
                 f"{recorded} events emitted")
    for lane_spans in spans.values():
        lane_spans.sort(key=lambda s: s["start"])
    return spans, instants


def check_drops(doc, allow_dropped):
    other = doc.get("otherData", {})
    dropped = other.get("dropped_events", 0) if isinstance(other, dict) else 0
    if not isinstance(dropped, int):
        fail("otherData.dropped_events is not an integer")
    if dropped and not allow_dropped:
        fail(f"{dropped} events dropped (ring overflow) — the timeline is "
             "incomplete; rerun with a larger capacity or pass "
             "--allow-dropped to analyze anyway")
    return dropped


def merged_length(intervals):
    """Total length of the union of [start, end] intervals."""
    total = 0.0
    last_end = None
    for start, end in sorted(intervals):
        if last_end is None or start > last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def rank_attribution(spans):
    """Per-rank compute/comm/wait seconds from the union of lane intervals."""
    ranks = {}
    for (pid, _tid), lane_spans in spans.items():
        if pid == HOST_PID:
            continue
        rank = ranks.setdefault(
            pid, {"total": [], "comm": [], "wait": [], "events": 0}
        )
        rank["events"] += 2 * len(lane_spans)
        for span in lane_spans:
            interval = (span["start"], span["end"])
            if span["depth"] == 0:
                rank["total"].append(interval)
            if span["name"].startswith(COMM_PREFIX):
                rank["comm"].append(interval)
            if span["name"] in WAIT_NAMES:
                rank["wait"].append(interval)
    result = {}
    for pid, rank in sorted(ranks.items()):
        total = merged_length(rank["total"])
        comm = merged_length(rank["comm"])
        wait = merged_length(rank["wait"])
        result[pid] = {
            "total_us": total,
            "comm_us": comm,
            "wait_us": wait,
            "compute_us": max(0.0, total - comm),
        }
    return result


def serve_attribution(spans):
    """Micro-batch scheduler summary from serve.batch.* spans (any lane,
    including HOST_PID — serving workers are not rank-tagged). Returns True
    when the trace contains the family."""
    batches = 0
    columns = []
    encode_us = 0.0
    collect_us = 0.0
    queue_us = 0
    for lane_spans in spans.values():
        for span in lane_spans:
            if span["name"] == "serve.batch.encode":
                batches += 1
                columns.append(span["args"].get("columns", 0))
                encode_us += span["end"] - span["start"]
                queue_us += span["args"].get("queue_us", 0)
            elif span["name"] == "serve.batch.collect":
                collect_us += span["end"] - span["start"]
    if batches == 0:
        return False
    total_columns = sum(columns)
    mean_columns = total_columns / batches
    print(f"\nserve.batch.*: {batches} batch(es), {total_columns} column(s) "
          f"(mean {mean_columns:.1f}/batch, max {max(columns)})")
    print(f"  encode wall {encode_us / 1e3:.3f} ms, collect wall "
          f"{collect_us / 1e3:.3f} ms, summed per-request queue wait "
          f"{queue_us / 1e3:.3f} ms")
    if encode_us > 0:
        print(f"  queue-wait / encode-wall ratio: {queue_us / encode_us:.2f} "
              "(large values mean requests spend far longer queued than "
              "being encoded — add workers or shrink the flush window)")
    return True


# Per-request lifecycle instants emitted by src/serve/server.cpp, keyed by
# the "req" arg (the server-assigned request id). A request's waterfall is
# submit -> (cache_hit | enqueue -> (dequeue -> resolve | shed)); a request
# discarded by stop() legitimately ends at enqueue.
REQUEST_STAGES = ("submit", "cache_hit", "enqueue", "dequeue", "shed",
                  "resolve")
REQUEST_PREFIX = "serve.request."


def request_waterfalls(instants):
    """Groups serve.request.* instants by request id and replays each
    request's lifecycle, failing on impossible orderings or duplicate
    stages. Returns {req_id: {stage: ts}} (empty when the trace carries no
    request instants)."""
    requests = {}
    for instant in instants:
        name = instant["name"]
        if not name.startswith(REQUEST_PREFIX):
            continue
        stage = name[len(REQUEST_PREFIX):]
        if stage not in REQUEST_STAGES:
            fail(f"unknown request lifecycle instant {name!r}")
        if "req" not in instant["args"]:
            fail(f"{name} instant lacks the 'req' arg")
        req = instant["args"]["req"]
        stages = requests.setdefault(req, {})
        if stage in stages:
            fail(f"request {req}: duplicate {stage} instant")
        stages[stage] = instant["ts"]
    for req, stages in requests.items():
        if "submit" not in stages:
            fail(f"request {req}: lifecycle instants without a submit")
        if "cache_hit" in stages and "enqueue" in stages:
            fail(f"request {req}: both cache_hit and enqueue recorded")
        # Timestamps come from one steady clock, so cross-thread ordering
        # is meaningful; equal stamps are fine at microsecond resolution.
        order = [stages["submit"]]
        for stage in ("enqueue", "dequeue", "resolve"):
            if stage in stages:
                order.append(stages[stage])
        if any(b < a for a, b in zip(order, order[1:])):
            fail(f"request {req}: lifecycle ran backwards "
                 f"(submit/enqueue/dequeue/resolve = {order})")
        if "shed" in stages and stages["shed"] < stages["submit"]:
            fail(f"request {req}: shed before submit")
        if "dequeue" in stages and "enqueue" not in stages:
            fail(f"request {req}: dequeued but never enqueued")
    return requests


def print_waterfalls(requests):
    complete = {req: s for req, s in requests.items()
                if "dequeue" in s and "resolve" in s}
    hits = sum(1 for s in requests.values() if "cache_hit" in s)
    shed = sum(1 for s in requests.values() if "shed" in s)
    print(f"\nserve.request.* waterfalls: {len(requests)} request(s) "
          f"({len(complete)} full queue->resolve, {hits} cache hit(s), "
          f"{shed} shed)")
    if not complete:
        return
    queue_waits = [s["dequeue"] - s["enqueue"] for s in complete.values()]
    services = [s["resolve"] - s["dequeue"] for s in complete.values()]
    totals = {req: s["resolve"] - s["submit"] for req, s in complete.items()}
    print(f"  queue wait mean {sum(queue_waits) / len(queue_waits):.1f} us, "
          f"max {max(queue_waits):.1f} us; dequeue->resolve mean "
          f"{sum(services) / len(services):.1f} us")
    worst = max(totals, key=totals.get)
    stages = complete[worst]
    t0 = stages["submit"]
    steps = " -> ".join(
        f"{stage} +{stages[stage] - t0:.1f}us"
        for stage in ("enqueue", "dequeue", "resolve") if stage in stages)
    print(f"  slowest request {worst}: submit +0.0us -> {steps}")


def iteration_groups(spans, name):
    """Cross-rank groups of `name` spans: same iteration arg, overlapping in
    time (successive runs of the same workload are far apart, so a group is
    exactly one iteration of one run across all its ranks)."""
    per_iteration = {}
    for (pid, _tid), lane_spans in spans.items():
        if pid == HOST_PID:
            continue
        for span in lane_spans:
            if span["name"] == name and "iteration" in span["args"]:
                per_iteration.setdefault(span["args"]["iteration"], []).append(
                    (pid, span)
                )
    groups = []
    for iteration, members in sorted(per_iteration.items()):
        members.sort(key=lambda item: item[1]["start"])
        current, current_end = [], None
        for pid, span in members:
            if current and span["start"] > current_end:
                groups.append((iteration, current))
                current, current_end = [], None
            current.append((pid, span))
            end = span["end"]
            current_end = end if current_end is None else max(current_end, end)
        if current:
            groups.append((iteration, current))
    return groups


def span_comm_words(lane_spans, outer):
    """Words moved by comm spans nested inside `outer` on the same lane."""
    words = 0
    for span in lane_spans:
        if (
            span["name"].startswith(COMM_PREFIX)
            and span["start"] >= outer["start"]
            and span["end"] <= outer["end"]
            and span["depth"] == outer["depth"] + 1
        ):
            words += span["args"].get("words", 0)
    return words


def analyze(doc, spans, requests):
    other = doc.get("otherData", {})
    model = other.get("model", {}) if isinstance(other, dict) else {}

    ranks = rank_attribution(spans)
    if ranks:
        expected_p = model.get("p")
        if isinstance(expected_p, int) and len(ranks) < expected_p:
            fail(f"model says p={expected_p} ranks but only {len(ranks)} rank "
                 "lanes traced")

        print(f"ranks: {len(ranks)}"
              + (f" (model p={expected_p})" if expected_p else ""))
        print(f"{'rank':>6} {'total ms':>10} {'compute ms':>11} {'comm ms':>9} "
              f"{'wait ms':>9} {'comm %':>7}")
        computes = []
        for pid, att in ranks.items():
            computes.append(att["compute_us"])
            share = (100.0 * att["comm_us"] / att["total_us"]
                     if att["total_us"] else 0.0)
            print(f"{pid:>6} {att['total_us'] / 1e3:>10.3f} "
                  f"{att['compute_us'] / 1e3:>11.3f} "
                  f"{att['comm_us'] / 1e3:>9.3f} "
                  f"{att['wait_us'] / 1e3:>9.3f} {share:>6.1f}%")
        mean_compute = sum(computes) / len(computes)
        imbalance = max(computes) / mean_compute if mean_compute > 0 else 1.0
        print(f"load imbalance (max/mean compute): {imbalance:.3f}")

    served = serve_attribution(spans)
    if not ranks and not served:
        fail("no rank lanes and no serve.batch.* spans in trace (nothing ran "
             "under dist::Cluster or serve::ExtDictServer?)")
    if requests:
        print_waterfalls(requests)

    min_m_l = model.get("min_m_l")
    for name in ITERATION_SPANS:
        groups = iteration_groups(spans, name)
        if not groups:
            continue
        print(f"\n{name}: {len(groups)} iteration group(s)")
        for iteration, members in groups:
            start = min(span["start"] for _pid, span in members)
            end = max(span["end"] for _pid, span in members)
            straggler_pid, straggler = max(
                members, key=lambda item: item[1]["end"]
            )
            lane_spans = next(
                lane
                for (pid, _tid), lane in spans.items()
                if pid == straggler_pid and straggler in lane
            )
            words = span_comm_words(lane_spans, straggler)
            line = (f"  it {iteration}: wall {(end - start) / 1e3:.3f} ms "
                    f"across {len(members)} rank(s), straggler rank "
                    f"{straggler_pid}, critical-path comm {words} words")
            if words and isinstance(min_m_l, int) and min_m_l > 0:
                line += (f" = {words / min_m_l:.2f} x min(M, L)"
                         f" [min(M, L) = {min_m_l}]")
            print(line)

    dropped = other.get("dropped_events", 0) if isinstance(other, dict) else 0
    print(f"\nrecorded {other.get('recorded_events', '?')} events, "
          f"{dropped} dropped")
    return 0


def main(argv):
    check_only = False
    allow_dropped = False
    paths = []
    for arg in argv[1:]:
        if arg == "--check":
            check_only = True
        elif arg == "--allow-dropped":
            allow_dropped = True
        elif arg.startswith("-"):
            print(__doc__, file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        doc = load(paths[0])
        spans, instants = validate_events(doc)
        requests = request_waterfalls(instants)
        check_drops(doc, allow_dropped)
        if check_only:
            events = sum(2 * len(s) for s in spans.values())
            print(f"{paths[0]}: OK ({events}+ events, "
                  f"{len(spans)} lanes, nesting balanced, "
                  f"{len(requests)} request waterfall(s), no drops)")
            return 0
        return analyze(doc, spans, requests)
    except MalformedTrace as err:
        print(f"{paths[0]}: MALFORMED: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
