#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the library sources.
#
# Usage: tools/lint.sh [build-dir]
#
# Needs a compile_commands.json; any CMake preset produces one
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON in the preset base). Defaults to
# build-release-portable, falling back to the first build dir that has one.
# Exits 0 with a notice when clang-tidy is not installed, so the script is
# safe to call from environments without LLVM (CI enforces; see
# .github/workflows/ci.yml).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

# House-invariant checks first: pure python, no build dir needed.
if command -v python3 >/dev/null 2>&1; then
  python3 tools/extdict-lint.py

  # AST-level whole-program analysis (lock order, annotation coverage,
  # contract coverage). Needs a clang front-end and a compile_commands.json;
  # exits 77 (treated as a skip here) when clang is not installed.
  analyze_rc=0
  python3 tools/extdict-analyze.py --skip-without-clang || analyze_rc=$?
  if [[ "${analyze_rc}" -eq 77 ]]; then
    echo "lint.sh: extdict-analyze skipped (no clang; CI enforces)"
  elif [[ "${analyze_rc}" -ne 0 ]]; then
    exit "${analyze_rc}"
  fi
else
  echo "lint.sh: python3 not found; skipping extdict-lint"
fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" >/dev/null 2>&1; then
  echo "lint.sh: ${tidy_bin} not found; skipping (install clang-tidy to run locally)"
  exit 0
fi

build_dir="${1:-}"
if [[ -z "${build_dir}" ]]; then
  for candidate in build-release-portable build-release build-debug-checks build; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi
if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: no compile_commands.json found; configure a preset first," >&2
  echo "         e.g.: cmake --preset release-portable" >&2
  exit 2
fi

echo "lint.sh: using ${build_dir}/compile_commands.json"

# Library + tool sources only; tests and benches are linted transitively via
# the headers they include (HeaderFilterRegex in .clang-tidy).
mapfile -t sources < <(git ls-files 'src/**/*.cpp')

if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${tidy_bin}" -p "${build_dir}" \
    -quiet "${sources[@]}"
else
  "${tidy_bin}" -p "${build_dir}" --quiet "${sources[@]}"
fi
echo "lint.sh: clean"
