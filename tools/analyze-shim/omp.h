/* Minimal <omp.h> for extdict-analyze's -fsyntax-only AST dumps.
 *
 * The analyzer compiles every TU with -fopenmp so the `#pragma omp`
 * directives survive into the AST, but clang installs its own omp.h only
 * with libomp-dev; gcc builds resolve <omp.h> from libgomp. This shim
 * (injected with -isystem, so a real omp.h still wins when present)
 * declares just the entry points the tree uses. It is never linked — the
 * analyzer never runs anything past -fsyntax-only.
 */
#ifndef EXTDICT_ANALYZE_SHIM_OMP_H_
#define EXTDICT_ANALYZE_SHIM_OMP_H_

#ifdef __cplusplus
extern "C" {
#endif

void omp_set_num_threads(int num_threads);
int omp_get_num_threads(void);
int omp_get_max_threads(void);
int omp_get_thread_num(void);
int omp_get_num_procs(void);
int omp_in_parallel(void);
void omp_set_dynamic(int dynamic_threads);
int omp_get_dynamic(void);
void omp_set_nested(int nested);
int omp_get_nested(void);
double omp_get_wtime(void);
double omp_get_wtick(void);

#ifdef __cplusplus
}
#endif

#endif  /* EXTDICT_ANALYZE_SHIM_OMP_H_ */
