#!/usr/bin/env python3
"""extdict-lint: ExtDict house-invariant static checks.

Enforces project rules the generic .clang-tidy configuration cannot express:

  naked-sync-primitive   std::mutex / std::condition_variable (and friends,
                         including their headers) may appear only in
                         src/util/sync.hpp. Everything else uses the
                         annotated wrappers so the locking protocol stays
                         visible to -Wthread-safety.

  missing-shape-contract every public kernel entry in src/la/ and
                         src/sparsecoding/ (a non-helper function taking a
                         Matrix / CscMatrix / span / Vector) calls
                         EXTDICT_REQUIRE_SHAPE before its first loop touches
                         the data. Waive intentionally shape-free entries
                         with `// extdict-lint: allow(missing-shape-contract)
                         <reason>` on the line above the definition.

  hot-loop-allocation    loops guarded by EXTDICT_HOT_ASSERT are the
                         measured hot paths; heap allocation inside them
                         (push_back, resize, std::string, new, ...) is a
                         perf bug. The assert's own detail argument is
                         exempt — it only evaluates on failure.

  cpp-include            no `#include` of a .cpp file; internal translation
                         units are not headers.

  trace-in-hot-path      src/la/ and src/sparsecoding/ are the measured
                         inner-loop kernels: even a disabled TraceScope /
                         TraceRecorder call costs an atomic load per
                         invocation, which multiplied by per-element call
                         rates is measurable. Trace at the phase level
                         (core/, dist/, solvers/) instead, or waive with
                         `// extdict-lint: allow(trace-in-hot-path) <reason>`.

  omp-default-none       every `#pragma omp parallel ...` directive must
                         carry default(none) so each variable's sharing is
                         an explicit decision. This is the fast text-level
                         gate; tools/extdict-analyze.py's omp-sharing rule
                         does the whole-program race verification on top.

  metric-name-style      string literals handed to metric registration /
                         mutation calls (counter, add, gauge*, span,
                         SpanTimer, observe_windowed, ...) must be lowercase
                         dot-paths: [a-z0-9_]+ segments joined by single
                         dots (docs/OBSERVABILITY.md §1). Snapshots sort
                         keys lexicographically, so one CamelCase name
                         breaks the subsystem grouping every dashboard and
                         diff relies on.

Usage:
  tools/extdict-lint.py [--root DIR]        # scan the tree (default: repo)
  tools/extdict-lint.py FILE [FILE...]      # scan specific files
  tools/extdict-lint.py --self-test         # run on tests/lint_fixtures/

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
Waivers: `// extdict-lint: allow(<rule>) <reason>` on the offending line or
the line directly above it.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULE_SYNC = "naked-sync-primitive"
RULE_SHAPE = "missing-shape-contract"
RULE_HOT_ALLOC = "hot-loop-allocation"
RULE_CPP_INCLUDE = "cpp-include"
RULE_TRACE = "trace-in-hot-path"
RULE_OMP_DEFAULT = "omp-default-none"
RULE_METRIC_NAME = "metric-name-style"

ALL_RULES = (RULE_SYNC, RULE_SHAPE, RULE_HOT_ALLOC, RULE_CPP_INCLUDE,
             RULE_TRACE, RULE_OMP_DEFAULT, RULE_METRIC_NAME)

# Directories whose files are per-element hot kernels: no tracing there.
TRACE_FORBIDDEN_PREFIXES = ("src/la/", "src/sparsecoding/")

TRACE_USE_RE = re.compile(r"\b(?:util::)?Trace(?:Scope|Recorder)\b")

# The one translation unit allowed to touch the raw primitives.
SYNC_ALLOWED = ("src/util/sync.hpp",)

SYNC_PRIMITIVE_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|recursive_timed_|shared_|shared_timed_)?"
    r"(?:mutex|condition_variable(?:_any)?)\b"
)
SYNC_HEADER_RE = re.compile(r"^(?:mutex|condition_variable|shared_mutex)$")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^<>"]+)[>"]')

WAIVER_RE = re.compile(r"extdict-lint:\s*allow\(([\w-]+)\)")

# Dimensioned parameter types that make a function a "kernel entry".
DIM_PARAM_RE = re.compile(
    r"(?:\bMatrix\s*[&*]|\bCscMatrix\s*[&*]|\bspan\s*<|\bVector\s*[&*])"
)

REQUIRE_SHAPE_RE = re.compile(r"\bEXTDICT_REQUIRE_SHAPE\s*\(")
LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")

ALLOC_PATTERNS = (
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\.\s*push_back\s*\("), "push_back"),
    (re.compile(r"\.\s*emplace_back\s*\("), "emplace_back"),
    (re.compile(r"\.\s*resize\s*\("), "resize"),
    (re.compile(r"\.\s*reserve\s*\("), "reserve"),
    (re.compile(r"\bmake_unique\s*<"), "make_unique"),
    (re.compile(r"\bmake_shared\s*<"), "make_shared"),
    (re.compile(r"\bstd::string\s*[({]"), "std::string construction"),
    (re.compile(r"\bto_string\s*\("), "to_string"),
    (re.compile(r"\bstd::vector\s*<[^;{}]*>\s+\w+\s*[({;]"), "local std::vector"),
)

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return", "do", "else"}

# Only `parallel` directives take a default clause; a nested `#pragma omp
# for` inherits the enclosing region's data-sharing rules.
OMP_PARALLEL_RE = re.compile(r"^\s*#\s*pragma\s+omp\s+parallel\b")
DEFAULT_NONE_RE = re.compile(r"\bdefault\s*\(\s*none\s*\)")

# Metric/trace registration and mutation entry points whose first argument
# is the metric name. `span` doubles as the conventional SpanTimer variable
# name, so both the type and the idiomatic spelling are covered.
METRIC_CALL_RE = re.compile(
    r"\b(?:counter|add|gauge|gauge_set|gauge_add|gauge_sub|gauge_value"
    r"|observe_windowed|window_quantile|window_count|span|SpanTimer"
    r"|TraceScope)\s*\(\s*\"([^\"]*)\""
)
# Lowercase dot-path: [a-z0-9_]+ segments joined by single dots. Names built
# by concatenation (`"trace.events.rank" + ...`) are checked on their literal
# prefix, which must already be well-formed.
METRIC_NAME_RE = re.compile(r"^[a-z0-9_]+(?:\.[a-z0-9_]+)*$")


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def mask_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Replaces comment and string/char-literal contents with spaces.

    Same length as the input (newlines preserved), so offsets and line
    numbers map 1:1 onto the original file. With keep_strings, literal
    contents survive (only comments are blanked) — for rules that inspect
    the literals themselves, like metric-name-style.
    """
    out = list(text)
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = "string"
                i += 1
                continue
            if c == "'":
                state = "char"
                i += 1
                continue
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
            elif c != "\n":
                out[i] = " "
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                out[i] = out[i + 1] = " "
                state = "code"
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                if not keep_strings:
                    out[i] = " "
                    if nxt != "\n":
                        out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = "code"
            elif c != "\n" and not keep_strings:
                out[i] = " "
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def waived_lines(text: str) -> dict[int, set[str]]:
    """Maps line number -> rules waived on that line (raw text: comments)."""
    waivers: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in WAIVER_RE.finditer(line):
            waivers.setdefault(lineno, set()).add(m.group(1))
    return waivers


def is_waived(waivers: dict[int, set[str]], line: int, rule: str) -> bool:
    for probe in (line, line - 1):
        if rule in waivers.get(probe, set()):
            return True
    return False


def match_brace(text: str, open_idx: int) -> int:
    """Index just past the brace matching text[open_idx] == '{'. -1 if none."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def anonymous_namespace_spans(masked: str) -> list[tuple[int, int]]:
    spans = []
    for m in re.finditer(r"\bnamespace\s*\{", masked):
        end = match_brace(masked, m.end() - 1)
        if end > 0:
            spans.append((m.start(), end))
    return spans


def function_definitions(masked: str):
    """Yields (header_start, name, params, body_start, body_end).

    Heuristic scanner good enough for this codebase's .cpp style: walks every
    '{', reconstructs the preceding "header" back to the last ; { or }, and
    keeps the ones shaped like `qualified_name(params) [qualifiers] {`.
    """
    for m in re.finditer(r"\{", masked):
        open_idx = m.start()
        header_start = max(
            masked.rfind(";", 0, open_idx),
            masked.rfind("{", 0, open_idx),
            masked.rfind("}", 0, open_idx),
        ) + 1
        header = masked[header_start:open_idx]
        if "(" not in header or ")" not in header:
            continue
        stripped = header.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if re.search(r"\b(?:namespace|class|struct|enum|union)\b", header):
            continue
        if "=" in header.split("(", 1)[0]:
            continue  # assignment / initialisation, not a definition
        # Find the parameter list: the first top-level (...) group after the
        # function name (initialiser lists come after ')' and ':').
        paren = header.find("(")
        depth, close = 0, -1
        for i in range(paren, len(header)):
            if header[i] == "(":
                depth += 1
            elif header[i] == ")":
                depth -= 1
                if depth == 0:
                    close = i
                    break
        if close < 0:
            continue
        name_m = re.search(r"([A-Za-z_~][\w]*(?:\s*::\s*[A-Za-z_~][\w]*)*)\s*$",
                           header[:paren])
        if not name_m:
            continue
        name = re.sub(r"\s+", "", name_m.group(1))
        last = name.split("::")[-1].lstrip("~")
        if last in CONTROL_KEYWORDS:
            continue
        tail = header[close + 1:]
        # A definition's tail holds only qualifiers / an initialiser list.
        if not re.fullmatch(
            r"(?:\s|const|noexcept|override|final|mutable|->\s*[\w:<>,&*\s]+"
            r"|\[\[[^\]]*\]\]|EXTDICT_\w+\s*\([^)]*\)|EXTDICT_\w+"
            r"|:\s*.*)*",
            tail,
            re.S,
        ):
            continue
        body_end = match_brace(masked, open_idx)
        if body_end < 0:
            continue
        yield header_start, name, header[paren + 1:close], open_idx + 1, body_end - 1


def innermost_hot_loops(masked: str):
    """Yields (loop_start, body_start, body_end) for the innermost loops
    containing an EXTDICT_HOT_ASSERT."""
    loops = []
    for m in LOOP_RE.finditer(masked):
        # Find the loop body '{' after the closing paren of the condition.
        depth, i = 0, masked.find("(", m.start())
        close = -1
        for j in range(i, len(masked)):
            if masked[j] == "(":
                depth += 1
            elif masked[j] == ")":
                depth -= 1
                if depth == 0:
                    close = j
                    break
        if close < 0:
            continue
        k = close + 1
        while k < len(masked) and masked[k] in " \t\n":
            k += 1
        if k >= len(masked) or masked[k] != "{":
            continue  # single-statement loop: nothing to allocate in
        body_end = match_brace(masked, k)
        if body_end < 0:
            continue
        loops.append((m.start(), k + 1, body_end - 1))

    for assert_m in re.finditer(r"\bEXTDICT_HOT_ASSERT\s*\(", masked):
        pos = assert_m.start()
        enclosing = [l for l in loops if l[1] <= pos < l[2]]
        if not enclosing:
            continue
        yield max(enclosing, key=lambda l: l[1])  # innermost = latest body start


def hot_assert_arg_spans(masked: str) -> list[tuple[int, int]]:
    spans = []
    for m in re.finditer(r"\bEXTDICT_HOT_ASSERT\s*\(", masked):
        depth, start = 0, m.end() - 1
        for i in range(start, len(masked)):
            if masked[i] == "(":
                depth += 1
            elif masked[i] == ")":
                depth -= 1
                if depth == 0:
                    spans.append((m.start(), i + 1))
                    break
    return spans


def check_file(path: Path, rel: str, violations: list[Violation]) -> None:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        violations.append(Violation(path, 0, "io-error", str(e)))
        return
    masked = mask_comments_and_strings(text)
    waivers = waived_lines(text)

    rel_posix = rel.replace("\\", "/")

    # -- cpp-include & sync headers (raw, line-based) -------------------------
    for lineno, line in enumerate(text.splitlines(), start=1):
        inc = INCLUDE_RE.match(line)
        if not inc:
            continue
        target = inc.group(1)
        if target.endswith(".cpp"):
            if not is_waived(waivers, lineno, RULE_CPP_INCLUDE):
                violations.append(Violation(
                    path, lineno, RULE_CPP_INCLUDE,
                    f'includes translation unit "{target}"; '
                    "extract a header instead"))
        if SYNC_HEADER_RE.match(target) and rel_posix not in SYNC_ALLOWED:
            if not is_waived(waivers, lineno, RULE_SYNC):
                violations.append(Violation(
                    path, lineno, RULE_SYNC,
                    f"<{target}> outside util/sync.hpp; use the annotated "
                    "wrappers (util::Mutex / util::CondVar)"))

    # -- naked std primitives -------------------------------------------------
    if rel_posix not in SYNC_ALLOWED:
        for m in SYNC_PRIMITIVE_RE.finditer(masked):
            lineno = line_of(masked, m.start())
            if is_waived(waivers, lineno, RULE_SYNC):
                continue
            violations.append(Violation(
                path, lineno, RULE_SYNC,
                f"naked {m.group(0)} outside util/sync.hpp; use util::Mutex "
                "/ util::CondVar so -Wthread-safety sees the protocol"))

    # -- hot-loop allocations -------------------------------------------------
    arg_spans = hot_assert_arg_spans(masked)
    reported: set[tuple[int, str]] = set()
    for _, body_start, body_end in set(innermost_hot_loops(masked)):
        body = masked[body_start:body_end]
        # Blank out the HOT_ASSERT argument lists: the detail string may
        # build diagnostics (to_string etc.) — evaluated only on failure.
        chars = list(body)
        for s, e in arg_spans:
            if s >= body_start and e <= body_end:
                for i in range(s - body_start, e - body_start):
                    if chars[i] != "\n":
                        chars[i] = " "
        scrubbed = "".join(chars)
        for pattern, what in ALLOC_PATTERNS:
            for m in pattern.finditer(scrubbed):
                lineno = line_of(masked, body_start + m.start())
                if is_waived(waivers, lineno, RULE_HOT_ALLOC):
                    continue
                key = (lineno, what)
                if key in reported:
                    continue
                reported.add(key)
                violations.append(Violation(
                    path, lineno, RULE_HOT_ALLOC,
                    f"heap allocation ({what}) inside an "
                    "EXTDICT_HOT_ASSERT-marked loop"))

    # -- tracing inside hot kernel files --------------------------------------
    if rel_posix.startswith(TRACE_FORBIDDEN_PREFIXES):
        for m in TRACE_USE_RE.finditer(masked):
            lineno = line_of(masked, m.start())
            if is_waived(waivers, lineno, RULE_TRACE):
                continue
            violations.append(Violation(
                path, lineno, RULE_TRACE,
                f"{m.group(0)} in a hot kernel file; trace at the phase "
                "level (core/, dist/, solvers/) — per-element call sites "
                "pay the enabled-check on every invocation"))

    # -- omp parallel directives must declare default(none) -------------------
    # Scans masked text (commented-out pragmas are not directives) and joins
    # backslash continuations: every real pragma in this tree wraps.
    masked_lines = masked.splitlines()
    lineno = 0
    while lineno < len(masked_lines):
        start = lineno
        line = masked_lines[lineno]
        lineno += 1
        if not OMP_PARALLEL_RE.match(line):
            continue
        pragma = line
        while pragma.rstrip().endswith("\\") and lineno < len(masked_lines):
            pragma = pragma.rstrip()[:-1] + " " + masked_lines[lineno]
            lineno += 1
        if DEFAULT_NONE_RE.search(pragma):
            continue
        if is_waived(waivers, start + 1, RULE_OMP_DEFAULT):
            continue
        violations.append(Violation(
            path, start + 1, RULE_OMP_DEFAULT,
            "omp parallel directive without default(none); list every "
            "variable's sharing explicitly (shared/private/firstprivate/"
            "reduction) so nothing is shared by accident"))

    # -- metric name style ----------------------------------------------------
    # The default mask blanks string literals, so this rule scans a
    # comments-only mask where the literals survive.
    literals_visible = mask_comments_and_strings(text, keep_strings=True)
    for m in METRIC_CALL_RE.finditer(literals_visible):
        name = m.group(1)
        if METRIC_NAME_RE.match(name):
            continue
        lineno = line_of(literals_visible, m.start())
        if is_waived(waivers, lineno, RULE_METRIC_NAME):
            continue
        violations.append(Violation(
            path, lineno, RULE_METRIC_NAME,
            f'metric name "{name}" is not a lowercase dot-path '
            "([a-z0-9_]+ segments joined by single dots; "
            "docs/OBSERVABILITY.md)"))

    # -- shape contracts at kernel entry --------------------------------------
    if (rel_posix.startswith(("src/la/", "src/sparsecoding/"))
            and rel_posix.endswith(".cpp")):
        anon_spans = anonymous_namespace_spans(masked)
        for header_start, name, params, body_start, body_end in \
                function_definitions(masked):
            if any(s <= header_start < e for s, e in anon_spans):
                continue  # file-local helper, not a public kernel entry
            if not DIM_PARAM_RE.search(params):
                continue
            sig_line = line_of(masked, header_start + len(
                masked[header_start:body_start]) - len(
                masked[header_start:body_start].lstrip()))
            # line of the first non-blank char of the header:
            first_char = header_start
            while first_char < body_start and masked[first_char] in " \t\n":
                first_char += 1
            sig_line = line_of(masked, first_char)
            if is_waived(waivers, sig_line, RULE_SHAPE):
                continue
            body = masked[body_start:body_end]
            shape = REQUIRE_SHAPE_RE.search(body)
            loop = LOOP_RE.search(body)
            if shape and (not loop or shape.start() < loop.start()):
                continue
            if shape:
                msg = (f"{name}: EXTDICT_REQUIRE_SHAPE appears only after the "
                       "first loop; validate before touching data")
            else:
                msg = (f"{name}: public kernel entry takes dimensioned "
                       "arguments but never calls EXTDICT_REQUIRE_SHAPE "
                       "(waive with `// extdict-lint: "
                       "allow(missing-shape-contract) <reason>`)")
            violations.append(Violation(path, sig_line, RULE_SHAPE, msg))


def gather_tree_files(root: Path) -> list[Path]:
    files: list[Path] = []
    for sub in ("src", "tests", "bench", "examples"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
                continue
            rel = path.relative_to(root).as_posix()
            if "lint_fixtures" in rel or "analyze_fixtures" in rel or \
                    "thread_safety_compile_test" in rel:
                continue  # deliberate violations / compile fixtures
            files.append(path)
    return files


def scan(root: Path, files: list[Path]) -> list[Violation]:
    violations: list[Violation] = []
    for path in files:
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        check_file(path, rel, violations)
    return violations


def self_test(repo_root: Path) -> int:
    """Checks every fixture produces exactly its declared rule hits."""
    fixture_root = repo_root / "tests" / "lint_fixtures"
    if not fixture_root.is_dir():
        print(f"extdict-lint: no fixtures at {fixture_root}", file=sys.stderr)
        return 2
    expect_re = re.compile(r"extdict-lint-expect:\s*([\w\s-]+)")
    failures = 0
    fixtures = sorted(fixture_root.rglob("*.cpp"))
    if not fixtures:
        print("extdict-lint: fixture directory is empty", file=sys.stderr)
        return 2
    for path in fixtures:
        text = path.read_text(encoding="utf-8")
        m = expect_re.search(text)
        if not m:
            print(f"SELF-TEST FAIL {path}: no extdict-lint-expect header")
            failures += 1
            continue
        expected = set(m.group(1).split()) - {"none"}
        rel = path.relative_to(fixture_root).as_posix()
        violations: list[Violation] = []
        check_file(path, rel, violations)
        found = {v.rule for v in violations}
        if found != expected:
            print(f"SELF-TEST FAIL {rel}: expected {sorted(expected) or '[]'}, "
                  f"found {sorted(found) or '[]'}")
            for v in violations:
                print(f"    {v}")
            failures += 1
        else:
            print(f"self-test ok: {rel} -> {sorted(found) or ['clean']}")
    if failures:
        print(f"extdict-lint self-test: {failures} fixture(s) failed")
        return 1
    print(f"extdict-lint self-test: all {len(fixtures)} fixtures behave")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="extdict-lint",
        description="ExtDict house-invariant static checks")
    parser.add_argument("files", nargs="*", type=Path,
                        help="files to scan (default: the whole tree)")
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root (default: this script's ../)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against tests/lint_fixtures/")
    args = parser.parse_args(argv)

    script_root = Path(__file__).resolve().parent.parent
    root = (args.root or script_root).resolve()

    if args.self_test:
        return self_test(script_root)

    files = [p for p in args.files] or gather_tree_files(root)
    if not files:
        print(f"extdict-lint: nothing to scan under {root}", file=sys.stderr)
        return 2
    violations = scan(root, files)
    for v in violations:
        print(v)
    if violations:
        print(f"extdict-lint: {len(violations)} violation(s) in "
              f"{len({v.path for v in violations})} file(s)")
        return 1
    print(f"extdict-lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
