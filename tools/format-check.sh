#!/usr/bin/env bash
# Verify formatting (config: .clang-format) without rewriting anything.
#
# Usage: tools/format-check.sh          # check, non-zero exit on violations
#        tools/format-check.sh --fix    # reformat in place instead
#
# Exits 0 with a notice when clang-format is not installed, so the script is
# safe to call from environments without LLVM (CI enforces; see
# .github/workflows/ci.yml).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

format_bin="${CLANG_FORMAT:-clang-format}"
if ! command -v "${format_bin}" >/dev/null 2>&1; then
  echo "format-check.sh: ${format_bin} not found; skipping (install clang-format to run locally)"
  exit 0
fi

mapfile -t sources < <(git ls-files '*.cpp' '*.hpp')

if [[ "${1:-}" == "--fix" ]]; then
  "${format_bin}" -i "${sources[@]}"
  echo "format-check.sh: reformatted ${#sources[@]} files"
  exit 0
fi

if "${format_bin}" --dry-run -Werror "${sources[@]}"; then
  echo "format-check.sh: ${#sources[@]} files clean"
else
  echo "format-check.sh: violations found; run tools/format-check.sh --fix" >&2
  exit 1
fi
