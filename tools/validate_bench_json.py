#!/usr/bin/env python3
"""Schema validator for the run_benchmarks JSON artifacts.

Dependency-free (stdlib json only). CI's bench-smoke job runs

    run_benchmarks --quick --out OUT
    tools/validate_bench_json.py OUT/BENCH_gram_model.json OUT/BENCH_solvers.json
    run_server_bench --quick --out OUT
    tools/validate_bench_json.py OUT/BENCH_serve.json OUT/BENCH_cache.json \
        OUT/BENCH_telemetry.json

so a schema drift — a renamed field, a type change, a dropped summary — fails
the PR even when the benchmark itself runs fine. The checked-in repo-root
copies of the files must also validate (the default when run with no args).

The schema language is a small subset of JSON Schema: dicts with "type",
"required", "properties", "items". Unknown extra fields are allowed — the
schema pins what downstream tooling reads, not everything the bench emits.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

NUMBER = {"type": "number"}
STRING = {"type": "string"}
BOOL = {"type": "boolean"}

MEASURED_GRAM = {
    "type": "object",
    "required": [
        "update_flops_per_iteration",
        "total_flops",
        "words_total",
        "critical_path_words",
        "peak_memory_words",
        "wall_seconds",
        "modeled_seconds_from_counters",
    ],
    "properties": {
        "update_flops_per_iteration": NUMBER,
        "total_flops": NUMBER,
        "words_total": NUMBER,
        "critical_path_words": NUMBER,
        "peak_memory_words": NUMBER,
        "wall_seconds": NUMBER,
        "modeled_seconds_from_counters": NUMBER,
    },
}

MODELED = {
    "type": "object",
    "required": [
        "work_pairs",
        "flops",
        "comm_words",
        "time_cost_flop_equiv",
        "energy_cost_flop_equiv",
        "memory_words_per_proc",
    ],
    "properties": {name: NUMBER for name in (
        "work_pairs", "flops", "comm_words", "time_cost_flop_equiv",
        "energy_cost_flop_equiv", "memory_words_per_proc")},
}

GRAM_CASE = {
    "type": "object",
    "required": [
        "dataset", "platform", "strategy", "m", "l", "n", "nnz", "p",
        "iterations", "measured", "modeled", "model_check",
    ],
    "properties": {
        "dataset": STRING,
        "platform": STRING,
        "strategy": STRING,
        "m": NUMBER,
        "l": NUMBER,
        "n": NUMBER,
        "nnz": NUMBER,
        "p": NUMBER,
        "iterations": NUMBER,
        "measured": MEASURED_GRAM,
        "modeled": MODELED,
        "model_check": {
            "type": "object",
            "required": [
                "covered_by_eq2", "expected_flops_per_iteration",
                "flops_match_exact",
            ],
            "properties": {
                "covered_by_eq2": BOOL,
                "expected_flops_per_iteration": NUMBER,
                "flops_match_exact": BOOL,
            },
        },
    },
}

GRAM_MODEL_SCHEMA = {
    "type": "object",
    "required": [
        "schema_version", "benchmark", "mode", "units", "cases", "summary",
        "instrumentation_overhead",
    ],
    "properties": {
        "schema_version": NUMBER,
        "benchmark": STRING,
        "mode": STRING,
        "units": STRING,
        "cases": {"type": "array", "items": GRAM_CASE},
        "summary": {
            "type": "object",
            "required": [
                "cases", "covered_by_eq2", "exact_flop_matches",
                "all_cases_match",
            ],
            "properties": {
                "cases": NUMBER,
                "covered_by_eq2": NUMBER,
                "exact_flop_matches": NUMBER,
                "all_cases_match": BOOL,
            },
        },
        "instrumentation_overhead": {
            "type": "object",
            "required": [
                "workload", "metrics_enabled_seconds",
                "metrics_disabled_seconds", "delta_pct", "note",
            ],
            "properties": {
                "workload": STRING,
                "metrics_enabled_seconds": NUMBER,
                "metrics_disabled_seconds": NUMBER,
                "delta_pct": NUMBER,
                "note": STRING,
            },
        },
    },
}

SOLVERS_SCHEMA = {
    "type": "object",
    "required": ["schema_version", "benchmark", "mode", "cases",
                 "metrics_snapshot"],
    "properties": {
        "schema_version": NUMBER,
        "benchmark": STRING,
        "mode": STRING,
        "cases": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["solver", "dataset", "l", "measured"],
                "properties": {
                    "solver": STRING,
                    "dataset": STRING,
                    "l": NUMBER,
                    "measured": {"type": "object", "required": ["wall_seconds"]},
                },
            },
        },
        "metrics_snapshot": {
            "type": "object",
            "required": ["counters", "spans"],
            "properties": {
                "counters": {"type": "object"},
                "spans": {"type": "object"},
            },
        },
    },
}

SERVE_LATENCY = {
    "type": "object",
    "required": [
        "count", "mean_seconds", "p50_seconds", "p90_seconds", "p95_seconds",
        "p99_seconds", "max_seconds",
    ],
    "properties": {name: NUMBER for name in (
        "count", "mean_seconds", "p50_seconds", "p90_seconds", "p95_seconds",
        "p99_seconds", "max_seconds")},
}

SERVE_COUNTS = {
    "type": "object",
    "required": [
        "submitted", "accepted", "served", "rejected", "shed", "stopped",
        "discarded", "invalid", "encode_failed", "lost", "batches",
        "columns_encoded", "max_batch_columns",
    ],
    "properties": {name: NUMBER for name in (
        "submitted", "accepted", "served", "rejected", "shed", "stopped",
        "discarded", "invalid", "encode_failed", "lost", "batches",
        "columns_encoded", "max_batch_columns")},
}

SERVE_CASE = {
    "type": "object",
    "required": [
        "name", "loop", "policy", "max_batch", "max_delay_us", "workers",
        "queue_capacity", "requests", "wall_seconds", "throughput_rps",
        "counts", "latency", "queue_wait",
    ],
    "properties": {
        "name": STRING,
        "loop": STRING,
        "policy": STRING,
        "max_batch": NUMBER,
        "max_delay_us": NUMBER,
        "workers": NUMBER,
        "queue_capacity": NUMBER,
        "requests": NUMBER,
        "offered_rps": NUMBER,  # open-loop cases only
        "wall_seconds": NUMBER,
        "throughput_rps": NUMBER,
        "counts": SERVE_COUNTS,
        "latency": SERVE_LATENCY,
        "queue_wait": SERVE_LATENCY,
    },
}

SERVE_SCHEMA = {
    "type": "object",
    "required": [
        "schema_version", "benchmark", "mode", "units", "workload", "cases",
        "summary",
    ],
    "properties": {
        "schema_version": NUMBER,
        "benchmark": STRING,
        "mode": STRING,
        "units": STRING,
        "workload": {
            "type": "object",
            "required": [
                "signal_dim", "atoms", "tolerance", "max_atoms",
                "signal_pool", "seeds",
            ],
            "properties": {
                "signal_dim": NUMBER,
                "atoms": NUMBER,
                "tolerance": NUMBER,
                "max_atoms": NUMBER,
                "signal_pool": NUMBER,
                "seeds": STRING,
            },
        },
        "cases": {"type": "array", "items": SERVE_CASE},
        "summary": {
            "type": "object",
            "required": [
                "cases", "total_submitted", "total_served", "total_lost",
                "all_futures_resolved", "accounting_balanced", "batch1_rps",
                "batch32_rps", "batch_speedup", "batch_amortization_win",
            ],
            "properties": {
                "cases": NUMBER,
                "total_submitted": NUMBER,
                "total_served": NUMBER,
                "total_lost": NUMBER,
                "all_futures_resolved": BOOL,
                "accounting_balanced": BOOL,
                "batch1_rps": NUMBER,
                "batch32_rps": NUMBER,
                "batch_speedup": NUMBER,
                "batch_amortization_win": BOOL,
            },
        },
    },
}

CACHE_PASS = {
    "type": "object",
    "required": [
        "wall_seconds", "throughput_rps", "served", "lost", "hits", "misses",
        "hit_ratio", "insertions", "evictions", "latency",
    ],
    "properties": {
        **{name: NUMBER for name in (
            "wall_seconds", "throughput_rps", "served", "lost", "hits",
            "misses", "hit_ratio", "insertions", "evictions")},
        "latency": SERVE_LATENCY,
    },
}

CACHE_SCHEMA = {
    "type": "object",
    "required": [
        "schema_version", "benchmark", "mode", "units", "workload",
        "cache_sweep", "extend_pass", "summary",
    ],
    "properties": {
        "schema_version": NUMBER,
        "benchmark": STRING,
        "mode": STRING,
        "units": STRING,
        "workload": {
            "type": "object",
            "required": [
                "signal_dim", "atoms", "tolerance", "max_atoms",
                "signal_pool", "seeds",
            ],
            "properties": {
                "signal_dim": NUMBER,
                "atoms": NUMBER,
                "tolerance": NUMBER,
                "max_atoms": NUMBER,
                "signal_pool": NUMBER,
                "seeds": STRING,
            },
        },
        "cache_sweep": {
            "type": "object",
            "required": [
                "requests", "rounds", "pool_size", "warm_capacity",
                "expected_warm_hit_ratio", "cold", "warm", "warm_speedup",
                "warm_beats_cold", "hit_accounting_exact",
                "accounting_balanced",
            ],
            "properties": {
                **{name: NUMBER for name in (
                    "requests", "rounds", "pool_size", "warm_capacity",
                    "expected_warm_hit_ratio", "warm_speedup")},
                "cold": CACHE_PASS,
                "warm": CACHE_PASS,
                "warm_beats_cold": BOOL,
                "hit_accounting_exact": BOOL,
                "accounting_balanced": BOOL,
            },
        },
        "extend_pass": {
            "type": "object",
            "required": [
                "producers", "requests_per_producer", "flips",
                "atoms_per_flip", "epoch_after", "atoms_before", "atoms_after",
                "wall_seconds", "served", "cache_hits", "lost", "errors",
                "flip_seconds", "max_flip_seconds",
                "epochs_monotone_per_producer", "live_epochs_after_drain",
                "accounting_balanced", "contract_held",
            ],
            "properties": {
                **{name: NUMBER for name in (
                    "producers", "requests_per_producer", "flips",
                    "atoms_per_flip", "epoch_after", "atoms_before",
                    "atoms_after", "wall_seconds", "served", "cache_hits",
                    "lost", "errors", "max_flip_seconds",
                    "live_epochs_after_drain")},
                "flip_seconds": {"type": "array", "items": NUMBER},
                "epochs_monotone_per_producer": BOOL,
                "accounting_balanced": BOOL,
                "contract_held": BOOL,
            },
        },
        "summary": {
            "type": "object",
            "required": [
                "warm_beats_cold", "hit_accounting_exact",
                "extension_contract_held", "violations",
            ],
            "properties": {
                "warm_beats_cold": BOOL,
                "hit_accounting_exact": BOOL,
                "extension_contract_held": BOOL,
                "violations": BOOL,
            },
        },
    },
}

TELEMETRY_SNAPSHOT = {
    "type": "object",
    "required": [
        "seq", "wall_ms", "submitted", "accepted", "served",
        "encode_failures", "shed", "discarded", "cache_hits", "queue_depth",
        "inflight", "busy_workers", "epoch", "live_epochs", "cache_entries",
        "cache_resident_bytes", "window_count", "window_p50", "window_p99",
        "cumulative_count", "cumulative_p50", "cumulative_p99", "residual",
    ],
    "properties": {name: NUMBER for name in (
        "seq", "wall_ms", "submitted", "accepted", "served",
        "encode_failures", "shed", "discarded", "cache_hits", "queue_depth",
        "inflight", "busy_workers", "epoch", "live_epochs", "cache_entries",
        "cache_resident_bytes", "window_count", "window_p50", "window_p99",
        "cumulative_count", "cumulative_p50", "cumulative_p99", "residual")},
}

TELEMETRY_SCHEMA = {
    "type": "object",
    "required": [
        "schema_version", "benchmark", "mode", "units", "workload",
        "telemetry_pass", "summary",
    ],
    "properties": {
        "schema_version": NUMBER,
        "benchmark": STRING,
        "mode": STRING,
        "units": STRING,
        "workload": {
            "type": "object",
            "required": [
                "signal_dim", "atoms", "tolerance", "max_atoms",
                "signal_pool", "seeds",
            ],
            "properties": {
                "signal_dim": NUMBER,
                "atoms": NUMBER,
                "tolerance": NUMBER,
                "max_atoms": NUMBER,
                "signal_pool": NUMBER,
                "seeds": STRING,
            },
        },
        "telemetry_pass": {
            "type": "object",
            "required": [
                "config", "wall_seconds", "served", "cache_hits", "lost",
                "errors", "snapshotter_ok", "snapshot_count", "seq_monotone",
                "snapshots", "reconciliation", "epoch_flip", "overhead",
                "cache", "accounting_balanced", "contract_held",
            ],
            "properties": {
                "config": {
                    "type": "object",
                    "required": [
                        "requests", "offered_rps", "period_ms", "workers",
                        "max_batch", "queue_capacity", "cache_capacity",
                        "flip_at_request", "atoms_per_flip", "tolerance",
                        "snapshots_file",
                    ],
                    "properties": {
                        **{name: NUMBER for name in (
                            "requests", "offered_rps", "period_ms", "workers",
                            "max_batch", "queue_capacity", "cache_capacity",
                            "flip_at_request", "atoms_per_flip", "tolerance")},
                        "snapshots_file": STRING,
                    },
                },
                **{name: NUMBER for name in (
                    "wall_seconds", "served", "cache_hits", "lost", "errors",
                    "snapshot_count")},
                "snapshotter_ok": BOOL,
                "seq_monotone": BOOL,
                "snapshots": {"type": "array", "items": TELEMETRY_SNAPSHOT},
                "reconciliation": {
                    "type": "object",
                    "required": [
                        "tolerance", "max_abs_residual", "final_residual",
                        "ok",
                    ],
                    "properties": {
                        "tolerance": NUMBER,
                        "max_abs_residual": NUMBER,
                        "final_residual": NUMBER,
                        "ok": BOOL,
                    },
                },
                "epoch_flip": {
                    "type": "object",
                    "required": [
                        "epoch_after", "flip_wall_ms", "flip_seconds",
                        "pre_flip_snapshots", "post_flip_snapshots", "ok",
                    ],
                    "properties": {
                        **{name: NUMBER for name in (
                            "epoch_after", "flip_wall_ms", "flip_seconds",
                            "pre_flip_snapshots", "post_flip_snapshots")},
                        "ok": BOOL,
                    },
                },
                "overhead": {
                    "type": "object",
                    "required": [
                        "rounds", "requests_per_round", "median_ratio",
                        "floor", "ok",
                    ],
                    "properties": {
                        **{name: NUMBER for name in (
                            "rounds", "requests_per_round", "median_ratio",
                            "floor")},
                        "ok": BOOL,
                    },
                },
                "cache": {
                    "type": "object",
                    "required": [
                        "hits", "misses", "entries_at_drain",
                        "resident_bytes_at_drain",
                    ],
                    "properties": {name: NUMBER for name in (
                        "hits", "misses", "entries_at_drain",
                        "resident_bytes_at_drain")},
                },
                "accounting_balanced": BOOL,
                "contract_held": BOOL,
            },
        },
        "summary": {
            "type": "object",
            "required": [
                "snapshot_count", "reconciliation_ok", "epoch_flip_ok",
                "overhead_ok", "violations",
            ],
            "properties": {
                "snapshot_count": NUMBER,
                "reconciliation_ok": BOOL,
                "epoch_flip_ok": BOOL,
                "overhead_ok": BOOL,
                "violations": BOOL,
            },
        },
    },
}

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; keep the two disjoint.
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def validate(value, schema, path, errors):
    expected = schema.get("type")
    if expected and not TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if expected == "object":
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required member '{key}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}", errors)
    elif expected == "array":
        item_schema = schema.get("items")
        if item_schema:
            for i, item in enumerate(value):
                validate(item, item_schema, f"{path}[{i}]", errors)


def check_semantics_gram(doc, errors):
    """Beyond shape: the invariants the bench exists to pin."""
    summary = doc.get("summary", {})
    cases = doc.get("cases", [])
    if summary.get("cases") != len(cases):
        errors.append("summary.cases disagrees with len(cases)")
    if not summary.get("all_cases_match", False):
        errors.append("summary.all_cases_match is false: the measured update "
                      "FLOPs diverged from the cost model")
    strategies = {c.get("strategy") for c in cases}
    wanted = {"partitioned_dictionary", "root_dictionary",
              "replicated_dictionary", "original_ata"}
    missing = wanted - strategies
    if missing:
        errors.append(f"sweep is missing strategies: {sorted(missing)}")
    for i, case in enumerate(cases):
        check = case.get("model_check", {})
        measured = case.get("measured", {})
        if check.get("flops_match_exact") and (
                measured.get("update_flops_per_iteration")
                != check.get("expected_flops_per_iteration")):
            errors.append(f"cases[{i}]: flops_match_exact is true but the "
                          "numbers differ")


def check_semantics_serve(doc, errors):
    """The serving contract: nothing lost, books balance, batching pays."""
    summary = doc.get("summary", {})
    cases = doc.get("cases", [])
    if summary.get("cases") != len(cases):
        errors.append("summary.cases disagrees with len(cases)")
    if summary.get("total_lost") != 0:
        errors.append("summary.total_lost is nonzero: futures were lost")
    if not summary.get("all_futures_resolved", False):
        errors.append("summary.all_futures_resolved is false")
    if not summary.get("accounting_balanced", False):
        errors.append("summary.accounting_balanced is false")
    if not summary.get("batch_amortization_win", False):
        errors.append("summary.batch_amortization_win is false: micro-"
                      "batching did not beat the batch-size-1 configuration")
    if summary.get("batch_speedup", 0) <= 1.0:
        errors.append("summary.batch_speedup is not > 1")
    names = {c.get("name") for c in cases}
    for wanted in ("closed_batch1_w1", "closed_batch32_w1"):
        if wanted not in names:
            errors.append(f"amortization pair case '{wanted}' is missing")
    for i, case in enumerate(cases):
        counts = case.get("counts", {})
        if counts.get("lost") != 0:
            errors.append(f"cases[{i}]: counts.lost is nonzero")
        submitted = counts.get("submitted", 0)
        # cache_hits defaults to 0: the sweep cases run with the cache off,
        # and older artifacts predate the counter.
        refused = sum(counts.get(k, 0)
                      for k in ("accepted", "invalid", "rejected", "stopped",
                                "cache_hits"))
        if submitted != refused:
            errors.append(f"cases[{i}]: submitted != accepted + invalid + "
                          "rejected + stopped + cache_hits")
        accepted = counts.get("accepted", 0)
        settled = sum(counts.get(k, 0)
                      for k in ("served", "encode_failed", "shed", "discarded"))
        if accepted != settled:
            errors.append(f"cases[{i}]: accepted != served + encode_failed + "
                          "shed + discarded")
        if counts.get("columns_encoded") != (counts.get("served", 0)
                                             + counts.get("encode_failed", 0)):
            errors.append(f"cases[{i}]: columns_encoded != served + "
                          "encode_failed")
        if case.get("loop") == "open" and "offered_rps" not in case:
            errors.append(f"cases[{i}]: open-loop case lacks offered_rps")


def check_semantics_solvers(doc, errors):
    """The Batch-OMP FLOP meter and its closed form must agree exactly."""
    omp_cases = [c for c in doc.get("cases", [])
                 if c.get("solver") == "batch_omp_flop_model"]
    if not omp_cases:
        errors.append("no batch_omp_flop_model cases: the metered-vs-model "
                      "Batch-OMP check did not run")
    for i, case in enumerate(omp_cases):
        check = case.get("model_check", {})
        if not check.get("flops_match_exact", False):
            errors.append(f"batch_omp_flop_model[{i}]: flops_match_exact is "
                          "false — metered FLOPs diverged from encode_flops()")
        if check.get("exact_matches") != case.get("signals"):
            errors.append(f"batch_omp_flop_model[{i}]: exact_matches != "
                          "signals")


def check_semantics_cache(doc, errors):
    """The cache contract: warm wins, hits are exactly accounted, and the
    epoch flips were zero-downtime (nothing lost, books balanced, old
    epochs reclaimed)."""
    sweep = doc.get("cache_sweep", {})
    ext = doc.get("extend_pass", {})
    summary = doc.get("summary", {})

    if summary.get("violations") is not False:
        errors.append("summary.violations is true: the bench recorded a "
                      "contract violation")
    if not sweep.get("warm_beats_cold", False):
        errors.append("cache_sweep.warm_beats_cold is false")
    if sweep.get("warm_speedup", 0) <= 1.0:
        errors.append("cache_sweep.warm_speedup is not > 1")
    if not sweep.get("hit_accounting_exact", False):
        errors.append("cache_sweep.hit_accounting_exact is false")
    if not sweep.get("accounting_balanced", False):
        errors.append("cache_sweep.accounting_balanced is false")

    cold = sweep.get("cold", {})
    warm = sweep.get("warm", {})
    requests = sweep.get("requests", 0)
    pool = sweep.get("pool_size", 0)
    if cold.get("hits") != 0:
        errors.append("cache_sweep.cold.hits is nonzero with the cache off")
    if warm.get("hits") != requests - pool:
        errors.append("cache_sweep.warm.hits != requests - pool_size (serial "
                      "round trips make this count exact)")
    if warm.get("hits", 0) + warm.get("misses", 0) != requests:
        errors.append("cache_sweep.warm: hits + misses != requests")
    ratio = warm.get("hit_ratio", -1)
    if not 0 < ratio <= 1:
        errors.append("cache_sweep.warm.hit_ratio is outside (0, 1]")
    expected = sweep.get("expected_warm_hit_ratio", 0)
    if abs(ratio - expected) > 1e-9:
        errors.append("cache_sweep.warm.hit_ratio disagrees with "
                      "expected_warm_hit_ratio")
    for side, name in ((cold, "cold"), (warm, "warm")):
        if side.get("lost") != 0:
            errors.append(f"cache_sweep.{name}.lost is nonzero")

    if ext.get("flips", 0) < 3:
        errors.append("extend_pass.flips < 3: not enough epoch flips to "
                      "exercise the zero-downtime path")
    if ext.get("epoch_after") != ext.get("flips"):
        errors.append("extend_pass.epoch_after != flips")
    if (ext.get("atoms_after") != ext.get("atoms_before", 0)
            + ext.get("flips", 0) * ext.get("atoms_per_flip", 0)):
        errors.append("extend_pass: atoms_after != atoms_before + "
                      "flips * atoms_per_flip")
    if ext.get("lost") != 0 or ext.get("errors") != 0:
        errors.append("extend_pass lost futures or saw encode errors")
    if not ext.get("epochs_monotone_per_producer", False):
        errors.append("extend_pass.epochs_monotone_per_producer is false")
    if ext.get("live_epochs_after_drain") != 1:
        errors.append("extend_pass.live_epochs_after_drain != 1: retired "
                      "epochs were not reclaimed")
    if not ext.get("accounting_balanced", False):
        errors.append("extend_pass.accounting_balanced is false")
    if not ext.get("contract_held", False):
        errors.append("extend_pass.contract_held is false")
    flip_seconds = ext.get("flip_seconds", [])
    if len(flip_seconds) != ext.get("flips", 0):
        errors.append("extend_pass.flip_seconds length != flips")
    for i, s in enumerate(flip_seconds):
        if not 0 < s <= 30:
            errors.append(f"extend_pass.flip_seconds[{i}] = {s} is outside "
                          "(0, 30] seconds — flips must be fast and nonzero")
    if flip_seconds and abs(ext.get("max_flip_seconds", 0)
                            - max(flip_seconds)) > 1e-12:
        errors.append("extend_pass.max_flip_seconds != max(flip_seconds)")


def check_semantics_telemetry(doc, errors):
    """The telemetry contract: enough snapshots, every snapshot reconciles
    against the serving identity within the embedded tolerance (the drained
    final one exactly), the mid-run epoch flip shows as a gauge step, and
    the snapshotter's overhead stays under the bench noise floor."""
    tele = doc.get("telemetry_pass", {})
    summary = doc.get("summary", {})
    snapshots = tele.get("snapshots", [])
    tolerance = tele.get("config", {}).get("tolerance", 0)

    if summary.get("violations") is not False:
        errors.append("summary.violations is true: the bench recorded a "
                      "contract violation")
    if tele.get("snapshot_count", 0) < 20:
        errors.append("telemetry_pass.snapshot_count < 20: too few snapshots "
                      "to call the stream live")
    if len(snapshots) != tele.get("snapshot_count"):
        errors.append("len(snapshots) != snapshot_count")
    if not tele.get("seq_monotone", False):
        errors.append("telemetry_pass.seq_monotone is false")
    if tele.get("lost") != 0 or tele.get("errors") != 0:
        errors.append("telemetry_pass lost futures or saw encode errors")
    if not tele.get("snapshotter_ok", False):
        errors.append("telemetry_pass.snapshotter_ok is false: the exporter "
                      "could not write its stream")
    if not tele.get("reconciliation", {}).get("ok", False):
        errors.append("reconciliation.ok is false")
    if tele.get("reconciliation", {}).get("final_residual") != 0:
        errors.append("reconciliation.final_residual != 0: the drained "
                      "server's books do not close")
    if not tele.get("epoch_flip", {}).get("ok", False):
        errors.append("epoch_flip.ok is false: the mid-run extension is not "
                      "visible as a serve.registry.epoch gauge step")
    overhead = tele.get("overhead", {})
    if not overhead.get("ok", False):
        errors.append("overhead.ok is false: the snapshotter cost more than "
                      "the bench noise floor")
    if overhead.get("median_ratio", 99) > overhead.get("floor", 0):
        errors.append("overhead.median_ratio exceeds overhead.floor")
    if not tele.get("accounting_balanced", False):
        errors.append("telemetry_pass.accounting_balanced is false")
    if not tele.get("contract_held", False):
        errors.append("telemetry_pass.contract_held is false")

    for i, snap in enumerate(snapshots):
        if snap.get("seq") != i:
            errors.append(f"snapshots[{i}].seq != {i}: not a contiguous "
                          "0-based sequence")
        expected = (snap.get("accepted", 0) - snap.get("served", 0)
                    - snap.get("encode_failures", 0) - snap.get("shed", 0)
                    - snap.get("discarded", 0))
        level = snap.get("queue_depth", 0) + snap.get("inflight", 0)
        if snap.get("residual") != level - expected:
            errors.append(f"snapshots[{i}].residual does not match its own "
                          "counters and gauges")
        if abs(snap.get("residual", 0)) > tolerance:
            errors.append(f"snapshots[{i}].residual exceeds the embedded "
                          f"tolerance {tolerance}")
        if i > 0 and snap.get("wall_ms", 0) < snapshots[i - 1].get("wall_ms", 0):
            errors.append(f"snapshots[{i}].wall_ms ran backwards")
    if snapshots:
        final = snapshots[-1]
        if final.get("queue_depth") != 0 or final.get("inflight") != 0:
            errors.append("final snapshot still has queued or in-flight "
                          "requests after the drain")
        if final.get("residual") != 0:
            errors.append("final snapshot residual is nonzero")
        epochs = [s.get("epoch", 0) for s in snapshots]
        if epochs[0] != 0 or epochs[-1] != 1 or any(
                b < a for a, b in zip(epochs, epochs[1:])):
            errors.append("serve.registry.epoch gauge is not a monotone "
                          "0 -> 1 step across the stream")


def run(path, schema, semantic_check=None):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"FAIL {path}: {exc}")
        return False
    errors = []
    validate(doc, schema, "$", errors)
    if semantic_check and not errors:
        semantic_check(doc, errors)
    for message in errors:
        print(f"FAIL {path}: {message}")
    if not errors:
        print(f"ok   {path}")
    return not errors


def main(argv):
    paths = argv[1:] or ["BENCH_gram_model.json", "BENCH_solvers.json",
                         "BENCH_serve.json", "BENCH_cache.json",
                         "BENCH_telemetry.json"]
    ok = True
    for path in paths:
        name = Path(path).name
        if "gram_model" in name:
            ok &= run(path, GRAM_MODEL_SCHEMA, check_semantics_gram)
        elif "solvers" in name:
            ok &= run(path, SOLVERS_SCHEMA, check_semantics_solvers)
        elif "cache" in name:
            ok &= run(path, CACHE_SCHEMA, check_semantics_cache)
        elif "telemetry" in name:
            ok &= run(path, TELEMETRY_SCHEMA, check_semantics_telemetry)
        elif "serve" in name:
            ok &= run(path, SERVE_SCHEMA, check_semantics_serve)
        else:
            print(f"FAIL {path}: unknown artifact (expected "
                  "BENCH_gram_model.json, BENCH_solvers.json, "
                  "BENCH_serve.json, BENCH_cache.json, or "
                  "BENCH_telemetry.json)")
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
