#!/usr/bin/env python3
"""extdict-analyze: whole-program Clang-AST analysis for the ExtDict tree.

Mechanizes the concurrency and contract policies that `src/util/sync.hpp` and
`docs/CORRECTNESS.md` state in prose, and that `tools/extdict-lint.py` can only
approximate with regexes. Six rules, all operating on real Clang ASTs
(`clang++ -fsyntax-only -Xclang -ast-dump=json`, driven by
`compile_commands.json`; stdlib python only, no libclang):

  lock-order             Extract the cross-TU lock acquisition graph: which
                         `util::Mutex` objects are held when another is
                         acquired (directly or through any call chain). Any
                         cycle fails. Any edge (a lock held while acquiring
                         another) must be explicitly declared at the source
                         mutex with `// extdict-analyze: non-leaf(A -> B)`;
                         undeclared edges and stale declarations fail.
  guarded-by             Every mutable field of a class that owns a
                         `util::Mutex` must carry EXTDICT_GUARDED_BY /
                         EXTDICT_PT_GUARDED_BY or an explicit waiver.
                         (const, reference, atomic, Mutex and CondVar fields
                         are exempt.)
  blocking-while-locked  Condvar waits (on a different mutex), thread joins,
                         future get/wait, sleeps and file I/O reached — again
                         directly or transitively — while a lock is held.
  missing-shape-contract Public entry points in src/la/, src/sparsecoding/
                         and src/core/ taking dimensioned parameters (Matrix,
                         CscMatrix, Vector, span) must evaluate
                         EXTDICT_REQUIRE_SHAPE (possibly by delegating to a
                         function that does) before the first loop or the
                         first element access on those parameters.
  hot-loop-allocation    AST-accurate version of the extdict-lint rule: no
                         heap allocation inside a loop that contains an
                         EXTDICT_HOT_ASSERT.
  omp-sharing            Whole-program OpenMP data-sharing verification.
                         Every `#pragma omp parallel` region must say
                         `default(none)` (checked against the source text —
                         Clang's JSON dump does not expose the default
                         clause's kind). Every lvalue written inside a
                         region must be provably race-free: subscripted by
                         the loop induction variable (or a region-local
                         alias of it), region-local, listed in a
                         private/firstprivate/lastprivate/reduction clause,
                         std::atomic, written under `omp atomic` /
                         `omp critical` / a held util::Mutex, or explicitly
                         waived. Calls out of a region are followed
                         transitively through the merged per-TU fact
                         summaries: a region may only reach
                         thread-compatible functions — nothing that writes
                         unguarded statics/globals, blocks, or acquires a
                         declared non-leaf lock; functions that mutate
                         their own members without a lock are flagged when
                         invoked on a receiver shared across iterations.

Contract macros are invisible after preprocessing, so the front-end compiles
every TU with -DEXTDICT_ANALYZE: `src/util/contracts.hpp` then injects a
distinct never-defined marker call (`extdict::util::analyze::mark_*`) into
each contract macro. The markers survive into the AST with exact expansion
locations and are never linked (the analyzer only ever runs -fsyntax-only).

Waivers share the extdict-lint syntax (`// extdict-lint: allow(rule) reason`
on the line or the line above; the `extdict-analyze:` prefix is accepted too).

Exit codes: 0 clean, 1 findings, 2 usage/toolchain/parse error,
77 skipped (--skip-without-clang and no clang available; ctest
SKIP_RETURN_CODE).

The analyzer degrades gracefully: without clang, the tree scan is a skip (or
an error under --require-clang, which CI uses) while --self-test still
exercises the full analysis core against checked-in AST JSON fixtures.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import shlex
import shutil
import subprocess
import sys

VERSION = "2"  # bump to invalidate caches on analyzer behavior changes

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RULES = (
    "lock-order",
    "guarded-by",
    "blocking-while-locked",
    "missing-shape-contract",
    "hot-loop-allocation",
    "omp-sharing",
)

WAIVER_RE = re.compile(
    r"(?:extdict-lint|extdict-analyze):\s*allow\(([\w\s,-]+)\)")
NONLEAF_RE = re.compile(
    r"extdict-analyze:\s*non-leaf\(\s*([\w:~]+)\s*->\s*([^)]+)\)")
GUARD_TEXT_RE = re.compile(r"EXTDICT(?:_PT)?_GUARDED_BY\s*\(")

MUTEX_TYPE_RE = re.compile(r"\bMutex\b")
MUTEXLOCK_TYPE_RE = re.compile(r"\bMutexLock\b")
CONDVAR_TYPE_RE = re.compile(r"\bCondVar\b")
ATOMIC_TYPE_RE = re.compile(r"\batomic\b")
DIMENSIONED_TYPE_RE = re.compile(r"\b(Matrix|CscMatrix|Vector|span)\b")

CONTRACT_SCOPE_RE = re.compile(r"(?:^|/)src/(?:la|sparsecoding|core)/")

LOOP_KINDS = frozenset(
    ("ForStmt", "WhileStmt", "DoStmt", "CXXForRangeStmt"))
FUNCTION_KINDS = frozenset((
    "FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
    "CXXDestructorDecl", "CXXConversionDecl"))
RECORD_KINDS = frozenset(
    ("CXXRecordDecl", "ClassTemplateSpecializationDecl",
     "ClassTemplatePartialSpecializationDecl"))

MARKER_NAMES = {
    "mark_require_shape": "require_shape",
    "mark_assert": "assert",
    "mark_hot_assert": "hot_assert",
    "mark_check_finite": "check_finite",
}

ALLOC_MEMBER_NAMES = frozenset((
    "push_back", "emplace_back", "push_front", "emplace_front", "resize",
    "reserve", "insert", "emplace", "append", "assign"))
ALLOC_CONTAINER_RE = re.compile(
    r"vector|basic_string|deque|map|set|list|queue")
ALLOC_FREE_NAMES = frozenset(("to_string", "make_unique", "make_shared"))

FUTURE_TYPE_RE = re.compile(r"\bfuture\b|\bshared_future\b")
THREAD_TYPE_RE = re.compile(r"\bthread\b")
FSTREAM_TYPE_RE = re.compile(
    r"basic_[io]?fstream|basic_filebuf|\bFILE\b")
FILE_FREE_NAMES = frozenset((
    "fopen", "fclose", "fread", "fwrite", "fflush", "fgets", "fputs",
    "fprintf", "fscanf"))

# OpenMP directives that fork a team. Combined directives keep the parallel
# region and the worksharing loop in one node.
OMP_PARALLEL_KINDS = frozenset((
    "OMPParallelDirective", "OMPParallelForDirective",
    "OMPParallelForSimdDirective", "OMPParallelSectionsDirective"))
# Directives whose dynamic extent makes the writes inside them race-free.
OMP_SYNC_KINDS = {
    "OMPAtomicDirective": "atomic",
    "OMPCriticalDirective": "critical",
    "OMPSingleDirective": "single",
    "OMPMasterDirective": "master",
    "OMPMaskedDirective": "masked",
}
# Loop-associated directives: their first ForStmt's induction variable is
# iteration-unique within the enclosing parallel region.
OMP_LOOP_KINDS = frozenset((
    "OMPParallelForDirective", "OMPParallelForSimdDirective",
    "OMPForDirective", "OMPForSimdDirective"))
# Clauses that privatize (or reduce, which privatizes the partials) the
# listed variables.
OMP_PRIVATE_CLAUSES = frozenset((
    "OMPPrivateClause", "OMPFirstprivateClause", "OMPLastprivateClause",
    "OMPLinearClause", "OMPReductionClause", "OMPInReductionClause"))
# Pure value-preserving wrappers an induction alias may be built from.
CAST_WRAPPER_KINDS = frozenset((
    "ImplicitCastExpr", "CStyleCastExpr", "CXXStaticCastExpr",
    "CXXFunctionalCastExpr", "CXXConstCastExpr", "ParenExpr",
    "ExprWithCleanups", "ConstantExpr", "MaterializeTemporaryExpr",
    "FullExpr"))
# operator spellings that mutate their first operand.
MUTATING_OPERATORS = frozenset((
    "operator=", "operator+=", "operator-=", "operator*=", "operator/=",
    "operator%=", "operator&=", "operator|=", "operator^=", "operator<<=",
    "operator>>=", "operator++", "operator--"))

OMP_PRAGMA_RE = re.compile(r"#\s*pragma\s+omp\s+parallel\b")
DEFAULT_NONE_RE = re.compile(r"\bdefault\s*\(\s*none\s*\)")


class AnalyzeError(Exception):
    """Fatal analyzer error (bad input, malformed AST, toolchain failure)."""


def _field_is_const(qual_type):
    """True when the field itself is immutable: top-level const. A
    pointer-to-const with a mutable pointer (`const T*`) is NOT const; a
    const pointer (`T* const`) is."""
    q = qual_type.strip()
    if q.endswith("&"):
        return False  # references are exempted separately
    if "*" in q:
        return bool(re.search(r"\*\s*const$", q))
    return q.startswith("const ") or q == "const"


# ---------------------------------------------------------------------------
# Fact extraction: one Clang AST JSON dump -> a compact per-TU fact set.
# ---------------------------------------------------------------------------
#
# Clang's JSON dump encodes source locations differentially: "file" and
# "line" are printed only when they differ from the previously *printed*
# location, and the printer state spans the whole dump. Reproducing the
# state machine therefore requires walking every node in exact document
# order, updating from every bare location dict (recognized by its "offset"
# key; "includedFrom" sub-dicts carry no offset and are correctly ignored).
# Macro locations print spellingLoc then expansionLoc, so the state after a
# node's "loc"/"range.begin" is its expansion (use-site) position — exactly
# what we want to report.


class _Extractor:
    def __init__(self):
        self.cur_file = ""
        self.cur_line = 0
        self.decl_index = {}   # node id -> {"kind","qual","mangled",...}
        self.records = {}      # qual -> record fact dict
        self.functions = {}    # identity -> function fact dict
        self.files_seen = set()
        self._ctx = []         # namespace / record name stack
        self._fn = None        # current function fact (innermost)
        self._fn_stack = []
        self._frames = []      # held-lock frames (list of lists of lock refs)
        self._loops = []       # enclosing-loop id stack
        self._loop_seq = 0
        self._hot_loops = set()
        self._suppress_alloc = 0
        self._order = 0
        self._param_ids = {}
        self._omp = []         # enclosing OpenMP parallel-region stack
        self._omp_sync = []    # enclosing omp atomic/critical/single stack

    # -- location decoding ---------------------------------------------------

    def _eat_loc(self, obj):
        """Update differential location state from a loc-ish dict, in document
        order. Returns nothing; callers read self.cur_file/cur_line."""
        if not isinstance(obj, dict):
            return
        if "offset" in obj:
            f = obj.get("file")
            if isinstance(f, str):
                self.cur_file = f
            ln = obj.get("line")
            if isinstance(ln, int):
                self.cur_line = ln
            return
        # Macro location wrapper: spellingLoc printed first, expansionLoc
        # second; state after this call is the expansion location.
        sp = obj.get("spellingLoc")
        if sp is not None:
            self._eat_loc(sp)
        ex = obj.get("expansionLoc")
        if ex is not None:
            self._eat_loc(ex)

    def _eat_range(self, obj):
        if not isinstance(obj, dict):
            return
        self._eat_loc(obj.get("begin"))
        self._eat_loc(obj.get("end"))

    # -- helpers -------------------------------------------------------------

    def _qual(self, name):
        return "::".join(self._ctx + [name]) if name else "::".join(self._ctx)

    def _project_file(self, path):
        if not path:
            return False
        if path.startswith("/usr/") or path.startswith("/lib/"):
            return False
        if "include/c++" in path or "lib/clang" in path:
            return False
        return True

    def _held(self):
        out = []
        for frame in self._frames:
            out.extend(frame)
        return out

    def _event(self, ev):
        if self._fn is None:
            return
        if self._omp and "rgn" not in ev:
            ev["rgn"] = self._omp[-1]["id"]
        self._order += 1
        ev["o"] = self._order
        self._fn["events"].append(ev)

    @staticmethod
    def _first_descendant(node, pred, depth=6):
        """First node (document order) in `node`'s subtree satisfying pred."""
        if depth < 0 or not isinstance(node, dict):
            return None
        if pred(node):
            return node
        for child in node.get("inner") or []:
            found = _Extractor._first_descendant(child, pred, depth - 1)
            if found is not None:
                return found
        return None

    @staticmethod
    def _lock_ref(expr):
        """Resolve an expression naming a mutex to a lazy lock reference:
        ("id", declid) for member/var references, else None."""
        hit = _Extractor._first_descendant(
            expr,
            lambda n: n.get("kind") in ("MemberExpr", "DeclRefExpr"),
            depth=8)
        if hit is None:
            return None
        if hit.get("kind") == "MemberExpr":
            mid = hit.get("referencedMemberDecl")
            if mid:
                return ("id", mid, hit.get("name", "?"))
            return ("name", hit.get("name", "?"))
        ref = hit.get("referencedDecl") or {}
        if ref.get("id"):
            return ("id", ref["id"], ref.get("name", "?"))
        return ("name", hit.get("name", "?"))

    @staticmethod
    def _qual_type(node):
        t = node.get("type") or {}
        q = t.get("qualType", "") or ""
        d = t.get("desugaredQualType", "") or ""
        return q, d

    # -- main traversal ------------------------------------------------------

    def walk_tu(self, root):
        if not isinstance(root, dict) or root.get("kind") != "TranslationUnitDecl":
            raise AnalyzeError("not a Clang AST JSON dump "
                               "(missing TranslationUnitDecl root)")
        sys.setrecursionlimit(40000)
        for child in root.get("inner") or []:
            self._visit(child)
        return {
            "records": self.records,
            "functions": self.functions,
            "files": sorted(self.files_seen),
        }

    def _visit(self, node):
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")

        # Location bookkeeping, in exact print order: loc, then range.
        pos = None
        if "loc" in node:
            self._eat_loc(node["loc"])
            pos = (self.cur_file, self.cur_line)
        if "range" in node and isinstance(node["range"], dict):
            self._eat_loc(node["range"].get("begin"))
            if pos is None:
                pos = (self.cur_file, self.cur_line)
            self._eat_loc(node["range"].get("end"))
        if pos is None:
            pos = (self.cur_file, self.cur_line)

        project = self._project_file(pos[0])
        if project:
            self.files_seen.add(pos[0])

        handler = getattr(self, "_on_" + kind, None)
        if handler is not None:
            handler(node, pos, project)
        elif kind.startswith("OMP") and kind.endswith("Directive"):
            self._omp_directive(node, pos, project)
        else:
            self._recurse(node)

    def _recurse(self, node):
        inner = node.get("inner")
        if inner:
            for child in inner:
                self._visit(child)

    # -- declaration contexts ------------------------------------------------

    def _on_NamespaceDecl(self, node, pos, project):
        name = node.get("name") or "(anonymous)"
        self._ctx.append(name)
        self._recurse(node)
        self._ctx.pop()

    def _on_LinkageSpecDecl(self, node, pos, project):
        self._recurse(node)

    def _on_ClassTemplateDecl(self, node, pos, project):
        self._recurse(node)

    def _on_FunctionTemplateDecl(self, node, pos, project):
        self._recurse(node)

    def _record_decl(self, node, pos, project):
        name = node.get("name")
        if not name:  # lambdas / anonymous structs: not policy surface
            self._recurse(node)
            return
        qual = self._qual(name)
        if project and node.get("completeDefinition"):
            rec = self.records.setdefault(
                qual, {"file": pos[0], "line": pos[1], "fields": {},
                       "tag": node.get("tagUsed", "class")})
        self._ctx.append(name)
        self._recurse(node)
        self._ctx.pop()

    _on_CXXRecordDecl = _record_decl
    _on_ClassTemplateSpecializationDecl = _record_decl
    _on_ClassTemplatePartialSpecializationDecl = _record_decl

    def _on_FieldDecl(self, node, pos, project):
        name = node.get("name")
        rec_qual = self._qual("")
        fq, fd = self._qual_type(node)
        self.decl_index[node.get("id", "")] = {
            "kind": "field",
            "qual": (rec_qual + "::" + name) if name else rec_qual,
            "atomic": bool(ATOMIC_TYPE_RE.search(fq + " " + fd)),
        }
        if project and name and rec_qual in self.records:
            q, d = self._qual_type(node)
            both = q + " " + d
            guarded = False
            for child in node.get("inner") or []:
                if isinstance(child, dict) and \
                        child.get("kind") in ("GuardedByAttr",
                                              "PtGuardedByAttr"):
                    guarded = True
            self.records[rec_qual]["fields"][name] = {
                "line": pos[1],
                "file": pos[0],
                "type": q,
                "const": _field_is_const(q),
                "ref": "&" in q.split("(")[0],
                "mutex": bool(MUTEX_TYPE_RE.search(both)) and
                         not MUTEXLOCK_TYPE_RE.search(both),
                "condvar": bool(CONDVAR_TYPE_RE.search(both)),
                "atomic": bool(ATOMIC_TYPE_RE.search(both)),
                "guarded": guarded,
            }
        self._recurse(node)

    # -- functions -----------------------------------------------------------

    def _function_decl(self, node, pos, project):
        if node.get("isImplicit"):
            self._recurse(node)
            return
        name = node.get("name") or "(unnamed)"
        qual = self._qual(name)
        identity = node.get("mangledName") or qual
        self.decl_index[node.get("id", "")] = {
            "kind": "fn", "qual": qual, "identity": identity}

        has_body = any(
            isinstance(c, dict) and c.get("kind") == "CompoundStmt"
            for c in node.get("inner") or [])
        params = []
        for c in node.get("inner") or []:
            if isinstance(c, dict) and c.get("kind") == "ParmVarDecl":
                q, d = self._qual_type(c)
                params.append({
                    "id": c.get("id", ""),
                    "name": c.get("name", ""),
                    "type": q,
                    "dim": bool(DIMENSIONED_TYPE_RE.search(q + " " + d)),
                })

        if not has_body or not project:
            # Still index parameters (cheap) and recurse for nested decls.
            self._recurse(node)
            return

        in_sync_hpp = pos[0].endswith("sync.hpp")
        fn = {
            "qual": qual,
            "kind": node.get("kind"),
            "file": pos[0],
            "line": pos[1],
            "params": [{k: p[k] for k in ("name", "type", "dim")}
                       for p in params],
            "events": [],
            "regions": [],
            "intrinsic": in_sync_hpp,
        }
        param_ids = {p["id"]: p["name"] for p in params if p["dim"]}
        for p in params:
            if p["id"]:
                self.decl_index[p["id"]] = {
                    "kind": "var", "qual": p["name"], "storage": "param",
                    "mutex": False,
                    "atomic": bool(ATOMIC_TYPE_RE.search(p["type"]))}

        self._fn_stack.append(
            (self._fn, self._frames, self._loops, self._order,
             self._param_ids, self._hot_loops, self._omp, self._omp_sync))
        self._fn, self._frames, self._loops, self._order = fn, [], [], 0
        self._param_ids = param_ids
        self._hot_loops = set()
        self._omp, self._omp_sync = [], []
        self._recurse(node)
        self._finish_function(fn)
        (self._fn, self._frames, self._loops, self._order,
         self._param_ids, self._hot_loops, self._omp,
         self._omp_sync) = self._fn_stack.pop()

        prev = self.functions.get(identity)
        if prev is None or len(fn["events"]) > len(prev["events"]):
            self.functions[identity] = fn

    for _k in FUNCTION_KINDS:
        locals()["_on_" + _k] = _function_decl
    del _k

    def _finish_function(self, fn):
        # A loop is hot iff its subtree evaluated EXTDICT_HOT_ASSERT (the
        # marker may follow the allocation, so hotness resolves here). Keep
        # only allocations inside a hot loop and outside contract_failure
        # arguments (those only evaluate on failure).
        kept = []
        for ev in fn["events"]:
            if ev.get("k") != "alloc":
                kept.append(ev)
                continue
            loops = set(ev.pop("loops", ()))
            if ev.pop("suppressed", False):
                continue
            if loops & self._hot_loops:
                kept.append(ev)
        fn["events"] = kept
        # Region variable sets were built as python sets; freeze them into
        # sorted lists so per-TU facts stay JSON-cacheable.
        for region in fn["regions"]:
            for key in ("private", "shared", "induction", "locals"):
                region[key] = sorted(region[key])

    # -- statements ----------------------------------------------------------

    def _on_CompoundStmt(self, node, pos, project):
        self._frames.append([])
        self._recurse(node)
        self._frames.pop()

    def _loop_stmt(self, node, pos, project):
        if self._fn is not None:
            self._event({"k": "risky", "what": "loop",
                         "file": pos[0], "line": pos[1]})
            self._loop_seq += 1
            self._loops.append(self._loop_seq)
            self._recurse(node)
            self._loops.pop()
        else:
            self._recurse(node)

    for _k in LOOP_KINDS:
        locals()["_on_" + _k] = _loop_stmt
    del _k

    def _on_VarDecl(self, node, pos, project):
        q, d = self._qual_type(node)
        name = node.get("name", "")
        if self._fn is None:
            storage = "global"
        elif node.get("storageClass") == "static":
            storage = "static"
        else:
            storage = "local"
        self.decl_index[node.get("id", "")] = {
            "kind": "var", "qual": self._qual(name) if name else name,
            "storage": storage,
            "atomic": bool(ATOMIC_TYPE_RE.search(q + " " + d)),
            "mutex": bool(MUTEX_TYPE_RE.search(q + " " + d)) and
                     not MUTEXLOCK_TYPE_RE.search(q + " " + d)}
        if self._omp and storage == "local":
            region = self._omp[-1]
            region["locals"].add(node.get("id", ""))
            init = self._var_init(node)
            if init is not None:
                if self._induction_alias(init, region):
                    region["induction"].add(node.get("id", ""))
                elif self._mutable_ref_type(q):
                    # `auto& slot = y[j];` — binding a mutable reference is
                    # the checkpoint: classify the referent now, and let the
                    # later writes through the (region-local) reference pass.
                    self._write_event(init, pos)
        if self._fn is not None and MUTEXLOCK_TYPE_RE.search(q):
            lock = self._lock_ref(node)
            if lock is not None:
                self._event({"k": "acquire", "lock": lock,
                             "held": self._held(),
                             "file": pos[0], "line": pos[1]})
                if self._frames:
                    self._frames[-1].append(lock)
                else:
                    self._frames.append([lock])
            self._recurse(node)
            return
        self._recurse(node)

    # -- OpenMP regions and write tracking -----------------------------------

    @staticmethod
    def _var_init(node):
        """Initializer expression of a VarDecl (last non-attribute child)."""
        init = None
        for child in node.get("inner") or []:
            if isinstance(child, dict) and \
                    not child.get("kind", "").endswith(("Attr", "Comment")):
                init = child
        return init

    @staticmethod
    def _mutable_ref_type(qual_type):
        q = qual_type.strip()
        return q.endswith("&") and not q.startswith("const ")

    def _eat_subtree(self, node):
        """Consume every source location in `node`'s subtree in document
        order without generating events (clause subtrees feed the printer's
        differential location state like any other node)."""
        if not isinstance(node, dict):
            return
        if "loc" in node:
            self._eat_loc(node["loc"])
        if isinstance(node.get("range"), dict):
            self._eat_loc(node["range"].get("begin"))
            self._eat_loc(node["range"].get("end"))
        for child in node.get("inner") or []:
            self._eat_subtree(child)

    @staticmethod
    def _collect_declref_ids(node, out, depth=8):
        if depth < 0 or not isinstance(node, dict):
            return
        if node.get("kind") == "DeclRefExpr":
            rid = (node.get("referencedDecl") or {}).get("id")
            if rid:
                out.add(rid)
        for child in node.get("inner") or []:
            _Extractor._collect_declref_ids(child, out, depth - 1)

    @staticmethod
    def _collect_var_decl_ids(node, out, depth=4):
        if depth < 0 or not isinstance(node, dict):
            return
        if node.get("kind") == "VarDecl" and node.get("id"):
            out.add(node["id"])
        for child in node.get("inner") or []:
            _Extractor._collect_var_decl_ids(child, out, depth - 1)

    def _operator_name(self, node):
        ref = self._first_descendant(
            node, lambda n: n.get("kind") == "DeclRefExpr", depth=3)
        if ref is None:
            return ""
        rd = ref.get("referencedDecl") or {}
        return str(rd.get("name", "") or ref.get("name", ""))

    def _induction_alias(self, expr, region):
        """True when `expr` is a pure cast/paren chain over the region's
        induction variable (`static_cast<std::size_t>(j)` and friends)."""
        node = expr
        for _ in range(10):
            if not isinstance(node, dict):
                return False
            kind = node.get("kind", "")
            inner = node.get("inner") or []
            if kind in CAST_WRAPPER_KINDS and inner:
                node = inner[0]
            elif kind == "DeclRefExpr":
                rid = (node.get("referencedDecl") or {}).get("id")
                return rid in region["induction"]
            else:
                return False
        return False

    def _has_induction_ref(self, expr, region):
        ind = region["induction"]
        if not ind:
            return False
        return self._first_descendant(
            expr,
            lambda n: n.get("kind") == "DeclRefExpr" and
            (n.get("referencedDecl") or {}).get("id") in ind,
            depth=8) is not None

    def _resolve_lvalue(self, expr):
        """Peel an lvalue down to its written base: ("var"|"member"|"this"|
        "unknown", declid, name) plus the subscript expressions crossed on
        the way (member access classifies by the enclosing object; member-
        of-this targets the field itself)."""
        subs = []
        node = expr
        for _ in range(40):
            if not isinstance(node, dict):
                return None, subs
            kind = node.get("kind", "")
            inner = node.get("inner") or []
            if kind in CAST_WRAPPER_KINDS and inner:
                node = inner[0]
            elif kind == "ArraySubscriptExpr" and len(inner) >= 2:
                subs.append(inner[1])
                node = inner[0]
            elif kind == "CXXOperatorCallExpr" and len(inner) >= 2:
                opname = self._operator_name(node)
                if opname in ("operator[]", "operator()"):
                    subs.extend(inner[2:])
                    node = inner[1]
                else:
                    return ("unknown", None, kind), subs
            elif kind == "MemberExpr" and inner:
                probe = inner[0]
                for _i in range(8):
                    if isinstance(probe, dict) and \
                            probe.get("kind") in CAST_WRAPPER_KINDS and \
                            probe.get("inner"):
                        probe = probe["inner"][0]
                    else:
                        break
                if isinstance(probe, dict) and \
                        probe.get("kind") == "CXXThisExpr":
                    return ("member", node.get("referencedMemberDecl"),
                            node.get("name", "?")), subs
                node = inner[0]
            elif kind == "DeclRefExpr":
                ref = node.get("referencedDecl") or {}
                return ("var", ref.get("id"), ref.get("name", "?")), subs
            elif kind == "CXXThisExpr":
                return ("this", None, "*this"), subs
            else:
                return ("unknown", None, kind), subs
        return None, subs

    def _write_event(self, lhs, pos):
        if self._fn is None or lhs is None:
            return
        target, subs = self._resolve_lvalue(lhs)
        if target is None:
            return
        held = bool(self._held())
        sync = self._omp_sync[-1] if self._omp_sync else None
        if self._omp:
            region = self._omp[-1]
            ind = any(self._has_induction_ref(s, region) for s in subs)
            self._event({"k": "write", "rgn": region["id"],
                         "tgt": list(target), "ind": ind, "locked": held,
                         "sync": sync, "file": pos[0], "line": pos[1]})
            return
        # Outside a region, only unguarded writes to state another thread
        # could reach matter (thread-compatibility seeds). Objects under
        # construction/destruction are not yet (no longer) shared.
        if held or sync:
            return
        if target[0] == "member" and self._fn.get("kind") in (
                "CXXConstructorDecl", "CXXDestructorDecl"):
            return
        if target[0] in ("member", "var", "this"):
            self._event({"k": "uwrite", "tgt": list(target),
                         "file": pos[0], "line": pos[1]})

    def _call_receiver(self, node):
        """Receiver classification for a member call, as a lazy target."""
        callee = self._first_descendant(
            node, lambda n: n.get("kind") == "MemberExpr", depth=4)
        if callee is None:
            return None
        inner = callee.get("inner") or []
        if not inner:
            return None
        target, _subs = self._resolve_lvalue(inner[0])
        return list(target) if target is not None else None

    def _omp_directive(self, node, pos, project):
        """Any OMP*Directive: parallel directives open a region, sync
        directives mark their dynamic extent race-exempt, loop-associated
        directives contribute their induction variable. Clause subtrees are
        harvested for data-sharing lists but generate no events."""
        kind = node.get("kind", "")
        region = None
        if self._fn is not None and kind in OMP_PARALLEL_KINDS:
            region = {
                "id": len(self._fn["regions"]),
                "kind": kind, "file": pos[0], "line": pos[1],
                "default_clause": False,
                "private": set(), "shared": set(),
                "induction": set(), "locals": set(),
            }
            self._fn["regions"].append(region)
            self._omp.append(region)
        active = self._omp[-1] if self._omp else None
        sync = OMP_SYNC_KINDS.get(kind) if self._fn is not None else None
        if sync is not None:
            self._omp_sync.append(sync)
        harvested_loop = False
        for child in node.get("inner") or []:
            if not isinstance(child, dict):
                continue
            ckind = child.get("kind", "")
            if ckind.startswith("OMP") and ckind.endswith("Clause"):
                if region is not None and ckind == "OMPDefaultClause":
                    region["default_clause"] = True
                if active is not None:
                    ids = set()
                    self._collect_declref_ids(child, ids)
                    if ckind in OMP_PRIVATE_CLAUSES:
                        active["private"] |= ids
                    elif ckind == "OMPSharedClause":
                        active["shared"] |= ids
                self._eat_subtree(child)
                continue
            if active is not None and not harvested_loop and \
                    kind in OMP_LOOP_KINDS:
                for_stmt = self._first_descendant(
                    child, lambda n: n.get("kind") == "ForStmt", depth=8)
                if for_stmt is not None:
                    harvested_loop = True
                    finner = for_stmt.get("inner") or []
                    if finner:
                        ids = set()
                        self._collect_var_decl_ids(finner[0], ids)
                        active["induction"] |= ids
            self._visit(child)
        if sync is not None:
            self._omp_sync.pop()
        if region is not None:
            self._omp.pop()

    def _on_BinaryOperator(self, node, pos, project):
        if node.get("opcode") == "=":
            inner = node.get("inner") or []
            if inner:
                self._write_event(inner[0], pos)
        self._recurse(node)

    def _on_CompoundAssignOperator(self, node, pos, project):
        inner = node.get("inner") or []
        if inner:
            self._write_event(inner[0], pos)
        self._recurse(node)

    def _on_UnaryOperator(self, node, pos, project):
        if node.get("opcode") in ("++", "--"):
            inner = node.get("inner") or []
            if inner:
                self._write_event(inner[0], pos)
        self._recurse(node)

    # -- expressions ---------------------------------------------------------

    def _member_callee(self, node):
        """(member name, object qualType, referencedMemberDecl id) for a
        CXXMemberCallExpr, best effort."""
        callee = self._first_descendant(
            node, lambda n: n.get("kind") == "MemberExpr", depth=4)
        if callee is None:
            return None, "", None
        name = callee.get("name", "")
        obj_type = ""
        inner = callee.get("inner") or []
        if inner and isinstance(inner[0], dict):
            obj_type = (inner[0].get("type") or {}).get("qualType", "") or ""
        return name, obj_type, callee.get("referencedMemberDecl")

    def _on_CXXMemberCallExpr(self, node, pos, project):
        name, obj_type, member_id = self._member_callee(node)
        held = self._held()
        if name is None:
            self._recurse(node)
            return
        if self._fn is not None:
            if name in ("wait", "wait_until", "wait_for") and \
                    CONDVAR_TYPE_RE.search(obj_type):
                args = (node.get("inner") or [])[1:]
                wait_lock = self._lock_ref(args[0]) if args else None
                self._event({"k": "block", "what": "condvar " + name,
                             "held": held, "wait": wait_lock,
                             "file": pos[0], "line": pos[1]})
            elif name == "join" and THREAD_TYPE_RE.search(obj_type):
                self._event({"k": "block", "what": "thread join",
                             "held": held, "wait": None,
                             "file": pos[0], "line": pos[1]})
            elif name in ("get", "wait", "wait_for", "wait_until") and \
                    FUTURE_TYPE_RE.search(obj_type):
                self._event({"k": "block", "what": "future " + name,
                             "held": held, "wait": None,
                             "file": pos[0], "line": pos[1]})
            elif FSTREAM_TYPE_RE.search(obj_type):
                self._event({"k": "block", "what": "file I/O (" + name + ")",
                             "held": held, "wait": None,
                             "file": pos[0], "line": pos[1]})
            elif name == "lock" and MUTEX_TYPE_RE.search(obj_type) and \
                    not MUTEXLOCK_TYPE_RE.search(obj_type):
                lock = self._member_call_object_lock(node)
                if lock is not None:
                    self._event({"k": "acquire", "lock": lock, "held": held,
                                 "file": pos[0], "line": pos[1]})
                    if self._frames:
                        self._frames[-1].append(lock)
            elif name == "unlock" and MUTEX_TYPE_RE.search(obj_type):
                lock = self._member_call_object_lock(node)
                if lock is not None:
                    for frame in self._frames:
                        if lock in frame:
                            frame.remove(lock)
                            break
            else:
                if member_id:
                    self._event({"k": "call", "callee": ("id", member_id, name),
                                 "held": held,
                                 "recv": self._call_receiver(node),
                                 "file": pos[0], "line": pos[1]})
                if self._omp and name in ALLOC_MEMBER_NAMES:
                    # Container growth mutates the receiver even though the
                    # callee itself (std::vector &co) is never extracted.
                    self._event({"k": "mutcall", "name": name,
                                 "recv": self._call_receiver(node),
                                 "locked": bool(held),
                                 "sync": (self._omp_sync[-1]
                                          if self._omp_sync else None),
                                 "file": pos[0], "line": pos[1]})
                self._alloc_check_member(name, obj_type, pos)
        self._recurse(node)

    def _member_call_object_lock(self, node):
        """For `obj.lock()` / `obj.unlock()`: resolve `obj` to a lock ref."""
        callee = self._first_descendant(
            node, lambda n: n.get("kind") == "MemberExpr", depth=4)
        if callee is None:
            return None
        inner = callee.get("inner") or []
        if not inner:
            return None
        return self._lock_ref(inner[0])

    def _alloc_event(self, what, pos):
        if self._fn is not None and self._loops:
            self._event({"k": "alloc", "what": what,
                         "loops": list(self._loops),
                         "suppressed": self._suppress_alloc > 0,
                         "file": pos[0], "line": pos[1]})

    def _alloc_check_member(self, name, obj_type, pos):
        if name in ALLOC_MEMBER_NAMES and \
                (ALLOC_CONTAINER_RE.search(obj_type) or not obj_type):
            self._alloc_event("." + name + "()", pos)

    def _on_CallExpr(self, node, pos, project):
        ref = self._first_descendant(
            node, lambda n: n.get("kind") == "DeclRefExpr", depth=4)
        name = ""
        ref_id = None
        refq = ""
        if ref is not None:
            rd = ref.get("referencedDecl") or {}
            name = rd.get("name", "") or ref.get("name", "")
            ref_id = rd.get("id")
            refq = (rd.get("type") or {}).get("qualType", "")
        held = self._held()
        if self._fn is not None and name:
            if name in MARKER_NAMES:
                self._event({"k": "marker", "name": MARKER_NAMES[name],
                             "file": pos[0], "line": pos[1]})
                if MARKER_NAMES[name] == "hot_assert":
                    self._hot_loops.update(self._loops)
            elif name in ("sleep_for", "sleep_until"):
                self._event({"k": "block", "what": "this_thread::" + name,
                             "held": held, "wait": None,
                             "file": pos[0], "line": pos[1]})
            elif name in FILE_FREE_NAMES:
                self._event({"k": "block", "what": name + "()",
                             "held": held, "wait": None,
                             "file": pos[0], "line": pos[1]})
            else:
                if name in ALLOC_FREE_NAMES:
                    self._alloc_event(name + "()", pos)
                if ref_id:
                    self._event({"k": "call", "callee": ("id", ref_id, name),
                                 "held": held,
                                 "file": pos[0], "line": pos[1]})
                if name == "contract_failure":
                    self._suppress_alloc += 1
                    self._recurse(node)
                    self._suppress_alloc -= 1
                    return
        self._recurse(node)

    def _on_CXXOperatorCallExpr(self, node, pos, project):
        if self._fn is not None:
            opname = self._operator_name(node)
            op_inner = node.get("inner") or []
            if opname in MUTATING_OPERATORS and len(op_inner) >= 2:
                self._write_event(op_inner[1], pos)
        if self._fn is not None and self._param_ids:
            op = self._first_descendant(
                node,
                lambda n: n.get("kind") == "DeclRefExpr" and
                str(n.get("referencedDecl", {}).get("name", "")).startswith(
                    ("operator()", "operator[]")),
                depth=3)
            if op is not None:
                hit = self._first_descendant(
                    node,
                    lambda n: n.get("kind") == "DeclRefExpr" and
                    (n.get("referencedDecl") or {}).get("id")
                    in self._param_ids,
                    depth=5)
                if hit is not None:
                    pname = self._param_ids[hit["referencedDecl"]["id"]]
                    self._event({"k": "risky", "what": "access:" + pname,
                                 "file": pos[0], "line": pos[1]})
        self._recurse(node)

    def _on_ArraySubscriptExpr(self, node, pos, project):
        if self._fn is not None and self._param_ids:
            inner = node.get("inner") or []
            if inner:
                hit = self._first_descendant(
                    inner[0],
                    lambda n: n.get("kind") == "DeclRefExpr" and
                    (n.get("referencedDecl") or {}).get("id")
                    in self._param_ids,
                    depth=4)
                if hit is not None:
                    pname = self._param_ids[hit["referencedDecl"]["id"]]
                    self._event({"k": "risky", "what": "access:" + pname,
                                 "file": pos[0], "line": pos[1]})
        self._recurse(node)

    def _on_CXXNewExpr(self, node, pos, project):
        self._alloc_event("operator new", pos)
        self._recurse(node)

    def _on_CXXConstructExpr(self, node, pos, project):
        q = (node.get("type") or {}).get("qualType", "") or ""
        base = re.sub(r"^const\s+|\s*&+$", "", q).strip()
        if self._fn is not None:
            if MUTEXLOCK_TYPE_RE.search(base):
                pass  # handled at the VarDecl; the construct itself is a no-op
            elif "extdict::" in base or base.split("<")[0] in self.records:
                cls = base.split("<")[0]
                self._event({"k": "call",
                             "callee": ("ctor", cls),
                             "held": self._held(),
                             "file": pos[0], "line": pos[1]})
            if node.get("inner") and \
                    ("basic_string" in q or "std::string" in q):
                self._alloc_event("std::string construction", pos)
        self._recurse(node)


def extract_facts(ast_root):
    """AST JSON (parsed) -> per-TU facts."""
    ex = _Extractor()
    facts = ex.walk_tu(ast_root)
    _resolve_refs(facts, ex.decl_index)
    return facts


def _resolve_refs(facts, decl_index):
    """Resolve lazy ("id", ...) references against the completed decl index
    (fields can be declared after the inline method bodies that use them)."""
    def lock_name(ref):
        if ref is None:
            return None
        if ref[0] == "id":
            info = decl_index.get(ref[1])
            if info is not None and info.get("qual"):
                return info["qual"]
            return "?::" + (ref[2] if len(ref) > 2 else "?")
        return "?::" + ref[1]

    def callee_name(ref):
        if ref is None:
            return None
        if ref[0] == "id":
            info = decl_index.get(ref[1])
            if info is not None:
                return info.get("identity") or info.get("qual")
            return None  # unresolved (std library): drop
        if ref[0] == "ctor":
            cls = ref[1]
            return cls + "::" + cls.split("::")[-1]
        return None

    def target_info(ref):
        tag = ref[0]
        if tag == "var":
            info = decl_index.get(ref[1]) or {}
            return {"tkind": "var", "tid": ref[1],
                    "tname": info.get("qual") or ref[2] or "?",
                    "storage": info.get("storage", "local"),
                    "atomic": bool(info.get("atomic")),
                    "resolved": bool(info)}
        if tag == "member":
            info = decl_index.get(ref[1]) or {}
            return {"tkind": "member", "tid": ref[1],
                    "tname": info.get("qual") or ("?::" + str(ref[2])),
                    "storage": "member",
                    "atomic": bool(info.get("atomic")),
                    "resolved": bool(info)}
        if tag == "this":
            return {"tkind": "this", "tid": None, "tname": "*this",
                    "storage": "member", "atomic": False, "resolved": True}
        return {"tkind": "unknown", "tid": None,
                "tname": "<%s>" % (ref[2] or "?"),
                "storage": "unknown", "atomic": False, "resolved": False}

    for fn in facts["functions"].values():
        resolved = []
        for ev in fn["events"]:
            k = ev["k"]
            if k == "acquire":
                ev["lock"] = lock_name(ev["lock"])
                ev["held"] = [lock_name(h) for h in ev["held"]]
                if ev["lock"] is None:
                    continue
            elif k == "block":
                ev["held"] = [lock_name(h) for h in ev["held"]]
                ev["wait"] = lock_name(ev.get("wait"))
            elif k == "call":
                ev["callee"] = callee_name(ev["callee"])
                ev["held"] = [lock_name(h) for h in ev["held"]]
                recv = ev.get("recv")
                if recv is not None:
                    ev["recv"] = [recv[0], recv[1]]
                if ev["callee"] is None:
                    continue
            elif k == "mutcall":
                recv = ev.get("recv")
                if recv is not None:
                    ev["recv"] = [recv[0], recv[1]]
            elif k == "write":
                info = target_info(ev.pop("tgt"))
                info.pop("resolved")
                ev.update(info)
            elif k == "uwrite":
                info = target_info(ev.pop("tgt"))
                if not info.pop("resolved") or info["atomic"]:
                    continue
                if info["tkind"] == "var" and \
                        info["storage"] in ("local", "param"):
                    continue
                ev.update(info)
            resolved.append(ev)
        fn["events"] = resolved


# ---------------------------------------------------------------------------
# Whole-program analysis over merged per-TU facts.
# ---------------------------------------------------------------------------


class Finding:
    def __init__(self, rule, file, line, message):
        self.rule = rule
        self.file = file
        self.line = line
        self.message = message

    def key(self):
        return (self.file, self.line, self.rule)

    def __str__(self):
        return "%s:%d: [%s] %s" % (self.file, self.line, self.rule,
                                   self.message)


class SourceOracle:
    """Waiver / non-leaf-declaration lookups against source text. Real files
    are read from disk; fixtures may inject virtual sources."""

    def __init__(self, virtual_sources=None, path_map=None):
        self.virtual = dict(virtual_sources or {})
        self.path_map = dict(path_map or {})
        self._cache = {}

    def lines(self, path):
        if path in self._cache:
            return self._cache[path]
        text = None
        if path in self.virtual:
            text = self.virtual[path]
        else:
            real = self.path_map.get(path, path)
            if real in self.virtual:
                text = self.virtual[real]
            else:
                for cand in (real, os.path.join(REPO_ROOT, real)):
                    if os.path.isfile(cand):
                        try:
                            with open(cand, "r", encoding="utf-8",
                                      errors="replace") as fh:
                                text = fh.read()
                        except OSError:
                            text = None
                        break
        out = text.split("\n") if text is not None else []
        self._cache[path] = out
        return out

    def waived(self, rule, path, line):
        lines = self.lines(path)
        for ln in (line, line - 1):
            if 1 <= ln <= len(lines):
                m = WAIVER_RE.search(lines[ln - 1])
                if m and rule in [r.strip() for r in m.group(1).split(",")]:
                    return True
        return False

    def nonleaf_declarations(self, paths):
        """[(src_suffix, dst_suffix, file, line)] across the given files."""
        out = []
        for path in paths:
            for idx, text in enumerate(self.lines(path), start=1):
                m = NONLEAF_RE.search(text)
                if m:
                    src = m.group(1).strip()
                    for dst in m.group(2).split(","):
                        dst = dst.strip()
                        if dst:
                            out.append((src, dst, path, idx))
        return out

    def guarded_in_text(self, path, line):
        lines = self.lines(path)
        if 1 <= line <= len(lines):
            return bool(GUARD_TEXT_RE.search(lines[line - 1]))
        return False


def _pragma_text(lines, line):
    """Logical (backslash-continuation-joined) text of the pragma reported at
    `line`, or None when the source is unavailable or no pragma is found
    within a couple of lines (clang anchors OMP directives at the pragma)."""
    if not lines:
        return None
    start = None
    for back in range(3):
        j = line - 1 - back
        if 0 <= j < len(lines) and "#" in lines[j] and "pragma" in lines[j]:
            start = j
            break
    if start is None:
        return None
    text = lines[start]
    i = start
    while text.rstrip().endswith("\\") and i + 1 < len(lines):
        i += 1
        text = text.rstrip()[:-1] + " " + lines[i]
    return text


def merge_facts(fact_sets):
    records, functions = {}, {}
    files = set()
    for facts in fact_sets:
        files.update(facts.get("files", ()))
        for qual, rec in facts.get("records", {}).items():
            dst = records.setdefault(
                qual, {"file": rec["file"], "line": rec["line"],
                       "tag": rec.get("tag", "class"), "fields": {}})
            for name, fld in rec["fields"].items():
                prev = dst["fields"].get(name)
                if prev is None:
                    dst["fields"][name] = dict(fld)
                elif fld.get("guarded"):
                    prev["guarded"] = True
        for identity, fn in facts.get("functions", {}).items():
            prev = functions.get(identity)
            if prev is None or len(fn["events"]) > len(prev["events"]):
                functions[identity] = fn
    return {"records": records, "functions": functions,
            "files": sorted(files)}


def _suffix_match(qual, suffix):
    return qual == suffix or qual.endswith("::" + suffix)


def _transitive(functions, seed_key):
    """Fixpoint of a per-function set under the call graph.
    seed_key(fn) -> iterable of seed items."""
    out = {ident: set(seed_key(fn)) for ident, fn in functions.items()}
    changed = True
    while changed:
        changed = False
        for ident, fn in functions.items():
            if fn.get("intrinsic"):
                continue
            acc = out[ident]
            before = len(acc)
            for ev in fn["events"]:
                if ev["k"] == "call" and ev["callee"] in out:
                    callee = functions.get(ev["callee"])
                    if callee is not None and callee.get("intrinsic"):
                        continue
                    acc |= out[ev["callee"]]
            if len(acc) != before:
                changed = True
    return out


def analyze(facts, oracle):
    """Merged facts + source oracle -> (findings, edge list)."""
    findings = []
    functions = facts["functions"]
    records = facts["records"]

    # Map constructor-style callees ("extdict::util::TraceScope::TraceScope")
    # onto extracted identities where the definition was mangled: build a
    # qual -> identity map and rewrite unresolved callees.
    qual_to_identity = {}
    for ident, fn in functions.items():
        qual_to_identity.setdefault(fn["qual"], ident)
    for fn in functions.values():
        for ev in fn["events"]:
            if ev["k"] == "call" and ev["callee"] not in functions:
                ident = qual_to_identity.get(ev["callee"])
                if ident is not None:
                    ev["callee"] = ident

    acq = _transitive(
        functions,
        lambda fn: [ev["lock"] for ev in fn["events"]
                    if ev["k"] == "acquire" and not fn.get("intrinsic")])
    blk = _transitive(
        functions,
        lambda fn: [(ev["what"], ev["file"], ev["line"])
                    for ev in fn["events"]
                    if ev["k"] == "block" and not fn.get("intrinsic")])
    shape = _transitive(
        functions,
        lambda fn: ["shape"] if any(
            ev["k"] == "marker" and ev["name"] == "require_shape"
            for ev in fn["events"]) else [])

    # ---- rule: lock-order + blocking-while-locked --------------------------
    edges = {}  # (src, dst) -> [(file, line, via)]

    def add_edge(src, dst, file, line, via):
        if src == dst:
            return  # same lock (re-entrancy is -Wthread-safety's turf)
        edges.setdefault((src, dst), []).append((file, line, via))

    for ident, fn in functions.items():
        if fn.get("intrinsic"):
            continue
        for ev in fn["events"]:
            if ev["k"] == "acquire":
                for h in ev["held"]:
                    add_edge(h, ev["lock"], ev["file"], ev["line"], "direct")
            elif ev["k"] == "call" and ev["held"]:
                callee = ev["callee"]
                for lock in acq.get(callee, ()):
                    for h in ev["held"]:
                        callee_fn = functions.get(callee)
                        via = callee_fn["qual"] if callee_fn else callee
                        add_edge(h, lock, ev["file"], ev["line"],
                                 "via " + via)
                for what, bfile, bline in sorted(blk.get(callee, ())):
                    callee_fn = functions.get(callee)
                    via = callee_fn["qual"] if callee_fn else callee
                    findings.append(Finding(
                        "blocking-while-locked", ev["file"], ev["line"],
                        "call to %s may block (%s at %s:%d) while holding %s"
                        % (via, what, bfile, bline,
                           ", ".join(sorted(set(ev["held"]))))))
                    break  # one representative blocking reason per call site
            elif ev["k"] == "block":
                held = [h for h in ev["held"] if h != ev.get("wait")]
                if held:
                    findings.append(Finding(
                        "blocking-while-locked", ev["file"], ev["line"],
                        "%s while holding %s"
                        % (ev["what"], ", ".join(sorted(set(held))))))

    # Cycles always fail, declarations notwithstanding.
    graph = {}
    for (src, dst) in edges:
        graph.setdefault(src, set()).add(dst)
    state = {}

    def dfs(node, stack):
        state[node] = 1
        stack.append(node)
        for nxt in sorted(graph.get(node, ())):
            if state.get(nxt) == 1:
                cyc = stack[stack.index(nxt):] + [nxt]
                sites = edges.get((node, nxt), [("?", 0, "?")])
                findings.append(Finding(
                    "lock-order", sites[0][0], sites[0][1],
                    "lock acquisition cycle: " + " -> ".join(cyc)))
            elif nxt not in state:
                dfs(nxt, stack)
        stack.pop()
        state[node] = 2

    for node in sorted(graph):
        if node not in state:
            dfs(node, [])

    declared = oracle.nonleaf_declarations(facts["files"])
    matched_decls = set()
    for (src, dst), sites in sorted(edges.items()):
        ok = False
        for i, (dsrc, ddst, dfile, dline) in enumerate(declared):
            if _suffix_match(src, dsrc) and _suffix_match(dst, ddst):
                ok = True
                matched_decls.add(i)
        if not ok:
            for (file, line, via) in sites:
                findings.append(Finding(
                    "lock-order", file, line,
                    "undeclared lock-order edge %s -> %s (%s); declare it "
                    "at the source mutex with "
                    "`// extdict-analyze: non-leaf(%s -> %s) <reason>` "
                    "or restructure to keep %s a leaf lock"
                    % (src, dst, via, src, dst, src)))
    for i, (dsrc, ddst, dfile, dline) in enumerate(declared):
        if i not in matched_decls:
            findings.append(Finding(
                "lock-order", dfile, dline,
                "stale non-leaf declaration: edge %s -> %s was never "
                "observed in the acquisition graph" % (dsrc, ddst)))

    # ---- rule: guarded-by --------------------------------------------------
    for qual, rec in sorted(records.items()):
        fields = rec["fields"]
        if not any(f["mutex"] for f in fields.values()):
            continue
        for name, fld in sorted(fields.items()):
            if fld["mutex"] or fld["condvar"] or fld["atomic"] or \
                    fld["const"] or fld["ref"]:
                continue
            guarded = fld["guarded"] or \
                oracle.guarded_in_text(fld["file"], fld["line"])
            if not guarded:
                findings.append(Finding(
                    "guarded-by", fld["file"], fld["line"],
                    "%s::%s is mutable state in a mutex-owning class but "
                    "has no EXTDICT_GUARDED_BY (annotate it, or waive with "
                    "a reason if it is immutable after construction or "
                    "internally synchronized)" % (qual, name)))

    # ---- rule: missing-shape-contract --------------------------------------
    for ident, fn in functions.items():
        if not CONTRACT_SCOPE_RE.search(fn["file"]):
            continue
        if "(anonymous)" in fn["qual"] or fn["kind"] == "CXXDestructorDecl":
            continue
        if not any(p["dim"] for p in fn["params"]):
            continue
        first_risky = None
        first_contract = None
        for ev in fn["events"]:
            if ev["k"] == "risky" and first_risky is None:
                first_risky = ev
            elif first_contract is None:
                if ev["k"] == "marker" and ev["name"] == "require_shape":
                    first_contract = ev
                elif ev["k"] == "call" and shape.get(ev["callee"]):
                    first_contract = ev
            if first_risky is not None and first_contract is not None:
                break
        if first_risky is None:
            continue
        if first_contract is not None and \
                first_contract["o"] < first_risky["o"]:
            continue
        detail = ("first loop" if first_risky["what"] == "loop"
                  else "first element access (%s)"
                  % first_risky["what"].split(":", 1)[1])
        findings.append(Finding(
            "missing-shape-contract", fn["file"], fn["line"],
            "%s takes dimensioned parameters (%s) but reaches its %s at "
            "line %d before evaluating EXTDICT_REQUIRE_SHAPE (directly or "
            "via a validating callee)"
            % (fn["qual"],
               ", ".join(p["name"] for p in fn["params"] if p["dim"]),
               detail, first_risky["line"])))

    # ---- rule: hot-loop-allocation -----------------------------------------
    for ident, fn in functions.items():
        for ev in fn["events"]:
            if ev["k"] == "alloc":
                findings.append(Finding(
                    "hot-loop-allocation", ev["file"], ev["line"],
                    "%s inside a loop containing EXTDICT_HOT_ASSERT "
                    "(hot by declaration); hoist it out of the loop"
                    % ev["what"]))

    # ---- rule: omp-sharing -------------------------------------------------
    # Globally thread-incompatible functions: unguarded writes to
    # statics/globals, or acquisition of a declared non-leaf lock (the lock
    # participates in ordering, so taking it from a data-parallel region
    # entangles the region with the locking protocol). Propagates through
    # every call. Blocking is tracked by the existing `blk` fixpoint.
    nonleaf_srcs = {src for (src, _dst) in edges}
    gincompat = _transitive(
        functions,
        lambda fn: [] if fn.get("intrinsic") else
        [("writes %s (unguarded %s)" % (ev["tname"], ev["storage"]),
          ev["file"], ev["line"])
         for ev in fn["events"]
         if ev["k"] == "uwrite" and ev.get("tkind") == "var"] +
        [("acquires non-leaf lock %s" % ev["lock"], ev["file"], ev["line"])
         for ev in fn["events"]
         if ev["k"] == "acquire" and ev["lock"] in nonleaf_srcs])

    # Self-mutating functions write their own members without a lock: safe
    # on a private object, a race on a receiver shared across iterations.
    # Propagates only through calls whose receiver is the caller's own
    # object (`this` or a member).
    selfmut = {
        ident: any(ev["k"] == "uwrite" and
                   ev.get("tkind") in ("member", "this")
                   for ev in fn["events"])
        for ident, fn in functions.items()}
    changed = True
    while changed:
        changed = False
        for ident, fn in functions.items():
            if selfmut[ident] or fn.get("intrinsic"):
                continue
            for ev in fn["events"]:
                if ev["k"] == "call" and \
                        (ev.get("recv") or ["?"])[0] in ("this", "member") \
                        and selfmut.get(ev["callee"]):
                    selfmut[ident] = True
                    changed = True
                    break

    for ident, fn in functions.items():
        for region in fn.get("regions", ()):
            rfile, rline = region["file"], region["line"]
            # Policy: default(none) with explicit clauses on every region.
            # Clang's JSON dump omits the default clause's kind, so the
            # check reads the pragma text; AST clause presence is the
            # fallback when the source is unavailable.
            pragma = _pragma_text(oracle.lines(rfile), rline)
            if (pragma is not None and
                    not DEFAULT_NONE_RE.search(pragma)) or \
                    (pragma is None and not region.get("default_clause")):
                findings.append(Finding(
                    "omp-sharing", rfile, rline,
                    "parallel region in %s does not declare default(none); "
                    "every region must list its sharing explicitly"
                    % fn["qual"]))
            priv = set(region["private"]) | set(region["locals"]) | \
                set(region["induction"])

            def receiver_private(ev):
                recv = ev.get("recv") or ["unknown", None]
                return recv[0] == "var" and recv[1] is not None and \
                    recv[1] in priv

            for ev in fn["events"]:
                if ev.get("rgn") != region["id"]:
                    continue
                if ev["k"] == "write":
                    if ev.get("sync") or ev.get("locked") or \
                            ev.get("ind") or ev.get("atomic"):
                        continue
                    if ev["tkind"] == "var" and ev["tid"] in priv:
                        continue
                    findings.append(Finding(
                        "omp-sharing", ev["file"], ev["line"],
                        "write to %s in the parallel region at %s:%d is not "
                        "provably race-free: not indexed by the loop "
                        "induction variable, not privatized or reduced, not "
                        "atomic, and not under omp atomic/critical or a "
                        "held lock (restructure, or waive with a reason)"
                        % (ev["tname"], rfile, rline)))
                elif ev["k"] == "mutcall":
                    if ev.get("sync") or ev.get("locked") or \
                            receiver_private(ev):
                        continue
                    findings.append(Finding(
                        "omp-sharing", ev["file"], ev["line"],
                        ".%s() mutates a container shared across "
                        "iterations of the parallel region at %s:%d"
                        % (ev["name"], rfile, rline)))
                elif ev["k"] == "call":
                    callee = ev["callee"]
                    callee_fn = functions.get(callee)
                    cname = callee_fn["qual"] if callee_fn else callee
                    reasons = sorted(gincompat.get(callee, ()))
                    blocks = sorted(blk.get(callee, ()))
                    if reasons:
                        what, wfile, wline = reasons[0]
                        findings.append(Finding(
                            "omp-sharing", ev["file"], ev["line"],
                            "parallel region calls thread-incompatible %s: "
                            "%s at %s:%d" % (cname, what, wfile, wline)))
                    elif blocks:
                        what, wfile, wline = blocks[0]
                        findings.append(Finding(
                            "omp-sharing", ev["file"], ev["line"],
                            "parallel region calls %s, which may block (%s "
                            "at %s:%d); blocking inside a region serializes "
                            "the team" % (cname, what, wfile, wline)))
                    elif selfmut.get(callee) and ev.get("recv") is not None \
                            and not receiver_private(ev):
                        findings.append(Finding(
                            "omp-sharing", ev["file"], ev["line"],
                            "%s mutates its receiver without "
                            "synchronization and the receiver is shared "
                            "across iterations of the parallel region at "
                            "%s:%d (privatize the object, guard the "
                            "mutation, or waive with a reason)"
                            % (cname, rfile, rline)))
                elif ev["k"] == "block":
                    findings.append(Finding(
                        "omp-sharing", ev["file"], ev["line"],
                        "%s inside a parallel region serializes the team"
                        % ev["what"]))
                elif ev["k"] == "acquire" and ev["lock"] in nonleaf_srcs:
                    findings.append(Finding(
                        "omp-sharing", ev["file"], ev["line"],
                        "parallel region acquires non-leaf lock %s; only "
                        "leaf locks may be taken from a data-parallel "
                        "region" % ev["lock"]))

    # Waivers + dedup (template pattern and instantiations share lines).
    out, seen = [], set()
    for f in findings:
        if f.key() in seen:
            continue
        seen.add(f.key())
        if oracle.waived(f.rule, f.file, f.line):
            continue
        out.append(f)
    out.sort(key=lambda f: (f.file, f.line, f.rule))
    return out, sorted(edges.keys())


# ---------------------------------------------------------------------------
# Front-end: clang discovery, compile_commands.json, caching.
# ---------------------------------------------------------------------------


def find_clang(explicit=None):
    candidates = []
    if explicit:
        candidates.append(explicit)
    env = os.environ.get("CLANG")
    if env:
        candidates.append(env)
    candidates.append("clang++")
    candidates.extend("clang++-%d" % v for v in range(20, 13, -1))
    candidates.append("clang")
    for cand in candidates:
        path = shutil.which(cand)
        if path:
            return path
    return None


def load_compile_commands(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            entries = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalyzeError("cannot read %s: %s" % (path, exc))
    if not isinstance(entries, list):
        raise AnalyzeError("%s: not a compile_commands.json array" % path)
    return entries


def tu_args(entry):
    """Compiler args for a compile_commands entry, adapted for AST dumping:
    strip output/warning flags, keep includes/defines/std."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    out = []
    skip_next = False
    for i, arg in enumerate(argv):
        if i == 0:
            continue  # compiler binary
        if skip_next:
            skip_next = False
            continue
        if arg in ("-o", "-c", "--output"):
            skip_next = arg != "-c"
            continue
        if arg.startswith("-W") or arg in ("-pedantic",):
            continue
        if arg.startswith("-march=") or arg.startswith("-mtune="):
            continue  # host tuning is irrelevant to the AST
        if not arg.startswith("-") and \
                arg.endswith((".cpp", ".cc", ".cxx", ".c")):
            continue  # source operand; re-appended canonically below
        out.append(arg)
    # -fopenmp is kept: without it the OMP directives vanish from the AST
    # and omp-sharing would verify nothing. The shim directory supplies a
    # minimal <omp.h> so -fsyntax-only works even when clang has no libomp
    # headers installed (gcc builds reference libgomp's copy).
    out += ["-isystem", os.path.join(REPO_ROOT, "tools", "analyze-shim"),
            "-w", "-fsyntax-only", "-DEXTDICT_ANALYZE=1",
            "-Xclang", "-ast-dump=json", entry["file"]]
    return out


def self_digest():
    """Hash of the analyzer itself: the rule set IS part of every per-TU
    cache key, so cached facts can never outlive the code that shaped them
    (VERSION catches intentional bumps; this catches everything)."""
    try:
        with open(os.path.abspath(__file__), "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()
    except OSError:
        return VERSION


def headers_digest():
    hasher = hashlib.sha256()
    for root, _dirs, files in sorted(os.walk(os.path.join(REPO_ROOT, "src"))):
        for name in sorted(files):
            if name.endswith((".hpp", ".h")):
                path = os.path.join(root, name)
                hasher.update(path.encode())
                try:
                    with open(path, "rb") as fh:
                        hasher.update(hashlib.sha256(fh.read()).digest())
                except OSError:
                    pass
    return hasher.hexdigest()


def dump_tu(clang, args, directory):
    """Run clang and parse the AST JSON from stdout."""
    try:
        proc = subprocess.run(
            [clang] + args, cwd=directory, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, check=False)
    except OSError as exc:
        raise AnalyzeError("failed to run %s: %s" % (clang, exc))
    if proc.returncode != 0:
        tail = proc.stderr.decode(errors="replace").strip().splitlines()[-8:]
        raise AnalyzeError(
            "clang -fsyntax-only failed for %s:\n  %s"
            % (args[-1], "\n  ".join(tail)))
    try:
        return json.loads(proc.stdout.decode(errors="replace"))
    except json.JSONDecodeError as exc:
        raise AnalyzeError("unparseable AST JSON for %s: %s"
                           % (args[-1], exc))


def analyze_tree(opts):
    clang = find_clang(opts.clang)
    if clang is None:
        if opts.require_clang:
            print("extdict-analyze: error: no clang found and --require-clang "
                  "given (set CLANG or install clang)", file=sys.stderr)
            return 2
        if opts.skip_without_clang:
            print("extdict-analyze: clang not found; skipping tree scan")
            return 77
        print("extdict-analyze: clang not found; skipping tree scan "
              "(install clang, or run --self-test for the clang-free "
              "fixture suite)")
        return 0

    cc_path = opts.compile_commands
    if cc_path is None:
        candidates = [opts.build_dir] if opts.build_dir else [
            "build-release-portable", "build-release", "build-analyze",
            "build-debug-checks", "build"]
        for cand in candidates:
            if cand and os.path.isfile(os.path.join(cand,
                                                    "compile_commands.json")):
                cc_path = os.path.join(cand, "compile_commands.json")
                break
    elif os.path.isdir(cc_path):
        cc_path = os.path.join(cc_path, "compile_commands.json")
    if cc_path is None or not os.path.isfile(cc_path):
        print("extdict-analyze: error: no compile_commands.json found; "
              "configure a build first (CMAKE_EXPORT_COMPILE_COMMANDS is ON "
              "by default), e.g.: cmake --preset release-portable",
              file=sys.stderr)
        return 2

    entries = load_compile_commands(cc_path)
    selected = []
    for entry in entries:
        src = entry.get("file", "")
        rel = os.path.relpath(src, REPO_ROOT) if os.path.isabs(src) else src
        if not rel.startswith("src" + os.sep):
            continue
        if opts.files and not any(rel == f or rel.endswith(f)
                                  for f in opts.files):
            continue
        selected.append((rel, entry))
    if not selected:
        print("extdict-analyze: error: no src/ translation units in %s"
              % cc_path, file=sys.stderr)
        return 2

    cache_dir = opts.cache_dir or os.path.join(
        os.path.dirname(cc_path), ".extdict-analyze-cache")
    os.makedirs(cache_dir, exist_ok=True)
    try:
        clang_tag = subprocess.run(
            [clang, "--version"], stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, check=False).stdout.decode(
                errors="replace").splitlines()[0]
    except (OSError, IndexError):
        clang_tag = clang
    hdr_digest = headers_digest()
    rule_digest = self_digest()

    fact_sets = []
    omp_enabled = False
    n_cached = 0
    for rel, entry in selected:
        args = tu_args(entry)
        if any(a.startswith("-fopenmp") for a in args):
            omp_enabled = True
        hasher = hashlib.sha256()
        hasher.update(
            ("\0".join([VERSION, rule_digest, clang_tag] + args)).encode())
        hasher.update(hdr_digest.encode())
        src_path = entry["file"]
        if not os.path.isabs(src_path):
            src_path = os.path.join(entry.get("directory", REPO_ROOT),
                                    src_path)
        try:
            with open(src_path, "rb") as fh:
                hasher.update(fh.read())
        except OSError as exc:
            raise AnalyzeError("cannot read %s: %s" % (src_path, exc))
        key = hasher.hexdigest()
        cache_file = os.path.join(cache_dir, key + ".json")
        facts = None
        if os.path.isfile(cache_file):
            try:
                with open(cache_file, "r", encoding="utf-8") as fh:
                    facts = json.load(fh)
                # JSON round-trip turns event tuples into lists; the
                # resolver already ran before caching, so nothing to fix.
                n_cached += 1
            except (OSError, json.JSONDecodeError):
                facts = None
        if facts is None:
            if opts.verbose:
                print("extdict-analyze: parsing %s" % rel)
            ast = dump_tu(clang, args, entry.get("directory", REPO_ROOT))
            facts = extract_facts(ast)
            del ast
            try:
                with open(cache_file, "w", encoding="utf-8") as fh:
                    json.dump(facts, fh)
            except OSError:
                pass
        fact_sets.append(facts)

    merged = merge_facts(fact_sets)
    # Normalize file paths repo-relative for reporting and waiver lookup.
    def relpath(p):
        if os.path.isabs(p):
            try:
                rp = os.path.relpath(p, REPO_ROOT)
                if not rp.startswith(".."):
                    return rp
            except ValueError:
                pass
        return p

    for fn in merged["functions"].values():
        fn["file"] = relpath(fn["file"])
        for ev in fn["events"]:
            if "file" in ev:
                ev["file"] = relpath(ev["file"])
        for region in fn.get("regions", ()):
            region["file"] = relpath(region["file"])
    for rec in merged["records"].values():
        rec["file"] = relpath(rec["file"])
        for fld in rec["fields"].values():
            fld["file"] = relpath(fld["file"])
    merged["files"] = sorted({relpath(f) for f in merged["files"]})

    if not omp_enabled:
        # A compile database configured without OpenMP parses the pragmas
        # away: the tree would look trivially clean to omp-sharing. Refuse
        # rather than under-verify.
        for rel, entry in selected:
            src_path = entry["file"]
            if not os.path.isabs(src_path):
                src_path = os.path.join(entry.get("directory", REPO_ROOT),
                                        src_path)
            try:
                with open(src_path, "r", encoding="utf-8",
                          errors="replace") as fh:
                    text = fh.read()
            except OSError:
                continue
            if OMP_PRAGMA_RE.search(text):
                raise AnalyzeError(
                    "%s contains '#pragma omp parallel' but the compile "
                    "database was configured without -fopenmp, so the "
                    "directives are invisible to omp-sharing; configure "
                    "with -DEXTDICT_OPENMP=ON (the `analyze` preset does)"
                    % rel)

    findings, edge_list = analyze(merged, SourceOracle())
    if opts.rules:
        findings = [f for f in findings if f.rule in opts.rules]

    print("extdict-analyze: %d TU(s) analyzed (%d cached), "
          "%d function(s), %d record(s)"
          % (len(selected), n_cached, len(merged["functions"]),
             len(merged["records"])))
    if opts.list_edges or opts.verbose:
        if edge_list:
            print("lock-order graph (held -> acquired):")
            for src, dst in edge_list:
                print("  %s -> %s" % (src, dst))
        else:
            print("lock-order graph: empty (every lock is a leaf)")
    for f in findings:
        print(f)
    if findings:
        print("extdict-analyze: %d finding(s)" % len(findings))
        return 1
    print("extdict-analyze: clean")
    return 0


# ---------------------------------------------------------------------------
# Self-test: AST JSON fixtures (clang-free) + .cpp fixtures (need clang).
# ---------------------------------------------------------------------------


FIXTURE_DIR = os.path.join(REPO_ROOT, "tests", "analyze_fixtures")
EXPECT_RE = re.compile(r"extdict-analyze-expect:\s*(.+)$")
PATH_RE = re.compile(r"extdict-analyze-path:\s*(\S+)")


def _run_ast_scenario(scenario_dir):
    expect_path = os.path.join(scenario_dir, "expect.json")
    with open(expect_path, "r", encoding="utf-8") as fh:
        spec = json.load(fh)
    fact_sets = []
    for name in sorted(os.listdir(scenario_dir)):
        if not name.endswith(".json") or name == "expect.json":
            continue
        with open(os.path.join(scenario_dir, name), "r",
                  encoding="utf-8") as fh:
            ast = json.load(fh)
        fact_sets.append(extract_facts(ast))
    merged = merge_facts(fact_sets)
    oracle = SourceOracle(virtual_sources=spec.get("sources", {}))
    findings, edges = analyze(merged, oracle)
    return spec, findings, edges


def _check_expectation(label, expected, findings, failures):
    got = sorted(set(f.rule for f in findings))
    want = sorted(set(expected))
    if got != want:
        failures.append(
            "%s: expected rules %s, got %s\n    %s"
            % (label, want or ["none"], got or ["none"],
               "\n    ".join(str(f) for f in findings) or "(no findings)"))


def self_test(opts):
    failures = []
    n_scenarios = 0

    ast_dir = os.path.join(FIXTURE_DIR, "ast")
    if os.path.isdir(ast_dir):
        for name in sorted(os.listdir(ast_dir)):
            scenario = os.path.join(ast_dir, name)
            if not os.path.isdir(scenario):
                continue
            n_scenarios += 1
            try:
                spec, findings, edges = _run_ast_scenario(scenario)
            except AnalyzeError as exc:
                failures.append("%s: AnalyzeError: %s" % (name, exc))
                continue
            _check_expectation("ast/" + name, spec.get("expect", []),
                               findings, failures)
            if "expect_edges" in spec:
                got = ["%s -> %s" % e for e in edges]
                if sorted(got) != sorted(spec["expect_edges"]):
                    failures.append("ast/%s: expected edges %s, got %s"
                                    % (name, spec["expect_edges"], got))
    else:
        failures.append("missing fixture dir: " + ast_dir)

    # Error paths: malformed inputs must raise AnalyzeError, not crash.
    bad_dir = os.path.join(FIXTURE_DIR, "bad")
    if os.path.isdir(bad_dir):
        for name in sorted(os.listdir(bad_dir)):
            if not name.endswith(".json"):
                continue
            n_scenarios += 1
            path = os.path.join(bad_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    ast = json.load(fh)
            except json.JSONDecodeError:
                continue  # unreadable JSON rejected at load time: pass
            try:
                extract_facts(ast)
            except AnalyzeError:
                continue  # rejected cleanly: pass
            except Exception as exc:  # noqa: BLE001 - the test IS the net
                failures.append("bad/%s: raised %r instead of AnalyzeError"
                                % (name, exc))
                continue
            failures.append("bad/%s: malformed AST accepted silently" % name)
    else:
        failures.append("missing fixture dir: " + bad_dir)

    # Compiled fixtures: real macros and annotations, clang required.
    clang = find_clang(opts.clang)
    cpp_dir = os.path.join(FIXTURE_DIR, "cpp")
    if clang is None:
        if opts.require_clang:
            failures.append("clang not found but --require-clang was given; "
                            "compiled fixtures did not run")
        print("extdict-analyze: clang not found; skipping compiled "
              "fixtures (AST JSON fixtures still exercised)")
    elif os.path.isdir(cpp_dir):
        for name in sorted(os.listdir(cpp_dir)):
            if not name.endswith(".cpp"):
                continue
            n_scenarios += 1
            path = os.path.join(cpp_dir, name)
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
            expect_m = EXPECT_RE.search(text)
            path_m = PATH_RE.search(text)
            if not expect_m:
                failures.append("cpp/%s: missing extdict-analyze-expect "
                                "header" % name)
                continue
            expected = expect_m.group(1).split()
            if expected == ["none"]:
                expected = []
            virt = path_m.group(1) if path_m else "src/core/" + name
            args = ["-std=c++20", "-w", "-fsyntax-only", "-fopenmp",
                    "-I", os.path.join(REPO_ROOT, "src"),
                    "-isystem",
                    os.path.join(REPO_ROOT, "tools", "analyze-shim"),
                    "-DEXTDICT_ANALYZE=1", "-DEXTDICT_ENABLE_CHECKS=1",
                    "-Xclang", "-ast-dump=json", path]
            want_error = "extdict-analyze-unparseable" in text
            try:
                ast = dump_tu(clang, args, REPO_ROOT)
            except AnalyzeError as exc:
                if want_error:
                    continue  # front-end rejected it cleanly: pass
                failures.append("cpp/%s: %s" % (name, exc))
                continue
            if want_error:
                failures.append("cpp/%s: expected a front-end parse "
                                "failure, but clang accepted it" % name)
                continue
            facts = extract_facts(ast)
            # Remap the fixture onto its virtual tree path so path-scoped
            # rules apply; waivers resolve back to the fixture text.
            remap = {}
            for fn in facts["functions"].values():
                if fn["file"].endswith(name):
                    remap[fn["file"]] = virt
                    fn["file"] = virt
                for ev in fn["events"]:
                    if ev.get("file", "").endswith(name):
                        ev["file"] = virt
                for region in fn.get("regions", ()):
                    if region["file"].endswith(name):
                        region["file"] = virt
            for rec in facts["records"].values():
                if rec["file"].endswith(name):
                    rec["file"] = virt
                for fld in rec["fields"].values():
                    if fld.get("file", "").endswith(name):
                        fld["file"] = virt
            facts["files"] = [virt if f.endswith(name) else f
                              for f in facts["files"]]
            merged = merge_facts([facts])
            oracle = SourceOracle(virtual_sources={virt: text})
            findings, _edges = analyze(merged, oracle)
            # Only findings attributed to the fixture itself count (the real
            # util/ headers are pulled in and must stay clean anyway).
            findings = [f for f in findings if f.file == virt]
            _check_expectation("cpp/" + name, expected, findings, failures)
    else:
        failures.append("missing fixture dir: " + cpp_dir)

    if failures:
        print("extdict-analyze self-test: %d scenario(s), %d FAILURE(S)"
              % (n_scenarios, len(failures)))
        for f in failures:
            print("  FAIL " + f)
        return 1
    print("extdict-analyze self-test: %d scenario(s), all passed"
          % n_scenarios)
    return 0


# ---------------------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="extdict-analyze.py",
        description="Whole-program Clang-AST analysis of the ExtDict "
                    "concurrency and contract policies.")
    parser.add_argument("files", nargs="*",
                        help="restrict the tree scan to these src/ TUs")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture suite (AST JSON fixtures are "
                             "clang-free; .cpp fixtures need clang)")
    parser.add_argument("-p", "--build-dir", default=None,
                        help="build directory containing "
                             "compile_commands.json")
    parser.add_argument("--compile-commands", default=None,
                        help="explicit compile_commands.json path")
    parser.add_argument("--cache-dir", default=None,
                        help="per-TU fact cache directory (default: "
                             "<build-dir>/.extdict-analyze-cache)")
    parser.add_argument("--clang", default=None,
                        help="clang++ binary (default: $CLANG, then PATH)")
    parser.add_argument("--require-clang", action="store_true",
                        help="fail (exit 2) instead of skipping when no "
                             "clang is available — for gating CI")
    parser.add_argument("--skip-without-clang", action="store_true",
                        help="exit 77 when no clang is available (ctest "
                             "SKIP_RETURN_CODE)")
    parser.add_argument("--list-edges", action="store_true",
                        help="print the extracted lock-order graph")
    parser.add_argument("--rule", action="append", dest="rules",
                        metavar="RULE", choices=RULES,
                        help="report only these rule(s); repeatable "
                             "(choices: %s)" % ", ".join(RULES))
    parser.add_argument("-v", "--verbose", action="store_true")
    opts = parser.parse_args(argv)

    try:
        if opts.self_test:
            return self_test(opts)
        return analyze_tree(opts)
    except AnalyzeError as exc:
        print("extdict-analyze: error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
