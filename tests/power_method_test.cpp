#include "solvers/power_method.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exd.hpp"
#include "data/subspace.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "la/svd.hpp"

namespace extdict::solvers {
namespace {

using core::DenseGramOperator;
using core::TransformedGramOperator;

TEST(PowerMethod, FindsSpectrumOfRandomMatrix) {
  la::Rng rng(1);
  const Matrix a = rng.gaussian_matrix(20, 15);
  DenseGramOperator op(a);
  PowerConfig config;
  config.num_eigenpairs = 5;
  config.tolerance = 1e-10;
  config.max_iterations = 2000;
  const PowerResult r = power_method(op, config);

  const la::SvdResult svd = la::jacobi_svd(a);
  ASSERT_EQ(r.eigenvalues.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    // Eigenvalues of AᵀA are squared singular values of A.
    EXPECT_NEAR(r.eigenvalues[i], svd.s[i] * svd.s[i],
                1e-4 * svd.s[0] * svd.s[0])
        << "eig " << i;
  }
}

TEST(PowerMethod, EigenvaluesNonIncreasing) {
  la::Rng rng(2);
  const Matrix a = rng.gaussian_matrix(25, 18);
  DenseGramOperator op(a);
  PowerConfig config;
  config.num_eigenpairs = 6;
  const PowerResult r = power_method(op, config);
  for (std::size_t i = 1; i < r.eigenvalues.size(); ++i) {
    EXPECT_LE(r.eigenvalues[i], r.eigenvalues[i - 1] * (1 + 1e-6));
  }
}

TEST(PowerMethod, EigenvectorsAreEigenvectors) {
  la::Rng rng(3);
  const Matrix a = rng.gaussian_matrix(30, 12);
  DenseGramOperator op(a);
  PowerConfig config;
  config.num_eigenpairs = 3;
  config.tolerance = 1e-12;
  config.max_iterations = 3000;
  const PowerResult r = power_method(op, config);
  la::Vector gv(12);
  for (Index e = 0; e < 3; ++e) {
    auto v = r.eigenvectors.col(e);
    op.apply(v, gv);
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_NEAR(gv[i], r.eigenvalues[static_cast<std::size_t>(e)] * v[i],
                  2e-3 * r.eigenvalues[0]);
    }
  }
}

TEST(PowerMethod, DeflationYieldsOrthogonalVectors) {
  la::Rng rng(4);
  const Matrix a = rng.gaussian_matrix(30, 14);
  DenseGramOperator op(a);
  PowerConfig config;
  config.num_eigenpairs = 4;
  config.tolerance = 1e-11;
  config.max_iterations = 3000;
  const PowerResult r = power_method(op, config);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = i + 1; j < 4; ++j) {
      EXPECT_NEAR(la::dot(r.eigenvectors.col(i), r.eigenvectors.col(j)), 0.0,
                  5e-3);
    }
  }
}

TEST(PowerMethod, CapsAtDimension) {
  la::Rng rng(5);
  const Matrix a = rng.gaussian_matrix(10, 3);
  DenseGramOperator op(a);
  PowerConfig config;
  config.num_eigenpairs = 10;
  const PowerResult r = power_method(op, config);
  EXPECT_EQ(r.eigenvalues.size(), 3u);
  EXPECT_GT(r.total_iterations(), 0);
}

TEST(PowerMethod, TransformedSpectrumTracksOriginal) {
  // Fig. 12's premise: the (DC)ᵀDC spectrum is close to the AᵀA spectrum
  // when epsilon is small.
  data::SubspaceModelConfig dc;
  dc.ambient_dim = 30;
  dc.num_columns = 150;
  dc.num_subspaces = 4;
  dc.subspace_dim = 4;
  dc.seed = 151;
  const Matrix a = data::make_union_of_subspaces(dc).a;
  core::ExdConfig exd_config;
  exd_config.dictionary_size = 80;
  exd_config.tolerance = 0.01;
  const core::ExdResult exd = core::exd_transform(a, exd_config);

  DenseGramOperator dense(a);
  TransformedGramOperator transformed(exd.dictionary, exd.coefficients);
  PowerConfig config;
  config.num_eigenpairs = 5;
  config.tolerance = 1e-9;
  config.max_iterations = 2000;
  const PowerResult ref = power_method(dense, config);
  const PowerResult got = power_method(transformed, config);
  EXPECT_LT(eigenvalue_error(got.eigenvalues, ref.eigenvalues), 0.02);
}

TEST(EigenvalueError, Definition) {
  const std::vector<Real> ref = {4.0, 2.0, 1.0};
  const std::vector<Real> found = {4.2, 1.9, 1.0};
  EXPECT_NEAR(eigenvalue_error(found, ref), 0.3 / 7.0, 1e-12);
  EXPECT_EQ(eigenvalue_error(ref, ref), 0.0);
  EXPECT_THROW(eigenvalue_error({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace extdict::solvers
