// Seeded violation: a scalar accumulated across iterations without a
// reduction clause — every iteration races on `acc`.
//
// extdict-analyze-path: src/serve/fixture_omp_sharing_race.cpp
// extdict-analyze-expect: omp-sharing
#include <cstddef>
#include <vector>

namespace extdict::serve {

double fixture_sum(const std::vector<double>& x) {
  const long n = static_cast<long>(x.size());
  double acc = 0.0;
#pragma omp parallel for schedule(static) default(none) shared(x, n, acc)
  for (long j = 0; j < n; ++j) {
    acc += x[static_cast<std::size_t>(j)];  // race: should be reduction(+:acc)
  }
  return acc;
}

}  // namespace extdict::serve
