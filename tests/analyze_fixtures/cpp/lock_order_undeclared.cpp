// Seeded violation: acquires a second mutex while holding the first,
// without declaring the ordering edge at the source mutex.
//
// extdict-analyze-path: src/serve/fixture_lock_order_undeclared.cpp
// extdict-analyze-expect: lock-order
#include "util/sync.hpp"

namespace extdict::serve {

class FixturePair {
 public:
  void both() {
    const util::MutexLock hold_outer(outer_mu_);
    const util::MutexLock hold_inner(inner_mu_);  // undeclared edge
    ++generation_;
  }

 private:
  util::Mutex outer_mu_;
  util::Mutex inner_mu_;
  long generation_ EXTDICT_GUARDED_BY(inner_mu_) = 0;
};

inline void fixture_use_pair() { FixturePair{}.both(); }

}  // namespace extdict::serve
