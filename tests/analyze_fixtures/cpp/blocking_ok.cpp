// Clean baseline: a condition-variable wait on the mutex it protects is the
// one blocking operation that is legitimate under a lock.
//
// extdict-analyze-path: src/serve/fixture_blocking_ok.cpp
// extdict-analyze-expect: none
#include "util/sync.hpp"

namespace extdict::serve {

class FixtureGate {
 public:
  void open() {
    const util::MutexLock lock(mu_);
    ready_ = true;
    cv_.notify_all();
  }

  void pass() {
    const util::MutexLock lock(mu_);
    while (!ready_) cv_.wait(mu_);
  }

 private:
  util::Mutex mu_;
  util::CondVar cv_;
  bool ready_ EXTDICT_GUARDED_BY(mu_) = false;
};

inline void fixture_use_gate() { FixtureGate{}.open(); }

}  // namespace extdict::serve
