// Clean baseline: allocations in a loop are fine when the loop is not hot
// (no EXTDICT_HOT_ASSERT inside it), and a hot loop without allocations
// passes. The HOT_ASSERT detail string is only evaluated on failure and is
// exempt.
//
// extdict-analyze-path: src/core/fixture_hot_alloc_ok.cpp
// extdict-analyze-expect: none
#include <cstddef>
#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace extdict::core {

double fixture_cold_copy(const std::vector<double>& xs,
                         std::vector<double>& copies) {
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    copies.push_back(xs[i]);  // not hot: no HOT_ASSERT in this loop
    sum += xs[i];
  }
  return sum;
}

double fixture_hot_sum(const std::vector<double>& xs) {
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXTDICT_HOT_ASSERT(xs[i] >= 0.0,
                       "negative sample at " + std::to_string(i));
    sum += xs[i];
  }
  return sum;
}

}  // namespace extdict::core
