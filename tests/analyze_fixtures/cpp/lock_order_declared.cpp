// Clean baseline: the same nested acquisition as the undeclared fixture,
// but the ordering edge is declared at the source mutex — the analyzer
// checks the extracted graph exactly matches the declared edges.
//
// extdict-analyze-path: src/serve/fixture_lock_order_declared.cpp
// extdict-analyze-expect: none
#include "util/sync.hpp"

namespace extdict::serve {

class FixtureOrdered {
 public:
  void both() {
    const util::MutexLock hold_outer(outer_mu_);
    const util::MutexLock hold_inner(inner_mu_);
    ++generation_;
  }

 private:
  // Outer intentionally wraps inner; the edge is part of the fixture contract.
  // extdict-analyze: non-leaf(FixtureOrdered::outer_mu_ -> inner_mu_) by design
  util::Mutex outer_mu_;
  util::Mutex inner_mu_;
  long generation_ EXTDICT_GUARDED_BY(inner_mu_) = 0;
};

inline void fixture_use_ordered() { FixtureOrdered{}.both(); }

}  // namespace extdict::serve
