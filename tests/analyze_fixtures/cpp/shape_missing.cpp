// Seeded violation: loops over a Matrix parameter before any
// EXTDICT_REQUIRE_SHAPE. Compiled by `extdict-analyze.py --self-test` with
// -fsyntax-only -DEXTDICT_ANALYZE against the real src/util headers.
//
// extdict-analyze-path: src/la/fixture_shape_missing.cpp
// extdict-analyze-expect: missing-shape-contract
#include "la/matrix.hpp"
#include "util/contracts.hpp"

namespace extdict::la {

double fixture_late_contract_sum(const Matrix& a) {
  double sum = 0.0;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) sum += a(i, j);
  }
  EXTDICT_REQUIRE_SHAPE(a.rows() > 0, "too late: the data is already read");
  return sum;
}

}  // namespace extdict::la
