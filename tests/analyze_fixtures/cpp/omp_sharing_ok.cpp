// Clean baseline: induction-indexed writes (directly and through a cast
// alias), a declared reduction, and region-local scratch.
//
// extdict-analyze-path: src/serve/fixture_omp_sharing_ok.cpp
// extdict-analyze-expect: none
#include <cstddef>
#include <vector>

namespace extdict::serve {

double fixture_scale(const std::vector<double>& x, std::vector<double>& y,
                     double s) {
  const long n = static_cast<long>(x.size());
  double energy = 0.0;
#pragma omp parallel for schedule(static) default(none) shared(x, y, s, n) \
    reduction(+ : energy)
  for (long j = 0; j < n; ++j) {
    const auto i = static_cast<std::size_t>(j);
    double v = s * x[i];  // region-local scratch
    v += 1.0;
    y[i] = v;
    energy += v * v;
  }
  return energy;
}

}  // namespace extdict::serve
