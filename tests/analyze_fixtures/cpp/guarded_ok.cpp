// Clean baseline for the guarded-by audit: annotated, const, atomic and
// waived fields are all acceptable states for members of a mutex-owning
// class.
//
// extdict-analyze-path: src/serve/fixture_guarded_ok.cpp
// extdict-analyze-expect: none
#include <atomic>

#include "util/sync.hpp"

namespace extdict::serve {

class FixtureLedger {
 public:
  explicit FixtureLedger(long limit) : limit_(limit) {}

  void record(long amount) {
    const util::MutexLock lock(mu_);
    balance_ += amount;
    observed_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  util::Mutex mu_;
  long balance_ EXTDICT_GUARDED_BY(mu_) = 0;
  const long limit_;
  std::atomic<unsigned long> observed_{0};
  // extdict-analyze: allow(guarded-by) fixture: written once at construction
  double scale_ = 1.0;
};

inline void fixture_use_ledger() { FixtureLedger{10}.record(1); }

}  // namespace extdict::serve
