// Seeded violation: a loop containing EXTDICT_HOT_ASSERT is hot by
// declaration; allocating inside it (push_back) must fire. The assert's
// detail argument itself is exempt — it only evaluates on failure.
//
// extdict-analyze-path: src/core/fixture_hot_alloc.cpp
// extdict-analyze-expect: hot-loop-allocation
#include <cstddef>
#include <vector>

#include "util/contracts.hpp"

namespace extdict::core {

double fixture_hot_copy(const std::vector<double>& xs,
                        std::vector<double>& copies) {
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXTDICT_HOT_ASSERT(xs[i] >= 0.0, "negative sample");
    copies.push_back(xs[i]);  // allocation inside a hot loop
    sum += xs[i];
  }
  return sum;
}

}  // namespace extdict::core
