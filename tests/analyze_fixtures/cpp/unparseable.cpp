// Error-path fixture: this TU does not compile (the include target does not
// exist), so the AST dump fails. The front-end must report a clean
// AnalyzeError (exit 2 on a tree scan), never a Python traceback.
//
// extdict-analyze-unparseable
// extdict-analyze-expect: none
#include "extdict_analyze_fixture_header_that_does_not_exist.hpp"

namespace extdict::core {

int fixture_never_compiles() { return 0; }

}  // namespace extdict::core
