// Seeded violation: sleeps while holding a mutex.
//
// extdict-analyze-path: src/serve/fixture_blocking_locked.cpp
// extdict-analyze-expect: blocking-while-locked
#include <chrono>
#include <thread>

#include "util/sync.hpp"

namespace extdict::serve {

class FixtureSleepy {
 public:
  void nap() {
    const util::MutexLock lock(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++naps_;
  }

 private:
  util::Mutex mu_;
  long naps_ EXTDICT_GUARDED_BY(mu_) = 0;
};

inline void fixture_use_sleepy() { FixtureSleepy{}.nap(); }

}  // namespace extdict::serve
