// Seeded violation: the region body is race-free, but the directive does
// not declare default(none) — sharing must be explicit on every region.
//
// extdict-analyze-path: src/serve/fixture_omp_sharing_default_missing.cpp
// extdict-analyze-expect: omp-sharing
#include <cstddef>
#include <vector>

namespace extdict::serve {

void fixture_fill(std::vector<double>& y) {
  const long n = static_cast<long>(y.size());
#pragma omp parallel for schedule(static)
  for (long j = 0; j < n; ++j) {
    y[static_cast<std::size_t>(j)] = 0.0;
  }
}

}  // namespace extdict::serve
