// Clean baseline: the entry contract runs before the first loop, and a
// second entry point delegates its validation to the first.
//
// extdict-analyze-path: src/la/fixture_shape_ok.cpp
// extdict-analyze-expect: none
#include "la/matrix.hpp"
#include "util/contracts.hpp"

namespace extdict::la {

double fixture_contract_first_sum(const Matrix& a) {
  EXTDICT_REQUIRE_SHAPE(a.rows() > 0 && a.cols() > 0, "matrix must be nonempty");
  double sum = 0.0;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) sum += a(i, j);
  }
  return sum;
}

double fixture_delegated_mean(const Matrix& a) {
  const double sum = fixture_contract_first_sum(a);  // validates shape
  double n = 0.0;
  for (Index j = 0; j < a.cols(); ++j) n += static_cast<double>(a.rows());
  return n > 0 ? sum / n : 0.0;
}

}  // namespace extdict::la
