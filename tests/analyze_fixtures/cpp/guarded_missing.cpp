// Seeded violation: a mutex-owning class with an unannotated mutable field.
//
// extdict-analyze-path: src/serve/fixture_guarded_missing.cpp
// extdict-analyze-expect: guarded-by
#include "util/sync.hpp"

namespace extdict::serve {

class FixtureCounter {
 public:
  void bump() {
    const util::MutexLock lock(mu_);
    ++count_;
  }

 private:
  util::Mutex mu_;
  long count_ = 0;  // missing EXTDICT_GUARDED_BY(mu_)
};

inline void fixture_use_counter() { FixtureCounter{}.bump(); }

}  // namespace extdict::serve
