// ExtDictServer contracts: served codes match direct Batch-OMP, per-request
// stopping rules are honored, malformed signals fail their own future (never
// the server), backpressure policies reject/shed deterministically, and both
// stop modes resolve every outstanding future.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "la/random.hpp"
#include "util/contracts.hpp"
#include "util/metrics.hpp"

namespace extdict::serve {
namespace {

using la::Matrix;
using la::Rng;
using la::Vector;
using sparsecoding::BatchOmp;
using sparsecoding::OmpConfig;
using sparsecoding::SparseCode;
using namespace std::chrono_literals;

Matrix test_dictionary(Index m, Index l, unsigned seed = 7) {
  Rng rng(seed);
  return rng.gaussian_matrix(m, l, true);
}

std::vector<Vector> test_signals(Index m, int count, unsigned seed = 11) {
  Rng rng(seed);
  std::vector<Vector> signals;
  signals.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Vector x(m);
    rng.fill_gaussian(x);
    signals.push_back(std::move(x));
  }
  return signals;
}

void expect_codes_equal(const SparseCode& got, const SparseCode& want) {
  ASSERT_EQ(got.entries.size(), want.entries.size());
  for (std::size_t k = 0; k < got.entries.size(); ++k) {
    EXPECT_EQ(got.entries[k].first, want.entries[k].first);
    EXPECT_NEAR(got.entries[k].second, want.entries[k].second, 1e-12);
  }
  EXPECT_NEAR(got.residual_norm, want.residual_norm, 1e-12);
}

void expect_accounting_identities(const ServerStats& s) {
  EXPECT_EQ(s.submitted,
            s.accepted + s.invalid + s.rejected + s.stopped + s.cache_hits);
  EXPECT_EQ(s.accepted, s.served + s.encode_failed + s.shed + s.discarded);
  EXPECT_EQ(s.columns_encoded, s.served + s.encode_failed);
}

TEST(ExtDictServer, ServedCodesMatchDirectBatchOmp) {
  const Index m = 24, l = 48;
  Matrix dict = test_dictionary(m, l);
  const OmpConfig omp{.tolerance = 0.1};
  BatchOmp direct(dict, omp);

  ExtDictServer server(dict, {.max_batch = 8,
                              .max_delay_us = 2000,
                              .workers = 2,
                              .omp = omp});
  const auto signals = test_signals(m, 40);
  std::vector<std::future<EncodeResult>> futures;
  futures.reserve(signals.size());
  for (const auto& x : signals) futures.push_back(server.submit(x));

  for (std::size_t i = 0; i < signals.size(); ++i) {
    const EncodeResult result = futures[i].get();
    expect_codes_equal(result.code, direct.encode(signals[i]));
    EXPECT_GE(result.batch_columns, 1);
    EXPECT_GE(result.queue_seconds, 0.0);
    EXPECT_GE(result.encode_seconds, 0.0);
  }
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, signals.size());
  EXPECT_EQ(s.served, signals.size());
  expect_accounting_identities(s);
}

TEST(ExtDictServer, PerRequestStoppingRulesAreHonored) {
  const Index m = 24, l = 48;
  Matrix dict = test_dictionary(m, l);
  const OmpConfig loose{.tolerance = 0.5};
  ExtDictServer server(dict, {.max_batch = 4, .workers = 1, .omp = loose});
  BatchOmp reference(dict, loose);
  const auto signals = test_signals(m, 6);

  // Tighter ε than the server default → more atoms, smaller residual.
  const EncodeOptions tight_eps{.tolerance = 0.05};
  // Hard sparsity cap overriding the default rule.
  const EncodeOptions capped{.tolerance = 0.0, .max_atoms = 3};

  for (const auto& x : signals) {
    const SparseCode via_eps = server.submit(x, tight_eps).get().code;
    expect_codes_equal(via_eps,
                       reference.encode(x, {.tolerance = 0.05}));

    const SparseCode via_cap = server.submit(x, capped).get().code;
    EXPECT_LE(via_cap.nnz(), 3);
    expect_codes_equal(
        via_cap, reference.encode(x, {.tolerance = 0.0, .max_atoms = 3}));

    // Defaulted options reproduce the server-wide rule exactly.
    expect_codes_equal(server.submit(x).get().code, reference.encode(x));
  }
}

TEST(ExtDictServer, MicroBatchesFormUnderConcurrentSubmission) {
  const Index m = 16, l = 32;
  ExtDictServer server(test_dictionary(m, l),
                       {.max_batch = 32,
                        .max_delay_us = 200000,  // generous: no flaky flushes
                        .workers = 1, .omp = {}});
  const auto signals = test_signals(m, 16);
  std::vector<std::future<EncodeResult>> futures;
  for (const auto& x : signals) futures.push_back(server.submit(x));
  Index widest = 0;
  for (auto& f : futures) widest = std::max(widest, f.get().batch_columns);
  // All 16 arrive well inside the 200ms window after the worker picks up the
  // first, so at least one multi-column batch must have formed.
  EXPECT_GE(widest, 2);
  server.stop();
  EXPECT_EQ(server.stats().max_batch_columns,
            static_cast<std::uint64_t>(widest));
  EXPECT_LT(server.stats().batches, 16u);
}

TEST(ExtDictServer, MalformedSignalsFailTheirOwnFutureOnly) {
  const Index m = 16, l = 32;
  ExtDictServer server(test_dictionary(m, l), {.max_batch = 4, .workers = 1, .omp = {}});

  const std::vector<Real> empty;
  EXPECT_THROW(server.submit(empty).get(), InvalidRequest);
  const std::vector<Real> wrong_m(static_cast<std::size_t>(m) + 3, 0.5);
  EXPECT_THROW(server.submit(wrong_m).get(), InvalidRequest);

  // The server keeps serving valid requests afterwards.
  const auto signals = test_signals(m, 4);
  for (const auto& x : signals) {
    EXPECT_NO_THROW(server.submit(x).get());
  }
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.invalid, 2u);
  EXPECT_EQ(s.served, 4u);
  expect_accounting_identities(s);
}

TEST(ExtDictServer, NonFiniteSignalFailsItsFutureInCheckedBuilds) {
  if (!util::checks_enabled()) {
    GTEST_SKIP() << "EXTDICT_CHECKS off: finite-entry contract not armed";
  }
  const Index m = 16, l = 32;
  ExtDictServer server(test_dictionary(m, l), {.max_batch = 2, .workers = 1, .omp = {}});
  std::vector<Real> bad(static_cast<std::size_t>(m), 1.0);
  bad[3] = std::numeric_limits<Real>::quiet_NaN();
  EXPECT_THROW(server.submit(bad).get(), util::ContractViolation);
  // The worker survived the throw and still serves.
  const auto signals = test_signals(m, 2);
  for (const auto& x : signals) EXPECT_NO_THROW(server.submit(x).get());
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.encode_failed, 1u);
  expect_accounting_identities(s);
}

// A workload whose first request occupies the single worker long enough to
// deterministically fill the tiny queue behind it: ε = 0 on a gaussian
// signal never converges, so Batch-OMP runs all min(M, L) iterations.
class BackpressureFixture : public ::testing::Test {
 protected:
  static constexpr Index kM = 256;
  static constexpr Index kL = 384;

  ServerConfig slow_config(BackpressurePolicy policy) const {
    return {.max_batch = 1,
            .workers = 1,
            .queue_capacity = 2,
            .backpressure = policy,
            .omp = {.tolerance = 0.0}};
  }
};

TEST_F(BackpressureFixture, RejectPolicyFailsOverflowFutures) {
  ExtDictServer server(test_dictionary(kM, kL),
                       slow_config(BackpressurePolicy::kReject));
  const auto signals = test_signals(kM, 8);
  std::vector<std::future<EncodeResult>> futures;
  // First request is picked up by the worker; the next two fill the queue;
  // later ones race the (slow) first encode and mostly reject.
  for (const auto& x : signals) futures.push_back(server.submit(x));

  std::uint64_t served = 0, rejected = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++served;
    } catch (const RequestRejected&) {
      ++rejected;
    }
  }
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(served + rejected, signals.size());
  EXPECT_EQ(s.served, served);
  EXPECT_EQ(s.rejected, rejected);
  EXPECT_GE(rejected, 1u);  // capacity 2 + 1 in flight < 8 submitted
  expect_accounting_identities(s);
}

TEST_F(BackpressureFixture, ShedOldestEvictsQueuedFutures) {
  ExtDictServer server(test_dictionary(kM, kL),
                       slow_config(BackpressurePolicy::kShedOldest));
  const auto signals = test_signals(kM, 8);
  std::vector<std::future<EncodeResult>> futures;
  for (const auto& x : signals) futures.push_back(server.submit(x));

  std::uint64_t served = 0, shed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++served;
    } catch (const RequestShed&) {
      ++shed;
    }
  }
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(served + shed, signals.size());
  EXPECT_EQ(s.accepted, signals.size());  // shed requests were accepted first
  EXPECT_EQ(s.shed, shed);
  EXPECT_GE(shed, 1u);
  expect_accounting_identities(s);
}

TEST_F(BackpressureFixture, DrainStopServesEverythingQueued) {
  ExtDictServer server(test_dictionary(kM, kL),
                       slow_config(BackpressurePolicy::kBlock));
  const auto signals = test_signals(kM, 3);
  std::vector<std::future<EncodeResult>> futures;
  for (const auto& x : signals) futures.push_back(server.submit(x));
  server.stop(StopMode::kDrain);  // in-flight + 2 queued all get served
  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
  const ServerStats s = server.stats();
  EXPECT_EQ(s.served, signals.size());
  expect_accounting_identities(s);
}

TEST_F(BackpressureFixture, DiscardStopFailsQueuedDeterministically) {
  ExtDictServer server(test_dictionary(kM, kL),
                       slow_config(BackpressurePolicy::kBlock));
  const auto signals = test_signals(kM, 3);
  std::vector<std::future<EncodeResult>> futures;
  for (const auto& x : signals) futures.push_back(server.submit(x));
  server.stop(StopMode::kDiscard);
  std::uint64_t served = 0, discarded = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++served;
    } catch (const ServerStopped&) {
      ++discarded;
    }
  }
  const ServerStats s = server.stats();
  EXPECT_EQ(served + discarded, signals.size());
  EXPECT_EQ(s.served, served);
  EXPECT_EQ(s.discarded, discarded);
  expect_accounting_identities(s);
}

TEST(ExtDictServer, SubmitAfterStopResolvesWithServerStopped) {
  const Index m = 16, l = 32;
  ExtDictServer server(test_dictionary(m, l), {.workers = 1, .omp = {}});
  server.stop();
  EXPECT_FALSE(server.accepting());
  const auto signals = test_signals(m, 1);
  EXPECT_THROW(server.submit(signals[0]).get(), ServerStopped);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.stopped, 1u);
  expect_accounting_identities(s);
}

TEST(ExtDictServer, StopIsIdempotentAcrossModes) {
  ExtDictServer server(test_dictionary(16, 32), {.workers = 2, .omp = {}});
  server.stop(StopMode::kDrain);
  server.stop(StopMode::kDiscard);  // no-op: already stopped
  server.stop(StopMode::kDrain);
  SUCCEED();
}

TEST(ExtDictServer, DestructorDrainsOutstandingFutures) {
  const Index m = 16, l = 32;
  const auto signals = test_signals(m, 12);
  std::vector<std::future<EncodeResult>> futures;
  {
    ExtDictServer server(test_dictionary(m, l),
                         {.max_batch = 4, .workers = 2, .omp = {}});
    for (const auto& x : signals) futures.push_back(server.submit(x));
  }  // destructor == stop(kDrain)
  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
}

TEST(ExtDictServer, ConfigClampsDegenerateValues) {
  ExtDictServer server(test_dictionary(8, 16),
                       {.max_batch = 0, .workers = 0, .queue_capacity = 0, .omp = {}});
  EXPECT_EQ(server.config().max_batch, 1);
  EXPECT_EQ(server.config().workers, 1);
  const auto signals = test_signals(8, 3);
  for (const auto& x : signals) EXPECT_NO_THROW(server.submit(x).get());
}

TEST(ExtDictServer, LatencyHistogramsLandInGlobalRegistry) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.set_enabled(true);
  const std::uint64_t before =
      metrics.histogram_count("serve.latency.total_seconds");
  const Index m = 16, l = 32;
  ExtDictServer server(test_dictionary(m, l), {.max_batch = 4, .workers = 1, .omp = {}});
  const auto signals = test_signals(m, 5);
  for (const auto& x : signals) (void)server.submit(x).get();
  server.stop();
  EXPECT_EQ(metrics.histogram_count("serve.latency.total_seconds"),
            before + signals.size());
}

TEST(ExtDictServer, GaugesDrainToTheirPriorLevels) {
  // Queue depth, in-flight, busy workers, and cache occupancy are tracked
  // levels (every + has a -), so a drained-and-destroyed server returns
  // each gauge to exactly where it found it — even when other tests' live
  // servers share the process-wide names.
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.set_enabled(true);
  const std::int64_t depth_before = metrics.gauge_value("serve.queue.depth");
  const std::int64_t inflight_before = metrics.gauge_value("serve.inflight");
  const std::int64_t busy_before = metrics.gauge_value("serve.workers.busy");
  const std::int64_t entries_before =
      metrics.gauge_value("serve.cache.entries");
  const std::int64_t bytes_before =
      metrics.gauge_value("serve.cache.resident_bytes");

  const Index m = 16, l = 32;
  {
    ExtDictServer server(test_dictionary(m, l),
                         {.max_batch = 4,
                          .workers = 2,
                          .omp = {},
                          .cache_capacity = 64});
    const auto signals = test_signals(m, 24);
    std::vector<std::future<EncodeResult>> futures;
    futures.reserve(signals.size());
    for (const auto& x : signals) futures.push_back(server.submit(x));
    for (auto& f : futures) (void)f.get();

    // While the cache is live its occupancy gauges carry the entries.
    EXPECT_EQ(metrics.gauge_value("serve.cache.entries"),
              entries_before +
                  static_cast<std::int64_t>(server.cache_stats().entries));
    server.stop();
    EXPECT_EQ(metrics.gauge_value("serve.queue.depth"), depth_before);
    EXPECT_EQ(metrics.gauge_value("serve.inflight"), inflight_before);
    EXPECT_EQ(metrics.gauge_value("serve.workers.busy"), busy_before);
  }
  // Destruction returns the cache occupancy too.
  EXPECT_EQ(metrics.gauge_value("serve.cache.entries"), entries_before);
  EXPECT_EQ(metrics.gauge_value("serve.cache.resident_bytes"), bytes_before);
}

TEST(ExtDictServer, DiscardedRequestsLeaveTheDepthGauge) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.set_enabled(true);
  const std::int64_t depth_before = metrics.gauge_value("serve.queue.depth");
  const Index m = 16, l = 32;
  ExtDictServer server(test_dictionary(m, l),
                       {.max_batch = 1,
                        .max_delay_us = 200000,
                        .workers = 1,
                        .queue_capacity = 64,
                        .omp = {}});
  const auto signals = test_signals(m, 32);
  std::vector<std::future<EncodeResult>> futures;
  futures.reserve(signals.size());
  for (const auto& x : signals) futures.push_back(server.submit(x));
  server.stop(StopMode::kDiscard);
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const ServerStopped&) {
      // discarded — expected for whatever was still queued
    }
  }
  const ServerStats s = server.stats();
  expect_accounting_identities(s);
  // Whether served or discarded, every accepted request left the queue.
  EXPECT_EQ(metrics.gauge_value("serve.queue.depth"), depth_before);
}

}  // namespace
}  // namespace extdict::serve
