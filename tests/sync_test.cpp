// Behavioural tests for the annotated sync layer (util/sync.hpp) and for the
// thread-safety guarantee the Gram operators gained from it. The *protocol*
// (which lock guards what) is checked at compile time under the
// `thread-safety` preset; these tests check the wrappers actually exclude,
// wake, and compose at run time.

#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <span>
#include <thread>
#include <vector>

#include "core/gram_operator.hpp"
#include "la/matrix.hpp"
#include "la/random.hpp"

namespace {

using extdict::util::CondVar;
using extdict::util::Mutex;
using extdict::util::MutexLock;

TEST(Sync, MutexLockExcludes) {
  // 8 threads x 10k increments on a guarded counter: any lost update means
  // the wrapper failed to exclude.
  Mutex mu;
  long counter = 0;

  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(Sync, TryLockReflectsOwnership) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());

  // A second owner must be refused while the mutex is held.
  bool second = true;
  std::thread probe([&] { second = mu.try_lock(); });
  probe.join();
  EXPECT_FALSE(second);

  mu.unlock();
  std::thread again([&] {
    if (mu.try_lock()) mu.unlock();
  });
  again.join();
}

TEST(Sync, CondVarHandsOverValue) {
  Mutex mu;
  CondVar cv;
  int value = 0;
  bool done = false;

  std::thread consumer([&] {
    const MutexLock lock(mu);
    while (value == 0) cv.wait(mu);
    done = true;
  });

  {
    const MutexLock lock(mu);
    value = 42;
  }
  cv.notify_all();
  consumer.join();

  const MutexLock lock(mu);
  EXPECT_TRUE(done);
  EXPECT_EQ(value, 42);
}

TEST(Sync, CondVarSurvivesSpuriousNotifies) {
  Mutex mu;
  CondVar cv;
  int stage = 0;

  std::thread waiter([&] {
    const MutexLock lock(mu);
    while (stage < 2) cv.wait(mu);
  });

  for (int s = 1; s <= 2; ++s) {
    cv.notify_all();  // notify with no state change: must not wake through
    {
      const MutexLock lock(mu);
      stage = s;
    }
    cv.notify_all();
  }
  waiter.join();
  const MutexLock lock(mu);
  EXPECT_EQ(stage, 2);
}

// The scratch buffers inside the Gram operators are the one piece of mutable
// state an OpenMP caller could share across threads through a const
// reference; since they are mutex-guarded, concurrent applies must yield
// exactly the single-threaded result.
TEST(Sync, GramOperatorsAreThreadSafe) {
  extdict::la::Rng rng(1234);
  const extdict::la::Matrix a = rng.gaussian_matrix(24, 16, false);
  const extdict::core::DenseGramOperator op(a);

  std::vector<extdict::la::Real> x(16);
  rng.fill_gaussian(x);
  std::vector<extdict::la::Real> expected(16);
  op.apply(x, expected);

  constexpr int kThreads = 8;
  constexpr int kRepeats = 200;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<extdict::la::Real> y(16);
      for (int r = 0; r < kRepeats; ++r) {
        op.apply(x, y);
        // Identical input through identical arithmetic: any deviation means
        // a torn scratch buffer.
        if (y != expected) ++mismatches[static_cast<std::size_t>(t)];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

}  // namespace
