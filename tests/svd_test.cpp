#include "la/svd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::la {
namespace {

Matrix reconstruct(const SvdResult& svd) {
  Matrix us = svd.u;
  for (Index j = 0; j < us.cols(); ++j) {
    scal(svd.s[static_cast<std::size_t>(j)], us.col(j));
  }
  return matmul(us, svd.v, Trans::kNo, Trans::kYes);
}

TEST(JacobiSvd, ReconstructsSmallMatrix) {
  Rng rng(1);
  Matrix a = rng.gaussian_matrix(6, 4);
  SvdResult svd = jacobi_svd(a);
  EXPECT_LT(max_abs_diff(a, reconstruct(svd)), 1e-9);
}

TEST(JacobiSvd, SingularValuesSortedNonIncreasing) {
  Rng rng(2);
  Matrix a = rng.gaussian_matrix(8, 8);
  SvdResult svd = jacobi_svd(a);
  for (std::size_t i = 1; i < svd.s.size(); ++i) {
    EXPECT_GE(svd.s[i - 1], svd.s[i]);
  }
}

TEST(JacobiSvd, SingularVectorsOrthonormal) {
  Rng rng(3);
  Matrix a = rng.gaussian_matrix(10, 5);
  SvdResult svd = jacobi_svd(a);
  Matrix utu = matmul(svd.u, svd.u, Trans::kYes, Trans::kNo);
  Matrix vtv = matmul(svd.v, svd.v, Trans::kYes, Trans::kNo);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      const Real expected = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(utu(i, j), expected, 1e-9);
      EXPECT_NEAR(vtv(i, j), expected, 1e-9);
    }
  }
}

TEST(JacobiSvd, KnownDiagonalCase) {
  Matrix a = Matrix::from_rows({{3, 0}, {0, -4}});
  SvdResult svd = jacobi_svd(a);
  EXPECT_NEAR(svd.s[0], 4.0, 1e-12);
  EXPECT_NEAR(svd.s[1], 3.0, 1e-12);
}

TEST(JacobiSvd, FrobeniusIdentity) {
  // ||A||_F² = Σ σ_i².
  Rng rng(4);
  Matrix a = rng.gaussian_matrix(7, 7);
  SvdResult svd = jacobi_svd(a);
  Real ssq = 0;
  for (Real s : svd.s) ssq += s * s;
  EXPECT_NEAR(std::sqrt(ssq), a.frobenius_norm(), 1e-9);
}

TEST(RandomizedSvd, RecoversLowRankExactly) {
  // Rank-3 matrix: randomized SVD at k=3 reconstructs it (within fp noise).
  Rng rng(5);
  Matrix b = rng.gaussian_matrix(20, 3);
  Matrix c = rng.gaussian_matrix(3, 15);
  Matrix a = matmul(b, c);
  SvdResult svd = randomized_svd(a, 3, rng);
  EXPECT_LT(max_abs_diff(a, reconstruct(svd)), 1e-8);
}

TEST(RandomizedSvd, TopSingularValuesMatchJacobi) {
  Rng rng(6);
  Matrix a = rng.gaussian_matrix(30, 12);
  SvdResult full = jacobi_svd(a);
  SvdResult trunc = randomized_svd(a, 4, rng, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(trunc.s[i], full.s[i], 1e-6 * full.s[0]);
  }
}

TEST(RandomizedSvd, BadRankThrows) {
  Rng rng(7);
  Matrix a = rng.gaussian_matrix(5, 5);
  EXPECT_THROW(randomized_svd(a, 0, rng), std::invalid_argument);
  EXPECT_THROW(randomized_svd(a, 9, rng), std::invalid_argument);
}

TEST(SpectralNorm, MatchesLargestSingularValue) {
  Rng rng(8);
  Matrix a = rng.gaussian_matrix(15, 10);
  SvdResult svd = jacobi_svd(a);
  EXPECT_NEAR(spectral_norm(a, rng), svd.s[0], 1e-4 * svd.s[0]);
}

TEST(RankKError, MatchesTailOfSpectrum) {
  Rng rng(9);
  Matrix a = rng.gaussian_matrix(10, 6);
  SvdResult svd = jacobi_svd(a);
  Real tail = 0;
  for (std::size_t i = 2; i < svd.s.size(); ++i) tail += svd.s[i] * svd.s[i];
  EXPECT_NEAR(rank_k_error(a, 2), std::sqrt(tail), 1e-9);
}

}  // namespace
}  // namespace extdict::la
