#include "dist/platform.hpp"

#include <gtest/gtest.h>

namespace extdict::dist {
namespace {

TEST(PlatformSpec, PresetsCoverPaperConfigs) {
  const auto specs = paper_platforms();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "idataplex-1x1");
  EXPECT_EQ(specs[3].topology.total(), 64);
}

TEST(PlatformSpec, RbfRatiosArePositiveAndInterconnectBound) {
  PlatformSpec single = PlatformSpec::idataplex({1, 4});
  PlatformSpec multi = PlatformSpec::idataplex({8, 8});
  EXPECT_GT(single.r_time_bf(), 0.0);
  // Crossing nodes is more expensive per word than shared memory.
  EXPECT_GT(multi.r_time_bf(), single.r_time_bf());
  EXPECT_GT(multi.r_energy_bf(), single.r_energy_bf());
}

TEST(PlatformSpec, ModeledTimeTakesSlowestRank) {
  PlatformSpec spec = PlatformSpec::idataplex({1, 2});
  RunStats stats;
  stats.per_rank.resize(2);
  stats.per_rank[0].flops = 1000;
  stats.per_rank[1].flops = 4000;
  const double t = spec.modeled_seconds(stats);
  EXPECT_NEAR(t, 4000 / spec.flops_per_second, 1e-12);
}

TEST(PlatformSpec, ModeledTimeChargesCommunication) {
  PlatformSpec spec = PlatformSpec::idataplex({2, 1});
  RunStats compute_only, with_comm;
  compute_only.per_rank.resize(2);
  with_comm.per_rank.resize(2);
  compute_only.per_rank[0].flops = 1000;
  with_comm.per_rank[0].flops = 1000;
  with_comm.per_rank[0].words_sent_inter = 100000;
  with_comm.per_rank[0].messages_sent = 1;
  EXPECT_GT(spec.modeled_seconds(with_comm), spec.modeled_seconds(compute_only));
}

TEST(PlatformSpec, ModeledEnergyChargesWireOnce) {
  // The same transfer accounted on both endpoints must not double the
  // energy: total = words * joules_per_word.
  PlatformSpec spec = PlatformSpec::idataplex({2, 1});
  RunStats stats;
  stats.per_rank.resize(2);
  stats.per_rank[0].words_sent_inter = 1000;
  stats.per_rank[1].words_recv_inter = 1000;
  EXPECT_NEAR(spec.modeled_joules(stats), 1000 * spec.joules_per_inter_word,
              1e-12);
}

TEST(PlatformSpec, CalibrationProducesSaneRates) {
  PlatformSpec spec = PlatformSpec::idataplex({1, 1});
  spec.calibrate_on_host();
  EXPECT_GE(spec.flops_per_second, 1e8);
  EXPECT_LE(spec.flops_per_second, 1e12);
  EXPECT_GE(spec.intra_words_per_second, 1e7);
  EXPECT_NEAR(spec.inter_words_per_second, spec.intra_words_per_second / 8, 1);
}

}  // namespace
}  // namespace extdict::dist
