#include <gtest/gtest.h>

#include "baselines/oasis.hpp"
#include "baselines/rankmap.hpp"
#include "baselines/rcss.hpp"
#include "core/exd.hpp"
#include "data/subspace.hpp"
#include "la/blas.hpp"

namespace extdict::baselines {
namespace {

Matrix test_data(std::uint64_t seed = 121, Index n = 300) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 40;
  config.num_columns = n;
  config.num_subspaces = 5;
  config.subspace_dim = 4;
  config.seed = seed;
  return data::make_union_of_subspaces(config).a;
}

TEST(DenseToCsc, PreservesValuesDropsZeros) {
  Matrix c = Matrix::from_rows({{1, 0}, {0, 2}, {0, 0}});
  la::CscMatrix s = dense_to_csc(c);
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_EQ(la::max_abs_diff(s.to_dense(), c), 0.0);
}

TEST(Rcss, ProducesLeastSquaresProjection) {
  const Matrix a = test_data();
  const TransformResult r = rcss_transform(a, 60, 7);
  EXPECT_EQ(r.method, "RCSS");
  EXPECT_EQ(r.dictionary.cols(), 60);
  EXPECT_EQ(r.coefficients.rows(), 60);
  EXPECT_EQ(r.coefficients.cols(), 300);
  // Dense projection: essentially every coefficient entry is non-zero.
  EXPECT_GT(r.coefficients.nnz(), 60u * 300 / 2);
}

TEST(Rcss, ErrorDecreasesWithL) {
  const Matrix a = test_data(122);
  const TransformResult small = rcss_transform(a, 15, 7);
  const TransformResult big = rcss_transform(a, 120, 7);
  EXPECT_LT(big.transformation_error, small.transformation_error);
}

TEST(Rcss, ForErrorMeetsTolerance) {
  const Matrix a = test_data(123);
  const TransformResult r = rcss_transform_for_error(a, 0.1, 7);
  EXPECT_LE(r.transformation_error, 0.1);
  EXPECT_GT(r.dictionary.cols(), 0);
  EXPECT_LT(r.dictionary.cols(), 300);
}

TEST(Rcss, BadLThrows) {
  const Matrix a = test_data(124, 50);
  EXPECT_THROW(rcss_transform(a, 0, 1), std::invalid_argument);
  EXPECT_THROW(rcss_transform(a, 51, 1), std::invalid_argument);
}

TEST(Oasis, MeetsToleranceWithAdaptiveSelection) {
  const Matrix a = test_data(125);
  const TransformResult r = oasis_transform(a, 0.1, 7);
  EXPECT_EQ(r.method, "oASIS");
  EXPECT_LE(r.transformation_error, 0.1 * 1.05);
}

TEST(Oasis, AdaptiveNeedsNoMoreColumnsThanRandom) {
  // Adaptive selection is the whole point: for the same error it should
  // select at most about as many columns as random selection.
  const Matrix a = test_data(126);
  const TransformResult adaptive = oasis_transform(a, 0.08, 7);
  const TransformResult random = rcss_transform_for_error(a, 0.08, 7);
  EXPECT_LE(adaptive.dictionary.cols(),
            random.dictionary.cols() + random.dictionary.cols() / 4);
}

TEST(Oasis, MaxLCapRespected) {
  const Matrix a = test_data(127);
  const TransformResult r = oasis_transform(a, 1e-9, 7, /*max_l=*/12);
  EXPECT_LE(r.dictionary.cols(), 12);
}

TEST(Oasis, ZeroMatrixThrows) {
  Matrix zero(10, 20);
  EXPECT_THROW(oasis_transform(zero, 0.1, 1), std::invalid_argument);
}

TEST(RankMap, MeetsToleranceWithSparseC) {
  const Matrix a = test_data(128);
  const TransformResult r = rankmap_transform(a, 0.1, 7);
  EXPECT_EQ(r.method, "RankMap");
  EXPECT_LE(r.transformation_error, 0.1);
  // Sparse coefficients (that is what distinguishes it from RCSS/oASIS).
  EXPECT_LT(r.coefficients.nnz(),
            static_cast<std::uint64_t>(r.coefficients.rows()) *
                static_cast<std::uint64_t>(r.coefficients.cols()) / 4);
}

TEST(RankMap, PicksSmallerDictionaryThanPlatformTunedExd) {
  // RankMap minimises L subject to the error; ExD tuned for a compute-rich
  // platform may choose a (much) larger L. RankMap's choice must be at most
  // any feasible ExD grid point's L.
  const Matrix a = test_data(129);
  const TransformResult rankmap = rankmap_transform(a, 0.1, 7);
  core::ExdConfig big;
  big.dictionary_size = 200;
  big.tolerance = 0.1;
  big.seed = 7;
  const core::ExdResult exd = core::exd_transform(a, big);
  ASSERT_LE(exd.transformation_error, 0.1 * 1.05);
  EXPECT_LT(rankmap.dictionary.cols(), 200);
  // And the bigger dictionary is sparser per column — the ExtDict trade.
  EXPECT_LE(exd.alpha(), static_cast<Real>(rankmap.coefficients.nnz()) /
                             static_cast<Real>(rankmap.coefficients.cols()) * 1.1);
}

TEST(Baselines, MemoryWordsOrdering) {
  // On union-of-subspace data at the same error: ExD with an over-complete
  // dictionary beats the dense baselines on memory (Table III's shape).
  const Matrix a = test_data(130);
  const TransformResult rcss = rcss_transform_for_error(a, 0.1, 7);
  core::ExdConfig config;
  config.dictionary_size = 150;
  config.tolerance = 0.1;
  config.seed = 7;
  const core::ExdResult exd = core::exd_transform(a, config);
  const std::uint64_t exd_words =
      exd.dictionary.memory_words() + exd.coefficients.memory_words();
  EXPECT_LT(exd_words, rcss.memory_words());
}

}  // namespace
}  // namespace extdict::baselines
