#include "apps/patch_pipeline.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::apps {
namespace {

TEST(PatchGrid, CoversWholeImageIncludingBorders) {
  la::Rng rng(1);
  const Image img = data::make_smooth_scene(37, 29, rng);  // awkward sizes
  const Matrix patches = extract_patch_grid(img, 8, 5);
  EXPECT_EQ(patches.rows(), 64);
  // Positions: 0,5,10,...,25 then border 29 for x (7); 0,5,...,20 then 21
  // for y (6).
  EXPECT_EQ(patches.cols(), 7 * 6);
  // The last patch is border aligned: bottom-right pixel present.
  bool found = false;
  for (la::Index j = 0; j < patches.cols(); ++j) {
    if (patches(63, j) == img.at(36, 28)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(PatchGrid, Validation) {
  Image img(10, 10);
  EXPECT_THROW(extract_patch_grid(img, 0, 1), std::invalid_argument);
  EXPECT_THROW(extract_patch_grid(img, 12, 4), std::invalid_argument);
  EXPECT_THROW(extract_patch_grid(img, 4, 0), std::invalid_argument);
}

class DenoiserFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    la::Rng rng(7);
    // Train on patches of one scene; test on a DIFFERENT scene with the
    // same statistics.
    const Image train_scene = data::make_smooth_scene(96, 96, rng);
    const Matrix train = data::extract_patches(train_scene, 8, 500, rng);

    PatchPipelineConfig config;
    config.patch = 8;
    config.stride = 4;
    config.tolerance = 0.1;
    config.lambda = 3e-4;
    denoiser_ = std::make_unique<PatchDenoiser>(
        train, dist::PlatformSpec::idataplex({1, 2}), config);

    la::Rng rng2(8);
    clean_ = data::make_smooth_scene(48, 40, rng2);
    noisy_ = clean_;
    data::add_gaussian_noise(noisy_, 0.05, rng2);
  }

  std::unique_ptr<PatchDenoiser> denoiser_;
  Image clean_;
  Image noisy_;
};

TEST_F(DenoiserFixture, TransformMeetsBudget) {
  EXPECT_GT(denoiser_->dictionary_size(), 0);
  EXPECT_LE(denoiser_->transform_error(), 0.1 * 1.05);
}

TEST_F(DenoiserFixture, ImprovesFullImagePsnr) {
  const Image restored = denoiser_->denoise(noisy_);
  ASSERT_EQ(restored.width, clean_.width);
  ASSERT_EQ(restored.height, clean_.height);
  const Real before = data::psnr_db(clean_.pixels, noisy_.pixels);
  const Real after = data::psnr_db(clean_.pixels, restored.pixels);
  EXPECT_GT(after, before + 4.0);
}

TEST_F(DenoiserFixture, FlatPatchPassesThroughItsMean) {
  la::Vector flat(64, 0.37);
  const la::Vector restored = denoiser_->denoise_patch(flat);
  for (const Real v : restored) EXPECT_NEAR(v, 0.37, 1e-9);
}

TEST_F(DenoiserFixture, PatchLengthValidated) {
  la::Vector wrong(63);
  EXPECT_THROW((void)denoiser_->denoise_patch(wrong), std::invalid_argument);
}

TEST_F(DenoiserFixture, TinyImageRejected) {
  Image tiny(4, 4);
  EXPECT_THROW((void)denoiser_->denoise(tiny), std::invalid_argument);
}

TEST(PatchDenoiser, RejectsWrongTrainingShape) {
  la::Rng rng(9);
  const Matrix bad = rng.gaussian_matrix(60, 50);
  PatchPipelineConfig config;
  config.patch = 8;
  EXPECT_THROW(
      PatchDenoiser(bad, dist::PlatformSpec::idataplex({1, 1}), config),
      std::invalid_argument);
}

TEST(PatchDenoiser, RejectsAllFlatTraining) {
  Matrix flat(64, 100);  // all zeros -> every patch flat
  PatchPipelineConfig config;
  config.patch = 8;
  EXPECT_THROW(
      PatchDenoiser(flat, dist::PlatformSpec::idataplex({1, 1}), config),
      std::invalid_argument);
}

TEST(PatchDenoiser, DeterministicAcrossRuns) {
  la::Rng rng(10);
  const Image scene = data::make_smooth_scene(64, 64, rng);
  const Matrix train = data::extract_patches(scene, 8, 300, rng);
  PatchPipelineConfig config;
  config.patch = 8;
  config.stride = 6;
  const auto platform = dist::PlatformSpec::idataplex({1, 1});
  const PatchDenoiser a(train, platform, config);
  const PatchDenoiser b(train, platform, config);
  la::Rng rng2(11);
  Image noisy = data::make_smooth_scene(24, 24, rng2);
  data::add_gaussian_noise(noisy, 0.05, rng2);
  const Image ra = a.denoise(noisy);
  const Image rb = b.denoise(noisy);
  for (std::size_t i = 0; i < ra.pixels.size(); ++i) {
    EXPECT_EQ(ra.pixels[i], rb.pixels[i]);
  }
}

}  // namespace
}  // namespace extdict::apps
