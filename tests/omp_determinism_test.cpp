// Thread-count invariance for every OpenMP-parallelised kernel: each
// parallel region in this tree assigns every output element to exactly one
// iteration, so running at one thread and at a full team must produce
// bitwise-identical results — any divergence means iterations share state,
// i.e. the schedule leaked into the arithmetic.
//
// The one documented exception is core::transformation_error, whose
// reduction(+ : num, den) combines partial sums in a schedule-dependent
// order; it gets a tight relative tolerance instead of bitwise equality.
//
// serve::ExtDictServer and apps::patch_pipeline wrap these kernels behind
// threads/IO and are covered by their own stress tests.
#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "baselines/oasis.hpp"
#include "baselines/rcss.hpp"
#include "core/evolving.hpp"
#include "core/exd.hpp"
#include "la/blas.hpp"
#include "la/csc_matrix.hpp"
#include "la/qr.hpp"
#include "la/random.hpp"
#include "sparsecoding/batch_omp.hpp"

namespace extdict {
namespace {

using la::CscMatrix;
using la::Index;
using la::Matrix;
using la::Real;
using la::Vector;

constexpr int kTeam = 4;

// Runs `fn` with the OpenMP runtime pinned to `threads`, restoring the
// previous setting afterwards. Without OpenMP both runs use one thread and
// the comparison is trivially (but harmlessly) true.
template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
#ifdef _OPENMP
  const int before = omp_get_max_threads();
  omp_set_num_threads(threads);
#else
  (void)threads;
#endif
  auto result = fn();
#ifdef _OPENMP
  omp_set_num_threads(before);
#endif
  return result;
}

Matrix random_matrix(Index rows, Index cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  la::Rng rng(seed);
  rng.fill_gaussian({m.data(), static_cast<std::size_t>(m.size())});
  return m;
}

Vector random_vector(std::size_t n, std::uint64_t seed) {
  Vector v(n);
  la::Rng rng(seed);
  rng.fill_gaussian(v);
  return v;
}

void expect_bitwise(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (Index i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "flat index " << i;
  }
}

void expect_bitwise(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "index " << i;
  }
}

void expect_bitwise(const CscMatrix& a, const CscMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (Index j = 0; j < a.cols(); ++j) {
    const auto ar = a.col_rows(j), br = b.col_rows(j);
    const auto av = a.col_values(j), bv = b.col_values(j);
    ASSERT_EQ(ar.size(), br.size()) << "column " << j;
    for (std::size_t k = 0; k < ar.size(); ++k) {
      ASSERT_EQ(ar[k], br[k]) << "column " << j << " entry " << k;
      ASSERT_EQ(av[k], bv[k]) << "column " << j << " entry " << k;
    }
  }
}

TEST(OmpDeterminism, GemvT) {
  const Matrix a = random_matrix(96, 64, 11);
  const Vector x = random_vector(96, 12);
  const Vector y0 = random_vector(64, 13);
  auto run = [&] {
    Vector y = y0;
    la::gemv_t(1.3, a, x, -0.25, y);
    return y;
  };
  expect_bitwise(with_threads(1, run), with_threads(kTeam, run));
}

TEST(OmpDeterminism, GemmAllTransposeVariants) {
  const Matrix c0 = random_matrix(48, 40, 20);
  const std::pair<la::Trans, la::Trans> variants[] = {
      {la::Trans::kNo, la::Trans::kNo},
      {la::Trans::kYes, la::Trans::kNo},
      {la::Trans::kNo, la::Trans::kYes},
  };
  for (const auto& [ta, tb] : variants) {
    const Matrix a = ta == la::Trans::kNo ? random_matrix(48, 32, 21)
                                          : random_matrix(32, 48, 21);
    const Matrix b = tb == la::Trans::kNo ? random_matrix(32, 40, 22)
                                          : random_matrix(40, 32, 22);
    auto run = [&] {
      Matrix c = c0;
      la::gemm(0.7, a, ta, b, tb, 0.4, c);
      return c;
    };
    expect_bitwise(with_threads(1, run), with_threads(kTeam, run));
  }
}

TEST(OmpDeterminism, Gram) {
  const Matrix a = random_matrix(72, 56, 30);
  auto run = [&] { return la::gram(a); };
  expect_bitwise(with_threads(1, run), with_threads(kTeam, run));
}

TEST(OmpDeterminism, CscSpmvT) {
  // A sparse matrix with irregular column supports, straight from the coder.
  const Matrix a = random_matrix(40, 120, 40);
  const Matrix dict = random_matrix(40, 24, 41);
  sparsecoding::OmpConfig config;
  config.tolerance = 0.3;
  const CscMatrix c = sparsecoding::BatchOmp(dict, config).encode_all(a);
  const Vector w = random_vector(static_cast<std::size_t>(c.rows()), 42);
  auto run = [&] {
    Vector y(static_cast<std::size_t>(c.cols()));
    c.spmv_t(w, y);
    return y;
  };
  expect_bitwise(with_threads(1, run), with_threads(kTeam, run));
}

TEST(OmpDeterminism, QrSolveMany) {
  const Matrix a = random_matrix(64, 24, 50);
  const Matrix b = random_matrix(64, 48, 51);
  const la::HouseholderQr qr(a);
  auto run = [&] { return qr.solve_many(b); };
  expect_bitwise(with_threads(1, run), with_threads(kTeam, run));
}

TEST(OmpDeterminism, BatchOmpEncodeAll) {
  const Matrix signals = random_matrix(48, 160, 60);
  const Matrix dict = random_matrix(48, 32, 61);
  sparsecoding::OmpConfig config;
  config.tolerance = 0.2;
  auto run = [&] {
    return sparsecoding::BatchOmp(dict, config).encode_all(signals);
  };
  expect_bitwise(with_threads(1, run), with_threads(kTeam, run));
}

TEST(OmpDeterminism, RcssTransform) {
  const Matrix a = random_matrix(48, 96, 70);
  auto run = [&] { return baselines::rcss_transform(a, 24, 7); };
  const auto one = with_threads(1, run);
  const auto team = with_threads(kTeam, run);
  expect_bitwise(one.dictionary, team.dictionary);
  expect_bitwise(one.coefficients, team.coefficients);
}

TEST(OmpDeterminism, OasisTransform) {
  const Matrix a = random_matrix(40, 80, 80);
  auto run = [&] { return baselines::oasis_transform(a, 0.2, 9, 32); };
  const auto one = with_threads(1, run);
  const auto team = with_threads(kTeam, run);
  expect_bitwise(one.dictionary, team.dictionary);
  expect_bitwise(one.coefficients, team.coefficients);
}

TEST(OmpDeterminism, EvolveBothPasses) {
  // Base projection with a loose dictionary, then evolve with columns the
  // old dictionary cannot express: exercises both parallel passes (re-encode
  // and per-failed-column splice).
  const Matrix a = random_matrix(40, 120, 90);
  core::ExdConfig config;
  config.dictionary_size = 24;
  config.tolerance = 0.05;
  config.seed = 3;
  const core::ExdResult base = core::exd_transform(a, config);
  const Matrix a_new = random_matrix(40, 30, 91);

  auto run = [&] {
    core::ExdResult exd = base;
    core::ExdConfig evolve_config = config;
    evolve_config.dictionary_size = 8;
    const core::EvolveReport report = core::evolve(exd, a_new, evolve_config);
    return std::make_pair(std::move(exd), report);
  };
  const auto one = with_threads(1, run);
  const auto team = with_threads(kTeam, run);
  EXPECT_EQ(one.second.reencoded_columns, team.second.reencoded_columns);
  EXPECT_EQ(one.second.failed_columns, team.second.failed_columns);
  EXPECT_EQ(one.second.new_atoms, team.second.new_atoms);
  expect_bitwise(one.first.dictionary, team.first.dictionary);
  expect_bitwise(one.first.coefficients, team.first.coefficients);
}

TEST(OmpDeterminism, TransformationErrorWithinReductionTolerance) {
  // reduction(+ : num, den): the combine order depends on the team size, so
  // the result is only reproducible to rounding. 1e-10 relative is orders
  // of magnitude above double rounding on these sizes and far below any
  // real race-induced divergence.
  const Matrix a = random_matrix(40, 120, 95);
  core::ExdConfig config;
  config.dictionary_size = 32;
  config.tolerance = 0.05;
  config.seed = 5;
  const core::ExdResult exd = core::exd_transform(a, config);
  auto run = [&] {
    return core::transformation_error(a, exd.dictionary, exd.coefficients);
  };
  const Real one = with_threads(1, run);
  const Real team = with_threads(kTeam, run);
  EXPECT_NEAR(one, team, 1e-10 * std::max<Real>(one, Real{1}));
}

}  // namespace
}  // namespace extdict
