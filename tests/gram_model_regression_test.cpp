// Regression net for the transformed cost model's work term: the metered
// update FLOPs of every Eq. (2)-covered strategy must equal 2 × the model's
// multiply-add pairs *exactly*, per iteration, with no slack. The pre-fix
// model charged M·L + nnz (half the real work), which these tests would
// have rejected on every strategy — and the sign-flip test at the end shows
// the tuner decision the undercount inverted.

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/dist_gram.hpp"
#include "la/random.hpp"

namespace extdict::core {
namespace {

constexpr Index kM = 24;
constexpr Index kL = 16;
constexpr Index kN = 96;
constexpr Index kNnzPerCol = 5;

Matrix make_dictionary() {
  Matrix d(kM, kL);
  la::Rng rng(41);
  rng.fill_gaussian(std::span<Real>(d.data(), static_cast<std::size_t>(d.size())));
  return d;
}

// Deterministic C with exactly kNnzPerCol entries in every column, so the
// closed forms below are integer-exact.
CscMatrix make_coefficients() {
  la::CscMatrix::Builder builder(kL, kN);
  for (Index j = 0; j < kN; ++j) {
    for (Index k = 0; k < kNnzPerCol; ++k) {
      builder.add((j * 7 + k * 3) % kL, Real{1} / static_cast<Real>(k + 1));
    }
    builder.commit_column();
  }
  return std::move(builder).build();
}

std::uint64_t measured_per_iteration(GramStrategy strategy, Index ranks,
                                     int iterations = 3) {
  const Matrix d = make_dictionary();
  const CscMatrix c = make_coefficients();
  const dist::Cluster cluster(dist::Topology{1, ranks});
  const la::Vector x0(static_cast<std::size_t>(kN), Real{1});
  const DistGramResult r =
      dist_gram_apply(cluster, d, c, x0, iterations, strategy);
  EXPECT_EQ(r.update_flops,
            r.update_flops_per_iteration() * static_cast<std::uint64_t>(iterations))
      << "update FLOPs must divide evenly across iterations";
  return r.update_flops_per_iteration();
}

// 2 FLOPs per multiply-add pair: the identity the whole file pins.
std::uint64_t model_flops(const UpdateCost& cost, Index p) {
  return static_cast<std::uint64_t>(2.0 * cost.flops_per_proc *
                                    static_cast<double>(p));
}

TEST(GramModelRegression, PartitionedMatchesModelExactly) {
  const auto platform = dist::PlatformSpec::idataplex({1, 4});
  const std::uint64_t nnz = static_cast<std::uint64_t>(kN) * kNnzPerCol;
  for (const Index p : {1l, 2l, 4l}) {
    const UpdateCost cost = transformed_update_cost(kM, kL, nnz, kN, p, platform);
    EXPECT_EQ(measured_per_iteration(GramStrategy::kPartitionedDictionary, p),
              model_flops(cost, p))
        << "P=" << p;
  }
}

TEST(GramModelRegression, RootDictionaryMatchesModelExactly) {
  // Case 1 serialises the dense work on rank 0 but its *total* FLOPs are the
  // same 2·(M·L + nnz) pairs — Eq. (2) still prices the volume correctly.
  const auto platform = dist::PlatformSpec::idataplex({1, 4});
  const std::uint64_t nnz = static_cast<std::uint64_t>(kN) * kNnzPerCol;
  for (const Index p : {1l, 3l}) {
    const UpdateCost cost = transformed_update_cost(kM, kL, nnz, kN, p, platform);
    EXPECT_EQ(measured_per_iteration(GramStrategy::kRootDictionary, p),
              model_flops(cost, p))
        << "P=" << p;
  }
}

TEST(GramModelRegression, ReplicatedPaysTheRedundancyFactor) {
  // Case 2 re-does the Dᵀ multiply on every rank: measured = 4·nnz + 4·M·L·P.
  // Eq. (2) covers it only at P = 1; the bench flags the larger counts.
  const std::uint64_t nnz = static_cast<std::uint64_t>(kN) * kNnzPerCol;
  const std::uint64_t ml = static_cast<std::uint64_t>(kM) * kL;
  for (const Index p : {1l, 2l, 4l}) {
    EXPECT_EQ(measured_per_iteration(GramStrategy::kReplicatedDictionary, p),
              4 * nnz + 4 * ml * static_cast<std::uint64_t>(p))
        << "P=" << p;
  }
  const auto platform = dist::PlatformSpec::idataplex({1, 1});
  const UpdateCost at_one = transformed_update_cost(kM, kL, nnz, kN, 1, platform);
  EXPECT_EQ(measured_per_iteration(GramStrategy::kReplicatedDictionary, 1),
            model_flops(at_one, 1));
}

TEST(GramModelRegression, OriginalBaselineMatchesModelExactly) {
  Matrix a(kM, kN);
  la::Rng rng(43);
  rng.fill_gaussian(std::span<Real>(a.data(), static_cast<std::size_t>(a.size())));
  const auto platform = dist::PlatformSpec::idataplex({1, 4});
  const la::Vector x0(static_cast<std::size_t>(kN), Real{1});
  for (const Index p : {1l, 2l, 4l}) {
    const dist::Cluster cluster(dist::Topology{1, p});
    const DistGramResult r = dist_gram_apply_original(cluster, a, x0, 2);
    const UpdateCost cost = original_update_cost(kM, kN, p, platform);
    EXPECT_EQ(r.update_flops_per_iteration(), model_flops(cost, p)) << "P=" << p;
  }
}

TEST(GramModelRegression, ModelRankingAgreesWithMeteredRanking) {
  // The decision the 2× undercount inverted, at P = 1 with M=24, L=16,
  // N=30, nnz=350 (so M·L + nnz = 734 and M·N = 720):
  //   fixed model : 2·734 = 1468 pairs > 2·720 = 1440 -> original wins;
  //   buggy model :   734 pairs       < 1440          -> transform "wins".
  // The metered counters arbitrate: they agree with the fixed model.
  constexpr Index m = 24, l = 16, n = 30;
  constexpr std::uint64_t target_nnz = 350;

  Matrix d(m, l);
  la::Rng rng(47);
  rng.fill_gaussian(std::span<Real>(d.data(), static_cast<std::size_t>(d.size())));
  la::CscMatrix::Builder builder(l, n);
  std::uint64_t placed = 0;
  for (Index j = 0; j < n; ++j) {
    for (Index k = 0; k < l && placed < target_nnz; ++k) {
      if ((static_cast<std::uint64_t>(j) * l + k) % 41 == 0) continue;
      builder.add(k, Real{1});
      ++placed;
    }
    builder.commit_column();
  }
  const CscMatrix c = std::move(builder).build();
  ASSERT_EQ(c.nnz(), target_nnz);
  Matrix a(m, n);
  rng.fill_gaussian(std::span<Real>(a.data(), static_cast<std::size_t>(a.size())));

  const dist::Cluster cluster(dist::Topology{1, 1});
  const la::Vector x0(static_cast<std::size_t>(n), Real{1});
  const std::uint64_t measured_transformed =
      dist_gram_apply(cluster, d, c, x0, 1, GramStrategy::kPartitionedDictionary)
          .update_flops_per_iteration();
  const std::uint64_t measured_original =
      dist_gram_apply_original(cluster, a, x0, 1).update_flops_per_iteration();

  const auto platform = dist::PlatformSpec::idataplex({1, 1});
  const UpdateCost transformed =
      transformed_update_cost(m, l, target_nnz, n, 1, platform);
  const UpdateCost original = original_update_cost(m, n, 1, platform);

  // Metered: the transform does NOT pay off at these counts.
  EXPECT_GT(measured_transformed, measured_original);
  // The fixed model agrees; the buggy half-work model preferred the
  // transform (384 + 350 = 734 < 1440 = 2·M·N "pairs").
  EXPECT_GT(transformed.flops_per_proc, original.flops_per_proc);
  EXPECT_LT(static_cast<double>(m) * l + static_cast<double>(target_nnz),
            original.flops_per_proc)
      << "degenerate counts: the pre-fix comparison would not have flipped";
}

}  // namespace
}  // namespace extdict::core
