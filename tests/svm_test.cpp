#include "solvers/svm.hpp"

#include <gtest/gtest.h>

#include "core/exd.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::solvers {
namespace {

using core::DenseGramOperator;
using core::TransformedGramOperator;
using la::Index;
using la::Matrix;

// Two Gaussian blobs around +/- mu, columns normalised like every library
// dataset; labels +/- 1.
struct TwoBlobs {
  Matrix a;
  la::Vector labels;
};

TwoBlobs make_blobs(Index m = 20, Index per_class = 40, Real separation = 2.0,
                    std::uint64_t seed = 301) {
  la::Rng rng(seed);
  TwoBlobs data;
  data.a = Matrix(m, 2 * per_class);
  data.labels.resize(static_cast<std::size_t>(2 * per_class));
  la::Vector center(static_cast<std::size_t>(m));
  rng.fill_gaussian(center);
  const Real norm = la::nrm2(center);
  la::scal(separation / norm, center);
  for (Index j = 0; j < 2 * per_class; ++j) {
    const Real sign = j < per_class ? 1.0 : -1.0;
    auto col = data.a.col(j);
    for (Index i = 0; i < m; ++i) {
      col[static_cast<std::size_t>(i)] =
          sign * center[static_cast<std::size_t>(i)] + rng.gaussian(0, 0.4);
    }
    data.labels[static_cast<std::size_t>(j)] = sign;
  }
  data.a.normalize_columns();
  return data;
}

TEST(LsSvm, SeparatesTwoBlobs) {
  const TwoBlobs data = make_blobs();
  DenseGramOperator op(data.a);
  const LsSvm svm(op, data.labels, {});
  EXPECT_GE(training_accuracy(svm, data.labels), 0.97);
  EXPECT_GT(svm.cg_iterations(), 0);
}

TEST(LsSvm, ClassifiesHeldOutSignals) {
  const TwoBlobs data = make_blobs(20, 50, 2.0, 302);
  DenseGramOperator op(data.a);
  const LsSvm svm(op, data.labels, {});

  // Fresh samples from the same blobs.
  la::Rng rng(303);
  const TwoBlobs fresh = make_blobs(20, 10, 2.0, 302);  // same seed = same centre
  int correct = 0;
  for (Index j = 0; j < fresh.a.cols(); ++j) {
    if (svm.classify(fresh.a.col(j)) ==
        (fresh.labels[static_cast<std::size_t>(j)] > 0 ? 1 : -1)) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 18);  // >= 90% of 20
  (void)rng;
}

TEST(LsSvm, DecisionIsAffineInAlphaAndBias) {
  // training_decisions == K alpha + b elementwise.
  const TwoBlobs data = make_blobs(15, 20, 2.0, 304);
  DenseGramOperator op(data.a);
  const LsSvm svm(op, data.labels, {});
  const la::Vector f = svm.training_decisions();
  la::Vector ka(static_cast<std::size_t>(data.a.cols()));
  op.apply(svm.dual_coefficients(), ka);
  for (std::size_t i = 0; i < f.size(); ++i) {
    EXPECT_NEAR(f[i], ka[i] + svm.bias(), 1e-9);
  }
}

TEST(LsSvm, TransformedOperatorGivesSameClassifier) {
  const TwoBlobs data = make_blobs(25, 40, 2.0, 305);
  core::ExdConfig exd;
  exd.dictionary_size = 25;
  exd.tolerance = 1e-8;
  const auto t = core::exd_transform(data.a, exd);
  DenseGramOperator dense(data.a);
  TransformedGramOperator transformed(t.dictionary, t.coefficients);
  const LsSvm svm_dense(dense, data.labels, {});
  const LsSvm svm_trans(transformed, data.labels, {});
  // Same labels on every training column.
  const la::Vector fd = svm_dense.training_decisions();
  const la::Vector ft = svm_trans.training_decisions();
  for (std::size_t i = 0; i < fd.size(); ++i) {
    EXPECT_EQ(fd[i] >= 0, ft[i] >= 0) << "column " << i;
  }
}

TEST(LsSvm, Validation) {
  const TwoBlobs data = make_blobs(10, 10, 2.0, 306);
  DenseGramOperator op(data.a);
  la::Vector short_labels(5);
  EXPECT_THROW(LsSvm(op, short_labels, {}), std::invalid_argument);
  SvmConfig bad;
  bad.gamma = 0;
  EXPECT_THROW(LsSvm(op, data.labels, bad), std::invalid_argument);
  const LsSvm svm(op, data.labels, {});
  la::Vector wrong_dim(11);
  EXPECT_THROW((void)svm.decision(wrong_dim), std::invalid_argument);
}

TEST(LsSvm, SofterMarginShrinksDualCoefficients) {
  const TwoBlobs data = make_blobs(20, 30, 1.0, 307);
  DenseGramOperator op(data.a);
  SvmConfig hard, soft;
  hard.gamma = 100;
  soft.gamma = 0.1;
  const LsSvm svm_hard(op, data.labels, hard);
  const LsSvm svm_soft(op, data.labels, soft);
  EXPECT_LT(la::nrm2(svm_soft.dual_coefficients()),
            la::nrm2(svm_hard.dual_coefficients()));
}

}  // namespace
}  // namespace extdict::solvers
