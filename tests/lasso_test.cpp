#include "solvers/lasso.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exd.hpp"
#include "data/subspace.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "solvers/adagrad.hpp"

namespace extdict::solvers {
namespace {

using core::DenseGramOperator;
using core::TransformedGramOperator;

TEST(SoftThreshold, PiecewiseDefinition) {
  EXPECT_EQ(soft_threshold(3.0, 1.0), 2.0);
  EXPECT_EQ(soft_threshold(-3.0, 1.0), -2.0);
  EXPECT_EQ(soft_threshold(0.5, 1.0), 0.0);
  EXPECT_EQ(soft_threshold(-0.5, 1.0), 0.0);
}

TEST(Adagrad, RatesShrinkWithAccumulatedGradient) {
  Adagrad ada(2, 0.5);
  la::Vector g = {10.0, 0.1};
  ada.accumulate(g);
  EXPECT_LT(ada.rate(0), ada.rate(1));
  const Real r0 = ada.rate(0);
  ada.accumulate(g);
  EXPECT_LT(ada.rate(0), r0);
  ada.reset();
  EXPECT_GT(ada.rate(0), r0);
}

TEST(Adagrad, StepMovesAgainstGradient) {
  Adagrad ada(2, 0.1);
  la::Vector g = {1.0, -1.0};
  la::Vector x = {0.0, 0.0};
  ada.step(g, x);
  EXPECT_LT(x[0], 0.0);
  EXPECT_GT(x[1], 0.0);
}

TEST(Adagrad, Validation) {
  EXPECT_THROW(Adagrad(0, 0.1), std::invalid_argument);
  EXPECT_THROW(Adagrad(2, 0.0), std::invalid_argument);
  Adagrad ada(2, 0.1);
  la::Vector bad = {1.0};
  EXPECT_THROW(ada.accumulate(bad), std::invalid_argument);
}

struct LassoProblem {
  la::Matrix a;
  la::Vector y;       // observation = A x_true + noise
  la::Vector x_true;  // sparse ground truth
};

LassoProblem make_problem(la::Index m = 40, la::Index n = 120,
                          la::Index sparsity = 4, std::uint64_t seed = 131) {
  la::Rng rng(seed);
  LassoProblem p;
  p.a = rng.gaussian_matrix(m, n, true);
  p.x_true.assign(static_cast<std::size_t>(n), 0.0);
  for (const la::Index j : rng.sample_without_replacement(n, sparsity)) {
    p.x_true[static_cast<std::size_t>(j)] = rng.gaussian(0, 1) + 2;
  }
  p.y.assign(static_cast<std::size_t>(m), 0.0);
  la::gemv(1, p.a, p.x_true, 0, p.y);
  for (auto& v : p.y) v += rng.gaussian(0, 0.01);
  return p;
}

TEST(Lasso, ObjectiveDecreasesMonotonically) {
  const LassoProblem p = make_problem();
  DenseGramOperator op(p.a);
  LassoConfig config;
  config.lambda = 0.01;
  config.max_iterations = 150;
  config.objective_every = 5;
  const LassoResult r = lasso_solve(op, p.y, config);
  ASSERT_GE(r.objective_trace.size(), 3u);
  for (std::size_t i = 1; i < r.objective_trace.size(); ++i) {
    EXPECT_LE(r.objective_trace[i].second,
              r.objective_trace[i - 1].second * 1.001);
  }
}

TEST(Lasso, RecoversSparseSupport) {
  const LassoProblem p = make_problem();
  DenseGramOperator op(p.a);
  LassoConfig config;
  config.lambda = 0.05;
  config.max_iterations = 2000;
  config.tolerance = 1e-9;
  // Fixed-step ISTA converges linearly; the Adagrad variant's 1/sqrt(t)
  // rates are covered by the monotonicity test above.
  config.use_adagrad = false;
  const LassoResult r = lasso_solve(op, p.y, config);
  EXPECT_TRUE(r.converged);
  // Every large true coefficient is recovered with the right sign.
  for (std::size_t i = 0; i < p.x_true.size(); ++i) {
    if (std::abs(p.x_true[i]) > 1.0) {
      EXPECT_GT(r.x[i] * p.x_true[i], 0.0) << "coef " << i;
      EXPECT_NEAR(r.x[i], p.x_true[i], 0.35);
    }
  }
}

TEST(Lasso, LargerLambdaGivesSparserSolution) {
  const LassoProblem p = make_problem(40, 120, 6, 132);
  DenseGramOperator op(p.a);
  LassoConfig weak, strong;
  weak.lambda = 1e-4;
  strong.lambda = 0.05;
  weak.max_iterations = strong.max_iterations = 400;
  const LassoResult rw = lasso_solve(op, p.y, weak);
  const LassoResult rs = lasso_solve(op, p.y, strong);
  auto nnz = [](const la::Vector& x) {
    int k = 0;
    for (Real v : x) k += (v != 0.0);
    return k;
  };
  EXPECT_LE(nnz(rs.x), nnz(rw.x));
}

TEST(Lasso, TransformedOperatorSolvesSameProblem) {
  // LASSO through (DC)ᵀDC with a tight transform error lands on nearly the
  // same solution as through AᵀA — this is the correctness contract behind
  // the paper's runtime wins.
  data::SubspaceModelConfig dc;
  dc.ambient_dim = 40;
  dc.num_columns = 150;
  dc.num_subspaces = 5;
  dc.subspace_dim = 4;
  dc.seed = 133;
  const la::Matrix a = data::make_union_of_subspaces(dc).a;
  la::Rng rng(5);
  la::Vector x_true(150, 0.0);
  for (const la::Index j : rng.sample_without_replacement(150, 5)) {
    x_true[static_cast<std::size_t>(j)] = 2.0;
  }
  la::Vector y(40, 0.0);
  la::gemv(1, a, x_true, 0, y);

  core::ExdConfig exd_config;
  exd_config.dictionary_size = 100;
  exd_config.tolerance = 1e-5;
  const core::ExdResult exd = core::exd_transform(a, exd_config);

  DenseGramOperator dense(a);
  TransformedGramOperator transformed(exd.dictionary, exd.coefficients);
  LassoConfig config;
  config.lambda = 0.003;
  config.max_iterations = 600;
  config.tolerance = 1e-8;
  const LassoResult rd = lasso_solve(dense, y, config);
  const LassoResult rt = lasso_solve(transformed, y, config);
  Real diff = 0;
  for (std::size_t i = 0; i < rd.x.size(); ++i) diff += std::abs(rd.x[i] - rt.x[i]);
  EXPECT_LT(diff / 150, 0.02);
}

TEST(Lasso, SizeMismatchThrows) {
  const LassoProblem p = make_problem(20, 50, 3, 134);
  DenseGramOperator op(p.a);
  la::Vector bad(21);
  EXPECT_THROW(lasso_solve(op, bad, {}), std::invalid_argument);
}

class DistLassoTest : public ::testing::TestWithParam<dist::Topology> {};

TEST_P(DistLassoTest, MatchesSerialSolver) {
  data::SubspaceModelConfig dc;
  dc.ambient_dim = 30;
  dc.num_columns = 100;
  dc.num_subspaces = 4;
  dc.subspace_dim = 3;
  dc.seed = 135;
  const la::Matrix a = data::make_union_of_subspaces(dc).a;
  la::Rng rng(6);
  la::Vector y(30);
  rng.fill_gaussian(y);

  core::ExdConfig exd_config;
  exd_config.dictionary_size = 25;  // Case 1 layout
  exd_config.tolerance = 0.05;
  const core::ExdResult exd = core::exd_transform(a, exd_config);

  LassoConfig config;
  config.lambda = 0.01;
  config.max_iterations = 60;
  config.tolerance = 1e-9;
  config.objective_every = 0;

  TransformedGramOperator op(exd.dictionary, exd.coefficients);
  const LassoResult serial = lasso_solve(op, y, config);
  const dist::Cluster cluster(GetParam());
  const DistLassoResult distributed =
      lasso_solve_distributed(cluster, exd.dictionary, exd.coefficients, y, config);

  EXPECT_EQ(distributed.iterations, serial.iterations);
  for (std::size_t i = 0; i < serial.x.size(); ++i) {
    EXPECT_NEAR(distributed.x[i], serial.x[i], 1e-7) << GetParam().name();
  }
  EXPECT_NEAR(distributed.final_objective, serial.final_objective, 1e-7);
  EXPECT_GT(distributed.stats.total_flops(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Topologies, DistLassoTest,
                         ::testing::Values(dist::Topology{1, 1},
                                           dist::Topology{1, 4},
                                           dist::Topology{2, 3}));

}  // namespace
}  // namespace extdict::solvers
