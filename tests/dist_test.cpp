#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <thread>

#include "dist/cluster.hpp"
#include "dist/communicator.hpp"
#include "dist/mailbox.hpp"
#include "dist/topology.hpp"

namespace extdict::dist {
namespace {

using la::Real;

TEST(Topology, LayoutAndNames) {
  Topology t{.nodes = 2, .cores_per_node = 8};
  EXPECT_EQ(t.total(), 16);
  EXPECT_EQ(t.name(), "2x8");
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(7), 0);
  EXPECT_EQ(t.node_of(8), 1);
  EXPECT_TRUE(t.same_node(0, 7));
  EXPECT_FALSE(t.same_node(7, 8));
}

TEST(Topology, PaperPlatformsShape) {
  ASSERT_EQ(std::size(kPaperPlatforms), 4u);
  EXPECT_EQ(kPaperPlatforms[0].total(), 1);
  EXPECT_EQ(kPaperPlatforms[1].total(), 4);
  EXPECT_EQ(kPaperPlatforms[2].total(), 16);
  EXPECT_EQ(kPaperPlatforms[3].total(), 64);
}

TEST(Mailbox, FifoPerSenderAndTagMatching) {
  Mailbox box;
  box.push({0, 1, {std::byte{1}}});
  box.push({0, 2, {std::byte{2}}});
  box.push({0, 1, {std::byte{3}}});
  // Tag 2 first even though it arrived second.
  EXPECT_EQ(box.pop(0, 2)[0], std::byte{2});
  // Tag 1 messages keep FIFO order.
  EXPECT_EQ(box.pop(0, 1)[0], std::byte{1});
  EXPECT_EQ(box.pop(0, 1)[0], std::byte{3});
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, PoisonUnblocksPop) {
  Mailbox box;
  std::atomic<bool> threw{false};
  std::thread waiter([&] {
    try {
      (void)box.pop(0, 0);
    } catch (const ClusterAborted&) {
      threw = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.poison();
  waiter.join();
  EXPECT_TRUE(threw);
}

TEST(Cluster, RunsEveryRankOnce) {
  Cluster cluster(Topology{1, 4});
  std::array<std::atomic<int>, 4> hits{};
  cluster.run([&](Communicator& comm) {
    hits[static_cast<std::size_t>(comm.rank())]++;
    EXPECT_EQ(comm.size(), 4);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Cluster, PointToPointRoundTrip) {
  Cluster cluster(Topology{1, 2});
  cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      const std::vector<Real> payload = {1.5, 2.5, 3.5};
      comm.send(1, 7, std::span<const Real>(payload));
      const auto echoed = comm.recv_vector<Real>(1, 8);
      ASSERT_EQ(echoed.size(), 3u);
      EXPECT_EQ(echoed[2], 7.0);
    } else {
      auto got = comm.recv_vector<Real>(0, 7);
      for (Real& v : got) v *= 2;
      comm.send(0, 8, std::span<const Real>(got));
    }
  });
}

TEST(Cluster, UserTagsMustBeNonNegative) {
  Cluster cluster(Topology{1, 1});
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    const Real v = 1;
    comm.send(0, -1, std::span<const Real>(&v, 1));
  }),
               std::invalid_argument);
}

TEST(Cluster, UserTagsMustStayBelowReservedRange) {
  // Tags >= 1<<20 belong to the internal collective protocol; a user
  // message wearing one would be indistinguishable from collective traffic.
  Cluster cluster(Topology{1, 1});
  for (const int tag :
       {Communicator::kUserTagLimit, Communicator::kUserTagLimit + 3}) {
    EXPECT_THROW(cluster.run([tag](Communicator& comm) {
      const Real v = 1;
      comm.send(0, tag, std::span<const Real>(&v, 1));
    }),
                 std::invalid_argument)
        << "send with tag " << tag;
    EXPECT_THROW(cluster.run([tag](Communicator& comm) {
      Real v = 0;
      comm.recv(0, tag, std::span<Real>(&v, 1));
    }),
                 std::invalid_argument)
        << "recv with tag " << tag;
    EXPECT_THROW(cluster.run([tag](Communicator& comm) {
      (void)comm.recv_vector<Real>(0, tag);
    }),
                 std::invalid_argument)
        << "recv_vector with tag " << tag;
  }
  // The largest legal tag still round-trips.
  cluster.run([](Communicator& comm) {
    const Real v = 7;
    comm.send(0, Communicator::kUserTagLimit - 1, std::span<const Real>(&v, 1));
    Real out = 0;
    comm.recv(0, Communicator::kUserTagLimit - 1, std::span<Real>(&out, 1));
    EXPECT_EQ(out, 7.0);
  });
}

TEST(Cluster, CollectivesRunDespiteUserTagValidation) {
  // The collectives deliberately carry reserved tags through the internal
  // transport; the user-tag check must not apply to them.
  Cluster cluster(Topology{1, 4});
  cluster.run([](Communicator& comm) {
    std::vector<Real> buf{static_cast<Real>(comm.rank() + 1)};
    comm.allreduce_sum(std::span<Real>(buf));
    EXPECT_EQ(buf[0], 10.0);
    const Real mx = comm.allreduce_max_scalar(static_cast<Real>(comm.rank()));
    EXPECT_EQ(mx, 3.0);
    const auto all = comm.allgather(std::span<const Real>(buf));
    EXPECT_EQ(all.size(), 4u);
  });
}

TEST(Cluster, BroadcastDeliversToAllRanks) {
  for (const Index p : {1, 2, 3, 5, 8}) {
    Cluster cluster(Topology{1, p});
    cluster.run([&](Communicator& comm) {
      std::vector<Real> buf(10, comm.rank() == 2 % p ? 42.0 : -1.0);
      comm.broadcast(2 % p, std::span<Real>(buf));
      for (Real v : buf) EXPECT_EQ(v, 42.0) << "p=" << p;
    });
  }
}

TEST(Cluster, ReduceSumsAllContributions) {
  for (const Index p : {1, 2, 4, 7}) {
    Cluster cluster(Topology{1, p});
    cluster.run([&](Communicator& comm) {
      std::vector<Real> buf = {static_cast<Real>(comm.rank() + 1), 1.0};
      comm.reduce_sum(0, buf);
      if (comm.rank() == 0) {
        const Real expected = static_cast<Real>(p * (p + 1)) / 2;
        EXPECT_NEAR(buf[0], expected, 1e-12) << "p=" << p;
        EXPECT_NEAR(buf[1], static_cast<Real>(p), 1e-12);
      }
    });
  }
}

TEST(Cluster, AllreduceGivesSameAnswerEverywhere) {
  Cluster cluster(Topology{2, 3});
  cluster.run([](Communicator& comm) {
    std::vector<Real> buf = {static_cast<Real>(comm.rank())};
    comm.allreduce_sum(std::span<Real>(buf));
    EXPECT_NEAR(buf[0], 15.0, 1e-12);  // 0+1+...+5
    EXPECT_NEAR(comm.allreduce_sum_scalar(1.0), 6.0, 1e-12);
    EXPECT_NEAR(comm.allreduce_max_scalar(static_cast<Real>(comm.rank())), 5.0, 1e-12);
  });
}

TEST(Cluster, GatherConcatenatesInRankOrder) {
  Cluster cluster(Topology{1, 4});
  cluster.run([](Communicator& comm) {
    // Rank r contributes r+1 copies of the value r.
    std::vector<Real> local(static_cast<std::size_t>(comm.rank() + 1),
                            static_cast<Real>(comm.rank()));
    std::vector<la::Index> counts;
    auto all = comm.gather(0, std::span<const Real>(local), &counts);
    if (comm.rank() == 0) {
      ASSERT_EQ(counts.size(), 4u);
      EXPECT_EQ(all.size(), 10u);
      EXPECT_EQ(all[0], 0.0);
      EXPECT_EQ(all[1], 1.0);
      EXPECT_EQ(all[9], 3.0);
      for (la::Index r = 0; r < 4; ++r) EXPECT_EQ(counts[static_cast<std::size_t>(r)], r + 1);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(Cluster, ScatterDeliversChunks) {
  Cluster cluster(Topology{1, 3});
  cluster.run([](Communicator& comm) {
    std::vector<std::vector<Real>> chunks;
    if (comm.rank() == 0) {
      chunks = {{0.0}, {1.0, 1.0}, {2.0, 2.0, 2.0}};
    }
    auto mine = comm.scatter(0, chunks);
    EXPECT_EQ(mine.size(), static_cast<std::size_t>(comm.rank() + 1));
    for (Real v : mine) EXPECT_EQ(v, static_cast<Real>(comm.rank()));
  });
}

TEST(Cluster, AllgatherGivesEveryoneEverything) {
  Cluster cluster(Topology{1, 4});
  cluster.run([](Communicator& comm) {
    const Real mine = static_cast<Real>(comm.rank() * 10);
    auto all = comm.allgather(std::span<const Real>(&mine, 1));
    ASSERT_EQ(all.size(), 4u);
    for (la::Index r = 0; r < 4; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)], static_cast<Real>(r * 10));
    }
  });
}

TEST(Cluster, BarrierSynchronises) {
  // Every rank increments a counter before the barrier; after the barrier
  // all ranks must observe the full count.
  Cluster cluster(Topology{1, 6});
  std::atomic<int> counter{0};
  cluster.run([&](Communicator& comm) {
    counter.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(counter.load(), 6);
  });
}

TEST(Cluster, ExceptionOnOneRankAbortsAll) {
  Cluster cluster(Topology{1, 3});
  EXPECT_THROW(cluster.run([](Communicator& comm) {
    if (comm.rank() == 1) throw std::runtime_error("boom");
    // Other ranks block forever waiting for a message that never comes;
    // the abort must unblock them.
    (void)comm.recv_vector<Real>(comm.rank() == 0 ? 1 : 0, 5);
  }),
               std::runtime_error);
}

TEST(Cluster, CostCountersMeterWordsAndLocality) {
  // 2 nodes x 2 cores: rank 0 -> rank 1 is intra-node, rank 0 -> rank 2 is
  // inter-node. 16 Reals = 16 words each way.
  Cluster cluster(Topology{2, 2});
  RunStats stats = cluster.run([](Communicator& comm) {
    std::vector<Real> buf(16, 1.0);
    if (comm.rank() == 0) {
      comm.send(1, 1, std::span<const Real>(buf));
      comm.send(2, 1, std::span<const Real>(buf));
    } else if (comm.rank() <= 2) {
      (void)comm.recv_vector<Real>(0, 1);
    }
  });
  const auto& c0 = stats.per_rank[0];
  EXPECT_EQ(c0.words_sent_intra, 16u);
  EXPECT_EQ(c0.words_sent_inter, 16u);
  EXPECT_EQ(c0.messages_sent, 2u);
  EXPECT_EQ(stats.per_rank[1].words_recv_intra, 16u);
  EXPECT_EQ(stats.per_rank[2].words_recv_inter, 16u);
  EXPECT_EQ(stats.total_words(), 32u);
}

TEST(Cluster, FlopAndMemoryAccounting) {
  Cluster cluster(Topology{1, 2});
  RunStats stats = cluster.run([](Communicator& comm) {
    comm.cost().add_flops(100 * static_cast<std::uint64_t>(comm.rank() + 1));
    comm.cost().record_memory(50);
    comm.cost().record_memory(20);  // high-water mark stays 50
  });
  EXPECT_EQ(stats.per_rank[0].flops, 100u);
  EXPECT_EQ(stats.per_rank[1].flops, 200u);
  EXPECT_EQ(stats.total_flops(), 300u);
  EXPECT_EQ(stats.max_rank_flops(), 200u);
  EXPECT_EQ(stats.max_peak_memory_words(), 50u);
}

TEST(Cluster, BroadcastWordCountScalesWithTree) {
  // A binomial broadcast of W words to P ranks moves exactly (P-1)*W words.
  for (const Index p : {2, 4, 8}) {
    Cluster cluster(Topology{1, p});
    RunStats stats = cluster.run([](Communicator& comm) {
      std::vector<Real> buf(32, 0.0);
      comm.broadcast(0, std::span<Real>(buf));
    });
    EXPECT_EQ(stats.total_words(), static_cast<std::uint64_t>((p - 1) * 32));
  }
}

TEST(RunStats, AccumulateAcrossRuns) {
  RunStats a, b;
  a.per_rank.resize(2);
  b.per_rank.resize(2);
  a.per_rank[0].flops = 10;
  b.per_rank[0].flops = 5;
  a.wall_seconds = 1.0;
  b.wall_seconds = 0.5;
  a += b;
  EXPECT_EQ(a.per_rank[0].flops, 15u);
  EXPECT_DOUBLE_EQ(a.wall_seconds, 1.5);
  RunStats c;
  c.per_rank.resize(3);
  EXPECT_THROW(a += c, std::invalid_argument);
}

}  // namespace
}  // namespace extdict::dist
