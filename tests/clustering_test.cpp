#include "core/subspace_clustering.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/exd.hpp"
#include "data/subspace.hpp"

namespace extdict::core {
namespace {

data::SubspaceData disjoint_subspaces(Index ns = 4, std::uint64_t seed = 401) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 60;
  config.num_columns = 240;
  config.num_subspaces = ns;
  config.subspace_dim = 4;
  config.noise_stddev = 0;  // clean separation
  config.seed = seed;
  return data::make_union_of_subspaces(config);
}

TEST(RandIndex, AgreementMetricBasics) {
  const std::vector<Index> a = {0, 0, 1, 1};
  EXPECT_EQ(rand_index(a, a), 1.0);
  const std::vector<Index> relabeled = {7, 7, 3, 3};
  EXPECT_EQ(rand_index(a, relabeled), 1.0);  // only the partition matters
  const std::vector<Index> split = {0, 1, 2, 3};
  // Pairs: a has 2 same-pairs of 6; split has none -> 4/6 agreement.
  EXPECT_NEAR(rand_index(a, split), 4.0 / 6.0, 1e-12);
  const std::vector<Index> wrong_size = {0};
  EXPECT_THROW(rand_index(a, wrong_size), std::invalid_argument);
}

TEST(Clustering, RecoversDisjointSubspaces) {
  const auto data = disjoint_subspaces();
  ExdConfig config;
  config.dictionary_size = 120;  // ample sampling of all 4 subspaces
  config.tolerance = 1e-6;
  config.seed = 5;
  const ExdResult exd = exd_transform(data.a, config);
  const ClusteringResult r = cluster_by_codes(exd);
  // Atom columns that code as pure self-loops and are used by nobody else
  // stay singletons, so a handful of extra clusters beyond the 4 true ones
  // is expected; pairwise agreement must still be near-perfect and the 4
  // dominant clusters must cover almost all columns.
  EXPECT_GE(r.num_clusters, 4);
  EXPECT_GE(rand_index(r.labels, data.membership), 0.97);
  std::vector<Index> sizes(static_cast<std::size_t>(r.num_clusters), 0);
  for (const Index label : r.labels) ++sizes[static_cast<std::size_t>(label)];
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  Index covered = 0;
  for (Index i = 0; i < std::min<Index>(4, r.num_clusters); ++i) {
    covered += sizes[static_cast<std::size_t>(i)];
  }
  EXPECT_GE(covered, 240 * 9 / 10);
}

TEST(Clustering, LabelsAreCompactAndComplete) {
  const auto data = disjoint_subspaces(3, 402);
  ExdConfig config;
  config.dictionary_size = 90;
  config.tolerance = 1e-6;
  const ExdResult exd = exd_transform(data.a, config);
  const ClusteringResult r = cluster_by_codes(exd);
  ASSERT_EQ(r.labels.size(), 240u);
  std::set<Index> used(r.labels.begin(), r.labels.end());
  EXPECT_EQ(static_cast<Index>(used.size()), r.num_clusters);
  EXPECT_EQ(*used.begin(), 0);
  EXPECT_EQ(*used.rbegin(), r.num_clusters - 1);
}

TEST(Clustering, ThresholdPrunesNoiseLeakage) {
  // With noise, tiny cross-subspace coefficients appear; a permissive
  // threshold merges everything, the default keeps subspaces apart.
  data::SubspaceModelConfig config;
  config.ambient_dim = 60;
  config.num_columns = 240;
  config.num_subspaces = 4;
  config.subspace_dim = 4;
  // Noise floor (stddev * sqrt(M) ~ 0.015) safely below the coding
  // tolerance, so leakage stays incidental rather than structural.
  config.noise_stddev = 0.002;
  config.seed = 403;
  const auto data = data::make_union_of_subspaces(config);

  ExdConfig exd_config;
  exd_config.dictionary_size = 120;
  exd_config.tolerance = 0.05;
  const ExdResult exd = exd_transform(data.a, exd_config);

  ClusteringConfig strict;
  strict.relative_weight_threshold = 0.1;
  const ClusteringResult rs = cluster_by_codes(exd, strict);
  ClusteringConfig permissive;
  permissive.relative_weight_threshold = 0.0;
  const ClusteringResult rp = cluster_by_codes(exd, permissive);
  EXPECT_GE(rs.num_clusters, rp.num_clusters);
  EXPECT_GE(rand_index(rs.labels, data.membership), 0.9);
}

TEST(Clustering, RequiresAtomProvenance) {
  const auto data = disjoint_subspaces(2, 404);
  ExdConfig config;
  config.dictionary_size = 60;
  config.tolerance = 1e-6;
  ExdResult exd = exd_transform(data.a, config);
  exd.atom_indices.clear();  // e.g. a transform built from a foreign dictionary
  EXPECT_THROW(cluster_by_codes(exd), std::invalid_argument);
}

}  // namespace
}  // namespace extdict::core
