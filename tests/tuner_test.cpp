#include "core/tuner.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "data/subspace.hpp"

namespace extdict::core {
namespace {

Matrix test_data(Index n = 400, std::uint64_t seed = 61) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 40;
  config.num_columns = n;
  config.num_subspaces = 6;
  config.subspace_dim = 4;
  config.seed = seed;
  return data::make_union_of_subspaces(config).a;
}

TunerConfig base_config() {
  TunerConfig config;
  config.profile.l_grid = {60, 120, 200};
  config.profile.tolerance = 0.1;
  config.profile.seed = 3;
  return config;
}

TEST(Tuner, PicksArgminOfReportedCosts) {
  const Matrix a = test_data();
  const auto platform = dist::PlatformSpec::idataplex({2, 8});
  const TunerResult r = tune(a, platform, base_config());
  ASSERT_FALSE(r.costs.empty());
  double best = r.costs.front().second;
  Index best_l = r.costs.front().first;
  for (const auto& [l, cost] : r.costs) {
    if (cost < best) {
      best = cost;
      best_l = l;
    }
  }
  EXPECT_EQ(r.best_l, best_l);
  EXPECT_DOUBLE_EQ(r.best_cost, best);
}

TEST(Tuner, CostsMatchTheModelFormula) {
  const Matrix a = test_data();
  const auto platform = dist::PlatformSpec::idataplex({1, 4});
  TunerConfig config = base_config();
  const TunerResult r = tune(a, platform, config);
  for (const auto& [l, cost] : r.costs) {
    const auto& point = r.profile.at(l);
    EXPECT_DOUBLE_EQ(cost, objective_value(Objective::kTime, a.rows(), l,
                                           point.alpha_mean, a.cols(), platform));
  }
}

TEST(Tuner, InfeasibleGridThrows) {
  const Matrix a = test_data();
  TunerConfig config = base_config();
  config.profile.l_grid = {4, 8};  // far below L_min for tolerance 0.05
  config.profile.tolerance = 0.05;
  EXPECT_THROW(tune(a, dist::PlatformSpec::idataplex({1, 1}), config),
               std::runtime_error);
}

TEST(Tuner, MemoryObjectivePrefersSparserConfiguration) {
  const Matrix a = test_data();
  TunerConfig config = base_config();
  config.objective = Objective::kMemory;
  const TunerResult r = tune(a, dist::PlatformSpec::idataplex({8, 8}), config);
  // Whatever it picked must be the argmin of the memory model.
  for (const auto& [l, cost] : r.costs) {
    EXPECT_LE(r.best_cost, cost) << "L=" << l;
  }
}

TEST(Tuner, PlatformAwareness) {
  // This is ExtDict's thesis: different platforms can tune to different L
  // for the same data and error. We verify the *model* ranks L differently
  // when the word cost changes drastically, using the measured profile.
  const Matrix a = test_data();
  TunerConfig config = base_config();
  const TunerResult r = tune(a, dist::PlatformSpec::idataplex({1, 1}), config);

  auto platform_cheap_comm = dist::PlatformSpec::idataplex({8, 8});
  auto platform_dear_comm = platform_cheap_comm;
  platform_dear_comm.inter_words_per_second /= 1e4;  // words nearly free vs ruinous

  Index best_cheap = -1, best_dear = -1;
  double cost_cheap = 0, cost_dear = 0;
  for (const auto& point : r.profile.points) {
    if (!point.feasible) continue;
    const double c1 = objective_value(Objective::kTime, a.rows(), point.l,
                                      point.alpha_mean, a.cols(), platform_cheap_comm);
    const double c2 = objective_value(Objective::kTime, a.rows(), point.l,
                                      point.alpha_mean, a.cols(), platform_dear_comm);
    if (best_cheap < 0 || c1 < cost_cheap) {
      cost_cheap = c1;
      best_cheap = point.l;
    }
    if (best_dear < 0 || c2 < cost_dear) {
      cost_dear = c2;
      best_dear = point.l;
    }
  }
  // With ruinous communication the tuner must not prefer a larger
  // dictionary than with cheap communication (comm scales with min(M,L)).
  EXPECT_LE(best_dear, best_cheap);
}

TEST(Tuner, CrossoverAgainstOriginalMatchesClosedForm) {
  // For L > M both updates move min(M,L) = M words, so the comm terms
  // cancel and the transform-vs-original crossover is pure work:
  //   2·(M·L + α·N)/P = 2·M·N/P  =>  L* = N·(1 − α/M),
  // independent of the platform. With M=20, N=100, α=5: L* = 75.
  constexpr Index m = 20, n = 100;
  constexpr Real alpha = 5;
  const auto platform = dist::PlatformSpec::idataplex({2, 4});
  const Index p = platform.topology.total();
  const double original = original_update_cost(m, n, p, platform).time_cost;

  for (const Index l : {60l, 70l}) {
    EXPECT_LT(predicted_update_cost(m, l, alpha, n, p, platform).time_cost,
              original)
        << "L=" << l << " is below the crossover";
  }
  for (const Index l : {80l, 90l}) {
    EXPECT_GT(predicted_update_cost(m, l, alpha, n, p, platform).time_cost,
              original)
        << "L=" << l << " is above the crossover";
  }
  EXPECT_NEAR(predicted_update_cost(m, 75, alpha, n, p, platform).time_cost,
              original, 1e-9 * original);

  // The 2× undercount moved this crossover to L = N·(2 − α/M) = 175: the
  // half-work model still endorsed the transform at L = 90 (and up to 174).
  const double buggy_work_at_90 =
      (static_cast<double>(m) * 90 + static_cast<double>(alpha) * n) /
      static_cast<double>(p);
  EXPECT_LT(buggy_work_at_90 + m * platform.r_time_bf(), original)
      << "degenerate counts: the pre-fix model would not have mis-ranked here";
}

TEST(Tuner, SubsetTuningAgreesWithFullTuning) {
  const Matrix a = test_data(600, 62);
  const auto platform = dist::PlatformSpec::idataplex({2, 8});
  TunerConfig full = base_config();
  TunerConfig subset = base_config();
  subset.subset_sizes = {200, 400, 600};
  subset.convergence_threshold = 0.15;
  const TunerResult rf = tune(a, platform, full);
  const TunerResult rs = tune(a, platform, subset);
  // The subset-based tuner may land on a neighbouring grid point, but its
  // choice must be within 2x of the full-data optimum under the model.
  const auto& point = rf.profile.at(rs.best_l);
  const double cost_of_subset_choice = objective_value(
      Objective::kTime, a.rows(), rs.best_l, point.alpha_mean, a.cols(), platform);
  EXPECT_LE(cost_of_subset_choice, 2.0 * rf.best_cost);
}

}  // namespace
}  // namespace extdict::core
