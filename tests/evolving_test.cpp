#include "core/evolving.hpp"

#include <gtest/gtest.h>

#include "core/exd.hpp"
#include "data/subspace.hpp"
#include "la/blas.hpp"

namespace extdict::core {
namespace {

data::SubspaceData make_base(std::uint64_t seed = 91) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 40;
  config.num_columns = 200;
  config.num_subspaces = 4;
  config.subspace_dim = 4;
  config.seed = seed;
  return data::make_union_of_subspaces(config);
}

// New columns drawn from the SAME subspaces (expressible by the old D).
Matrix same_structure_columns(const data::SubspaceData& base, Index count,
                              std::uint64_t seed) {
  la::Rng rng(seed);
  Matrix out(base.a.rows(), count);
  la::Vector coeff(static_cast<std::size_t>(base.bases[0].cols()));
  for (Index j = 0; j < count; ++j) {
    const auto& basis = base.bases[static_cast<std::size_t>(
        rng.uniform_index(0, static_cast<Index>(base.bases.size()) - 1))];
    rng.fill_gaussian(coeff);
    auto col = out.col(j);
    std::fill(col.begin(), col.end(), Real{0});
    la::gemv(1, basis, coeff, 0, col);
  }
  out.normalize_columns();
  return out;
}

// Columns from entirely fresh subspaces (NOT expressible by the old D).
Matrix new_structure_columns(Index rows, Index count, std::uint64_t seed) {
  data::SubspaceModelConfig config;
  config.ambient_dim = rows;
  config.num_columns = count;
  config.num_subspaces = 2;
  config.subspace_dim = 4;
  config.seed = seed + 1000;
  return data::make_union_of_subspaces(config).a;
}

ExdResult base_transform(const Matrix& a) {
  ExdConfig config;
  config.dictionary_size = 80;
  config.tolerance = 0.05;
  config.seed = 2;
  return exd_transform(a, config);
}

TEST(Evolve, SameStructureColumnsReuseDictionary) {
  const auto base = make_base();
  ExdResult exd = base_transform(base.a);
  const Index old_l = exd.dictionary.cols();

  const Matrix a_new = same_structure_columns(base, 40, 5);
  ExdConfig config;
  config.tolerance = 0.05;
  config.dictionary_size = 10;
  const EvolveReport report = evolve(exd, a_new, config);

  EXPECT_EQ(report.new_columns, 40);
  EXPECT_FALSE(report.dictionary_extended);
  EXPECT_EQ(report.failed_columns, 0);
  // Nothing failed → nothing was re-encoded, and every column expressed.
  EXPECT_EQ(report.expressed_columns, 40);
  EXPECT_EQ(report.reencoded_columns, 0);
  EXPECT_EQ(report.unresolved_columns, 0);
  EXPECT_LE(report.max_post_extension_residual, 0.05 * 1.001);
  EXPECT_EQ(exd.dictionary.cols(), old_l);
  EXPECT_EQ(exd.coefficients.cols(), 240);
}

TEST(Evolve, ReportCountsReencodedColumnsNotSuccesses) {
  // Regression: reencoded_columns used to carry the INVERTED count — the
  // pass-1 successes that were never touched by pass 2. It now counts
  // exactly the failing columns that pass 2 re-coded, expressed + failed
  // partitions the batch, and the post-extension sweep reports the
  // achieved quality instead of silently absorbing still-bad columns.
  const auto base = make_base(97);
  ExdResult exd = base_transform(base.a);
  const Matrix a_new = new_structure_columns(40, 50, 97);
  ExdConfig config;
  config.tolerance = 0.05;
  config.dictionary_size = 25;
  const EvolveReport report = evolve(exd, a_new, config);

  EXPECT_EQ(report.new_columns, 50);
  EXPECT_TRUE(report.dictionary_extended);
  EXPECT_GT(report.failed_columns, 0);
  EXPECT_EQ(report.expressed_columns + report.failed_columns,
            report.new_columns);
  EXPECT_EQ(report.reencoded_columns, report.failed_columns);
  EXPECT_LE(report.unresolved_columns, report.failed_columns);
  EXPECT_GT(report.max_post_extension_residual, 0.0);
  if (report.unresolved_columns == 0) {
    // Everything resolved → the worst relative residual meets ε.
    EXPECT_LE(report.max_post_extension_residual, 0.05 * 1.001);
  }
}

TEST(Evolve, UpdatedTransformStillMeetsErrorBound) {
  const auto base = make_base(92);
  ExdResult exd = base_transform(base.a);
  const Matrix a_new = same_structure_columns(base, 30, 6);
  Matrix full = base.a;
  full.append_columns(a_new);

  ExdConfig config;
  config.tolerance = 0.05;
  config.dictionary_size = 10;
  (void)evolve(exd, a_new, config);
  const Real err = transformation_error(full, exd.dictionary, exd.coefficients);
  EXPECT_LE(err, 0.05 * 1.05);
}

TEST(Evolve, NewStructureExtendsDictionaryWithZeroPadding) {
  const auto base = make_base(93);
  ExdResult exd = base_transform(base.a);
  const Index old_l = exd.dictionary.cols();
  const auto old_nnz = exd.coefficients.nnz();

  const Matrix a_new = new_structure_columns(40, 50, 93);
  ExdConfig config;
  config.tolerance = 0.05;
  config.dictionary_size = 25;
  const EvolveReport report = evolve(exd, a_new, config);

  EXPECT_TRUE(report.dictionary_extended);
  EXPECT_GT(report.failed_columns, 0);
  EXPECT_GT(report.new_atoms, 0);
  EXPECT_EQ(exd.dictionary.cols(), old_l + report.new_atoms);
  EXPECT_EQ(exd.coefficients.rows(), old_l + report.new_atoms);
  EXPECT_EQ(exd.coefficients.cols(), 250);

  // Fig. 3 zero-padding: old columns did not gain entries in the new rows.
  for (Index j = 0; j < 5; ++j) {
    for (const Index row : exd.coefficients.col_rows(j)) {
      EXPECT_LT(row, old_l);
    }
  }
  EXPECT_GE(exd.coefficients.nnz(), old_nnz);
}

TEST(Evolve, ExtendedTransformExpressesBothOldAndNewData) {
  const auto base = make_base(94);
  ExdResult exd = base_transform(base.a);
  const Matrix a_new = new_structure_columns(40, 40, 94);
  Matrix full = base.a;
  full.append_columns(a_new);

  ExdConfig config;
  config.tolerance = 0.05;
  config.dictionary_size = 30;
  (void)evolve(exd, a_new, config);
  const Real err = transformation_error(full, exd.dictionary, exd.coefficients);
  EXPECT_LE(err, 0.05 * 1.10);
}

TEST(Evolve, EmptyBatchIsANoop) {
  const auto base = make_base(95);
  ExdResult exd = base_transform(base.a);
  const Index old_cols = exd.coefficients.cols();
  Matrix empty(40, 0);
  const EvolveReport report = evolve(exd, empty, {});
  EXPECT_EQ(report.new_columns, 0);
  EXPECT_EQ(exd.coefficients.cols(), old_cols);
}

TEST(Evolve, RowMismatchThrows) {
  const auto base = make_base(96);
  ExdResult exd = base_transform(base.a);
  Matrix bad(41, 3);
  EXPECT_THROW(evolve(exd, bad, {}), std::invalid_argument);
}

}  // namespace
}  // namespace extdict::core
