// Negative tests for the runtime contracts layer (util/contracts.hpp):
// deliberately mismatched shapes, corrupt CSC structure, and NaN inputs must
// fail loudly at the call site. Shape contracts are always active; the
// deeper assertion/finiteness contracts only exist when the library is built
// with EXTDICT_CHECKS=ON, so those cases skip themselves in plain Release.

#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/gram_operator.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/csc_matrix.hpp"
#include "la/random.hpp"
#include "sparsecoding/batch_omp.hpp"
#include "sparsecoding/omp.hpp"

namespace extdict {
namespace {

using la::CscMatrix;
using la::Index;
using la::Matrix;
using la::Real;
using la::Vector;

constexpr Real kNaN = std::numeric_limits<Real>::quiet_NaN();

// ---------------------------------------------------------------------------
// Shape contracts: always on, ContractViolation is-a std::invalid_argument.
// ---------------------------------------------------------------------------

TEST(Contracts, GemmShapeMismatchThrows) {
  const Matrix a(3, 4);
  const Matrix b(5, 2);  // inner dimensions 4 vs 5 disagree
  EXPECT_THROW((void)la::matmul(a, b), std::invalid_argument);
  EXPECT_THROW((void)la::matmul(a, b), util::ContractViolation);
}

TEST(Contracts, GemmOutputShapeMismatchThrows) {
  const Matrix a(3, 4);
  const Matrix b(4, 2);
  Matrix c(3, 3);  // should be 3x2
  EXPECT_THROW(la::gemm(1, a, la::Trans::kNo, b, la::Trans::kNo, 0, c),
               util::ContractViolation);
}

TEST(Contracts, GemvShapeMismatchThrows) {
  const Matrix a(3, 4);
  Vector x(3), y(3);  // x must be sized cols()=4
  EXPECT_THROW(la::gemv(1, a, x, 0, y), util::ContractViolation);
  Vector xt(4), yt(4);  // gemv_t wants |x|=rows()=3
  EXPECT_THROW(la::gemv_t(1, a, xt, 0, yt), util::ContractViolation);
}

TEST(Contracts, SpmvRangeShapeMismatchThrows) {
  const CscMatrix c(5, 7);
  Vector x(3), v(5);
  EXPECT_THROW(c.spmv_range(0, 7, x, v), util::ContractViolation);
  Vector w(4), y(7);  // w must be sized rows()=5
  EXPECT_THROW(c.spmv_t(w, y), util::ContractViolation);
}

TEST(Contracts, GramOperatorRejectsWrongSpanSizes) {
  la::Rng rng(11);
  const Matrix a = rng.gaussian_matrix(6, 9);
  const core::DenseGramOperator op(a);
  Vector x(9), bad(4);
  EXPECT_THROW(op.apply(bad, x), util::ContractViolation);
  EXPECT_THROW(op.apply(x, bad), util::ContractViolation);
  EXPECT_THROW(op.apply_adjoint(bad, x), util::ContractViolation);
  Vector v(6);
  EXPECT_NO_THROW(op.apply_forward(x, v));
}

TEST(Contracts, ViolationMessageCarriesLocationWhenChecked) {
  const Matrix a(3, 4);
  const Matrix b(5, 2);
  try {
    (void)la::matmul(a, b);
    FAIL() << "expected ContractViolation";
  } catch (const util::ContractViolation& e) {
    const std::string what = e.what();
    if (util::checks_enabled()) {
      // Rich diagnostics: file:line plus both operand shapes.
      EXPECT_NE(what.find("blas.cpp"), std::string::npos) << what;
      EXPECT_NE(what.find("3x4"), std::string::npos) << what;
      EXPECT_NE(what.find("5x2"), std::string::npos) << what;
    } else {
      EXPECT_NE(what.find("dimension mismatch"), std::string::npos) << what;
    }
  }
}

// ---------------------------------------------------------------------------
// CSC structural invariants.
// ---------------------------------------------------------------------------

TEST(Contracts, CscValidateAcceptsWellFormed) {
  CscMatrix::Builder b(4, 3);
  b.add(0, 1.0);
  b.add(2, -2.0);
  b.commit_column();
  b.add(3, 0.5);
  b.commit_column();
  const CscMatrix m = std::move(b).build();
  EXPECT_NO_THROW(m.validate());
}

TEST(Contracts, CscValidateRejectsOutOfRangeRowIndex) {
  // from_raw is the deserialisation boundary: row index 9 in a 4-row matrix.
  std::vector<Index> col_ptr{0, 1, 2};
  std::vector<Index> row_idx{1, 9};
  std::vector<Real> values{1.0, 2.0};
  if (util::checks_enabled()) {
    EXPECT_THROW((void)CscMatrix::from_raw(4, 2, col_ptr, row_idx, values),
                 util::ContractViolation);
  } else {
    // Without checks from_raw adopts the arrays; validate() still catches it.
    const CscMatrix m =
        CscMatrix::from_raw(4, 2, col_ptr, row_idx, values);
    EXPECT_THROW(m.validate(), util::ContractViolation);
  }
}

TEST(Contracts, CscValidateRejectsDecreasingColPtr) {
  std::vector<Index> col_ptr{0, 2, 1, 2};
  std::vector<Index> row_idx{0, 1};
  std::vector<Real> values{1.0, 2.0};
  if (util::checks_enabled()) {
    EXPECT_THROW((void)CscMatrix::from_raw(3, 3, col_ptr, row_idx, values),
                 util::ContractViolation);
  } else {
    const CscMatrix m =
        CscMatrix::from_raw(3, 3, col_ptr, row_idx, values);
    EXPECT_THROW(m.validate(), util::ContractViolation);
  }
}

TEST(Contracts, CscFromRawRejectsInconsistentArraySizes) {
  std::vector<Index> col_ptr{0, 1};  // 2 entries for 3 columns
  EXPECT_THROW((void)CscMatrix::from_raw(3, 3, col_ptr, {0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)CscMatrix::from_raw(3, 1, {0, 1}, {0, 1}, {1.0}),
               std::invalid_argument);
}

TEST(Contracts, CscFromRawRoundTripsWellFormedInput) {
  const CscMatrix m = CscMatrix::from_raw(4, 2, {0, 2, 3}, {0, 3, 1},
                                          {1.0, -1.0, 2.5});
  EXPECT_EQ(m.nnz(), 3u);
  Vector x{1.0, 1.0}, v(4);
  m.spmv(x, v);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.5);
  EXPECT_DOUBLE_EQ(v[3], -1.0);
}

// ---------------------------------------------------------------------------
// Finiteness contracts: EXTDICT_CHECKS=ON only.
// ---------------------------------------------------------------------------

TEST(Contracts, GemvRejectsNaNInputWhenChecked) {
  if (!util::checks_enabled()) {
    GTEST_SKIP() << "finiteness contracts compiled out (EXTDICT_CHECKS=OFF)";
  }
  la::Rng rng(7);
  const Matrix a = rng.gaussian_matrix(5, 5);
  Vector x(5, 1.0), y(5);
  x[2] = kNaN;
  EXPECT_THROW(la::gemv(1, a, x, 0, y), util::ContractViolation);
  EXPECT_THROW(la::gemv_t(1, a, x, 0, y), util::ContractViolation);
}

TEST(Contracts, SparseCodersRejectNaNSignalWhenChecked) {
  if (!util::checks_enabled()) {
    GTEST_SKIP() << "finiteness contracts compiled out (EXTDICT_CHECKS=OFF)";
  }
  la::Rng rng(8);
  const Matrix dict = rng.gaussian_matrix(8, 12, true);
  Vector signal(8, 1.0);
  signal[5] = kNaN;
  EXPECT_THROW((void)sparsecoding::omp_sparse_code(dict, signal, {}),
               util::ContractViolation);
  const sparsecoding::BatchOmp coder(dict, {});
  EXPECT_THROW((void)coder.encode(signal), util::ContractViolation);
}

TEST(Contracts, CholeskyRejectsNaNMatrixWhenChecked) {
  if (!util::checks_enabled()) {
    GTEST_SKIP() << "finiteness contracts compiled out (EXTDICT_CHECKS=OFF)";
  }
  Matrix g = Matrix::from_rows({{4.0, 1.0}, {1.0, 3.0}});
  g(0, 1) = kNaN;
  EXPECT_THROW(la::Cholesky{g}, util::ContractViolation);
}

TEST(Contracts, FirstNonFiniteFindsNaNAndInf) {
  const Vector clean{1.0, -2.0, 0.0};
  EXPECT_EQ(util::first_non_finite(clean), -1);
  Vector dirty{1.0, kNaN, 2.0};
  EXPECT_EQ(util::first_non_finite(dirty), 1);
  dirty[1] = std::numeric_limits<Real>::infinity();
  EXPECT_EQ(util::first_non_finite(dirty), 1);
}

}  // namespace
}  // namespace extdict
