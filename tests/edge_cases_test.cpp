// Assorted edge cases that the mainline tests do not reach.

#include <gtest/gtest.h>

#include "core/alpha_profile.hpp"
#include "core/evolving.hpp"
#include "core/exd.hpp"
#include "data/subspace.hpp"
#include "dist/cluster.hpp"
#include "la/matrix.hpp"

namespace extdict {
namespace {

using la::Index;
using la::Matrix;
using la::Real;

TEST(MatrixEdge, FromRowsEmptyList) {
  const Matrix m = Matrix::from_rows({});
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
}

TEST(MatrixEdge, SelectZeroColumns) {
  la::Rng rng(1);
  const Matrix m = rng.gaussian_matrix(4, 6);
  const Matrix s = m.select_columns({});
  EXPECT_EQ(s.rows(), 4);
  EXPECT_EQ(s.cols(), 0);
}

TEST(ClusterEdge, ScatterChunkCountMismatchThrows) {
  const dist::Cluster cluster(dist::Topology{1, 2});
  EXPECT_THROW(cluster.run([](dist::Communicator& comm) {
    std::vector<std::vector<Real>> chunks;
    if (comm.rank() == 0) chunks = {{1.0}};  // one chunk for two ranks
    (void)comm.scatter(0, chunks);
  }),
               std::invalid_argument);
}

TEST(ClusterEdge, SelfSendIsDeliverable) {
  const dist::Cluster cluster(dist::Topology{1, 2});
  cluster.run([](dist::Communicator& comm) {
    const Real v = static_cast<Real>(comm.rank()) + 0.5;
    comm.send(comm.rank(), 3, std::span<const Real>(&v, 1));
    EXPECT_EQ(comm.recv_value<Real>(comm.rank(), 3), v);
  });
}

TEST(EvolveEdge, AtomBudgetCappedByFailingColumnCount) {
  data::SubspaceModelConfig base;
  base.ambient_dim = 30;
  base.num_columns = 150;
  base.num_subspaces = 3;
  base.subspace_dim = 3;
  base.seed = 7;
  const auto data = data::make_union_of_subspaces(base);
  core::ExdConfig exd_config;
  exd_config.dictionary_size = 60;
  exd_config.tolerance = 0.05;
  core::ExdResult exd = core::exd_transform(data.a, exd_config);
  const Index old_l = exd.dictionary.cols();

  // Five novel columns, but ask for 50 new atoms: the extension must cap
  // at the number of failing columns.
  data::SubspaceModelConfig novel = base;
  novel.num_columns = 5;
  novel.seed = 7000;
  const auto fresh = data::make_union_of_subspaces(novel);
  core::ExdConfig evolve_config = exd_config;
  evolve_config.dictionary_size = 50;
  const auto report = core::evolve(exd, fresh.a, evolve_config);
  EXPECT_LE(report.new_atoms, 5);
  EXPECT_EQ(exd.dictionary.cols(), old_l + report.new_atoms);
}

TEST(AlphaProfileEdge, NonConvergingSubsetsReturnLastLadderStep) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 30;
  config.num_columns = 200;
  config.num_subspaces = 4;
  config.subspace_dim = 3;
  config.seed = 9;
  const Matrix a = data::make_union_of_subspaces(config).a;
  core::AlphaProfileConfig profile;
  profile.l_grid = {40};
  profile.tolerance = 0.1;
  // Impossible threshold: never "converges", so the estimate must come
  // from the final (largest) subset.
  const auto result = core::estimate_alpha_profile_subsets(
      a, profile, {50, 100, 200}, /*convergence_threshold=*/0.0);
  EXPECT_EQ(result.columns_used, 200);
}

TEST(ExdEdge, FullDictionaryGivesIdentityLikeCodes) {
  // L = N: every column can be coded by itself (the paper's alpha(N) = 1
  // limit discussion in §VII).
  data::SubspaceModelConfig config;
  config.ambient_dim = 20;
  config.num_columns = 60;
  config.num_subspaces = 3;
  config.subspace_dim = 3;
  config.seed = 11;
  const Matrix a = data::make_union_of_subspaces(config).a;
  core::ExdConfig exd;
  exd.dictionary_size = 60;
  exd.tolerance = 1e-8;
  const auto r = core::exd_transform(a, exd);
  EXPECT_LE(r.alpha(), 1.5);
  EXPECT_LE(r.transformation_error, 1e-7);
}

}  // namespace
}  // namespace extdict
