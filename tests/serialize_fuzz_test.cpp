// Fuzz-ish robustness tests for the serialisation layer: a table of
// malformed headers and truncated/corrupt payloads fed to read_binary, the
// Matrix Market readers, and load_transform. Every case must produce a clean
// std::runtime_error — never an out-of-bounds read (run these under the
// asan-ubsan preset) nor a multi-gigabyte allocation from a corrupt header.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/exd.hpp"
#include "core/serialize.hpp"
#include "data/subspace.hpp"
#include "la/io.hpp"

namespace extdict {
namespace {

using la::Index;
using la::Matrix;
using la::Real;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
}

void write_bytes(const std::string& path, const std::vector<std::uint64_t>& words,
                 std::size_t extra_payload_bytes = 0) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(words.data()),
            static_cast<std::streamsize>(words.size() * sizeof(std::uint64_t)));
  const std::string pad(extra_payload_bytes, '\0');
  out << pad;
}

constexpr std::uint64_t kMagic = 0x4558544449435401ULL;

struct BinaryCase {
  const char* name;
  std::vector<std::uint64_t> header;
  std::size_t payload_bytes;
};

TEST(SerializeFuzz, MalformedBinaryHeadersFailCleanly) {
  const std::vector<BinaryCase> cases = {
      {"empty_file", {}, 0},
      {"short_header", {kMagic, 4}, 0},
      {"bad_magic", {0xdeadbeefULL, 2, 2}, 4 * sizeof(Real)},
      {"huge_rows", {kMagic, ~0ULL, 2}, 16},
      {"huge_cols", {kMagic, 2, ~0ULL}, 16},
      {"overflowing_product", {kMagic, 1ULL << 31, 1ULL << 31}, 16},
      {"payload_too_short", {kMagic, 4, 4}, 3 * sizeof(Real)},
      {"payload_too_long", {kMagic, 2, 2}, 5 * sizeof(Real)},
      {"claims_huge_but_tiny_file", {kMagic, 1000000, 1000000}, 8},
  };
  for (const auto& c : cases) {
    const std::string path = temp_path(std::string("extdict_fuzz_") + c.name);
    write_bytes(path, c.header, c.payload_bytes);
    EXPECT_THROW((void)la::read_binary(path), std::runtime_error) << c.name;
    std::remove(path.c_str());
  }
}

TEST(SerializeFuzz, BinaryRoundTripStillWorks) {
  Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  const std::string path = temp_path("extdict_fuzz_ok.bin");
  la::write_binary(a, path);
  const Matrix b = la::read_binary(path);
  EXPECT_EQ(la::max_abs_diff(a, b), 0.0);
  std::remove(path.c_str());
}

TEST(SerializeFuzz, MalformedMatrixMarketDenseFailsCleanly) {
  const std::vector<std::pair<const char*, const char*>> cases = {
      {"wrong_banner", "%%MatrixMarket matrix coordinate real general\n2 2\n1\n2\n3\n4\n"},
      {"negative_dims", "%%MatrixMarket matrix array real general\n-3 2\n1\n2\n"},
      {"huge_dims_tiny_file", "%%MatrixMarket matrix array real general\n999999 999999\n1\n"},
      {"truncated_payload", "%%MatrixMarket matrix array real general\n3 2\n1\n2\n3\n"},
      {"garbage_dims", "%%MatrixMarket matrix array real general\nxx yy\n"},
      {"empty", ""},
  };
  for (const auto& [name, contents] : cases) {
    const std::string path = temp_path(std::string("extdict_fuzz_mm_") + name);
    write_file(path, contents);
    EXPECT_THROW((void)la::read_matrix_market_dense(path), std::runtime_error)
        << name;
    std::remove(path.c_str());
  }
}

TEST(SerializeFuzz, MalformedMatrixMarketSparseFailsCleanly) {
  const std::vector<std::pair<const char*, const char*>> cases = {
      {"wrong_banner", "%%MatrixMarket matrix array real general\n2 2\n1\n"},
      {"row_out_of_range", "%%MatrixMarket matrix coordinate real general\n3 3 1\n7 1 1.0\n"},
      {"col_out_of_range", "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 9 1.0\n"},
      {"zero_based_index", "%%MatrixMarket matrix coordinate real general\n3 3 1\n0 1 1.0\n"},
      {"nnz_claim_huge", "%%MatrixMarket matrix coordinate real general\n3 3 99999999999\n1 1 1.0\n"},
      {"truncated_entries", "%%MatrixMarket matrix coordinate real general\n3 3 4\n1 1 1.0\n"},
      {"negative_dims", "%%MatrixMarket matrix coordinate real general\n-1 3 1\n1 1 1.0\n"},
  };
  for (const auto& [name, contents] : cases) {
    const std::string path = temp_path(std::string("extdict_fuzz_mms_") + name);
    write_file(path, contents);
    EXPECT_THROW((void)la::read_matrix_market_sparse(path), std::runtime_error)
        << name;
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// load_transform: corrupt .meta / mismatched component files.
// ---------------------------------------------------------------------------

class TransformFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SubspaceModelConfig config;
    config.ambient_dim = 20;
    config.num_columns = 60;
    config.num_subspaces = 3;
    config.subspace_dim = 3;
    config.seed = 901;
    const Matrix a = data::make_union_of_subspaces(config).a;
    core::ExdConfig exd;
    exd.dictionary_size = 25;
    exd.tolerance = 0.05;
    result_ = core::exd_transform(a, exd);
    base_ = temp_path("extdict_fuzz_transform");
    core::save_transform(result_, base_);
  }

  void TearDown() override {
    std::remove((base_ + ".dict.bin").c_str());
    std::remove((base_ + ".coeffs.mtx").c_str());
    std::remove((base_ + ".meta").c_str());
  }

  void patch_meta(const std::string& contents) {
    write_file(base_ + ".meta", contents);
  }

  core::ExdResult result_;
  std::string base_;
};

TEST_F(TransformFuzz, IntactRoundTripLoads) {
  EXPECT_NO_THROW((void)core::load_transform(base_));
}

TEST_F(TransformFuzz, CorruptMetaVariantsFailCleanly) {
  const std::vector<std::pair<const char*, std::string>> cases = {
      {"bad_header", "not-extdict v9\nerror 0.1\n"},
      {"unknown_key", "extdict-transform v1\nwat 42\n"},
      {"truncated_value", "extdict-transform v1\nerror\n"},
      {"atoms_count_huge", "extdict-transform v1\natoms 99999999999\n1\n2\n"},
      {"atoms_truncated", "extdict-transform v1\natoms 5\n1\n2\n"},
      {"negative_atom", "extdict-transform v1\natoms 2\n-4\n2\n"},
      {"empty", ""},
  };
  for (const auto& [name, contents] : cases) {
    patch_meta(contents);
    EXPECT_THROW((void)core::load_transform(base_), std::runtime_error)
        << name;
  }
}

TEST_F(TransformFuzz, AtomCountMismatchedToDictionaryFails) {
  // Claims fewer atoms than the dictionary has columns.
  patch_meta("extdict-transform v1\nerror 0.1\ntransform_ms 1\natoms 2\n1\n2\n");
  EXPECT_THROW((void)core::load_transform(base_), std::runtime_error);
}

TEST_F(TransformFuzz, TruncatedDictionaryFileFails) {
  // Chop the dictionary payload in half.
  const std::string dict = base_ + ".dict.bin";
  const auto size = std::filesystem::file_size(dict);
  std::filesystem::resize_file(dict, size / 2);
  EXPECT_THROW((void)core::load_transform(base_), std::runtime_error);
}

TEST_F(TransformFuzz, CoefficientRowIndexOutOfRangeFails) {
  // Rewrite the coefficient file claiming an index beyond the row count.
  write_file(base_ + ".coeffs.mtx",
             "%%MatrixMarket matrix coordinate real general\n25 60 1\n26 1 1.0\n");
  EXPECT_THROW((void)core::load_transform(base_), std::runtime_error);
}

}  // namespace
}  // namespace extdict
