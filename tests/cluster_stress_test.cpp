// Randomised stress tests of the message-passing runtime: chaotic
// interleavings of point-to-point traffic must preserve MPI's
// non-overtaking guarantee (per (sender, receiver, tag) FIFO), and mixed
// tag traffic must match correctly.

#include <gtest/gtest.h>

#include <algorithm>

#include "dist/cluster.hpp"
#include "la/random.hpp"

namespace extdict::dist {
namespace {

using la::Real;

class ClusterStressTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusterStressTest, RandomInterleavingsPreserveFifoPerSender) {
  const int trial = GetParam();
  const Index p = 2 + trial % 5;
  const Cluster cluster(Topology{1, p});
  constexpr int kMessages = 20;

  cluster.run([&](Communicator& comm) {
    la::Rng rng(static_cast<std::uint64_t>(trial) * 100 +
                static_cast<std::uint64_t>(comm.rank()));
    // Interleave destinations randomly but keep the per-destination message
    // order (non-overtaking is a per-pair guarantee).
    std::vector<Index> dests;
    for (Index dst = 0; dst < comm.size(); ++dst) {
      if (dst == comm.rank()) continue;
      for (int k = 0; k < kMessages; ++k) dests.push_back(dst);
    }
    std::shuffle(dests.begin(), dests.end(), rng.engine());
    std::vector<int> next(static_cast<std::size_t>(comm.size()), 0);
    for (const Index dst : dests) {
      const int k = next[static_cast<std::size_t>(dst)]++;
      const Real payload = static_cast<Real>(comm.rank()) * 10000 +
                           static_cast<Real>(dst) * 100 + k;
      comm.send(dst, 7, std::span<const Real>(&payload, 1));
    }
    for (Index src = 0; src < comm.size(); ++src) {
      if (src == comm.rank()) continue;
      for (int k = 0; k < kMessages; ++k) {
        const Real got = comm.recv_value<Real>(src, 7);
        const Real want = static_cast<Real>(src) * 10000 +
                          static_cast<Real>(comm.rank()) * 100 + k;
        ASSERT_EQ(got, want) << "rank " << comm.rank() << " from " << src
                             << " msg " << k;
      }
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(Trials, ClusterStressTest, ::testing::Range(0, 10));

TEST(ClusterStress, MixedTagsMatchIndependently) {
  const Cluster cluster(Topology{1, 3});
  cluster.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      // Interleave two tag streams to each peer; receivers drain them in
      // the opposite order.
      for (int k = 0; k < 10; ++k) {
        for (Index dst = 1; dst < 3; ++dst) {
          const Real a = 1000 + k;
          const Real b = 2000 + k;
          comm.send(dst, 1, std::span<const Real>(&a, 1));
          comm.send(dst, 2, std::span<const Real>(&b, 1));
        }
      }
    } else {
      for (int k = 0; k < 10; ++k) {
        EXPECT_EQ(comm.recv_value<Real>(0, 2), 2000 + k);
      }
      for (int k = 0; k < 10; ++k) {
        EXPECT_EQ(comm.recv_value<Real>(0, 1), 1000 + k);
      }
    }
  });
}

TEST(ClusterStress, RepeatedCollectiveRoundsStayConsistent) {
  const Cluster cluster(Topology{2, 3});
  cluster.run([](Communicator& comm) {
    for (int round = 0; round < 50; ++round) {
      std::vector<Real> buf = {static_cast<Real>(comm.rank() + round)};
      comm.allreduce_sum(std::span<Real>(buf));
      const Real expected = 15 + 6.0 * round;  // sum of ranks + 6*round
      ASSERT_EQ(buf[0], expected) << "round " << round;
    }
  });
}

}  // namespace
}  // namespace extdict::dist
