// EncodeCache contracts: content addressing discriminates every key
// component (signal bits, dictionary epoch, effective ε, effective
// max_atoms), a bit-identical resubmission hits and returns the exact
// Batch-OMP code, LRU eviction and the hit/miss/evict accounting are exact,
// and the server-level fast path keeps every ServerStats identity.

#include "serve/encode_cache.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <vector>

#include "la/random.hpp"
#include "serve/server.hpp"
#include "sparsecoding/batch_omp.hpp"
#include "util/hash.hpp"

namespace extdict::serve {
namespace {

using la::Matrix;
using la::Rng;
using la::Vector;
using sparsecoding::BatchOmp;
using sparsecoding::OmpConfig;
using sparsecoding::SparseCode;

Vector test_signal(Index m, unsigned seed) {
  Rng rng(seed);
  Vector x(m);
  rng.fill_gaussian(x);
  return x;
}

EncodeCacheKey key_of(const Vector& signal, std::uint64_t epoch,
                      Real tolerance, Index max_atoms) {
  EncodeCacheKey key;
  key.signal = signal;
  key.dict_epoch = epoch;
  key.tolerance = tolerance;
  key.max_atoms = max_atoms;
  return key;
}

SparseCode code_with(Index atom, Real value) {
  SparseCode code;
  code.entries.emplace_back(atom, value);
  code.iterations = 1;
  return code;
}

TEST(EncodeCacheKey, DiscriminatesEveryComponent) {
  const Vector signal = test_signal(16, 3);
  const EncodeCacheKey base = key_of(signal, 1, 0.1, 4);

  EXPECT_TRUE(base == key_of(signal, 1, 0.1, 4));

  Vector other = signal;
  other[7] = std::nextafter(other[7], 2.0);  // one ulp: a different signal
  EXPECT_FALSE(base == key_of(other, 1, 0.1, 4));
  EXPECT_FALSE(base == key_of(signal, 2, 0.1, 4));  // different epoch
  EXPECT_FALSE(base == key_of(signal, 1, 0.05, 4)); // different ε
  EXPECT_FALSE(base == key_of(signal, 1, 0.1, 5));  // different cap
}

TEST(EncodeCacheKey, EqualKeysHashEqual) {
  const Vector signal = test_signal(24, 5);
  EXPECT_EQ(key_of(signal, 3, 0.2, 6).hash(), key_of(signal, 3, 0.2, 6).hash());
  // Not a correctness requirement, but the components must actually feed
  // the hash or every epoch/config variant lands in one bucket chain.
  EXPECT_NE(key_of(signal, 3, 0.2, 6).hash(), key_of(signal, 4, 0.2, 6).hash());
  EXPECT_NE(key_of(signal, 3, 0.2, 6).hash(), key_of(signal, 3, 0.1, 6).hash());
}

TEST(EncodeCache, MissThenHitWithExactAccounting) {
  EncodeCache cache(8, 2);
  const Vector signal = test_signal(16, 7);
  const EncodeCacheKey key = key_of(signal, 0, 0.1, 4);

  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, code_with(3, 1.5));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  ASSERT_EQ(hit->entries.size(), 1u);
  EXPECT_EQ(hit->entries[0].first, 3);
  EXPECT_EQ(hit->entries[0].second, 1.5);

  const EncodeCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(EncodeCache, KeyVariantsMissIndependently) {
  EncodeCache cache(16, 1);
  const Vector signal = test_signal(16, 9);
  cache.insert(key_of(signal, 0, 0.1, 4), code_with(0, 1.0));

  // Same signal under any other epoch / stopping rule must miss.
  EXPECT_FALSE(cache.lookup(key_of(signal, 1, 0.1, 4)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(signal, 0, 0.2, 4)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(signal, 0, 0.1, 8)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(signal, 0, 0.1, 4)).has_value());
}

TEST(EncodeCache, LruEvictsOldestAndRefreshesOnHit) {
  EncodeCache cache(2, 1);  // one shard, two entries
  const Vector a = test_signal(8, 1), b = test_signal(8, 2),
               c = test_signal(8, 3);
  cache.insert(key_of(a, 0, 0.1, 2), code_with(0, 1.0));
  cache.insert(key_of(b, 0, 0.1, 2), code_with(1, 1.0));
  // Touch `a` so `b` becomes the LRU tail, then overflow with `c`.
  EXPECT_TRUE(cache.lookup(key_of(a, 0, 0.1, 2)).has_value());
  cache.insert(key_of(c, 0, 0.1, 2), code_with(2, 1.0));

  EXPECT_TRUE(cache.lookup(key_of(a, 0, 0.1, 2)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(b, 0, 0.1, 2)).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(key_of(c, 0, 0.1, 2)).has_value());

  const EncodeCacheStats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.insertions, 3u);
}

TEST(EncodeCache, DuplicateInsertRefreshesInPlace) {
  EncodeCache cache(4, 1);
  const Vector a = test_signal(8, 4);
  cache.insert(key_of(a, 0, 0.1, 2), code_with(0, 1.0));
  cache.insert(key_of(a, 0, 0.1, 2), code_with(0, 2.0));
  const auto hit = cache.lookup(key_of(a, 0, 0.1, 2));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->entries[0].second, 2.0);
  EXPECT_EQ(cache.stats().entries, 1u);   // refreshed, not duplicated
  EXPECT_EQ(cache.stats().insertions, 1u);
}

// -- Server-level fast path ---------------------------------------------------

TEST(ServerCache, RepeatHitsMatchDirectBatchOmp) {
  const Index m = 16, l = 48;
  Rng rng(21);
  const Matrix dict = rng.gaussian_matrix(m, l, true);
  const OmpConfig omp{.tolerance = 0.0, .max_atoms = 4};
  ExtDictServer server(dict, {.max_batch = 4,
                              .workers = 1,
                              .omp = omp,
                              .cache_capacity = 64});
  const BatchOmp direct(dict, omp);

  const Vector signal = test_signal(m, 31);
  const SparseCode want = direct.encode(signal);

  // First submission: a miss, batch-encoded.
  EncodeResult first = server.submit(signal).get();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.dict_epoch, 0u);

  // Bit-identical resubmission: a hit, and the code is the direct encode.
  EncodeResult second = server.submit(signal).get();
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.dict_epoch, 0u);
  EXPECT_EQ(second.batch_columns, 0);
  ASSERT_EQ(second.code.entries.size(), want.entries.size());
  for (std::size_t k = 0; k < want.entries.size(); ++k) {
    EXPECT_EQ(second.code.entries[k].first, want.entries[k].first);
    EXPECT_NEAR(second.code.entries[k].second, want.entries[k].second, 1e-12);
  }
  EXPECT_NEAR(second.code.residual_norm, want.residual_norm, 1e-12);

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.served, 1u);
  EXPECT_EQ(s.submitted,
            s.accepted + s.invalid + s.rejected + s.stopped + s.cache_hits);
  EXPECT_EQ(server.cache_stats().hits, 1u);
  EXPECT_EQ(server.cache_stats().misses, 1u);
}

TEST(ServerCache, PerRequestOverridesKeySeparately) {
  const Index m = 16, l = 48;
  Rng rng(22);
  const Matrix dict = rng.gaussian_matrix(m, l, true);
  ExtDictServer server(dict, {.max_batch = 1,
                              .workers = 1,
                              .omp = {.tolerance = 0.0, .max_atoms = 4},
                              .cache_capacity = 64});
  const Vector signal = test_signal(m, 33);

  // Warm the cache under the default rule, then ask for a different cap:
  // must NOT hit (different effective key), and its own repeat must hit.
  (void)server.submit(signal).get();
  EncodeResult override_first =
      server.submit(signal, {.max_atoms = 2}).get();
  EXPECT_FALSE(override_first.cache_hit);
  EXPECT_EQ(override_first.code.nnz(), 2);
  EncodeResult override_repeat =
      server.submit(signal, {.max_atoms = 2}).get();
  EXPECT_TRUE(override_repeat.cache_hit);
  EXPECT_EQ(override_repeat.code.nnz(), 2);

  // An explicit override equal to the server default is the same stopping
  // rule, hence the same key: it hits the default-rule entry.
  EncodeResult same_rule =
      server.submit(signal, {.tolerance = 0.0, .max_atoms = 4}).get();
  EXPECT_TRUE(same_rule.cache_hit);
  server.stop();
}

TEST(ServerCache, ExtensionFlipsEpochAndInvalidatesOldEntries) {
  const Index m = 16, l = 32;
  Rng rng(23);
  const Matrix dict = rng.gaussian_matrix(m, l, true);
  const OmpConfig omp{.tolerance = 0.0, .max_atoms = 4};
  auto registry = std::make_shared<DictRegistry>(dict, omp);
  ExtDictServer server(registry, {.max_batch = 1,
                                  .workers = 1,
                                  .omp = omp,
                                  .cache_capacity = 64});
  const Vector signal = test_signal(m, 41);

  (void)server.submit(signal).get();
  EXPECT_TRUE(server.submit(signal).get().cache_hit);

  // Extend: same signal now keys to the new epoch → miss, re-encode, and
  // the fresh entry hits with the new epoch id.
  registry->extend(rng.gaussian_matrix(m, 4, true));
  EncodeResult after = server.submit(signal).get();
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.dict_epoch, 1u);
  EXPECT_TRUE(server.submit(signal).get().cache_hit);

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.submitted,
            s.accepted + s.invalid + s.rejected + s.stopped + s.cache_hits);
}

TEST(ServerCache, DisabledCacheNeverHits) {
  const Index m = 8, l = 16;
  Rng rng(24);
  ExtDictServer server(rng.gaussian_matrix(m, l, true),
                       {.max_batch = 1, .workers = 1, .omp = {}});
  // cache_capacity defaults to 0: caching off.
  const Vector signal = test_signal(m, 51);
  (void)server.submit(signal).get();
  EXPECT_FALSE(server.submit(signal).get().cache_hit);
  server.stop();
  EXPECT_EQ(server.stats().cache_hits, 0u);
  EXPECT_EQ(server.cache_stats().hits, 0u);
  EXPECT_EQ(server.cache_stats().misses, 0u);
}

}  // namespace
}  // namespace extdict::serve
