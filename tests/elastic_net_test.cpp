// Ridge and Elastic-Net: the paper's other named iterative-update targets
// (§II-A) that ExtDict serves through the same Gram-operator interface.

#include <gtest/gtest.h>

#include <cmath>

#include "core/exd.hpp"
#include "core/gram_operator.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/random.hpp"
#include "solvers/lasso.hpp"

namespace extdict::solvers {
namespace {

using core::DenseGramOperator;
using core::TransformedGramOperator;
using la::Index;
using la::Matrix;

struct Problem {
  Matrix a;
  la::Vector y;
};

Problem make_problem(Index m = 40, Index n = 30, std::uint64_t seed = 161) {
  la::Rng rng(seed);
  Problem p;
  p.a = rng.gaussian_matrix(m, n, true);
  p.y.resize(static_cast<std::size_t>(m));
  rng.fill_gaussian(p.y);
  return p;
}

// Closed-form ridge solution via Cholesky on (AᵀA + l2 I).
la::Vector ridge_closed_form(const Matrix& a, const la::Vector& y, Real l2) {
  Matrix g = la::gram(a);
  for (Index i = 0; i < g.rows(); ++i) g(i, i) += l2;
  la::Vector aty(static_cast<std::size_t>(a.cols()));
  la::gemv_t(1, a, y, 0, aty);
  return la::Cholesky(g).solve(aty);
}

TEST(Ridge, MatchesClosedForm) {
  const Problem p = make_problem();
  DenseGramOperator op(p.a);
  const Real l2 = 0.1;
  const LassoResult r = ridge_solve(op, p.y, l2, 3000, 1e-11);
  ASSERT_TRUE(r.converged);
  const la::Vector expected = ridge_closed_form(p.a, p.y, l2);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(r.x[i], expected[i], 1e-6);
  }
}

TEST(Ridge, StrongerRegularizationShrinksSolution) {
  const Problem p = make_problem(40, 30, 162);
  DenseGramOperator op(p.a);
  const LassoResult weak = ridge_solve(op, p.y, 0.01, 3000, 1e-10);
  const LassoResult strong = ridge_solve(op, p.y, 10.0, 3000, 1e-10);
  EXPECT_LT(la::nrm2(strong.x), la::nrm2(weak.x));
}

TEST(ElasticNet, ObjectiveDefinition) {
  const Problem p = make_problem(10, 4, 163);
  DenseGramOperator op(p.a);
  la::Vector x(4, 0.5);
  const Real j = elastic_net_objective(op, p.y, x, 0.2, 0.4);
  // 1/2||Ax-y||^2 + 0.2*|x|_1 + 0.2*||x||^2.
  la::Vector ax(10);
  op.apply_forward(x, ax);
  Real fit = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    fit += (ax[i] - p.y[i]) * (ax[i] - p.y[i]);
  }
  EXPECT_NEAR(j, 0.5 * fit + 0.2 * 2.0 + 0.2 * 1.0, 1e-12);
}

TEST(ElasticNet, SolutionIsAStationaryPoint) {
  // At the Elastic-Net optimum, for non-zero coordinates:
  //   (Gx - Aᵀy + l2 x)_i = -l1 sign(x_i).
  const Problem p = make_problem(50, 40, 164);
  DenseGramOperator op(p.a);
  LassoConfig config;
  config.lambda = 0.05;
  config.lambda2 = 0.1;
  config.max_iterations = 5000;
  config.tolerance = 1e-12;
  config.use_adagrad = false;
  const LassoResult r = lasso_solve(op, p.y, config);
  ASSERT_TRUE(r.converged);

  la::Vector g(40);
  op.apply(r.x, g);
  la::Vector aty(40);
  op.apply_adjoint(p.y, aty);
  for (std::size_t i = 0; i < 40; ++i) {
    const Real smooth = g[i] - aty[i] + config.lambda2 * r.x[i];
    if (r.x[i] > 1e-10) {
      EXPECT_NEAR(smooth, -config.lambda, 1e-5);
    } else if (r.x[i] < -1e-10) {
      EXPECT_NEAR(smooth, config.lambda, 1e-5);
    } else {
      EXPECT_LE(std::abs(smooth), config.lambda + 1e-5);
    }
  }
}

TEST(ElasticNet, L2PartBreaksLassoTies) {
  // Duplicate columns: LASSO may put all weight on one; the Elastic-Net's
  // ridge term spreads it (the classic grouping effect).
  la::Rng rng(165);
  Matrix a = rng.gaussian_matrix(30, 10, true);
  for (Index i = 0; i < 30; ++i) a(i, 9) = a(i, 0);  // col 9 == col 0
  la::Vector y(30);
  la::Vector x_true(10, 0.0);
  x_true[0] = 2.0;
  la::gemv(1, a, x_true, 0, y);

  DenseGramOperator op(a);
  LassoConfig config;
  config.lambda = 0.01;
  config.lambda2 = 0.5;
  config.max_iterations = 5000;
  config.tolerance = 1e-12;
  config.use_adagrad = false;
  const LassoResult r = lasso_solve(op, y, config);
  EXPECT_NEAR(r.x[0], r.x[9], 1e-4);  // weight split evenly across the twins
  EXPECT_GT(r.x[0], 0.1);
}

TEST(ElasticNet, WorksThroughTransformedOperator) {
  // Same solution through (DC)ᵀDC at a tight transform tolerance.
  la::Rng rng(166);
  const Matrix a = rng.gaussian_matrix(40, 60, true);
  la::Vector y(40);
  rng.fill_gaussian(y);

  core::ExdConfig exd;
  exd.dictionary_size = 40;
  exd.tolerance = 1e-8;
  const auto t = core::exd_transform(a, exd);
  DenseGramOperator dense(a);
  TransformedGramOperator transformed(t.dictionary, t.coefficients);

  LassoConfig config;
  config.lambda = 0.02;
  config.lambda2 = 0.05;
  config.max_iterations = 4000;
  config.tolerance = 1e-11;
  config.use_adagrad = false;
  const LassoResult rd = lasso_solve(dense, y, config);
  const LassoResult rt = lasso_solve(transformed, y, config);
  for (std::size_t i = 0; i < rd.x.size(); ++i) {
    EXPECT_NEAR(rd.x[i], rt.x[i], 1e-4);
  }
}

}  // namespace
}  // namespace extdict::solvers
