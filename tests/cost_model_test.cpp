#include "core/cost_model.hpp"

#include <gtest/gtest.h>

namespace extdict::core {
namespace {

dist::PlatformSpec spec(Index nodes, Index cores) {
  return dist::PlatformSpec::idataplex({nodes, cores});
}

TEST(CostModel, Equation2Structure) {
  // time = 2*(M*L + nnz)/P + min(M,L) * R_bf — the chain Cᵀ(Dᵀ(D(Cx)))
  // touches every D and every C entry twice (lift + adjoint), the same
  // unit the original baseline charges (2·M·N for its two GEMVs).
  const auto platform = spec(2, 4);
  const UpdateCost c = transformed_update_cost(100, 50, 2000, 1000, 8, platform);
  EXPECT_DOUBLE_EQ(c.flops_per_proc, 2.0 * (100.0 * 50 + 2000) / 8);
  EXPECT_DOUBLE_EQ(c.comm_words, 50.0);
  EXPECT_DOUBLE_EQ(c.time_cost, c.flops_per_proc + 50 * platform.r_time_bf());
  EXPECT_DOUBLE_EQ(c.energy_cost, c.flops_per_proc + 50 * platform.r_energy_bf());
}

TEST(CostModel, CommIsMinOfMAndL) {
  const auto platform = spec(1, 4);
  EXPECT_DOUBLE_EQ(transformed_update_cost(100, 300, 0, 10, 4, platform).comm_words,
                   100.0);
  EXPECT_DOUBLE_EQ(transformed_update_cost(100, 30, 0, 10, 4, platform).comm_words,
                   30.0);
}

TEST(CostModel, SingleProcessorHasNoComm) {
  const auto platform = spec(1, 1);
  const UpdateCost c = transformed_update_cost(100, 50, 500, 100, 1, platform);
  EXPECT_DOUBLE_EQ(c.comm_words, 0.0);
  EXPECT_DOUBLE_EQ(c.time_cost, c.flops_per_proc);
}

TEST(CostModel, Equation4Memory) {
  // memory per node = M*L + (nnz + N)/P.
  const auto platform = spec(1, 4);
  const UpdateCost c = transformed_update_cost(10, 20, 400, 100, 4, platform);
  EXPECT_EQ(c.memory_words_per_proc, 10u * 20 + (400u + 100) / 4);
}

TEST(CostModel, OriginalBaselineCosts) {
  const auto platform = spec(1, 4);
  const UpdateCost c = original_update_cost(100, 1000, 4, platform);
  EXPECT_DOUBLE_EQ(c.flops_per_proc, 2.0 * 100 * 1000 / 4);
  EXPECT_DOUBLE_EQ(c.comm_words, 100.0);
  EXPECT_EQ(c.memory_words_per_proc, (100u * 1000 + 1000) / 4);
}

TEST(CostModel, PredictedMatchesRealisedAtAlphaTimesN) {
  const auto platform = spec(2, 8);
  const UpdateCost predicted = predicted_update_cost(50, 80, 3.0, 200, 16, platform);
  const UpdateCost realised = transformed_update_cost(50, 80, 600, 200, 16, platform);
  EXPECT_DOUBLE_EQ(predicted.time_cost, realised.time_cost);
  EXPECT_EQ(predicted.memory_words_per_proc, realised.memory_words_per_proc);
}

TEST(CostModel, TransformBeatsOriginalOnSparseData) {
  // The headline claim: with alpha*N << M*N the transformed update wins on
  // every processor count.
  const Index m = 500, n = 4000;
  for (const auto& platform : dist::paper_platforms()) {
    const Index p = platform.topology.total();
    const UpdateCost orig = original_update_cost(m, n, p, platform);
    const UpdateCost trans =
        transformed_update_cost(m, 200, /*nnz=*/5 * n, n, p, platform);
    EXPECT_LT(trans.time_cost, orig.time_cost) << platform.name;
    // Memory: the replicated dictionary (M·L, not divided by P) eventually
    // dominates — that is exactly why the tuner shrinks L* when optimising
    // memory on many nodes. At this L the win holds up to P = 16.
    if (p <= 16) {
      EXPECT_LT(trans.memory_words_per_proc, orig.memory_words_per_proc)
          << platform.name;
    }
  }
}

TEST(CostModel, CommTermGrowsWithRbfOnMultiNodePlatforms) {
  // Same counts, slower interconnect => larger share of the cost is
  // communication. This drives the L* shrinkage on bigger clusters.
  const UpdateCost shared = transformed_update_cost(200, 400, 1000, 1000, 4,
                                                    spec(1, 4));
  const UpdateCost clustered = transformed_update_cost(200, 400, 1000, 1000, 4,
                                                       spec(4, 1));
  EXPECT_GT(clustered.time_cost, shared.time_cost);
}

TEST(CostModel, LargerEpsilonTradeoffVisibleThroughAlpha) {
  // predicted cost is monotone in alpha — sparser C (looser eps) is cheaper.
  const auto platform = spec(2, 8);
  const double tight = predicted_update_cost(100, 300, 8.0, 2000, 16, platform).time_cost;
  const double loose = predicted_update_cost(100, 300, 3.0, 2000, 16, platform).time_cost;
  EXPECT_LT(loose, tight);
}

}  // namespace
}  // namespace extdict::core
