#include "data/image.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "la/random.hpp"

namespace extdict::data {
namespace {

TEST(Image, AtAndSampleAgreeOnGrid) {
  Image img(4, 3);
  img.at(2, 1) = 0.7;
  EXPECT_EQ(img.sample(2.0, 1.0), 0.7);
}

TEST(Image, SampleInterpolatesBilinearly) {
  Image img(2, 2);
  img.at(0, 0) = 0;
  img.at(1, 0) = 1;
  img.at(0, 1) = 0;
  img.at(1, 1) = 1;
  EXPECT_NEAR(img.sample(0.5, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(img.sample(0.25, 0.0), 0.25, 1e-12);
}

TEST(Image, SampleClampsAtBorder) {
  Image img(2, 2);
  img.at(1, 1) = 1.0;
  EXPECT_EQ(img.sample(100.0, 100.0), 1.0);
  EXPECT_EQ(img.sample(-5.0, -5.0), 0.0);
}

TEST(Image, SmoothSceneIsSmootherThanNoise) {
  la::Rng rng(1);
  Image img = make_smooth_scene(32, 32, rng);
  // Values are range-normalised...
  for (Real v : img.pixels) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // ...and adjacent pixels are close (total variation far below random).
  Real tv = 0;
  for (la::Index y = 0; y < 32; ++y) {
    for (la::Index x = 0; x + 1 < 32; ++x) {
      tv += std::abs(img.at(x + 1, y) - img.at(x, y));
    }
  }
  tv /= 32 * 31;
  EXPECT_LT(tv, 0.05);
}

TEST(Image, GaussianNoiseChangesPixels) {
  la::Rng rng(2);
  Image img(8, 8);
  add_gaussian_noise(img, 0.1, rng);
  Real sum_abs = 0;
  for (Real v : img.pixels) sum_abs += std::abs(v);
  EXPECT_GT(sum_abs, 0.0);
}

TEST(Psnr, InfiniteForIdenticalSignals) {
  std::vector<Real> a = {0.1, 0.5, 0.9};
  EXPECT_TRUE(std::isinf(psnr_db(a, a)));
}

TEST(Psnr, KnownValue) {
  // Peak 1.0, MSE 0.01 -> 20 dB.
  std::vector<Real> ref = {1.0, 0.0};
  std::vector<Real> rec = {1.1, -0.1};
  EXPECT_NEAR(psnr_db(ref, rec), 20.0, 1e-9);
}

TEST(Psnr, HigherNoiseLowerPsnr) {
  la::Rng rng(3);
  std::vector<Real> ref(500, 0.5);
  std::vector<Real> small = ref, big = ref;
  for (auto& v : small) v += rng.gaussian(0, 0.01);
  for (auto& v : big) v += rng.gaussian(0, 0.1);
  EXPECT_GT(psnr_db(ref, small), psnr_db(ref, big));
}

TEST(Psnr, MismatchThrows) {
  std::vector<Real> a(3), b(4);
  EXPECT_THROW(psnr_db(a, b), std::invalid_argument);
}

TEST(Patches, ExtractsColumnsOfExpectedShape) {
  la::Rng rng(4);
  Image img = make_smooth_scene(40, 40, rng);
  Matrix p = extract_patches(img, 8, 30, rng);
  EXPECT_EQ(p.rows(), 64);
  EXPECT_EQ(p.cols(), 30);
  // All values come from the image range.
  for (la::Index j = 0; j < 30; ++j) {
    for (Real v : p.col(j)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Patches, PatchLargerThanImageThrows) {
  la::Rng rng(5);
  Image img(4, 4);
  EXPECT_THROW(extract_patches(img, 8, 1, rng), std::invalid_argument);
}

TEST(Pgm, RoundTripsThroughDisk) {
  la::Rng rng(6);
  Image img = make_smooth_scene(16, 12, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "extdict_test.pgm").string();
  write_pgm(img, path);
  Image back = read_pgm(path);
  EXPECT_EQ(back.width, 16);
  EXPECT_EQ(back.height, 12);
  // 8-bit quantisation: within 1/255.
  for (std::size_t i = 0; i < img.pixels.size(); ++i) {
    EXPECT_NEAR(back.pixels[i], img.pixels[i], 1.0 / 255 + 1e-9);
  }
  std::remove(path.c_str());
}

TEST(Pgm, MissingFileThrows) {
  EXPECT_THROW(read_pgm("/nonexistent/nope.pgm"), std::runtime_error);
}

}  // namespace
}  // namespace extdict::data
