// End-to-end integration tests: the full ExtDict pipeline (generate data ->
// tune -> transform -> solve distributed) against serial ground truth, plus
// the headline cross-method claims the paper's evaluation rests on.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/rcss.hpp"
#include "baselines/sgd.hpp"
#include "core/dist_gram.hpp"
#include "core/extdict.hpp"
#include "data/datasets.hpp"
#include "data/lightfield.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "solvers/lasso.hpp"
#include "solvers/power_method.hpp"

namespace extdict {
namespace {

using core::ExtDict;
using la::Index;
using la::Matrix;
using la::Real;

TEST(Integration, FullPipelineOnEachDataset) {
  for (const auto id : {data::DatasetId::kSalina, data::DatasetId::kCancerCells,
                        data::DatasetId::kLightField}) {
    const Matrix a = data::make_dataset(id, data::Scale::kTest);
    const auto platform = dist::PlatformSpec::idataplex({1, 4});
    ExtDict::Options options;
    options.tolerance = 0.1;
    options.trials = 1;
    const ExtDict engine = ExtDict::preprocess(a, platform, options);
    EXPECT_LE(engine.transform().transformation_error, 0.1 * 1.05)
        << data::dataset_spec(id).name;

    // One distributed Gram pass agrees with the serial operator.
    la::Rng rng(1);
    la::Vector x0(static_cast<std::size_t>(a.cols()));
    rng.fill_gaussian(x0);
    const auto dist_result = engine.run_gram_iterations(x0, 1);
    la::Vector serial(x0.size());
    engine.gram_operator().apply(x0, serial);
    const Real norm = la::nrm2(serial);
    for (auto& v : serial) v /= norm;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_NEAR(dist_result.y[i], serial[i], 1e-8);
    }
  }
}

TEST(Integration, TransformedUpdateCheaperThanOriginalOnAllPlatforms) {
  // The Fig. 7 claim, end to end with measured counters: per-iteration
  // modelled time of the ExtDict update beats the AᵀA update on every
  // paper platform. Uses the bench-scale dataset — on the toy test-scale
  // data the 64-rank platforms degenerate to pure collective latency and
  // there is nothing left to win.
  const Matrix a = data::make_dataset(data::DatasetId::kSalina, data::Scale::kBench);
  la::Vector x0(static_cast<std::size_t>(a.cols()), 1.0);
  ExtDict::Options options;
  options.tolerance = 0.1;
  options.fixed_l = 25;  // a near-L_min dictionary, cheap on every platform
  const ExtDict engine =
      ExtDict::preprocess(a, dist::PlatformSpec::idataplex({1, 1}), options);
  for (const auto& platform : dist::paper_platforms()) {
    const dist::Cluster cluster(platform.topology);
    const auto transformed =
        core::dist_gram_apply(cluster, engine.transform().dictionary,
                              engine.transform().coefficients, x0, 1);
    const auto original = core::dist_gram_apply_original(cluster, a, x0, 1);
    EXPECT_LT(platform.modeled_seconds(transformed.stats),
              platform.modeled_seconds(original.stats))
        << platform.name;
  }
}

TEST(Integration, DenoisingPipelineImprovesPsnr) {
  // Miniature §VIII-D denoising app: LASSO over the transformed light-field
  // dataset must substantially denoise the observation.
  data::LightFieldConfig lf_config;
  lf_config.scene_size = 64;
  lf_config.views = 3;
  lf_config.patch = 6;
  lf_config.num_patches = 220;
  lf_config.seed = 17;
  const auto lf = data::make_light_field(lf_config);

  // Observation: a fresh clean signal from the same dataset + noise.
  la::Rng rng(3);
  la::Vector clean(lf.a.col(0).begin(), lf.a.col(0).end());
  la::Vector noisy = clean;
  for (auto& v : noisy) v += rng.gaussian(0, 0.02);

  ExtDict::Options options;
  options.tolerance = 0.1;
  options.fixed_l = 120;
  const ExtDict engine =
      ExtDict::preprocess(lf.a, dist::PlatformSpec::idataplex({1, 2}), options);

  solvers::LassoConfig lasso;
  lasso.lambda = 1e-3;
  lasso.max_iterations = 400;
  const auto result = solvers::lasso_solve(engine.gram_operator(), noisy, lasso);

  la::Vector reconstructed(clean.size());
  engine.gram_operator().apply_forward(result.x, reconstructed);

  const Real noisy_psnr = data::psnr_db(clean, noisy);
  const Real denoised_psnr = data::psnr_db(clean, reconstructed);
  EXPECT_GT(denoised_psnr, noisy_psnr + 3.0);
}

TEST(Integration, SgdNeedsMoreIterationsThanExtDictGradientDescent) {
  // Fig. 9's mechanism: to reach the same objective, SGD runs (many) more
  // iterations than the provably convergent full-gradient method on the
  // transformed data.
  la::Rng rng(7);
  const Matrix a = data::make_dataset(data::DatasetId::kSalina, data::Scale::kTest);
  la::Vector x_true(static_cast<std::size_t>(a.cols()), 0.0);
  for (const Index j : rng.sample_without_replacement(a.cols(), 5)) {
    x_true[static_cast<std::size_t>(j)] = 1.0;
  }
  la::Vector y(static_cast<std::size_t>(a.rows()), 0.0);
  la::gemv(1, a, x_true, 0, y);

  ExtDict::Options options;
  options.tolerance = 0.05;
  options.fixed_l = 150;
  const ExtDict engine =
      ExtDict::preprocess(a, dist::PlatformSpec::idataplex({1, 2}), options);

  solvers::LassoConfig lasso;
  lasso.lambda = 0.01;
  lasso.max_iterations = 300;
  lasso.tolerance = 1e-12;  // spend the full budget
  lasso.use_adagrad = false;
  const auto gd = solvers::lasso_solve(engine.gram_operator(), y, lasso);

  baselines::SgdConfig sgd;
  sgd.lambda = 0.01;
  sgd.batch_rows = 16;
  sgd.max_iterations = 20000;
  sgd.target_objective = gd.final_objective;
  sgd.check_every = 20;
  const auto sgd_result =
      baselines::sgd_lasso(dist::Cluster(dist::Topology{1, 2}), a, y, sgd);

  // Either SGD never matches the full-gradient objective, or it needs more
  // iterations to get there — both confirm Fig. 9's mechanism.
  if (sgd_result.reached_target) {
    EXPECT_GT(sgd_result.iterations, gd.iterations);
  } else {
    EXPECT_GT(sgd_result.final_objective, gd.final_objective);
  }
}

TEST(Integration, PowerMethodThroughFrameworkMatchesBaselineSpectrum) {
  const Matrix a = data::make_dataset(data::DatasetId::kSalina, data::Scale::kTest);
  ExtDict::Options options;
  options.tolerance = 0.05;
  const ExtDict engine =
      ExtDict::preprocess(a, dist::PlatformSpec::idataplex({1, 2}), options);

  solvers::PowerConfig power;
  power.num_eigenpairs = 5;
  power.tolerance = 1e-8;
  core::DenseGramOperator dense(a);
  const auto ref = solvers::power_method(dense, power);
  const auto got = solvers::power_method(engine.gram_operator(), power);
  EXPECT_LT(solvers::eigenvalue_error(got.eigenvalues, ref.eigenvalues), 0.05);
}

TEST(Integration, MemoryFootprintBeatsDenseBaselineAtScale) {
  const Matrix a = data::make_dataset(data::DatasetId::kCancerCells, data::Scale::kTest);
  ExtDict::Options options;
  options.tolerance = 0.1;
  options.objective = core::Objective::kMemory;
  const ExtDict engine =
      ExtDict::preprocess(a, dist::PlatformSpec::idataplex({8, 8}), options);
  const auto rcss = baselines::rcss_transform_for_error(a, 0.1, 3);
  EXPECT_LT(engine.transform().memory_words(), rcss.memory_words());
}

}  // namespace
}  // namespace extdict
