#include "solvers/lanczos.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/exd.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "la/svd.hpp"
#include "solvers/power_method.hpp"

namespace extdict::solvers {
namespace {

using core::DenseGramOperator;
using core::TransformedGramOperator;
using la::Matrix;

TEST(TridiagonalEigen, DiagonalMatrixIsItsOwnSpectrum) {
  std::vector<Real> d = {3, 1, 2};
  std::vector<Real> e = {0, 0, 0};
  tridiagonal_eigen(d, e, nullptr);
  std::sort(d.begin(), d.end());
  EXPECT_NEAR(d[0], 1, 1e-12);
  EXPECT_NEAR(d[1], 2, 1e-12);
  EXPECT_NEAR(d[2], 3, 1e-12);
}

TEST(TridiagonalEigen, Known2x2) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  std::vector<Real> d = {2, 2};
  std::vector<Real> e = {1, 0};
  Matrix z(2, 2);
  z(0, 0) = z(1, 1) = 1;
  tridiagonal_eigen(d, e, &z);
  std::vector<Real> sorted = d;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NEAR(sorted[0], 1.0, 1e-12);
  EXPECT_NEAR(sorted[1], 3.0, 1e-12);
  // Eigenvectors are (1, ∓1)/sqrt(2): |z| entries all 1/sqrt(2).
  for (la::Index j = 0; j < 2; ++j) {
    for (la::Index i = 0; i < 2; ++i) {
      EXPECT_NEAR(std::abs(z(i, j)), 1 / std::sqrt(2.0), 1e-10);
    }
  }
}

TEST(TridiagonalEigen, MatchesJacobiOnRandomTridiagonal) {
  la::Rng rng(1);
  const la::Index n = 12;
  std::vector<Real> d(static_cast<std::size_t>(n)), e(static_cast<std::size_t>(n), 0);
  Matrix full(n, n);
  for (la::Index i = 0; i < n; ++i) {
    d[static_cast<std::size_t>(i)] = rng.gaussian();
    full(i, i) = d[static_cast<std::size_t>(i)];
  }
  for (la::Index i = 0; i + 1 < n; ++i) {
    e[static_cast<std::size_t>(i)] = rng.gaussian();
    full(i, i + 1) = full(i + 1, i) = e[static_cast<std::size_t>(i)];
  }
  tridiagonal_eigen(d, e, nullptr);
  std::sort(d.begin(), d.end(), std::greater<>());
  // Reference: singular values of the symmetric matrix are |eigenvalues|;
  // compare absolute spectra sorted descending.
  const la::SvdResult svd = la::jacobi_svd(full);
  std::vector<Real> abs_d(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) abs_d[i] = std::abs(d[i]);
  std::sort(abs_d.begin(), abs_d.end(), std::greater<>());
  for (std::size_t i = 0; i < abs_d.size(); ++i) {
    EXPECT_NEAR(abs_d[i], svd.s[i], 1e-9);
  }
}

TEST(Lanczos, MatchesFullSpectrumOnSmallGram) {
  la::Rng rng(2);
  const Matrix a = rng.gaussian_matrix(30, 18);
  DenseGramOperator op(a);
  LanczosConfig config;
  config.num_eigenpairs = 5;
  const LanczosResult r = lanczos(op, config);
  const la::SvdResult svd = la::jacobi_svd(a);
  ASSERT_EQ(r.eigenvalues.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(r.eigenvalues[i], svd.s[i] * svd.s[i], 1e-6 * svd.s[0] * svd.s[0]);
  }
}

TEST(Lanczos, RitzVectorsAreEigenvectors) {
  la::Rng rng(3);
  const Matrix a = rng.gaussian_matrix(25, 15);
  DenseGramOperator op(a);
  LanczosConfig config;
  config.num_eigenpairs = 3;
  const LanczosResult r = lanczos(op, config);
  la::Vector gv(15);
  for (la::Index e = 0; e < 3; ++e) {
    auto v = r.eigenvectors.col(e);
    op.apply(v, gv);
    for (std::size_t i = 0; i < 15; ++i) {
      EXPECT_NEAR(gv[i], r.eigenvalues[static_cast<std::size_t>(e)] * v[i],
                  1e-6 * r.eigenvalues[0]);
    }
  }
}

TEST(Lanczos, UsesFewerGramProductsThanPowerMethod) {
  la::Rng rng(4);
  const Matrix a = rng.gaussian_matrix(60, 80);
  DenseGramOperator op(a);

  LanczosConfig lconfig;
  lconfig.num_eigenpairs = 8;
  lconfig.tolerance = 1e-8;
  const LanczosResult lr = lanczos(op, lconfig);

  PowerConfig pconfig;
  pconfig.num_eigenpairs = 8;
  pconfig.tolerance = 1e-8;
  pconfig.max_iterations = 2000;
  const PowerResult pr = power_method(op, pconfig);

  EXPECT_LT(lr.gram_products, pr.total_iterations());
  // And the spectra agree.
  EXPECT_LT(eigenvalue_error(lr.eigenvalues, pr.eigenvalues), 1e-4);
}

TEST(Lanczos, WorksThroughTransformedOperator) {
  la::Rng rng(5);
  const Matrix a = rng.gaussian_matrix(40, 60, true);
  core::ExdConfig exd;
  exd.dictionary_size = 40;
  exd.tolerance = 1e-8;
  const auto t = core::exd_transform(a, exd);
  TransformedGramOperator op(t.dictionary, t.coefficients);
  DenseGramOperator dense(a);
  LanczosConfig config;
  config.num_eigenpairs = 4;
  const LanczosResult rt = lanczos(op, config);
  const LanczosResult rd = lanczos(dense, config);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(rt.eigenvalues[i], rd.eigenvalues[i], 1e-5 * rd.eigenvalues[0]);
  }
}

TEST(Lanczos, Validation) {
  la::Rng rng(6);
  const Matrix a = rng.gaussian_matrix(10, 5);
  DenseGramOperator op(a);
  LanczosConfig config;
  config.num_eigenpairs = 0;
  EXPECT_THROW(lanczos(op, config), std::invalid_argument);
}

}  // namespace
}  // namespace extdict::solvers
