// BoundedQueue contracts: FIFO order, capacity enforcement per backpressure
// policy, timed pops for the micro-batch flush path, and close semantics
// (drain for graceful stop, close_and_drain for discard).

#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace extdict::serve {
namespace {

using namespace std::chrono_literals;

TEST(BoundedQueue, FifoOrderAcrossPushPop) {
  BoundedQueue<int> q(8, BackpressurePolicy::kReject);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.push(int{i}).status, PushStatus::kAccepted);
  }
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto item = q.try_pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, RejectPolicyFailsWhenFullAndKeepsItem) {
  BoundedQueue<int> q(2, BackpressurePolicy::kReject);
  EXPECT_EQ(q.push(1).status, PushStatus::kAccepted);
  EXPECT_EQ(q.push(2).status, PushStatus::kAccepted);
  int third = 3;
  const auto result = q.push(std::move(third));
  EXPECT_EQ(result.status, PushStatus::kRejected);
  EXPECT_FALSE(result.shed.has_value());
  EXPECT_EQ(third, 3);  // not consumed
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, ShedOldestEvictsHeadAndPreservesOrder) {
  BoundedQueue<int> q(3, BackpressurePolicy::kShedOldest);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.push(int{i}).status, PushStatus::kAccepted);
  }
  const auto result = q.push(99);
  EXPECT_EQ(result.status, PushStatus::kAccepted);
  ASSERT_TRUE(result.shed.has_value());
  EXPECT_EQ(*result.shed, 0);  // the oldest
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(*q.try_pop(), 1);
  EXPECT_EQ(*q.try_pop(), 2);
  EXPECT_EQ(*q.try_pop(), 99);
}

TEST(BoundedQueue, BlockPolicyWaitsForSpace) {
  BoundedQueue<int> q(1, BackpressurePolicy::kBlock);
  EXPECT_EQ(q.push(1).status, PushStatus::kAccepted);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(q.push(2).status, PushStatus::kAccepted);
    pushed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(pushed.load());  // still blocked on the full queue
  EXPECT_EQ(*q.pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(*q.pop(), 2);
}

TEST(BoundedQueue, CloseUnblocksBlockedPusherWithClosed) {
  BoundedQueue<int> q(1, BackpressurePolicy::kBlock);
  EXPECT_EQ(q.push(1).status, PushStatus::kAccepted);
  std::atomic<bool> saw_closed{false};
  std::thread producer([&] {
    if (q.push(2).status == PushStatus::kClosed) saw_closed.store(true);
  });
  std::this_thread::sleep_for(10ms);
  q.close();
  producer.join();
  EXPECT_TRUE(saw_closed.load());
  // The backlog stays poppable after close (drain semantics)...
  EXPECT_EQ(*q.pop(), 1);
  // ...and a drained closed queue pops nullopt instead of blocking.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PopBlocksUntilItemArrives) {
  BoundedQueue<int> q(4, BackpressurePolicy::kBlock);
  std::thread producer([&] {
    std::this_thread::sleep_for(10ms);
    EXPECT_EQ(q.push(7).status, PushStatus::kAccepted);
  });
  const auto item = q.pop();  // blocks until the producer delivers
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 7);
  producer.join();
}

TEST(BoundedQueue, PopUntilTimesOutOnEmptyQueue) {
  BoundedQueue<int> q(4, BackpressurePolicy::kBlock);
  const auto before = std::chrono::steady_clock::now();
  const auto item = q.pop_until(before + 5ms);
  EXPECT_FALSE(item.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - before, 5ms);
}

TEST(BoundedQueue, PopUntilReturnsItemBeforeDeadline) {
  BoundedQueue<int> q(4, BackpressurePolicy::kBlock);
  std::thread producer([&] {
    std::this_thread::sleep_for(5ms);
    EXPECT_EQ(q.push(42).status, PushStatus::kAccepted);
  });
  const auto item = q.pop_until(std::chrono::steady_clock::now() + 500ms);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 42);
  producer.join();
}

TEST(BoundedQueue, PushAfterCloseReturnsClosed) {
  BoundedQueue<int> q(4, BackpressurePolicy::kReject);
  q.close();
  EXPECT_EQ(q.push(1).status, PushStatus::kClosed);
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, CloseAndDrainHandsBackBacklogInOrder) {
  BoundedQueue<int> q(4, BackpressurePolicy::kReject);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(q.push(int{i}).status, PushStatus::kAccepted);
  }
  const auto drained = q.close_and_drain();
  ASSERT_EQ(drained.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(drained[static_cast<std::size_t>(i)], i);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_EQ(q.push(9).status, PushStatus::kClosed);
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0, BackpressurePolicy::kReject);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_EQ(q.push(1).status, PushStatus::kAccepted);
  EXPECT_EQ(q.push(2).status, PushStatus::kRejected);
}

TEST(BoundedQueue, MoveOnlyItemsFlowThrough) {
  BoundedQueue<std::unique_ptr<int>> q(2, BackpressurePolicy::kShedOldest);
  EXPECT_EQ(q.push(std::make_unique<int>(1)).status, PushStatus::kAccepted);
  EXPECT_EQ(q.push(std::make_unique<int>(2)).status, PushStatus::kAccepted);
  const auto result = q.push(std::make_unique<int>(3));
  EXPECT_EQ(result.status, PushStatus::kAccepted);
  ASSERT_TRUE(result.shed.has_value());
  EXPECT_EQ(**result.shed, 1);
  EXPECT_EQ(**q.pop(), 2);
  EXPECT_EQ(**q.pop(), 3);
}

}  // namespace
}  // namespace extdict::serve
