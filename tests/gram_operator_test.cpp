#include "core/gram_operator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exd.hpp"
#include "data/subspace.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::core {
namespace {

Matrix test_data() {
  data::SubspaceModelConfig config;
  config.ambient_dim = 30;
  config.num_columns = 120;
  config.num_subspaces = 4;
  config.subspace_dim = 3;
  config.seed = 71;
  return data::make_union_of_subspaces(config).a;
}

TEST(DenseGramOperator, MatchesExplicitGram) {
  const Matrix a = test_data();
  DenseGramOperator op(a);
  EXPECT_EQ(op.dim(), 120);
  EXPECT_EQ(op.data_dim(), 30);

  la::Rng rng(1);
  la::Vector x(120), y(120);
  rng.fill_gaussian(x);
  op.apply(x, y);

  const Matrix g = la::gram(a);
  la::Vector expected(120);
  la::gemv(1, g, x, 0, expected);
  for (std::size_t i = 0; i < 120; ++i) EXPECT_NEAR(y[i], expected[i], 1e-9);
}

TEST(DenseGramOperator, ForwardAndAdjoint) {
  const Matrix a = test_data();
  DenseGramOperator op(a);
  la::Rng rng(2);
  la::Vector x(120), v(30), y(120), ax(30);
  rng.fill_gaussian(x);
  rng.fill_gaussian(v);

  op.apply_forward(x, ax);
  la::Vector expected_ax(30);
  la::gemv(1, a, x, 0, expected_ax);
  for (std::size_t i = 0; i < 30; ++i) EXPECT_NEAR(ax[i], expected_ax[i], 1e-10);

  op.apply_adjoint(v, y);
  la::Vector expected_y(120);
  la::gemv_t(1, a, v, 0, expected_y);
  for (std::size_t i = 0; i < 120; ++i) EXPECT_NEAR(y[i], expected_y[i], 1e-10);
}

TEST(TransformedGramOperator, ApproximatesDenseGramWithinEpsilon) {
  // For a tight transform tolerance, (DC)ᵀDC x must track AᵀA x closely.
  const Matrix a = test_data();
  ExdConfig config;
  config.dictionary_size = 60;
  config.tolerance = 1e-6;
  const ExdResult exd = exd_transform(a, config);
  ASSERT_LE(exd.transformation_error, 1e-5);

  DenseGramOperator dense(a);
  TransformedGramOperator transformed(exd.dictionary, exd.coefficients);
  EXPECT_EQ(transformed.dim(), 120);
  EXPECT_EQ(transformed.data_dim(), 30);

  la::Rng rng(3);
  la::Vector x(120), y1(120), y2(120);
  rng.fill_gaussian(x);
  dense.apply(x, y1);
  transformed.apply(x, y2);
  Real diff = 0, norm = 0;
  for (std::size_t i = 0; i < 120; ++i) {
    diff += (y1[i] - y2[i]) * (y1[i] - y2[i]);
    norm += y1[i] * y1[i];
  }
  EXPECT_LT(std::sqrt(diff / norm), 1e-4);
}

TEST(TransformedGramOperator, ExactWhenCoefficientsAreExact) {
  // Build D, C by hand: D = A and C = I, so (DC)ᵀDC == AᵀA exactly.
  const Matrix a = test_data();
  la::CscMatrix::Builder builder(a.cols(), a.cols());
  for (Index j = 0; j < a.cols(); ++j) {
    builder.add(j, 1.0);
    builder.commit_column();
  }
  la::CscMatrix identity = std::move(builder).build();
  TransformedGramOperator transformed(a, identity);
  DenseGramOperator dense(a);

  la::Rng rng(4);
  la::Vector x(120), y1(120), y2(120);
  rng.fill_gaussian(x);
  dense.apply(x, y1);
  transformed.apply(x, y2);
  for (std::size_t i = 0; i < 120; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-9);
}

TEST(TransformedGramOperator, ShapeMismatchThrows) {
  Matrix d(10, 5);
  la::CscMatrix c(6, 20);  // rows != d.cols()
  EXPECT_THROW(TransformedGramOperator(d, c), std::invalid_argument);
}

TEST(GramOperators, FlopCountsReflectSparsity) {
  const Matrix a = test_data();
  ExdConfig config;
  config.dictionary_size = 60;
  config.tolerance = 0.1;
  const ExdResult exd = exd_transform(a, config);
  DenseGramOperator dense(a);
  TransformedGramOperator transformed(exd.dictionary, exd.coefficients);
  EXPECT_EQ(dense.flops_per_apply(), 2 * la::gemv_flops(30, 120));
  EXPECT_EQ(transformed.flops_per_apply(),
            2 * la::gemv_flops(30, 60) + 4 * exd.coefficients.nnz());
}

}  // namespace
}  // namespace extdict::core
