// Property tests tying the emulated cluster's *measured* counters to the
// paper's closed-form quantities: per-iteration FLOPs of Algorithm 2 equal
// 2(M·L) + 4·nnz(C) multiply-add pairs regardless of P, the collective
// volume follows min(M, L), and the partitioned strategy balances the work
// to (M·L + nnz)/P per rank — the premises behind Eqs. (2)-(4).

#include <gtest/gtest.h>

#include <tuple>

#include "core/dist_gram.hpp"
#include "core/exd.hpp"
#include "data/subspace.hpp"

namespace extdict::core {
namespace {

struct Problem {
  Matrix a;
  ExdResult exd;
};

Problem make_problem(Index l) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 48;
  config.num_columns = 256;
  config.num_subspaces = 6;
  config.subspace_dim = 4;
  config.seed = 201;
  Problem p;
  p.a = data::make_union_of_subspaces(config).a;
  ExdConfig exd;
  exd.dictionary_size = l;
  exd.tolerance = 0.05;
  exd.seed = 9;
  p.exd = exd_transform(p.a, exd);
  return p;
}

using Case = std::tuple<Index /*L*/, dist::Topology>;

class CounterModelTest : public ::testing::TestWithParam<Case> {};

TEST_P(CounterModelTest, TotalFlopsMatchClosedForm) {
  const auto [l, topo] = GetParam();
  const Problem p = make_problem(l);
  const dist::Cluster cluster(topo);
  la::Vector x0(256, 1.0);
  const int iters = 3;
  const auto r = dist_gram_apply(cluster, p.exd.dictionary, p.exd.coefficients,
                                 x0, iters, GramStrategy::kPartitionedDictionary);

  const auto m = static_cast<std::uint64_t>(p.a.rows());
  const auto nnz = p.exd.coefficients.nnz();
  // Per iteration: 2·(M·L) mult-add pairs of dense work (lift + adjoint,
  // 4·M·L FLOPs) + 4·nnz sparse FLOPs; plus normalisation (3 FLOPs per
  // element) and the reduction adds inside collectives.
  const std::uint64_t core_flops =
      static_cast<std::uint64_t>(iters) *
      (4 * m * static_cast<std::uint64_t>(l) + 4 * nnz);
  EXPECT_GE(r.stats.total_flops(), core_flops);
  // Slack: normalisation + collective adds, all O(iters * (N + L * P)).
  const std::uint64_t slack =
      static_cast<std::uint64_t>(iters) *
      (4 * 256 + 4 * static_cast<std::uint64_t>(l) *
                     static_cast<std::uint64_t>(topo.total()));
  EXPECT_LE(r.stats.total_flops(), core_flops + slack);
}

TEST_P(CounterModelTest, PerRankWorkIsBalancedToEq2) {
  const auto [l, topo] = GetParam();
  const Index p_count = topo.total();
  if (p_count == 1) GTEST_SKIP() << "balance is trivial at P = 1";
  const Problem p = make_problem(l);
  const dist::Cluster cluster(topo);
  la::Vector x0(256, 1.0);
  const auto r = dist_gram_apply(cluster, p.exd.dictionary, p.exd.coefficients,
                                 x0, 1, GramStrategy::kPartitionedDictionary);

  const double ideal =
      (4.0 * static_cast<double>(p.a.rows()) * static_cast<double>(l) +
       4.0 * static_cast<double>(p.exd.coefficients.nnz())) /
      static_cast<double>(p_count);
  for (const auto& c : r.stats.per_rank) {
    // Within 2x of the ideal share (row/column remainders, nnz imbalance,
    // collective adds).
    EXPECT_GE(static_cast<double>(c.flops), 0.4 * ideal);
    EXPECT_LE(static_cast<double>(c.flops), 2.5 * ideal + 2048);
  }
}

TEST_P(CounterModelTest, CollectiveVolumeTracksMinML) {
  const auto [l, topo] = GetParam();
  const Index p_count = topo.total();
  if (p_count == 1) GTEST_SKIP() << "no communication at P = 1";
  const Problem p = make_problem(l);
  const dist::Cluster cluster(topo);
  la::Vector x0(256, 1.0);
  const auto r = dist_gram_apply(cluster, p.exd.dictionary, p.exd.coefficients,
                                 x0, 1);  // auto dispatch

  // Auto dispatch: partitioned (two L-word allreduces) for L <= M,
  // replicated (one M-word reduce + broadcast) for L > M. Tree collectives
  // move (P-1) * words per phase.
  const auto m = static_cast<std::uint64_t>(p.a.rows());
  const auto phases_words =
      static_cast<std::uint64_t>(l) <= m ? 4 * static_cast<std::uint64_t>(l)
                                         : 2 * m;
  const std::uint64_t collective =
      phases_words * static_cast<std::uint64_t>(p_count - 1);
  EXPECT_GE(r.stats.total_words(), collective);
  // Slack: the scalar-normalisation allreduce and the final gather.
  EXPECT_LE(r.stats.total_words(),
            collective + 4 * 256 + 8 * static_cast<std::uint64_t>(p_count));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CounterModelTest,
    ::testing::Combine(::testing::Values<Index>(16, 48, 96),
                       ::testing::Values(dist::Topology{1, 1},
                                         dist::Topology{1, 4},
                                         dist::Topology{2, 3})));

TEST(CounterModel, OriginalUpdateMatchesTwoMN) {
  const Problem p = make_problem(32);
  for (const Index ranks : {1l, 2l, 4l}) {
    const dist::Cluster cluster(dist::Topology{1, ranks});
    la::Vector x0(256, 1.0);
    const auto r = dist_gram_apply_original(cluster, p.a, x0, 2);
    const std::uint64_t core_flops = 2ull * (4ull * 48 * 256);
    EXPECT_GE(r.stats.total_flops(), core_flops);
    EXPECT_LE(r.stats.total_flops(),
              core_flops + 2ull * (4 * 256 + 64 * static_cast<std::uint64_t>(ranks)));
  }
}

}  // namespace
}  // namespace extdict::core
