#include "core/dist_gram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exd.hpp"
#include "core/gram_operator.hpp"
#include "data/subspace.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::core {
namespace {

struct Problem {
  Matrix a;
  ExdResult exd;
};

Problem make_problem(Index l, Real eps = 0.05) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 36;
  config.num_columns = 180;
  config.num_subspaces = 5;
  config.subspace_dim = 4;
  config.seed = 81;
  Problem p;
  p.a = data::make_union_of_subspaces(config).a;
  ExdConfig exd;
  exd.dictionary_size = l;
  exd.tolerance = eps;
  exd.seed = 7;
  p.exd = exd_transform(p.a, exd);
  return p;
}

// The serial reference of the iterated normalised update that
// dist_gram_apply implements.
la::Vector serial_reference(const GramOperator& op, la::Vector x, int iterations) {
  la::Vector y(x.size());
  for (int it = 0; it < iterations; ++it) {
    op.apply(x, y);
    const Real norm = la::nrm2(y);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = norm > 0 ? y[i] / norm : 0;
  }
  return x;
}

TEST(ColumnPartition, BalancedWithinOneColumn) {
  const ColumnPartition part{103, 8};
  Index total = 0;
  for (Index r = 0; r < 8; ++r) {
    const Index c = part.count(r);
    EXPECT_GE(c, 103 / 8);
    EXPECT_LE(c, 103 / 8 + 1);
    total += c;
    if (r > 0) EXPECT_EQ(part.begin(r), part.end(r - 1));  // contiguous
  }
  EXPECT_EQ(total, 103);
}

class DistGramRankTest : public ::testing::TestWithParam<dist::Topology> {};

TEST_P(DistGramRankTest, MatchesSerialOperatorAcrossRankCounts) {
  const Problem p = make_problem(40);  // Case 1: L <= M
  const dist::Cluster cluster(GetParam());
  la::Rng rng(5);
  la::Vector x0(180);
  rng.fill_gaussian(x0);

  const DistGramResult dist = dist_gram_apply(cluster, p.exd.dictionary,
                                              p.exd.coefficients, x0, 3);
  TransformedGramOperator op(p.exd.dictionary, p.exd.coefficients);
  const la::Vector expected = serial_reference(op, x0, 3);
  ASSERT_EQ(dist.y.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(dist.y[i], expected[i], 1e-9) << GetParam().name();
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, DistGramRankTest,
                         ::testing::Values(dist::Topology{1, 1},
                                           dist::Topology{1, 3},
                                           dist::Topology{2, 2},
                                           dist::Topology{2, 4}));

TEST(DistGram, Case2MatchesSerialToo) {
  const Problem p = make_problem(60);  // L=60 > M=36: Case 2
  const dist::Cluster cluster(dist::Topology{2, 2});
  la::Rng rng(6);
  la::Vector x0(180);
  rng.fill_gaussian(x0);
  const DistGramResult dist = dist_gram_apply(cluster, p.exd.dictionary,
                                              p.exd.coefficients, x0, 2);
  TransformedGramOperator op(p.exd.dictionary, p.exd.coefficients);
  const la::Vector expected = serial_reference(op, x0, 2);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(dist.y[i], expected[i], 1e-9);
  }
}

TEST(DistGram, ForcedCasesAgreeWithEachOther) {
  const Problem p = make_problem(36);  // L == M: both cases legal
  const dist::Cluster cluster(dist::Topology{1, 4});
  la::Rng rng(7);
  la::Vector x0(180);
  rng.fill_gaussian(x0);
  const auto case1 = dist_gram_apply(cluster, p.exd.dictionary,
                                     p.exd.coefficients, x0, 2, GramStrategy::kRootDictionary);
  const auto case2 = dist_gram_apply(cluster, p.exd.dictionary,
                                     p.exd.coefficients, x0, 2, GramStrategy::kReplicatedDictionary);
  for (std::size_t i = 0; i < case1.y.size(); ++i) {
    EXPECT_NEAR(case1.y[i], case2.y[i], 1e-9);
  }
}

TEST(DistGram, CommunicationScalesWithMinML) {
  // Per iteration on P ranks, the reduce+broadcast volume is O(min(M,L));
  // Case 1 moves L-vectors, Case 2 moves M-vectors.
  const Problem p = make_problem(20);  // L=20 < M=36
  const dist::Cluster cluster(dist::Topology{1, 4});
  la::Vector x0(180, 1.0);

  const auto r1 = dist_gram_apply(cluster, p.exd.dictionary, p.exd.coefficients,
                                  x0, 1, GramStrategy::kRootDictionary);
  // Tree reduce + tree broadcast move exactly 2*(P-1)*L words, plus the
  // scalar normalisation and final gather traffic.
  const std::uint64_t collective_words = 2u * 3 * 20;
  EXPECT_GE(r1.stats.total_words(), collective_words);
  EXPECT_LE(r1.stats.total_words(), collective_words + 4 * 180 + 64);
}

TEST(DistGram, Case1OnlyRootChargesDictionaryMemory) {
  const Problem p = make_problem(30);
  const dist::Cluster cluster(dist::Topology{1, 4});
  la::Vector x0(180, 1.0);
  const auto r = dist_gram_apply(cluster, p.exd.dictionary, p.exd.coefficients,
                                 x0, 1, GramStrategy::kRootDictionary);
  const std::uint64_t dict_words = 36u * 30;
  EXPECT_GE(r.stats.per_rank[0].peak_memory_words, dict_words);
  for (std::size_t rank = 1; rank < 4; ++rank) {
    EXPECT_LT(r.stats.per_rank[rank].peak_memory_words, dict_words);
  }
}

TEST(DistGram, Case2EveryRankChargesDictionaryMemory) {
  const Problem p = make_problem(60);
  const dist::Cluster cluster(dist::Topology{1, 4});
  la::Vector x0(180, 1.0);
  const auto r = dist_gram_apply(cluster, p.exd.dictionary, p.exd.coefficients,
                                 x0, 1, GramStrategy::kReplicatedDictionary);
  const std::uint64_t dict_words = 36u * 60;
  for (const auto& c : r.stats.per_rank) {
    EXPECT_GE(c.peak_memory_words, dict_words);
  }
}

TEST(DistGram, FlopsBalancedAcrossRanks) {
  const Problem p = make_problem(40);
  const dist::Cluster cluster(dist::Topology{1, 4});
  la::Vector x0(180, 1.0);
  const auto r = dist_gram_apply(cluster, p.exd.dictionary, p.exd.coefficients,
                                 x0, 2, GramStrategy::kRootDictionary);
  // Non-root ranks do only the sparse work; their FLOPs should be within a
  // factor ~3 of each other (columns are load balanced, nnz varies).
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (std::size_t rank = 1; rank < 4; ++rank) {
    lo = std::min(lo, r.stats.per_rank[rank].flops);
    hi = std::max(hi, r.stats.per_rank[rank].flops);
  }
  EXPECT_LT(hi, 3 * lo + 1000);
}

TEST(DistGramOriginal, MatchesDenseSerial) {
  const Problem p = make_problem(40);
  const dist::Cluster cluster(dist::Topology{2, 2});
  la::Rng rng(8);
  la::Vector x0(180);
  rng.fill_gaussian(x0);
  const auto dist = dist_gram_apply_original(cluster, p.a, x0, 3);
  DenseGramOperator op(p.a);
  const la::Vector expected = serial_reference(op, x0, 3);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(dist.y[i], expected[i], 1e-9);
  }
}

TEST(DistGramOriginal, FlopsMatchTwoMNPerIteration) {
  const Problem p = make_problem(40);
  const dist::Cluster cluster(dist::Topology{1, 2});
  la::Vector x0(180, 1.0);
  const auto r = dist_gram_apply_original(cluster, p.a, x0, 1);
  // 4*M*N multiply-adds total (2MN in, 2MN out), plus normalisation.
  const std::uint64_t expected = 4u * 36 * 180;
  EXPECT_GE(r.stats.total_flops(), expected);
  EXPECT_LE(r.stats.total_flops(), expected + 8 * 180 + 64);
}

TEST(DistGram, InputValidation) {
  const Problem p = make_problem(30);
  const dist::Cluster cluster(dist::Topology{1, 2});
  la::Vector wrong(11);
  EXPECT_THROW(dist_gram_apply(cluster, p.exd.dictionary, p.exd.coefficients,
                               wrong, 1),
               std::invalid_argument);
}

class PartitionedStrategyTest : public ::testing::TestWithParam<dist::Topology> {};

TEST_P(PartitionedStrategyTest, MatchesSerialOperator) {
  const Problem p = make_problem(30);
  const dist::Cluster cluster(GetParam());
  la::Rng rng(9);
  la::Vector x0(180);
  rng.fill_gaussian(x0);
  const auto dist = dist_gram_apply(cluster, p.exd.dictionary,
                                    p.exd.coefficients, x0, 3,
                                    GramStrategy::kPartitionedDictionary);
  TransformedGramOperator op(p.exd.dictionary, p.exd.coefficients);
  const la::Vector expected = serial_reference(op, x0, 3);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(dist.y[i], expected[i], 1e-9) << GetParam().name();
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, PartitionedStrategyTest,
                         ::testing::Values(dist::Topology{1, 1},
                                           dist::Topology{1, 3},
                                           dist::Topology{2, 4}));

TEST(DistGram, PartitionedSplitsDictionaryMemoryAndFlops) {
  const Problem p = make_problem(30);
  const dist::Cluster cluster(dist::Topology{1, 4});
  la::Vector x0(180, 1.0);
  const auto r = dist_gram_apply(cluster, p.exd.dictionary, p.exd.coefficients,
                                 x0, 1, GramStrategy::kPartitionedDictionary);
  const std::uint64_t dict_words = 36u * 30;
  // Each rank holds its quarter of D (plus its C/x slices).
  for (const auto& c : r.stats.per_rank) {
    EXPECT_GE(c.peak_memory_words, dict_words / 4);
  }
  // Versus the replicated layout, the dictionary share of the footprint
  // shrinks by ~P on every rank.
  const auto repl = dist_gram_apply(cluster, p.exd.dictionary,
                                    p.exd.coefficients, x0, 1,
                                    GramStrategy::kReplicatedDictionary);
  for (std::size_t rank = 0; rank < 4; ++rank) {
    EXPECT_LE(r.stats.per_rank[rank].peak_memory_words + dict_words * 3 / 4,
              repl.stats.per_rank[rank].peak_memory_words + dict_words / 8);
  }
  // Dense work is spread: every rank records the 4*(M/P)*L dictionary flops.
  for (const auto& c : r.stats.per_rank) {
    EXPECT_GE(c.flops, 4u * 9 * 30);
  }
}

TEST(DistGram, AutoPrefersPartitionedOverRootOnManyRanks) {
  // The whole point of the partitioned strategy: the slowest rank's FLOPs
  // drop by ~P for the dense part compared to the root-dictionary layout.
  const Problem p = make_problem(36);
  const dist::Cluster cluster(dist::Topology{1, 4});
  la::Vector x0(180, 1.0);
  const auto root = dist_gram_apply(cluster, p.exd.dictionary,
                                    p.exd.coefficients, x0, 1,
                                    GramStrategy::kRootDictionary);
  const auto part = dist_gram_apply(cluster, p.exd.dictionary,
                                    p.exd.coefficients, x0, 1,
                                    GramStrategy::kPartitionedDictionary);
  EXPECT_LT(part.stats.max_rank_flops(), root.stats.max_rank_flops());
}

}  // namespace
}  // namespace extdict::core
