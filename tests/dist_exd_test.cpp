#include "core/dist_exd.hpp"

#include <gtest/gtest.h>

#include "data/subspace.hpp"
#include "la/blas.hpp"

namespace extdict::core {
namespace {

Matrix test_data(std::uint64_t seed = 601) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 40;
  config.num_columns = 200;
  config.num_subspaces = 5;
  config.subspace_dim = 4;
  config.seed = seed;
  return data::make_union_of_subspaces(config).a;
}

class DistExdTest : public ::testing::TestWithParam<dist::Topology> {};

TEST_P(DistExdTest, BitIdenticalToSerialTransform) {
  const Matrix a = test_data();
  ExdConfig config;
  config.dictionary_size = 60;
  config.tolerance = 0.05;
  config.seed = 11;

  const ExdResult serial = exd_transform(a, config);
  const dist::Cluster cluster(GetParam());
  const DistExdResult dist = exd_transform_distributed(cluster, a, config);

  EXPECT_EQ(dist.exd.atom_indices, serial.atom_indices);
  EXPECT_EQ(dist.exd.coefficients.nnz(), serial.coefficients.nnz());
  EXPECT_EQ(la::max_abs_diff(dist.exd.dictionary, serial.dictionary), 0.0);
  EXPECT_EQ(la::max_abs_diff(dist.exd.coefficients.to_dense(),
                             serial.coefficients.to_dense()),
            0.0);
  EXPECT_DOUBLE_EQ(dist.exd.transformation_error, serial.transformation_error);
}

INSTANTIATE_TEST_SUITE_P(Topologies, DistExdTest,
                         ::testing::Values(dist::Topology{1, 1},
                                           dist::Topology{1, 3},
                                           dist::Topology{2, 2},
                                           dist::Topology{2, 4}));

TEST(DistExd, BroadcastVolumeCoversDictionary) {
  // Step 1 broadcasts the index set (L words at half weight -> L/...) and
  // the M x L dictionary through the tree: (P-1) * M * L words dominate.
  const Matrix a = test_data(602);
  ExdConfig config;
  config.dictionary_size = 30;
  config.tolerance = 0.1;
  const dist::Cluster cluster(dist::Topology{1, 4});
  const DistExdResult r = exd_transform_distributed(cluster, a, config);
  const std::uint64_t dict_words = 3u * 40 * 30;  // (P-1) * M * L
  EXPECT_GE(r.stats.total_words(), dict_words);
}

TEST(DistExd, CodingWorkIsDistributed) {
  const Matrix a = test_data(603);
  ExdConfig config;
  config.dictionary_size = 50;
  config.tolerance = 0.05;
  const dist::Cluster cluster(dist::Topology{1, 4});
  const DistExdResult r = exd_transform_distributed(cluster, a, config);
  // Every rank performed coding work (Gram precompute + its block).
  for (const auto& c : r.stats.per_rank) {
    EXPECT_GT(c.flops, 0u);
  }
  // The per-column coding share (total minus the replicated Gram
  // precompute) is balanced within ~3x across ranks.
  const std::uint64_t gram_flops = 2u * 40 * 50 * 50;
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto& c : r.stats.per_rank) {
    const std::uint64_t coding = c.flops - gram_flops;
    lo = std::min(lo, coding);
    hi = std::max(hi, coding);
  }
  EXPECT_LT(hi, 3 * lo + 10000);
}

TEST(DistExd, Validation) {
  const Matrix a = test_data(604);
  const dist::Cluster cluster(dist::Topology{1, 2});
  ExdConfig config;
  config.dictionary_size = 0;
  EXPECT_THROW(exd_transform_distributed(cluster, a, config),
               std::invalid_argument);
  config.dictionary_size = a.cols() + 1;
  EXPECT_THROW(exd_transform_distributed(cluster, a, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace extdict::core
