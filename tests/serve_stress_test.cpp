// Serving-layer race hunt, designed for the tsan preset (alongside
// tsan_stress_test): many producer threads hammer a small queue under every
// backpressure policy, stops race in-flight submissions, and the monotone
// accounting identities must balance exactly — a lost or double-resolved
// future shows up as a mismatch even when TSan is not watching.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "la/random.hpp"
#include "serve/server.hpp"

namespace extdict::serve {
namespace {

using la::Matrix;
using la::Rng;
using la::Vector;
using namespace std::chrono_literals;

constexpr Index kM = 16;
constexpr Index kL = 32;
constexpr int kProducers = 6;
constexpr int kRequestsPerProducer = 40;

struct Outcomes {
  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> stopped{0};
  std::atomic<std::uint64_t> invalid{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> unresolved{0};

  std::uint64_t total() const {
    return served + rejected + shed + stopped + invalid + failed;
  }
};

void resolve(std::future<EncodeResult> future, Outcomes& out) {
  try {
    (void)future.get();
    out.served.fetch_add(1);
  } catch (const RequestRejected&) {
    out.rejected.fetch_add(1);
  } catch (const RequestShed&) {
    out.shed.fetch_add(1);
  } catch (const ServerStopped&) {
    out.stopped.fetch_add(1);
  } catch (const InvalidRequest&) {
    out.invalid.fetch_add(1);
  } catch (...) {
    out.failed.fetch_add(1);
  }
}

void hammer(ExtDictServer& server, Outcomes& out, unsigned seed) {
  Rng rng(seed);
  Vector signal(kM);
  for (int i = 0; i < kRequestsPerProducer; ++i) {
    rng.fill_gaussian(signal);
    auto future = server.submit(signal);
    if (future.wait_for(5s) != std::future_status::ready) {
      out.unresolved.fetch_add(1);
      continue;
    }
    resolve(std::move(future), out);
  }
}

void run_policy_storm(BackpressurePolicy policy) {
  Rng rng(21);
  ExtDictServer server(rng.gaussian_matrix(kM, kL, true),
                       {.max_batch = 8,
                        .max_delay_us = 100,
                        .workers = 2,
                        .queue_capacity = 4,
                        .backpressure = policy, .omp = {}});
  Outcomes out;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back(
        [&server, &out, p] { hammer(server, out, 100u + static_cast<unsigned>(p)); });
  }
  for (auto& t : producers) t.join();
  server.stop();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kProducers) * kRequestsPerProducer;
  EXPECT_EQ(out.unresolved.load(), 0u);
  EXPECT_EQ(out.total(), kTotal);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, kTotal);
  EXPECT_EQ(s.submitted,
            s.accepted + s.invalid + s.rejected + s.stopped + s.cache_hits);
  EXPECT_EQ(s.accepted, s.served + s.encode_failed + s.shed + s.discarded);
  EXPECT_EQ(s.columns_encoded, s.served + s.encode_failed);
  EXPECT_EQ(s.served, out.served.load());
  EXPECT_EQ(s.rejected, out.rejected.load());
  EXPECT_EQ(s.shed, out.shed.load());
}

TEST(ServeStress, BlockPolicyStorm) {
  run_policy_storm(BackpressurePolicy::kBlock);
}

TEST(ServeStress, RejectPolicyStorm) {
  run_policy_storm(BackpressurePolicy::kReject);
}

TEST(ServeStress, ShedOldestPolicyStorm) {
  run_policy_storm(BackpressurePolicy::kShedOldest);
}

// Producers fire-and-collect while the main thread stops the server mid-storm.
// Every future must still resolve (value or a documented serve error), and the
// books must balance whichever instant the stop landed.
void run_stop_race(StopMode mode) {
  Rng rng(22);
  ExtDictServer server(rng.gaussian_matrix(kM, kL, true),
                       {.max_batch = 4,
                        .max_delay_us = 200,
                        .workers = 2,
                        .queue_capacity = 8,
                        .backpressure = BackpressurePolicy::kReject, .omp = {}});
  Outcomes out;
  std::atomic<std::uint64_t> submitted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng local(200u + static_cast<unsigned>(p));
      Vector signal(kM);
      for (int i = 0; i < kRequestsPerProducer; ++i) {
        local.fill_gaussian(signal);
        auto future = server.submit(signal);
        submitted.fetch_add(1);
        if (future.wait_for(5s) != std::future_status::ready) {
          out.unresolved.fetch_add(1);
          continue;
        }
        resolve(std::move(future), out);
      }
    });
  }
  std::this_thread::sleep_for(2ms);
  server.stop(mode);
  for (auto& t : producers) t.join();

  EXPECT_EQ(out.unresolved.load(), 0u);
  EXPECT_EQ(out.total(), submitted.load());
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, submitted.load());
  EXPECT_EQ(s.submitted,
            s.accepted + s.invalid + s.rejected + s.stopped + s.cache_hits);
  EXPECT_EQ(s.accepted, s.served + s.encode_failed + s.shed + s.discarded);
  if (mode == StopMode::kDrain) {
    EXPECT_EQ(s.discarded, 0u);
  }
  // Post-stop, out.stopped aggregates ServerStopped from both refused
  // submissions and (under kDiscard) discarded queue entries.
  EXPECT_EQ(out.stopped.load(), s.stopped + s.discarded);
}

TEST(ServeStress, DrainStopRacesProducers) { run_stop_race(StopMode::kDrain); }

TEST(ServeStress, DiscardStopRacesProducers) {
  run_stop_race(StopMode::kDiscard);
}

// Epoch flips under full concurrent load: producers hammer a cached server
// drawing from a small signal pool (so hits and misses interleave) while a
// flipper thread extends the registry repeatedly. Every future resolves,
// every accounting identity balances at the end, epochs observed by served
// results are monotone within each producer, and old epochs drain.
TEST(ServeStress, EpochFlipsUnderLoadKeepIdentities) {
  Rng rng(24);
  const Matrix dict = rng.gaussian_matrix(kM, kL, true);
  auto registry = std::make_shared<DictRegistry>(
      dict, sparsecoding::OmpConfig{.tolerance = 0.0, .max_atoms = 4});
  ExtDictServer server(registry, {.max_batch = 8,
                                  .max_delay_us = 100,
                                  .workers = 2,
                                  .queue_capacity = 32,
                                  .omp = {.tolerance = 0.0, .max_atoms = 4},
                                  .cache_capacity = 64});

  // Small shared pool → plenty of bit-identical resubmissions (cache
  // traffic) racing the flips.
  std::vector<Vector> pool(8, Vector(kM));
  {
    Rng pool_rng(25);
    for (auto& signal : pool) pool_rng.fill_gaussian(signal);
  }

  constexpr int kFlips = 4;
  Outcomes out;
  std::atomic<bool> max_epoch_regressed{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::uint64_t last_epoch = 0;
      for (int i = 0; i < kRequestsPerProducer; ++i) {
        auto future = server.submit(
            pool[static_cast<std::size_t>(p + i) % pool.size()]);
        if (future.wait_for(5s) != std::future_status::ready) {
          out.unresolved.fetch_add(1);
          continue;
        }
        try {
          const EncodeResult result = future.get();
          // A producer's observed epoch may lag the registry (pinned
          // batches, cached codes) but must never run backwards.
          if (result.dict_epoch < last_epoch) max_epoch_regressed = true;
          last_epoch = std::max(last_epoch, result.dict_epoch);
          out.served.fetch_add(1);
        } catch (const ServeError&) {
          out.stopped.fetch_add(1);
        } catch (...) {
          out.failed.fetch_add(1);
        }
      }
    });
  }
  std::thread flipper([&] {
    Rng flip_rng(26);
    for (int f = 0; f < kFlips; ++f) {
      std::this_thread::sleep_for(1ms);
      registry->extend(flip_rng.gaussian_matrix(kM, 2, true));
    }
  });
  flipper.join();
  for (auto& t : producers) t.join();
  server.stop();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kProducers) * kRequestsPerProducer;
  EXPECT_EQ(out.unresolved.load(), 0u);
  EXPECT_EQ(out.failed.load(), 0u);
  EXPECT_EQ(out.total(), kTotal);
  EXPECT_FALSE(max_epoch_regressed.load());
  EXPECT_EQ(registry->current_epoch(), static_cast<std::uint64_t>(kFlips));
  EXPECT_EQ(registry->atom_count(), kL + 2 * kFlips);

  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, kTotal);
  EXPECT_EQ(s.submitted,
            s.accepted + s.invalid + s.rejected + s.stopped + s.cache_hits);
  EXPECT_EQ(s.accepted, s.served + s.encode_failed + s.shed + s.discarded);
  EXPECT_EQ(s.columns_encoded, s.served + s.encode_failed);
  EXPECT_EQ(s.served + s.cache_hits, out.served.load());
  EXPECT_EQ(s.encode_failed, 0u);

  // The cache's own books: every lookup is a hit or a miss, and with the
  // server stopped the flip storm leaves only reachable epochs alive.
  const EncodeCacheStats c = server.cache_stats();
  EXPECT_EQ(c.hits, s.cache_hits);
  EXPECT_EQ(c.hits + c.misses, s.submitted);
  EXPECT_LE(registry->live_epochs(), static_cast<std::size_t>(kFlips) + 1);
}

// Concurrent stop() calls from several threads while producers run: stop is
// idempotent and serializing, nothing deadlocks, everything resolves.
TEST(ServeStress, ConcurrentStopsSerialize) {
  Rng rng(23);
  ExtDictServer server(rng.gaussian_matrix(kM, kL, true),
                       {.max_batch = 4,
                        .workers = 2,
                        .queue_capacity = 8,
                        .backpressure = BackpressurePolicy::kReject, .omp = {}});
  Outcomes out;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back(
        [&server, &out, p] { hammer(server, out, 300u + static_cast<unsigned>(p)); });
  }
  std::vector<std::thread> stoppers;
  for (int t = 0; t < 3; ++t) {
    stoppers.emplace_back([&server] {
      std::this_thread::sleep_for(1ms);
      server.stop(StopMode::kDrain);
    });
  }
  for (auto& t : stoppers) t.join();
  for (auto& t : producers) t.join();
  EXPECT_FALSE(server.accepting());
  EXPECT_EQ(out.unresolved.load(), 0u);
  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted,
            s.accepted + s.invalid + s.rejected + s.stopped + s.cache_hits);
  EXPECT_EQ(s.accepted, s.served + s.encode_failed + s.shed + s.discarded);
}

}  // namespace
}  // namespace extdict::serve
