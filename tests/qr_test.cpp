#include "la/qr.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::la {
namespace {

TEST(HouseholderQr, SolvesSquareSystemExactly) {
  Rng rng(1);
  Matrix a = rng.gaussian_matrix(5, 5);
  Vector x_true(5);
  rng.fill_gaussian(x_true);
  Vector b(5);
  gemv(1, a, x_true, 0, b);
  Vector x = HouseholderQr(a).solve(b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(HouseholderQr, LeastSquaresResidualIsOrthogonal) {
  // For the LS minimiser, Aᵀ(Ax - b) = 0.
  Rng rng(2);
  Matrix a = rng.gaussian_matrix(12, 4);
  Vector b(12);
  rng.fill_gaussian(b);
  Vector x = least_squares(a, b);
  Vector r(12);
  gemv(1, a, x, 0, r);
  for (std::size_t i = 0; i < 12; ++i) r[i] -= b[i];
  Vector atr(4);
  gemv_t(1, a, r, 0, atr);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(atr[i], 0.0, 1e-9);
}

TEST(HouseholderQr, SolveManyMatchesColumnwise) {
  Rng rng(3);
  Matrix a = rng.gaussian_matrix(10, 4);
  Matrix b = rng.gaussian_matrix(10, 6);
  HouseholderQr qr(a);
  Matrix x = qr.solve_many(b);
  for (Index j = 0; j < 6; ++j) {
    Vector xj = qr.solve(b.col(j));
    for (Index i = 0; i < 4; ++i) {
      EXPECT_NEAR(x(i, j), xj[static_cast<std::size_t>(i)], 1e-10);
    }
  }
}

TEST(HouseholderQr, RejectsWideMatrix) {
  Matrix a(3, 5);
  EXPECT_THROW(HouseholderQr{a}, std::invalid_argument);
}

TEST(HouseholderQr, SolveSizeMismatchThrows) {
  Rng rng(4);
  Matrix a = rng.gaussian_matrix(6, 3);
  HouseholderQr qr(a);
  Vector b(4);
  EXPECT_THROW(qr.solve(b), std::invalid_argument);
}

TEST(HouseholderQr, RankOfFullRankMatrix) {
  Rng rng(5);
  Matrix a = rng.gaussian_matrix(8, 5);
  EXPECT_EQ(HouseholderQr(a).rank(), 5);
}

TEST(HouseholderQr, RankDetectsDeficiency) {
  // Third column = sum of the first two.
  Rng rng(6);
  Matrix a = rng.gaussian_matrix(8, 3);
  for (Index i = 0; i < 8; ++i) a(i, 2) = a(i, 0) + a(i, 1);
  EXPECT_EQ(HouseholderQr(a).rank(), 2);
}

TEST(HouseholderQr, PseudoInverseProjectionIdempotent) {
  // P = D D⁺ is a projector: applying it twice equals applying once. This
  // is the property RCSS's C = D⁺A build relies on.
  Rng rng(7);
  Matrix d = rng.gaussian_matrix(10, 4);
  HouseholderQr qr(d);
  Vector v(10);
  rng.fill_gaussian(v);
  Vector c1 = qr.solve(v);
  Vector p1(10);
  gemv(1, d, c1, 0, p1);
  Vector c2 = qr.solve(p1);
  Vector p2(10);
  gemv(1, d, c2, 0, p2);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(p1[i], p2[i], 1e-9);
}

class QrShapeTest : public ::testing::TestWithParam<std::pair<Index, Index>> {};

TEST_P(QrShapeTest, NormalEquationsHold) {
  const auto [m, n] = GetParam();
  Rng rng(100 + m + n);
  Matrix a = rng.gaussian_matrix(m, n);
  Vector b(static_cast<std::size_t>(m));
  rng.fill_gaussian(b);
  Vector x = least_squares(a, b);
  Vector r(static_cast<std::size_t>(m));
  gemv(1, a, x, 0, r);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b[i];
  Vector atr(static_cast<std::size_t>(n));
  gemv_t(1, a, r, 0, atr);
  EXPECT_LT(nrm2(atr), 1e-8 * (1 + nrm2(b)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapeTest,
                         ::testing::Values(std::pair<Index, Index>{1, 1},
                                           std::pair<Index, Index>{6, 6},
                                           std::pair<Index, Index>{20, 3},
                                           std::pair<Index, Index>{50, 30},
                                           std::pair<Index, Index>{100, 1}));

}  // namespace
}  // namespace extdict::la
