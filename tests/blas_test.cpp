#include "la/blas.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "la/random.hpp"

namespace extdict::la {
namespace {

// Naive reference products for cross-checking the optimised kernels.
Matrix reference_matmul(const Matrix& a, const Matrix& b, Trans ta, Trans tb) {
  const Index m = ta == Trans::kNo ? a.rows() : a.cols();
  const Index k = ta == Trans::kNo ? a.cols() : a.rows();
  const Index n = tb == Trans::kNo ? b.cols() : b.rows();
  Matrix c(m, n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      Real s = 0;
      for (Index l = 0; l < k; ++l) {
        const Real av = ta == Trans::kNo ? a(i, l) : a(l, i);
        const Real bv = tb == Trans::kNo ? b(l, j) : b(j, l);
        s += av * bv;
      }
      c(i, j) = s;
    }
  }
  return c;
}

TEST(Blas1, AxpyAccumulates) {
  Vector x = {1, 2, 3};
  Vector y = {10, 20, 30};
  axpy(2, x, y);
  EXPECT_EQ(y[0], 12);
  EXPECT_EQ(y[1], 24);
  EXPECT_EQ(y[2], 36);
}

TEST(Blas1, ScalScales) {
  Vector x = {1, -2, 4};
  scal(-0.5, x);
  EXPECT_EQ(x[0], -0.5);
  EXPECT_EQ(x[1], 1.0);
  EXPECT_EQ(x[2], -2.0);
}

TEST(Blas1, DotMatchesManual) {
  Vector x = {1, 2, 3};
  Vector y = {4, 5, 6};
  EXPECT_EQ(dot(x, y), 32.0);
}

TEST(Blas1, Nrm2Matches) {
  Vector x = {3, 4};
  EXPECT_NEAR(nrm2(x), 5.0, 1e-14);
}

TEST(Blas1, Nrm2OverflowSafe) {
  Vector x = {1e200, 1e200};
  EXPECT_NEAR(nrm2(x), std::sqrt(2.0) * 1e200, 1e188);
}

TEST(Blas1, IamaxFindsLargestMagnitude) {
  Vector x = {1, -9, 4};
  EXPECT_EQ(iamax(x), 1);
  Vector empty;
  EXPECT_EQ(iamax(empty), -1);
}

TEST(Blas2, GemvMatchesReference) {
  Rng rng(5);
  Matrix a = rng.gaussian_matrix(7, 4);
  Vector x(4), y(7, 1.0);
  rng.fill_gaussian(x);
  Vector expected(7);
  for (Index i = 0; i < 7; ++i) {
    Real s = 0;
    for (Index j = 0; j < 4; ++j) s += a(i, j) * x[static_cast<std::size_t>(j)];
    expected[static_cast<std::size_t>(i)] = 2 * s + 3 * 1.0;
  }
  gemv(2, a, x, 3, y);
  for (Index i = 0; i < 7; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], expected[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Blas2, GemvBetaZeroIgnoresGarbage) {
  Matrix a = Matrix::from_rows({{1, 0}, {0, 1}});
  Vector x = {5, 6};
  Vector y = {std::nan(""), std::nan("")};
  gemv(1, a, x, 0, y);
  EXPECT_EQ(y[0], 5);
  EXPECT_EQ(y[1], 6);
}

TEST(Blas2, GemvTMatchesReference) {
  Rng rng(6);
  Matrix a = rng.gaussian_matrix(6, 9);
  Vector x(6), y(9);
  rng.fill_gaussian(x);
  gemv_t(1, a, x, 0, y);
  for (Index j = 0; j < 9; ++j) {
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], dot(a.col(j), x), 1e-12);
  }
}

TEST(Blas2, GemvDimensionMismatchThrows) {
  Matrix a(3, 2);
  Vector x(3), y(3);
  EXPECT_THROW(gemv(1, a, x, 0, y), std::invalid_argument);
  EXPECT_THROW(gemv_t(1, a, y, 0, y), std::invalid_argument);
}

using GemmCase = std::tuple<Index, Index, Index, Trans, Trans>;

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, MatchesNaiveReference) {
  const auto [m, n, k, ta, tb] = GetParam();
  Rng rng(42 + m + n + k);
  Matrix a = ta == Trans::kNo ? rng.gaussian_matrix(m, k) : rng.gaussian_matrix(k, m);
  Matrix b = tb == Trans::kNo ? rng.gaussian_matrix(k, n) : rng.gaussian_matrix(n, k);
  Matrix c = matmul(a, b, ta, tb);
  Matrix ref = reference_matmul(a, b, ta, tb);
  EXPECT_LT(max_abs_diff(c, ref), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposeCombos, GemmParamTest,
    ::testing::Values(GemmCase{4, 5, 6, Trans::kNo, Trans::kNo},
                      GemmCase{4, 5, 6, Trans::kYes, Trans::kNo},
                      GemmCase{4, 5, 6, Trans::kNo, Trans::kYes},
                      GemmCase{4, 5, 6, Trans::kYes, Trans::kYes},
                      GemmCase{1, 1, 1, Trans::kNo, Trans::kNo},
                      GemmCase{17, 23, 31, Trans::kNo, Trans::kNo},
                      GemmCase{17, 23, 31, Trans::kYes, Trans::kNo},
                      GemmCase{64, 64, 64, Trans::kNo, Trans::kNo}));

TEST(Gemm, AccumulatesWithAlphaBeta) {
  Rng rng(9);
  Matrix a = rng.gaussian_matrix(3, 3);
  Matrix b = rng.gaussian_matrix(3, 3);
  Matrix c = rng.gaussian_matrix(3, 3);
  Matrix expected = c;
  Matrix ab = reference_matmul(a, b, Trans::kNo, Trans::kNo);
  for (Index j = 0; j < 3; ++j) {
    for (Index i = 0; i < 3; ++i) expected(i, j) = 2 * ab(i, j) + 0.5 * c(i, j);
  }
  gemm(2, a, Trans::kNo, b, Trans::kNo, 0.5, c);
  EXPECT_LT(max_abs_diff(c, expected), 1e-12);
}

TEST(Gemm, DimensionMismatchThrows) {
  Matrix a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(gemm(1, a, Trans::kNo, b, Trans::kNo, 0, c), std::invalid_argument);
}

TEST(Gram, MatchesAtA) {
  Rng rng(11);
  Matrix a = rng.gaussian_matrix(8, 5);
  Matrix g = gram(a);
  Matrix ref = matmul(a, a, Trans::kYes, Trans::kNo);
  EXPECT_LT(max_abs_diff(g, ref), 1e-12);
  // Symmetry by construction.
  for (Index j = 0; j < 5; ++j) {
    for (Index i = 0; i < 5; ++i) EXPECT_EQ(g(i, j), g(j, i));
  }
}

TEST(FlopCounters, MatchFormulas) {
  EXPECT_EQ(gemv_flops(10, 20), 400u);
  EXPECT_EQ(gemm_flops(2, 3, 4), 48u);
}

}  // namespace
}  // namespace extdict::la
