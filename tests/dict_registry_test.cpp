// DictRegistry contracts: bordered Gram extension is exactly a full
// recompute (bitwise, so extension never changes what Batch-OMP sees),
// publication is an atomic epoch flip, pinned epochs survive until their
// last holder drains, and extend_from_samples reuses evolve's pass-2
// selection rule.

#include "serve/dict_registry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/evolving.hpp"
#include "core/gram_extend.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::serve {
namespace {

using la::Matrix;
using la::Rng;
using sparsecoding::OmpConfig;

Matrix gaussian(Index m, Index l, unsigned seed) {
  Rng rng(seed);
  return rng.gaussian_matrix(m, l, true);
}

TEST(GramExtend, BorderedEqualsFullRecomputeBitwise) {
  const Matrix dict = gaussian(24, 40, 5);
  const Matrix extra = gaussian(24, 7, 6);
  const Matrix base = la::gram(dict);

  Matrix extended_dict = dict;
  extended_dict.append_columns(extra);
  const Matrix full = la::gram(extended_dict);
  const Matrix bordered = core::extend_gram_bordered(base, dict, extra);

  ASSERT_EQ(bordered.rows(), full.rows());
  ASSERT_EQ(bordered.cols(), full.cols());
  for (Index j = 0; j < full.cols(); ++j) {
    for (Index i = 0; i < full.rows(); ++i) {
      // Same la::dot accumulation order → bitwise, not just 1e-12.
      EXPECT_EQ(bordered(i, j), full(i, j)) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(GramExtend, RejectsMismatchedShapes) {
  const Matrix dict = gaussian(10, 12, 7);
  const Matrix gram = la::gram(dict);
  EXPECT_THROW(core::extend_gram_bordered(gram, dict, gaussian(11, 2, 8)),
               std::invalid_argument);
  EXPECT_THROW(
      core::extend_gram_bordered(gaussian(12, 11, 9), dict, gaussian(10, 2, 8)),
      std::invalid_argument);
}

TEST(DictRegistry, ExtendPublishesNewEpochAtomically) {
  const OmpConfig omp{.tolerance = 0.0, .max_atoms = 4};
  DictRegistry registry(gaussian(16, 24, 11), omp);
  EXPECT_EQ(registry.current_epoch(), 0u);
  EXPECT_EQ(registry.atom_count(), 24);
  EXPECT_EQ(registry.signal_dim(), 16);

  const std::uint64_t id = registry.extend(gaussian(16, 8, 12));
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(registry.current_epoch(), 1u);
  EXPECT_EQ(registry.atom_count(), 32);
  EXPECT_EQ(registry.signal_dim(), 16);

  const auto epoch = registry.current();
  EXPECT_EQ(epoch->id, 1u);
  EXPECT_EQ(epoch->dictionary.cols(), 32);
  // The epoch's coder serves the extended dictionary with its bordered
  // Gram; shape is the cheap full-consistency probe.
  EXPECT_EQ(epoch->coder.gram().rows(), 32);
  EXPECT_EQ(epoch->coder.atom_count(), 32);
}

TEST(DictRegistry, ExtendedEpochEncodesLikeFreshCoder) {
  const OmpConfig omp{.tolerance = 0.0, .max_atoms = 6};
  const Matrix base = gaussian(20, 30, 13);
  const Matrix extra = gaussian(20, 5, 14);
  DictRegistry registry(base, omp);
  registry.extend(extra);

  Matrix extended = base;
  extended.append_columns(extra);
  const sparsecoding::BatchOmp fresh(extended, omp);

  Rng rng(15);
  la::Vector x(20);
  rng.fill_gaussian(x);
  const auto got = registry.current()->coder.encode(x);
  const auto want = fresh.encode(x);
  ASSERT_EQ(got.entries.size(), want.entries.size());
  for (std::size_t k = 0; k < want.entries.size(); ++k) {
    EXPECT_EQ(got.entries[k].first, want.entries[k].first);
    EXPECT_NEAR(got.entries[k].second, want.entries[k].second, 1e-12);
  }
  EXPECT_NEAR(got.residual_norm, want.residual_norm, 1e-12);
}

TEST(DictRegistry, PinnedEpochSurvivesFlipUntilReleased) {
  const OmpConfig omp{.tolerance = 0.1, .max_atoms = 2};
  DictRegistry registry(gaussian(8, 12, 17), omp);

  std::shared_ptr<const DictEpoch> pinned = registry.current();
  registry.extend(gaussian(8, 2, 18));
  EXPECT_EQ(registry.live_epochs(), 2u);  // epoch 1 serving, epoch 0 pinned

  // The pinned epoch still serves its own dictionary (an in-flight batch
  // mid-extension sees exactly this).
  EXPECT_EQ(pinned->id, 0u);
  EXPECT_EQ(pinned->dictionary.cols(), 12);
  pinned.reset();
  EXPECT_EQ(registry.live_epochs(), 1u);  // epoch 0 reclaimed on drain
}

TEST(DictRegistry, ExtendFromSamplesMatchesEvolveSelection) {
  const OmpConfig omp{.tolerance = 0.1, .max_atoms = 4};
  const Matrix candidates = gaussian(16, 20, 19);
  core::ExdConfig config;
  config.dictionary_size = 6;
  config.seed = 77;

  DictRegistry registry(gaussian(16, 24, 20), omp);
  registry.extend_from_samples(candidates, config);

  const Matrix expected = core::select_extension_atoms(candidates, config);
  const auto epoch = registry.current();
  ASSERT_EQ(epoch->dictionary.cols(), 24 + expected.cols());
  for (Index j = 0; j < expected.cols(); ++j) {
    for (Index i = 0; i < expected.rows(); ++i) {
      EXPECT_EQ(epoch->dictionary(i, 24 + j), expected(i, j));
    }
  }
}

TEST(DictRegistry, SequentialExtensionsCountEpochs) {
  const OmpConfig omp{.tolerance = 0.1, .max_atoms = 2};
  DictRegistry registry(gaussian(8, 10, 21), omp);
  for (int round = 1; round <= 3; ++round) {
    const std::uint64_t id =
        registry.extend(gaussian(8, 2, 21 + static_cast<unsigned>(round)));
    EXPECT_EQ(id, static_cast<std::uint64_t>(round));
  }
  EXPECT_EQ(registry.atom_count(), 16);
  EXPECT_EQ(registry.live_epochs(), 1u);  // nothing pinned the old ones
}

}  // namespace
}  // namespace extdict::serve
