#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/cells.hpp"
#include "data/datasets.hpp"
#include "data/hyperspectral.hpp"
#include "data/lightfield.hpp"
#include "data/subspace.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"

namespace extdict::data {
namespace {

TEST(Subspace, ShapeAndNormalization) {
  SubspaceModelConfig config;
  config.ambient_dim = 30;
  config.num_columns = 100;
  config.num_subspaces = 4;
  config.subspace_dim = 3;
  SubspaceData d = make_union_of_subspaces(config);
  EXPECT_EQ(d.a.rows(), 30);
  EXPECT_EQ(d.a.cols(), 100);
  for (la::Index j = 0; j < 100; ++j) {
    EXPECT_NEAR(la::nrm2(d.a.col(j)), 1.0, 1e-10);
  }
  EXPECT_EQ(d.bases.size(), 4u);
  EXPECT_EQ(d.membership.size(), 100u);
}

TEST(Subspace, ColumnsLieOnTheirSubspace) {
  SubspaceModelConfig config;
  config.ambient_dim = 25;
  config.num_columns = 60;
  config.num_subspaces = 3;
  config.subspace_dim = 4;
  config.noise_stddev = 0;
  SubspaceData d = make_union_of_subspaces(config);
  for (la::Index j = 0; j < 60; ++j) {
    const la::Index s = d.membership[static_cast<std::size_t>(j)];
    ASSERT_GE(s, 0);
    // Column minus its projection onto the basis must vanish.
    const Matrix& basis = d.bases[static_cast<std::size_t>(s)];
    la::Vector proj_coeff(static_cast<std::size_t>(basis.cols()));
    la::gemv_t(1, basis, d.a.col(j), 0, proj_coeff);
    la::Vector residual(d.a.col(j).begin(), d.a.col(j).end());
    for (la::Index k = 0; k < basis.cols(); ++k) {
      la::axpy(-proj_coeff[static_cast<std::size_t>(k)], basis.col(k), residual);
    }
    EXPECT_LT(la::nrm2(residual), 1e-10);
  }
}

TEST(Subspace, FullRankDespiteUnionStructure) {
  // The paper's Fig. 2 point: union-of-subspace data is NOT low rank in the
  // classic sense — with enough subspaces the matrix is full rank — yet
  // each column is K-sparse in the right dictionary.
  SubspaceModelConfig config;
  config.ambient_dim = 20;
  config.num_columns = 200;
  config.num_subspaces = 10;
  config.subspace_dim = 4;
  SubspaceData d = make_union_of_subspaces(config);
  EXPECT_EQ(numerical_rank(d.a), 20);
}

TEST(Subspace, OutliersGetMinusOneMembership) {
  SubspaceModelConfig config;
  config.ambient_dim = 15;
  config.num_columns = 100;
  config.outlier_fraction = 0.1;
  SubspaceData d = make_union_of_subspaces(config);
  int outliers = 0;
  for (la::Index m : d.membership) outliers += (m < 0);
  EXPECT_EQ(outliers, 10);
}

TEST(Subspace, SharedDimsCorrelateAdjacentBases) {
  SubspaceModelConfig config;
  config.ambient_dim = 40;
  config.num_subspaces = 3;
  config.subspace_dim = 5;
  config.shared_dims = 2;
  config.num_columns = 30;
  SubspaceData d = make_union_of_subspaces(config);
  // First shared direction of consecutive bases must be essentially equal.
  const Real overlap =
      std::abs(la::dot(d.bases[0].col(0), d.bases[1].col(0)));
  EXPECT_GT(overlap, 0.99);
}

TEST(Subspace, DeterministicBySeed) {
  SubspaceModelConfig config;
  config.seed = 77;
  SubspaceData a = make_union_of_subspaces(config);
  SubspaceData b = make_union_of_subspaces(config);
  EXPECT_EQ(la::max_abs_diff(a.a, b.a), 0.0);
}

TEST(Subspace, RejectsKGreaterThanM) {
  SubspaceModelConfig config;
  config.ambient_dim = 4;
  config.subspace_dim = 5;
  EXPECT_THROW(make_union_of_subspaces(config), std::invalid_argument);
}

TEST(LightField, ShapeAndStructure) {
  LightFieldConfig config;
  config.scene_size = 64;
  config.views = 3;
  config.patch = 6;
  config.num_patches = 50;
  LightFieldData lf = make_light_field(config);
  EXPECT_EQ(lf.a.rows(), 6 * 6 * 3 * 3);
  EXPECT_EQ(lf.a.cols(), 50);
  for (la::Index j = 0; j < 50; ++j) EXPECT_NEAR(la::nrm2(lf.a.col(j)), 1.0, 1e-10);
}

TEST(LightField, ViewsAreStronglyCorrelated) {
  // Adjacent views of the same patch are near-shifted copies; their
  // correlation must be much higher than between random patches.
  LightFieldConfig config;
  config.scene_size = 64;
  config.views = 3;
  config.patch = 6;
  config.num_patches = 20;
  config.noise_stddev = 0;
  LightFieldData lf = make_light_field(config);
  const la::Index block = 36;
  Real view_corr = 0;
  for (la::Index j = 0; j < 20; ++j) {
    auto col = lf.a.col(j);
    std::span<const Real> v0{col.data(), static_cast<std::size_t>(block)};
    std::span<const Real> v1{col.data() + block, static_cast<std::size_t>(block)};
    view_corr += la::dot(v0, v1) / (la::nrm2(v0) * la::nrm2(v1));
  }
  view_corr /= 20;
  EXPECT_GT(view_corr, 0.9);
}

TEST(LightField, EffectiveRankFarBelowAmbient) {
  // Union-of-low-rank: a few dozen singular values capture ~all energy.
  LightFieldConfig config;
  config.scene_size = 64;
  config.views = 3;
  config.patch = 6;
  config.num_patches = 120;
  LightFieldData lf = make_light_field(config);
  la::Rng rng(1);
  const auto svd = la::randomized_svd(lf.a, 40, rng, 2);
  Real captured = 0;
  for (Real s : svd.s) captured += s * s;
  const Real total = lf.a.frobenius_norm() * lf.a.frobenius_norm();
  EXPECT_GT(captured / total, 0.95);
}

TEST(LightField, ViewSubsetRowsSelectCentralWindow) {
  LightFieldConfig config;
  config.views = 5;
  config.patch = 8;
  config.num_patches = 5;
  config.scene_size = 96;
  LightFieldData lf = make_light_field(config);
  const auto rows = lf.view_subset_rows(3);
  EXPECT_EQ(rows.size(), static_cast<std::size_t>(3 * 3 * 64));
  // All indices valid and distinct.
  std::set<la::Index> unique(rows.begin(), rows.end());
  EXPECT_EQ(unique.size(), rows.size());
  EXPECT_GE(*unique.begin(), 0);
  EXPECT_LT(*unique.rbegin(), lf.a.rows());
  // Central window: the (1,1) view block (views=5, offset (5-3)/2 = 1).
  EXPECT_EQ(rows[0], (1 * 5 + 1) * 64);
}

TEST(LightField, SceneTooSmallThrows) {
  LightFieldConfig config;
  config.scene_size = 10;
  EXPECT_THROW(make_light_field(config), std::invalid_argument);
}

TEST(Hyperspectral, MixtureStructureHolds) {
  HyperspectralConfig config;
  config.bands = 50;
  config.num_pixels = 200;
  config.num_endmembers = 6;
  config.mix_size = 2;
  config.noise_stddev = 0;
  HyperspectralData h = make_hyperspectral(config);
  EXPECT_EQ(h.a.rows(), 50);
  EXPECT_EQ(h.a.cols(), 200);
  EXPECT_EQ(h.endmembers.cols(), 6);
  // Every pixel must lie (noiselessly) in the endmember span: project onto
  // the 6-dim span and check the residual.
  la::HouseholderQr qr(h.endmembers);
  for (la::Index j = 0; j < 200; ++j) {
    const la::Vector coeff = qr.solve(h.a.col(j));
    la::Vector rec(50, 0.0);
    la::gemv(1, h.endmembers, coeff, 0, rec);
    for (std::size_t i = 0; i < 50; ++i) rec[i] -= h.a.col(j)[i];
    EXPECT_LT(la::nrm2(rec), 1e-8);
  }
}

TEST(Hyperspectral, MixSizeValidation) {
  HyperspectralConfig config;
  config.num_endmembers = 3;
  config.mix_size = 4;
  EXPECT_THROW(make_hyperspectral(config), std::invalid_argument);
}

TEST(Cells, DenserGeometryThanImagingSets) {
  // The cells set must need more numerical rank (relative to its size) than
  // the hyperspectral set — the "denser geometry" the paper reports.
  CellsConfig cc;
  cc.features = 60;
  cc.num_cells = 300;
  cc.num_phenotypes = 12;
  cc.phenotype_dim = 8;
  cc.shared_dims = 2;
  SubspaceData cells = make_cells(cc);
  EXPECT_EQ(cells.a.rows(), 60);
  EXPECT_EQ(cells.a.cols(), 300);
  EXPECT_EQ(numerical_rank(cells.a), 60);  // dense full-rank geometry
}

TEST(Datasets, RegistryMatchesTable1) {
  const auto& specs = all_datasets();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "Salina");
  EXPECT_EQ(specs[1].name, "Cancer Cells");
  EXPECT_EQ(specs[2].name, "Light Field");
  EXPECT_EQ(dataset_spec(DatasetId::kSalina).paper_dims, "204 x 54129");
  for (const auto& spec : specs) {
    EXPECT_FALSE(spec.l_grid.empty());
    EXPECT_GT(spec.bench_rows, 0);
    EXPECT_GT(spec.bench_cols, 0);
  }
}

TEST(Datasets, TestScaleGeneratorsProduceNormalizedData) {
  for (const auto id :
       {DatasetId::kSalina, DatasetId::kCancerCells, DatasetId::kLightField}) {
    const Matrix a = make_dataset(id, Scale::kTest);
    EXPECT_GT(a.rows(), 0);
    EXPECT_GT(a.cols(), 0);
    for (la::Index j = 0; j < std::min<la::Index>(a.cols(), 10); ++j) {
      EXPECT_NEAR(la::nrm2(a.col(j)), 1.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace extdict::data
