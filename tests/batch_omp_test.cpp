#include "sparsecoding/batch_omp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/random.hpp"
#include "sparsecoding/omp.hpp"

namespace extdict::sparsecoding {
namespace {

using la::Rng;
using la::Vector;

Real residual_of(const Matrix& dict, const SparseCode& code,
                 std::span<const Real> signal) {
  Vector rec(signal.begin(), signal.end());
  for (const auto& [atom, coeff] : code.entries) {
    la::axpy(-coeff, dict.col(atom), rec);
  }
  return la::nrm2(rec);
}

TEST(BatchOmp, GramIsPrecomputedOnce) {
  Rng rng(1);
  Matrix dict = rng.gaussian_matrix(12, 6, true);
  BatchOmp coder(dict, {.tolerance = 0.1});
  const Matrix& g = coder.gram();
  EXPECT_EQ(g.rows(), 6);
  EXPECT_EQ(g.cols(), 6);
  for (Index i = 0; i < 6; ++i) EXPECT_NEAR(g(i, i), 1.0, 1e-12);
}

TEST(BatchOmp, AgreesWithReferenceOmp) {
  // Same selections, same coefficients, same residual as the explicit-
  // residual implementation — across many random signals.
  Rng rng(2);
  Matrix dict = rng.gaussian_matrix(30, 45, true);
  BatchOmp coder(dict, {.tolerance = 0.15});
  for (int trial = 0; trial < 25; ++trial) {
    Vector signal(30);
    rng.fill_gaussian(signal);
    const SparseCode fast = coder.encode(signal);
    const SparseCode ref = omp_sparse_code(dict, signal, {.tolerance = 0.15});
    ASSERT_EQ(fast.entries.size(), ref.entries.size()) << "trial " << trial;
    for (std::size_t k = 0; k < fast.entries.size(); ++k) {
      EXPECT_EQ(fast.entries[k].first, ref.entries[k].first);
      EXPECT_NEAR(fast.entries[k].second, ref.entries[k].second, 1e-8);
    }
    EXPECT_NEAR(fast.residual_norm, ref.residual_norm, 1e-7);
  }
}

TEST(BatchOmp, ImplicitResidualMatchesExplicit) {
  // The ||r||² = ||x||² − α₀(S)ᵀγ shortcut must agree with an actual
  // reconstruction.
  Rng rng(3);
  Matrix dict = rng.gaussian_matrix(25, 50, true);
  BatchOmp coder(dict, {.tolerance = 0.1});
  for (int trial = 0; trial < 10; ++trial) {
    Vector signal(25);
    rng.fill_gaussian(signal);
    const SparseCode code = coder.encode(signal);
    EXPECT_NEAR(code.residual_norm, residual_of(dict, code, signal), 1e-7);
  }
}

TEST(BatchOmp, MeetsTolerance) {
  Rng rng(4);
  Matrix dict = rng.gaussian_matrix(20, 35, true);
  const Real eps = 0.25;
  BatchOmp coder(dict, {.tolerance = eps});
  Vector signal(20);
  rng.fill_gaussian(signal);
  const SparseCode code = coder.encode(signal);
  EXPECT_LE(code.residual_norm, eps * la::nrm2(signal) * (1 + 1e-9));
}

TEST(BatchOmp, HandlesDuplicateAtomsGracefully) {
  // Dictionary with an exactly repeated atom: the coder must skip the
  // dependent copy instead of corrupting the factorisation.
  Rng rng(5);
  Matrix dict = rng.gaussian_matrix(15, 8, true);
  for (Index i = 0; i < 15; ++i) dict(i, 7) = dict(i, 0);
  BatchOmp coder(dict, {.tolerance = 1e-8});
  Vector signal(15, 0.0);
  la::axpy(1.0, dict.col(0), signal);
  la::axpy(0.5, dict.col(3), signal);
  const SparseCode code = coder.encode(signal);
  EXPECT_LT(residual_of(dict, code, signal), 1e-7);
}

TEST(BatchOmp, EncodeAllMatchesPerColumn) {
  Rng rng(6);
  Matrix dict = rng.gaussian_matrix(18, 25, true);
  Matrix signals = rng.gaussian_matrix(18, 12);
  BatchOmp coder(dict, {.tolerance = 0.2});
  la::CscMatrix c = coder.encode_all(signals);
  EXPECT_EQ(c.rows(), 25);
  EXPECT_EQ(c.cols(), 12);
  for (Index j = 0; j < 12; ++j) {
    const SparseCode code = coder.encode(signals.col(j));
    EXPECT_EQ(static_cast<std::size_t>(c.col_nnz(j)), code.entries.size());
  }
}

TEST(BatchOmp, EncodeAllRowMismatchThrows) {
  Rng rng(7);
  Matrix dict = rng.gaussian_matrix(10, 5, true);
  Matrix signals(11, 3);
  BatchOmp coder(dict, {.tolerance = 0.1});
  EXPECT_THROW((void)coder.encode_all(signals), std::invalid_argument);
}

TEST(BatchOmp, UnionOfSubspaceSignalsGetKSparseCodes) {
  // Signals from a K-dim subspace whose spanning columns are in the
  // dictionary admit (at most) K-sparse representations — the §V-B
  // guarantee that powers all of ExD.
  Rng rng(8);
  const Index m = 40, k = 4;
  Matrix basis = rng.gaussian_matrix(m, k, true);
  // Dictionary: 12 random signals from the subspace (spanning it w.h.p.).
  Matrix dict(m, 12);
  Vector coeff(static_cast<std::size_t>(k));
  for (Index j = 0; j < 12; ++j) {
    rng.fill_gaussian(coeff);
    auto col = dict.col(j);
    std::fill(col.begin(), col.end(), 0.0);
    la::gemv(1, basis, coeff, 0, col);
  }
  dict.normalize_columns();
  BatchOmp coder(dict, {.tolerance = 1e-6});
  for (int trial = 0; trial < 10; ++trial) {
    Vector signal(static_cast<std::size_t>(m), 0.0);
    rng.fill_gaussian(coeff);
    la::gemv(1, basis, coeff, 0, signal);
    const SparseCode code = coder.encode(signal);
    EXPECT_LE(code.entries.size(), static_cast<std::size_t>(k));
    EXPECT_LT(code.residual_norm, 1e-5 * la::nrm2(signal));
  }
}

TEST(BatchOmp, EncodeFlopsMonotoneInIterations) {
  Rng rng(9);
  Matrix dict = rng.gaussian_matrix(10, 20, true);
  BatchOmp coder(dict, {.tolerance = 0.1});
  EXPECT_LT(coder.encode_flops(1), coder.encode_flops(5));
}

TEST(BatchOmp, MeteredFlopsMatchClosedFormExactly) {
  // The meter in encode() and the closed form in encode_flops() are two
  // derivations of the same count; on clean runs (every append accepted,
  // no exact-zero coefficients — generic for Gaussian data) they must
  // agree EXACTLY, for both atom-budget and tolerance stops. The old
  // model charged k³ for the triangular solves instead of Σ 2s²; this
  // test pins the corrected form against ground truth.
  Rng rng(10);
  const struct { Index m, l, max_atoms; Real tolerance; } cases[] = {
      {12, 24, 4, 0.0},   // stop on the atom budget
      {32, 64, 8, 0.0},   //   ... at a second shape
      {24, 48, 0, 0.3},   // stop on the residual tolerance
      {16, 16, 0, 0.05},  // square dictionary, deep runs
  };
  for (const auto& c : cases) {
    Matrix dict = rng.gaussian_matrix(c.m, c.l, true);
    BatchOmp coder(dict, {.tolerance = c.tolerance, .max_atoms = c.max_atoms});
    Vector signal(static_cast<std::size_t>(c.m));
    for (int trial = 0; trial < 8; ++trial) {
      rng.fill_gaussian(signal);
      const SparseCode code = coder.encode(signal);
      ASSERT_GT(code.iterations, 0);
      EXPECT_EQ(code.flops, coder.encode_flops(code.iterations))
          << "m=" << c.m << " l=" << c.l << " iterations=" << code.iterations;
    }
  }
}

}  // namespace
}  // namespace extdict::sparsecoding
