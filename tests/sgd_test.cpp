#include "baselines/sgd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/gram_operator.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "solvers/lasso.hpp"

namespace extdict::baselines {
namespace {

struct Problem {
  Matrix a;
  la::Vector y;
  la::Vector x_true;
};

Problem make_problem(Index m = 60, Index n = 90, std::uint64_t seed = 141) {
  la::Rng rng(seed);
  Problem p;
  p.a = rng.gaussian_matrix(m, n, true);
  p.x_true.assign(static_cast<std::size_t>(n), 0.0);
  for (const Index j : rng.sample_without_replacement(n, 4)) {
    p.x_true[static_cast<std::size_t>(j)] = 1.5;
  }
  p.y.assign(static_cast<std::size_t>(m), 0.0);
  la::gemv(1, p.a, p.x_true, 0, p.y);
  return p;
}

TEST(Sgd, ReducesTheObjective) {
  const Problem p = make_problem();
  const dist::Cluster cluster(dist::Topology{1, 2});
  SgdConfig config;
  config.lambda = 1e-3;
  config.batch_rows = 20;
  config.max_iterations = 600;
  config.target_objective = 1e-12;  // unreachable: run all iterations
  config.check_every = 100;
  const SgdResult r = sgd_lasso(cluster, p.a, p.y, config);

  core::DenseGramOperator op(p.a);
  const Real j0 = solvers::lasso_objective(op, p.y, la::Vector(90, 0.0), 1e-3);
  const Real jr = solvers::lasso_objective(op, p.y, r.x, 1e-3);
  EXPECT_LT(jr, 0.2 * j0);
  ASSERT_FALSE(r.objective_trace.empty());
  EXPECT_LE(r.objective_trace.back().second,
            r.objective_trace.front().second);
}

TEST(Sgd, StopsAtTargetObjective) {
  const Problem p = make_problem(60, 90, 142);
  const dist::Cluster cluster(dist::Topology{1, 2});

  core::DenseGramOperator op(p.a);
  const Real j0 = solvers::lasso_objective(op, p.y, la::Vector(90, 0.0), 1e-3);

  SgdConfig config;
  config.lambda = 1e-3;
  config.batch_rows = 20;
  config.max_iterations = 5000;
  config.target_objective = 0.5 * j0;  // easy target
  config.check_every = 10;
  const SgdResult r = sgd_lasso(cluster, p.a, p.y, config);
  EXPECT_TRUE(r.reached_target);
  EXPECT_LT(r.iterations, 5000);
  EXPECT_LE(r.final_objective, 0.5 * j0);
}

TEST(Sgd, DeterministicAcrossRankCounts) {
  // The shared-seed batch draw makes the algorithm equivalent on any rank
  // count (up to reduction order).
  const Problem p = make_problem(40, 60, 143);
  SgdConfig config;
  config.lambda = 1e-3;
  config.batch_rows = 16;
  config.max_iterations = 50;
  const SgdResult r1 = sgd_lasso(dist::Cluster(dist::Topology{1, 1}), p.a, p.y, config);
  const SgdResult r2 = sgd_lasso(dist::Cluster(dist::Topology{1, 3}), p.a, p.y, config);
  for (std::size_t i = 0; i < r1.x.size(); ++i) {
    EXPECT_NEAR(r1.x[i], r2.x[i], 1e-8);
  }
}

TEST(Sgd, CommunicationPerIterationIsBatchSized) {
  // The paper: "SGD's communication is limited to the batch-size". One
  // iteration on P ranks allreduces a batch-length vector.
  const Problem p = make_problem(50, 80, 144);
  SgdConfig config;
  config.batch_rows = 10;
  config.max_iterations = 4;
  config.target_objective = -1;  // no monitoring traffic
  const SgdResult r = sgd_lasso(dist::Cluster(dist::Topology{1, 4}), p.a, p.y, config);
  // allreduce = tree reduce + broadcast: 2*(P-1)*batch words per iteration,
  // plus the final gather of x (~N words).
  const std::uint64_t per_iter = 2u * 3 * 10;
  EXPECT_GE(r.stats.total_words(), 4 * per_iter);
  EXPECT_LE(r.stats.total_words(), 4 * per_iter + 2u * 80 + 64);
}

TEST(Sgd, KeepsOriginalDataResident) {
  // SGD provides no memory reduction: each rank holds its full A block.
  const Problem p = make_problem(50, 80, 145);
  SgdConfig config;
  config.max_iterations = 2;
  const SgdResult r = sgd_lasso(dist::Cluster(dist::Topology{1, 2}), p.a, p.y, config);
  for (const auto& c : r.stats.per_rank) {
    EXPECT_GE(c.peak_memory_words, 50u * 40);
  }
}

TEST(Sgd, SizeMismatchThrows) {
  const Problem p = make_problem(30, 40, 146);
  la::Vector bad(31);
  EXPECT_THROW(sgd_lasso(dist::Cluster(dist::Topology{1, 1}), p.a, bad, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace extdict::baselines
