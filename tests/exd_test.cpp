#include "core/exd.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/subspace.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::core {
namespace {

Matrix test_data(Index m = 40, Index n = 240, Index ns = 6, Index k = 4,
                 std::uint64_t seed = 21) {
  data::SubspaceModelConfig config;
  config.ambient_dim = m;
  config.num_columns = n;
  config.num_subspaces = ns;
  config.subspace_dim = k;
  config.seed = seed;
  return data::make_union_of_subspaces(config).a;
}

TEST(Exd, ShapesAndAtomProvenance) {
  const Matrix a = test_data();
  ExdConfig config;
  config.dictionary_size = 60;
  config.tolerance = 0.1;
  const ExdResult r = exd_transform(a, config);
  EXPECT_EQ(r.dictionary.rows(), 40);
  EXPECT_EQ(r.dictionary.cols(), 60);
  EXPECT_EQ(r.coefficients.rows(), 60);
  EXPECT_EQ(r.coefficients.cols(), 240);
  ASSERT_EQ(r.atom_indices.size(), 60u);
  // Atoms are distinct columns of A, copied verbatim.
  std::set<Index> unique(r.atom_indices.begin(), r.atom_indices.end());
  EXPECT_EQ(unique.size(), 60u);
  for (Index k2 = 0; k2 < 5; ++k2) {
    const Index src = r.atom_indices[static_cast<std::size_t>(k2)];
    for (Index i = 0; i < 40; ++i) {
      EXPECT_EQ(r.dictionary(i, k2), a(i, src));
    }
  }
}

TEST(Exd, MeetsErrorBoundOnSubspaceData) {
  // Enough sampled columns -> the Frobenius criterion of Eq. (1) holds.
  const Matrix a = test_data();
  ExdConfig config;
  config.dictionary_size = 80;  // >> Ns*K = 24
  config.tolerance = 0.1;
  const ExdResult r = exd_transform(a, config);
  EXPECT_LE(r.transformation_error, 0.1 * 1.01);
}

TEST(Exd, ZeroToleranceReachesMachinePrecisionWithFullRankDict) {
  const Matrix a = test_data(20, 100, 3, 3);
  ExdConfig config;
  config.dictionary_size = 50;  // > M: full rank w.h.p.
  config.tolerance = 1e-10;
  const ExdResult r = exd_transform(a, config);
  EXPECT_LE(r.transformation_error, 1e-8);
}

TEST(Exd, AlphaIsNnzOverN) {
  const Matrix a = test_data();
  ExdConfig config;
  config.dictionary_size = 60;
  const ExdResult r = exd_transform(a, config);
  EXPECT_NEAR(r.alpha(),
              static_cast<Real>(r.coefficients.nnz()) / 240.0, 1e-12);
}

TEST(Exd, SubspaceColumnsGetSparseCodes) {
  // On noiseless K=4 union data with a redundant dictionary, codes should
  // use about K atoms per column — far fewer than M.
  const Matrix a = test_data(40, 240, 6, 4);
  ExdConfig config;
  config.dictionary_size = 120;
  config.tolerance = 0.05;
  const ExdResult r = exd_transform(a, config);
  EXPECT_LE(r.alpha(), 8.0);
}

TEST(Exd, DictionarySizeValidation) {
  const Matrix a = test_data(10, 50, 2, 2);
  ExdConfig config;
  config.dictionary_size = 0;
  EXPECT_THROW(exd_transform(a, config), std::invalid_argument);
  config.dictionary_size = 51;
  EXPECT_THROW(exd_transform(a, config), std::invalid_argument);
}

TEST(Exd, DeterministicInSeed) {
  const Matrix a = test_data();
  ExdConfig config;
  config.dictionary_size = 50;
  config.seed = 5;
  const ExdResult r1 = exd_transform(a, config);
  const ExdResult r2 = exd_transform(a, config);
  EXPECT_EQ(r1.atom_indices, r2.atom_indices);
  EXPECT_EQ(r1.coefficients.nnz(), r2.coefficients.nnz());
  EXPECT_EQ(r1.transformation_error, r2.transformation_error);
}

TEST(Exd, WithDictionaryRowMismatchThrows) {
  const Matrix a = test_data(10, 50, 2, 2);
  Matrix d(11, 5);
  EXPECT_THROW(exd_transform_with_dictionary(a, std::move(d), {}),
               std::invalid_argument);
}

TEST(Exd, TransformationErrorAgreesWithDenseReconstruction) {
  la::Rng rng(3);
  const Matrix a = test_data(15, 40, 3, 3);
  ExdConfig config;
  config.dictionary_size = 25;
  config.tolerance = 0.2;
  const ExdResult r = exd_transform(a, config);
  // Dense check: ||A - D*C||_F / ||A||_F.
  Matrix dc = la::matmul(r.dictionary, r.coefficients.to_dense());
  Matrix diff = a;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) diff(i, j) -= dc(i, j);
  }
  EXPECT_NEAR(r.transformation_error,
              diff.frobenius_norm() / a.frobenius_norm(), 1e-10);
}

// Property sweep (the paper's two "novel and critical properties" of ExD,
// §VIII-B1): alpha decreases with L and with looser tolerance.
class ExdTunabilityTest : public ::testing::TestWithParam<Real> {};

TEST_P(ExdTunabilityTest, AlphaDecreasesAsLGrows) {
  const Real eps = GetParam();
  const Matrix a = test_data(40, 300, 6, 4, 33);
  Real prev_alpha = 1e18;
  for (const Index l : {60, 120, 240}) {
    ExdConfig config;
    config.dictionary_size = l;
    config.tolerance = eps;
    config.seed = 4;
    const ExdResult r = exd_transform(a, config);
    // Allow small non-monotonic jitter from the random dictionary draw.
    EXPECT_LE(r.alpha(), prev_alpha * 1.15) << "L=" << l << " eps=" << eps;
    prev_alpha = r.alpha();
  }
}

INSTANTIATE_TEST_SUITE_P(Tolerances, ExdTunabilityTest,
                         ::testing::Values(0.01, 0.05, 0.1));

TEST(Exd, LooserToleranceGivesSparserC) {
  const Matrix a = test_data(40, 300, 6, 4, 34);
  Real prev_alpha = 0;
  for (const Real eps : {0.1, 0.05, 0.01}) {
    ExdConfig config;
    config.dictionary_size = 100;
    config.tolerance = eps;
    config.seed = 9;
    const ExdResult r = exd_transform(a, config);
    EXPECT_GE(r.alpha(), prev_alpha) << "eps=" << eps;
    prev_alpha = r.alpha();
  }
}

}  // namespace
}  // namespace extdict::core
