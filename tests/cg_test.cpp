#include "solvers/cg.hpp"

#include <gtest/gtest.h>

#include "core/exd.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/random.hpp"

namespace extdict::solvers {
namespace {

using core::DenseGramOperator;
using core::TransformedGramOperator;
using la::Matrix;

TEST(ConjugateGradient, SolvesShiftedGramSystem) {
  la::Rng rng(1);
  const Matrix a = rng.gaussian_matrix(30, 20, true);
  DenseGramOperator op(a);
  la::Vector b(20);
  rng.fill_gaussian(b);

  CgConfig config;
  config.shift = 0.5;
  const CgResult r = conjugate_gradient(op, b, config);
  ASSERT_TRUE(r.converged);

  // Check against the Cholesky solution of (G + 0.5 I) x = b.
  Matrix g = la::gram(a);
  for (la::Index i = 0; i < 20; ++i) g(i, i) += 0.5;
  const la::Vector expected = la::Cholesky(g).solve(b);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(r.x[i], expected[i], 1e-7);
}

TEST(ConjugateGradient, ExactInNStepsOnSmallSpd) {
  // CG terminates in at most n iterations in exact arithmetic; a
  // well-conditioned 10-dim problem should converge in <= ~12 iterations.
  la::Rng rng(2);
  const Matrix a = rng.gaussian_matrix(25, 10, true);
  DenseGramOperator op(a);
  la::Vector b(10);
  rng.fill_gaussian(b);
  CgConfig config;
  config.shift = 1.0;
  const CgResult r = conjugate_gradient(op, b, config);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 14);
}

TEST(ConjugateGradient, ZeroRhsIsTrivial) {
  la::Rng rng(3);
  const Matrix a = rng.gaussian_matrix(10, 5, true);
  DenseGramOperator op(a);
  la::Vector zero(5, 0.0);
  const CgResult r = conjugate_gradient(op, zero, {});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  for (Real v : r.x) EXPECT_EQ(v, 0.0);
}

TEST(ConjugateGradient, Validation) {
  la::Rng rng(4);
  const Matrix a = rng.gaussian_matrix(10, 5, true);
  DenseGramOperator op(a);
  la::Vector wrong(6);
  EXPECT_THROW(conjugate_gradient(op, wrong, {}), std::invalid_argument);
  la::Vector b(5, 1.0);
  CgConfig bad;
  bad.shift = -1;
  EXPECT_THROW(conjugate_gradient(op, b, bad), std::invalid_argument);
}

TEST(ConjugateGradient, WorksThroughTransformedOperator) {
  la::Rng rng(5);
  const Matrix a = rng.gaussian_matrix(40, 50, true);
  core::ExdConfig exd;
  exd.dictionary_size = 40;
  exd.tolerance = 1e-9;
  const auto t = core::exd_transform(a, exd);
  DenseGramOperator dense(a);
  TransformedGramOperator transformed(t.dictionary, t.coefficients);

  la::Vector b(50);
  rng.fill_gaussian(b);
  CgConfig config;
  config.shift = 0.2;
  const CgResult rd = conjugate_gradient(dense, b, config);
  const CgResult rt = conjugate_gradient(transformed, b, config);
  ASSERT_TRUE(rd.converged);
  ASSERT_TRUE(rt.converged);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_NEAR(rd.x[i], rt.x[i], 1e-5);
}

}  // namespace
}  // namespace extdict::solvers
