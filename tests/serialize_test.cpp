#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/exd.hpp"
#include "core/gram_operator.hpp"
#include "data/subspace.hpp"
#include "la/blas.hpp"
#include "la/io.hpp"

namespace extdict::core {
namespace {

std::string base_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void cleanup(const std::string& base) {
  std::remove((base + ".dict.bin").c_str());
  std::remove((base + ".coeffs.mtx").c_str());
  std::remove((base + ".meta").c_str());
}

ExdResult make_transform(std::uint64_t seed = 501) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 30;
  config.num_columns = 120;
  config.num_subspaces = 4;
  config.subspace_dim = 3;
  config.seed = seed;
  const Matrix a = data::make_union_of_subspaces(config).a;
  ExdConfig exd;
  exd.dictionary_size = 40;
  exd.tolerance = 0.05;
  return exd_transform(a, exd);
}

TEST(Serialize, RoundTripPreservesEverything) {
  const ExdResult original = make_transform();
  const std::string base = base_path("extdict_transform");
  save_transform(original, base);
  const ExdResult loaded = load_transform(base);

  EXPECT_EQ(la::max_abs_diff(original.dictionary, loaded.dictionary), 0.0);
  EXPECT_EQ(original.coefficients.nnz(), loaded.coefficients.nnz());
  EXPECT_LT(la::max_abs_diff(original.coefficients.to_dense(),
                             loaded.coefficients.to_dense()),
            1e-15);
  EXPECT_EQ(original.atom_indices, loaded.atom_indices);
  EXPECT_DOUBLE_EQ(original.transformation_error, loaded.transformation_error);
  cleanup(base);
}

TEST(Serialize, LoadedTransformDrivesTheOperator) {
  const ExdResult original = make_transform(502);
  const std::string base = base_path("extdict_transform_op");
  save_transform(original, base);
  const ExdResult loaded = load_transform(base);

  TransformedGramOperator op_a(original.dictionary, original.coefficients);
  TransformedGramOperator op_b(loaded.dictionary, loaded.coefficients);
  la::Vector x(static_cast<std::size_t>(original.coefficients.cols()), 1.0);
  la::Vector ya(x.size()), yb(x.size());
  op_a.apply(x, ya);
  op_b.apply(x, yb);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(ya[i], yb[i], 1e-12);
  cleanup(base);
}

TEST(Serialize, MissingFilesThrow) {
  EXPECT_THROW(load_transform("/nonexistent/extdict"), std::runtime_error);
}

TEST(Serialize, CorruptMetadataThrows) {
  const ExdResult original = make_transform(503);
  const std::string base = base_path("extdict_transform_bad");
  save_transform(original, base);
  {
    std::ofstream meta(base + ".meta");
    meta << "not-a-transform v9\n";
  }
  EXPECT_THROW(load_transform(base), std::runtime_error);
  cleanup(base);
}

TEST(Serialize, ShapeMismatchDetected) {
  const ExdResult original = make_transform(504);
  const std::string base = base_path("extdict_transform_shape");
  save_transform(original, base);
  // Overwrite the dictionary with a wrong-shaped one.
  la::write_binary(Matrix(5, 7), base + ".dict.bin");
  EXPECT_THROW(load_transform(base), std::runtime_error);
  cleanup(base);
}

}  // namespace
}  // namespace extdict::core
