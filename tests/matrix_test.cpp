#include "la/matrix.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::la {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ConstructsZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, FromRowsLaysOutColumnMajor) {
  Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(1, 2), 6);
  // Column 1 is contiguous {2, 5}.
  auto c1 = m.col(1);
  EXPECT_EQ(c1[0], 2);
  EXPECT_EQ(c1[1], 5);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, ColSpanWritesThrough) {
  Matrix m(2, 2);
  auto c = m.col(1);
  c[0] = 7;
  c[1] = 8;
  EXPECT_EQ(m(0, 1), 7);
  EXPECT_EQ(m(1, 1), 8);
}

TEST(Matrix, SelectColumnsCopiesInOrder) {
  Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const std::array<Index, 2> idx = {2, 0};
  Matrix s = m.select_columns(idx);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_EQ(s(0, 0), 3);
  EXPECT_EQ(s(1, 0), 6);
  EXPECT_EQ(s(0, 1), 1);
}

TEST(Matrix, SelectColumnsRejectsOutOfRange) {
  Matrix m(2, 2);
  const std::array<Index, 1> idx = {5};
  EXPECT_THROW(m.select_columns(idx), std::out_of_range);
}

TEST(Matrix, SelectRows) {
  Matrix m = Matrix::from_rows({{1, 2}, {3, 4}, {5, 6}});
  const std::array<Index, 2> idx = {2, 1};
  Matrix s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s(0, 0), 5);
  EXPECT_EQ(s(1, 1), 4);
}

TEST(Matrix, TransposedRoundTrips) {
  Rng rng(1);
  Matrix m = rng.gaussian_matrix(5, 3);
  Matrix tt = m.transposed().transposed();
  EXPECT_EQ(max_abs_diff(m, tt), 0.0);
}

TEST(Matrix, AppendColumns) {
  Matrix a = Matrix::from_rows({{1}, {2}});
  Matrix b = Matrix::from_rows({{3, 4}, {5, 6}});
  a.append_columns(b);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a(0, 1), 3);
  EXPECT_EQ(a(1, 2), 6);
}

TEST(Matrix, AppendColumnsRowMismatchThrows) {
  Matrix a(2, 1);
  Matrix b(3, 1);
  EXPECT_THROW(a.append_columns(b), std::invalid_argument);
}

TEST(Matrix, AppendColumnsToEmptyAdoptsShape) {
  Matrix a;
  Matrix b = Matrix::from_rows({{1, 2}});
  a.append_columns(b);
  EXPECT_EQ(a.rows(), 1);
  EXPECT_EQ(a.cols(), 2);
}

TEST(Matrix, FrobeniusNormMatchesDefinition) {
  Matrix m = Matrix::from_rows({{3, 0}, {0, 4}});
  EXPECT_NEAR(m.frobenius_norm(), 5.0, 1e-12);
}

TEST(Matrix, FrobeniusNormOverflowSafe) {
  Matrix m(1, 2);
  m(0, 0) = 1e200;
  m(0, 1) = 1e200;
  EXPECT_NEAR(m.frobenius_norm(), std::sqrt(2.0) * 1e200, 1e188);
}

TEST(Matrix, NormalizeColumnsGivesUnitNorms) {
  Rng rng(3);
  Matrix m = rng.gaussian_matrix(10, 5);
  m.normalize_columns();
  for (Index j = 0; j < m.cols(); ++j) {
    EXPECT_NEAR(nrm2(m.col(j)), 1.0, 1e-12);
  }
}

TEST(Matrix, NormalizeColumnsLeavesZeroColumn) {
  Matrix m(3, 1);
  m.normalize_columns();
  EXPECT_EQ(nrm2(m.col(0)), 0.0);
}

TEST(Matrix, MemoryWordsCountsEntries) {
  Matrix m(7, 9);
  EXPECT_EQ(m.memory_words(), 63u);
}

TEST(Matrix, MaxAbsDiffShapeMismatchThrows) {
  Matrix a(2, 2), b(3, 2);
  EXPECT_THROW(max_abs_diff(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace extdict::la
