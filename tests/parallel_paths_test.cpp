// The OpenMP kernels switch to parallel execution above size thresholds
// (gemv_t > 256 cols, spmv_t > 1024 cols, encode_all, transformation_error,
// oASIS downdating > 512 cols). The rest of the suite mostly runs below
// those thresholds; these tests exercise the parallel branches explicitly
// and check they agree with the serial semantics.

#include <gtest/gtest.h>

#include "baselines/oasis.hpp"
#include "core/exd.hpp"
#include "la/blas.hpp"
#include "la/csc_matrix.hpp"
#include "la/random.hpp"
#include "sparsecoding/batch_omp.hpp"

namespace extdict {
namespace {

using la::Index;
using la::Matrix;
using la::Real;

TEST(ParallelPaths, GemvTransposedLargeColumnCount) {
  la::Rng rng(1);
  const Index cols = 700;  // > 256: parallel branch
  const Matrix a = rng.gaussian_matrix(40, cols);
  la::Vector x(40), y(static_cast<std::size_t>(cols));
  rng.fill_gaussian(x);
  la::gemv_t(1, a, x, 0, y);
  for (Index j = 0; j < cols; j += 97) {
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], la::dot(a.col(j), x), 1e-11);
  }
}

TEST(ParallelPaths, GemvTransposedBetaAccumulation) {
  la::Rng rng(2);
  const Index cols = 600;
  const Matrix a = rng.gaussian_matrix(30, cols);
  la::Vector x(30), y(static_cast<std::size_t>(cols), 2.0);
  rng.fill_gaussian(x);
  la::gemv_t(3, a, x, 0.5, y);
  for (Index j = 0; j < cols; j += 83) {
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], 3 * la::dot(a.col(j), x) + 1.0,
                1e-10);
  }
}

TEST(ParallelPaths, SpmvTransposedLargeColumnCount) {
  la::Rng rng(3);
  const Index rows = 50, cols = 3000;  // > 1024: parallel branch
  la::CscMatrix::Builder builder(rows, cols);
  for (Index j = 0; j < cols; ++j) {
    for (Index i = 0; i < rows; ++i) {
      if (rng.uniform() < 0.05) builder.add(i, rng.gaussian());
    }
    builder.commit_column();
  }
  const la::CscMatrix m = std::move(builder).build();
  const Matrix dense = m.to_dense();
  la::Vector w(static_cast<std::size_t>(rows));
  rng.fill_gaussian(w);
  la::Vector y1(static_cast<std::size_t>(cols)), y2(static_cast<std::size_t>(cols));
  m.spmv_t(w, y1);
  la::gemv_t(1, dense, w, 0, y2);
  for (Index j = 0; j < cols; j += 211) {
    EXPECT_NEAR(y1[static_cast<std::size_t>(j)], y2[static_cast<std::size_t>(j)],
                1e-11);
  }
}

TEST(ParallelPaths, EncodeAllManyColumnsMatchesSingleEncodes) {
  la::Rng rng(4);
  const Matrix dict = rng.gaussian_matrix(40, 80, true);
  const Matrix signals = rng.gaussian_matrix(40, 500);
  const sparsecoding::BatchOmp coder(dict, {.tolerance = 0.2, .max_atoms = 0});
  const la::CscMatrix c = coder.encode_all(signals);
  for (Index j = 0; j < signals.cols(); j += 61) {
    const auto code = coder.encode(signals.col(j));
    ASSERT_EQ(static_cast<std::size_t>(c.col_nnz(j)), code.entries.size());
    const auto rows = c.col_rows(j);
    const auto vals = c.col_values(j);
    // entries are sorted by the builder; sort the reference too.
    auto ref = code.entries;
    std::sort(ref.begin(), ref.end());
    for (std::size_t k = 0; k < ref.size(); ++k) {
      EXPECT_EQ(rows[k], ref[k].first);
      EXPECT_NEAR(vals[k], ref[k].second, 1e-12);
    }
  }
}

TEST(ParallelPaths, TransformationErrorLargeN) {
  // > 64 columns: parallel reduction branch of transformation_error.
  la::Rng rng(5);
  const Matrix a = rng.gaussian_matrix(30, 400, true);
  core::ExdConfig config;
  config.dictionary_size = 30;
  config.tolerance = 1e-9;
  const auto r = core::exd_transform(a, config);
  // Cross-check against a dense reconstruction.
  Matrix dc = la::matmul(r.dictionary, r.coefficients.to_dense());
  Real num = 0, den = 0;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) {
      const Real d = a(i, j) - dc(i, j);
      num += d * d;
      den += a(i, j) * a(i, j);
    }
  }
  EXPECT_NEAR(r.transformation_error, std::sqrt(num / den), 1e-10);
}

TEST(ParallelPaths, OasisLargeColumnDowndating) {
  // > 512 columns engages the parallel residual downdate.
  la::Rng rng(6);
  Matrix basis = rng.gaussian_matrix(40, 5, true);
  Matrix a(40, 900);
  la::Vector coeff(5);
  for (Index j = 0; j < 900; ++j) {
    rng.fill_gaussian(coeff);
    auto col = a.col(j);
    std::fill(col.begin(), col.end(), Real{0});
    la::gemv(1, basis, coeff, 0, col);
  }
  a.normalize_columns();
  const auto r = baselines::oasis_transform(a, 1e-6, 7);
  // Rank-5 data: adaptive selection needs ~5 columns.
  EXPECT_LE(r.dictionary.cols(), 8);
  EXPECT_LE(r.transformation_error, 1e-5);
}

}  // namespace
}  // namespace extdict
