#include "la/cholesky.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::la {
namespace {

// Random SPD matrix B = Xᵀ X + d I.
Matrix random_spd(Index n, Rng& rng, Real ridge = 0.5) {
  Matrix x = rng.gaussian_matrix(n + 3, n);
  Matrix g = gram(x);
  for (Index i = 0; i < n; ++i) g(i, i) += ridge;
  return g;
}

TEST(Cholesky, FactorReconstructs) {
  Rng rng(1);
  Matrix a = random_spd(6, rng);
  Cholesky chol(a);
  const Matrix& l = chol.factor();
  Matrix llt = matmul(l, l, Trans::kNo, Trans::kYes);
  EXPECT_LT(max_abs_diff(a, llt), 1e-10);
}

TEST(Cholesky, SolveMatchesDirect) {
  Rng rng(2);
  Matrix a = random_spd(8, rng);
  Vector b(8);
  rng.fill_gaussian(b);
  Vector x = Cholesky(a).solve(b);
  Vector ax(8);
  gemv(1, a, x, 0, ax);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

TEST(Cholesky, RejectsNonSquare) {
  Matrix a(3, 4);
  EXPECT_THROW(Cholesky{a}, std::invalid_argument);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = Matrix::from_rows({{1, 2}, {2, 1}});  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{a}, std::domain_error);
}

TEST(ProgressiveCholesky, MatchesBatchFactorAtEveryStep) {
  Rng rng(3);
  const Index n = 7;
  Matrix g = random_spd(n, rng);
  ProgressiveCholesky prog(n);
  for (Index k = 0; k < n; ++k) {
    Vector g_new(static_cast<std::size_t>(k));
    for (Index i = 0; i < k; ++i) g_new[static_cast<std::size_t>(i)] = g(i, k);
    ASSERT_TRUE(prog.append(g_new, g(k, k)));
    // Cross-check the solve against the batch factorisation of the leading
    // principal submatrix.
    Matrix sub(k + 1, k + 1);
    for (Index i = 0; i <= k; ++i) {
      for (Index j = 0; j <= k; ++j) sub(i, j) = g(i, j);
    }
    Vector rhs(static_cast<std::size_t>(k + 1));
    rng.fill_gaussian(rhs);
    Vector x_prog = rhs;
    prog.solve_in_place(x_prog);
    Vector x_batch = Cholesky(sub).solve(rhs);
    for (std::size_t i = 0; i < x_prog.size(); ++i) {
      EXPECT_NEAR(x_prog[i], x_batch[i], 1e-8);
    }
  }
}

TEST(ProgressiveCholesky, DetectsDependentAtom) {
  // Gram of two identical unit atoms: second append must fail.
  ProgressiveCholesky prog(2);
  ASSERT_TRUE(prog.append({}, 1.0));
  Vector g_new = {1.0};  // perfectly correlated
  EXPECT_FALSE(prog.append(g_new, 1.0));
  EXPECT_EQ(prog.size(), 1);
}

TEST(ProgressiveCholesky, CapacityEnforced) {
  ProgressiveCholesky prog(1);
  ASSERT_TRUE(prog.append({}, 2.0));
  Vector g_new = {0.1};
  EXPECT_THROW(prog.append(g_new, 1.0), std::logic_error);
}

TEST(ProgressiveCholesky, ResetAllowsReuse) {
  ProgressiveCholesky prog(2);
  ASSERT_TRUE(prog.append({}, 4.0));
  prog.reset();
  EXPECT_EQ(prog.size(), 0);
  ASSERT_TRUE(prog.append({}, 9.0));
  Vector b = {3.0};
  prog.solve_in_place(b);
  EXPECT_NEAR(b[0], 3.0 / 9.0, 1e-14);
}

TEST(ProgressiveCholesky, SizeMismatchThrows) {
  ProgressiveCholesky prog(3);
  ASSERT_TRUE(prog.append({}, 1.0));
  Vector too_long = {0.1, 0.2};
  EXPECT_THROW(prog.append(too_long, 1.0), std::invalid_argument);
  Vector b = {1.0, 2.0};
  EXPECT_THROW(prog.solve_in_place(b), std::invalid_argument);
}

}  // namespace
}  // namespace extdict::la
