// The observability layer's contracts: counters and spans are safe under
// concurrent writers, JSON emission is deterministic and round-trips, and
// the dist_gram phase spans partition each rank's wall time end to end.

#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/dist_gram.hpp"
#include "la/random.hpp"
#include "util/json.hpp"

namespace extdict::util {
namespace {

TEST(Metrics, CountersAccumulateAcrossConcurrentWriters) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Half through the name-resolving convenience path, half through a
      // resolved cell — both must be race-free (tsan covers this test).
      MetricsRegistry::Counter& cell = registry.counter("shared");
      for (int i = 0; i < kAddsPerThread; ++i) {
        if (i % 2 == 0) {
          registry.add("shared", 1);
        } else {
          cell.add(1);
        }
        registry.record_span("phase", 1e-9);
        registry.update_max("peak", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.value("shared"),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(registry.span_count("phase"),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(registry.value("peak"), kAddsPerThread - 1);
}

TEST(Metrics, HandlesStayValidAcrossReset) {
  MetricsRegistry registry;
  MetricsRegistry::Counter& cell = registry.counter("kept");
  cell.add(5);
  registry.reset();
  EXPECT_EQ(registry.value("kept"), 0u);
  cell.add(2);  // the reference still points at the live cell
  EXPECT_EQ(registry.value("kept"), 2u);
}

TEST(Metrics, DisabledRegistryDropsConvenienceMutations) {
  MetricsRegistry registry;
  registry.set_enabled(false);
  registry.add("c", 10);
  registry.record_span("s", 1.0);
  registry.update_max("m", 7);
  EXPECT_EQ(registry.value("c"), 0u);
  EXPECT_EQ(registry.span_count("s"), 0u);
  EXPECT_EQ(registry.value("m"), 0u);
  registry.set_enabled(true);
  registry.add("c", 3);
  EXPECT_EQ(registry.value("c"), 3u);
}

TEST(Metrics, JsonSnapshotRoundTrips) {
  MetricsRegistry registry;
  registry.add("b.flops", 123456789);
  registry.add("a.words", 42);
  registry.record_span("solve", 0.25);
  registry.record_span("solve", 0.5);

  const Json snapshot = registry.to_json();
  const Json reparsed = Json::parse(snapshot.dump(2));
  EXPECT_EQ(reparsed.at("counters").at("a.words").as_u64(), 42u);
  EXPECT_EQ(reparsed.at("counters").at("b.flops").as_u64(), 123456789u);
  EXPECT_EQ(reparsed.at("spans").at("solve").at("count").as_u64(), 2u);
  EXPECT_DOUBLE_EQ(reparsed.at("spans").at("solve").at("seconds").as_double(),
                   registry.span_seconds("solve"));
  // Deterministic: same state, same bytes.
  EXPECT_EQ(snapshot.dump(2), registry.to_json().dump(2));
  // Lexicographic key order in the snapshot.
  const auto& counters = snapshot.at("counters").as_object();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.words");
  EXPECT_EQ(counters[1].first, "b.flops");
}

TEST(Histogram, ExactMomentsAndSaturatingBuckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);

  h.record(1e-3);
  h.record(2e-3);
  h.record(4e-3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 7e-3);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 4e-3);

  // Out-of-range values keep the exact moments; only buckets saturate.
  h.record(0.0);      // below range → first bucket
  h.record(1e9);      // above range → last bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(Histogram, QuantilesLandWithinBucketResolution) {
  // 1000 evenly spread values in (0, 1]: the q-quantile is ~q, and a
  // log-spaced bucket is at most a 10^0.1 ≈ 1.26x band, so assert to ~30%.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double estimate = h.quantile(q);
    EXPECT_GE(estimate, q * 0.7) << "q=" << q;
    EXPECT_LE(estimate, q * 1.3) << "q=" << q;
  }
  // Extremes stay clamped inside the exact observed [min, max].
  EXPECT_GE(h.quantile(0.0), 1e-3);
  EXPECT_LE(h.quantile(0.0), 2e-3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(Histogram, SubRangeObservationsDoNotInflateLowQuantiles) {
  // Regression: bucket 0 absorbs every observation below kFirstLower, and
  // the quantile interpolation used to take kFirstLower (1e-9) as the
  // bucket's base — with sub-range observations the low quantiles came
  // back ≈1e-9 even when nearly all mass sat at 1e-12. The base is now
  // floored at the exact observed min.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1e-12);
  h.record(1.0);  // keeps the final [min, max] clamp from hiding the bug
  EXPECT_DOUBLE_EQ(h.min(), 1e-12);
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 1e-12);
  EXPECT_LT(median, 1e-10);  // the old interpolation returned ≈1.1e-9

  // Non-positive observations make the log base unusable: interpolation
  // falls back to linear and stays inside bucket 0.
  Histogram z;
  for (int i = 0; i < 100; ++i) z.record(0.0);
  z.record(1.0);
  const double zero_median = z.quantile(0.5);
  EXPECT_GE(zero_median, 0.0);
  EXPECT_LE(zero_median, Histogram::bucket_upper(0));
}

TEST(Histogram, MergeCombinesCellsExactly) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(1e-4);
  for (int i = 0; i < 300; ++i) b.record(1e-2);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 400u);
  EXPECT_NEAR(a.sum(), 100 * 1e-4 + 300 * 1e-2, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 1e-4);
  EXPECT_DOUBLE_EQ(a.max(), 1e-2);
  // 3/4 of the mass sits at 1e-2, so the median follows it.
  EXPECT_GT(a.quantile(0.5), 1e-3);
}

TEST(Histogram, RecordIsExactUnderConcurrentWriters) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record((t + 1) * 1e-6);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), kThreads * 1e-6);
  double expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (t + 1) * 1e-6 * kPerThread;
  EXPECT_NEAR(h.sum(), expected_sum, expected_sum * 1e-9);
}

TEST(Histogram, JsonSnapshotIsDeterministicAndSchemaStable) {
  Histogram a, b;
  for (const double v : {1e-3, 2e-3, 5e-2, 5e-2, 1.5}) {
    a.record(v);
    b.record(v);
  }
  EXPECT_EQ(a.to_json().dump(2), b.to_json().dump(2));
  const Json j = Json::parse(a.to_json().dump());
  EXPECT_EQ(j.at("count").as_u64(), 5u);
  EXPECT_DOUBLE_EQ(j.at("min").as_double(), 1e-3);
  EXPECT_DOUBLE_EQ(j.at("max").as_double(), 1.5);
  const auto& buckets = j.at("buckets").as_array();
  ASSERT_FALSE(buckets.empty());
  std::uint64_t total = 0;
  double last_le = 0;
  for (const auto& bucket : buckets) {
    EXPECT_GT(bucket.at("le").as_double(), last_le);  // ascending bounds
    last_le = bucket.at("le").as_double();
    total += bucket.at("count").as_u64();
  }
  EXPECT_EQ(total, 5u);  // non-empty buckets partition the observations
}

TEST(Metrics, RegistryHistogramsObserveResetAndEmit) {
  MetricsRegistry registry;
  registry.observe("lat", 1e-3);
  registry.observe("lat", 2e-3);
  EXPECT_EQ(registry.histogram_count("lat"), 2u);
  EXPECT_EQ(registry.histogram_count("never"), 0u);

  registry.set_enabled(false);
  registry.observe("lat", 5e-3);  // dropped by the gate
  EXPECT_EQ(registry.histogram_count("lat"), 2u);
  registry.set_enabled(true);

  const Json snapshot = registry.to_json();
  EXPECT_EQ(snapshot.at("histograms").at("lat").at("count").as_u64(), 2u);

  Histogram& cell = registry.histogram("lat");
  registry.reset();
  EXPECT_EQ(registry.histogram_count("lat"), 0u);
  cell.record(1.0);  // handle survives reset, like counter cells
  EXPECT_EQ(registry.histogram_count("lat"), 1u);
}

TEST(Json, ParseDumpRoundTripsTrickyValues) {
  const char* text =
      R"({"s":"a\"b\\c\né","n":[0,-1,3.25,1e-3,9007199254740991],)"
      R"("b":[true,false,null],"o":{"nested":{"deep":1}}})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.at("s").as_string(), "a\"b\\c\né");
  EXPECT_EQ(j.at("n").as_array()[4].as_u64(), 9007199254740991ull);
  EXPECT_DOUBLE_EQ(j.at("n").as_array()[3].as_double(), 1e-3);
  EXPECT_TRUE(j.at("b").as_array()[2].is_null());
  // Round trip preserves everything, including insertion order.
  const Json again = Json::parse(j.dump());
  EXPECT_EQ(again.dump(), j.dump());
  EXPECT_EQ(j.at("o").at("nested").at("deep").as_u64(), 1u);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("tru"), std::runtime_error);
}

TEST(Metrics, DistGramSpansPartitionRankWallTime) {
  // End to end: run the distributed Gram update and check the emitted spans
  // against each other — per-phase spans nest inside the rank-total span,
  // and counts follow the run's shape exactly.
  using core::GramStrategy;
  using la::Index;
  using la::Real;

  MetricsRegistry& metrics = MetricsRegistry::global();
  metrics.reset();

  constexpr Index m = 32, l = 24, n = 128;
  constexpr int iterations = 4;
  const Index p = 4;
  la::Matrix d(m, l);
  la::Rng rng(11);
  rng.fill_gaussian(std::span<Real>(d.data(), static_cast<std::size_t>(d.size())));
  la::CscMatrix::Builder builder(l, n);
  for (Index j = 0; j < n; ++j) {
    builder.add(j % l, Real{1});
    builder.add((j * 5 + 1) % l, Real{-1});
    builder.commit_column();
  }
  const la::CscMatrix c = std::move(builder).build();
  const dist::Cluster cluster(dist::Topology{1, p});
  const la::Vector x0(static_cast<std::size_t>(n), Real{1});

  const auto result = core::dist_gram_apply(cluster, d, c, x0, iterations,
                                            GramStrategy::kPartitionedDictionary);

  EXPECT_EQ(metrics.span_count("dist_gram.rank"), static_cast<std::uint64_t>(p));
  EXPECT_EQ(metrics.span_count("dist_gram.update"),
            static_cast<std::uint64_t>(p) * iterations);
  EXPECT_EQ(metrics.span_count("dist_gram.normalize"),
            static_cast<std::uint64_t>(p) * iterations);
  EXPECT_EQ(metrics.span_count("dist_gram.gather"),
            static_cast<std::uint64_t>(p));
  EXPECT_EQ(metrics.value("dist_gram.update_flops"), result.update_flops);
  EXPECT_EQ(metrics.span_count("cluster.run"), 1u);

  const double rank_total = metrics.span_seconds("dist_gram.rank");
  const double phase_sum = metrics.span_seconds("dist_gram.update") +
                           metrics.span_seconds("dist_gram.normalize") +
                           metrics.span_seconds("dist_gram.gather");
  // The phases are disjoint sub-intervals of each rank body: their sum can
  // exceed the rank total only by clock resolution.
  EXPECT_LE(phase_sum, rank_total + 1e-3);
  // And they cover it up to per-rank setup (partition bookkeeping, buffer
  // allocation) — loose bound so scheduler noise cannot flake CI.
  EXPECT_GE(phase_sum, 0.1 * rank_total - 1e-3);
  // Each rank body runs inside the cluster.run wall interval.
  EXPECT_LE(rank_total,
            static_cast<double>(p) * metrics.span_seconds("cluster.run") + 1e-3);
}

}  // namespace
}  // namespace extdict::util
