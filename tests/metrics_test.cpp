// The observability layer's contracts: counters and spans are safe under
// concurrent writers, JSON emission is deterministic and round-trips, and
// the dist_gram phase spans partition each rank's wall time end to end.

#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/dist_gram.hpp"
#include "la/random.hpp"
#include "util/json.hpp"

namespace extdict::util {
namespace {

TEST(Metrics, CountersAccumulateAcrossConcurrentWriters) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Half through the name-resolving convenience path, half through a
      // resolved cell — both must be race-free (tsan covers this test).
      MetricsRegistry::Counter& cell = registry.counter("shared");
      for (int i = 0; i < kAddsPerThread; ++i) {
        if (i % 2 == 0) {
          registry.add("shared", 1);
        } else {
          cell.add(1);
        }
        registry.record_span("phase", 1e-9);
        registry.update_max("peak", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.value("shared"),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(registry.span_count("phase"),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(registry.value("peak"), kAddsPerThread - 1);
}

TEST(Metrics, HandlesStayValidAcrossReset) {
  MetricsRegistry registry;
  MetricsRegistry::Counter& cell = registry.counter("kept");
  cell.add(5);
  registry.reset();
  EXPECT_EQ(registry.value("kept"), 0u);
  cell.add(2);  // the reference still points at the live cell
  EXPECT_EQ(registry.value("kept"), 2u);
}

TEST(Metrics, DisabledRegistryDropsConvenienceMutations) {
  MetricsRegistry registry;
  registry.set_enabled(false);
  registry.add("c", 10);
  registry.record_span("s", 1.0);
  registry.update_max("m", 7);
  EXPECT_EQ(registry.value("c"), 0u);
  EXPECT_EQ(registry.span_count("s"), 0u);
  EXPECT_EQ(registry.value("m"), 0u);
  registry.set_enabled(true);
  registry.add("c", 3);
  EXPECT_EQ(registry.value("c"), 3u);
}

TEST(Metrics, JsonSnapshotRoundTrips) {
  MetricsRegistry registry;
  registry.add("b.flops", 123456789);
  registry.add("a.words", 42);
  registry.record_span("solve", 0.25);
  registry.record_span("solve", 0.5);

  const Json snapshot = registry.to_json();
  const Json reparsed = Json::parse(snapshot.dump(2));
  EXPECT_EQ(reparsed.at("counters").at("a.words").as_u64(), 42u);
  EXPECT_EQ(reparsed.at("counters").at("b.flops").as_u64(), 123456789u);
  EXPECT_EQ(reparsed.at("spans").at("solve").at("count").as_u64(), 2u);
  EXPECT_DOUBLE_EQ(reparsed.at("spans").at("solve").at("seconds").as_double(),
                   registry.span_seconds("solve"));
  // Deterministic: same state, same bytes.
  EXPECT_EQ(snapshot.dump(2), registry.to_json().dump(2));
  // Lexicographic key order in the snapshot.
  const auto& counters = snapshot.at("counters").as_object();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.words");
  EXPECT_EQ(counters[1].first, "b.flops");
}

TEST(Json, ParseDumpRoundTripsTrickyValues) {
  const char* text =
      R"({"s":"a\"b\\c\né","n":[0,-1,3.25,1e-3,9007199254740991],)"
      R"("b":[true,false,null],"o":{"nested":{"deep":1}}})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.at("s").as_string(), "a\"b\\c\né");
  EXPECT_EQ(j.at("n").as_array()[4].as_u64(), 9007199254740991ull);
  EXPECT_DOUBLE_EQ(j.at("n").as_array()[3].as_double(), 1e-3);
  EXPECT_TRUE(j.at("b").as_array()[2].is_null());
  // Round trip preserves everything, including insertion order.
  const Json again = Json::parse(j.dump());
  EXPECT_EQ(again.dump(), j.dump());
  EXPECT_EQ(j.at("o").at("nested").at("deep").as_u64(), 1u);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("tru"), std::runtime_error);
}

TEST(Metrics, DistGramSpansPartitionRankWallTime) {
  // End to end: run the distributed Gram update and check the emitted spans
  // against each other — per-phase spans nest inside the rank-total span,
  // and counts follow the run's shape exactly.
  using core::GramStrategy;
  using la::Index;
  using la::Real;

  MetricsRegistry& metrics = MetricsRegistry::global();
  metrics.reset();

  constexpr Index m = 32, l = 24, n = 128;
  constexpr int iterations = 4;
  const Index p = 4;
  la::Matrix d(m, l);
  la::Rng rng(11);
  rng.fill_gaussian(std::span<Real>(d.data(), static_cast<std::size_t>(d.size())));
  la::CscMatrix::Builder builder(l, n);
  for (Index j = 0; j < n; ++j) {
    builder.add(j % l, Real{1});
    builder.add((j * 5 + 1) % l, Real{-1});
    builder.commit_column();
  }
  const la::CscMatrix c = std::move(builder).build();
  const dist::Cluster cluster(dist::Topology{1, p});
  const la::Vector x0(static_cast<std::size_t>(n), Real{1});

  const auto result = core::dist_gram_apply(cluster, d, c, x0, iterations,
                                            GramStrategy::kPartitionedDictionary);

  EXPECT_EQ(metrics.span_count("dist_gram.rank"), static_cast<std::uint64_t>(p));
  EXPECT_EQ(metrics.span_count("dist_gram.update"),
            static_cast<std::uint64_t>(p) * iterations);
  EXPECT_EQ(metrics.span_count("dist_gram.normalize"),
            static_cast<std::uint64_t>(p) * iterations);
  EXPECT_EQ(metrics.span_count("dist_gram.gather"),
            static_cast<std::uint64_t>(p));
  EXPECT_EQ(metrics.value("dist_gram.update_flops"), result.update_flops);
  EXPECT_EQ(metrics.span_count("cluster.run"), 1u);

  const double rank_total = metrics.span_seconds("dist_gram.rank");
  const double phase_sum = metrics.span_seconds("dist_gram.update") +
                           metrics.span_seconds("dist_gram.normalize") +
                           metrics.span_seconds("dist_gram.gather");
  // The phases are disjoint sub-intervals of each rank body: their sum can
  // exceed the rank total only by clock resolution.
  EXPECT_LE(phase_sum, rank_total + 1e-3);
  // And they cover it up to per-rank setup (partition bookkeeping, buffer
  // allocation) — loose bound so scheduler noise cannot flake CI.
  EXPECT_GE(phase_sum, 0.1 * rank_total - 1e-3);
  // Each rank body runs inside the cluster.run wall interval.
  EXPECT_LE(rank_total,
            static_cast<double>(p) * metrics.span_seconds("cluster.run") + 1e-3);
}

}  // namespace
}  // namespace extdict::util
