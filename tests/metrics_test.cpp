// The observability layer's contracts: counters and spans are safe under
// concurrent writers, JSON emission is deterministic and round-trips, and
// the dist_gram phase spans partition each rank's wall time end to end.

#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/dist_gram.hpp"
#include "la/random.hpp"
#include "util/json.hpp"

namespace extdict::util {
namespace {

TEST(Metrics, CountersAccumulateAcrossConcurrentWriters) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Half through the name-resolving convenience path, half through a
      // resolved cell — both must be race-free (tsan covers this test).
      MetricsRegistry::Counter& cell = registry.counter("shared");
      for (int i = 0; i < kAddsPerThread; ++i) {
        if (i % 2 == 0) {
          registry.add("shared", 1);
        } else {
          cell.add(1);
        }
        registry.record_span("phase", 1e-9);
        registry.update_max("peak", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.value("shared"),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(registry.span_count("phase"),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(registry.value("peak"), kAddsPerThread - 1);
}

TEST(Metrics, HandlesStayValidAcrossReset) {
  MetricsRegistry registry;
  MetricsRegistry::Counter& cell = registry.counter("kept");
  cell.add(5);
  registry.reset();
  EXPECT_EQ(registry.value("kept"), 0u);
  cell.add(2);  // the reference still points at the live cell
  EXPECT_EQ(registry.value("kept"), 2u);
}

TEST(Metrics, DisabledRegistryDropsConvenienceMutations) {
  MetricsRegistry registry;
  registry.set_enabled(false);
  registry.add("c", 10);
  registry.record_span("s", 1.0);
  registry.update_max("m", 7);
  EXPECT_EQ(registry.value("c"), 0u);
  EXPECT_EQ(registry.span_count("s"), 0u);
  EXPECT_EQ(registry.value("m"), 0u);
  registry.set_enabled(true);
  registry.add("c", 3);
  EXPECT_EQ(registry.value("c"), 3u);
}

TEST(Metrics, JsonSnapshotRoundTrips) {
  MetricsRegistry registry;
  registry.add("b.flops", 123456789);
  registry.add("a.words", 42);
  registry.record_span("solve", 0.25);
  registry.record_span("solve", 0.5);
  registry.gauge("q.depth").set(3);
  registry.observe_windowed("lat.total", 1e-3);

  const Json snapshot = registry.to_json();
  const Json reparsed = Json::parse(snapshot.dump(2));
  EXPECT_TRUE(reparsed.at("enabled").as_bool());
  EXPECT_EQ(reparsed.at("snapshot_seq").as_u64(), 1u);
  EXPECT_EQ(reparsed.at("counters").at("a.words").as_u64(), 42u);
  EXPECT_EQ(reparsed.at("counters").at("b.flops").as_u64(), 123456789u);
  EXPECT_EQ(reparsed.at("spans").at("solve").at("count").as_u64(), 2u);
  EXPECT_DOUBLE_EQ(reparsed.at("spans").at("solve").at("seconds").as_double(),
                   registry.span_seconds("solve"));
  EXPECT_DOUBLE_EQ(reparsed.at("gauges").at("q.depth").at("value").as_double(),
                   3.0);
  EXPECT_EQ(
      reparsed.at("window_quantiles").at("lat.total").at("cumulative")
          .at("count").as_u64(),
      1u);
  // Deterministic up to the monotone snapshot_seq: same state, same bytes
  // once the sequence number is overwritten.
  Json second = registry.to_json();
  EXPECT_EQ(second.at("snapshot_seq").as_u64(), 2u);
  second["snapshot_seq"] = std::uint64_t{1};
  EXPECT_EQ(snapshot.dump(2), second.dump(2));
  // Lexicographic key order in the snapshot.
  const auto& counters = snapshot.at("counters").as_object();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.words");
  EXPECT_EQ(counters[1].first, "b.flops");
}

TEST(Metrics, SnapshotSeqSurvivesResetButStateClears) {
  MetricsRegistry registry;
  registry.add("c", 1);
  registry.gauge("g").set(9);
  (void)registry.to_json();
  (void)registry.to_json();
  registry.reset();
  const Json after = registry.to_json();
  // The sequence keeps climbing across reset() so consumers can order
  // dumps and detect the reset; the state itself is cleared.
  EXPECT_EQ(after.at("snapshot_seq").as_u64(), 3u);
  EXPECT_EQ(registry.value("c"), 0u);
  EXPECT_EQ(registry.gauge_value("g"), 0);
}

TEST(Histogram, ExactMomentsAndSaturatingBuckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);

  h.record(1e-3);
  h.record(2e-3);
  h.record(4e-3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 7e-3);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 4e-3);

  // Out-of-range values keep the exact moments; only buckets saturate.
  h.record(0.0);      // below range → first bucket
  h.record(1e9);      // above range → last bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(Histogram, QuantilesLandWithinBucketResolution) {
  // 1000 evenly spread values in (0, 1]: the q-quantile is ~q, and a
  // log-spaced bucket is at most a 10^0.1 ≈ 1.26x band, so assert to ~30%.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i * 1e-3);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double estimate = h.quantile(q);
    EXPECT_GE(estimate, q * 0.7) << "q=" << q;
    EXPECT_LE(estimate, q * 1.3) << "q=" << q;
  }
  // Extremes stay clamped inside the exact observed [min, max].
  EXPECT_GE(h.quantile(0.0), 1e-3);
  EXPECT_LE(h.quantile(0.0), 2e-3);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(Histogram, SubRangeObservationsDoNotInflateLowQuantiles) {
  // Regression: bucket 0 absorbs every observation below kFirstLower, and
  // the quantile interpolation used to take kFirstLower (1e-9) as the
  // bucket's base — with sub-range observations the low quantiles came
  // back ≈1e-9 even when nearly all mass sat at 1e-12. The base is now
  // floored at the exact observed min.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(1e-12);
  h.record(1.0);  // keeps the final [min, max] clamp from hiding the bug
  EXPECT_DOUBLE_EQ(h.min(), 1e-12);
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 1e-12);
  EXPECT_LT(median, 1e-10);  // the old interpolation returned ≈1.1e-9

  // Non-positive observations make the log base unusable: interpolation
  // falls back to linear and stays inside bucket 0.
  Histogram z;
  for (int i = 0; i < 100; ++i) z.record(0.0);
  z.record(1.0);
  const double zero_median = z.quantile(0.5);
  EXPECT_GE(zero_median, 0.0);
  EXPECT_LE(zero_median, Histogram::bucket_upper(0));
}

TEST(Histogram, MergeCombinesCellsExactly) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(1e-4);
  for (int i = 0; i < 300; ++i) b.record(1e-2);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 400u);
  EXPECT_NEAR(a.sum(), 100 * 1e-4 + 300 * 1e-2, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 1e-4);
  EXPECT_DOUBLE_EQ(a.max(), 1e-2);
  // 3/4 of the mass sits at 1e-2, so the median follows it.
  EXPECT_GT(a.quantile(0.5), 1e-3);
}

TEST(Histogram, RecordIsExactUnderConcurrentWriters) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record((t + 1) * 1e-6);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.min(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max(), kThreads * 1e-6);
  double expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += (t + 1) * 1e-6 * kPerThread;
  EXPECT_NEAR(h.sum(), expected_sum, expected_sum * 1e-9);
}

TEST(Histogram, JsonSnapshotIsDeterministicAndSchemaStable) {
  Histogram a, b;
  for (const double v : {1e-3, 2e-3, 5e-2, 5e-2, 1.5}) {
    a.record(v);
    b.record(v);
  }
  EXPECT_EQ(a.to_json().dump(2), b.to_json().dump(2));
  const Json j = Json::parse(a.to_json().dump());
  EXPECT_EQ(j.at("count").as_u64(), 5u);
  EXPECT_DOUBLE_EQ(j.at("min").as_double(), 1e-3);
  EXPECT_DOUBLE_EQ(j.at("max").as_double(), 1.5);
  const auto& buckets = j.at("buckets").as_array();
  ASSERT_FALSE(buckets.empty());
  std::uint64_t total = 0;
  double last_le = 0;
  for (const auto& bucket : buckets) {
    EXPECT_GT(bucket.at("le").as_double(), last_le);  // ascending bounds
    last_le = bucket.at("le").as_double();
    total += bucket.at("count").as_u64();
  }
  EXPECT_EQ(total, 5u);  // non-empty buckets partition the observations
}

TEST(Metrics, RegistryHistogramsObserveResetAndEmit) {
  MetricsRegistry registry;
  registry.observe("lat", 1e-3);
  registry.observe("lat", 2e-3);
  EXPECT_EQ(registry.histogram_count("lat"), 2u);
  EXPECT_EQ(registry.histogram_count("never"), 0u);

  registry.set_enabled(false);
  registry.observe("lat", 5e-3);  // dropped by the gate
  EXPECT_EQ(registry.histogram_count("lat"), 2u);
  registry.set_enabled(true);

  const Json snapshot = registry.to_json();
  EXPECT_EQ(snapshot.at("histograms").at("lat").at("count").as_u64(), 2u);

  Histogram& cell = registry.histogram("lat");
  registry.reset();
  EXPECT_EQ(registry.histogram_count("lat"), 0u);
  cell.record(1.0);  // handle survives reset, like counter cells
  EXPECT_EQ(registry.histogram_count("lat"), 1u);
}

TEST(Gauge, SetAddSubTrackValueAndPeak) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.peak(), 0);
  g.set(5);
  g.add(3);
  g.sub(6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.peak(), 8);  // peak was the post-add level
  g.set(-4);               // levels may go transiently negative
  EXPECT_EQ(g.value(), -4);
  EXPECT_EQ(g.peak(), 8);  // a lower set never rewrites the peak
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.peak(), 0);
}

TEST(Gauge, GuardBalancesOnEveryPath) {
  Gauge g;
  {
    const GaugeGuard a(g);
    EXPECT_EQ(g.value(), 1);
    {
      const GaugeGuard b(g, 4);
      EXPECT_EQ(g.value(), 5);
      EXPECT_EQ(g.peak(), 5);
    }
    EXPECT_EQ(g.value(), 1);
  }
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.peak(), 5);  // peaks persist after the level drains
}

TEST(Gauge, ConcurrentGuardsDrainToZero) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) {
        const GaugeGuard guard(g);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), 0);
  EXPECT_GE(g.peak(), 1);
  EXPECT_LE(g.peak(), kThreads);
}

TEST(Metrics, RegistryGaugesResolveMutateAndGate) {
  MetricsRegistry registry;
  registry.gauge_set("depth", 7);
  registry.gauge_add("depth", 2);
  registry.gauge_sub("depth", 4);
  EXPECT_EQ(registry.gauge_value("depth"), 5);
  EXPECT_EQ(registry.gauge_value("never"), 0);

  registry.set_enabled(false);
  registry.gauge_add("depth", 100);  // convenience path honors the gate
  EXPECT_EQ(registry.gauge_value("depth"), 5);
  // Direct references stay live so RAII +-/- pairs never unbalance across
  // a mid-flight toggle.
  registry.gauge("depth").add(1);
  EXPECT_EQ(registry.gauge_value("depth"), 6);
  registry.set_enabled(true);
}

TEST(Histogram, MergeAcrossDisjointDecades) {
  // Merge sources whose observations occupy disjoint log decades: every
  // bucket, the exact moments, and the quantile envelope must all combine.
  Histogram lo, hi;
  for (int i = 0; i < 900; ++i) lo.record(1e-6);
  for (int i = 0; i < 100; ++i) hi.record(1e+2);
  lo.merge_from(hi);
  EXPECT_EQ(lo.count(), 1000u);
  EXPECT_DOUBLE_EQ(lo.min(), 1e-6);
  EXPECT_DOUBLE_EQ(lo.max(), 1e+2);
  EXPECT_NEAR(lo.sum(), 900 * 1e-6 + 100 * 1e+2, 1e-6);
  // 90% of the mass is tiny; p50 stays in the low decade, p99 in the high.
  EXPECT_LT(lo.quantile(0.50), 1e-5);
  EXPECT_GT(lo.quantile(0.99), 1e+1);
}

TEST(WindowedHistogram, RotationExpiresOldEpochs) {
  // Deterministic clock via the _at hooks: slot_millis=100, 5 slots, so the
  // live window at time T covers epochs [T/100 - 4, T/100].
  WindowedHistogram w(100);
  w.record_at(1e-3, 0);
  w.record_at(1e-3, 50);
  EXPECT_EQ(w.window_count_at(0), 2u);
  // Still inside the 5-slot window four epochs later.
  EXPECT_EQ(w.window_count_at(499), 2u);
  // One more epoch and the slot has aged out of the merge range.
  EXPECT_EQ(w.window_count_at(500), 0u);
  // The cumulative view never expires.
  EXPECT_EQ(w.cumulative().count(), 2u);

  // Writing into a recycled slot clears the stale epoch's contents.
  w.record_at(5e-3, 500);
  EXPECT_EQ(w.window_count_at(500), 1u);
  EXPECT_EQ(w.cumulative().count(), 3u);
}

TEST(WindowedHistogram, EmptyWindowQuantileClampsToZero) {
  WindowedHistogram w(100);
  EXPECT_EQ(w.window_count_at(0), 0u);
  EXPECT_DOUBLE_EQ(w.window_quantile_at(0.99, 0), 0.0);
  w.record_at(2.5, 0);
  // After everything expires the quantile is 0 again, not a stale value.
  EXPECT_DOUBLE_EQ(w.window_quantile_at(0.99, 10'000), 0.0);
}

TEST(WindowedHistogram, StationaryWindowMatchesCumulative) {
  // Under stationary load inside one window span, the windowed quantile and
  // the cumulative quantile see the same observations and must agree to the
  // histogram's documented log-bucket resolution (a 10^0.1 ≈ 1.26x band).
  WindowedHistogram w(1000);
  for (int i = 0; i < 1000; ++i) {
    w.record_at((i + 1) * 1e-4, i);  // all inside epoch 0
  }
  for (const double q : {0.5, 0.9, 0.99}) {
    const double windowed = w.window_quantile_at(q, 999);
    const double cumulative = w.cumulative().quantile(q);
    EXPECT_NEAR(windowed, cumulative, cumulative * 1e-12) << "q=" << q;
  }
  EXPECT_EQ(w.window_count_at(999), w.cumulative().count());
}

TEST(WindowedHistogram, RecordsRacingRotationStayTsanCleanAndCumulativeExact) {
  // Writers hammer a 1 ms slot clock (real time) while a reader keeps
  // merging the window: the all-atomic design must be race-free (TSan runs
  // this test) and the cumulative view must count every observation even
  // when rotation drops some from the live window.
  WindowedHistogram w(1);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&w, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)w.window_quantile(0.5);
      (void)w.window_count();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&w] {
      for (int i = 0; i < kPerThread; ++i) w.record(1e-4);
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(w.cumulative().count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_LE(w.window_count(), w.cumulative().count());
}

TEST(Metrics, RegistryWindowedHistogramsObserveAndEmit) {
  MetricsRegistry registry;
  registry.observe_windowed("lat", 1e-3);
  registry.observe_windowed("lat", 2e-3);
  EXPECT_EQ(registry.windowed_histogram("lat").cumulative().count(), 2u);

  registry.set_enabled(false);
  registry.observe_windowed("lat", 5e-3);  // dropped by the gate
  EXPECT_EQ(registry.windowed_histogram("lat").cumulative().count(), 2u);
  registry.set_enabled(true);

  const Json snapshot = registry.to_json();
  const Json& cell = snapshot.at("window_quantiles").at("lat");
  EXPECT_EQ(cell.at("cumulative").at("count").as_u64(), 2u);
  EXPECT_EQ(cell.at("window").at("count").as_u64(), 2u);

  const Json sample = registry.telemetry_sample();
  EXPECT_EQ(sample.at("window_quantiles").at("lat").at("cumulative_count")
                .as_u64(),
            2u);

  registry.reset();
  EXPECT_EQ(registry.windowed_histogram("lat").cumulative().count(), 0u);
}

TEST(Json, ParseDumpRoundTripsTrickyValues) {
  const char* text =
      R"({"s":"a\"b\\c\né","n":[0,-1,3.25,1e-3,9007199254740991],)"
      R"("b":[true,false,null],"o":{"nested":{"deep":1}}})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.at("s").as_string(), "a\"b\\c\né");
  EXPECT_EQ(j.at("n").as_array()[4].as_u64(), 9007199254740991ull);
  EXPECT_DOUBLE_EQ(j.at("n").as_array()[3].as_double(), 1e-3);
  EXPECT_TRUE(j.at("b").as_array()[2].is_null());
  // Round trip preserves everything, including insertion order.
  const Json again = Json::parse(j.dump());
  EXPECT_EQ(again.dump(), j.dump());
  EXPECT_EQ(j.at("o").at("nested").at("deep").as_u64(), 1u);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("tru"), std::runtime_error);
}

TEST(Metrics, DistGramSpansPartitionRankWallTime) {
  // End to end: run the distributed Gram update and check the emitted spans
  // against each other — per-phase spans nest inside the rank-total span,
  // and counts follow the run's shape exactly.
  using core::GramStrategy;
  using la::Index;
  using la::Real;

  MetricsRegistry& metrics = MetricsRegistry::global();
  metrics.reset();

  constexpr Index m = 32, l = 24, n = 128;
  constexpr int iterations = 4;
  const Index p = 4;
  la::Matrix d(m, l);
  la::Rng rng(11);
  rng.fill_gaussian(std::span<Real>(d.data(), static_cast<std::size_t>(d.size())));
  la::CscMatrix::Builder builder(l, n);
  for (Index j = 0; j < n; ++j) {
    builder.add(j % l, Real{1});
    builder.add((j * 5 + 1) % l, Real{-1});
    builder.commit_column();
  }
  const la::CscMatrix c = std::move(builder).build();
  const dist::Cluster cluster(dist::Topology{1, p});
  const la::Vector x0(static_cast<std::size_t>(n), Real{1});

  const auto result = core::dist_gram_apply(cluster, d, c, x0, iterations,
                                            GramStrategy::kPartitionedDictionary);

  EXPECT_EQ(metrics.span_count("dist_gram.rank"), static_cast<std::uint64_t>(p));
  EXPECT_EQ(metrics.span_count("dist_gram.update"),
            static_cast<std::uint64_t>(p) * iterations);
  EXPECT_EQ(metrics.span_count("dist_gram.normalize"),
            static_cast<std::uint64_t>(p) * iterations);
  EXPECT_EQ(metrics.span_count("dist_gram.gather"),
            static_cast<std::uint64_t>(p));
  EXPECT_EQ(metrics.value("dist_gram.update_flops"), result.update_flops);
  EXPECT_EQ(metrics.span_count("cluster.run"), 1u);

  const double rank_total = metrics.span_seconds("dist_gram.rank");
  const double phase_sum = metrics.span_seconds("dist_gram.update") +
                           metrics.span_seconds("dist_gram.normalize") +
                           metrics.span_seconds("dist_gram.gather");
  // The phases are disjoint sub-intervals of each rank body: their sum can
  // exceed the rank total only by clock resolution.
  EXPECT_LE(phase_sum, rank_total + 1e-3);
  // And they cover it up to per-rank setup (partition bookkeeping, buffer
  // allocation) — loose bound so scheduler noise cannot flake CI.
  EXPECT_GE(phase_sum, 0.1 * rank_total - 1e-3);
  // Each rank body runs inside the cluster.run wall interval.
  EXPECT_LE(rank_total,
            static_cast<double>(p) * metrics.span_seconds("cluster.run") + 1e-3);
}

}  // namespace
}  // namespace extdict::util
