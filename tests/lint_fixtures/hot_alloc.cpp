// Lint fixture: allocates inside a loop marked hot by EXTDICT_HOT_ASSERT.
// Never compiled — scanned by extdict-lint's self-test.
// extdict-lint-expect: hot-loop-allocation

#include <vector>

void fixture_kernel(std::vector<int>& out, int n) {
  for (int i = 0; i < n; ++i) {
    EXTDICT_HOT_ASSERT(i >= 0, "index went negative");
    out.push_back(i);  // heap growth inside the hot loop
  }
}
