// Lint fixture: a TraceScope constructed inside a hot kernel file — even
// disabled, every call pays the enabled-check, which per-element call rates
// turn into measurable overhead. The second use shows the waiver syntax for
// a deliberate, phase-granularity exception. Parameters are raw pointers on
// purpose: this fixture isolates trace-in-hot-path from the shape-contract
// rule. Never compiled — scanned by extdict-lint's self-test.
// extdict-lint-expect: trace-in-hot-path

#include "util/trace.hpp"

namespace extdict::la {

double fixture_dot(const double* x, const double* y, int n) {
  const util::TraceScope scope(util::TraceRecorder::global(), "la.dot");
  double s = 0;
  for (int i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void fixture_batch_marker(const double* data, int n) {
  // One instant per whole batch, not per element: phase-level granularity.
  // extdict-lint: allow(trace-in-hot-path) one event per batch call, not per element
  util::TraceRecorder::global().instant("la.batch", "n",
                                        static_cast<unsigned long long>(n));
  (void)data;
}

}  // namespace extdict::la
