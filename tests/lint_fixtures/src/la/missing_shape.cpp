// Lint fixture: a public kernel entry under src/la/ that takes dimensioned
// arguments but never validates shapes. Never compiled — scanned by
// extdict-lint's self-test.
// extdict-lint-expect: missing-shape-contract

#include "la/matrix.hpp"

namespace extdict::la {

void fixture_gemv(const Matrix& a, std::span<const Real> x, std::span<Real> y) {
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) {
      y[static_cast<std::size_t>(i)] += a(i, j) * x[static_cast<std::size_t>(j)];
    }
  }
}

}  // namespace extdict::la
