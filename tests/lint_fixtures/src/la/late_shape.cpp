// Lint fixture: the shape contract exists but only fires AFTER the kernel
// has already walked the data — too late to protect the first pass. Never
// compiled — scanned by extdict-lint's self-test.
// extdict-lint-expect: missing-shape-contract

#include "la/matrix.hpp"

namespace extdict::la {

Real fixture_sum(const Matrix& a, std::span<const Real> w) {
  Real s = 0;
  for (Index j = 0; j < a.cols(); ++j) {
    s += a(0, j) * w[static_cast<std::size_t>(j)];
  }
  EXTDICT_REQUIRE_SHAPE(static_cast<Index>(w.size()) == a.cols(),
                        "fixture_sum: weight size mismatch");
  return s;
}

}  // namespace extdict::la
