// Lint fixture: a well-behaved kernel — validates shapes up front, keeps the
// hot loop allocation-free, uses only annotated sync, includes only headers.
// Also exercises the waiver syntax on a helper. Never compiled — scanned by
// extdict-lint's self-test.
// extdict-lint-expect: none

#include "la/matrix.hpp"
#include "util/sync.hpp"

namespace extdict::la {

void fixture_scale(const Matrix& a, std::span<Real> y) {
  EXTDICT_REQUIRE_SHAPE(static_cast<Index>(y.size()) == a.rows(),
                        "fixture_scale: output size mismatch");
  for (Index i = 0; i < a.rows(); ++i) {
    EXTDICT_HOT_ASSERT(i < a.rows(), "bounds");
    y[static_cast<std::size_t>(i)] *= a(i, 0);
  }
}

// extdict-lint: allow(missing-shape-contract) delegates to fixture_scale
void fixture_scale_twice(const Matrix& a, std::span<Real> y) {
  fixture_scale(a, y);
  fixture_scale(a, y);
}

}  // namespace extdict::la
