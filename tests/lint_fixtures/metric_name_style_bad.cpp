// extdict-lint-expect: metric-name-style
// Metric names that break the lowercase dot-path convention: CamelCase,
// dash-separated, a double dot (empty segment), a trailing dot in a
// concatenation prefix, and an empty name.

#include <cstdint>
#include <string>

struct Registry {
  void add(const std::string&, std::uint64_t) {}
  struct G { void set(std::int64_t) {} };
  G& gauge(const std::string&) { static G g; return g; }
  void observe_windowed(const std::string&, double) {}
};

void instrument(Registry& registry, int rank) {
  registry.add("Serve.Queue.Depth", 1);
  registry.add("serve-cache-hits", 1);
  registry.gauge("serve..inflight").set(3);
  registry.add("serve.lane." + std::to_string(rank), 1);
  registry.observe_windowed("", 1e-3);
}
