// Lint fixture: declares raw standard-library sync primitives outside
// util/sync.hpp. Never compiled — scanned by extdict-lint's self-test.
// extdict-lint-expect: naked-sync-primitive

#include <condition_variable>
#include <mutex>

namespace fixture {

struct Queue {
  std::mutex mu;                // naked primitive: invisible to -Wthread-safety
  std::condition_variable cv;   // ditto
};

}  // namespace fixture
