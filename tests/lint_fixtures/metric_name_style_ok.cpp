// extdict-lint-expect: none
// Compliant metric names: plain dot-paths, a unit-suffixed histogram, a
// well-formed concatenation prefix, a waived legacy key, a commented-out
// bad call (no call at all), and a non-literal first argument (out of this
// rule's reach — the variable's contents are checked where it is defined).

#include <cstdint>
#include <string>

struct Registry {
  void add(const std::string&, std::uint64_t) {}
  struct G { void set(std::int64_t) {} };
  G& gauge(const std::string&) { static G g; return g; }
  void observe_windowed(const std::string&, double) {}
};

void instrument(Registry& registry, int rank, const std::string& dynamic) {
  registry.add("serve.submitted", 1);
  registry.gauge("serve.queue.depth").set(3);
  registry.observe_windowed("serve.latency.total_seconds", 1e-3);
  registry.add("trace.events.rank" + std::to_string(rank), 1);
  // extdict-lint: allow(metric-name-style) legacy dashboard key, renamed in v2
  registry.add("Legacy-Dashboard-Key", 1);
  // registry.add("Commented.Out.Bad.Name", 1);
  registry.add(dynamic, 1);
}
