// extdict-lint-expect: omp-default-none
// Two parallel directives without default(none): one single-line, one with
// a backslash continuation that hides the (absent) clause on a later line.

#include <cstddef>

void saxpy(double a, const double* x, double* y, std::size_t n) {
#pragma omp parallel for schedule(static)
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += a * x[i];
  }
}

void scale_rows(double* m, std::size_t rows, std::size_t cols, double s) {
#pragma omp parallel for schedule(dynamic, 1) \
    shared(m, rows, cols, s)
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m[r * cols + c] *= s;
    }
  }
}
