// extdict-lint-expect: none
// Compliant parallel directives: default(none) inline, default(none) behind
// a backslash continuation, a waived directive, a commented-out pragma (no
// directive at all), and a nested `omp for` (inherits the region's rules —
// only `parallel` takes a default clause).

#include <cstddef>

void saxpy(double a, const double* x, double* y, std::size_t n) {
#pragma omp parallel for schedule(static) default(none) shared(a, x, y, n)
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += a * x[i];
  }
}

void scale_rows(double* m, std::size_t rows, std::size_t cols, double s) {
#pragma omp parallel for schedule(dynamic, 1) \
    default(none) shared(m, rows, cols, s)
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m[r * cols + c] *= s;
    }
  }
}

void legacy_kernel(double* y, std::size_t n) {
  // extdict-lint: allow(omp-default-none) mirrors upstream reference kernel
#pragma omp parallel for
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = 0.0;
  }
}

void nested_region(double* y, std::size_t n) {
// #pragma omp parallel for   <- commented out, not a directive
#pragma omp parallel default(none) shared(y, n)
  {
#pragma omp for schedule(static)
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = 1.0;
    }
  }
}
