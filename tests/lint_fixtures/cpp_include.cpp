// Lint fixture: includes a translation unit instead of a header. Never
// compiled — scanned by extdict-lint's self-test.
// extdict-lint-expect: cpp-include

#include "la/matrix.cpp"

int fixture_entry() { return 0; }
