#include "sparsecoding/omp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::sparsecoding {
namespace {

using la::Rng;
using la::Vector;

Vector reconstruct(const Matrix& dict, const SparseCode& code, Index m) {
  Vector r(static_cast<std::size_t>(m), 0.0);
  for (const auto& [atom, coeff] : code.entries) {
    la::axpy(coeff, dict.col(atom), r);
  }
  return r;
}

Real residual_of(const Matrix& dict, const SparseCode& code,
                 std::span<const Real> signal) {
  Vector rec = reconstruct(dict, code, dict.rows());
  for (std::size_t i = 0; i < rec.size(); ++i) rec[i] -= signal[i];
  return la::nrm2(rec);
}

TEST(Omp, ExactlyRecoversSignalInDictionary) {
  // The signal IS an atom: one iteration, one entry, zero residual.
  Rng rng(1);
  Matrix dict = rng.gaussian_matrix(20, 10, true);
  SparseCode code = omp_sparse_code(dict, dict.col(3), {.tolerance = 1e-10});
  ASSERT_EQ(code.entries.size(), 1u);
  EXPECT_EQ(code.entries[0].first, 3);
  EXPECT_NEAR(code.entries[0].second, 1.0, 1e-10);
  EXPECT_LT(code.residual_norm, 1e-9);
}

TEST(Omp, RecoversSparseCombination) {
  Rng rng(2);
  Matrix dict = rng.gaussian_matrix(30, 15, true);
  Vector signal(30, 0.0);
  la::axpy(2.0, dict.col(1), signal);
  la::axpy(-1.5, dict.col(7), signal);
  la::axpy(0.75, dict.col(12), signal);
  SparseCode code = omp_sparse_code(dict, signal, {.tolerance = 1e-9});
  EXPECT_EQ(code.entries.size(), 3u);
  EXPECT_LT(residual_of(dict, code, signal), 1e-8);
}

TEST(Omp, ResidualMeetsTolerance) {
  Rng rng(3);
  Matrix dict = rng.gaussian_matrix(25, 40, true);
  Vector signal(25);
  rng.fill_gaussian(signal);
  const Real eps = 0.2;
  SparseCode code = omp_sparse_code(dict, signal, {.tolerance = eps});
  EXPECT_LE(code.residual_norm, eps * la::nrm2(signal) * (1 + 1e-10));
  // Reported residual is consistent with the actual reconstruction.
  EXPECT_NEAR(residual_of(dict, code, signal), code.residual_norm, 1e-8);
}

TEST(Omp, ZeroSignalGivesEmptyCode) {
  Rng rng(4);
  Matrix dict = rng.gaussian_matrix(10, 5, true);
  Vector zero(10, 0.0);
  SparseCode code = omp_sparse_code(dict, zero, {.tolerance = 0.1});
  EXPECT_TRUE(code.entries.empty());
  EXPECT_EQ(code.residual_norm, 0.0);
}

TEST(Omp, MaxAtomsCapRespected) {
  Rng rng(5);
  Matrix dict = rng.gaussian_matrix(30, 30, true);
  Vector signal(30);
  rng.fill_gaussian(signal);
  SparseCode code =
      omp_sparse_code(dict, signal, {.tolerance = 1e-12, .max_atoms = 4});
  EXPECT_LE(code.entries.size(), 4u);
}

TEST(Omp, SignalSizeMismatchThrows) {
  Matrix dict(8, 4);
  Vector bad(5);
  EXPECT_THROW(omp_sparse_code(dict, bad, {}), std::invalid_argument);
}

TEST(Omp, TighterToleranceNeverSparser) {
  Rng rng(6);
  Matrix dict = rng.gaussian_matrix(40, 60, true);
  Vector signal(40);
  rng.fill_gaussian(signal);
  const SparseCode loose = omp_sparse_code(dict, signal, {.tolerance = 0.3});
  const SparseCode tight = omp_sparse_code(dict, signal, {.tolerance = 0.05});
  EXPECT_GE(tight.entries.size(), loose.entries.size());
}

}  // namespace
}  // namespace extdict::sparsecoding
