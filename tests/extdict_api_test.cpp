#include "core/extdict.hpp"

#include <gtest/gtest.h>

#include "data/subspace.hpp"
#include "la/random.hpp"

namespace extdict::core {
namespace {

Matrix test_data(Index n = 300, std::uint64_t seed = 111) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 40;
  config.num_columns = n;
  config.num_subspaces = 5;
  config.subspace_dim = 4;
  config.seed = seed;
  return data::make_union_of_subspaces(config).a;
}

TEST(DefaultLGrid, CoversSensibleRange) {
  const auto grid = default_l_grid(100, 1000);
  ASSERT_GE(grid.size(), 3u);
  EXPECT_GE(grid.front(), 8);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
  EXPECT_LE(grid.back(), 1000);
  // Something at/above min(M, N) so OMP can always converge.
  EXPECT_GE(grid.back(), 100);
}

TEST(ExtDictApi, PreprocessWithFixedLSkipsTuning) {
  const Matrix a = test_data();
  const auto platform = dist::PlatformSpec::idataplex({1, 4});
  ExtDict::Options options;
  options.tolerance = 0.1;
  options.fixed_l = 70;
  const ExtDict engine = ExtDict::preprocess(a, platform, options);
  EXPECT_EQ(engine.tuned_l(), 70);
  EXPECT_FALSE(engine.tuning().has_value());
  EXPECT_LE(engine.transform().transformation_error, 0.1 * 1.05);
}

TEST(ExtDictApi, PreprocessTunesWhenNoFixedL) {
  const Matrix a = test_data();
  const auto platform = dist::PlatformSpec::idataplex({2, 8});
  ExtDict::Options options;
  options.tolerance = 0.1;
  options.l_grid = {60, 120, 200};
  const ExtDict engine = ExtDict::preprocess(a, platform, options);
  ASSERT_TRUE(engine.tuning().has_value());
  EXPECT_EQ(engine.tuned_l(), engine.tuning()->best_l);
  EXPECT_GT(engine.preprocessing_ms(), 0.0);
}

TEST(ExtDictApi, GramOperatorIsUsable) {
  const Matrix a = test_data();
  ExtDict::Options options;
  options.fixed_l = 80;
  const ExtDict engine =
      ExtDict::preprocess(a, dist::PlatformSpec::idataplex({1, 1}), options);
  la::Rng rng(1);
  la::Vector x(static_cast<std::size_t>(a.cols())), y(x.size());
  rng.fill_gaussian(x);
  engine.gram_operator().apply(x, y);
  Real sum = 0;
  for (Real v : y) sum += std::abs(v);
  EXPECT_GT(sum, 0.0);
}

TEST(ExtDictApi, RunGramIterationsUsesPlatformTopology) {
  const Matrix a = test_data();
  ExtDict::Options options;
  options.fixed_l = 60;
  const ExtDict engine =
      ExtDict::preprocess(a, dist::PlatformSpec::idataplex({1, 4}), options);
  la::Vector x0(static_cast<std::size_t>(a.cols()), 1.0);
  const DistGramResult r = engine.run_gram_iterations(x0, 2);
  EXPECT_EQ(r.stats.per_rank.size(), 4u);
  EXPECT_EQ(r.iterations, 2);
  EXPECT_GT(r.stats.total_flops(), 0u);
}

TEST(ExtDictApi, UpdateCostReflectsTransform) {
  const Matrix a = test_data();
  ExtDict::Options options;
  options.fixed_l = 60;
  const auto platform = dist::PlatformSpec::idataplex({2, 8});
  const ExtDict engine = ExtDict::preprocess(a, platform, options);
  const UpdateCost cost = engine.update_cost();
  const UpdateCost expected = transformed_update_cost(
      40, 60, engine.transform().coefficients.nnz(), a.cols(), 16, platform);
  EXPECT_DOUBLE_EQ(cost.time_cost, expected.time_cost);
}

TEST(ExtDictApi, ExtendKeepsOperatorConsistent) {
  const Matrix a = test_data(200, 112);
  ExtDict::Options options;
  options.fixed_l = 70;
  options.tolerance = 0.08;
  ExtDict engine =
      ExtDict::preprocess(a, dist::PlatformSpec::idataplex({1, 2}), options);

  data::SubspaceModelConfig fresh;
  fresh.ambient_dim = 40;
  fresh.num_columns = 30;
  fresh.num_subspaces = 2;
  fresh.subspace_dim = 4;
  fresh.seed = 999;
  const Matrix a_new = data::make_union_of_subspaces(fresh).a;

  const EvolveReport report = engine.extend(a_new);
  EXPECT_EQ(report.new_columns, 30);
  EXPECT_EQ(engine.gram_operator().dim(), 230);
  // The rebuilt operator must work on the enlarged problem.
  la::Vector x(230, 1.0), y(230);
  engine.gram_operator().apply(x, y);
  EXPECT_EQ(engine.transform().coefficients.cols(), 230);
}

}  // namespace
}  // namespace extdict::core
