// VIOLATION: reads a field annotated EXTDICT_GUARDED_BY(mu_) without holding
// mu_. Valid C++; must be REJECTED by -Werror=thread-safety
// ("reading variable 'value_' requires holding mutex 'mu_'").
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  int read_unlocked() EXTDICT_EXCLUDES(mu_) {
    return value_;  // guarded field, no lock held
  }

 private:
  extdict::util::Mutex mu_;
  int value_ EXTDICT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.read_unlocked();
}
