// Annotation-clean use of the sync layer: guarded field only touched under
// its mutex, CondVar::wait with the lock held, manual lock()/unlock()
// balanced. Must COMPILE under -Werror=thread-safety; if it does not, the
// negative cases below prove nothing.
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  void add(int d) EXTDICT_EXCLUDES(mu_) {
    const extdict::util::MutexLock lock(mu_);
    value_ += d;
    cv_.notify_all();
  }

  int wait_nonzero() EXTDICT_EXCLUDES(mu_) {
    const extdict::util::MutexLock lock(mu_);
    while (value_ == 0) cv_.wait(mu_);
    return value_;
  }

  int read_manual() EXTDICT_EXCLUDES(mu_) {
    mu_.lock();
    const int v = value_;
    mu_.unlock();
    return v;
  }

 private:
  extdict::util::Mutex mu_;
  extdict::util::CondVar cv_;
  int value_ EXTDICT_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return c.wait_nonzero() - c.read_manual();
}
