// VIOLATION: CondVar::wait is annotated EXTDICT_REQUIRES(mu) — calling it
// without holding the mutex is the classic lost-wakeup/UB bug. Valid C++;
// must be REJECTED by -Werror=thread-safety
// ("calling function 'wait' requires holding mutex 'mu'").
#include "util/sync.hpp"

int main() {
  extdict::util::Mutex mu;
  extdict::util::CondVar cv;
  cv.wait(mu);  // mutex not held
  return 0;
}
