// VIOLATION: acquires a Mutex and returns without releasing it. Valid C++;
// must be REJECTED by -Werror=thread-safety
// ("mutex 'mu' is still held at the end of function").
#include "util/sync.hpp"

int main() {
  extdict::util::Mutex mu;
  mu.lock();
  return 0;  // mu never unlocked
}
