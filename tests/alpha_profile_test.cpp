#include "core/alpha_profile.hpp"

#include <gtest/gtest.h>

#include "data/subspace.hpp"

namespace extdict::core {
namespace {

Matrix test_data(Index n = 400, std::uint64_t seed = 51) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 40;
  config.num_columns = n;
  config.num_subspaces = 6;
  config.subspace_dim = 4;
  config.seed = seed;
  return data::make_union_of_subspaces(config).a;
}

TEST(AlphaProfile, GridPointsComeBackInOrder) {
  const Matrix a = test_data();
  AlphaProfileConfig config;
  config.l_grid = {40, 80, 160};
  config.tolerance = 0.1;
  const AlphaProfile profile = estimate_alpha_profile(a, config);
  ASSERT_EQ(profile.points.size(), 3u);
  EXPECT_EQ(profile.points[0].l, 40);
  EXPECT_EQ(profile.points[2].l, 160);
  EXPECT_EQ(profile.columns_used, 400);
}

TEST(AlphaProfile, FeasibilityReflectsLmin) {
  // With Ns*K = 24 intrinsic dimensions, a tiny L cannot meet a tight
  // tolerance but a large L can; min_feasible_l sits between.
  const Matrix a = test_data();
  AlphaProfileConfig config;
  config.l_grid = {6, 12, 80, 200};
  config.tolerance = 0.05;
  const AlphaProfile profile = estimate_alpha_profile(a, config);
  EXPECT_FALSE(profile.points[0].feasible);
  EXPECT_TRUE(profile.points[3].feasible);
  const Index lmin = profile.min_feasible_l();
  EXPECT_GT(lmin, 6);
  EXPECT_LE(lmin, 200);
}

TEST(AlphaProfile, AlphaDecreasesPastLmin) {
  const Matrix a = test_data();
  AlphaProfileConfig config;
  config.l_grid = {60, 120, 240};
  config.tolerance = 0.1;
  const AlphaProfile profile = estimate_alpha_profile(a, config);
  for (const auto& p : profile.points) ASSERT_TRUE(p.feasible);
  EXPECT_LE(profile.points[2].alpha_mean, profile.points[0].alpha_mean * 1.1);
}

TEST(AlphaProfile, VarianceBarsSmallAcrossDraws) {
  // Fig. 4: dispersion across dictionary re-draws is small (<4% in the
  // paper's example; we allow a looser 25% at this tiny scale).
  const Matrix a = test_data();
  AlphaProfileConfig config;
  config.l_grid = {120};
  config.tolerance = 0.1;
  config.trials = 5;
  const AlphaProfile profile = estimate_alpha_profile(a, config);
  const auto& p = profile.points[0];
  EXPECT_LT(p.alpha_stddev, 0.25 * p.alpha_mean);
}

TEST(AlphaProfile, AtThrowsForUnknownL) {
  const Matrix a = test_data(150);
  AlphaProfileConfig config;
  config.l_grid = {50};
  const AlphaProfile profile = estimate_alpha_profile(a, config);
  EXPECT_NO_THROW(profile.at(50));
  EXPECT_THROW(profile.at(51), std::out_of_range);
}

TEST(AlphaProfile, BadConfigThrows) {
  const Matrix a = test_data(100);
  AlphaProfileConfig config;
  EXPECT_THROW(estimate_alpha_profile(a, config), std::invalid_argument);
  config.l_grid = {10};
  config.trials = 0;
  EXPECT_THROW(estimate_alpha_profile(a, config), std::invalid_argument);
}

TEST(AlphaProfile, GridPointsBeyondSubsetAreSkipped) {
  const Matrix a = test_data(100);
  AlphaProfileConfig config;
  config.l_grid = {40, 5000};
  const AlphaProfile profile = estimate_alpha_profile(a, config);
  EXPECT_EQ(profile.points.size(), 1u);
}

TEST(AlphaProfileSubsets, ConvergesToFullDataProfile) {
  // §VII: E[alpha(L, A_s)] == E[alpha(L, A)] for union-of-subspace data; the
  // subset estimate at 25-50% of the data must be close to the full-data
  // value (the paper reports <= 14% at 10% of the data).
  const Matrix a = test_data(600, 77);
  AlphaProfileConfig config;
  config.l_grid = {80, 150};
  config.tolerance = 0.1;
  config.trials = 2;
  const AlphaProfile full = estimate_alpha_profile(a, config);
  const AlphaProfile sub = estimate_alpha_profile_subsets(
      a, config, {150, 300, 600}, /*convergence_threshold=*/0.10);
  EXPECT_LE(sub.columns_used, 600);
  for (const auto& p : sub.points) {
    if (!p.feasible) continue;
    const auto& q = full.at(p.l);
    EXPECT_NEAR(p.alpha_mean, q.alpha_mean, 0.35 * q.alpha_mean)
        << "L=" << p.l << " subset=" << sub.columns_used;
  }
}

TEST(AlphaProfileSubsets, StopsEarlyWhenStable) {
  const Matrix a = test_data(600, 78);
  AlphaProfileConfig config;
  config.l_grid = {100};
  config.tolerance = 0.1;
  // A generous threshold must stop at the second subset.
  const AlphaProfile profile =
      estimate_alpha_profile_subsets(a, config, {100, 200, 600}, 0.9);
  EXPECT_EQ(profile.columns_used, 200);
}

TEST(AlphaProfileSubsets, InputValidation) {
  const Matrix a = test_data(100);
  AlphaProfileConfig config;
  config.l_grid = {20};
  EXPECT_THROW(estimate_alpha_profile_subsets(a, config, {}), std::invalid_argument);
  EXPECT_THROW(estimate_alpha_profile_subsets(a, config, {50, 20}),
               std::invalid_argument);
}

}  // namespace
}  // namespace extdict::core
