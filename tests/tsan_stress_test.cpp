// ThreadSanitizer stress tests for the thread-simulated cluster: randomized
// interleavings hammering the Mailbox, the central barrier, and the
// reduce/broadcast/gather/scatter collectives. These tests also run (and
// must pass) in every other configuration; their real job is to give TSan
// (`cmake --preset tsan`) enough chaotic schedules to surface any data race
// or lock-order inversion in src/dist/.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "dist/cluster.hpp"
#include "dist/mailbox.hpp"
#include "la/random.hpp"

namespace extdict::dist {
namespace {

using la::Real;

void random_jitter(la::Rng& rng) {
  // A mix of yields and sub-millisecond sleeps produces more varied
  // interleavings than either alone.
  const auto r = rng.uniform_index(0, 3);
  if (r == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(rng.uniform_index(1, 200)));
  } else if (r == 1) {
    std::this_thread::yield();
  }
}

// ---------------------------------------------------------------------------
// Mailbox primitive.
// ---------------------------------------------------------------------------

TEST(TsanStress, MailboxManyProducersSingleConsumer) {
  constexpr Index kProducers = 4;
  constexpr int kMessages = 64;
  Mailbox box;

  std::vector<std::thread> producers;
  for (Index p = 0; p < kProducers; ++p) {
    producers.emplace_back([&box, p] {
      la::Rng rng(static_cast<std::uint64_t>(p) + 77);
      for (int k = 0; k < kMessages; ++k) {
        random_jitter(rng);
        const Real payload = static_cast<Real>(p) * 1000 + k;
        Mailbox::Envelope env{p, 5, std::vector<std::byte>(sizeof(Real))};
        std::memcpy(env.payload.data(), &payload, sizeof(Real));
        box.push(std::move(env));
      }
    });
  }

  // Consumer interleaves sources; per-source FIFO must hold.
  la::Rng rng(123);
  std::vector<int> next(kProducers, 0);
  for (int total = 0; total < kProducers * kMessages; ++total) {
    Index src = rng.uniform_index(0, kProducers - 1);
    while (next[static_cast<std::size_t>(src)] >= kMessages) {
      src = (src + 1) % kProducers;
    }
    const std::vector<std::byte> payload = box.pop(src, 5);
    ASSERT_EQ(payload.size(), sizeof(Real));
    Real value = 0;
    std::memcpy(&value, payload.data(), sizeof(Real));
    const int k = next[static_cast<std::size_t>(src)]++;
    EXPECT_EQ(value, static_cast<Real>(src) * 1000 + k);
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(box.empty());
}

TEST(TsanStress, MailboxPoisonUnblocksBlockedPopper) {
  Mailbox box;
  std::atomic<bool> aborted{false};
  std::thread popper([&] {
    try {
      (void)box.pop(0, 1);  // nothing will ever arrive
    } catch (const ClusterAborted&) {
      aborted.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  box.poison();
  popper.join();
  EXPECT_TRUE(aborted.load());
}

// ---------------------------------------------------------------------------
// Barrier.
// ---------------------------------------------------------------------------

TEST(TsanStress, BarrierStormWithJitter) {
  const Cluster cluster(Topology{2, 3});
  constexpr int kRounds = 200;
  std::atomic<long> checksum{0};
  cluster.run([&](Communicator& comm) {
    la::Rng rng(static_cast<std::uint64_t>(comm.rank()) + 31);
    for (int round = 0; round < kRounds; ++round) {
      random_jitter(rng);
      checksum.fetch_add(round, std::memory_order_relaxed);
      comm.barrier();
    }
  });
  EXPECT_EQ(checksum.load(),
            6L * kRounds * (kRounds - 1) / 2);
}

// ---------------------------------------------------------------------------
// Collectives under randomized scheduling.
// ---------------------------------------------------------------------------

TEST(TsanStress, ReduceBroadcastStorm) {
  const Cluster cluster(Topology{1, 5});
  constexpr int kRounds = 40;
  cluster.run([&](Communicator& comm) {
    la::Rng rng(static_cast<std::uint64_t>(comm.rank()) * 13 + 5);
    for (int round = 0; round < kRounds; ++round) {
      random_jitter(rng);
      const std::size_t n = 1 + static_cast<std::size_t>(round % 97);
      std::vector<Real> buf(n, static_cast<Real>(comm.rank() + 1));
      comm.allreduce_sum(std::span<Real>(buf));
      // 1+2+...+p
      const Real want = static_cast<Real>(comm.size()) *
                        static_cast<Real>(comm.size() + 1) / 2;
      for (const Real v : buf) ASSERT_EQ(v, want);
    }
  });
}

TEST(TsanStress, RandomizedCollectiveMix) {
  for (const Index p : {2, 4, 7}) {
    const Cluster cluster(Topology{1, p});
    constexpr int kRounds = 30;
    cluster.run([&](Communicator& comm) {
      // Same seed on every rank: all ranks draw the same op sequence, as an
      // SPMD program must.
      la::Rng script(4242);
      la::Rng local(static_cast<std::uint64_t>(comm.rank()) + 999);
      for (int round = 0; round < kRounds; ++round) {
        random_jitter(local);
        const Index op = script.uniform_index(0, 4);
        const Index root = script.uniform_index(0, comm.size() - 1);
        switch (op) {
          case 0:
            comm.barrier();
            break;
          case 1: {
            std::vector<Real> buf(17, static_cast<Real>(comm.rank()));
            comm.reduce_sum(root, std::span<Real>(buf));
            if (comm.rank() == root) {
              const Real want = static_cast<Real>(comm.size()) *
                                static_cast<Real>(comm.size() - 1) / 2;
              for (const Real v : buf) ASSERT_EQ(v, want);
            }
            break;
          }
          case 2: {
            std::vector<Real> buf(9, static_cast<Real>(comm.rank()));
            comm.broadcast(root, std::span<Real>(buf));
            for (const Real v : buf) ASSERT_EQ(v, static_cast<Real>(root));
            break;
          }
          case 3: {
            const Real mine = static_cast<Real>(comm.rank()) + 0.5;
            std::vector<Index> counts;
            const std::vector<Real> all =
                comm.gather(root, std::span<const Real>(&mine, 1), &counts);
            if (comm.rank() == root) {
              ASSERT_EQ(static_cast<Index>(all.size()), comm.size());
              for (Index r = 0; r < comm.size(); ++r) {
                ASSERT_EQ(all[static_cast<std::size_t>(r)],
                          static_cast<Real>(r) + 0.5);
              }
            }
            break;
          }
          case 4: {
            const Real got = comm.allreduce_max_scalar(
                static_cast<Real>((comm.rank() * 7 + round) % 11));
            Real want = 0;
            for (Index r = 0; r < comm.size(); ++r) {
              want = std::max(want, static_cast<Real>((r * 7 + round) % 11));
            }
            ASSERT_EQ(got, want);
            break;
          }
          default:
            break;
        }
      }
      comm.barrier();
    });
  }
}

TEST(TsanStress, ScatterGatherRoundTrip) {
  const Cluster cluster(Topology{1, 4});
  cluster.run([&](Communicator& comm) {
    for (int round = 0; round < 20; ++round) {
      std::vector<std::vector<Real>> chunks;
      if (comm.is_root()) {
        for (Index r = 0; r < comm.size(); ++r) {
          chunks.emplace_back(static_cast<std::size_t>(r + 1),
                              static_cast<Real>(r * 10 + round));
        }
      }
      const std::vector<Real> mine = comm.scatter(Index{0}, chunks);
      ASSERT_EQ(static_cast<Index>(mine.size()), comm.rank() + 1);
      for (const Real v : mine) {
        ASSERT_EQ(v, static_cast<Real>(comm.rank() * 10 + round));
      }
      const std::vector<Real> back =
          comm.gather(Index{0}, std::span<const Real>(mine));
      if (comm.is_root()) {
        ASSERT_EQ(back.size(), 4u + 3u + 2u + 1u);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Abort paths: peers blocked in recv/barrier must unwind, not deadlock.
// ---------------------------------------------------------------------------

TEST(TsanStress, AbortFromRandomRankUnblocksPeers) {
  for (int trial = 0; trial < 8; ++trial) {
    const Index p = 3 + trial % 3;
    const Cluster cluster(Topology{1, p});
    const Index bad_rank = trial % p;
    EXPECT_THROW(
        cluster.run([&](Communicator& comm) {
          la::Rng rng(static_cast<std::uint64_t>(trial) * 31 +
                      static_cast<std::uint64_t>(comm.rank()));
          random_jitter(rng);
          if (comm.rank() == bad_rank) {
            throw std::runtime_error("deliberate failure");
          }
          // Peers block on traffic that never arrives; the poison must
          // propagate instead of deadlocking.
          (void)comm.recv_value<Real>(bad_rank, 3);
        }),
        std::runtime_error)
        << "trial " << trial;
  }
}

TEST(TsanStress, AbortWhileBlockedInBarrier) {
  const Cluster cluster(Topology{1, 4});
  EXPECT_THROW(cluster.run([&](Communicator& comm) {
                 if (comm.rank() == 2) {
                   std::this_thread::sleep_for(std::chrono::milliseconds(5));
                   throw std::runtime_error("boom");
                 }
                 comm.barrier();  // never completed: rank 2 defects
               }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Independent clusters running concurrently must not share hidden state.
// ---------------------------------------------------------------------------

TEST(TsanStress, ConcurrentIndependentClusters) {
  auto run_one = [](std::uint64_t seed) {
    const Cluster cluster(Topology{1, 3});
    cluster.run([&](Communicator& comm) {
      la::Rng rng(seed + static_cast<std::uint64_t>(comm.rank()));
      for (int round = 0; round < 25; ++round) {
        random_jitter(rng);
        std::vector<Real> buf(5, static_cast<Real>(comm.rank()));
        comm.allreduce_sum(std::span<Real>(buf));
        for (const Real v : buf) ASSERT_EQ(v, Real{3});
      }
    });
  };
  std::thread a(run_one, 1);
  std::thread b(run_one, 2);
  a.join();
  b.join();
}

// ---------------------------------------------------------------------------
// Point-to-point hammering with mixed tags and payload sizes.
// ---------------------------------------------------------------------------

TEST(TsanStress, MixedTagTrafficHammer) {
  const Cluster cluster(Topology{2, 2});
  constexpr int kMessages = 30;
  cluster.run([&](Communicator& comm) {
    la::Rng rng(static_cast<std::uint64_t>(comm.rank()) * 91 + 17);
    // Everyone sends kMessages to every peer on two tags with size encoded
    // in the payload.
    for (Index dst = 0; dst < comm.size(); ++dst) {
      if (dst == comm.rank()) continue;
      for (int k = 0; k < kMessages; ++k) {
        random_jitter(rng);
        const int tag = k % 2;
        const std::size_t n = 1 + static_cast<std::size_t>(k);
        std::vector<Real> payload(n, static_cast<Real>(k));
        comm.send(dst, tag, std::span<const Real>(payload));
      }
    }
    for (Index src = 0; src < comm.size(); ++src) {
      if (src == comm.rank()) continue;
      // Drain odd tag first to force cross-tag queue scans.
      for (int k = 1; k < kMessages; k += 2) {
        const std::vector<Real> got = comm.recv_vector<Real>(src, 1);
        ASSERT_EQ(got.size(), 1 + static_cast<std::size_t>(k));
        ASSERT_EQ(got.front(), static_cast<Real>(k));
      }
      for (int k = 0; k < kMessages; k += 2) {
        const std::vector<Real> got = comm.recv_vector<Real>(src, 0);
        ASSERT_EQ(got.size(), 1 + static_cast<std::size_t>(k));
        ASSERT_EQ(got.front(), static_cast<Real>(k));
      }
    }
    comm.barrier();
  });
}

}  // namespace
}  // namespace extdict::dist
