#include "la/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "la/blas.hpp"

namespace extdict::la {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) any_diff |= (a.uniform() != b.uniform());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformIndexStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Index v = rng.uniform_index(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  const auto sample = rng.sample_without_replacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  std::set<Index> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (Index v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(Rng, SampleWholeRangeIsPermutation) {
  Rng rng(6);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (Index i = 0; i < 10; ++i) EXPECT_EQ(sample[static_cast<std::size_t>(i)], i);
}

TEST(Rng, SampleRejectsCountAboveN) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), std::invalid_argument);
}

TEST(Rng, SampleIsApproximatelyUniform) {
  // Each index of [0, 10) should be picked ~ count/n of the time.
  Rng rng(8);
  std::vector<int> hits(10, 0);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    for (Index v : rng.sample_without_replacement(10, 3)) {
      ++hits[static_cast<std::size_t>(v)];
    }
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.3, 0.05);
  }
}

TEST(Rng, PermutationContainsAll) {
  Rng rng(9);
  auto p = rng.permutation(50);
  std::sort(p.begin(), p.end());
  for (Index i = 0; i < 50; ++i) EXPECT_EQ(p[static_cast<std::size_t>(i)], i);
}

TEST(Rng, GaussianMomentsRoughlyCorrect) {
  Rng rng(10);
  Vector x(20000);
  rng.fill_gaussian(x, 2.0, 3.0);
  Real mean = 0;
  for (Real v : x) mean += v;
  mean /= static_cast<Real>(x.size());
  Real var = 0;
  for (Real v : x) var += (v - mean) * (v - mean);
  var /= static_cast<Real>(x.size());
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, GaussianMatrixNormalized) {
  Rng rng(11);
  Matrix m = rng.gaussian_matrix(20, 5, /*normalize_columns=*/true);
  for (Index j = 0; j < 5; ++j) EXPECT_NEAR(nrm2(m.col(j)), 1.0, 1e-12);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(12);
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  bool any_diff = false;
  Rng parent2(12);
  for (int i = 0; i < 10; ++i) any_diff |= (child.uniform() != parent2.uniform());
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace extdict::la
