#include <gtest/gtest.h>

#include <cmath>

#include "core/exd.hpp"
#include "core/gram_operator.hpp"
#include "data/subspace.hpp"
#include "solvers/power_method.hpp"

namespace extdict::solvers {
namespace {

using core::TransformedGramOperator;
using la::Index;
using la::Matrix;

struct Problem {
  Matrix a;
  core::ExdResult exd;
};

Problem make_problem(Index l, std::uint64_t seed = 171) {
  data::SubspaceModelConfig config;
  config.ambient_dim = 40;
  config.num_columns = 200;
  config.num_subspaces = 5;
  config.subspace_dim = 4;
  config.seed = seed;
  Problem p;
  p.a = data::make_union_of_subspaces(config).a;
  core::ExdConfig exd;
  exd.dictionary_size = l;
  exd.tolerance = 0.05;
  exd.seed = 3;
  p.exd = core::exd_transform(p.a, exd);
  return p;
}

class DistPowerTest : public ::testing::TestWithParam<dist::Topology> {};

TEST_P(DistPowerTest, SpectrumMatchesSerialPowerMethod) {
  const Problem p = make_problem(30);  // Case 1 layout (L <= M)
  PowerConfig config;
  config.num_eigenpairs = 4;
  config.tolerance = 1e-9;
  config.max_iterations = 1500;

  TransformedGramOperator op(p.exd.dictionary, p.exd.coefficients);
  const PowerResult serial = power_method(op, config);

  const dist::Cluster cluster(GetParam());
  const DistPowerResult dist =
      power_method_distributed(cluster, p.exd.dictionary, p.exd.coefficients,
                               config);
  ASSERT_EQ(dist.eigenvalues.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(dist.eigenvalues[i], serial.eigenvalues[i],
                1e-4 * serial.eigenvalues[0])
        << "pair " << i << " on " << GetParam().name();
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, DistPowerTest,
                         ::testing::Values(dist::Topology{1, 1},
                                           dist::Topology{1, 4},
                                           dist::Topology{2, 3}));

TEST(DistPower, Case2LayoutAlsoWorks) {
  const Problem p = make_problem(60);  // L=60 > M=40
  PowerConfig config;
  config.num_eigenpairs = 3;
  config.tolerance = 1e-9;
  config.max_iterations = 1500;
  TransformedGramOperator op(p.exd.dictionary, p.exd.coefficients);
  const PowerResult serial = power_method(op, config);
  const DistPowerResult dist = power_method_distributed(
      dist::Cluster(dist::Topology{1, 4}), p.exd.dictionary, p.exd.coefficients,
      config);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(dist.eigenvalues[i], serial.eigenvalues[i],
                1e-4 * serial.eigenvalues[0]);
  }
}

TEST(DistPower, EigenvaluesNonIncreasingAndCostsMetered) {
  const Problem p = make_problem(30, 172);
  PowerConfig config;
  config.num_eigenpairs = 5;
  config.max_iterations = 600;
  const DistPowerResult r = power_method_distributed(
      dist::Cluster(dist::Topology{1, 4}), p.exd.dictionary, p.exd.coefficients,
      config);
  for (std::size_t i = 1; i < r.eigenvalues.size(); ++i) {
    EXPECT_LE(r.eigenvalues[i], r.eigenvalues[i - 1] * (1 + 1e-6));
  }
  EXPECT_GT(r.total_iterations(), 0);
  EXPECT_GT(r.stats.total_flops(), 0u);
  EXPECT_GT(r.stats.total_words(), 0u);
  EXPECT_GT(r.stats.max_peak_memory_words(), 0u);
}

TEST(DistPower, ShapeMismatchThrows) {
  const Problem p = make_problem(30, 173);
  la::CscMatrix bad(p.exd.dictionary.cols() + 1, 10);
  EXPECT_THROW(power_method_distributed(dist::Cluster(dist::Topology{1, 1}),
                                        p.exd.dictionary, bad, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace extdict::solvers
