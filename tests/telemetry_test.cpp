// TelemetrySnapshotter contracts: the JSONL stream is schema-stable and
// parseable line by line, seq is contiguous from 0, wall_ms never runs
// backwards, stop() writes one final sample and is idempotent, and the
// exporter runs clean alongside concurrent metric writers (TSan covers
// this test like every other).

#include "util/telemetry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/metrics.hpp"

namespace extdict::util {
namespace {

// Unique temp path per test; removed on destruction so reruns start clean.
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_(std::string(::testing::TempDir()) + "extdict_telemetry_" + tag +
              ".jsonl") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<Json> read_records(const std::string& path) {
  std::vector<Json> records;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) records.push_back(Json::parse(line));
  }
  return records;
}

TEST(TelemetrySnapshotter, WritesParseableOrderedRecords) {
  using namespace std::chrono_literals;
  const TempFile file("ordered");
  MetricsRegistry registry;
  registry.add("pass.counter", 7);
  registry.gauge("pass.level").set(3);
  registry.observe_windowed("pass.lat", 1e-3);
  {
    TelemetrySnapshotter snapshotter(registry, file.path(),
                                     TelemetryOptions{.period_ms = 5});
    EXPECT_TRUE(snapshotter.ok());
    while (snapshotter.snapshots_written() < 3) {
      std::this_thread::sleep_for(1ms);
    }
    snapshotter.stop();
    const std::uint64_t written = snapshotter.snapshots_written();
    EXPECT_GE(written, 3u);
    snapshotter.stop();  // idempotent: no crash, no extra records
    EXPECT_EQ(snapshotter.snapshots_written(), written);
  }

  const std::vector<Json> records = read_records(file.path());
  ASSERT_GE(records.size(), 3u);
  double last_wall = -1.0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Json& record = records[i];
    EXPECT_EQ(record.at("seq").as_u64(), i);
    EXPECT_GE(record.at("wall_ms").as_double(), last_wall);
    last_wall = record.at("wall_ms").as_double();
    // Schema-stable, insertion-ordered record shape.
    const auto& members = record.as_object();
    ASSERT_EQ(members.size(), 5u);
    EXPECT_EQ(members[0].first, "seq");
    EXPECT_EQ(members[1].first, "wall_ms");
    EXPECT_EQ(members[2].first, "counters");
    EXPECT_EQ(members[3].first, "gauges");
    EXPECT_EQ(members[4].first, "window_quantiles");
    EXPECT_EQ(record.at("counters").at("pass.counter").as_u64(), 7u);
    EXPECT_DOUBLE_EQ(record.at("gauges").at("pass.level").as_double(), 3.0);
    EXPECT_EQ(
        record.at("window_quantiles").at("pass.lat").at("cumulative_count")
            .as_u64(),
        1u);
  }
}

TEST(TelemetrySnapshotter, DestructionStopsAndFlushes) {
  const TempFile file("dtor");
  MetricsRegistry registry;
  registry.add("c", 1);
  {
    const TelemetrySnapshotter snapshotter(registry, file.path(),
                                           TelemetryOptions{.period_ms = 1});
    // No explicit stop(): the destructor must join and flush.
  }
  const std::vector<Json> records = read_records(file.path());
  // The worker writes one final sample on the stop signal even when the
  // period never elapsed.
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records.front().at("seq").as_u64(), 0u);
  EXPECT_EQ(records.front().at("counters").at("c").as_u64(), 1u);
}

TEST(TelemetrySnapshotter, ReportsUnwritablePath) {
  MetricsRegistry registry;
  TelemetrySnapshotter snapshotter(
      registry, "/nonexistent-dir-for-telemetry-test/out.jsonl",
      TelemetryOptions{.period_ms = 5});
  EXPECT_FALSE(snapshotter.ok());
  snapshotter.stop();  // still clean to stop
  EXPECT_EQ(snapshotter.snapshots_written(), 0u);
}

TEST(TelemetrySnapshotter, RunsCleanUnderConcurrentMetricWriters) {
  using namespace std::chrono_literals;
  const TempFile file("race");
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &stop, t] {
      Gauge& level = registry.gauge("race.level");
      while (!stop.load(std::memory_order_relaxed)) {
        registry.add("race.counter", 1);
        const GaugeGuard guard(level);
        registry.observe_windowed("race.lat", (t + 1) * 1e-5);
      }
    });
  }
  std::uint64_t written = 0;
  {
    TelemetrySnapshotter snapshotter(registry, file.path(),
                                     TelemetryOptions{.period_ms = 2});
    while (snapshotter.snapshots_written() < 5) {
      std::this_thread::sleep_for(1ms);
    }
    snapshotter.stop();
    written = snapshotter.snapshots_written();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();

  const std::vector<Json> records = read_records(file.path());
  EXPECT_EQ(records.size(), written);
  // Counters are monotone across snapshots even under contention.
  std::uint64_t last = 0;
  for (const Json& record : records) {
    const std::uint64_t now = record.at("counters").at("race.counter").as_u64();
    EXPECT_GE(now, last);
    last = now;
  }
}

}  // namespace
}  // namespace extdict::util
