#include "la/csc_matrix.hpp"

#include <gtest/gtest.h>

#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::la {
namespace {

// A fixed 3x4 test matrix:
//   [1 0 2 0]
//   [0 3 0 0]
//   [4 0 5 0]
CscMatrix small() {
  CscMatrix::Builder b(3, 4);
  b.add(0, 1);
  b.add(2, 4);
  b.commit_column();
  b.add(1, 3);
  b.commit_column();
  b.add(2, 5);
  b.add(0, 2);  // unsorted on purpose; builder sorts on commit
  b.commit_column();
  return std::move(b).build();
}

TEST(CscMatrix, BuilderBuildsExpectedStructure) {
  CscMatrix m = small();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 5u);
  EXPECT_EQ(m.col_nnz(0), 2);
  EXPECT_EQ(m.col_nnz(3), 0);
  // Rows sorted within each column.
  auto rows2 = m.col_rows(2);
  EXPECT_EQ(rows2[0], 0);
  EXPECT_EQ(rows2[1], 2);
}

TEST(CscMatrix, ToDenseMatchesLayout) {
  Matrix d = small().to_dense();
  Matrix expected = Matrix::from_rows({{1, 0, 2, 0}, {0, 3, 0, 0}, {4, 0, 5, 0}});
  EXPECT_EQ(max_abs_diff(d, expected), 0.0);
}

TEST(CscMatrix, BuilderRejectsBadRow) {
  CscMatrix::Builder b(2, 1);
  EXPECT_THROW(b.add(5, 1.0), std::out_of_range);
}

TEST(CscMatrix, DensityPerColumn) {
  EXPECT_NEAR(small().density_per_column(), 5.0 / 4.0, 1e-15);
  EXPECT_EQ(CscMatrix(3, 0).density_per_column(), 0.0);
}

TEST(CscMatrix, SpmvMatchesDense) {
  Rng rng(2);
  CscMatrix m = small();
  Matrix d = m.to_dense();
  Vector x(4), y_sparse(3), y_dense(3);
  rng.fill_gaussian(x);
  m.spmv(x, y_sparse);
  gemv(1, d, x, 0, y_dense);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-14);
}

TEST(CscMatrix, SpmvTMatchesDense) {
  Rng rng(3);
  CscMatrix m = small();
  Matrix d = m.to_dense();
  Vector w(3), y_sparse(4), y_dense(4);
  rng.fill_gaussian(w);
  m.spmv_t(w, y_sparse);
  gemv_t(1, d, w, 0, y_dense);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-14);
}

TEST(CscMatrix, RangeProductsEqualSumOfParts) {
  // Partition columns into [0,2) and [2,4): partial spmv products must sum
  // to the full product — the invariant Algorithm 2 step 1 relies on.
  Rng rng(4);
  CscMatrix m = small();
  Vector x(4);
  rng.fill_gaussian(x);
  Vector full(3), part(3, 0.0);
  m.spmv(x, full);
  m.spmv_range(0, 2, {x.data(), 2}, part);
  m.spmv_range(2, 4, {x.data() + 2, 2}, part);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(part[i], full[i], 1e-14);
}

TEST(CscMatrix, SpmvTRangeIsSliceOfFull) {
  Rng rng(5);
  CscMatrix m = small();
  Vector w(3);
  rng.fill_gaussian(w);
  Vector full(4);
  m.spmv_t(w, full);
  Vector slice(2);
  m.spmv_t_range(1, 3, w, slice);
  EXPECT_NEAR(slice[0], full[1], 1e-14);
  EXPECT_NEAR(slice[1], full[2], 1e-14);
}

TEST(CscMatrix, SliceColumns) {
  CscMatrix s = small().slice_columns(1, 3);
  EXPECT_EQ(s.cols(), 2);
  EXPECT_EQ(s.nnz(), 3u);
  Matrix expected = Matrix::from_rows({{0, 2}, {3, 0}, {0, 5}});
  EXPECT_EQ(max_abs_diff(s.to_dense(), expected), 0.0);
}

TEST(CscMatrix, SliceColumnsBadRangeThrows) {
  EXPECT_THROW(small().slice_columns(3, 1), std::out_of_range);
  EXPECT_THROW(small().slice_columns(0, 9), std::out_of_range);
}

TEST(CscMatrix, AppendColumns) {
  CscMatrix a = small();
  CscMatrix b = small();
  a.append_columns(b);
  EXPECT_EQ(a.cols(), 8);
  EXPECT_EQ(a.nnz(), 10u);
  EXPECT_EQ(a.col_nnz(4), 2);
  // The appended block reproduces the original values.
  Matrix d = a.to_dense();
  EXPECT_EQ(d(2, 6), 5.0);
}

TEST(CscMatrix, AppendColumnsRowMismatchThrows) {
  CscMatrix a = small();
  CscMatrix b(4, 2);
  EXPECT_THROW(a.append_columns(b), std::invalid_argument);
}

TEST(CscMatrix, PadRowsKeepsEntries) {
  CscMatrix m = small();
  m.pad_rows(6);
  EXPECT_EQ(m.rows(), 6);
  EXPECT_EQ(m.nnz(), 5u);
  Matrix d = m.to_dense();
  EXPECT_EQ(d.rows(), 6);
  EXPECT_EQ(d(2, 2), 5.0);
  EXPECT_EQ(d(5, 2), 0.0);
  EXPECT_THROW(m.pad_rows(2), std::invalid_argument);
}

TEST(CscMatrix, FromColumnsAssembles) {
  std::vector<std::vector<std::pair<Index, Real>>> cols(2);
  cols[0] = {{1, 2.0}};
  cols[1] = {{0, -1.0}, {2, 3.0}};
  CscMatrix m = CscMatrix::from_columns(3, cols);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.to_dense()(2, 1), 3.0);
}

TEST(CscMatrix, MemoryWordsFormula) {
  // nnz values (1 word each) + nnz row indices + cols+1 pointers at half a
  // word each (int32): 5 + ceil((5 + 5) / 2) = 10.
  CscMatrix m = small();
  EXPECT_EQ(m.memory_words(), 10u);
}

// Property sweep: random sparse matrices agree with their dense counterpart
// on both products.
class CscRandomTest : public ::testing::TestWithParam<std::tuple<Index, Index, double>> {};

TEST_P(CscRandomTest, ProductsMatchDense) {
  const auto [rows, cols, density] = GetParam();
  Rng rng(1000 + rows * cols);
  CscMatrix::Builder builder(rows, cols);
  for (Index j = 0; j < cols; ++j) {
    for (Index i = 0; i < rows; ++i) {
      if (rng.uniform() < density) builder.add(i, rng.gaussian());
    }
    builder.commit_column();
  }
  CscMatrix m = std::move(builder).build();
  Matrix d = m.to_dense();

  Vector x(static_cast<std::size_t>(cols)), w(static_cast<std::size_t>(rows));
  rng.fill_gaussian(x);
  rng.fill_gaussian(w);

  Vector y1(static_cast<std::size_t>(rows)), y2(static_cast<std::size_t>(rows));
  m.spmv(x, y1);
  gemv(1, d, x, 0, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-11);

  Vector z1(static_cast<std::size_t>(cols)), z2(static_cast<std::size_t>(cols));
  m.spmv_t(w, z1);
  gemv_t(1, d, w, 0, z2);
  for (std::size_t i = 0; i < z1.size(); ++i) EXPECT_NEAR(z1[i], z2[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CscRandomTest,
    ::testing::Values(std::tuple<Index, Index, double>{1, 1, 1.0},
                      std::tuple<Index, Index, double>{10, 30, 0.1},
                      std::tuple<Index, Index, double>{50, 20, 0.3},
                      std::tuple<Index, Index, double>{100, 100, 0.02},
                      std::tuple<Index, Index, double>{5, 200, 0.5}));

}  // namespace
}  // namespace extdict::la
