#include <gtest/gtest.h>

#include <thread>

#include "util/table.hpp"
#include "util/timer.hpp"

namespace extdict::util {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.elapsed_ms(), 15.0);
  EXPECT_LT(t.elapsed_ms(), 5000.0);
}

TEST(Timer, RestartResetsOrigin) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.restart();
  EXPECT_LT(t.elapsed_ms(), 10.0);
}

TEST(FormatDuration, PicksSensibleUnits) {
  EXPECT_EQ(format_duration_ms(0.5), "0.500 ms");
  EXPECT_EQ(format_duration_ms(12.34), "12.3 ms");
  EXPECT_EQ(format_duration_ms(4560), "4.56 s");
  EXPECT_EQ(format_duration_ms(123000), "2 m 03.0 s");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsEmptyHeaderAndBadRows) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Fmt, SignificantDigits) {
  EXPECT_EQ(fmt(3.14159, 3), "3.14");
  EXPECT_EQ(fmt(1234567.0, 3), "1.23e+06");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
}

}  // namespace
}  // namespace extdict::util
