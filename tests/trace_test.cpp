// The tracer's contracts: concurrent per-thread writers lose nothing,
// ring overflow is counted deterministically (drop-newest, never clobber),
// the Chrome export round-trips through util::Json::parse with balanced
// begin/end nesting, and a real multi-rank dist_gram run emits its
// collectives on every rank lane.

#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <stack>
#include <string>
#include <thread>
#include <vector>

#include "core/dist_gram.hpp"
#include "la/random.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace extdict::util {
namespace {

const Json* find_key(const Json& object, std::string_view key) {
  for (const auto& [k, v] : object.as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

TEST(Trace, ConcurrentWritersKeepAllEvents) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kScopesPerThread = 250;  // 4 events per scope iteration
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      recorder.set_thread_rank(t);
      for (int i = 0; i < kScopesPerThread; ++i) {
        recorder.begin("work", "i", static_cast<std::uint64_t>(i));
        recorder.instant("tick");
        recorder.counter("value", static_cast<std::uint64_t>(i));
        recorder.end("work");
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(recorder.recorded_events(),
            static_cast<std::uint64_t>(kThreads) * kScopesPerThread * 4);
  EXPECT_EQ(recorder.dropped_events(), 0u);
  const auto per_rank = recorder.rank_event_counts();
  ASSERT_EQ(per_rank.size(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_rank[static_cast<std::size_t>(t)].first, t);
    EXPECT_EQ(per_rank[static_cast<std::size_t>(t)].second,
              static_cast<std::uint64_t>(kScopesPerThread) * 4);
  }
}

TEST(Trace, RingOverflowIsCountedExactly) {
  TraceRecorder recorder;
  recorder.set_capacity(64);
  recorder.set_enabled(true);
  constexpr int kEvents = 200;
  for (int i = 0; i < kEvents; ++i) {
    recorder.instant("e", "i", static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(recorder.recorded_events(), 64u);
  EXPECT_EQ(recorder.dropped_events(), static_cast<std::uint64_t>(kEvents - 64));

  // Drop-newest: the surviving events are exactly the first 64, in order.
  const Json doc = recorder.to_chrome_json();
  std::uint64_t next = 0;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    if (event.at("ph").as_string() != "i") continue;
    EXPECT_EQ(event.at("args").at("i").as_u64(), next);
    ++next;
  }
  EXPECT_EQ(next, 64u);

  // clear() resets both tallies; capacity survives.
  recorder.clear();
  EXPECT_EQ(recorder.recorded_events(), 0u);
  EXPECT_EQ(recorder.dropped_events(), 0u);
  recorder.instant("again");
  EXPECT_EQ(recorder.recorded_events(), 1u);
}

TEST(Trace, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;  // disabled by default
  recorder.begin("a");
  recorder.end("a");
  recorder.instant("b");
  recorder.counter("c", 1);
  {
    const TraceScope scope(recorder, "scoped");
    // Enabling mid-scope must not record the latched-off scope's end.
    recorder.set_enabled(true);
  }
  EXPECT_EQ(recorder.recorded_events(), 0u);

  // Conversely a scope opened while enabled closes even if disabled mid-way.
  {
    const TraceScope scope(recorder, "balanced");
    recorder.set_enabled(false);
  }
  EXPECT_EQ(recorder.recorded_events(), 2u);
}

TEST(Trace, ChromeJsonRoundTripsAndIsWellFormed) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.set_thread_rank(3);
  {
    TraceScope outer(recorder, "phase", "words", 128);
    const TraceScope inner(recorder, "comm.send", "peer", 1);
    outer.set_end_arg("received", 64);
  }
  recorder.instant("marker");
  recorder.counter("series", 42);
  recorder.set_metadata("mode", Json("test"));

  const Json doc = recorder.to_chrome_json();
  const std::string dumped = doc.dump(2);
  const Json reparsed = Json::parse(dumped);

  // Deterministic: same recorded state, same bytes.
  EXPECT_EQ(recorder.to_chrome_json().dump(2), dumped);

  EXPECT_EQ(reparsed.at("displayTimeUnit").as_string(), "ms");
  const Json& other = reparsed.at("otherData");
  EXPECT_EQ(other.at("mode").as_string(), "test");
  EXPECT_EQ(other.at("recorded_events").as_u64(), 6u);
  EXPECT_EQ(other.at("dropped_events").as_u64(), 0u);
  EXPECT_EQ(other.at("rank_events").at("3").as_u64(), 6u);

  // Every event targets the tagged rank lane; B/E nesting balances; the
  // completion-time arg lands on the E event, metadata lanes come first.
  int begins = 0, ends = 0;
  bool saw_process_meta = false;
  std::stack<std::string> open;
  for (const Json& event : reparsed.at("traceEvents").as_array()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph == "M") {
      EXPECT_EQ(begins + ends, 0) << "metadata after payload events";
      saw_process_meta |= event.at("name").as_string() == "process_name";
      continue;
    }
    EXPECT_EQ(event.at("pid").as_u64(), 3u);
    EXPECT_GE(event.at("ts").as_double(), 0.0);
    if (ph == "B") {
      ++begins;
      open.push(event.at("name").as_string());
    } else if (ph == "E") {
      ++ends;
      ASSERT_FALSE(open.empty());
      EXPECT_EQ(open.top(), event.at("name").as_string());
      open.pop();
      if (event.at("name").as_string() == "phase") {
        EXPECT_EQ(event.at("args").at("received").as_u64(), 64u);
      }
    } else if (ph == "i") {
      EXPECT_EQ(event.at("s").as_string(), "t");
    } else {
      EXPECT_EQ(ph, "C");
      EXPECT_EQ(event.at("args").at("value").as_u64(), 42u);
    }
  }
  EXPECT_TRUE(saw_process_meta);
  EXPECT_EQ(begins, 2);
  EXPECT_EQ(ends, 2);
  EXPECT_TRUE(open.empty());

  // Untag the main thread so later tests trace into the host lane again.
  recorder.set_thread_rank(TraceRecorder::kHostPid);
}

TEST(Trace, DistGramEmitsBalancedMultiRankTimeline) {
  using la::Index;
  using la::Real;

  TraceRecorder& trace = TraceRecorder::global();
  trace.clear();
  trace.set_enabled(true);

  constexpr Index m = 32, l = 24, n = 128;
  constexpr int iterations = 3;
  constexpr Index p = 4;
  la::Matrix d(m, l);
  la::Rng rng(11);
  rng.fill_gaussian(
      std::span<Real>(d.data(), static_cast<std::size_t>(d.size())));
  la::CscMatrix::Builder builder(l, n);
  for (Index j = 0; j < n; ++j) {
    builder.add(j % l, Real{1});
    builder.add((j * 5 + 1) % l, Real{-1});
    builder.commit_column();
  }
  const la::CscMatrix c = std::move(builder).build();
  const dist::Cluster cluster(dist::Topology{1, p});
  const la::Vector x0(static_cast<std::size_t>(n), Real{1});

  (void)core::dist_gram_apply(cluster, d, c, x0, iterations,
                              core::GramStrategy::kRootDictionary);
  trace.set_enabled(false);

  EXPECT_EQ(trace.dropped_events(), 0u);
  const Json doc = trace.to_chrome_json();
  trace.clear();

  // Per-lane stack replay: every B closes with a matching E, none dangle.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::stack<std::string>>
      stacks;
  std::map<std::string, std::set<std::uint64_t>> collective_ranks;
  std::set<std::uint64_t> update_ranks;
  for (const Json& event : doc.at("traceEvents").as_array()) {
    const std::string& ph = event.at("ph").as_string();
    if (ph == "M") continue;
    const auto lane = std::make_pair(event.at("pid").as_u64(),
                                     event.at("tid").as_u64());
    const std::string& name = event.at("name").as_string();
    if (ph == "B") {
      stacks[lane].push(name);
      if (name == "comm.reduce" || name == "comm.broadcast") {
        collective_ranks[name].insert(lane.first);
      }
      if (name == "dist_gram.update") update_ranks.insert(lane.first);
    } else if (ph == "E") {
      auto& stack = stacks[lane];
      ASSERT_FALSE(stack.empty())
          << "E " << name << " without B on rank " << lane.first;
      EXPECT_EQ(stack.top(), name);
      stack.pop();
    }
  }
  for (const auto& [lane, stack] : stacks) {
    EXPECT_TRUE(stack.empty())
        << "unclosed span on rank " << lane.first;
  }

  // Case 1 reduces and broadcasts every iteration: both collectives must
  // appear on every rank lane, as must the update phase itself.
  for (const char* name : {"comm.reduce", "comm.broadcast"}) {
    for (std::uint64_t r = 0; r < static_cast<std::uint64_t>(p); ++r) {
      EXPECT_TRUE(collective_ranks[name].count(r))
          << name << " missing on rank " << r;
    }
  }
  EXPECT_EQ(update_ranks.size(), static_cast<std::size_t>(p));

  // The rollup deltas surfaced per-rank totals in the metrics registry.
  const Json& rank_events = doc.at("otherData").at("rank_events");
  ASSERT_GE(rank_events.as_object().size(), static_cast<std::size_t>(p));
  for (std::uint64_t r = 0; r < static_cast<std::uint64_t>(p); ++r) {
    const Json* count = find_key(rank_events, std::to_string(r));
    ASSERT_NE(count, nullptr);
    EXPECT_GT(count->as_u64(), 0u);
    EXPECT_GT(MetricsRegistry::global().value("trace.events.rank" +
                                              std::to_string(r)),
              0u);
  }
}

}  // namespace
}  // namespace extdict::util
