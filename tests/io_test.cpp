#include "la/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::la {
namespace {

std::string tmp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(MatrixMarket, DenseRoundTrip) {
  Rng rng(1);
  Matrix a = rng.gaussian_matrix(7, 5);
  const std::string path = tmp_path("extdict_dense.mtx");
  write_matrix_market(a, path);
  Matrix b = read_matrix_market_dense(path);
  EXPECT_EQ(b.rows(), 7);
  EXPECT_EQ(b.cols(), 5);
  EXPECT_LT(max_abs_diff(a, b), 1e-14);
  std::remove(path.c_str());
}

TEST(MatrixMarket, SparseRoundTrip) {
  Rng rng(2);
  CscMatrix::Builder builder(10, 8);
  for (Index j = 0; j < 8; ++j) {
    for (Index i = 0; i < 10; ++i) {
      if (rng.uniform() < 0.3) builder.add(i, rng.gaussian());
    }
    builder.commit_column();
  }
  CscMatrix a = std::move(builder).build();
  const std::string path = tmp_path("extdict_sparse.mtx");
  write_matrix_market(a, path);
  CscMatrix b = read_matrix_market_sparse(path);
  EXPECT_EQ(b.rows(), 10);
  EXPECT_EQ(b.cols(), 8);
  EXPECT_EQ(b.nnz(), a.nnz());
  EXPECT_LT(max_abs_diff(a.to_dense(), b.to_dense()), 1e-14);
  std::remove(path.c_str());
}

TEST(MatrixMarket, SparseSumsDuplicates) {
  const std::string path = tmp_path("extdict_dup.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "% a comment line\n"
        << "2 2 3\n"
        << "1 1 1.5\n"
        << "1 1 2.5\n"
        << "2 2 -1\n";
  }
  CscMatrix m = read_matrix_market_sparse(path);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.to_dense()(0, 0), 4.0);
  EXPECT_EQ(m.to_dense()(1, 1), -1.0);
  std::remove(path.c_str());
}

TEST(MatrixMarket, RejectsWrongFlavour) {
  Rng rng(3);
  Matrix a = rng.gaussian_matrix(3, 3);
  const std::string path = tmp_path("extdict_flavour.mtx");
  write_matrix_market(a, path);
  EXPECT_THROW(read_matrix_market_sparse(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(MatrixMarket, RejectsMissingFileAndBadIndices) {
  EXPECT_THROW(read_matrix_market_dense("/nonexistent/x.mtx"), std::runtime_error);
  const std::string path = tmp_path("extdict_bad.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "2 2 1\n"
        << "3 1 1.0\n";  // row out of range
  }
  EXPECT_THROW(read_matrix_market_sparse(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Binary, RoundTripIsExact) {
  Rng rng(4);
  Matrix a = rng.gaussian_matrix(31, 17);
  const std::string path = tmp_path("extdict_bin.dat");
  write_binary(a, path);
  Matrix b = read_binary(path);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);  // bitwise
  std::remove(path.c_str());
}

TEST(Binary, RejectsBadMagic) {
  const std::string path = tmp_path("extdict_magic.dat");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage garbage garbage garbage";
  }
  EXPECT_THROW(read_binary(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace extdict::la
