#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace extdict::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width does not match header");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " ");
      out << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(width[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string fmt_count(std::uint64_t value) {
  std::string raw = std::to_string(value);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  const std::size_t lead = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(raw[i]);
  }
  return out;
}

}  // namespace extdict::util
