#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace extdict::util {

namespace {

constexpr double kNanosPerSecond = 1e9;

// CAS-loop add/min/max on atomic<double> (fetch_add on floating atomics is
// C++20 but spotty across standard libraries; the loop is portable).
void atomic_add(std::atomic<double>& cell, double delta) noexcept {
  double seen = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(seen, seen + delta,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& cell, double v) noexcept {
  double seen = cell.load(std::memory_order_relaxed);
  while (v < seen &&
         !cell.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& cell, double v) noexcept {
  double seen = cell.load(std::memory_order_relaxed);
  while (v > seen &&
         !cell.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_i64(std::atomic<std::int64_t>& cell, std::int64_t v) noexcept {
  std::int64_t seen = cell.load(std::memory_order_relaxed);
  while (v > seen &&
         !cell.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// -- Histogram ----------------------------------------------------------------

void Histogram::record(double value) noexcept {
  int bucket = 0;
  if (value >= kFirstLower) {
    bucket = static_cast<int>(
        kBucketsPerDecade * (std::log10(value) - std::log10(kFirstLower)));
    bucket = std::clamp(bucket, 0, kBucketCount - 1);
  }
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  // First observation seeds min/max; racing seeders then CAS toward the true
  // extremes, so the pair is exact once every writer has returned.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    atomic_min(min_, value);
    atomic_max(max_, value);
  }
  atomic_add(sum_, value);
}

double Histogram::bucket_upper(int i) noexcept {
  return kFirstLower *
         std::pow(10.0, static_cast<double>(i + 1) / kBucketsPerDecade);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  double estimate = max();
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      // Log-interpolate inside the bucket by the rank's fraction of it.
      // Bucket 0 also absorbs every underflow observation (`record` clamps
      // values below kFirstLower into it), so its true lower edge is the
      // smallest value seen, not kFirstLower — interpolating from
      // kFirstLower would overestimate low quantiles whenever sub-range
      // values were recorded.
      const double lower =
          i == 0 ? std::min(min(), kFirstLower) : bucket_upper(i - 1);
      const double upper = bucket_upper(i);
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(c);
      if (lower > 0) {
        estimate = lower * std::pow(upper / lower, frac);
      } else {
        // Log interpolation needs a positive base; with zero/negative
        // observations fall back to linear inside the bucket.
        estimate = lower + (upper - lower) * frac;
      }
      break;
    }
    seen += c;
  }
  return std::clamp(estimate, min(), max());
}

void Histogram::merge_from(const Histogram& other) noexcept {
  std::uint64_t merged = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = other.buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (c == 0) continue;
    buckets_[static_cast<std::size_t>(i)].fetch_add(c,
                                                    std::memory_order_relaxed);
    merged += c;
  }
  if (merged == 0) return;
  if (count_.fetch_add(merged, std::memory_order_relaxed) == 0) {
    min_.store(other.min(), std::memory_order_relaxed);
    max_.store(other.max(), std::memory_order_relaxed);
  } else {
    atomic_min(min_, other.min());
    atomic_max(max_, other.max());
  }
  atomic_add(sum_, other.sum());
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

Json Histogram::to_json() const {
  Json j = Json::object();
  j["count"] = count();
  j["sum"] = sum();
  j["min"] = min();
  j["max"] = max();
  j["p50"] = quantile(0.50);
  j["p90"] = quantile(0.90);
  j["p95"] = quantile(0.95);
  j["p99"] = quantile(0.99);
  Json buckets = Json::array();
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (c == 0) continue;
    Json b = Json::object();
    b["le"] = bucket_upper(i);
    b["count"] = c;
    buckets.push_back(std::move(b));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

// -- Gauge --------------------------------------------------------------------

void Gauge::set(std::int64_t v) noexcept {
  value_.store(v, std::memory_order_relaxed);
  atomic_max_i64(peak_, v);
}

void Gauge::add(std::int64_t delta) noexcept {
  const std::int64_t now =
      value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  if (delta > 0) atomic_max_i64(peak_, now);
}

Json Gauge::to_json() const {
  Json j = Json::object();
  j["value"] = value();
  j["peak"] = peak();
  return j;
}

// -- WindowedHistogram --------------------------------------------------------

WindowedHistogram::WindowedHistogram(std::int64_t slot_millis) noexcept
    : slot_millis_(slot_millis > 0 ? slot_millis : kDefaultSlotMillis) {}

std::int64_t WindowedHistogram::now_millis() noexcept {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void WindowedHistogram::record_at(double value, std::int64_t now_ms) noexcept {
  // Cumulative view first: it never loses an observation, whatever the
  // rotation below does.
  cumulative_.record(value);
  const std::int64_t epoch = now_ms / slot_millis_;
  Slot& slot = slots_[static_cast<std::size_t>(
      epoch % static_cast<std::int64_t>(kSlots))];
  std::int64_t seen = slot.epoch.load(std::memory_order_relaxed);
  if (seen != epoch) {
    // First touch of this slot in a new epoch: the CAS winner clears the
    // stale contents. A record racing the clear may be partially lost from
    // the window (documented; the cumulative view above is exact).
    if (slot.epoch.compare_exchange_strong(seen, epoch,
                                           std::memory_order_relaxed)) {
      slot.hist.reset();
    }
  }
  slot.hist.record(value);
}

void WindowedHistogram::merge_window_at(Histogram& out,
                                        std::int64_t now_ms) const noexcept {
  const std::int64_t current = now_ms / slot_millis_;
  const std::int64_t oldest = current - static_cast<std::int64_t>(kSlots) + 1;
  for (const Slot& slot : slots_) {
    const std::int64_t epoch = slot.epoch.load(std::memory_order_relaxed);
    if (epoch >= oldest && epoch <= current) out.merge_from(slot.hist);
  }
}

double WindowedHistogram::window_quantile_at(double q,
                                             std::int64_t now_ms) const
    noexcept {
  Histogram merged;
  merge_window_at(merged, now_ms);
  return merged.quantile(q);  // 0 when the window is empty
}

std::uint64_t WindowedHistogram::window_count_at(std::int64_t now_ms) const
    noexcept {
  Histogram merged;
  merge_window_at(merged, now_ms);
  return merged.count();
}

void WindowedHistogram::reset() noexcept {
  for (Slot& slot : slots_) {
    slot.epoch.store(-1, std::memory_order_relaxed);
    slot.hist.reset();
  }
  cumulative_.reset();
}

Json WindowedHistogram::to_json_at(std::int64_t now_ms) const {
  Histogram merged;
  merge_window_at(merged, now_ms);
  Json window = Json::object();
  window["count"] = merged.count();
  window["p50"] = merged.quantile(0.50);
  window["p90"] = merged.quantile(0.90);
  window["p99"] = merged.quantile(0.99);
  Json j = Json::object();
  j["slot_ms"] = slot_millis_;
  j["slots"] = kSlots;
  j["window"] = std::move(window);
  j["cumulative"] = cumulative_.to_json();
  return j;
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  counter(name).add(delta);
}

void MetricsRegistry::update_max(std::string_view name, std::uint64_t v) {
  if (!enabled()) return;
  auto& cell = counter(name).value;
  std::uint64_t seen = cell.load(std::memory_order_relaxed);
  while (seen < v &&
         !cell.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t MetricsRegistry::value(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second->value.load(std::memory_order_relaxed);
}

MetricsRegistry::Span& MetricsRegistry::span(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = spans_.find(name);
  if (it != spans_.end()) return *it->second;
  return *spans_.emplace(std::string(name), std::make_unique<Span>())
              .first->second;
}

void MetricsRegistry::record_span(std::string_view name, double seconds) {
  if (!enabled()) return;
  Span& cell = span(name);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  const double clamped = seconds > 0 ? seconds : 0;
  cell.nanos.fetch_add(
      static_cast<std::uint64_t>(std::llround(clamped * kNanosPerSecond)),
      std::memory_order_relaxed);
}

double MetricsRegistry::span_seconds(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = spans_.find(name);
  return it == spans_.end()
             ? 0.0
             : static_cast<double>(
                   it->second->nanos.load(std::memory_order_relaxed)) /
                   kNanosPerSecond;
}

std::uint64_t MetricsRegistry::span_count(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = spans_.find(name);
  return it == spans_.end()
             ? 0
             : it->second->count.load(std::memory_order_relaxed);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

void MetricsRegistry::gauge_set(std::string_view name, std::int64_t v) {
  if (!enabled()) return;
  gauge(name).set(v);
}

void MetricsRegistry::gauge_add(std::string_view name, std::int64_t delta) {
  if (!enabled()) return;
  gauge(name).add(delta);
}

void MetricsRegistry::gauge_sub(std::string_view name, std::int64_t delta) {
  if (!enabled()) return;
  gauge(name).sub(delta);
}

std::int64_t MetricsRegistry::gauge_value(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

WindowedHistogram& MetricsRegistry::windowed_histogram(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = windowed_.find(name);
  if (it != windowed_.end()) return *it->second;
  return *windowed_
              .emplace(std::string(name), std::make_unique<WindowedHistogram>())
              .first->second;
}

void MetricsRegistry::observe_windowed(std::string_view name, double value) {
  if (!enabled()) return;
  windowed_histogram(name).record(value);
}

void MetricsRegistry::observe(std::string_view name, double value) {
  if (!enabled()) return;
  histogram(name).record(value);
}

std::uint64_t MetricsRegistry::histogram_count(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? 0 : it->second->count();
}

void MetricsRegistry::reset() {
  const MutexLock lock(mu_);
  for (auto& [name, cell] : counters_) {
    cell->value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : spans_) {
    cell->count.store(0, std::memory_order_relaxed);
    cell->nanos.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : histograms_) cell->reset();
  for (auto& [name, cell] : gauges_) cell->reset();
  for (auto& [name, cell] : windowed_) cell->reset();
  // snapshot_seq_ deliberately survives: consumers order dumps by it and
  // detect the reset from counters moving backwards.
}

Json MetricsRegistry::to_json() const {
  const MutexLock lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, cell] : counters_) {
    counters[name] = cell->value.load(std::memory_order_relaxed);
  }
  Json gauges = Json::object();
  for (const auto& [name, cell] : gauges_) gauges[name] = cell->to_json();
  Json spans = Json::object();
  for (const auto& [name, cell] : spans_) {
    Json entry = Json::object();
    entry["count"] = cell->count.load(std::memory_order_relaxed);
    entry["seconds"] =
        static_cast<double>(cell->nanos.load(std::memory_order_relaxed)) /
        kNanosPerSecond;
    spans[name] = std::move(entry);
  }
  Json histograms = Json::object();
  for (const auto& [name, cell] : histograms_) {
    histograms[name] = cell->to_json();
  }
  Json windowed = Json::object();
  for (const auto& [name, cell] : windowed_) windowed[name] = cell->to_json();
  Json out = Json::object();
  out["enabled"] = enabled();
  out["snapshot_seq"] =
      snapshot_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["spans"] = std::move(spans);
  out["histograms"] = std::move(histograms);
  out["window_quantiles"] = std::move(windowed);
  return out;
}

Json MetricsRegistry::telemetry_sample() const {
  const MutexLock lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, cell] : counters_) {
    counters[name] = cell->value.load(std::memory_order_relaxed);
  }
  Json gauges = Json::object();
  for (const auto& [name, cell] : gauges_) gauges[name] = cell->value();
  Json windowed = Json::object();
  for (const auto& [name, cell] : windowed_) {
    const std::int64_t now_ms = WindowedHistogram::now_millis();
    Json entry = Json::object();
    entry["count"] = cell->window_count_at(now_ms);
    entry["p50"] = cell->window_quantile_at(0.50, now_ms);
    entry["p90"] = cell->window_quantile_at(0.90, now_ms);
    entry["p99"] = cell->window_quantile_at(0.99, now_ms);
    const Histogram& cumulative = cell->cumulative();
    entry["cumulative_count"] = cumulative.count();
    entry["cumulative_p50"] = cumulative.quantile(0.50);
    entry["cumulative_p99"] = cumulative.quantile(0.99);
    windowed[name] = std::move(entry);
  }
  Json out = Json::object();
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["window_quantiles"] = std::move(windowed);
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace extdict::util
