#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace extdict::util {

namespace {

constexpr double kNanosPerSecond = 1e9;

// CAS-loop add/min/max on atomic<double> (fetch_add on floating atomics is
// C++20 but spotty across standard libraries; the loop is portable).
void atomic_add(std::atomic<double>& cell, double delta) noexcept {
  double seen = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(seen, seen + delta,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& cell, double v) noexcept {
  double seen = cell.load(std::memory_order_relaxed);
  while (v < seen &&
         !cell.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& cell, double v) noexcept {
  double seen = cell.load(std::memory_order_relaxed);
  while (v > seen &&
         !cell.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

// -- Histogram ----------------------------------------------------------------

void Histogram::record(double value) noexcept {
  int bucket = 0;
  if (value >= kFirstLower) {
    bucket = static_cast<int>(
        kBucketsPerDecade * (std::log10(value) - std::log10(kFirstLower)));
    bucket = std::clamp(bucket, 0, kBucketCount - 1);
  }
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  // First observation seeds min/max; racing seeders then CAS toward the true
  // extremes, so the pair is exact once every writer has returned.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    atomic_min(min_, value);
    atomic_max(max_, value);
  }
  atomic_add(sum_, value);
}

double Histogram::bucket_upper(int i) noexcept {
  return kFirstLower *
         std::pow(10.0, static_cast<double>(i + 1) / kBucketsPerDecade);
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  double estimate = max();
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      // Log-interpolate inside the bucket by the rank's fraction of it.
      // Bucket 0 also absorbs every underflow observation (`record` clamps
      // values below kFirstLower into it), so its true lower edge is the
      // smallest value seen, not kFirstLower — interpolating from
      // kFirstLower would overestimate low quantiles whenever sub-range
      // values were recorded.
      const double lower =
          i == 0 ? std::min(min(), kFirstLower) : bucket_upper(i - 1);
      const double upper = bucket_upper(i);
      const double frac =
          static_cast<double>(rank - seen) / static_cast<double>(c);
      if (lower > 0) {
        estimate = lower * std::pow(upper / lower, frac);
      } else {
        // Log interpolation needs a positive base; with zero/negative
        // observations fall back to linear inside the bucket.
        estimate = lower + (upper - lower) * frac;
      }
      break;
    }
    seen += c;
  }
  return std::clamp(estimate, min(), max());
}

void Histogram::merge_from(const Histogram& other) noexcept {
  std::uint64_t merged = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = other.buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
    if (c == 0) continue;
    buckets_[static_cast<std::size_t>(i)].fetch_add(c,
                                                    std::memory_order_relaxed);
    merged += c;
  }
  if (merged == 0) return;
  if (count_.fetch_add(merged, std::memory_order_relaxed) == 0) {
    min_.store(other.min(), std::memory_order_relaxed);
    max_.store(other.max(), std::memory_order_relaxed);
  } else {
    atomic_min(min_, other.min());
    atomic_max(max_, other.max());
  }
  atomic_add(sum_, other.sum());
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

Json Histogram::to_json() const {
  Json j = Json::object();
  j["count"] = count();
  j["sum"] = sum();
  j["min"] = min();
  j["max"] = max();
  j["p50"] = quantile(0.50);
  j["p90"] = quantile(0.90);
  j["p95"] = quantile(0.95);
  j["p99"] = quantile(0.99);
  Json buckets = Json::array();
  for (int i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    if (c == 0) continue;
    Json b = Json::object();
    b["le"] = bucket_upper(i);
    b["count"] = c;
    buckets.push_back(std::move(b));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  counter(name).add(delta);
}

void MetricsRegistry::update_max(std::string_view name, std::uint64_t v) {
  if (!enabled()) return;
  auto& cell = counter(name).value;
  std::uint64_t seen = cell.load(std::memory_order_relaxed);
  while (seen < v &&
         !cell.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t MetricsRegistry::value(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second->value.load(std::memory_order_relaxed);
}

MetricsRegistry::Span& MetricsRegistry::span(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = spans_.find(name);
  if (it != spans_.end()) return *it->second;
  return *spans_.emplace(std::string(name), std::make_unique<Span>())
              .first->second;
}

void MetricsRegistry::record_span(std::string_view name, double seconds) {
  if (!enabled()) return;
  Span& cell = span(name);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  const double clamped = seconds > 0 ? seconds : 0;
  cell.nanos.fetch_add(
      static_cast<std::uint64_t>(std::llround(clamped * kNanosPerSecond)),
      std::memory_order_relaxed);
}

double MetricsRegistry::span_seconds(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = spans_.find(name);
  return it == spans_.end()
             ? 0.0
             : static_cast<double>(
                   it->second->nanos.load(std::memory_order_relaxed)) /
                   kNanosPerSecond;
}

std::uint64_t MetricsRegistry::span_count(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = spans_.find(name);
  return it == spans_.end()
             ? 0
             : it->second->count.load(std::memory_order_relaxed);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  if (!enabled()) return;
  histogram(name).record(value);
}

std::uint64_t MetricsRegistry::histogram_count(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? 0 : it->second->count();
}

void MetricsRegistry::reset() {
  const MutexLock lock(mu_);
  for (auto& [name, cell] : counters_) {
    cell->value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : spans_) {
    cell->count.store(0, std::memory_order_relaxed);
    cell->nanos.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : histograms_) cell->reset();
}

Json MetricsRegistry::to_json() const {
  const MutexLock lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, cell] : counters_) {
    counters[name] = cell->value.load(std::memory_order_relaxed);
  }
  Json spans = Json::object();
  for (const auto& [name, cell] : spans_) {
    Json entry = Json::object();
    entry["count"] = cell->count.load(std::memory_order_relaxed);
    entry["seconds"] =
        static_cast<double>(cell->nanos.load(std::memory_order_relaxed)) /
        kNanosPerSecond;
    spans[name] = std::move(entry);
  }
  Json histograms = Json::object();
  for (const auto& [name, cell] : histograms_) {
    histograms[name] = cell->to_json();
  }
  Json out = Json::object();
  out["counters"] = std::move(counters);
  out["spans"] = std::move(spans);
  out["histograms"] = std::move(histograms);
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace extdict::util
