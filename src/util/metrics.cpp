#include "util/metrics.hpp"

#include <cmath>

namespace extdict::util {

namespace {

constexpr double kNanosPerSecond = 1e9;

}  // namespace

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  counter(name).add(delta);
}

void MetricsRegistry::update_max(std::string_view name, std::uint64_t v) {
  if (!enabled()) return;
  auto& cell = counter(name).value;
  std::uint64_t seen = cell.load(std::memory_order_relaxed);
  while (seen < v &&
         !cell.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t MetricsRegistry::value(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second->value.load(std::memory_order_relaxed);
}

MetricsRegistry::Span& MetricsRegistry::span(std::string_view name) {
  const MutexLock lock(mu_);
  const auto it = spans_.find(name);
  if (it != spans_.end()) return *it->second;
  return *spans_.emplace(std::string(name), std::make_unique<Span>())
              .first->second;
}

void MetricsRegistry::record_span(std::string_view name, double seconds) {
  if (!enabled()) return;
  Span& cell = span(name);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  const double clamped = seconds > 0 ? seconds : 0;
  cell.nanos.fetch_add(
      static_cast<std::uint64_t>(std::llround(clamped * kNanosPerSecond)),
      std::memory_order_relaxed);
}

double MetricsRegistry::span_seconds(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = spans_.find(name);
  return it == spans_.end()
             ? 0.0
             : static_cast<double>(
                   it->second->nanos.load(std::memory_order_relaxed)) /
                   kNanosPerSecond;
}

std::uint64_t MetricsRegistry::span_count(std::string_view name) const {
  const MutexLock lock(mu_);
  const auto it = spans_.find(name);
  return it == spans_.end()
             ? 0
             : it->second->count.load(std::memory_order_relaxed);
}

void MetricsRegistry::reset() {
  const MutexLock lock(mu_);
  for (auto& [name, cell] : counters_) {
    cell->value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : spans_) {
    cell->count.store(0, std::memory_order_relaxed);
    cell->nanos.store(0, std::memory_order_relaxed);
  }
}

Json MetricsRegistry::to_json() const {
  const MutexLock lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, cell] : counters_) {
    counters[name] = cell->value.load(std::memory_order_relaxed);
  }
  Json spans = Json::object();
  for (const auto& [name, cell] : spans_) {
    Json entry = Json::object();
    entry["count"] = cell->count.load(std::memory_order_relaxed);
    entry["seconds"] =
        static_cast<double>(cell->nanos.load(std::memory_order_relaxed)) /
        kNanosPerSecond;
    spans[name] = std::move(entry);
  }
  Json out = Json::object();
  out["counters"] = std::move(counters);
  out["spans"] = std::move(spans);
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace extdict::util
