#include "util/trace.hpp"

#include <algorithm>
#include <map>
#include <string>

namespace extdict::util {

namespace {

/// TLS registration: each thread caches (recorder, buffer) pairs it has
/// written to. The id disambiguates a stack-allocated recorder whose address
/// gets reused after destruction (tests) — a stale entry then misses and the
/// thread registers a fresh buffer with the new recorder.
struct TlsEntry {
  const void* recorder = nullptr;
  std::uint64_t id = 0;
  void* buffer = nullptr;
};

thread_local std::vector<TlsEntry> tls_entries;
thread_local std::int32_t tls_rank = TraceRecorder::kHostPid;

std::atomic<std::uint64_t> next_recorder_id{1};

}  // namespace

/// One thread's bounded event ring. Single writer (the owning thread);
/// `size` is released after each write so a post-join reader sees complete
/// events. Overflow drops the new event — older events are never clobbered.
struct TraceRecorder::ThreadBuffer {
  ThreadBuffer(std::size_t capacity, std::int32_t rank_at_creation,
               std::size_t registration_seq)
      : events(capacity), rank(rank_at_creation), seq(registration_seq) {}

  std::vector<Event> events;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  std::int32_t rank;
  std::size_t seq;
};

TraceRecorder::TraceRecorder()
    : epoch_(std::chrono::steady_clock::now()),
      id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::set_capacity(std::size_t events_per_thread) {
  const MutexLock lock(mu_);
  capacity_ = events_per_thread;
}

void TraceRecorder::set_thread_rank(std::int32_t rank) {
  tls_rank = rank;
  // Preallocate the buffer now (rank startup), so the first metered phase
  // does not pay the registration. Only when events would actually land.
  if (enabled()) (void)thread_buffer();
}

std::int32_t TraceRecorder::thread_rank() noexcept { return tls_rank; }

TraceRecorder::ThreadBuffer& TraceRecorder::thread_buffer() {
  for (const TlsEntry& entry : tls_entries) {
    if (entry.recorder == this && entry.id == id_) {
      return *static_cast<ThreadBuffer*>(entry.buffer);
    }
  }
  ThreadBuffer* buffer = nullptr;
  {
    const MutexLock lock(mu_);
    buffers_.push_back(
        std::make_unique<ThreadBuffer>(capacity_, tls_rank, buffers_.size()));
    buffer = buffers_.back().get();
  }
  for (TlsEntry& entry : tls_entries) {
    if (entry.recorder == this) {  // stale id: recorder address was reused
      entry = TlsEntry{this, id_, buffer};
      return *buffer;
    }
  }
  tls_entries.push_back(TlsEntry{this, id_, buffer});
  return *buffer;
}

void TraceRecorder::record(EventKind kind, std::string_view name,
                           std::string_view key0, std::uint64_t value0,
                           std::string_view key1, std::uint64_t value1) {
  ThreadBuffer& buffer = thread_buffer();
  const std::size_t i = buffer.size.load(std::memory_order_relaxed);
  if (i >= buffer.events.size()) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& e = buffer.events[i];
  e.kind = kind;
  e.ts_ns = now_ns();
  e.name = name;
  e.key0 = key0;
  e.key1 = key1;
  e.value0 = value0;
  e.value1 = value1;
  buffer.size.store(i + 1, std::memory_order_release);
}

void TraceRecorder::begin(std::string_view name, std::string_view key0,
                          std::uint64_t value0, std::string_view key1,
                          std::uint64_t value1) {
  if (!enabled()) return;
  record(EventKind::kBegin, name, key0, value0, key1, value1);
}

void TraceRecorder::end(std::string_view name, std::string_view key0,
                        std::uint64_t value0) {
  if (!enabled()) return;
  record(EventKind::kEnd, name, key0, value0, {}, 0);
}

void TraceRecorder::end_unchecked(std::string_view name, std::string_view key0,
                                  std::uint64_t value0) {
  record(EventKind::kEnd, name, key0, value0, {}, 0);
}

void TraceRecorder::instant(std::string_view name, std::string_view key0,
                            std::uint64_t value0) {
  if (!enabled()) return;
  record(EventKind::kInstant, name, key0, value0, {}, 0);
}

void TraceRecorder::counter(std::string_view name, std::uint64_t value) {
  if (!enabled()) return;
  record(EventKind::kCounter, name, "value", value, {}, 0);
}

std::uint64_t TraceRecorder::recorded_events() const {
  const MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->size.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t TraceRecorder::dropped_events() const {
  const MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::pair<std::int32_t, std::uint64_t>>
TraceRecorder::rank_event_counts() const {
  const MutexLock lock(mu_);
  std::map<std::int32_t, std::uint64_t> counts;
  for (const auto& buffer : buffers_) {
    const std::size_t size = buffer->size.load(std::memory_order_acquire);
    if (size > 0) counts[buffer->rank] += size;
  }
  return {counts.begin(), counts.end()};
}

void TraceRecorder::set_metadata(std::string_view key, Json value) {
  const MutexLock lock(mu_);
  for (auto& [existing, v] : metadata_) {
    if (existing == key) {
      v = std::move(value);
      return;
    }
  }
  metadata_.emplace_back(std::string(key), std::move(value));
}

void TraceRecorder::clear() {
  const MutexLock lock(mu_);
  for (auto& buffer : buffers_) {
    buffer->size.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

Json TraceRecorder::to_chrome_json() const {
  const MutexLock lock(mu_);

  // Snapshot sizes once so the emitted arrays and the otherData totals agree
  // even if a stray writer is still live.
  std::vector<std::size_t> sizes(buffers_.size());
  std::uint64_t recorded = 0, dropped = 0;
  for (std::size_t b = 0; b < buffers_.size(); ++b) {
    sizes[b] = buffers_[b]->size.load(std::memory_order_acquire);
    recorded += sizes[b];
    dropped += buffers_[b]->dropped.load(std::memory_order_relaxed);
  }

  Json events = Json::array();

  // Lane metadata first: one process per rank (pid == rank; untagged threads
  // share the kHostPid lane), one named thread per buffer.
  std::map<std::int32_t, std::uint64_t> rank_counts;
  for (std::size_t b = 0; b < buffers_.size(); ++b) {
    if (sizes[b] > 0) rank_counts[buffers_[b]->rank] += sizes[b];
  }
  for (const auto& [rank, count] : rank_counts) {
    Json name_args = Json::object();
    name_args["name"] = rank == kHostPid
                            ? std::string("host")
                            : "rank " + std::to_string(rank);
    Json name_ev = Json::object();
    name_ev["name"] = "process_name";
    name_ev["ph"] = "M";
    name_ev["pid"] = static_cast<std::int64_t>(rank);
    name_ev["tid"] = 0;
    name_ev["args"] = std::move(name_args);
    events.push_back(std::move(name_ev));

    Json sort_args = Json::object();
    sort_args["sort_index"] = static_cast<std::int64_t>(rank);
    Json sort_ev = Json::object();
    sort_ev["name"] = "process_sort_index";
    sort_ev["ph"] = "M";
    sort_ev["pid"] = static_cast<std::int64_t>(rank);
    sort_ev["tid"] = 0;
    sort_ev["args"] = std::move(sort_args);
    events.push_back(std::move(sort_ev));
  }
  for (std::size_t b = 0; b < buffers_.size(); ++b) {
    if (sizes[b] == 0) continue;
    Json args = Json::object();
    args["name"] = "worker " + std::to_string(buffers_[b]->seq);
    Json ev = Json::object();
    ev["name"] = "thread_name";
    ev["ph"] = "M";
    ev["pid"] = static_cast<std::int64_t>(buffers_[b]->rank);
    ev["tid"] = static_cast<std::uint64_t>(buffers_[b]->seq);
    ev["args"] = std::move(args);
    events.push_back(std::move(ev));
  }

  for (std::size_t b = 0; b < buffers_.size(); ++b) {
    const ThreadBuffer& buffer = *buffers_[b];
    for (std::size_t i = 0; i < sizes[b]; ++i) {
      const Event& e = buffer.events[i];
      Json ev = Json::object();
      ev["name"] = e.name;
      switch (e.kind) {
        case EventKind::kBegin: ev["ph"] = "B"; break;
        case EventKind::kEnd: ev["ph"] = "E"; break;
        case EventKind::kInstant: ev["ph"] = "i"; break;
        case EventKind::kCounter: ev["ph"] = "C"; break;
      }
      ev["ts"] = static_cast<double>(e.ts_ns) / 1e3;  // Chrome: microseconds
      ev["pid"] = static_cast<std::int64_t>(buffer.rank);
      ev["tid"] = static_cast<std::uint64_t>(buffer.seq);
      if (e.kind == EventKind::kInstant) ev["s"] = "t";  // thread-scoped
      if (!e.key0.empty() || !e.key1.empty()) {
        Json args = Json::object();
        if (!e.key0.empty()) args[e.key0] = e.value0;
        if (!e.key1.empty()) args[e.key1] = e.value1;
        ev["args"] = std::move(args);
      }
      events.push_back(std::move(ev));
    }
  }

  Json other = Json::object();
  for (const auto& [key, value] : metadata_) other[key] = value;
  other["recorded_events"] = recorded;
  other["dropped_events"] = dropped;
  Json rank_events = Json::object();
  for (const auto& [rank, count] : rank_counts) {
    rank_events[std::to_string(rank)] = count;
  }
  other["rank_events"] = std::move(rank_events);

  Json doc = Json::object();
  doc["displayTimeUnit"] = "ms";
  doc["otherData"] = std::move(other);
  doc["traceEvents"] = std::move(events);
  return doc;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

}  // namespace extdict::util
