#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace extdict::util {

namespace {

[[noreturn]] void fail(std::size_t offset, const char* what) {
  throw std::runtime_error("Json::parse: " + std::string(what) +
                           " at byte " + std::to_string(offset));
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through untouched
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; emit null like every tolerant serialiser does.
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  // Shortest representation that parses back to the same double.
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage");
    return value;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, "unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out, parse_hex4()); break;
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail(pos_ - 1, "bad \\u escape");
    }
    return value;
  }

  void append_codepoint(std::string& out, unsigned cp) {
    // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (!consume_literal("\\u")) fail(pos_, "lone high surrogate");
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail(pos_, "bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    }
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail(start, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail(start, "bad number");
    return Json(v);
  }
};

}  // namespace

Json& Json::operator[](std::string_view key) {
  if (is_null()) value_ = Object{};
  if (!is_object()) throw std::runtime_error("Json::operator[]: not an object");
  auto& object = std::get<Object>(value_);
  for (auto& [k, v] : object) {
    if (k == key) return v;
  }
  object.emplace_back(std::string(key), Json());
  return object.back().second;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  if (!is_array()) throw std::runtime_error("Json::push_back: not an array");
  std::get<Array>(value_).push_back(std::move(v));
}

const Json* Json::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(value_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  if (const Json* v = find(key)) return *v;
  throw std::out_of_range("Json::at: no member '" + std::string(key) + "'");
}

bool Json::as_bool() const {
  if (!is_bool()) throw std::runtime_error("Json: not a bool");
  return std::get<bool>(value_);
}

double Json::as_double() const {
  if (!is_number()) throw std::runtime_error("Json: not a number");
  return std::get<double>(value_);
}

std::uint64_t Json::as_u64() const {
  const double v = as_double();
  if (v < 0 || v != std::floor(v)) {
    throw std::runtime_error("Json: not an unsigned integer");
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
  if (!is_string()) throw std::runtime_error("Json: not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) throw std::runtime_error("Json: not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) throw std::runtime_error("Json: not an object");
  return std::get<Object>(value_);
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (type()) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += std::get<bool>(value_) ? "true" : "false"; break;
    case Type::kNumber: append_number(out, std::get<double>(value_)); break;
    case Type::kString: append_escaped(out, std::get<std::string>(value_)); break;
    case Type::kArray: {
      const auto& arr = std::get<Array>(value_);
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        arr[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      const auto& obj = std::get<Object>(value_);
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        append_escaped(out, obj[i].first);
        out += indent > 0 ? ": " : ":";
        obj[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace extdict::util
