#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>

#include "util/metrics.hpp"
#include "util/sync.hpp"

namespace extdict::util {

struct TelemetryOptions {
  /// Sampling period. Values < 1 clamp to 1.
  std::int64_t period_ms = 100;
};

/// Periodic registry exporter: a background thread samples
/// `MetricsRegistry::telemetry_sample()` every `period_ms` and appends one
/// JSONL record per sample to `path`:
///
///   {"seq": k, "wall_ms": t, "counters": {...}, "gauges": {...},
///    "window_quantiles": {...}}
///
/// `seq` starts at 0 and increments by exactly 1 per record; `wall_ms` is
/// milliseconds since the snapshotter started (steady clock, so records are
/// time-ordered even across system clock jumps). Field order is insertion
/// order (util::Json), so the emitted schema is byte-stable for a given
/// registry population — consumers (`tools/analyze_telemetry.py`) parse it
/// line by line.
///
/// Lifecycle: construction opens the file and starts the thread; `stop()`
/// (idempotent, also run by the destructor) signals the worker, which writes
/// ONE final sample after observing the signal — so the last record reflects
/// the registry state at (or after) the stop call — flushes, and exits;
/// `stop()` then joins. After `stop()` returns the file is complete on disk.
///
/// Locking: `mu_` (leaf) guards only the stop flag under the condvar; the
/// registry sample takes the registry's own leaf internally; file I/O
/// happens with no lock held (the stream is owned by the worker thread, and
/// by `stop()` only after the join).
class TelemetrySnapshotter {
 public:
  TelemetrySnapshotter(MetricsRegistry& registry, std::string path,
                       TelemetryOptions options = {});

  /// Stops and flushes (never throws out of a destructor path).
  ~TelemetrySnapshotter();

  TelemetrySnapshotter(const TelemetrySnapshotter&) = delete;
  TelemetrySnapshotter& operator=(const TelemetrySnapshotter&) = delete;

  /// Idempotent; concurrent calls serialize and all return after the worker
  /// has written its final record and exited.
  void stop();

  /// False when the output file could not be opened (the worker then idles
  /// without writing; the error is the caller's to surface).
  [[nodiscard]] bool ok() const noexcept {
    return ok_.load(std::memory_order_relaxed);
  }

  /// Records written so far (racy read; exact once `stop()` returned).
  [[nodiscard]] std::uint64_t snapshots_written() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  using Clock = std::chrono::steady_clock;

  void run();
  /// Worker-thread only: sample the registry and append one record.
  void write_sample(double wall_ms);

  MetricsRegistry& registry_;
  const std::string path_;
  const std::chrono::milliseconds period_;
  // Worker-thread-owned after construction: the constructor opens it before
  // the thread starts, only run()/write_sample() touch it afterwards, and
  // stop() returns only after the worker (which flushes on exit) has joined.
  // extdict-analyze: allow(guarded-by) worker-thread-owned stream; stop() joins before returning
  std::ofstream out_;

  // Leaf lock: guards the stop flag the worker's timed condvar wait watches.
  util::Mutex mu_;
  CondVar cv_;
  bool stop_requested_ EXTDICT_GUARDED_BY(mu_) = false;

  // NOT a leaf lock (documented exception to the util/sync.hpp policy):
  // stop() holds it across the stop-flag publication (-> mu_) and the worker
  // join so concurrent stops serialize on the complete shutdown, exactly the
  // ExtDictServer::stop_mu_ pattern. The worker never touches stop_mu_.
  // extdict-analyze: non-leaf(TelemetrySnapshotter::stop_mu_ -> TelemetrySnapshotter::mu_)
  util::Mutex stop_mu_;
  bool stopped_ EXTDICT_GUARDED_BY(stop_mu_) = false;
  // Written only by the constructor (pre-publication) and joined by stop()
  // under stop_mu_ — the ExtDictServer::workers_ convention.
  std::thread worker_ EXTDICT_GUARDED_BY(stop_mu_);

  std::atomic<bool> ok_{false};
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace extdict::util
