#pragma once

#include <span>
#include <stdexcept>
#include <string>

#include "la/types.hpp"

/// Runtime shape/invariant contracts for the linear-algebra and learning
/// kernels.
///
/// Three macros with two cost classes:
///
///   * `EXTDICT_REQUIRE_SHAPE(cond, detail)` — O(1) dimension checks at
///     kernel entry. Always compiled in (existing callers rely on kernels
///     throwing on shape mismatch); with `EXTDICT_CHECKS=ON` the exception
///     carries file:line, the failed expression, and the `detail` string,
///     without checks it throws the historical terse message. Failures throw
///     `ContractViolation`, which derives from `std::invalid_argument` so
///     pre-contract call sites keep working.
///
///   * `EXTDICT_ASSERT(cond, detail)` and `EXTDICT_CHECK_FINITE(span, what)`
///     — per-call / O(n)-scan checks off the innermost loops. Compiled to
///     no-ops unless `EXTDICT_CHECKS=ON` (the `EXTDICT_ENABLE_CHECKS`
///     definition), so Release throughput is unaffected.
///
///   * `EXTDICT_HOT_ASSERT(cond, detail)` — checks *inside* innermost loops
///     (per element access, per nonzero). Active only when contracts are on
///     AND the build is unoptimised (`!NDEBUG`, i.e. the `debug-checks`
///     preset); a Release+`EXTDICT_CHECKS` build keeps its kernel throughput
///     (see BENCH_sanitizer_overhead.json) while retaining the entry
///     contracts and finiteness scans.
///
/// `detail` is only evaluated on failure (and never in disabled builds), so
/// call sites can build rich `std::string` diagnostics without hot-path cost.
namespace extdict::util {

/// Thrown on any contract failure. Derives from std::invalid_argument so
/// legacy `EXPECT_THROW(..., std::invalid_argument)` tests and callers that
/// catch the pre-contract exceptions continue to work.
class ContractViolation : public std::invalid_argument {
 public:
  explicit ContractViolation(const std::string& what)
      : std::invalid_argument(what) {}
};

/// True when the library was built with EXTDICT_CHECKS=ON.
constexpr bool checks_enabled() noexcept {
#ifdef EXTDICT_ENABLE_CHECKS
  return true;
#else
  return false;
#endif
}

/// Throws ContractViolation with full location info (checked builds).
[[noreturn]] void contract_failure(const char* kind, const char* file, int line,
                                   const char* expr, const std::string& detail);

/// Throws ContractViolation with the terse legacy message (unchecked builds).
[[noreturn]] void shape_failure(const char* func);

/// Index of the first non-finite entry of `x`, or -1 if all entries are
/// finite (NaN and +/-inf both count as non-finite).
[[nodiscard]] la::Index first_non_finite(std::span<const la::Real> x) noexcept;

/// "RxC" shape string for contract diagnostics.
[[nodiscard]] std::string shape_string(la::Index rows, la::Index cols);

}  // namespace extdict::util

// ---------------------------------------------------------------------------
// Static-analysis markers (tools/extdict-analyze.py).
//
// Contract macros vanish during preprocessing, so an AST-level analyzer cannot
// see which source lines evaluated a contract. Under -DEXTDICT_ANALYZE (set
// only by the analyzer's -fsyntax-only front-end, never by a real build) each
// contract macro additionally evaluates a distinct, declared-but-never-defined
// marker function. The calls survive into the Clang AST with accurate
// expansion locations and are never linked, so the markers need no definition.
// Normal builds compile EXTDICT_ANALYZE_MARK to ((void)0).
#ifdef EXTDICT_ANALYZE
namespace extdict::util::analyze {
void mark_require_shape();
void mark_assert();
void mark_hot_assert();
void mark_check_finite();
}  // namespace extdict::util::analyze
#define EXTDICT_ANALYZE_MARK(name) ::extdict::util::analyze::mark_##name()
#else
#define EXTDICT_ANALYZE_MARK(name) ((void)0)
#endif

#ifdef EXTDICT_ENABLE_CHECKS

#ifndef NDEBUG
#define EXTDICT_HOT_ASSERT(cond, detail)                                  \
  do {                                                                    \
    EXTDICT_ANALYZE_MARK(hot_assert);                                     \
    if (!(cond)) [[unlikely]] {                                           \
      ::extdict::util::contract_failure("assertion", __FILE__, __LINE__,  \
                                        #cond, (detail));                 \
    }                                                                     \
  } while (0)
#else
#define EXTDICT_HOT_ASSERT(cond, detail) \
  (EXTDICT_ANALYZE_MARK(hot_assert), (void)sizeof(!(cond)))
#endif

#define EXTDICT_ASSERT(cond, detail)                                      \
  do {                                                                    \
    EXTDICT_ANALYZE_MARK(assert);                                         \
    if (!(cond)) [[unlikely]] {                                           \
      ::extdict::util::contract_failure("assertion", __FILE__, __LINE__,  \
                                        #cond, (detail));                 \
    }                                                                     \
  } while (0)

#define EXTDICT_REQUIRE_SHAPE(cond, detail)                               \
  do {                                                                    \
    EXTDICT_ANALYZE_MARK(require_shape);                                  \
    if (!(cond)) [[unlikely]] {                                           \
      ::extdict::util::contract_failure("shape requirement", __FILE__,    \
                                        __LINE__, #cond, (detail));       \
    }                                                                     \
  } while (0)

#define EXTDICT_CHECK_FINITE(span_expr, what)                             \
  do {                                                                    \
    EXTDICT_ANALYZE_MARK(check_finite);                                   \
    const ::extdict::la::Index extdict_nf_ =                              \
        ::extdict::util::first_non_finite(span_expr);                     \
    if (extdict_nf_ >= 0) [[unlikely]] {                                  \
      ::extdict::util::contract_failure(                                  \
          "finiteness", __FILE__, __LINE__, #span_expr,                   \
          std::string(what) + ": non-finite value at index " +            \
              std::to_string(extdict_nf_));                               \
    }                                                                     \
  } while (0)

#else  // !EXTDICT_ENABLE_CHECKS

// Disabled contracts must not evaluate their operands; sizeof keeps the
// expressions type-checked (and their variables "used") at zero cost.
#define EXTDICT_ASSERT(cond, detail) \
  (EXTDICT_ANALYZE_MARK(assert), (void)sizeof(!(cond)))

#define EXTDICT_HOT_ASSERT(cond, detail) \
  (EXTDICT_ANALYZE_MARK(hot_assert), (void)sizeof(!(cond)))

#define EXTDICT_REQUIRE_SHAPE(cond, detail)              \
  do {                                                   \
    EXTDICT_ANALYZE_MARK(require_shape);                 \
    if (!(cond)) [[unlikely]] {                          \
      ::extdict::util::shape_failure(__func__);          \
    }                                                    \
  } while (0)

#define EXTDICT_CHECK_FINITE(span_expr, what) \
  (EXTDICT_ANALYZE_MARK(check_finite), (void)sizeof(span_expr))

#endif  // EXTDICT_ENABLE_CHECKS
