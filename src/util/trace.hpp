#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/json.hpp"
#include "util/sync.hpp"

namespace extdict::util {

/// Process-wide event tracer: the timeline half of the observability layer.
///
/// `MetricsRegistry` answers "how much, in total" (counters, span sums); the
/// `TraceRecorder` answers "when, on which rank" — every begin/end/instant/
/// counter event carries a steady-clock timestamp and lands in a per-thread
/// bounded ring buffer, and the exporter lays the buffers out as Chrome
/// trace-event JSON (one pid lane per emulated rank) that loads directly in
/// Perfetto (ui.perfetto.dev) or chrome://tracing. That is what turns one
/// run of Algorithm 2 into an inspectable multi-rank timeline: per-iteration
/// update/normalize phases, every reduce/broadcast with its payload size,
/// and the recv/barrier intervals where a rank sat waiting.
///
/// Contracts:
///   * **Hot path never allocates.** Events are fixed-size PODs written into
///     a buffer preallocated on the recording thread's first event (or at
///     `set_thread_rank`, which `dist::Cluster` calls at rank startup before
///     any metered phase). A full buffer drops the event and increments an
///     explicit per-thread dropped counter — recording never blocks, never
///     reallocates, never overwrites older events, so overflow accounting is
///     deterministic: the first `capacity` events of each thread survive.
///   * **Names and arg keys are borrowed, not copied.** Pass string literals
///     (or views that outlive the recorder); this is what keeps an event at
///     one clock read plus a handful of stores.
///   * **Disabled means free-ish.** The recorder starts disabled; every
///     public record call is then a single relaxed atomic load. `TraceScope`
///     latches the switch at construction, so toggling must happen outside
///     open scopes (the bench toggles around whole SPMD regions).
///   * **Thread safety.** Each ring buffer has exactly one writer (its
///     thread); the buffer list and metadata are behind a leaf `util::Mutex`.
///     Reading a snapshot (`to_chrome_json`, the event counts) while writers
///     are live is safe but sees a prefix; export after joining for a
///     complete trace. A non-global recorder must outlive every thread that
///     recorded into it.
class TraceRecorder {
 public:
  /// Default per-thread ring capacity, in events. One rank of a quick-mode
  /// Alg. 2 / LASSO / power-method run emits a few thousand events, so the
  /// default leaves an order of magnitude of headroom (zero drops — the
  /// bench and CI assert that) while bounding a traced run's memory.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 14;

  /// pid lane used for threads that never called `set_thread_rank` (the
  /// host process: benchmark drivers, serial solvers). Above any plausible
  /// rank count, and also the tag bound of dist::Communicator.
  static constexpr std::int32_t kHostPid = 1 << 20;

  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Ring capacity (events) for thread buffers created after the call;
  /// existing buffers keep their size. Test hook for overflow accounting.
  void set_capacity(std::size_t events_per_thread) EXTDICT_EXCLUDES(mu_);

  /// Tags the calling thread's events with an emulated rank (the pid lane of
  /// the export) and preallocates its ring buffer when tracing is enabled.
  /// Call before the thread's first event — `dist::Cluster::run` does, at
  /// rank-thread startup. Untagged threads trace into the `kHostPid` lane.
  void set_thread_rank(std::int32_t rank) EXTDICT_EXCLUDES(mu_);
  [[nodiscard]] static std::int32_t thread_rank() noexcept;

  // -- recording (no-ops while disabled) -------------------------------------

  /// Opens a phase on this thread's timeline. Up to two named integer args
  /// ride on the event (payload words, peer rank, iteration, ...). Prefer
  /// `TraceScope` — begin/end must nest per thread, exactly like braces.
  void begin(std::string_view name, std::string_view key0 = {},
             std::uint64_t value0 = 0, std::string_view key1 = {},
             std::uint64_t value1 = 0) EXTDICT_EXCLUDES(mu_);

  /// Closes the innermost open phase named `name`; an optional arg (e.g. the
  /// received word count, known only at completion) merges into the slice.
  void end(std::string_view name, std::string_view key0 = {},
           std::uint64_t value0 = 0) EXTDICT_EXCLUDES(mu_);

  /// Zero-duration marker (abort, iteration boundary, ...).
  void instant(std::string_view name, std::string_view key0 = {},
               std::uint64_t value0 = 0) EXTDICT_EXCLUDES(mu_);

  /// Sampled value series, rendered as a counter track.
  void counter(std::string_view name, std::uint64_t value)
      EXTDICT_EXCLUDES(mu_);

  // -- inspection / export ---------------------------------------------------

  [[nodiscard]] std::uint64_t recorded_events() const EXTDICT_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t dropped_events() const EXTDICT_EXCLUDES(mu_);

  /// (rank, recorded events) per pid lane, ascending by rank; untagged
  /// threads report under `kHostPid`. Feeds the Cluster run rollup so ring
  /// truncation is visible next to the metered counters.
  [[nodiscard]] std::vector<std::pair<std::int32_t, std::uint64_t>>
  rank_event_counts() const EXTDICT_EXCLUDES(mu_);

  /// Attaches a key/value to the export's `otherData` object (run
  /// parameters for tools/analyze_trace.py). Replaces an existing key.
  void set_metadata(std::string_view key, Json value) EXTDICT_EXCLUDES(mu_);

  /// Deterministic Chrome trace-event JSON document:
  ///   {"displayTimeUnit": "ms",
  ///    "otherData": {metadata..., recorded/dropped/per-rank totals},
  ///    "traceEvents": [process/thread metadata, then per-buffer events in
  ///                    record order]}
  /// pid = rank (kHostPid for untagged threads), tid = buffer registration
  /// index, ts = microseconds since the recorder epoch. The same recorded
  /// state always serialises to the same bytes.
  [[nodiscard]] Json to_chrome_json() const EXTDICT_EXCLUDES(mu_);

  /// Zeroes every buffer's event count and dropped counter (capacity and
  /// registration stay). Callers quiesce writers first, as with export.
  void clear() EXTDICT_EXCLUDES(mu_);

  /// The library-wide recorder every subsystem traces into.
  [[nodiscard]] static TraceRecorder& global();

 private:
  friend class TraceScope;

  enum class EventKind : unsigned char { kBegin, kEnd, kInstant, kCounter };

  /// Fixed-size record; name/keys are borrowed views (see class comment).
  struct Event {
    EventKind kind;
    std::uint64_t ts_ns;
    std::string_view name;
    std::string_view key0, key1;
    std::uint64_t value0, value1;
  };

  struct ThreadBuffer;

  [[nodiscard]] ThreadBuffer& thread_buffer() EXTDICT_EXCLUDES(mu_);
  void record(EventKind kind, std::string_view name, std::string_view key0,
              std::uint64_t value0, std::string_view key1, std::uint64_t value1)
      EXTDICT_EXCLUDES(mu_);
  /// TraceScope's destructor path: records the end event regardless of the
  /// enabled switch, so a scope opened while enabled always closes balanced.
  void end_unchecked(std::string_view name, std::string_view key0,
                     std::uint64_t value0) EXTDICT_EXCLUDES(mu_);

  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  std::atomic<bool> enabled_{false};
  const std::chrono::steady_clock::time_point epoch_;
  const std::uint64_t id_;  ///< distinguishes address-reused recorders in TLS

  // Leaf lock (policy: util/sync.hpp): guards registration and metadata
  // only; event writes go to the owning thread's buffer without it.
  mutable Mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ EXTDICT_GUARDED_BY(mu_);
  std::size_t capacity_ EXTDICT_GUARDED_BY(mu_) = kDefaultCapacity;
  Json::Object metadata_ EXTDICT_GUARDED_BY(mu_);
};

/// RAII trace slice, the timeline analogue of `SpanTimer`: begin at
/// construction, end at scope exit. Latches `enabled()` once — a disabled
/// recorder costs one relaxed load and nothing else. The name (a borrowed
/// view, use literals) must outlive the recorder, like every event name.
class TraceScope {
 public:
  TraceScope(TraceRecorder& recorder, std::string_view name,
             std::string_view key0 = {}, std::uint64_t value0 = 0,
             std::string_view key1 = {}, std::uint64_t value1 = 0) {
    if (recorder.enabled()) {
      recorder_ = &recorder;
      name_ = name;
      recorder.begin(name, key0, value0, key1, value1);
    }
  }

  /// Traces into the global recorder.
  explicit TraceScope(std::string_view name, std::string_view key0 = {},
                      std::uint64_t value0 = 0, std::string_view key1 = {},
                      std::uint64_t value1 = 0)
      : TraceScope(TraceRecorder::global(), name, key0, value0, key1, value1) {}

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Attaches an arg to the closing event — for quantities only known at
  /// completion (a received payload's size).
  void set_end_arg(std::string_view key, std::uint64_t value) noexcept {
    end_key_ = key;
    end_value_ = value;
  }

  ~TraceScope() {
    if (recorder_ != nullptr) {
      recorder_->end_unchecked(name_, end_key_, end_value_);
    }
  }

 private:
  TraceRecorder* recorder_ = nullptr;
  std::string_view name_;
  std::string_view end_key_;
  std::uint64_t end_value_ = 0;
};

}  // namespace extdict::util
