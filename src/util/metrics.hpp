#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/json.hpp"
#include "util/sync.hpp"

namespace extdict::util {

/// Fixed-layout latency/value histogram: log-spaced buckets covering twelve
/// decades ([1e-9, 1e3), ten buckets per decade — nanoseconds to a quarter
/// hour when the unit is seconds), plus exact count/sum/min/max. The bucket
/// layout is a compile-time constant, so two histograms always merge
/// bucket-for-bucket and `to_json` is schema-stable.
///
/// Concurrency contract (same spirit as the registry's counters): `record`
/// is wait-free-ish — relaxed atomic adds on the bucket cells and CAS loops
/// for min/max/sum — and safe from any number of threads. `merge_from`,
/// `quantile`, and `to_json` take racy-but-coherent snapshots: call them
/// after quiescing writers when exact totals matter (benches join their
/// clients first).
class Histogram {
 public:
  /// Ten log-spaced buckets per decade across [1e-9, 1e3).
  static constexpr int kBucketsPerDecade = 10;
  static constexpr int kDecades = 12;
  static constexpr int kBucketCount = kBucketsPerDecade * kDecades;
  static constexpr double kFirstLower = 1e-9;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation. Non-positive values land in the first bucket,
  /// values past the last bound in the last — count/sum/min/max stay exact
  /// either way, only the quantile estimate saturates.
  void record(double value) noexcept;

  /// Upper bound of bucket `i` (the lower bound of bucket 0 is kFirstLower).
  [[nodiscard]] static double bucket_upper(int i) noexcept;

  /// Estimated q-quantile (q in [0, 1]): log-interpolated position inside
  /// the bucket holding the ceil(q·count)-th observation, clamped to the
  /// exact observed [min, max]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Adds `other`'s cells into this histogram (bucket-for-bucket; counts and
  /// sums add, min/max combine).
  void merge_from(const Histogram& other) noexcept;

  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// Deterministic snapshot:
  ///   {"count": n, "sum": s, "min": m, "max": M,
  ///    "p50": ..., "p90": ..., "p95": ..., "p99": ...,
  ///    "buckets": [{"le": upper, "count": c}, ...]}   (non-empty buckets
  /// only, ascending by bound; quantities are 0 while empty).
  [[nodiscard]] Json to_json() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only while count_ > 0
  std::atomic<double> max_{0.0};
};

/// Point-in-time level with a high-water mark: the live-telemetry complement
/// to the registry's monotonic counters. Counters answer "how many ever";
/// gauges answer "how many right now" (queue depth, in-flight requests,
/// cache residency) — quantities that go *down* as well as up.
///
/// Concurrency contract: `set`/`add`/`sub` are relaxed atomics, safe from
/// any number of threads; `value()`/`peak()` are racy-but-coherent reads.
/// The peak is maintained with a CAS-max on every mutation, so after all
/// writers return it is the exact high-water mark of the serialized value
/// sequence each writer observed (concurrent add/sub interleavings may
/// transiently overshoot — the peak records what the atomic actually held).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept;
  void add(std::int64_t delta) noexcept;
  void sub(std::int64_t delta) noexcept { add(-delta); }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Highest value ever held (0 if the gauge never went positive).
  [[nodiscard]] std::int64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

  /// Deterministic snapshot: {"value": v, "peak": p}.
  [[nodiscard]] Json to_json() const;

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// RAII in-flight tracker: `add(delta)` on construction, `sub(delta)` on
/// destruction. The canonical use is a scope-long `GaugeGuard guard(busy);`
/// around a worker's processing section — the gauge then counts concurrent
/// scopes, exception-safe by construction.
class GaugeGuard {
 public:
  explicit GaugeGuard(Gauge& gauge, std::int64_t delta = 1)
      : gauge_(gauge), delta_(delta) {
    gauge_.add(delta_);
  }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;
  ~GaugeGuard() { gauge_.sub(delta_); }

 private:
  Gauge& gauge_;
  std::int64_t delta_;
};

/// Time-windowed quantiles over a ring of `kSlots` Histogram epochs, plus an
/// always-on cumulative view. `record` lands in both the cumulative
/// histogram and the slot owning `now / slot_millis`; a slot is lazily
/// reclaimed (CAS on its epoch stamp, then reset) the first time a recorder
/// touches it in a new epoch. `window_quantile` merges every slot whose
/// epoch falls inside the live window of the last `kSlots` slot-periods, so
/// it answers "p99 over roughly the last kSlots × slot_millis ms" instead of
/// "p99 since process start".
///
/// Concurrency contract: everything is relaxed atomics (TSan-clean, no
/// locks). Records racing a slot rotation may land in the freshly cleared
/// slot or lose their bucket increment *in the window view only* — the
/// cumulative histogram records first and is always exact. Readers merging
/// the window see racy-but-coherent per-slot snapshots, same as
/// Histogram::to_json.
///
/// The `_at(..., now_ms)` overloads take the clock as a parameter — that is
/// the deterministic test hook; the plain overloads use a steady clock.
class WindowedHistogram {
 public:
  /// Live window = kSlots slots of slot_millis each (default: last ~5 s).
  static constexpr int kSlots = 5;
  static constexpr std::int64_t kDefaultSlotMillis = 1000;

  explicit WindowedHistogram(
      std::int64_t slot_millis = kDefaultSlotMillis) noexcept;
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void record(double value) noexcept { record_at(value, now_millis()); }
  void record_at(double value, std::int64_t now_ms) noexcept;

  /// Estimated q-quantile over the live window (0 when the window is empty —
  /// same clamp as Histogram::quantile on an empty histogram).
  [[nodiscard]] double window_quantile(double q) const noexcept {
    return window_quantile_at(q, now_millis());
  }
  [[nodiscard]] double window_quantile_at(double q,
                                          std::int64_t now_ms) const noexcept;

  [[nodiscard]] std::uint64_t window_count() const noexcept {
    return window_count_at(now_millis());
  }
  [[nodiscard]] std::uint64_t window_count_at(
      std::int64_t now_ms) const noexcept;

  /// The since-construction view (exact; never loses a record).
  [[nodiscard]] const Histogram& cumulative() const noexcept {
    return cumulative_;
  }

  [[nodiscard]] std::int64_t slot_millis() const noexcept {
    return slot_millis_;
  }

  void reset() noexcept;

  /// Deterministic snapshot:
  ///   {"slot_ms": ..., "slots": kSlots,
  ///    "window": {"count": n, "p50": ..., "p90": ..., "p99": ...},
  ///    "cumulative": Histogram::to_json()}.
  [[nodiscard]] Json to_json() const { return to_json_at(now_millis()); }
  [[nodiscard]] Json to_json_at(std::int64_t now_ms) const;

  /// Milliseconds on the process-wide steady clock (exposed so callers can
  /// feed a consistent `now` into several `_at` calls).
  [[nodiscard]] static std::int64_t now_millis() noexcept;

 private:
  struct Slot {
    std::atomic<std::int64_t> epoch{-1};  // now_ms / slot_millis, -1 = empty
    Histogram hist;
  };

  /// Merges every slot with epoch in [current - kSlots + 1, current] into
  /// `out`.
  void merge_window_at(Histogram& out, std::int64_t now_ms) const noexcept;

  std::int64_t slot_millis_;
  std::array<Slot, kSlots> slots_;
  Histogram cumulative_;
};

/// Process-wide observability registry: named monotonic counters, live
/// gauges, phase-scoped span timers, and (windowed) histograms, with
/// deterministic JSON emission.
///
/// This is the measurement half of the model-vs-measurement loop: the
/// analytic cost model (core/cost_model.hpp) predicts FLOPs/words/time, the
/// emulated cluster meters them exactly (dist::CostCounters), and the
/// registry is where both the rolled-up counters and the wall-clock phase
/// spans land so `bench/run_benchmarks` can emit them side by side.
///
/// Concurrency contract:
///   * every operation is safe from any number of threads — the name maps
///     are guarded by a leaf `util::Mutex`, the cells themselves are
///     std::atomics (relaxed; the registry publishes totals, not orderings);
///   * `counter()` / `span()` return references that stay valid for the
///     registry's lifetime (cells are never erased, `reset()` only zeroes
///     them), so hot paths can resolve a name once and bump the atomic
///     directly;
///   * the convenience mutators (`add`, `record_span`, ...) honour
///     `set_enabled(false)` and become no-ops — that switch is what the
///     instrumentation-overhead bench toggles.
class MetricsRegistry {
 public:
  struct Counter {
    std::atomic<std::uint64_t> value{0};

    void add(std::uint64_t delta) noexcept {
      value.fetch_add(delta, std::memory_order_relaxed);
    }
  };

  struct Span {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> nanos{0};
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolves (creating on first use) the counter cell for `name`.
  [[nodiscard]] Counter& counter(std::string_view name) EXTDICT_EXCLUDES(mu_);

  /// counter(name) += delta; no-op while disabled.
  void add(std::string_view name, std::uint64_t delta) EXTDICT_EXCLUDES(mu_);

  /// counter(name) = max(counter(name), v); no-op while disabled. For
  /// high-water quantities (peak memory) that summing would distort.
  void update_max(std::string_view name, std::uint64_t v) EXTDICT_EXCLUDES(mu_);

  /// Current value (0 for a name never touched).
  [[nodiscard]] std::uint64_t value(std::string_view name) const
      EXTDICT_EXCLUDES(mu_);

  /// Resolves (creating on first use) the span cell for `name`.
  [[nodiscard]] Span& span(std::string_view name) EXTDICT_EXCLUDES(mu_);

  /// Adds one completed phase of `seconds` to the span; no-op while
  /// disabled. Negative durations are clamped to zero.
  void record_span(std::string_view name, double seconds)
      EXTDICT_EXCLUDES(mu_);

  [[nodiscard]] double span_seconds(std::string_view name) const
      EXTDICT_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t span_count(std::string_view name) const
      EXTDICT_EXCLUDES(mu_);

  /// Resolves (creating on first use) the gauge cell for `name`. Like
  /// counter cells, the reference stays valid for the registry's lifetime —
  /// hot paths resolve once and mutate the cell directly (ungated by
  /// `set_enabled`, which keeps RAII GaugeGuard pairs balanced across
  /// mid-run toggles).
  [[nodiscard]] Gauge& gauge(std::string_view name) EXTDICT_EXCLUDES(mu_);

  /// gauge(name).set/add/sub; no-ops while disabled.
  void gauge_set(std::string_view name, std::int64_t v) EXTDICT_EXCLUDES(mu_);
  void gauge_add(std::string_view name, std::int64_t delta)
      EXTDICT_EXCLUDES(mu_);
  void gauge_sub(std::string_view name, std::int64_t delta)
      EXTDICT_EXCLUDES(mu_);

  /// Current gauge level (0 for a name never touched).
  [[nodiscard]] std::int64_t gauge_value(std::string_view name) const
      EXTDICT_EXCLUDES(mu_);

  /// Resolves (creating on first use) the histogram cell for `name`. Like
  /// counter cells, the reference stays valid for the registry's lifetime.
  [[nodiscard]] Histogram& histogram(std::string_view name)
      EXTDICT_EXCLUDES(mu_);

  /// Resolves (creating on first use) the windowed-histogram cell for
  /// `name` (default slot width; same lifetime guarantee as the others).
  [[nodiscard]] WindowedHistogram& windowed_histogram(std::string_view name)
      EXTDICT_EXCLUDES(mu_);

  /// windowed_histogram(name).record(value); no-op while disabled.
  void observe_windowed(std::string_view name, double value)
      EXTDICT_EXCLUDES(mu_);

  /// histogram(name).record(value); no-op while disabled.
  void observe(std::string_view name, double value) EXTDICT_EXCLUDES(mu_);

  /// Recorded-observation count (0 for a name never touched).
  [[nodiscard]] std::uint64_t histogram_count(std::string_view name) const
      EXTDICT_EXCLUDES(mu_);

  /// Toggles the convenience mutators. Direct cell references returned by
  /// `counter()`/`span()` are not gated — callers holding one opt out of
  /// the switch knowingly.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Zeroes every cell. Names (and outstanding references) stay valid; the
  /// snapshot sequence is NOT reset — it stays monotone across resets so
  /// dump consumers can order documents and detect the reset (counters
  /// going backwards under a larger snapshot_seq).
  void reset() EXTDICT_EXCLUDES(mu_);

  /// Deterministic snapshot:
  ///   {"enabled": bool, "snapshot_seq": n,
  ///    "counters": {name: value, ...},
  ///    "gauges": {name: {"value": v, "peak": p}, ...},
  ///    "spans": {name: {"count": n, "seconds": s}, ...},
  ///    "histograms": {name: Histogram::to_json(), ...},
  ///    "window_quantiles": {name: WindowedHistogram::to_json(), ...}}
  /// Names are emitted in lexicographic order. `snapshot_seq` increments on
  /// every call (monotone across `reset()`), so two calls on identical state
  /// differ only in that field.
  [[nodiscard]] Json to_json() const EXTDICT_EXCLUDES(mu_);

  /// Flat telemetry record for the periodic snapshotter — cheaper and
  /// schema-leaner than `to_json`:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "window_quantiles": {name: {"count": n, "p50": ..., "p90": ...,
  ///                               "p99": ..., "cumulative_count": N,
  ///                               "cumulative_p50": ...,
  ///                               "cumulative_p99": ...}, ...}}
  /// Names in lexicographic order; does not bump `snapshot_seq` (the
  /// snapshotter numbers its own records).
  [[nodiscard]] Json telemetry_sample() const EXTDICT_EXCLUDES(mu_);

  /// The library-wide registry every subsystem reports into.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  // Leaf lock (policy: util/sync.hpp): guards the name maps only; cell
  // updates go through the atomics without taking it.
  mutable Mutex mu_;
  // std::map: node stability keeps cell references valid as names register.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      EXTDICT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Span>, std::less<>> spans_
      EXTDICT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      EXTDICT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      EXTDICT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<WindowedHistogram>, std::less<>>
      windowed_ EXTDICT_GUARDED_BY(mu_);
  std::atomic<bool> enabled_{true};
  // Monotone dump ordinal (to_json bumps it; survives reset()).
  mutable std::atomic<std::uint64_t> snapshot_seq_{0};
};

/// RAII phase timer: records the scope's wall time into
/// `registry.record_span(name)` on destruction.
///
/// The enabled switch is latched at construction: a disabled registry costs
/// one relaxed atomic load — no clock reads, no name copy, no destructor
/// record (so enabling mid-scope records nothing; toggle between phases, as
/// the instrumentation-overhead bench does). When enabled, the name is
/// captured by value (spans outlive the string views handed in) and the
/// scope pays exactly two steady_clock reads — measured to be below the
/// noise floor of every metered phase (BENCH_gram_model.json,
/// "instrumentation_overhead").
class SpanTimer {
 public:
  SpanTimer(MetricsRegistry& registry, std::string_view name)
      : registry_(registry.enabled() ? &registry : nullptr) {
    if (registry_ != nullptr) {
      name_ = name;
      start_ = Clock::now();
    }
  }

  /// Records into the global registry.
  explicit SpanTimer(std::string_view name)
      : SpanTimer(MetricsRegistry::global(), name) {}

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() {
    if (registry_ != nullptr) {
      registry_->record_span(
          name_, std::chrono::duration<double>(Clock::now() - start_).count());
    }
  }

 private:
  using Clock = std::chrono::steady_clock;

  MetricsRegistry* registry_;
  std::string name_;
  Clock::time_point start_{};
};

}  // namespace extdict::util
