#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/json.hpp"
#include "util/sync.hpp"

namespace extdict::util {

/// Fixed-layout latency/value histogram: log-spaced buckets covering twelve
/// decades ([1e-9, 1e3), ten buckets per decade — nanoseconds to a quarter
/// hour when the unit is seconds), plus exact count/sum/min/max. The bucket
/// layout is a compile-time constant, so two histograms always merge
/// bucket-for-bucket and `to_json` is schema-stable.
///
/// Concurrency contract (same spirit as the registry's counters): `record`
/// is wait-free-ish — relaxed atomic adds on the bucket cells and CAS loops
/// for min/max/sum — and safe from any number of threads. `merge_from`,
/// `quantile`, and `to_json` take racy-but-coherent snapshots: call them
/// after quiescing writers when exact totals matter (benches join their
/// clients first).
class Histogram {
 public:
  /// Ten log-spaced buckets per decade across [1e-9, 1e3).
  static constexpr int kBucketsPerDecade = 10;
  static constexpr int kDecades = 12;
  static constexpr int kBucketCount = kBucketsPerDecade * kDecades;
  static constexpr double kFirstLower = 1e-9;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation. Non-positive values land in the first bucket,
  /// values past the last bound in the last — count/sum/min/max stay exact
  /// either way, only the quantile estimate saturates.
  void record(double value) noexcept;

  /// Upper bound of bucket `i` (the lower bound of bucket 0 is kFirstLower).
  [[nodiscard]] static double bucket_upper(int i) noexcept;

  /// Estimated q-quantile (q in [0, 1]): log-interpolated position inside
  /// the bucket holding the ceil(q·count)-th observation, clamped to the
  /// exact observed [min, max]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Adds `other`'s cells into this histogram (bucket-for-bucket; counts and
  /// sums add, min/max combine).
  void merge_from(const Histogram& other) noexcept;

  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;

  /// Deterministic snapshot:
  ///   {"count": n, "sum": s, "min": m, "max": M,
  ///    "p50": ..., "p90": ..., "p95": ..., "p99": ...,
  ///    "buckets": [{"le": upper, "count": c}, ...]}   (non-empty buckets
  /// only, ascending by bound; quantities are 0 while empty).
  [[nodiscard]] Json to_json() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only while count_ > 0
  std::atomic<double> max_{0.0};
};

/// Process-wide observability registry: named monotonic counters plus
/// phase-scoped span timers, with deterministic JSON emission.
///
/// This is the measurement half of the model-vs-measurement loop: the
/// analytic cost model (core/cost_model.hpp) predicts FLOPs/words/time, the
/// emulated cluster meters them exactly (dist::CostCounters), and the
/// registry is where both the rolled-up counters and the wall-clock phase
/// spans land so `bench/run_benchmarks` can emit them side by side.
///
/// Concurrency contract:
///   * every operation is safe from any number of threads — the name maps
///     are guarded by a leaf `util::Mutex`, the cells themselves are
///     std::atomics (relaxed; the registry publishes totals, not orderings);
///   * `counter()` / `span()` return references that stay valid for the
///     registry's lifetime (cells are never erased, `reset()` only zeroes
///     them), so hot paths can resolve a name once and bump the atomic
///     directly;
///   * the convenience mutators (`add`, `record_span`, ...) honour
///     `set_enabled(false)` and become no-ops — that switch is what the
///     instrumentation-overhead bench toggles.
class MetricsRegistry {
 public:
  struct Counter {
    std::atomic<std::uint64_t> value{0};

    void add(std::uint64_t delta) noexcept {
      value.fetch_add(delta, std::memory_order_relaxed);
    }
  };

  struct Span {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> nanos{0};
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolves (creating on first use) the counter cell for `name`.
  [[nodiscard]] Counter& counter(std::string_view name) EXTDICT_EXCLUDES(mu_);

  /// counter(name) += delta; no-op while disabled.
  void add(std::string_view name, std::uint64_t delta) EXTDICT_EXCLUDES(mu_);

  /// counter(name) = max(counter(name), v); no-op while disabled. For
  /// high-water quantities (peak memory) that summing would distort.
  void update_max(std::string_view name, std::uint64_t v) EXTDICT_EXCLUDES(mu_);

  /// Current value (0 for a name never touched).
  [[nodiscard]] std::uint64_t value(std::string_view name) const
      EXTDICT_EXCLUDES(mu_);

  /// Resolves (creating on first use) the span cell for `name`.
  [[nodiscard]] Span& span(std::string_view name) EXTDICT_EXCLUDES(mu_);

  /// Adds one completed phase of `seconds` to the span; no-op while
  /// disabled. Negative durations are clamped to zero.
  void record_span(std::string_view name, double seconds)
      EXTDICT_EXCLUDES(mu_);

  [[nodiscard]] double span_seconds(std::string_view name) const
      EXTDICT_EXCLUDES(mu_);
  [[nodiscard]] std::uint64_t span_count(std::string_view name) const
      EXTDICT_EXCLUDES(mu_);

  /// Resolves (creating on first use) the histogram cell for `name`. Like
  /// counter cells, the reference stays valid for the registry's lifetime.
  [[nodiscard]] Histogram& histogram(std::string_view name)
      EXTDICT_EXCLUDES(mu_);

  /// histogram(name).record(value); no-op while disabled.
  void observe(std::string_view name, double value) EXTDICT_EXCLUDES(mu_);

  /// Recorded-observation count (0 for a name never touched).
  [[nodiscard]] std::uint64_t histogram_count(std::string_view name) const
      EXTDICT_EXCLUDES(mu_);

  /// Toggles the convenience mutators. Direct cell references returned by
  /// `counter()`/`span()` are not gated — callers holding one opt out of
  /// the switch knowingly.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Zeroes every cell. Names (and outstanding references) stay valid.
  void reset() EXTDICT_EXCLUDES(mu_);

  /// Deterministic snapshot:
  ///   {"counters": {name: value, ...},
  ///    "spans": {name: {"count": n, "seconds": s}, ...},
  ///    "histograms": {name: Histogram::to_json(), ...}}
  /// Names are emitted in lexicographic order.
  [[nodiscard]] Json to_json() const EXTDICT_EXCLUDES(mu_);

  /// The library-wide registry every subsystem reports into.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  // Leaf lock (policy: util/sync.hpp): guards the name maps only; cell
  // updates go through the atomics without taking it.
  mutable Mutex mu_;
  // std::map: node stability keeps cell references valid as names register.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      EXTDICT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Span>, std::less<>> spans_
      EXTDICT_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      EXTDICT_GUARDED_BY(mu_);
  std::atomic<bool> enabled_{true};
};

/// RAII phase timer: records the scope's wall time into
/// `registry.record_span(name)` on destruction.
///
/// The enabled switch is latched at construction: a disabled registry costs
/// one relaxed atomic load — no clock reads, no name copy, no destructor
/// record (so enabling mid-scope records nothing; toggle between phases, as
/// the instrumentation-overhead bench does). When enabled, the name is
/// captured by value (spans outlive the string views handed in) and the
/// scope pays exactly two steady_clock reads — measured to be below the
/// noise floor of every metered phase (BENCH_gram_model.json,
/// "instrumentation_overhead").
class SpanTimer {
 public:
  SpanTimer(MetricsRegistry& registry, std::string_view name)
      : registry_(registry.enabled() ? &registry : nullptr) {
    if (registry_ != nullptr) {
      name_ = name;
      start_ = Clock::now();
    }
  }

  /// Records into the global registry.
  explicit SpanTimer(std::string_view name)
      : SpanTimer(MetricsRegistry::global(), name) {}

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  ~SpanTimer() {
    if (registry_ != nullptr) {
      registry_->record_span(
          name_, std::chrono::duration<double>(Clock::now() - start_).count());
    }
  }

 private:
  using Clock = std::chrono::steady_clock;

  MetricsRegistry* registry_;
  std::string name_;
  Clock::time_point start_{};
};

}  // namespace extdict::util
