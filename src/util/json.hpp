#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace extdict::util {

/// Minimal JSON document model used by the observability layer (metrics
/// emission, the `bench/run_benchmarks` BENCH_*.json files) and their tests.
///
/// Design constraints, in order:
///   * deterministic emission — object keys keep insertion order, numbers
///     print with the shortest representation that round-trips, so emitted
///     files are schema- and diff-stable;
///   * lossless round trip — `parse(dump(j))` reconstructs every value
///     exactly (the metrics JSON tests rely on this);
///   * no dependencies — the container bakes no JSON library, so this stays
///     a few hundred lines of the obvious recursive descent.
///
/// Numbers are stored as `double`; all counters emitted by the library fit
/// a double's 53-bit integer range (2^53 ≈ 9·10^15 FLOPs — thousands of
/// cluster-years of the emulated platforms).
class Json {
 public:
  using Array = std::vector<Json>;
  /// Insertion-ordered key/value pairs (no hashing, no reordering).
  using Object = std::vector<std::pair<std::string, Json>>;

  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double v) : value_(v) {}
  Json(int v) : value_(static_cast<double>(v)) {}
  Json(std::int64_t v) : value_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : value_(static_cast<double>(v)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] Type type() const noexcept {
    return static_cast<Type>(value_.index());
  }
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type() == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type() == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type() == Type::kObject;
  }

  /// Object access: inserts a null member on first use (insertion order is
  /// emission order). Converts a null value into an empty object.
  Json& operator[](std::string_view key);

  /// Array append. Converts a null value into an empty array.
  void push_back(Json v);

  /// Pointer to the member, or nullptr if absent / not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;

  /// Member access that throws std::out_of_range when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  // Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Serialises the document. `indent` == 0 emits compact one-line JSON;
  /// > 0 pretty-prints with that many spaces per level (trailing newline
  /// not included).
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing whitespace allowed, trailing
  /// garbage is an error). Throws std::runtime_error with a byte offset on
  /// malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;

  void dump_to(std::string& out, int indent, int depth) const;
};

}  // namespace extdict::util
