#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace extdict::util {

/// Minimal ASCII table printer used by the benchmark harness to emit the
/// rows/series of the paper's tables and figures.
///
/// Usage:
///   Table t({"dataset", "L", "alpha(L)"});
///   t.add_row({"salina", "200", "12.4"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders the table with a separator line under the header; columns are
  /// padded to the widest cell.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (drops trailing noise
/// for table cells).
std::string fmt(double value, int digits = 4);

/// Formats an integer count with thousands separators ("1,234,567").
std::string fmt_count(std::uint64_t value);

}  // namespace extdict::util
