#include "util/timer.hpp"

#include <cmath>
#include <cstdio>

namespace extdict::util {

std::string format_duration_ms(double ms) {
  char buf[64];
  if (ms < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ms);
  } else if (ms < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", ms);
  } else if (ms < 60e3) {
    std::snprintf(buf, sizeof(buf), "%.2f s", ms / 1e3);
  } else {
    const int minutes = static_cast<int>(ms / 60e3);
    const double seconds = (ms - minutes * 60e3) / 1e3;
    std::snprintf(buf, sizeof(buf), "%d m %04.1f s", minutes, seconds);
  }
  return buf;
}

}  // namespace extdict::util
