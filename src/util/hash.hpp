#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "la/types.hpp"

namespace extdict::util {

/// FNV-1a 64-bit — the content-addressing hash of the serving layer's encode
/// cache. Dependency-free and byte-exact across platforms; it selects the
/// cache shard and bucket only, never decides equality (EncodeCache does a
/// full-key compare on every probe, so hash collisions cost a miss at worst,
/// never a wrong code).
inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

[[nodiscard]] inline std::uint64_t fnv1a_bytes(
    const void* data, std::size_t size,
    std::uint64_t seed = kFnv1aOffset) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnv1aPrime;
  }
  return h;
}

/// Hashes the raw bit patterns of a Real span (bit-identical signals — and
/// only those — collide, the cache's definition of "the same signal").
[[nodiscard]] inline std::uint64_t hash_reals(
    std::span<const la::Real> values,
    std::uint64_t seed = kFnv1aOffset) noexcept {
  return fnv1a_bytes(values.data(), values.size_bytes(), seed);
}

/// Folds one 64-bit word into a running hash (epoch ids, option bits).
[[nodiscard]] inline std::uint64_t hash_mix(std::uint64_t h,
                                            std::uint64_t word) noexcept {
  return fnv1a_bytes(&word, sizeof(word), h);
}

/// Folds a Real's bit pattern into a running hash (tolerances: 0.1 and the
/// nearest representable neighbour are different stopping rules, so the
/// key hashes bits, not rounded values).
[[nodiscard]] inline std::uint64_t hash_real(std::uint64_t h,
                                             la::Real value) noexcept {
  std::uint64_t bits = 0;
  static_assert(sizeof(la::Real) == sizeof(bits));
  std::memcpy(&bits, &value, sizeof(bits));
  return hash_mix(h, bits);
}

}  // namespace extdict::util
