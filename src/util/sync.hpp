#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

/// Compile-time-checked synchronisation layer.
///
/// ExtDict's locking discipline is a machine-checked artifact: every mutex in
/// the library is a `util::Mutex`, every guarded field carries
/// `EXTDICT_GUARDED_BY`, and every function that touches guarded state
/// declares its lock requirements (`EXTDICT_REQUIRES` / `EXTDICT_EXCLUDES` /
/// `EXTDICT_ACQUIRE` / `EXTDICT_RELEASE`). Under Clang the `thread-safety`
/// preset promotes the annotations to errors (`-Werror=thread-safety`), so an
/// unguarded access or a missing lock is a build break, not a TSan roll of
/// the dice. Under other compilers the annotations expand to nothing and the
/// wrappers cost exactly one forwarded call into `std::mutex` /
/// `std::condition_variable`.
///
/// House rules enforced by `tools/extdict-lint.py`:
///   * no naked `std::mutex` / `std::condition_variable` outside this header
///     — all locking goes through the annotated wrappers;
///   * the TSan preset stays the runtime complement (`docs/CORRECTNESS.md`):
///     annotations prove the *protocol*, TSan still hunts what annotations
///     cannot express (ordering through atomics, thread lifetime).
///
/// Lock-ordering policy (library-wide):
///   * Every `util::Mutex` in `src/` is a LEAF lock unless its declaration
///     says otherwise: no code path may acquire another `Mutex` while holding
///     it. Cross-object protocols (e.g. `SharedState::abort` poisoning every
///     mailbox) must acquire the locks strictly one at a time.
///   * `CondVar::wait` may only be called with the associated `Mutex` held
///     (`EXTDICT_REQUIRES` makes this a compile error otherwise).

// -- Clang capability-analysis attribute macros -------------------------------
//
// No-ops on non-Clang compilers (GCC has no thread-safety analysis); the
// `__has_attribute` probe keeps old Clangs without the capability spelling
// working too.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define EXTDICT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef EXTDICT_THREAD_ANNOTATION
#define EXTDICT_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a capability ("mutex") the analysis can track.
#define EXTDICT_CAPABILITY(x) EXTDICT_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define EXTDICT_SCOPED_CAPABILITY EXTDICT_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define EXTDICT_GUARDED_BY(x) EXTDICT_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be touched while holding `x`.
#define EXTDICT_PT_GUARDED_BY(x) EXTDICT_THREAD_ANNOTATION(pt_guarded_by(x))

/// Documents (and checks, under Clang) lock-ordering edges.
#define EXTDICT_ACQUIRED_BEFORE(...) \
  EXTDICT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define EXTDICT_ACQUIRED_AFTER(...) \
  EXTDICT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Caller must hold the listed capabilities on entry (and keeps them).
#define EXTDICT_REQUIRES(...) \
  EXTDICT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability (held on return).
#define EXTDICT_ACQUIRE(...) \
  EXTDICT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define EXTDICT_RELEASE(...) \
  EXTDICT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define EXTDICT_TRY_ACQUIRE(b, ...) \
  EXTDICT_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (self-locking functions).
#define EXTDICT_EXCLUDES(...) \
  EXTDICT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (analysis trusts it).
#define EXTDICT_ASSERT_CAPABILITY(x) \
  EXTDICT_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the mutex guarding its result.
#define EXTDICT_RETURN_CAPABILITY(x) EXTDICT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch; every use must carry a comment justifying it.
#define EXTDICT_NO_THREAD_SAFETY_ANALYSIS \
  EXTDICT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace extdict::util {

class CondVar;

/// Annotated exclusive mutex. Prefer `MutexLock` over manual lock()/unlock();
/// the scoped form is what the analysis reasons about most precisely.
class EXTDICT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EXTDICT_ACQUIRE() { raw_.lock(); }
  void unlock() EXTDICT_RELEASE() { raw_.unlock(); }
  [[nodiscard]] bool try_lock() EXTDICT_TRY_ACQUIRE(true) {
    return raw_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex raw_;
};

/// RAII lock, the annotated counterpart of std::scoped_lock.
class EXTDICT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) EXTDICT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() EXTDICT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to `Mutex`. `wait` demands the mutex at compile
/// time — the "forgot to hold the lock around wait" bug cannot build.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires `mu` before
  /// returning. Spurious wakeups happen; callers loop on their predicate.
  void wait(Mutex& mu) EXTDICT_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then hand ownership
    // back so the caller's MutexLock remains the sole releaser.
    std::unique_lock<std::mutex> native(mu.raw_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Timed variant of `wait`: returns std::cv_status::timeout once `deadline`
  /// passes without a notification. Same locking contract as `wait`, and the
  /// same spurious-wakeup caveat — callers loop on predicate *and* clock.
  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      EXTDICT_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.raw_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace extdict::util
