#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace extdict::util {

/// Monotonic wall-clock stopwatch.
///
/// Starts running on construction; `elapsed_ms()` may be sampled repeatedly,
/// `restart()` resets the origin.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration in milliseconds as a short human-readable string
/// (e.g. "12.3 ms", "4.56 s", "2 m 03 s").
std::string format_duration_ms(double ms);

}  // namespace extdict::util
