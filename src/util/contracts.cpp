#include "util/contracts.hpp"

#include <cmath>
#include <sstream>

namespace extdict::util {

void contract_failure(const char* kind, const char* file, int line,
                      const char* expr, const std::string& detail) {
  std::ostringstream msg;
  msg << "contract " << kind << " failed at " << file << ':' << line << ": `"
      << expr << '`';
  if (!detail.empty()) msg << " — " << detail;
  throw ContractViolation(msg.str());
}

void shape_failure(const char* func) {
  throw ContractViolation(std::string(func) + ": dimension mismatch");
}

la::Index first_non_finite(std::span<const la::Real> x) noexcept {
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i])) return static_cast<la::Index>(i);
  }
  return -1;
}

std::string shape_string(la::Index rows, la::Index cols) {
  return std::to_string(rows) + "x" + std::to_string(cols);
}

}  // namespace extdict::util
