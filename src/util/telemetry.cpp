#include "util/telemetry.hpp"

#include <algorithm>
#include <utility>

#include "util/json.hpp"

namespace extdict::util {

TelemetrySnapshotter::TelemetrySnapshotter(MetricsRegistry& registry,
                                           std::string path,
                                           TelemetryOptions options)
    : registry_(registry),
      path_(std::move(path)),
      period_(std::max<std::int64_t>(1, options.period_ms)) {
  out_.open(path_, std::ios::out | std::ios::trunc);
  ok_.store(out_.is_open(), std::memory_order_relaxed);
  worker_ = std::thread([this] { run(); });
}

TelemetrySnapshotter::~TelemetrySnapshotter() { stop(); }

void TelemetrySnapshotter::stop() {
  const MutexLock lock(stop_mu_);
  if (stopped_) return;
  {
    const MutexLock inner(mu_);  // declared stop_mu_ -> mu_ edge
    stop_requested_ = true;
  }
  cv_.notify_all();
  // Joining under stop_mu_ is the shutdown contract (ExtDictServer::stop
  // precedent): concurrent stop() calls and the destructor all return only
  // after the worker wrote its final record and flushed. The worker never
  // touches stop_mu_, so this cannot deadlock.
  // extdict-analyze: allow(blocking-while-locked) shutdown join, by contract
  if (worker_.joinable()) worker_.join();
  stopped_ = true;
}

void TelemetrySnapshotter::run() {
  const Clock::time_point start = Clock::now();
  Clock::time_point next = start + period_;
  for (;;) {
    bool stopping = false;
    {
      const MutexLock lock(mu_);
      while (!stop_requested_ && Clock::now() < next) {
        cv_.wait_until(mu_, next);
      }
      stopping = stop_requested_;
    }
    // Sample and write with no snapshotter lock held — the registry sample
    // takes the registry's own leaf internally, the file is ours alone.
    write_sample(
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count());
    if (stopping) break;  // the record above is the final, post-stop sample
    next += period_;
    // Sampling slower than the period: skip the missed ticks instead of
    // bursting to catch up (seq stays contiguous; wall_ms shows the gap).
    const Clock::time_point now = Clock::now();
    while (next <= now) next += period_;
  }
  out_.flush();
}

void TelemetrySnapshotter::write_sample(double wall_ms) {
  if (!out_.is_open()) return;
  Json sample = registry_.telemetry_sample();
  Json record = Json::object();
  record["seq"] = seq_.fetch_add(1, std::memory_order_relaxed);
  record["wall_ms"] = wall_ms;
  record["counters"] = std::move(sample["counters"]);
  record["gauges"] = std::move(sample["gauges"]);
  record["window_quantiles"] = std::move(sample["window_quantiles"]);
  out_ << record.dump() << '\n';
}

}  // namespace extdict::util
