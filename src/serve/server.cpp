#include "serve/server.hpp"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace extdict::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

void fail(std::promise<EncodeResult>& promise, std::exception_ptr error) {
  promise.set_exception(std::move(error));
}

}  // namespace

ServerConfig ExtDictServer::sanitized(ServerConfig config) noexcept {
  config.max_batch = std::max<Index>(1, config.max_batch);
  config.workers = std::max(1, config.workers);
  return config;
}

ExtDictServer::ExtDictServer(la::Matrix dictionary, ServerConfig config)
    : ExtDictServer(std::make_shared<DictRegistry>(std::move(dictionary),
                                                   config.omp),
                    config) {}

ExtDictServer::ExtDictServer(std::shared_ptr<DictRegistry> registry,
                             ServerConfig config)
    : config_(sanitized(config)),
      registry_(std::move(registry)),
      cache_(config_.cache_capacity > 0
                 ? std::make_unique<EncodeCache>(config_.cache_capacity,
                                                 config_.cache_shards)
                 : nullptr),
      queue_(config.queue_capacity, config.backpressure),
      queue_depth_gauge_(
          util::MetricsRegistry::global().gauge("serve.queue.depth")),
      inflight_gauge_(util::MetricsRegistry::global().gauge("serve.inflight")),
      busy_workers_gauge_(
          util::MetricsRegistry::global().gauge("serve.workers.busy")) {
  if (!registry_) {
    throw std::invalid_argument("ExtDictServer: null dictionary registry");
  }
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ExtDictServer::~ExtDictServer() { stop(StopMode::kDrain); }

sparsecoding::OmpConfig ExtDictServer::effective_config(
    const EncodeOptions& options) const noexcept {
  sparsecoding::OmpConfig config = config_.omp;
  if (options.tolerance >= 0) config.tolerance = options.tolerance;
  if (options.max_atoms >= 0) config.max_atoms = options.max_atoms;
  return config;
}

std::future<EncodeResult> ExtDictServer::submit(std::span<const Real> signal,
                                                const EncodeOptions& options) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  submitted_.fetch_add(1, std::memory_order_relaxed);
  metrics.add("serve.submitted", 1);

  if (signal.empty() ||
      static_cast<Index>(signal.size()) != registry_->signal_dim()) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    metrics.add("serve.invalid", 1);
    std::promise<EncodeResult> promise;
    auto future = promise.get_future();
    fail(promise, std::make_exception_ptr(InvalidRequest(
                      "extdict::serve: signal has " +
                      std::to_string(signal.size()) + " entries but the "
                      "dictionary has " +
                      std::to_string(registry_->signal_dim()) + " rows")));
    return future;
  }

  Request request;
  request.signal.assign(signal.begin(), signal.end());
  request.options = options;
  request.submitted_at = Clock::now();
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto future = request.promise.get_future();
  util::TraceRecorder::global().instant("serve.request.submit", "req",
                                        request.id);

  if (!accepting()) {
    stopped_rejects_.fetch_add(1, std::memory_order_relaxed);
    metrics.add("serve.stopped_rejects", 1);
    fail(request.promise, std::make_exception_ptr(ServerStopped()));
    return future;
  }

  if (cache_) {
    // Content-addressed fast path: an identical request (signal bits,
    // current epoch, effective stopping rule) already encoded resolves
    // here — no queue, no Batch-OMP, no locks beyond one cache shard.
    const sparsecoding::OmpConfig effective = effective_config(options);
    EncodeCacheKey key;
    key.signal = request.signal;  // copy: the miss path still needs it
    key.dict_epoch = registry_->current_epoch();
    key.tolerance = effective.tolerance;
    key.max_atoms = effective.max_atoms;
    if (auto code = cache_->lookup(key)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      metrics.add("serve.cache_hits", 1);
      util::TraceRecorder::global().instant("serve.request.cache_hit", "req",
                                            request.id);
      EncodeResult result;
      result.code = std::move(*code);
      result.request_id = request.id;
      result.dict_epoch = key.dict_epoch;
      result.cache_hit = true;
      request.promise.set_value(std::move(result));
      return future;
    }
  }

  const std::uint64_t request_id = request.id;
  auto outcome = queue_.push(std::move(request));
  switch (outcome.status) {
    case PushStatus::kAccepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      queue_depth_gauge_.add(1);
      metrics.add("serve.accepted", 1);
      util::TraceRecorder::global().instant("serve.request.enqueue", "req",
                                            request_id);
      if (outcome.shed.has_value()) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        queue_depth_gauge_.sub(1);  // the shed victim left the queue
        metrics.add("serve.shed", 1);
        util::TraceRecorder::global().instant("serve.request.shed", "req",
                                              outcome.shed->id);
        fail(outcome.shed->promise, std::make_exception_ptr(RequestShed()));
      }
      break;
    case PushStatus::kRejected:
      // push() did not consume the request — its promise is still ours.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      metrics.add("serve.rejected", 1);
      fail(request.promise, std::make_exception_ptr(RequestRejected()));
      break;
    case PushStatus::kClosed:
      stopped_rejects_.fetch_add(1, std::memory_order_relaxed);
      metrics.add("serve.stopped_rejects", 1);
      fail(request.promise, std::make_exception_ptr(ServerStopped()));
      break;
  }
  return future;
}

void ExtDictServer::worker_loop() {
  for (;;) {
    std::vector<Request> batch;
    {
      util::TraceScope collect("serve.batch.collect");
      auto first = queue_.pop();
      if (!first.has_value()) {
        collect.set_end_arg("columns", 0);
        return;  // closed and drained
      }
      // Depth/in-flight transition tracked at the pop itself (not sampled):
      // a popped request leaves the queue and is in flight until its promise
      // resolves in encode_batch.
      queue_depth_gauge_.sub(1);
      inflight_gauge_.add(1);
      util::TraceRecorder::global().instant("serve.request.dequeue", "req",
                                            first->id);
      batch.push_back(std::move(*first));
      if (config_.max_batch > 1) {
        const auto deadline = Clock::now() + std::chrono::microseconds(
                                                 config_.max_delay_us);
        while (static_cast<Index>(batch.size()) < config_.max_batch) {
          auto next = queue_.pop_until(deadline);
          if (!next.has_value()) break;  // flush: timeout (or drained)
          queue_depth_gauge_.sub(1);
          inflight_gauge_.add(1);
          util::TraceRecorder::global().instant("serve.request.dequeue", "req",
                                                next->id);
          batch.push_back(std::move(*next));
        }
      }
      collect.set_end_arg("columns", batch.size());
    }
    encode_batch(batch);
  }
}

void ExtDictServer::encode_batch(std::vector<Request>& batch) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  const util::GaugeGuard busy(busy_workers_gauge_);
  const Index columns = static_cast<Index>(batch.size());
  const auto flush_at = Clock::now();

  // Queue wait ends at batch flush, shared by every column of the batch.
  std::vector<double> queue_seconds(batch.size());
  std::uint64_t queue_us_total = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    queue_seconds[i] = seconds_between(batch[i].submitted_at, flush_at);
    queue_us_total += static_cast<std::uint64_t>(queue_seconds[i] * 1e6);
  }

  util::TraceScope trace("serve.batch.encode", "columns",
                         static_cast<std::uint64_t>(columns));
  trace.set_end_arg("queue_us", queue_us_total);

  // Pin one epoch for the whole batch: an extension published mid-batch
  // takes effect from the next batch, and this shared_ptr keeps the pinned
  // epoch's dictionary/Gram alive until the batch drains.
  const std::shared_ptr<const DictEpoch> epoch = registry_->current();

  std::vector<sparsecoding::SparseCode> codes(batch.size());
  std::vector<std::exception_ptr> errors(batch.size());
#pragma omp parallel for schedule(dynamic, 1) default(none) \
    shared(batch, codes, errors, columns, epoch) if (columns > 1)
  for (Index j = 0; j < columns; ++j) {
    const auto i = static_cast<std::size_t>(j);
    try {
      codes[i] = epoch->coder.encode(batch[i].signal,
                                     effective_config(batch[i].options));
    } catch (...) {
      // E.g. a non-finite signal tripping EXTDICT_CHECK_FINITE in a checked
      // build: the error belongs to this request's future, not the worker.
      errors[i] = std::current_exception();
    }
  }
  const double encode_s = seconds_between(flush_at, Clock::now());

  batches_.fetch_add(1, std::memory_order_relaxed);
  columns_encoded_.fetch_add(static_cast<std::uint64_t>(columns),
                             std::memory_order_relaxed);
  std::uint64_t seen = max_batch_columns_.load(std::memory_order_relaxed);
  while (seen < static_cast<std::uint64_t>(columns) &&
         !max_batch_columns_.compare_exchange_weak(
             seen, static_cast<std::uint64_t>(columns),
             std::memory_order_relaxed)) {
  }
  metrics.add("serve.batches", 1);
  metrics.add("serve.columns", static_cast<std::uint64_t>(columns));

  std::uint64_t served_in_batch = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    metrics.observe("serve.latency.queue_seconds", queue_seconds[i]);
    metrics.observe("serve.latency.encode_seconds", encode_s);
    metrics.observe("serve.latency.total_seconds", queue_seconds[i] + encode_s);
    // Windowed twins of the latency histograms: same observations, but
    // `window_quantile` answers over the last few seconds only.
    metrics.observe_windowed("serve.latency.queue_seconds", queue_seconds[i]);
    metrics.observe_windowed("serve.latency.encode_seconds", encode_s);
    metrics.observe_windowed("serve.latency.total_seconds",
                             queue_seconds[i] + encode_s);
    util::TraceRecorder::global().instant("serve.request.resolve", "req",
                                          batch[i].id);
    if (errors[i]) {
      encode_failed_.fetch_add(1, std::memory_order_relaxed);
      inflight_gauge_.sub(1);
      metrics.add("serve.encode_failures", 1);
      fail(batch[i].promise, std::move(errors[i]));
      continue;
    }
    if (cache_) {
      // Keyed by the PINNED epoch: the code is only valid against the
      // dictionary that produced it. If an extension flipped mid-batch the
      // entry is immediately stale for new lookups — correct, not a leak.
      EncodeCacheKey key;
      key.signal = std::move(batch[i].signal);  // request is done with it
      key.dict_epoch = epoch->id;
      const sparsecoding::OmpConfig effective =
          effective_config(batch[i].options);
      key.tolerance = effective.tolerance;
      key.max_atoms = effective.max_atoms;
      cache_->insert(key, codes[i]);
    }
    EncodeResult result;
    result.code = std::move(codes[i]);
    result.request_id = batch[i].id;
    result.batch_columns = columns;
    result.queue_seconds = queue_seconds[i];
    result.encode_seconds = encode_s;
    result.dict_epoch = epoch->id;
    served_.fetch_add(1, std::memory_order_relaxed);
    inflight_gauge_.sub(1);
    ++served_in_batch;
    batch[i].promise.set_value(std::move(result));
  }
  metrics.add("serve.served", served_in_batch);
}

void ExtDictServer::stop(StopMode mode) {
  const util::MutexLock lock(stop_mu_);
  if (stopped_) return;
  accepting_.store(false, std::memory_order_relaxed);
  if (mode == StopMode::kDrain) {
    queue_.close();
  } else {
    auto leftovers = queue_.close_and_drain();
    util::MetricsRegistry& metrics = util::MetricsRegistry::global();
    for (auto& request : leftovers) {
      discarded_.fetch_add(1, std::memory_order_relaxed);
      queue_depth_gauge_.sub(1);  // discarded requests leave the queue too
      metrics.add("serve.discarded", 1);
      fail(request.promise, std::make_exception_ptr(ServerStopped()));
    }
  }
  // Joining under stop_mu_ is the shutdown contract: concurrent stop() calls
  // (and the destructor racing an explicit stop) must all return only after
  // every worker has exited. Workers never touch stop_mu_, so this cannot
  // deadlock — it only serializes the stoppers.
  // extdict-analyze: allow(blocking-while-locked) shutdown join, by contract
  for (auto& worker : workers_) worker.join();
  stopped_ = true;
}

ServerStats ExtDictServer::stats() const noexcept {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.stopped = stopped_rejects_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.discarded = discarded_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.encode_failed = encode_failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.columns_encoded = columns_encoded_.load(std::memory_order_relaxed);
  s.max_batch_columns = max_batch_columns_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace extdict::serve
