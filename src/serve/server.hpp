#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <stdexcept>
#include <thread>
#include <vector>

#include "la/matrix.hpp"
#include "la/types.hpp"
#include "serve/dict_registry.hpp"
#include "serve/encode_cache.hpp"
#include "serve/queue.hpp"
#include "sparsecoding/batch_omp.hpp"
#include "util/metrics.hpp"
#include "util/sync.hpp"

namespace extdict::serve {

using la::Index;
using la::Real;

/// Base class of the serving layer's documented rejection errors. Every
/// submitted future resolves with a value or with exactly one of these (or
/// `InvalidRequest`) — a future left dangling is a server bug, and the load
/// bench treats it as one.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The queue was full under BackpressurePolicy::kReject.
class RequestRejected final : public ServeError {
 public:
  RequestRejected() : ServeError("extdict::serve: queue full, request rejected") {}
};

/// The request was evicted by a newer arrival under kShedOldest.
class RequestShed final : public ServeError {
 public:
  RequestShed() : ServeError("extdict::serve: request shed under load") {}
};

/// The server stopped before the request could be (or was) encoded.
class ServerStopped final : public ServeError {
 public:
  ServerStopped() : ServeError("extdict::serve: server stopped") {}
};

/// Malformed request (zero-length or wrong-M signal). Derives from
/// std::invalid_argument to match the library's shape-contract convention.
class InvalidRequest final : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Per-request overrides of the server's default stopping rule. Negative
/// means "server default"; `max_atoms == 0` means uncapped (min(M, L), the
/// OmpConfig convention).
struct EncodeOptions {
  Real tolerance = -1;  ///< the paper's ε; < 0 → ServerConfig::omp.tolerance
  Index max_atoms = -1;  ///< sparsity cap; < 0 → ServerConfig::omp.max_atoms
};

/// One served sparse code plus its latency attribution: how long the request
/// sat queued before its batch formed, how long the shared Batch-OMP window
/// ran, and how many columns shared that window.
struct EncodeResult {
  sparsecoding::SparseCode code;
  std::uint64_t request_id = 0;
  Index batch_columns = 0;   ///< columns encoded in this request's batch (0 on a cache hit)
  double queue_seconds = 0;  ///< submit → batch flush (0 on a cache hit)
  double encode_seconds = 0; ///< the batch's shared encode window (0 on a cache hit)
  std::uint64_t dict_epoch = 0;  ///< registry epoch the code was computed against
  bool cache_hit = false;    ///< served from the encode cache, no solver run
};

struct ServerConfig {
  Index max_batch = 64;           ///< flush when this many columns collected
  std::uint64_t max_delay_us = 200;  ///< ... or this long after the first one
  int workers = 2;                ///< batch-encode worker threads
  std::size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  sparsecoding::OmpConfig omp;    ///< default ε / sparsity cap
  /// Encode-cache entry budget; 0 disables the cache entirely (every
  /// request runs Batch-OMP, the pre-cache behaviour).
  std::size_t cache_capacity = 0;
  std::size_t cache_shards = 8;   ///< independent LRU shards (lock striping)
};

enum class StopMode {
  kDrain,   ///< stop admissions, serve everything queued, then join
  kDiscard  ///< stop admissions, fail queued requests with ServerStopped
};

/// Monotone request accounting, snapshot via `ExtDictServer::stats()`.
/// Identities once the server has stopped (every future resolved):
///   submitted == accepted + invalid + rejected + stopped + cache_hits
///   accepted  == served + encode_failed + shed + discarded
///   columns_encoded == served + encode_failed
/// A client sees a value future for every `served` OR `cache_hits` request;
/// every other bucket resolves with its documented error.
struct ServerStats {
  std::uint64_t submitted = 0;  ///< submit() calls
  std::uint64_t invalid = 0;    ///< failed shape validation
  std::uint64_t rejected = 0;   ///< kReject on a full queue
  std::uint64_t stopped = 0;    ///< refused because the server was stopping
  std::uint64_t cache_hits = 0; ///< resolved from the encode cache, never queued
  std::uint64_t accepted = 0;   ///< entered the queue
  std::uint64_t shed = 0;       ///< evicted under kShedOldest
  std::uint64_t discarded = 0;  ///< failed by a kDiscard stop
  std::uint64_t served = 0;     ///< futures resolved with a batch-encoded value
  std::uint64_t encode_failed = 0;  ///< encode threw (e.g. non-finite signal)
  std::uint64_t batches = 0;
  std::uint64_t columns_encoded = 0;
  std::uint64_t max_batch_columns = 0;  ///< largest batch observed
};

/// Persistent, thread-safe sparse-coding server: serves a `DictRegistry`
/// epoch (dictionary + resident Batch-OMP Gram), accepts encode requests
/// from any number of client threads, and drives them through a
/// micro-batching scheduler — a worker flushes a batch at `max_batch`
/// columns or `max_delay_us` after the batch's first arrival, whichever
/// comes first — so concurrent requests share one Batch-OMP window (one
/// scheduler wakeup, one OpenMP parallel region) instead of paying the
/// per-invocation setup each.
///
/// Caching: with `cache_capacity > 0`, `submit` consults a content-addressed
/// `EncodeCache` (key = signal bits · dict epoch · effective ε/max_atoms)
/// before enqueueing; a hit resolves the future immediately — no queue, no
/// solver — and workers insert every successful batch encode keyed by the
/// epoch it was computed against. An extension flips the epoch, so stale
/// entries simply stop matching and age out of the LRU.
///
/// Extension: workers pin `registry->current()` once per batch; a
/// `DictRegistry::extend` published mid-batch takes effect from the next
/// batch. Requests therefore always get a code consistent with one epoch,
/// and `EncodeResult::dict_epoch` says which.
///
/// Shutdown is deterministic: `stop(kDrain)` (also the destructor) serves
/// everything queued then joins; `stop(kDiscard)` fails queued requests with
/// `ServerStopped`; either way every future ever returned by `submit`
/// resolves. Submissions racing a stop resolve with `ServerStopped`.
///
/// Observability: per-batch `serve.batch.collect` / `serve.batch.encode`
/// trace spans (columns + summed queue-wait args), per-request
/// `serve.request.{submit,cache_hit,enqueue,dequeue,resolve}` trace instants
/// carrying the request id (`req` arg — `tools/analyze_trace.py` groups them
/// into a per-request waterfall), `serve.*` counters, live gauges
/// (`serve.queue.depth`, `serve.inflight`, `serve.workers.busy` — tracked at
/// the push/pop/resolve transitions, never sampled under race), windowed +
/// cumulative `serve.latency.{queue,encode,total}_seconds` histograms in the
/// global registry — `stats()` is the server's own (always-on) accounting.
/// The gauges reconcile with the monotone identities at quiescence:
///   queue.depth == accepted − served − encode_failed − shed − discarded
///                  − inflight
/// (transient skews bounded by in-transition requests while running).
///
/// Lock ordering: the queue's mutex, the metrics registry's, the encode
/// cache's per-shard mutexes, and `DictRegistry::mu_` are all leaves;
/// `stop_mu_` (here) and `DictRegistry::extend_mu_` are the two documented
/// exceptions to the leaf policy (see their declarations).
class ExtDictServer {
 public:
  /// Takes the dictionary by value: the server builds a private registry
  /// (epoch 0) around its copy, so callers can drop theirs.
  explicit ExtDictServer(la::Matrix dictionary, ServerConfig config = {});

  /// Serves a shared registry: the caller (or another server) may extend it
  /// while this server runs. `registry` must be non-null and outlives
  /// nothing — the server holds a shared_ptr.
  explicit ExtDictServer(std::shared_ptr<DictRegistry> registry,
                         ServerConfig config = {});

  /// Drains and stops (StopMode::kDrain semantics).
  ~ExtDictServer();

  ExtDictServer(const ExtDictServer&) = delete;
  ExtDictServer& operator=(const ExtDictServer&) = delete;

  /// Queues one signal for encoding. Always returns a future that will
  /// resolve: with an EncodeResult, or with InvalidRequest (bad shape),
  /// RequestRejected / RequestShed (backpressure), or ServerStopped.
  /// Blocks only under BackpressurePolicy::kBlock on a full queue.
  [[nodiscard]] std::future<EncodeResult> submit(
      std::span<const Real> signal, const EncodeOptions& options = {});

  /// Idempotent; concurrent calls serialize and all return after shutdown
  /// completes. The first caller's mode wins.
  void stop(StopMode mode = StopMode::kDrain);

  [[nodiscard]] bool accepting() const noexcept {
    return accepting_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ServerStats stats() const noexcept;

  /// Encode-cache accounting; all zeros when the cache is disabled.
  [[nodiscard]] EncodeCacheStats cache_stats() const noexcept {
    return cache_ ? cache_->stats() : EncodeCacheStats{};
  }

  /// The registry this server serves from (never null); extending it takes
  /// effect from the next batch, with no serving interruption.
  [[nodiscard]] const std::shared_ptr<DictRegistry>& registry() const noexcept {
    return registry_;
  }

  [[nodiscard]] Index signal_dim() const noexcept {
    return registry_->signal_dim();
  }
  /// Atom count of the registry's current epoch (grows across extensions).
  [[nodiscard]] Index atom_count() const { return registry_->atom_count(); }
  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }

 private:
  struct Request {
    std::vector<Real> signal;
    EncodeOptions options;
    std::promise<EncodeResult> promise;
    std::chrono::steady_clock::time_point submitted_at;
    std::uint64_t id = 0;
  };

  void worker_loop();
  void encode_batch(std::vector<Request>& batch);
  [[nodiscard]] sparsecoding::OmpConfig effective_config(
      const EncodeOptions& options) const noexcept;

  /// Clamps max_batch ≥ 1 and workers ≥ 1 so `config_` can stay const (and
  /// lock-free to read) for the server's whole lifetime.
  [[nodiscard]] static ServerConfig sanitized(ServerConfig config) noexcept;

  const ServerConfig config_;
  // Set once in the constructor, immutable after: the shared_ptr itself is
  // const, the registry is internally synchronized.
  const std::shared_ptr<DictRegistry> registry_;
  // Null when cache_capacity == 0; EncodeCache is internally synchronized
  // (per-shard leaf mutexes).
  const std::unique_ptr<EncodeCache> cache_;
  // Internally synchronized: BoundedQueue owns its mutex (a leaf lock).
  // extdict-analyze: allow(guarded-by) BoundedQueue is internally synchronized
  BoundedQueue<Request> queue_;
  // Written only by the constructor (pre-publication) and joined by stop()
  // under stop_mu_; clang TSA exempts constructor bodies, so the annotation
  // holds for every post-publication access.
  std::vector<std::thread> workers_ EXTDICT_GUARDED_BY(stop_mu_);

  std::atomic<bool> accepting_{true};
  std::atomic<std::uint64_t> next_id_{0};

  // Live gauges, resolved once from the global registry (cell references
  // stay valid for its lifetime). Deliberately ungated by the registry's
  // enabled switch: the +/- pairs must stay balanced across mid-run toggles
  // or the levels would drift. Process-wide names — concurrent servers sum
  // into the same cells, as with the serve.* counters.
  util::Gauge& queue_depth_gauge_;
  util::Gauge& inflight_gauge_;
  util::Gauge& busy_workers_gauge_;

  // NOT a leaf lock (documented exception to the util/sync.hpp policy):
  // stop() holds it across queue close and worker join so concurrent stops
  // serialize on the complete shutdown. No other path acquires both, and
  // workers never touch stop_mu_. The two outgoing ordering edges — the
  // queue's mutex (close / close_and_drain) and the metrics registry's
  // (discard accounting) — are declared below; `tools/extdict-analyze.py`
  // fails the build if the extracted lock-order graph ever grows an edge
  // not declared here.
  // extdict-analyze: non-leaf(ExtDictServer::stop_mu_ -> BoundedQueue::mu_)
  // extdict-analyze: non-leaf(ExtDictServer::stop_mu_ -> MetricsRegistry::mu_)
  util::Mutex stop_mu_;
  bool stopped_ EXTDICT_GUARDED_BY(stop_mu_) = false;

  // stats() cells (always-on, independent of the metrics registry switch).
  std::atomic<std::uint64_t> submitted_{0}, invalid_{0}, rejected_{0},
      stopped_rejects_{0}, cache_hits_{0}, accepted_{0}, shed_{0},
      discarded_{0}, served_{0}, encode_failed_{0}, batches_{0},
      columns_encoded_{0}, max_batch_columns_{0};
};

}  // namespace extdict::serve
