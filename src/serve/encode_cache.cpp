#include "serve/encode_cache.hpp"

#include <algorithm>
#include <cstring>

#include "util/hash.hpp"
#include "util/metrics.hpp"

namespace extdict::serve {

std::uint64_t EncodeCacheKey::hash() const noexcept {
  std::uint64_t h = util::hash_reals(signal);
  h = util::hash_mix(h, dict_epoch);
  h = util::hash_real(h, tolerance);
  h = util::hash_mix(h, static_cast<std::uint64_t>(max_atoms));
  return h;
}

bool EncodeCacheKey::operator==(const EncodeCacheKey& other) const noexcept {
  if (dict_epoch != other.dict_epoch || max_atoms != other.max_atoms ||
      signal.size() != other.signal.size()) {
    return false;
  }
  // Bitwise compares throughout: the cache's contract is "the exact same
  // request", so -0.0 vs 0.0 or differently-signed NaNs are different keys
  // (operator== on double would also reject every NaN-bearing key from
  // ever hitting, including against itself).
  if (std::memcmp(&tolerance, &other.tolerance, sizeof(tolerance)) != 0) {
    return false;
  }
  return signal.empty() ||
         std::memcmp(signal.data(), other.signal.data(),
                     signal.size() * sizeof(Real)) == 0;
}

EncodeCache::EncodeCache(std::size_t capacity, std::size_t shards)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  const std::size_t n = std::clamp<std::size_t>(shards, 1, capacity_);
  const std::size_t per_shard = (capacity_ + n - 1) / n;  // ceil
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = per_shard;
  }
}

std::optional<sparsecoding::SparseCode> EncodeCache::lookup(
    const EncodeCacheKey& key) {
  const std::uint64_t h = key.hash();
  Shard& shard = shard_for(h);
  std::optional<sparsecoding::SparseCode> found;
  {
    const util::MutexLock lock(shard.mu);
    const auto [first, last] = shard.index.equal_range(h);
    for (auto it = first; it != last; ++it) {
      if (it->second->key == key) {  // collision-safe: full-key compare
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        found = it->second->code;
        break;
      }
    }
  }
  // Accounting after the lock: shard.mu stays a leaf (MetricsRegistry::add
  // takes the registry's own mutex for name resolution).
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  if (found.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics.add("serve.cache.hits", 1);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    metrics.add("serve.cache.misses", 1);
  }
  return found;
}

void EncodeCache::insert(const EncodeCacheKey& key,
                         const sparsecoding::SparseCode& code) {
  const std::uint64_t h = key.hash();
  Shard& shard = shard_for(h);
  bool inserted = false;
  bool evicted = false;
  {
    const util::MutexLock lock(shard.mu);
    const auto [first, last] = shard.index.equal_range(h);
    auto existing = last;
    for (auto it = first; it != last; ++it) {
      if (it->second->key == key) {
        existing = it;
        break;
      }
    }
    if (existing != last) {
      // Duplicate insert (two batches raced on the same miss): refresh.
      existing->second->code = code;
      shard.lru.splice(shard.lru.begin(), shard.lru, existing->second);
    } else {
      if (shard.lru.size() >= shard.capacity) {
        // Evict the LRU tail; find its index node among its hash's bucket.
        const auto victim = std::prev(shard.lru.end());
        const auto [vfirst, vlast] = shard.index.equal_range(victim->key.hash());
        for (auto it = vfirst; it != vlast; ++it) {
          if (it->second == victim) {
            shard.index.erase(it);
            break;
          }
        }
        shard.lru.pop_back();
        evicted = true;
      }
      shard.lru.push_front(Entry{key, code});
      shard.index.emplace(h, shard.lru.begin());
      inserted = true;
    }
  }
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  if (inserted) {
    insertions_.fetch_add(1, std::memory_order_relaxed);
    metrics.add("serve.cache.insertions", 1);
    if (!evicted) entries_.fetch_add(1, std::memory_order_relaxed);
  }
  if (evicted) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    metrics.add("serve.cache.evictions", 1);
  }
}

EncodeCacheStats EncodeCache::stats() const noexcept {
  EncodeCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace extdict::serve
