#include "serve/encode_cache.hpp"

#include <algorithm>
#include <cstring>

#include "util/hash.hpp"
#include "util/metrics.hpp"

namespace extdict::serve {

std::uint64_t EncodeCacheKey::hash() const noexcept {
  std::uint64_t h = util::hash_reals(signal);
  h = util::hash_mix(h, dict_epoch);
  h = util::hash_real(h, tolerance);
  h = util::hash_mix(h, static_cast<std::uint64_t>(max_atoms));
  return h;
}

bool EncodeCacheKey::operator==(const EncodeCacheKey& other) const noexcept {
  if (dict_epoch != other.dict_epoch || max_atoms != other.max_atoms ||
      signal.size() != other.signal.size()) {
    return false;
  }
  // Bitwise compares throughout: the cache's contract is "the exact same
  // request", so -0.0 vs 0.0 or differently-signed NaNs are different keys
  // (operator== on double would also reject every NaN-bearing key from
  // ever hitting, including against itself).
  if (std::memcmp(&tolerance, &other.tolerance, sizeof(tolerance)) != 0) {
    return false;
  }
  return signal.empty() ||
         std::memcmp(signal.data(), other.signal.data(),
                     signal.size() * sizeof(Real)) == 0;
}

EncodeCache::EncodeCache(std::size_t capacity, std::size_t shards)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  const std::size_t n = std::clamp<std::size_t>(shards, 1, capacity_);
  const std::size_t per_shard = (capacity_ + n - 1) / n;  // ceil
  shards_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->capacity = per_shard;
  }
}

EncodeCache::~EncodeCache() {
  // The occupancy gauges are process-global but this cache's entries die
  // with it: return the levels so a later server starts from zero instead
  // of inheriting a phantom footprint.
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.gauge("serve.cache.entries")
      .sub(static_cast<std::int64_t>(entries_.load(std::memory_order_relaxed)));
  metrics.gauge("serve.cache.resident_bytes")
      .sub(resident_bytes_.load(std::memory_order_relaxed));
}

std::uint64_t EncodeCache::entry_bytes(const Entry& entry) noexcept {
  return entry.key.signal.size() * sizeof(Real) +
         entry.code.entries.size() *
             sizeof(decltype(entry.code.entries)::value_type);
}

std::optional<sparsecoding::SparseCode> EncodeCache::lookup(
    const EncodeCacheKey& key) {
  const std::uint64_t h = key.hash();
  Shard& shard = shard_for(h);
  std::optional<sparsecoding::SparseCode> found;
  {
    const util::MutexLock lock(shard.mu);
    const auto [first, last] = shard.index.equal_range(h);
    for (auto it = first; it != last; ++it) {
      if (it->second->key == key) {  // collision-safe: full-key compare
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        found = it->second->code;
        break;
      }
    }
  }
  // Accounting after the lock: shard.mu stays a leaf (MetricsRegistry::add
  // takes the registry's own mutex for name resolution).
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  if (found.has_value()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics.add("serve.cache.hits", 1);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    metrics.add("serve.cache.misses", 1);
  }
  return found;
}

void EncodeCache::insert(const EncodeCacheKey& key,
                         const sparsecoding::SparseCode& code) {
  const std::uint64_t h = key.hash();
  Shard& shard = shard_for(h);
  bool inserted = false;
  bool evicted = false;
  std::int64_t bytes_delta = 0;
  {
    const util::MutexLock lock(shard.mu);
    const auto [first, last] = shard.index.equal_range(h);
    auto existing = last;
    for (auto it = first; it != last; ++it) {
      if (it->second->key == key) {
        existing = it;
        break;
      }
    }
    if (existing != last) {
      // Duplicate insert (two batches raced on the same miss): refresh.
      bytes_delta -= static_cast<std::int64_t>(entry_bytes(*existing->second));
      existing->second->code = code;
      bytes_delta += static_cast<std::int64_t>(entry_bytes(*existing->second));
      shard.lru.splice(shard.lru.begin(), shard.lru, existing->second);
    } else {
      if (shard.lru.size() >= shard.capacity) {
        // Evict the LRU tail; find its index node among its hash's bucket.
        const auto victim = std::prev(shard.lru.end());
        const auto [vfirst, vlast] = shard.index.equal_range(victim->key.hash());
        for (auto it = vfirst; it != vlast; ++it) {
          if (it->second == victim) {
            shard.index.erase(it);
            break;
          }
        }
        bytes_delta -= static_cast<std::int64_t>(entry_bytes(*victim));
        shard.lru.pop_back();
        evicted = true;
      }
      shard.lru.push_front(Entry{key, code});
      bytes_delta += static_cast<std::int64_t>(entry_bytes(shard.lru.front()));
      shard.index.emplace(h, shard.lru.begin());
      inserted = true;
    }
  }
  // Accounting after the lock, as in lookup(): shard.mu stays a leaf.
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  if (inserted) {
    insertions_.fetch_add(1, std::memory_order_relaxed);
    metrics.add("serve.cache.insertions", 1);
    if (!evicted) {
      entries_.fetch_add(1, std::memory_order_relaxed);
      metrics.gauge("serve.cache.entries").add(1);
    }
  }
  if (evicted) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    metrics.add("serve.cache.evictions", 1);
  }
  if (bytes_delta != 0) {
    resident_bytes_.fetch_add(bytes_delta, std::memory_order_relaxed);
    metrics.gauge("serve.cache.resident_bytes").add(bytes_delta);
  }
}

EncodeCacheStats EncodeCache::stats() const noexcept {
  EncodeCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  const std::int64_t bytes = resident_bytes_.load(std::memory_order_relaxed);
  s.resident_bytes = bytes > 0 ? static_cast<std::uint64_t>(bytes) : 0;
  return s;
}

}  // namespace extdict::serve
