#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/exd.hpp"
#include "la/matrix.hpp"
#include "la/types.hpp"
#include "sparsecoding/batch_omp.hpp"
#include "util/sync.hpp"

namespace extdict::serve {

using la::Index;
using la::Real;

/// One immutable published version of the dictionary: D, its Gram (inside
/// the coder), and the epoch id. Held via shared_ptr<const DictEpoch> —
/// pinning an epoch is one refcount increment, and an epoch's memory lives
/// exactly until the last in-flight batch (or cached reference) drops it.
/// Noncopyable/nonmovable: the coder holds a pointer into `dictionary`.
struct DictEpoch {
  const std::uint64_t id;
  const la::Matrix dictionary;
  const sparsecoding::BatchOmp coder;

  /// Epoch 0 entry: full `la::gram` is fine here — it runs once, before
  /// serving starts. Extension epochs use the bordered constructor below.
  DictEpoch(std::uint64_t epoch_id, la::Matrix dict,
            sparsecoding::OmpConfig omp)
      : id(epoch_id), dictionary(std::move(dict)), coder(dictionary, omp) {}

  /// Extension entry: adopts a pre-bordered Gram, no recompute.
  DictEpoch(std::uint64_t epoch_id, la::Matrix dict, la::Matrix gram,
            sparsecoding::OmpConfig omp)
      : id(epoch_id),
        dictionary(std::move(dict)),
        coder(dictionary, std::move(gram), omp) {}

  DictEpoch(const DictEpoch&) = delete;
  DictEpoch& operator=(const DictEpoch&) = delete;
};

/// Versioned dictionary registry with zero-downtime online extension — the
/// paper's headline degree of freedom (§V-E) made safe to run under load:
///
///  * `current()` returns the serving epoch as a shared_ptr copy (RCU-style
///    publication: readers pin the epoch they started with; a worker's
///    whole batch encodes against one pinned epoch even if an extension
///    publishes mid-batch).
///  * `extend()` appends atoms, growing the resident Gram by bordering
///    (`core::extend_gram_bordered` — O(L² + M·L·K), never a full
///    `la::gram` of the extended dictionary), then flips `current_`
///    atomically under a leaf mutex. In-flight batches finish on their
///    pinned epoch; the old epoch's memory is reclaimed by shared_ptr
///    refcount when its last holder (batch or cache reader) drains.
///  * `extend_from_samples()` is the online analogue of `core::evolve`'s
///    pass 2: sample atoms from candidate columns the current dictionary
///    cannot express, via the same `core::select_extension_atoms` rule.
///
/// Locking: `mu_` guards the current-epoch pointer and the retired list;
/// it is a LEAF — publication is a pointer swap, all matrix work happens
/// outside it. `extend_mu_` serializes writers (two concurrent extends must
/// not both border from the same parent) and is the registry's one declared
/// non-leaf: it wraps the whole build-then-publish sequence, so it orders
/// before `mu_`. Metrics are updated after both locks are released.
class DictRegistry {
 public:
  /// Publishes epoch 0. The registry owns its dictionary copy.
  DictRegistry(la::Matrix dictionary, sparsecoding::OmpConfig omp);

  DictRegistry(const DictRegistry&) = delete;
  DictRegistry& operator=(const DictRegistry&) = delete;

  /// The serving epoch; never null. One shared_ptr copy under a leaf lock.
  [[nodiscard]] std::shared_ptr<const DictEpoch> current() const;

  /// The serving epoch's id without touching the lock (cache-key fast path).
  [[nodiscard]] std::uint64_t current_epoch() const noexcept {
    return epoch_id_.load(std::memory_order_acquire);
  }

  /// Appends `new_atoms` (rows must match) and flips serving to the new
  /// epoch. Returns the published epoch id. Thread-safe; concurrent
  /// extends serialize.
  std::uint64_t extend(const la::Matrix& new_atoms);

  /// Samples `config.dictionary_size` atoms from `candidates` with
  /// `core::select_extension_atoms` (evolve's pass-2 selection) and extends.
  std::uint64_t extend_from_samples(const la::Matrix& candidates,
                                    const core::ExdConfig& config);

  /// Epochs still alive: the serving epoch plus every retired epoch some
  /// batch or cache reader still pins. Retired-and-drained epochs are gone.
  [[nodiscard]] std::size_t live_epochs() const;

  [[nodiscard]] Index signal_dim() const noexcept { return signal_dim_; }
  /// Atom count of the *current* epoch (grows with each extension).
  [[nodiscard]] Index atom_count() const;
  [[nodiscard]] const sparsecoding::OmpConfig& omp_config() const noexcept {
    return omp_;
  }

 private:
  const sparsecoding::OmpConfig omp_;
  const Index signal_dim_;  // rows never change across epochs

  // Serializes extend() end to end: border → build epoch → publish. Held
  // while current()/publication take mu_, hence the declared edge. Metrics
  // happen after release, so no edge into MetricsRegistry::mu_.
  // extdict-analyze: non-leaf(DictRegistry::extend_mu_ -> DictRegistry::mu_)
  util::Mutex extend_mu_;

  mutable util::Mutex mu_;  // leaf: guards the two pointers below only
  std::shared_ptr<const DictEpoch> current_ EXTDICT_GUARDED_BY(mu_);
  // Weak refs to flipped-out epochs, pruned on every extend: live_epochs()
  // observability without keeping anything alive.
  std::vector<std::weak_ptr<const DictEpoch>> retired_ EXTDICT_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> epoch_id_{0};
};

}  // namespace extdict::serve
