#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace extdict::serve {

/// What a full queue does to a new arrival. The policy is the server's
/// overload contract with its clients, so it is a constructor parameter,
/// not a per-push flag.
enum class BackpressurePolicy {
  kBlock,      ///< push blocks until space frees up (or the queue closes)
  kReject,     ///< push fails immediately; the caller owns the error
  kShedOldest  ///< push succeeds by evicting the oldest queued item
};

/// Outcome of a `push`. On kRejected / kClosed the item was NOT consumed —
/// the caller still owns it (and its promise). `shed` carries the evicted
/// item under kShedOldest so the caller can fail its future.
enum class PushStatus { kAccepted, kRejected, kClosed };

/// Bounded MPMC FIFO queue on the annotated sync layer — the admission-control
/// half of the serving subsystem. Any number of producers (client threads in
/// `ExtDictServer::submit`) and consumers (batch workers) may operate
/// concurrently; items come out in push order.
///
/// Lifecycle: `close()` makes every subsequent (and currently blocked) push
/// return kClosed while consumers keep draining what is already queued —
/// that is the server's graceful drain — and `close_and_drain()` additionally
/// hands the leftovers back so the caller can fail them deterministically.
///
/// Locking: `mu_` is a LEAF lock per the library policy (util/sync.hpp) —
/// nothing is called with it held except the condvars.
template <class T>
class BoundedQueue {
 public:
  struct PushResult {
    PushStatus status = PushStatus::kAccepted;
    std::optional<T> shed;  ///< evicted item (kShedOldest on a full queue)
  };

  /// `capacity` must be >= 1; a zero-capacity queue could never accept.
  BoundedQueue(std::size_t capacity, BackpressurePolicy policy)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Applies the backpressure policy. Only on kAccepted is `item` consumed;
  /// on kRejected / kClosed it is left untouched in the caller's hands.
  [[nodiscard]] PushResult push(T&& item) EXTDICT_EXCLUDES(mu_) {
    PushResult result;
    bool notify = false;
    {
      const util::MutexLock lock(mu_);
      if (closed_) {
        result.status = PushStatus::kClosed;
        return result;
      }
      if (items_.size() >= capacity_) {
        switch (policy_) {
          case BackpressurePolicy::kBlock:
            while (items_.size() >= capacity_ && !closed_) {
              not_full_.wait(mu_);
            }
            if (closed_) {
              result.status = PushStatus::kClosed;
              return result;
            }
            break;
          case BackpressurePolicy::kReject:
            result.status = PushStatus::kRejected;
            return result;
          case BackpressurePolicy::kShedOldest:
            result.shed = std::move(items_.front());
            items_.pop_front();
            break;
        }
      }
      items_.push_back(std::move(item));
      notify = true;
    }
    if (notify) not_empty_.notify_one();
    return result;
  }

  /// Blocking pop: waits for an item or for close-plus-empty (nullopt, the
  /// consumer's signal to exit).
  [[nodiscard]] std::optional<T> pop() EXTDICT_EXCLUDES(mu_) {
    std::optional<T> item;
    {
      const util::MutexLock lock(mu_);
      while (items_.empty() && !closed_) not_empty_.wait(mu_);
      if (items_.empty()) return std::nullopt;  // closed and drained
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Timed pop: like `pop` but also returns nullopt once `deadline` passes —
  /// the micro-batcher's "flush on max_delay" path. A nullopt therefore
  /// means timeout OR closed-and-drained; callers distinguish via `closed()`.
  template <class Clock, class Duration>
  [[nodiscard]] std::optional<T> pop_until(
      const std::chrono::time_point<Clock, Duration>& deadline)
      EXTDICT_EXCLUDES(mu_) {
    std::optional<T> item;
    {
      const util::MutexLock lock(mu_);
      while (items_.empty() && !closed_) {
        if (not_empty_.wait_until(mu_, deadline) == std::cv_status::timeout &&
            items_.empty()) {
          return std::nullopt;
        }
      }
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  [[nodiscard]] std::optional<T> try_pop() EXTDICT_EXCLUDES(mu_) {
    std::optional<T> item;
    {
      const util::MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Stops admissions (pending blocked pushes return kClosed) while letting
  /// consumers drain the backlog. Idempotent.
  void close() EXTDICT_EXCLUDES(mu_) {
    {
      const util::MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// `close()` plus hands back everything still queued, in FIFO order — the
  /// discard-stop path fails each returned item's future deterministically.
  [[nodiscard]] std::vector<T> close_and_drain() EXTDICT_EXCLUDES(mu_) {
    std::vector<T> drained;
    {
      const util::MutexLock lock(mu_);
      closed_ = true;
      drained.reserve(items_.size());
      while (!items_.empty()) {
        drained.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    not_empty_.notify_all();
    not_full_.notify_all();
    return drained;
  }

  [[nodiscard]] bool closed() const EXTDICT_EXCLUDES(mu_) {
    const util::MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const EXTDICT_EXCLUDES(mu_) {
    const util::MutexLock lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] BackpressurePolicy policy() const noexcept { return policy_; }

 private:
  const std::size_t capacity_;
  const BackpressurePolicy policy_;

  mutable util::Mutex mu_;
  util::CondVar not_empty_;
  util::CondVar not_full_;
  std::deque<T> items_ EXTDICT_GUARDED_BY(mu_);
  bool closed_ EXTDICT_GUARDED_BY(mu_) = false;
};

}  // namespace extdict::serve
