#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "la/types.hpp"
#include "sparsecoding/omp.hpp"
#include "util/sync.hpp"

namespace extdict::serve {

using la::Index;
using la::Real;

/// Full identity of a cached encode: the exact signal bits, the dictionary
/// epoch the code was computed against, and the effective stopping rule.
/// Two keys are equal only if all four components match bit-for-bit — the
/// hash picks the shard and bucket, equality always re-checks the whole key
/// (a hash collision can cost a miss, never return the wrong code).
struct EncodeCacheKey {
  std::vector<Real> signal;
  std::uint64_t dict_epoch = 0;
  Real tolerance = 0;   ///< effective ε (server default already applied)
  Index max_atoms = 0;  ///< effective cap (server default already applied)

  [[nodiscard]] std::uint64_t hash() const noexcept;
  [[nodiscard]] bool operator==(const EncodeCacheKey& other) const noexcept;
};

/// Point-in-time cache accounting. hits + misses == lookups; entries is the
/// current resident count (≤ capacity); resident_bytes is the summed payload
/// footprint (signal + sparse-code entries) of everything resident.
struct EncodeCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;
  std::uint64_t resident_bytes = 0;
};

/// Sharded, content-addressed LRU cache of sparse codes, dist-clang style:
/// the key is hash(signal bits) · dict-epoch · (ε, max_atoms), the value is
/// the finished SparseCode. `ExtDictServer::submit` consults it before
/// enqueueing; workers insert after each successful batch encode.
///
/// Sharding: a key's hash picks one of `shards` independent LRU maps, each
/// behind its own leaf `util::Mutex`, so concurrent clients on different
/// shards never contend. Within a shard, lookups move the entry to the LRU
/// front and insertion evicts from the back once the shard is full.
///
/// Accounting is exact: the struct's own atomics (always on, queried via
/// `stats()`), the `serve.cache.*` counters, and the occupancy gauges
/// (`serve.cache.entries`, `serve.cache.resident_bytes` — live levels for
/// the telemetry snapshotter) in `MetricsRegistry::global()` are all updated
/// on every lookup/insert/evict. Metrics calls happen strictly after the
/// shard lock is released — every mutex here stays a leaf of the lock-order
/// graph.
class EncodeCache {
 public:
  /// `capacity` is the total entry budget across all shards (rounded up to
  /// at least one entry per shard); `shards` is clamped to [1, capacity].
  explicit EncodeCache(std::size_t capacity, std::size_t shards = 8);

  /// Returns the resident entries/bytes levels to the global occupancy
  /// gauges (the cache's contents die with it).
  ~EncodeCache();

  EncodeCache(const EncodeCache&) = delete;
  EncodeCache& operator=(const EncodeCache&) = delete;

  /// Returns the cached code and refreshes its LRU position, or nullopt.
  [[nodiscard]] std::optional<sparsecoding::SparseCode> lookup(
      const EncodeCacheKey& key);

  /// Inserts (or refreshes) `key → code`, evicting the shard's LRU tail if
  /// full. A concurrent duplicate insert updates the existing entry in
  /// place rather than double-counting it.
  void insert(const EncodeCacheKey& key, const sparsecoding::SparseCode& code);

  [[nodiscard]] EncodeCacheStats stats() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Entry {
    EncodeCacheKey key;
    sparsecoding::SparseCode code;
  };
  struct Shard {
    util::Mutex mu;
    // Front = most recently used. The index maps the key hash to LRU nodes;
    // a multimap because distinct keys may share a hash.
    std::list<Entry> lru EXTDICT_GUARDED_BY(mu);
    std::unordered_multimap<std::uint64_t, std::list<Entry>::iterator> index
        EXTDICT_GUARDED_BY(mu);
    std::size_t capacity = 0;  // immutable after construction
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t hash) const noexcept {
    return *shards_[static_cast<std::size_t>(hash) % shards_.size()];
  }

  /// Payload footprint of one resident entry (key signal + code entries).
  [[nodiscard]] static std::uint64_t entry_bytes(const Entry& entry) noexcept;

  std::size_t capacity_;
  // unique_ptr: Shard owns a Mutex and is therefore pinned in memory.
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0}, misses_{0}, insertions_{0},
      evictions_{0}, entries_{0};
  std::atomic<std::int64_t> resident_bytes_{0};
};

}  // namespace extdict::serve
