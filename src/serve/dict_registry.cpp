#include "serve/dict_registry.hpp"

#include <utility>

#include "core/evolving.hpp"
#include "core/gram_extend.hpp"
#include "util/contracts.hpp"
#include "util/metrics.hpp"

namespace extdict::serve {

DictRegistry::DictRegistry(la::Matrix dictionary, sparsecoding::OmpConfig omp)
    : omp_(omp), signal_dim_(dictionary.rows()) {
  auto epoch = std::make_shared<const DictEpoch>(0, std::move(dictionary), omp_);
  {
    const util::MutexLock lock(mu_);
    current_ = std::move(epoch);
  }
  // Live levels for the telemetry snapshotter (process-global; the newest
  // registry's state wins, which is what a serving process observes).
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.gauge("serve.registry.epoch").set(0);
  metrics.gauge("serve.registry.live_epochs").set(1);
}

std::shared_ptr<const DictEpoch> DictRegistry::current() const {
  const util::MutexLock lock(mu_);
  return current_;
}

std::uint64_t DictRegistry::extend(const la::Matrix& new_atoms) {
  EXTDICT_REQUIRE_SHAPE(new_atoms.rows() == signal_dim_,
                        "DictRegistry::extend: new atoms have " +
                            std::to_string(new_atoms.rows()) +
                            " rows but the dictionary has " +
                            std::to_string(signal_dim_) + " rows");
  EXTDICT_REQUIRE_SHAPE(new_atoms.cols() > 0,
                        "DictRegistry::extend: no atoms to append");

  std::uint64_t published = 0;
  std::size_t live = 0;
  {
    // One extender at a time: both must not border from the same parent.
    const util::MutexLock serialize(extend_mu_);
    const std::shared_ptr<const DictEpoch> parent = current();

    // All heavy work against the pinned parent, no publication lock held:
    // bordered Gram (the no-full-recompute contract), dictionary copy+append.
    la::Matrix gram = core::extend_gram_bordered(
        parent->coder.gram(), parent->dictionary, new_atoms);
    la::Matrix dict = parent->dictionary;
    dict.append_columns(new_atoms);

    published = parent->id + 1;
    auto next = std::make_shared<const DictEpoch>(
        published, std::move(dict), std::move(gram), omp_);

    {
      const util::MutexLock lock(mu_);
      retired_.push_back(current_);
      current_ = std::move(next);
      // Prune drained epochs so the retired list stays O(live epochs).
      std::erase_if(retired_,
                    [](const std::weak_ptr<const DictEpoch>& w) {
                      return w.expired();
                    });
      live = retired_.size() + 1;
    }
    epoch_id_.store(published, std::memory_order_release);
  }

  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.add("serve.registry.extensions", 1);
  metrics.add("serve.registry.atoms_appended",
              static_cast<std::uint64_t>(new_atoms.cols()));
  metrics.update_max("serve.registry.max_live_epochs",
                     static_cast<std::uint64_t>(live));
  metrics.gauge("serve.registry.epoch")
      .set(static_cast<std::int64_t>(published));
  metrics.gauge("serve.registry.live_epochs")
      .set(static_cast<std::int64_t>(live));
  return published;
}

std::uint64_t DictRegistry::extend_from_samples(const la::Matrix& candidates,
                                                const core::ExdConfig& config) {
  return extend(core::select_extension_atoms(candidates, config));
}

std::size_t DictRegistry::live_epochs() const {
  const util::MutexLock lock(mu_);
  std::size_t live = 1;  // the serving epoch
  for (const auto& w : retired_) {
    if (!w.expired()) ++live;
  }
  return live;
}

Index DictRegistry::atom_count() const {
  const util::MutexLock lock(mu_);
  return current_->dictionary.cols();
}

}  // namespace extdict::serve
