#include "solvers/power_method.hpp"

#include <cmath>
#include <stdexcept>

#include "core/dist_gram.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace extdict::solvers {

PowerResult power_method(const GramOperator& op, const PowerConfig& config) {
  const util::SpanTimer span("power_method.solve");
  const util::TraceScope trace(util::TraceRecorder::global(),
                               "power_method.solve");
  const Index n = op.dim();
  const Index k = std::min<Index>(config.num_eigenpairs, n);
  la::Rng rng(config.seed);

  PowerResult result;
  result.eigenvectors = Matrix(n, k);
  result.eigenvalues.reserve(static_cast<std::size_t>(k));

  la::Vector x(static_cast<std::size_t>(n));
  la::Vector gx(static_cast<std::size_t>(n));

  for (Index e = 0; e < k; ++e) {
    rng.fill_gaussian(x);
    // Start orthogonal to the found invariant subspace.
    for (Index p = 0; p < e; ++p) {
      const Real proj = la::dot(result.eigenvectors.col(p), x);
      la::axpy(-proj, result.eigenvectors.col(p), x);
    }
    Real norm = la::nrm2(x);
    if (norm == Real{0}) {
      throw std::runtime_error("power_method: degenerate start vector");
    }
    la::scal(1 / norm, x);

    Real lambda = 0;
    int it = 0;
    for (; it < config.max_iterations; ++it) {
      op.apply(x, gx);
      // Deflation: project out converged eigenvectors (G - Σ λ v vᵀ).
      for (Index p = 0; p < e; ++p) {
        const auto v = result.eigenvectors.col(p);
        const Real proj =
            result.eigenvalues[static_cast<std::size_t>(p)] * la::dot(v, x);
        la::axpy(-proj, v, gx);
      }
      const Real next = la::nrm2(gx);
      if (next == Real{0}) break;  // x in the null space: eigenvalue 0
      for (std::size_t i = 0; i < x.size(); ++i) x[i] = gx[i] / next;
      const Real rel = std::abs(next - lambda) / std::max(next, Real{1e-30});
      lambda = next;
      if (it > 0 && rel < config.tolerance) {
        ++it;
        break;
      }
    }

    result.eigenvalues.push_back(lambda);
    std::copy(x.begin(), x.end(), result.eigenvectors.col(e).begin());
    result.iterations.push_back(it);
    util::MetricsRegistry::global().add("power_method.iterations",
                                        static_cast<std::uint64_t>(it));
  }
  return result;
}

DistPowerResult power_method_distributed(const dist::Cluster& cluster,
                                         const Matrix& d, const la::CscMatrix& c,
                                         const PowerConfig& config) {
  const util::SpanTimer span("power_method.solve_distributed");
  if (c.rows() != d.cols()) {
    throw std::invalid_argument("power_method_distributed: D/C shape mismatch");
  }
  const Index m = d.rows();
  const Index l = d.cols();
  const Index n = c.cols();
  const Index k = std::min<Index>(config.num_eigenpairs, n);
  const bool case2 = l > m;
  const core::ColumnPartition part{n, cluster.topology().total()};

  DistPowerResult result;
  std::vector<Real> eigenvalues_shared(static_cast<std::size_t>(k), 0);
  std::vector<int> iterations_shared(static_cast<std::size_t>(k), 0);

  result.stats = cluster.run([&](dist::Communicator& comm) {
    const util::TraceScope rank_trace(util::TraceRecorder::global(),
                                      "power_method.rank");
    const Index rank = comm.rank();
    const Index b = part.begin(rank);
    const Index e = part.end(rank);
    const Index local_n = e - b;

    std::uint64_t nnz_local = 0;
    for (Index j = b; j < e; ++j) nnz_local += static_cast<std::uint64_t>(c.col_nnz(j));
    comm.cost().record_memory(
        nnz_local * 3 / 2 + static_cast<std::uint64_t>(local_n) * (2 + k) +
        ((case2 || rank == 0)
             ? static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(l)
             : 0));

    la::Vector x(static_cast<std::size_t>(local_n));
    la::Vector gx(static_cast<std::size_t>(local_n));
    la::Vector v1(static_cast<std::size_t>(l));
    la::Vector v2(static_cast<std::size_t>(m));
    la::Vector v3(static_cast<std::size_t>(l));
    // Converged eigenvector slices, one column per found pair. Eigenvalues
    // are rank-local copies: the all-reduced Rayleigh norms are bitwise
    // identical on every rank, so no extra publication round is needed.
    Matrix basis(std::max<Index>(local_n, 1), k);
    la::Vector eigs_local(static_cast<std::size_t>(k), Real{0});

    // One Gram product through Alg. 2 on the local slice `in` -> `out`.
    auto gram_apply = [&](const la::Vector& in, la::Vector& out) {
      std::fill(v1.begin(), v1.end(), Real{0});
      c.spmv_range(b, e, in, v1);
      comm.cost().add_flops(2 * nnz_local);
      if (!case2) {
        comm.reduce_sum(0, v1);
        if (rank == 0) {
          la::gemv(1, d, v1, 0, v2);
          la::gemv_t(1, d, v2, 0, v3);
          comm.cost().add_flops(2 * la::gemv_flops(m, l));
        }
        comm.broadcast(0, std::span<Real>(v3));
      } else {
        la::gemv(1, d, v1, 0, v2);
        comm.cost().add_flops(la::gemv_flops(m, l));
        comm.reduce_sum(0, v2);
        comm.broadcast(0, std::span<Real>(v2));
        la::gemv_t(1, d, v2, 0, v3);
        comm.cost().add_flops(la::gemv_flops(m, l));
      }
      c.spmv_t_range(b, e, v3, out);
      comm.cost().add_flops(2 * nnz_local);
    };

    auto global_dot = [&](std::span<const Real> u, std::span<const Real> w) {
      const Real local = la::dot(u, w);
      comm.cost().add_flops(2 * u.size());
      return comm.allreduce_sum_scalar(local);
    };

    for (Index pair = 0; pair < k; ++pair) {
      const util::TraceScope pair_trace(util::TraceRecorder::global(),
                                        "power_method.pair", "pair",
                                        static_cast<std::uint64_t>(pair));
      // Deterministic start: every rank seeds its own slice; orthogonalise
      // against the converged invariant subspace.
      la::Rng rng(config.seed * 1315423911ULL +
                  static_cast<std::uint64_t>(pair) * 2654435761ULL +
                  static_cast<std::uint64_t>(rank));
      rng.fill_gaussian(x);
      for (Index p = 0; p < pair; ++p) {
        auto vp = std::span<const Real>(basis.col(p)).first(
            static_cast<std::size_t>(local_n));
        const Real proj = global_dot(vp, x);
        la::axpy(-proj, vp, std::span<Real>(x));
      }
      Real norm = std::sqrt(global_dot(x, x));
      if (norm > 0) la::scal(1 / norm, std::span<Real>(x));

      Real lambda = 0;
      int it = 0;
      for (; it < config.max_iterations; ++it) {
        const util::TraceScope iter_trace(util::TraceRecorder::global(),
                                          "power_method.iteration",
                                          "iteration",
                                          static_cast<std::uint64_t>(it));
        gram_apply(x, gx);
        // Deflation on distributed slices: gx -= λ_p v_p (v_pᵀ x).
        for (Index p = 0; p < pair; ++p) {
          auto vp = std::span<const Real>(basis.col(p)).first(
              static_cast<std::size_t>(local_n));
          const Real proj =
              eigs_local[static_cast<std::size_t>(p)] * global_dot(vp, x);
          la::axpy(-proj, vp, std::span<Real>(gx));
        }
        const Real next = std::sqrt(global_dot(gx, gx));
        if (next == Real{0}) break;
        for (Index i = 0; i < local_n; ++i) {
          x[static_cast<std::size_t>(i)] = gx[static_cast<std::size_t>(i)] / next;
        }
        const Real rel = std::abs(next - lambda) / std::max(next, Real{1e-30});
        lambda = next;
        if (it > 0 && rel < config.tolerance) {
          ++it;
          break;
        }
      }

      auto dst = basis.col(pair);
      std::copy(x.begin(), x.end(), dst.begin());
      eigs_local[static_cast<std::size_t>(pair)] = lambda;
      if (rank == 0) iterations_shared[static_cast<std::size_t>(pair)] = it;
    }
    if (rank == 0) {
      std::copy(eigs_local.begin(), eigs_local.end(), eigenvalues_shared.begin());
    }
  });

  result.eigenvalues = std::move(eigenvalues_shared);
  result.iterations = std::move(iterations_shared);
  return result;
}

Real eigenvalue_error(const std::vector<Real>& found,
                      const std::vector<Real>& reference) {
  const std::size_t k = std::min(found.size(), reference.size());
  if (k == 0) throw std::invalid_argument("eigenvalue_error: empty spectra");
  Real num = 0, den = 0;
  for (std::size_t i = 0; i < k; ++i) {
    num += std::abs(found[i] - reference[i]);
    den += std::abs(reference[i]);
  }
  return den > 0 ? num / den : Real{0};
}

}  // namespace extdict::solvers
