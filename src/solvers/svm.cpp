#include "solvers/svm.hpp"

#include <stdexcept>

#include "la/blas.hpp"

namespace extdict::solvers {

LsSvm::LsSvm(const core::GramOperator& op, const la::Vector& labels,
             const SvmConfig& config)
    : op_(&op) {
  const Index n = op.dim();
  if (static_cast<Index>(labels.size()) != n) {
    throw std::invalid_argument("LsSvm: label count != column count");
  }
  if (config.gamma <= 0) {
    throw std::invalid_argument("LsSvm: gamma must be > 0");
  }

  // Block elimination: solve (K + I/gamma) u = 1 and (K + I/gamma) v = y,
  // then b = (1ᵀ v) / (1ᵀ u) and alpha = v - b u.
  CgConfig cg;
  cg.shift = 1 / config.gamma;
  cg.max_iterations = config.max_cg_iterations;
  cg.tolerance = config.cg_tolerance;

  const la::Vector ones(static_cast<std::size_t>(n), Real{1});
  const CgResult u = conjugate_gradient(op, ones, cg);
  const CgResult v = conjugate_gradient(op, labels, cg);
  cg_iterations_ = u.iterations + v.iterations;

  Real ones_u = 0, ones_v = 0;
  for (Index i = 0; i < n; ++i) {
    ones_u += u.x[static_cast<std::size_t>(i)];
    ones_v += v.x[static_cast<std::size_t>(i)];
  }
  if (ones_u == Real{0}) {
    throw std::runtime_error("LsSvm: singular bias system");
  }
  bias_ = ones_v / ones_u;
  alpha_ = v.x;
  la::axpy(-bias_, u.x, alpha_);
}

Real LsSvm::decision(std::span<const Real> signal) const {
  if (static_cast<Index>(signal.size()) != op_->data_dim()) {
    throw std::invalid_argument("LsSvm::decision: signal size mismatch");
  }
  // f(x) = alphaᵀ (Aᵀ x) + b.
  la::Vector atx(static_cast<std::size_t>(op_->dim()));
  op_->apply_adjoint(signal, atx);
  return la::dot(alpha_, atx) + bias_;
}

la::Vector LsSvm::training_decisions() const {
  la::Vector ka(static_cast<std::size_t>(op_->dim()));
  op_->apply(alpha_, ka);
  for (Real& v : ka) v += bias_;
  return ka;
}

Real training_accuracy(const LsSvm& svm, const la::Vector& labels) {
  const la::Vector f = svm.training_decisions();
  if (f.size() != labels.size() || f.empty()) {
    throw std::invalid_argument("training_accuracy: size mismatch");
  }
  Index correct = 0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    if ((f[i] >= 0 ? 1.0 : -1.0) == (labels[i] >= 0 ? 1.0 : -1.0)) ++correct;
  }
  return static_cast<Real>(correct) / static_cast<Real>(f.size());
}

}  // namespace extdict::solvers
