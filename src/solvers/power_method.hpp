#pragma once

#include <cstdint>
#include <vector>

#include "core/gram_operator.hpp"
#include "dist/cluster.hpp"
#include "la/csc_matrix.hpp"
#include "la/matrix.hpp"

namespace extdict::solvers {

using core::GramOperator;
using la::Index;
using la::Matrix;
using la::Real;

/// Power method with deflation for the top-k eigenpairs of the Gram matrix
/// G = AᵀA (the paper's PCA workhorse, §VIII-A): iterate x <- Gx/||Gx||
/// until the Rayleigh quotient stabilises, record (λ, v), deflate, repeat.
/// Note λ_i = σ_i², the squared singular values of A.
struct PowerConfig {
  int num_eigenpairs = 10;  ///< the paper reports the first 10 eigenvalues
  int max_iterations = 500; ///< per eigenpair
  Real tolerance = 1e-7;    ///< relative eigenvalue change stopping rule
  std::uint64_t seed = 29;
};

struct PowerResult {
  std::vector<Real> eigenvalues;   ///< of G, non-increasing
  Matrix eigenvectors;             ///< N x k, orthonormal
  std::vector<int> iterations;     ///< per eigenpair
  [[nodiscard]] int total_iterations() const noexcept {
    int total = 0;
    for (int it : iterations) total += it;
    return total;
  }
};

[[nodiscard]] PowerResult power_method(const GramOperator& op,
                                       const PowerConfig& config);

/// Fully distributed Power method on the transformed data (the paper's PCA
/// application end to end): every Gram product follows Algorithm 2's
/// communication pattern, deflation runs on distributed eigenvector slices
/// with scalar all-reductions, and the run's exact cost counters are
/// returned alongside the spectrum.
struct DistPowerResult {
  std::vector<Real> eigenvalues;
  std::vector<int> iterations;
  dist::RunStats stats;

  [[nodiscard]] int total_iterations() const noexcept {
    int total = 0;
    for (int it : iterations) total += it;
    return total;
  }
};

[[nodiscard]] DistPowerResult power_method_distributed(
    const dist::Cluster& cluster, const Matrix& d, const la::CscMatrix& c,
    const PowerConfig& config);

/// Normalised cumulative error of the first k eigenvalues against a
/// reference spectrum: sum_i |λ_i - ref_i| / sum_i ref_i — the Fig. 12
/// learning-error metric.
[[nodiscard]] Real eigenvalue_error(const std::vector<Real>& found,
                                    const std::vector<Real>& reference);

}  // namespace extdict::solvers
