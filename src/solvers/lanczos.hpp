#pragma once

#include <cstdint>
#include <vector>

#include "core/gram_operator.hpp"
#include "la/matrix.hpp"

namespace extdict::solvers {

using core::GramOperator;
using la::Index;
using la::Matrix;
using la::Real;

/// Lanczos iteration with full reorthogonalisation for the top-k spectrum
/// of the Gram matrix — an extension beyond the paper's Power method
/// (mentioned as its natural competitor for large-scale PCA): one Krylov
/// subspace yields all k leading eigenvalues at once instead of k deflated
/// power runs. `bench/ablation_lanczos` quantifies the saving in Gram
/// products, which is what the ExD transform makes cheap.
struct LanczosConfig {
  int num_eigenpairs = 10;
  int max_subspace = 0;    ///< Krylov dimension cap (0 = 4k + 20)
  Real tolerance = 1e-9;   ///< residual bound on the Ritz pairs
  std::uint64_t seed = 37;
};

struct LanczosResult {
  std::vector<Real> eigenvalues;  ///< non-increasing
  Matrix eigenvectors;            ///< N x k Ritz vectors
  int gram_products = 0;          ///< operator applications consumed
  int subspace_dimension = 0;
};

[[nodiscard]] LanczosResult lanczos(const GramOperator& op,
                                    const LanczosConfig& config);

/// Eigenvalues (ascending) and optionally eigenvectors of a symmetric
/// tridiagonal matrix given its diagonal and sub-diagonal, via the implicit
/// QL algorithm. Exposed for tests; `z` (if non-null) must be initialised
/// to the identity (or a basis to rotate) with `diag.size()` columns.
void tridiagonal_eigen(std::vector<Real>& diag, std::vector<Real>& sub,
                       Matrix* z);

}  // namespace extdict::solvers
