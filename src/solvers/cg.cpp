#include "solvers/cg.hpp"

#include <cmath>
#include <stdexcept>

#include "la/blas.hpp"

namespace extdict::solvers {

CgResult conjugate_gradient(const GramOperator& op, const la::Vector& b,
                            const CgConfig& config) {
  const Index n = op.dim();
  if (static_cast<Index>(b.size()) != n) {
    throw std::invalid_argument("conjugate_gradient: b size mismatch");
  }
  if (config.shift < 0) {
    throw std::invalid_argument("conjugate_gradient: shift must be >= 0");
  }

  CgResult result;
  result.x.assign(static_cast<std::size_t>(n), Real{0});
  const Real b_norm = la::nrm2(b);
  if (b_norm == Real{0}) {
    result.converged = true;
    return result;
  }

  la::Vector r = b;  // r = b - (G + shift) * 0
  la::Vector p = r;
  la::Vector gp(static_cast<std::size_t>(n));
  Real rr = la::dot(r, r);

  for (int it = 0; it < config.max_iterations; ++it) {
    op.apply(p, gp);
    if (config.shift != Real{0}) la::axpy(config.shift, p, gp);
    const Real p_gp = la::dot(p, gp);
    if (p_gp <= Real{0}) break;  // numerical breakdown / semidefinite dir
    const Real alpha = rr / p_gp;
    la::axpy(alpha, p, result.x);
    la::axpy(-alpha, gp, r);
    const Real rr_next = la::dot(r, r);
    result.iterations = it + 1;
    if (std::sqrt(rr_next) <= config.tolerance * b_norm) {
      result.converged = true;
      rr = rr_next;
      break;
    }
    const Real beta = rr_next / rr;
    for (std::size_t i = 0; i < p.size(); ++i) {
      p[i] = r[i] + beta * p[i];
    }
    rr = rr_next;
  }
  result.relative_residual = std::sqrt(rr) / b_norm;
  if (result.relative_residual <= config.tolerance) result.converged = true;
  return result;
}

}  // namespace extdict::solvers
