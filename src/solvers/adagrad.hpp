#pragma once

#include <span>
#include <vector>

#include "la/types.hpp"

namespace extdict::solvers {

using la::Index;
using la::Real;

/// Per-coordinate Adagrad step sizes (Duchi et al. [36], the update rule the
/// paper uses for both its gradient-descent LASSO and the SGD baseline):
/// accumulate squared gradients and scale the base rate by 1/sqrt(acc + ε).
class Adagrad {
 public:
  Adagrad(Index dim, Real base_rate, Real epsilon = 1e-8);

  /// Applies one descent step x -= rate_i * g_i in place and updates the
  /// accumulators.
  void step(std::span<const Real> gradient, std::span<Real> x);

  /// Effective step size currently associated with coordinate i (used by the
  /// proximal L1 update, which must shrink with the same per-coordinate
  /// rate).
  [[nodiscard]] Real rate(Index i) const noexcept;

  /// Accumulates only (for callers that fuse the step with a prox operator).
  void accumulate(std::span<const Real> gradient);

  void reset();

 private:
  std::vector<Real> accum_;
  Real base_rate_;
  Real epsilon_;
};

/// Soft-thresholding operator: sign(v) * max(|v| - t, 0) — the prox of t·|·|.
[[nodiscard]] Real soft_threshold(Real v, Real t) noexcept;

}  // namespace extdict::solvers
