#include "solvers/lasso.hpp"

#include <cmath>
#include <stdexcept>

#include "core/dist_gram.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "solvers/adagrad.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace extdict::solvers {

namespace {

// Spectral norm of the Gram operator (largest eigenvalue of AᵀA) estimated
// with a short power iteration; 1/λmax is the classical ISTA step.
Real estimate_gram_norm(const GramOperator& op) {
  la::Rng rng(97);
  la::Vector x(static_cast<std::size_t>(op.dim()));
  la::Vector gx(static_cast<std::size_t>(op.dim()));
  rng.fill_gaussian(x);
  Real lambda = 1;
  for (int it = 0; it < 30; ++it) {
    op.apply(x, gx);
    lambda = la::nrm2(gx);
    if (lambda == Real{0}) return 1;
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = gx[i] / lambda;
  }
  return lambda;
}

}  // namespace

Real elastic_net_objective(const GramOperator& op, const la::Vector& y,
                           const la::Vector& x, Real l1, Real l2) {
  la::Vector ax(static_cast<std::size_t>(op.data_dim()));
  op.apply_forward(x, ax);
  Real fit = 0;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    const Real d = ax[i] - y[i];
    fit += d * d;
  }
  Real abs_sum = 0, sq_sum = 0;
  for (Real v : x) {
    abs_sum += std::abs(v);
    sq_sum += v * v;
  }
  return Real{0.5} * fit + l1 * abs_sum + Real{0.5} * l2 * sq_sum;
}

Real lasso_objective(const GramOperator& op, const la::Vector& y,
                     const la::Vector& x, Real lambda) {
  return elastic_net_objective(op, y, x, lambda, 0);
}

LassoResult lasso_solve(const GramOperator& op, const la::Vector& y,
                        const LassoConfig& config) {
  const util::SpanTimer span("lasso.solve");
  const util::TraceScope trace(util::TraceRecorder::global(), "lasso.solve");
  const Index n = op.dim();
  if (static_cast<Index>(y.size()) != op.data_dim()) {
    throw std::invalid_argument("lasso_solve: y size mismatch");
  }

  la::Vector aty(static_cast<std::size_t>(n));
  op.apply_adjoint(y, aty);

  const Real rate = config.base_rate > 0
                        ? config.base_rate
                        : 1 / (estimate_gram_norm(op) + config.lambda2);

  LassoResult result;
  result.x.assign(static_cast<std::size_t>(n), Real{0});
  la::Vector g(static_cast<std::size_t>(n));
  Adagrad adagrad(n, rate);

  for (int it = 0; it < config.max_iterations; ++it) {
    // g = G x - Aᵀy (+ lambda2 x for the Elastic-Net/Ridge smooth part).
    op.apply(result.x, g);
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] += config.lambda2 * result.x[i] - aty[i];
    }

    Real change_sq = 0, x_sq = 0;
    if (config.use_adagrad) {
      adagrad.accumulate(g);
      for (std::size_t i = 0; i < g.size(); ++i) {
        const Real r = adagrad.rate(static_cast<Index>(i));
        const Real next =
            soft_threshold(result.x[i] - r * g[i], r * config.lambda);
        const Real d = next - result.x[i];
        change_sq += d * d;
        result.x[i] = next;
        x_sq += next * next;
      }
    } else {
      for (std::size_t i = 0; i < g.size(); ++i) {
        const Real next =
            soft_threshold(result.x[i] - rate * g[i], rate * config.lambda);
        const Real d = next - result.x[i];
        change_sq += d * d;
        result.x[i] = next;
        x_sq += next * next;
      }
    }
    result.iterations = it + 1;

    if (config.objective_every > 0 && (it % config.objective_every == 0)) {
      result.objective_trace.emplace_back(
          it, elastic_net_objective(op, y, result.x, config.lambda,
                                    config.lambda2));
    }
    if (std::sqrt(change_sq) <=
        config.tolerance * std::max(Real{1}, std::sqrt(x_sq))) {
      result.converged = true;
      break;
    }
  }
  result.final_objective =
      elastic_net_objective(op, y, result.x, config.lambda, config.lambda2);
  util::MetricsRegistry::global().add(
      "lasso.iterations", static_cast<std::uint64_t>(result.iterations));
  return result;
}

LassoResult ridge_solve(const GramOperator& op, const la::Vector& y, Real l2,
                        int max_iterations, Real tolerance) {
  LassoConfig config;
  config.lambda = 0;
  config.lambda2 = l2;
  config.max_iterations = max_iterations;
  config.tolerance = tolerance;
  config.use_adagrad = false;  // the ridge objective is smooth & strongly convex
  return lasso_solve(op, y, config);
}

DistLassoResult lasso_solve_distributed(const dist::Cluster& cluster,
                                        const Matrix& d, const CscMatrix& c,
                                        const la::Vector& y,
                                        const LassoConfig& config) {
  const util::SpanTimer span("lasso.solve_distributed");
  const Index m = d.rows();
  const Index l = d.cols();
  const Index n = c.cols();
  if (static_cast<Index>(y.size()) != m) {
    throw std::invalid_argument("lasso_solve_distributed: y size mismatch");
  }

  // The step size must be identical on every rank; estimate it once up
  // front with the serial operator (the paper's API measures platform
  // constants in the same offline spirit).
  const core::TransformedGramOperator op(d, c);
  const Real rate = config.base_rate > 0
                        ? config.base_rate
                        : 1 / (estimate_gram_norm(op) + config.lambda2);

  const core::ColumnPartition part{n, cluster.topology().total()};

  DistLassoResult result;
  result.x.assign(static_cast<std::size_t>(n), Real{0});
  int iterations_shared = 0;
  bool converged_shared = false;

  dist::RunStats stats = cluster.run([&](dist::Communicator& comm) {
    const util::TraceScope rank_trace(util::TraceRecorder::global(),
                                      "lasso.rank");
    const Index rank = comm.rank();
    const Index b = part.begin(rank);
    const Index e = part.end(rank);
    const Index local_n = e - b;

    std::uint64_t nnz_local = 0;
    for (Index j = b; j < e; ++j) nnz_local += static_cast<std::uint64_t>(c.col_nnz(j));
    comm.cost().record_memory(
        nnz_local * 3 / 2 + static_cast<std::uint64_t>(local_n) * 3 +
        (rank == 0 ? static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(l) +
                         static_cast<std::uint64_t>(m)
                   : 0));

    // One-time: aty_local = (Cᵀ Dᵀ y)_local. Rank 0 owns D and y, computes
    // w = Dᵀ y, and broadcasts the L-vector.
    la::Vector w(static_cast<std::size_t>(l));
    if (rank == 0) {
      la::gemv_t(1, d, y, 0, w);
      comm.cost().add_flops(la::gemv_flops(m, l));
    }
    comm.broadcast(0, std::span<Real>(w));
    la::Vector aty_local(static_cast<std::size_t>(local_n));
    c.spmv_t_range(b, e, w, aty_local);
    comm.cost().add_flops(2 * nnz_local);

    la::Vector x_local(static_cast<std::size_t>(local_n), Real{0});
    la::Vector g_local(static_cast<std::size_t>(local_n));
    la::Vector v1(static_cast<std::size_t>(l));
    la::Vector v2(static_cast<std::size_t>(m));
    la::Vector v3(static_cast<std::size_t>(l));
    Adagrad adagrad(std::max<Index>(local_n, 1), rate);

    int it = 0;
    bool converged = false;
    for (; it < config.max_iterations; ++it) {
      const util::TraceScope iter_trace(util::TraceRecorder::global(),
                                        "lasso.iteration", "iteration",
                                        static_cast<std::uint64_t>(it));
      // Gram product through Alg. 2 (Case 1 layout: D on rank 0).
      std::fill(v1.begin(), v1.end(), Real{0});
      c.spmv_range(b, e, x_local, v1);
      comm.cost().add_flops(2 * nnz_local);
      comm.reduce_sum(0, v1);
      if (rank == 0) {
        la::gemv(1, d, v1, 0, v2);
        la::gemv_t(1, d, v2, 0, v3);
        comm.cost().add_flops(2 * la::gemv_flops(m, l));
      }
      comm.broadcast(0, std::span<Real>(v3));
      c.spmv_t_range(b, e, v3, g_local);
      comm.cost().add_flops(2 * nnz_local);

      // g = Gx - Aᵀy (+ lambda2 x); proximal Adagrad step on the slice.
      for (std::size_t i = 0; i < g_local.size(); ++i) {
        g_local[i] += config.lambda2 * x_local[i] - aty_local[i];
      }

      Real change_sq = 0, x_sq = 0;
      if (local_n > 0) {
        if (config.use_adagrad) {
          adagrad.accumulate(g_local);
          for (std::size_t i = 0; i < g_local.size(); ++i) {
            const Real r = adagrad.rate(static_cast<Index>(i));
            const Real next =
                soft_threshold(x_local[i] - r * g_local[i], r * config.lambda);
            const Real delta = next - x_local[i];
            change_sq += delta * delta;
            x_local[i] = next;
            x_sq += next * next;
          }
        } else {
          for (std::size_t i = 0; i < g_local.size(); ++i) {
            const Real next = soft_threshold(x_local[i] - rate * g_local[i],
                                             rate * config.lambda);
            const Real delta = next - x_local[i];
            change_sq += delta * delta;
            x_local[i] = next;
            x_sq += next * next;
          }
        }
        comm.cost().add_flops(static_cast<std::uint64_t>(local_n) * 6);
      }

      const Real total_change = comm.allreduce_sum_scalar(change_sq);
      const Real total_x = comm.allreduce_sum_scalar(x_sq);
      if (std::sqrt(total_change) <=
          config.tolerance * std::max(Real{1}, std::sqrt(total_x))) {
        converged = true;
        ++it;
        break;
      }
    }

    std::vector<Index> counts;
    const la::Vector gathered =
        comm.gather(0, std::span<const Real>(x_local), &counts);
    if (rank == 0) {
      std::copy(gathered.begin(), gathered.end(), result.x.begin());
      iterations_shared = it;
      converged_shared = converged;
    }
  });

  result.stats = std::move(stats);
  result.iterations = iterations_shared;
  result.converged = converged_shared;
  util::MetricsRegistry::global().add(
      "lasso.iterations", static_cast<std::uint64_t>(result.iterations));
  result.final_objective =
      elastic_net_objective(op, y, result.x, config.lambda, config.lambda2);
  return result;
}

}  // namespace extdict::solvers
