#include "solvers/adagrad.hpp"

#include <cmath>
#include <stdexcept>

namespace extdict::solvers {

Adagrad::Adagrad(Index dim, Real base_rate, Real epsilon)
    : accum_(static_cast<std::size_t>(dim), Real{0}),
      base_rate_(base_rate),
      epsilon_(epsilon) {
  if (dim <= 0 || base_rate <= 0) {
    throw std::invalid_argument("Adagrad: bad dimension or rate");
  }
}

void Adagrad::accumulate(std::span<const Real> gradient) {
  if (gradient.size() != accum_.size()) {
    throw std::invalid_argument("Adagrad::accumulate: size mismatch");
  }
  for (std::size_t i = 0; i < accum_.size(); ++i) {
    accum_[i] += gradient[i] * gradient[i];
  }
}

Real Adagrad::rate(Index i) const noexcept {
  return base_rate_ / std::sqrt(accum_[static_cast<std::size_t>(i)] + epsilon_);
}

void Adagrad::step(std::span<const Real> gradient, std::span<Real> x) {
  if (gradient.size() != accum_.size() || x.size() != accum_.size()) {
    throw std::invalid_argument("Adagrad::step: size mismatch");
  }
  accumulate(gradient);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] -= rate(static_cast<Index>(i)) * gradient[i];
  }
}

void Adagrad::reset() {
  std::fill(accum_.begin(), accum_.end(), Real{0});
}

Real soft_threshold(Real v, Real t) noexcept {
  if (v > t) return v - t;
  if (v < -t) return v + t;
  return Real{0};
}

}  // namespace extdict::solvers
