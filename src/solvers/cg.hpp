#pragma once

#include "core/gram_operator.hpp"
#include "la/types.hpp"

namespace extdict::solvers {

using core::GramOperator;
using la::Index;
using la::Real;

/// Conjugate gradient for shifted Gram systems (G + shift·I) x = b.
///
/// G = AᵀA is positive semi-definite, so any shift > 0 makes the system
/// SPD and CG applies. This is the workhorse behind the Ridge closed-form
/// path and the LS-SVM solver; like every solver in the library it runs
/// against the GramOperator interface, so the ExD-transformed product
/// accelerates it transparently.
struct CgConfig {
  Real shift = 0;
  int max_iterations = 500;
  Real tolerance = 1e-10;  ///< relative residual ||r|| / ||b||
};

struct CgResult {
  la::Vector x;
  int iterations = 0;
  Real relative_residual = 0;
  bool converged = false;
};

[[nodiscard]] CgResult conjugate_gradient(const GramOperator& op,
                                          const la::Vector& b,
                                          const CgConfig& config);

}  // namespace extdict::solvers
