#pragma once

#include <vector>

#include "core/gram_operator.hpp"
#include "dist/cluster.hpp"
#include "la/csc_matrix.hpp"
#include "la/matrix.hpp"

namespace extdict::solvers {

using core::GramOperator;
using la::CscMatrix;
using la::Index;
using la::Matrix;
using la::Real;

/// LASSO: min_x 1/2 ||A x - y||² + lambda ||x||_1, solved by proximal
/// gradient descent (ISTA) with per-coordinate Adagrad rates — the paper's
/// gradient-descent configuration for the denoising and super-resolution
/// applications (§VIII-A).
struct LassoConfig {
  Real lambda = 1e-3;     ///< L1 weight
  Real lambda2 = 0;       ///< L2 weight: > 0 turns the problem into
                          ///< Elastic-Net (both) or Ridge (lambda == 0)
  Real base_rate = 0;     ///< 0 = auto: 1 / (spectral norm of G estimate)
  int max_iterations = 500;
  Real tolerance = 1e-6;  ///< relative x-change stopping rule
  bool use_adagrad = true;
  int objective_every = 10;  ///< trace granularity (0 = never)
};

struct LassoResult {
  la::Vector x;
  int iterations = 0;
  bool converged = false;
  Real final_objective = 0;
  std::vector<std::pair<int, Real>> objective_trace;  ///< (iteration, J)
};

/// Serial solver over any Gram operator (dense AᵀA or the ExD-transformed
/// (DC)ᵀDC) — the solver never sees which it got.
[[nodiscard]] LassoResult lasso_solve(const GramOperator& op,
                                      const la::Vector& y,
                                      const LassoConfig& config);

/// Distributed solver on the transformed data: Algorithm 2's communication
/// pattern per gradient step plus local proximal updates on each rank's
/// slice of x. Produces the same iterates as the serial solver (up to
/// floating point reduction order); the run's cost counters are returned
/// for the Fig. 9 runtime model.
struct DistLassoResult {
  la::Vector x;
  int iterations = 0;
  bool converged = false;
  Real final_objective = 0;
  dist::RunStats stats;
};

[[nodiscard]] DistLassoResult lasso_solve_distributed(
    const dist::Cluster& cluster, const Matrix& d, const CscMatrix& c,
    const la::Vector& y, const LassoConfig& config);

/// Objective value 1/2||Ax-y||² + lambda||x||_1 through an operator.
[[nodiscard]] Real lasso_objective(const GramOperator& op, const la::Vector& y,
                                   const la::Vector& x, Real lambda);

/// Elastic-Net objective 1/2||Ax-y||² + l1||x||_1 + l2/2||x||².
[[nodiscard]] Real elastic_net_objective(const GramOperator& op,
                                         const la::Vector& y,
                                         const la::Vector& x, Real l1, Real l2);

/// Ridge regression: min 1/2||Ax-y||² + l2/2 ||x||², solved by the same
/// gradient machinery (lambda = 0, lambda2 = l2).
[[nodiscard]] LassoResult ridge_solve(const GramOperator& op, const la::Vector& y,
                                      Real l2, int max_iterations = 500,
                                      Real tolerance = 1e-8);

}  // namespace extdict::solvers
