#include "solvers/lanczos.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "la/blas.hpp"
#include "la/random.hpp"

namespace extdict::solvers {

void tridiagonal_eigen(std::vector<Real>& diag, std::vector<Real>& sub,
                       Matrix* z) {
  // Implicit-shift QL for symmetric tridiagonal matrices (classic
  // "tql2"-style routine). diag holds d_0..d_{n-1}; sub holds the
  // sub-diagonal e_0..e_{n-2} (e_{n-1} used as scratch).
  const Index n = static_cast<Index>(diag.size());
  if (n == 0) return;
  if (static_cast<Index>(sub.size()) < n) sub.resize(static_cast<std::size_t>(n), 0);
  if (z && (z->cols() != n)) {
    throw std::invalid_argument("tridiagonal_eigen: z column mismatch");
  }
  sub[static_cast<std::size_t>(n - 1)] = 0;

  for (Index l = 0; l < n; ++l) {
    int iterations = 0;
    for (;;) {
      // Find a small sub-diagonal element to split at.
      Index m = l;
      for (; m < n - 1; ++m) {
        const Real dd = std::abs(diag[static_cast<std::size_t>(m)]) +
                        std::abs(diag[static_cast<std::size_t>(m + 1)]);
        if (std::abs(sub[static_cast<std::size_t>(m)]) <= 1e-15 * dd) break;
      }
      if (m == l) break;
      if (++iterations > 50) {
        throw std::runtime_error("tridiagonal_eigen: QL failed to converge");
      }
      // Form the implicit shift.
      Real g = (diag[static_cast<std::size_t>(l + 1)] -
                diag[static_cast<std::size_t>(l)]) /
               (2 * sub[static_cast<std::size_t>(l)]);
      Real r = std::hypot(g, Real{1});
      g = diag[static_cast<std::size_t>(m)] - diag[static_cast<std::size_t>(l)] +
          sub[static_cast<std::size_t>(l)] /
              (g + (g >= 0 ? std::abs(r) : -std::abs(r)));
      Real s = 1, c = 1, p = 0;
      for (Index i = m - 1; i >= l; --i) {
        Real f = s * sub[static_cast<std::size_t>(i)];
        const Real b = c * sub[static_cast<std::size_t>(i)];
        r = std::hypot(f, g);
        sub[static_cast<std::size_t>(i + 1)] = r;
        if (r == Real{0}) {
          diag[static_cast<std::size_t>(i + 1)] -= p;
          sub[static_cast<std::size_t>(m)] = 0;
          break;
        }
        s = f / r;
        c = g / r;
        g = diag[static_cast<std::size_t>(i + 1)] - p;
        r = (diag[static_cast<std::size_t>(i)] - g) * s + 2 * c * b;
        p = s * r;
        diag[static_cast<std::size_t>(i + 1)] = g + p;
        g = c * r - b;
        if (z) {
          for (Index row = 0; row < z->rows(); ++row) {
            const Real zi1 = (*z)(row, i + 1);
            const Real zi = (*z)(row, i);
            (*z)(row, i + 1) = s * zi + c * zi1;
            (*z)(row, i) = c * zi - s * zi1;
          }
        }
        if (i == l) break;  // Index is signed but avoid wrap at l == 0
      }
      if (r == Real{0} && m - 1 >= l) continue;
      diag[static_cast<std::size_t>(l)] -= p;
      sub[static_cast<std::size_t>(l)] = g;
      sub[static_cast<std::size_t>(m)] = 0;
    }
  }
}

LanczosResult lanczos(const GramOperator& op, const LanczosConfig& config) {
  const Index n = op.dim();
  const Index k = std::min<Index>(config.num_eigenpairs, n);
  const Index max_dim = std::min<Index>(
      n, config.max_subspace > 0 ? config.max_subspace : 4 * k + 20);
  if (k <= 0) throw std::invalid_argument("lanczos: need at least one pair");

  la::Rng rng(config.seed);
  Matrix basis(n, max_dim);  // Lanczos vectors q_0 .. q_{j}
  std::vector<Real> alpha;   // tridiagonal diagonal
  std::vector<Real> beta;    // tridiagonal sub-diagonal

  {
    auto q0 = basis.col(0);
    rng.fill_gaussian(q0);
    const Real norm = la::nrm2(q0);
    la::scal(1 / norm, q0);
  }

  LanczosResult result;
  la::Vector w(static_cast<std::size_t>(n));
  Index dim = 0;

  for (Index j = 0; j < max_dim; ++j) {
    auto qj = basis.col(j);
    op.apply(qj, w);
    ++result.gram_products;

    Real a = la::dot(qj, w);
    alpha.push_back(a);
    la::axpy(-a, qj, w);
    if (j > 0) la::axpy(-beta.back(), basis.col(j - 1), w);

    // Full reorthogonalisation (twice) — Gram spectra have huge dynamic
    // range and plain Lanczos loses orthogonality immediately.
    for (int pass = 0; pass < 2; ++pass) {
      for (Index i = 0; i <= j; ++i) {
        const Real proj = la::dot(basis.col(i), w);
        la::axpy(-proj, basis.col(i), w);
      }
    }

    const Real b = la::nrm2(w);
    dim = j + 1;
    if (dim >= std::max<Index>(k + 2, 2)) {
      // Check Ritz convergence: |beta_j * s_{last,i}| small for the top-k.
      std::vector<Real> d = alpha;
      std::vector<Real> e = beta;
      e.resize(d.size(), 0);
      Matrix s(static_cast<Index>(d.size()), static_cast<Index>(d.size()));
      for (Index i = 0; i < s.rows(); ++i) s(i, i) = 1;
      tridiagonal_eigen(d, e, &s);
      // d ascending; top-k are the last k entries.
      bool converged = true;
      for (Index t = 0; t < k; ++t) {
        const Index idx = static_cast<Index>(d.size()) - 1 - t;
        const Real resid = std::abs(b * s(static_cast<Index>(d.size()) - 1, idx));
        if (resid > config.tolerance * std::max(std::abs(d[static_cast<std::size_t>(idx)]),
                                                Real{1e-30})) {
          converged = false;
          break;
        }
      }
      if (converged || b <= 1e-14 || dim == max_dim) {
        // Assemble the Ritz pairs.
        result.subspace_dimension = static_cast<int>(dim);
        result.eigenvalues.resize(static_cast<std::size_t>(k));
        result.eigenvectors = Matrix(n, k);
        for (Index t = 0; t < k; ++t) {
          const Index idx = static_cast<Index>(d.size()) - 1 - t;
          result.eigenvalues[static_cast<std::size_t>(t)] =
              d[static_cast<std::size_t>(idx)];
          auto dst = result.eigenvectors.col(t);
          std::fill(dst.begin(), dst.end(), Real{0});
          for (Index i = 0; i < dim; ++i) {
            la::axpy(s(i, idx), basis.col(i), dst);
          }
          const Real norm = la::nrm2(dst);
          if (norm > 0) la::scal(1 / norm, dst);
        }
        return result;
      }
    }
    if (b <= 1e-14) {
      // Invariant subspace exhausted before convergence check: restart
      // direction.
      auto next = basis.col(j + 1);
      rng.fill_gaussian(next);
      for (int pass = 0; pass < 2; ++pass) {
        for (Index i = 0; i <= j; ++i) {
          const Real proj = la::dot(basis.col(i), next);
          la::axpy(-proj, basis.col(i), next);
        }
      }
      const Real norm = la::nrm2(next);
      la::scal(1 / norm, next);
      beta.push_back(0);
      continue;
    }
    beta.push_back(b);
    if (j + 1 < max_dim) {
      auto next = basis.col(j + 1);
      for (Index i = 0; i < n; ++i) {
        next[static_cast<std::size_t>(i)] = w[static_cast<std::size_t>(i)] / b;
      }
    }
  }
  throw std::runtime_error("lanczos: subspace exhausted without convergence");
}

}  // namespace extdict::solvers
