#pragma once

#include <cstdint>

#include "core/gram_operator.hpp"
#include "la/matrix.hpp"
#include "solvers/cg.hpp"

namespace extdict::solvers {

/// Least-Squares SVM classifier over the columns of A (Suykens & Vandewalle
/// 1999) with the linear kernel K = AᵀA — the paper's third family of
/// target algorithms ("interior point methods for solving SVM [10]"; LS-SVM
/// replaces the inequality constraints with equalities, reducing training
/// to one Gram-matrix linear system, which the ExD transform accelerates
/// like every other iterative update on G).
///
/// Training solves
///     [ 0    1ᵀ          ] [ b ]   [ 0 ]
///     [ 1    K + I/gamma ] [ a ] = [ y ]
/// by block elimination with two conjugate-gradient solves on
/// (K + I/gamma); prediction is f(x) = Σ a_i <x_i, x> + b.
struct SvmConfig {
  Real gamma = 10;        ///< inverse regularisation (larger = harder margin)
  int max_cg_iterations = 500;
  Real cg_tolerance = 1e-10;
};

class LsSvm {
 public:
  /// Trains on the operator's N columns with labels y in {-1, +1}.
  LsSvm(const core::GramOperator& op, const la::Vector& labels,
        const SvmConfig& config);

  /// Decision value for a new signal (length = data_dim of the operator).
  [[nodiscard]] Real decision(std::span<const Real> signal) const;

  /// Class in {-1, +1}.
  [[nodiscard]] int classify(std::span<const Real> signal) const {
    return decision(signal) >= 0 ? 1 : -1;
  }

  /// Decision values for the training columns themselves (via K a + b).
  [[nodiscard]] la::Vector training_decisions() const;

  [[nodiscard]] Real bias() const noexcept { return bias_; }
  [[nodiscard]] const la::Vector& dual_coefficients() const noexcept {
    return alpha_;
  }
  [[nodiscard]] int cg_iterations() const noexcept { return cg_iterations_; }

 private:
  const core::GramOperator* op_;
  la::Vector alpha_;
  Real bias_ = 0;
  int cg_iterations_ = 0;
};

/// Fraction of correctly classified training columns (sanity metric used by
/// the tests and the example).
[[nodiscard]] Real training_accuracy(const LsSvm& svm, const la::Vector& labels);

}  // namespace extdict::solvers
