#include "sparsecoding/batch_omp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "util/contracts.hpp"
#include "util/metrics.hpp"

namespace extdict::sparsecoding {

// extdict-lint: allow(missing-shape-contract) any dictionary shape is valid; gram() validates
BatchOmp::BatchOmp(const Matrix& dict, OmpConfig config)
    : dict_(&dict), gram_(la::gram(dict)), config_(config) {
  max_atoms_ = config_.max_atoms > 0
                   ? std::min(config_.max_atoms, std::min(dict.rows(), dict.cols()))
                   : std::min(dict.rows(), dict.cols());
}

BatchOmp::BatchOmp(const Matrix& dict, Matrix gram, OmpConfig config)
    : dict_(&dict), gram_(std::move(gram)), config_(config) {
  EXTDICT_REQUIRE_SHAPE(
      gram_.rows() == dict.cols() && gram_.cols() == dict.cols(),
      "BatchOmp: supplied Gram is " + std::to_string(gram_.rows()) + "x" +
          std::to_string(gram_.cols()) + " but the dictionary has " +
          std::to_string(dict.cols()) + " columns");
  max_atoms_ = config_.max_atoms > 0
                   ? std::min(config_.max_atoms, std::min(dict.rows(), dict.cols()))
                   : std::min(dict.rows(), dict.cols());
}

// extdict-lint: allow(missing-shape-contract) delegates to the checked overload
SparseCode BatchOmp::encode(std::span<const Real> signal) const {
  return encode(signal, config_);
}

SparseCode BatchOmp::encode(std::span<const Real> signal,
                            const OmpConfig& config) const {
  const Index m = dict_->rows();
  const Index l = dict_->cols();
  const Index max_atoms =
      config.max_atoms > 0
          ? std::min(config.max_atoms, std::min(m, l))
          : std::min(m, l);
  EXTDICT_REQUIRE_SHAPE(static_cast<Index>(signal.size()) == m,
                        "BatchOmp::encode: |signal|=" +
                            std::to_string(signal.size()) +
                            " but dictionary has " + std::to_string(m) +
                            " rows");

  EXTDICT_CHECK_FINITE(signal, "BatchOmp::encode: signal");

  SparseCode code;
  // Exact FLOP meter (2 FLOPs per multiply-add, matching la/blas.hpp's
  // gemv_flops/gemm_flops convention). Each kernel call below charges its
  // actual runtime size so `code.flops` is the true count even on runs with
  // dependent-atom rejections; on clean runs it equals `encode_flops(k)`.
  const auto um = static_cast<std::uint64_t>(m);
  const auto ul = static_cast<std::uint64_t>(l);
  std::uint64_t flops = 2 * um;  // eps0 = <x, x>
  const Real eps0 = la::dot(signal, signal);
  if (eps0 == Real{0} || max_atoms == 0) {
    code.flops = flops;
    return code;
  }
  // Stop when ||r||² <= (ε ||x||)².
  const Real target_sq = config.tolerance * config.tolerance * eps0;

  // alpha0 = Dᵀ x (computed once); alpha = Dᵀ r maintained via the Gram.
  la::Vector alpha0(static_cast<std::size_t>(l));
  la::gemv_t(1, *dict_, signal, 0, alpha0);
  flops += 2 * um * ul;
  la::Vector alpha = alpha0;

  la::ProgressiveCholesky chol(max_atoms);
  std::vector<Index> selected;
  std::vector<bool> used(static_cast<std::size_t>(l), false);
  la::Vector gamma;                 // coefficients on the selection
  la::Vector g_new;                 // G(selected, k) scratch
  la::Vector beta(static_cast<std::size_t>(l));
  Real eps = eps0;
  std::uint64_t n_used = 0;  // `used` flags set, for the scan charge

  while (eps > target_sq && static_cast<Index>(selected.size()) < max_atoms) {
    Index best = -1;
    Real best_abs = 0;
    flops += ul - n_used;  // argmax scan touches each unused candidate once
    for (Index j = 0; j < l; ++j) {
      if (used[static_cast<std::size_t>(j)]) continue;
      const Real a = std::abs(alpha[static_cast<std::size_t>(j)]);
      if (a > best_abs) {
        best_abs = a;
        best = j;
      }
    }
    if (best < 0 || best_abs <= 1e-14 * std::sqrt(eps0)) break;

    // Grow the Cholesky factor of G(selected, selected).
    const Index k = static_cast<Index>(selected.size());
    g_new.resize(static_cast<std::size_t>(k));
    for (Index a = 0; a < k; ++a) {
      g_new[static_cast<std::size_t>(a)] =
          gram_(selected[static_cast<std::size_t>(a)], best);
    }
    // ProgressiveCholesky::append at size k: forward solve L w = g_new
    // (k² + 2k multiply-adds incl. the squared-sum accumulation) plus the
    // Schur complement and its square root. Charged whether or not the
    // pivot check accepts the atom — the solve ran either way.
    const auto uk = static_cast<std::uint64_t>(k);
    flops += uk * uk + 2 * uk + 2;
    if (!chol.append(g_new, gram_(best, best))) {
      // Linearly dependent atom — exclude it and keep searching.
      used[static_cast<std::size_t>(best)] = true;
      alpha[static_cast<std::size_t>(best)] = 0;
      ++n_used;
      continue;
    }
    used[static_cast<std::size_t>(best)] = true;
    ++n_used;
    selected.push_back(best);
    ++code.iterations;

    // gamma = G(S,S)⁻¹ alpha0(S).
    const Index ks = static_cast<Index>(selected.size());
    gamma.resize(static_cast<std::size_t>(ks));
    for (Index a = 0; a < ks; ++a) {
      gamma[static_cast<std::size_t>(a)] =
          alpha0[static_cast<std::size_t>(selected[static_cast<std::size_t>(a)])];
    }
    chol.solve_in_place(gamma);
    // Forward + back substitution at size s: s² multiply-adds each → 2s².
    flops += 2 * static_cast<std::uint64_t>(ks) * static_cast<std::uint64_t>(ks);
    EXTDICT_ASSERT(util::first_non_finite(gamma) < 0,
                   "BatchOmp::encode: non-finite coefficient after atom " +
                       std::to_string(best));

    // alpha = alpha0 - G(:,S) gamma; residual energy via the normal
    // equations: ||r||² = ||x||² - alpha0(S)ᵀ gamma.
    std::copy(alpha0.begin(), alpha0.end(), beta.begin());
    for (Index a = 0; a < ks; ++a) {
      const Index atom = selected[static_cast<std::size_t>(a)];
      const Real ga = gamma[static_cast<std::size_t>(a)];
      if (ga == Real{0}) continue;
      la::axpy(-ga, gram_.col(atom), beta);
      flops += 2 * ul;
    }
    alpha = beta;
    for (const Index s : selected) alpha[static_cast<std::size_t>(s)] = 0;

    Real fit = 0;
    for (Index a = 0; a < ks; ++a) {
      fit += gamma[static_cast<std::size_t>(a)] *
             alpha0[static_cast<std::size_t>(selected[static_cast<std::size_t>(a)])];
    }
    flops += 2 * static_cast<std::uint64_t>(ks);  // the fit dot product
    eps = std::max(Real{0}, eps0 - fit);
  }

  code.entries.reserve(selected.size());
  for (std::size_t a = 0; a < selected.size(); ++a) {
    code.entries.emplace_back(selected[a], gamma[a]);
  }
  code.residual_norm = std::sqrt(eps);
  code.flops = flops;
  return code;
}

la::CscMatrix BatchOmp::encode_all(const Matrix& signals) const {
  EXTDICT_REQUIRE_SHAPE(signals.rows() == dict_->rows(),
                        "BatchOmp::encode_all: signals have " +
                            std::to_string(signals.rows()) +
                            " rows but dictionary has " +
                            std::to_string(dict_->rows()));
  const Index n = signals.cols();
  const util::SpanTimer span("batch_omp.encode_all");
  std::vector<std::vector<std::pair<Index, Real>>> columns(
      static_cast<std::size_t>(n));
#pragma omp parallel for schedule(dynamic, 16) default(none) \
    shared(signals, columns, n) if (n > 1)
  for (Index j = 0; j < n; ++j) {
    columns[static_cast<std::size_t>(j)] = encode(signals.col(j)).entries;
  }
  util::MetricsRegistry::global().add("batch_omp.signals_encoded",
                                      static_cast<std::uint64_t>(n));
  return la::CscMatrix::from_columns(dict_->cols(), columns);
}

std::uint64_t BatchOmp::encode_flops(Index k) const noexcept {
  const auto m = static_cast<std::uint64_t>(dict_->rows());
  const auto l = static_cast<std::uint64_t>(dict_->cols());
  const auto kk = static_cast<std::uint64_t>(k);
  // Mirrors the meter in encode(), summed in closed form over a clean
  // k-iteration run (every append accepted, no exact-zero coefficients).
  // The earlier model charged k·k² = k³ for the triangular solves even
  // though each solve pair is only quadratic (2s² at size s); the correct
  // total is Σ 2s² = k(k+1)(2k+1)/3 ≈ (2/3)k³.
  const std::uint64_t setup = 2 * m + 2 * m * l;  // <x,x> + Dᵀx
  if (kk == 0) return setup;
  // Argmax scans: Σ_{t=0}^{k-1} (L - t).
  const std::uint64_t scans = kk * l - kk * (kk - 1) / 2;
  // Cholesky appends: Σ_{t=0}^{k-1} (t² + 2t + 2).
  const std::uint64_t appends =
      (kk - 1) * kk * (2 * kk - 1) / 6 + kk * (kk - 1) + 2 * kk;
  // Triangular solve pairs: Σ_{s=1}^{k} 2s².
  const std::uint64_t solves = kk * (kk + 1) * (2 * kk + 1) / 3;
  // β updates: Σ_{s=1}^{k} 2·L·s.
  const std::uint64_t betas = l * kk * (kk + 1);
  // Residual-energy fits: Σ_{s=1}^{k} 2s.
  const std::uint64_t fits = kk * (kk + 1);
  return setup + scans + appends + solves + betas + fits;
}

}  // namespace extdict::sparsecoding
