#pragma once

#include <cstdint>
#include <span>

#include "la/csc_matrix.hpp"
#include "la/matrix.hpp"
#include "sparsecoding/omp.hpp"

namespace extdict::sparsecoding {

/// Batch-OMP: Cholesky-update Orthogonal Matching Pursuit with a
/// precomputed dictionary Gram matrix (Rubinstein, Zibulevsky & Elad 2008).
///
/// This is the coder ExD uses in production (§V-D): the Gram matrix
/// G = DᵀD is computed once per dictionary; encoding a signal then costs
/// O(M·L) for the initial correlations plus O(L·k + k²) per greedy
/// iteration, never touching the residual explicitly. `encode_all`
/// parallelises over signals with OpenMP — each column of C is independent
/// (Alg. 1 step 3 runs per processor in the paper).
class BatchOmp {
 public:
  BatchOmp(const Matrix& dict, OmpConfig config);

  /// Adopts a caller-supplied Gram instead of recomputing `la::gram(dict)`.
  /// This is the dictionary-extension entry: `core::extend_gram_bordered`
  /// grows an L×L Gram to (L+K)×(L+K) in O(L² + M·L·K) instead of the
  /// O(M·(L+K)²) full recompute, and the result is handed here. `gram` must
  /// be the exact cols(dict)-square Gram of `dict` — shape is checked, the
  /// values are trusted.
  BatchOmp(const Matrix& dict, Matrix gram, OmpConfig config);

  /// Sparse-codes a single signal (length rows()) with the config given at
  /// construction.
  [[nodiscard]] SparseCode encode(std::span<const Real> signal) const;

  /// Sparse-codes a single signal under a caller-supplied stopping rule —
  /// the resident Gram/dictionary state is shared, only ε / max_atoms vary.
  /// This is the entry the serving layer uses for per-request tolerances.
  [[nodiscard]] SparseCode encode(std::span<const Real> signal,
                                  const OmpConfig& config) const;

  /// Sparse-codes every column of `signals`, returning the L x N coefficient
  /// matrix in CSC form.
  [[nodiscard]] la::CscMatrix encode_all(const Matrix& signals) const;

  [[nodiscard]] Index atom_count() const noexcept { return dict_->cols(); }
  [[nodiscard]] Index signal_dim() const noexcept { return dict_->rows(); }
  [[nodiscard]] const Matrix& gram() const noexcept { return gram_; }
  [[nodiscard]] const OmpConfig& config() const noexcept { return config_; }

  /// Closed-form FLOPs of one clean `encode` run that selects k atoms with
  /// no dependent-atom rejections: initial correlations (2M + 2ML), the
  /// shrinking argmax scans, the progressive-Cholesky appends, the
  /// triangular solve pair per iteration (2s² at size s, ~(2/3)k³ total —
  /// NOT k³: each solve is quadratic, only the sum over iterations is
  /// cubic), the β updates (2L per selected atom per iteration), and the
  /// residual-energy fits. Matches `SparseCode::flops` exactly on clean
  /// runs; `bench/run_benchmarks` enforces the identity per signal.
  [[nodiscard]] std::uint64_t encode_flops(Index k) const noexcept;

 private:
  const Matrix* dict_;  // non-owning; caller keeps the dictionary alive
  Matrix gram_;
  OmpConfig config_;
  Index max_atoms_;
};

}  // namespace extdict::sparsecoding
