#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::sparsecoding {

using la::Index;
using la::Matrix;
using la::Real;

/// Stopping rule for the greedy sparse coder (Alg. 1 step 3): iterate until
/// ||r|| <= tolerance * ||signal|| or `max_atoms` atoms are selected.
struct OmpConfig {
  Real tolerance = 0.1;  ///< the paper's ε (relative residual)
  Index max_atoms = 0;   ///< 0 = min(dictionary cols, rows)
};

/// One sparse code: the selected (atom index, coefficient) pairs, the final
/// residual norm, and the iteration count.
struct SparseCode {
  std::vector<std::pair<Index, Real>> entries;
  Real residual_norm = 0;
  int iterations = 0;
  /// Exact FLOPs this encode performed, metered at kernel-call granularity
  /// (2 FLOPs per multiply-add, the la/blas.hpp convention). Filled by
  /// `BatchOmp::encode`; the reference coder leaves it 0. On a clean run
  /// (no dependent-atom rejections) it equals `BatchOmp::encode_flops(k)` —
  /// `bench/run_benchmarks` asserts that identity exactly.
  std::uint64_t flops = 0;

  [[nodiscard]] Index nnz() const noexcept {
    return static_cast<Index>(entries.size());
  }
};

/// Reference Orthogonal Matching Pursuit on an explicit residual.
///
/// Straightforward implementation of Alg. 1 step 3: pick the atom with the
/// largest correlation to the residual, re-solve the least-squares fit on
/// the selected set, update the residual. O(k) least-squares re-solves make
/// it slower than `BatchOmp` but trivially auditable — tests cross-check the
/// two and the ablation bench quantifies the gap.
[[nodiscard]] SparseCode omp_sparse_code(const Matrix& dict,
                                         std::span<const Real> signal,
                                         const OmpConfig& config);

}  // namespace extdict::sparsecoding
