#include "sparsecoding/omp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "util/contracts.hpp"

namespace extdict::sparsecoding {

SparseCode omp_sparse_code(const Matrix& dict, std::span<const Real> signal,
                           const OmpConfig& config) {
  const Index m = dict.rows();
  const Index l = dict.cols();
  EXTDICT_REQUIRE_SHAPE(static_cast<Index>(signal.size()) == m,
                        "omp_sparse_code: |signal|=" +
                            std::to_string(signal.size()) +
                            " but dictionary has " + std::to_string(m) +
                            " rows");
  EXTDICT_CHECK_FINITE(signal, "omp_sparse_code: signal");
  const Index max_atoms =
      config.max_atoms > 0 ? std::min(config.max_atoms, std::min(m, l))
                           : std::min(m, l);

  const Real signal_norm = la::nrm2(signal);
  SparseCode code;
  if (signal_norm == Real{0} || max_atoms == 0) return code;
  const Real target = config.tolerance * signal_norm;

  la::Vector residual(signal.begin(), signal.end());
  la::Vector correlations(static_cast<std::size_t>(l));
  std::vector<Index> selected;
  std::vector<bool> used(static_cast<std::size_t>(l), false);
  Real residual_norm = signal_norm;

  while (residual_norm > target &&
         static_cast<Index>(selected.size()) < max_atoms) {
    // Step 3.1: most correlated unused atom.
    la::gemv_t(1, dict, residual, 0, correlations);
    Index best = -1;
    Real best_abs = 0;
    for (Index j = 0; j < l; ++j) {
      if (used[static_cast<std::size_t>(j)]) continue;
      const Real a = std::abs(correlations[static_cast<std::size_t>(j)]);
      if (a > best_abs) {
        best_abs = a;
        best = j;
      }
    }
    if (best < 0 || best_abs <= 1e-14 * signal_norm) break;  // residual ⟂ dict
    used[static_cast<std::size_t>(best)] = true;
    selected.push_back(best);
    ++code.iterations;

    // Steps 3.3/3.4: least-squares fit on the selection via the normal
    // equations, then an explicit residual.
    const Index k = static_cast<Index>(selected.size());
    Matrix g(k, k);
    la::Vector rhs(static_cast<std::size_t>(k));
    for (Index a = 0; a < k; ++a) {
      const auto ca = dict.col(selected[static_cast<std::size_t>(a)]);
      rhs[static_cast<std::size_t>(a)] = la::dot(ca, signal);
      for (Index b = 0; b <= a; ++b) {
        const Real v = la::dot(ca, dict.col(selected[static_cast<std::size_t>(b)]));
        g(a, b) = v;
        g(b, a) = v;
      }
    }
    la::Vector gamma;
    try {
      gamma = la::Cholesky(g).solve(rhs);
    } catch (const std::domain_error&) {
      // Dependent atom slipped in; drop it and stop.
      selected.pop_back();
      break;
    }

    residual.assign(signal.begin(), signal.end());
    for (Index a = 0; a < k; ++a) {
      la::axpy(-gamma[static_cast<std::size_t>(a)],
               dict.col(selected[static_cast<std::size_t>(a)]), residual);
    }
    residual_norm = la::nrm2(residual);
    EXTDICT_ASSERT(std::isfinite(residual_norm),
                   "omp_sparse_code: residual norm went non-finite after "
                   "selecting atom " +
                       std::to_string(best));

    code.entries.clear();
    code.entries.reserve(static_cast<std::size_t>(k));
    for (Index a = 0; a < k; ++a) {
      code.entries.emplace_back(selected[static_cast<std::size_t>(a)],
                                gamma[static_cast<std::size_t>(a)]);
    }
  }

  code.residual_norm = residual_norm;
  return code;
}

}  // namespace extdict::sparsecoding
