#pragma once

#include <cstdint>
#include <vector>

#include "la/types.hpp"

namespace extdict::dist {

/// Per-rank accounting of the three quantities the paper's performance model
/// is built on (§VI-B): floating point operations, words communicated
/// (split by locality and direction), and memory footprint.
struct CostCounters {
  std::uint64_t flops = 0;

  std::uint64_t words_sent_intra = 0;   ///< words sent to a same-node rank
  std::uint64_t words_sent_inter = 0;   ///< words sent across nodes
  std::uint64_t words_recv_intra = 0;
  std::uint64_t words_recv_inter = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_recv = 0;

  /// High-water mark of words resident on this rank (matrices the rank
  /// loads/owns). Updated via `record_memory`.
  std::uint64_t peak_memory_words = 0;

  void add_flops(std::uint64_t n) noexcept { flops += n; }

  void add_send(std::uint64_t words, bool inter_node) noexcept {
    (inter_node ? words_sent_inter : words_sent_intra) += words;
    ++messages_sent;
  }

  void add_recv(std::uint64_t words, bool inter_node) noexcept {
    (inter_node ? words_recv_inter : words_recv_intra) += words;
    ++messages_recv;
  }

  void record_memory(std::uint64_t resident_words) noexcept {
    if (resident_words > peak_memory_words) peak_memory_words = resident_words;
  }

  [[nodiscard]] std::uint64_t words_sent() const noexcept {
    return words_sent_intra + words_sent_inter;
  }
  [[nodiscard]] std::uint64_t words_recv() const noexcept {
    return words_recv_intra + words_recv_inter;
  }
  [[nodiscard]] std::uint64_t words_touched() const noexcept {
    return words_sent() + words_recv();
  }

  CostCounters& operator+=(const CostCounters& o) noexcept;
};

/// Aggregated result of one SPMD run on the emulated cluster.
struct RunStats {
  std::vector<CostCounters> per_rank;
  double wall_seconds = 0;  ///< host wall-clock of the whole run

  [[nodiscard]] std::uint64_t total_flops() const noexcept;
  [[nodiscard]] std::uint64_t max_rank_flops() const noexcept;
  [[nodiscard]] std::uint64_t total_words() const noexcept;        ///< sum of sends
  [[nodiscard]] std::uint64_t max_rank_words() const noexcept;     ///< max send+recv
  [[nodiscard]] std::uint64_t max_peak_memory_words() const noexcept;

  RunStats& operator+=(const RunStats& o);
};

}  // namespace extdict::dist
