#pragma once

#include <string>
#include <vector>

#include "dist/cost.hpp"
#include "dist/topology.hpp"
#include "la/types.hpp"

namespace extdict::dist {

/// Calibrated machine model that converts the simulator's exact counters
/// (FLOPs, words by locality, messages) into modelled runtime and energy —
/// the role the paper's R_bf ratios play in Equations (2) and (3).
///
/// Defaults emulate the paper's IBM iDataPlex nodes (Intel Xeon X5660,
/// 2.8 GHz, QDR InfiniBand): per-core ~3 GFLOP/s sustained on dense
/// matrix-vector work, tens of GB/s shared-memory bandwidth inside a node
/// and a few GB/s across nodes. The *ratios* are what shape every figure;
/// `calibrate()` can re-measure the FLOP rate and memory bandwidth of the
/// host if absolute milliseconds are wanted.
struct PlatformSpec {
  std::string name;
  Topology topology;

  double flops_per_second = 3.0e9;        ///< per core, sustained
  double intra_words_per_second = 2.0e9;  ///< words through shared memory
  double inter_words_per_second = 2.5e8;  ///< words across the interconnect
  double message_latency_seconds = 2.0e-7;  ///< scaled with the dataset
  ///< downscaling so the latency-to-volume ratio matches the paper's
  ///< regime (real QDR ~2 us, datasets here ~10-100x smaller)

  double joules_per_flop = 0.5e-9;
  double joules_per_intra_word = 4.0e-9;
  double joules_per_inter_word = 60.0e-9;

  /// Paper's R_bf^time: the time of moving one word relative to one FLOP
  /// (uses the slower, inter-node channel when the topology spans nodes).
  [[nodiscard]] double r_time_bf() const noexcept {
    const double word_time = topology.nodes > 1 ? 1.0 / inter_words_per_second
                                                : 1.0 / intra_words_per_second;
    return word_time * flops_per_second;
  }

  /// Paper's R_bf^energy analogue.
  [[nodiscard]] double r_energy_bf() const noexcept {
    const double word_energy =
        topology.nodes > 1 ? joules_per_inter_word : joules_per_intra_word;
    return word_energy / joules_per_flop;
  }

  /// Modelled runtime of a measured SPMD region: the slowest rank's compute
  /// plus communication service time.
  [[nodiscard]] double modeled_seconds(const RunStats& stats) const;

  /// Modelled energy: total work across ranks.
  [[nodiscard]] double modeled_joules(const RunStats& stats) const;

  /// Platform preset emulating the paper's cluster at a given shape.
  [[nodiscard]] static PlatformSpec idataplex(Topology topo);

  /// Measures this host's dense FLOP rate and streaming bandwidth and
  /// rescales the spec accordingly (keeps inter-node parameters, which have
  /// no physical counterpart on a single host, at the preset ratio).
  void calibrate_on_host();
};

/// The paper's four evaluation platforms (1x1, 1x4, 2x8, 8x8).
[[nodiscard]] std::vector<PlatformSpec> paper_platforms();

}  // namespace extdict::dist
