#pragma once

#include <string>

#include "la/types.hpp"

namespace extdict::dist {

using la::Index;

/// Shape of the emulated cluster: `nodes` machines with `cores_per_node`
/// processors each. Ranks 0..total()-1 are laid out node-major, so ranks
/// [k*cores_per_node, (k+1)*cores_per_node) share node k. Intra-node traffic
/// is cheaper than inter-node traffic; the paper's platform configurations
/// (1x1, 1x4, 2x8, 8x8) are instances of this type.
struct Topology {
  Index nodes = 1;
  Index cores_per_node = 1;

  [[nodiscard]] Index total() const noexcept { return nodes * cores_per_node; }

  [[nodiscard]] Index node_of(Index rank) const noexcept {
    return rank / cores_per_node;
  }

  [[nodiscard]] bool same_node(Index a, Index b) const noexcept {
    return node_of(a) == node_of(b);
  }

  /// "nodes x cores" label used in tables (e.g. "8x8").
  [[nodiscard]] std::string name() const;

  friend bool operator==(const Topology&, const Topology&) = default;
};

/// The four platform configurations evaluated in the paper (§VIII-B3).
inline constexpr Topology kPaperPlatforms[] = {
    {.nodes = 1, .cores_per_node = 1},
    {.nodes = 1, .cores_per_node = 4},
    {.nodes = 2, .cores_per_node = 8},
    {.nodes = 8, .cores_per_node = 8},
};

}  // namespace extdict::dist
