#include "dist/cluster.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace extdict::dist {

RunStats Cluster::run(const Body& body) const {
  const Index p = topology_.total();
  SharedState shared(topology_);

  RunStats stats;
  stats.per_rank.resize(static_cast<std::size_t>(p));

  // Snapshot the tracer's totals so the rollup below reports this run's
  // deltas, not process-lifetime cumulatives.
  util::TraceRecorder& trace = util::TraceRecorder::global();
  const bool traced = trace.enabled();
  const std::uint64_t dropped_before = traced ? trace.dropped_events() : 0;
  const auto rank_events_before =
      traced ? trace.rank_event_counts()
             : std::vector<std::pair<std::int32_t, std::uint64_t>>{};

  util::Timer timer;
  const util::TraceScope run_scope(trace, "cluster.run", "ranks",
                                   static_cast<std::uint64_t>(p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (Index r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      // Each emulated rank is a single processor; suppress nested OpenMP so
      // kernel-side work maps 1:1 onto the rank. (num_threads is a
      // thread-local ICV, so this does not affect other ranks or the host.)
#ifdef _OPENMP
      omp_set_num_threads(1);
#endif
      // Tag this thread's trace lane with the emulated rank before the first
      // event so the buffer preallocates outside any metered phase.
      trace.set_thread_rank(static_cast<std::int32_t>(r));
      const util::TraceScope rank_scope(trace, "cluster.rank");
      Communicator comm(shared, r);
      try {
        body(comm);
      } catch (...) {
        trace.instant("cluster.abort");
        shared.abort(std::current_exception());
      }
      stats.per_rank[static_cast<std::size_t>(r)] = comm.cost();
    });
  }
  for (auto& t : threads) t.join();
  stats.wall_seconds = timer.elapsed_seconds();

  // Read through the locked accessor: the joins above already order the
  // write, but the annotation layer (rightly) has no way to know that, and
  // the guarded read keeps -Wthread-safety exhaustive on this path too.
  if (const std::exception_ptr first = shared.first_error()) {
    try {
      std::rethrow_exception(first);
    } catch (const ClusterAborted&) {
      // A rank can observe the poison before the original error is recorded;
      // if the *first* recorded error is the abort echo itself, surface a
      // generic failure instead of the echo.
      throw std::runtime_error("Cluster::run: SPMD region failed");
    }
  }

  // Roll the run's exact counters up into the observability registry
  // (successful runs only — aborted regions have partial, misleading
  // counters). `critical_path_words` is the slowest rank's send+recv
  // volume, the quantity the Eq. (2) communication term bounds.
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.record_span("cluster.run", stats.wall_seconds);
  metrics.add("cluster.ranks_run", static_cast<std::uint64_t>(p));
  metrics.add("cluster.flops", stats.total_flops());
  metrics.add("cluster.words_sent", stats.total_words());
  metrics.add("cluster.critical_path_words", stats.max_rank_words());
  metrics.update_max("cluster.peak_memory_words",
                     stats.max_peak_memory_words());

  // Trace rollup (traced runs only): surface ring truncation and per-rank
  // event volume next to the metered counters so a silent drop shows up in
  // the BENCH_* metrics snapshots, not just in the trace file.
  if (traced) {
    metrics.add("trace.dropped_events",
                trace.dropped_events() - dropped_before);
    std::map<std::int32_t, std::uint64_t> before(rank_events_before.begin(),
                                                 rank_events_before.end());
    for (const auto& [rank, count] : trace.rank_event_counts()) {
      const auto it = before.find(rank);
      const std::uint64_t delta =
          count - (it == before.end() ? 0 : it->second);
      if (delta > 0 && rank != util::TraceRecorder::kHostPid) {
        metrics.add("trace.events.rank" + std::to_string(rank), delta);
      }
    }
  }
  return stats;
}

}  // namespace extdict::dist
