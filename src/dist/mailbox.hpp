#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <vector>

#include "la/types.hpp"

namespace extdict::dist {

using la::Index;

/// Raised on every rank when some rank aborted the SPMD region with an
/// exception, so blocked receivers unwind instead of deadlocking.
class ClusterAborted : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "SPMD region aborted by a peer rank";
  }
};

/// One rank's inbox. Senders push byte payloads tagged with (source, tag);
/// the owning rank pops the earliest message matching a (source, tag) pair.
/// Per-sender FIFO order is preserved, mirroring MPI's non-overtaking rule.
class Mailbox {
 public:
  struct Envelope {
    Index source;
    int tag;
    std::vector<std::byte> payload;
  };

  void push(Envelope env);

  /// Blocks until a message from `source` with `tag` is available (or the
  /// run is aborted, in which case ClusterAborted is thrown).
  [[nodiscard]] std::vector<std::byte> pop(Index source, int tag);

  /// Wakes all blocked poppers with ClusterAborted.
  void poison() noexcept;

  /// True if any message is queued (used by tests).
  [[nodiscard]] bool empty() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  bool poisoned_ = false;
};

}  // namespace extdict::dist
