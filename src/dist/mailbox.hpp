#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <vector>

#include "la/types.hpp"
#include "util/sync.hpp"

namespace extdict::dist {

using la::Index;

/// Raised on every rank when some rank aborted the SPMD region with an
/// exception, so blocked receivers unwind instead of deadlocking.
class ClusterAborted : public std::exception {
 public:
  [[nodiscard]] const char* what() const noexcept override {
    return "SPMD region aborted by a peer rank";
  }
};

/// One rank's inbox. Senders push byte payloads tagged with (source, tag);
/// the owning rank pops the earliest message matching a (source, tag) pair.
/// Per-sender FIFO order is preserved, mirroring MPI's non-overtaking rule.
///
/// Thread-safe; all methods self-lock. The locking protocol is carried by
/// Clang thread-safety annotations (see util/sync.hpp) and enforced by the
/// `thread-safety` preset.
class Mailbox {
 public:
  struct Envelope {
    Index source;
    int tag;
    std::vector<std::byte> payload;
  };

  void push(Envelope env) EXTDICT_EXCLUDES(mu_);

  /// Blocks until a message from `source` with `tag` is available (or the
  /// run is aborted, in which case ClusterAborted is thrown).
  [[nodiscard]] std::vector<std::byte> pop(Index source, int tag)
      EXTDICT_EXCLUDES(mu_);

  /// Wakes all blocked poppers with ClusterAborted.
  void poison() noexcept EXTDICT_EXCLUDES(mu_);

  /// True if any message is queued (used by tests).
  [[nodiscard]] bool empty() const EXTDICT_EXCLUDES(mu_);

 private:
  // Leaf lock (library-wide policy, util/sync.hpp): never held while
  // acquiring any other Mutex. SharedState::abort poisons mailboxes one at a
  // time with no lock of its own held.
  mutable util::Mutex mu_;
  util::CondVar cv_;
  std::deque<Envelope> queue_ EXTDICT_GUARDED_BY(mu_);
  bool poisoned_ EXTDICT_GUARDED_BY(mu_) = false;
};

}  // namespace extdict::dist
