#include "dist/platform.hpp"

#include <algorithm>
#include <vector>

#include "la/blas.hpp"
#include "la/matrix.hpp"
#include "la/random.hpp"
#include "util/timer.hpp"

namespace extdict::dist {

double PlatformSpec::modeled_seconds(const RunStats& stats) const {
  double worst = 0;
  for (const auto& c : stats.per_rank) {
    const double compute = static_cast<double>(c.flops) / flops_per_second;
    const double comm =
        static_cast<double>(c.words_sent_intra + c.words_recv_intra) /
            intra_words_per_second +
        static_cast<double>(c.words_sent_inter + c.words_recv_inter) /
            inter_words_per_second +
        static_cast<double>(c.messages_sent + c.messages_recv) *
            message_latency_seconds;
    worst = std::max(worst, compute + comm);
  }
  return worst;
}

double PlatformSpec::modeled_joules(const RunStats& stats) const {
  double total = 0;
  for (const auto& c : stats.per_rank) {
    total += static_cast<double>(c.flops) * joules_per_flop;
    // Each transfer is counted on both endpoints; halve to charge the wire
    // once.
    total += 0.5 *
             (static_cast<double>(c.words_sent_intra + c.words_recv_intra) *
                  joules_per_intra_word +
              static_cast<double>(c.words_sent_inter + c.words_recv_inter) *
                  joules_per_inter_word);
  }
  return total;
}

PlatformSpec PlatformSpec::idataplex(Topology topo) {
  PlatformSpec spec;
  spec.name = "idataplex-" + topo.name();
  spec.topology = topo;
  return spec;
}

void PlatformSpec::calibrate_on_host() {
  la::Rng rng(42);

  // FLOP rate: timed dense gemv on an in-cache matrix.
  {
    const la::Index m = 512, n = 512;
    la::Matrix a = rng.gaussian_matrix(m, n);
    la::Vector x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(m));
    rng.fill_gaussian(x);
    util::Timer t;
    int reps = 0;
    while (t.elapsed_seconds() < 0.05) {
      la::gemv(1, a, x, 0, y);
      ++reps;
    }
    const double flops = static_cast<double>(reps) *
                         static_cast<double>(la::gemv_flops(m, n));
    flops_per_second = std::max(1e8, flops / t.elapsed_seconds());
  }

  // Streaming bandwidth: large memcpy-like triad.
  {
    const std::size_t n = 4u << 20;  // 32 MiB of doubles, beyond LLC
    std::vector<la::Real> src(n, 1.0), dst(n, 0.0);
    util::Timer t;
    int reps = 0;
    while (t.elapsed_seconds() < 0.05) {
      for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] + 0.5 * dst[i];
      ++reps;
    }
    const double words = static_cast<double>(reps) * static_cast<double>(n) * 2;
    intra_words_per_second = std::max(1e7, words / t.elapsed_seconds());
  }

  // Keep the preset intra/inter ratio so multi-node shapes stay physical.
  inter_words_per_second = intra_words_per_second / 8.0;
}

std::vector<PlatformSpec> paper_platforms() {
  std::vector<PlatformSpec> specs;
  specs.reserve(std::size(kPaperPlatforms));
  for (const Topology& topo : kPaperPlatforms) {
    specs.push_back(PlatformSpec::idataplex(topo));
  }
  return specs;
}

}  // namespace extdict::dist
