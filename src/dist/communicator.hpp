#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <exception>
#include <memory>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "dist/cost.hpp"
#include "dist/mailbox.hpp"
#include "dist/topology.hpp"
#include "la/types.hpp"
#include "util/sync.hpp"
#include "util/trace.hpp"

namespace extdict::dist {

/// Sense-free central barrier with generation counting.
///
/// Thread-safe; both methods self-lock (annotations in util/sync.hpp).
class CentralBarrier {
 public:
  explicit CentralBarrier(Index total) : total_(total) {}

  void arrive_and_wait() EXTDICT_EXCLUDES(mu_);

  /// Releases all waiters with ClusterAborted.
  void poison() noexcept EXTDICT_EXCLUDES(mu_);

 private:
  // Leaf lock: never held while acquiring any other Mutex (see the
  // lock-ordering policy in util/sync.hpp).
  util::Mutex mu_;
  util::CondVar cv_;
  const Index total_;
  Index count_ EXTDICT_GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ EXTDICT_GUARDED_BY(mu_) = 0;
  bool poisoned_ EXTDICT_GUARDED_BY(mu_) = false;
};

/// State shared by all ranks of one SPMD run.
struct SharedState {
  explicit SharedState(Topology topo);

  // Written once by the constructor, read-only (topology) or internally
  // synchronized (Mailbox, CentralBarrier own leaf locks) afterwards.
  // extdict-analyze: allow(guarded-by) construction-time init, then immutable
  Topology topology;
  // extdict-analyze: allow(guarded-by) Mailboxes are internally synchronized
  std::vector<std::unique_ptr<Mailbox>> boxes;
  // extdict-analyze: allow(guarded-by) CentralBarrier is internally synchronized
  CentralBarrier barrier;

  std::atomic<bool> aborted{false};

  /// Records the first error and poisons every blocking primitive.
  ///
  /// Lock order on the abort path: `error_mu_` is released *before* the
  /// poison fan-out, so no code path ever holds it together with a
  /// Mailbox/CentralBarrier leaf lock. Annotations keep it that way:
  /// abort() EXCLUDES(error_mu_) and the poison functions each EXCLUDE
  /// their own leaf lock.
  void abort(std::exception_ptr err) noexcept EXTDICT_EXCLUDES(error_mu_);

  /// The first recorded error (null if the run succeeded). Reading through
  /// the lock keeps the annotation layer honest even on the post-join path,
  /// where thread joins already order the write.
  [[nodiscard]] std::exception_ptr first_error() const
      EXTDICT_EXCLUDES(error_mu_);

 private:
  // Held only for the record-first-error critical section; never while
  // poisoning (see abort()). Leaf by the util/sync.hpp policy.
  mutable util::Mutex error_mu_;
  std::exception_ptr first_error_ EXTDICT_GUARDED_BY(error_mu_);
};

/// Rank-local handle for message passing, collectives, and cost accounting.
///
/// The interface deliberately mirrors the MPI subset the paper's open-source
/// API uses (point-to-point send/recv, broadcast, reduce, barrier, gather /
/// scatter), but every transfer is also metered: words moved, intra- vs
/// inter-node locality, message counts. Kernels running inside an SPMD
/// region report their FLOPs and resident memory through `cost()`.
class Communicator {
 public:
  Communicator(SharedState& shared, Index rank)
      : shared_(&shared), rank_(rank) {}

  [[nodiscard]] Index rank() const noexcept { return rank_; }
  [[nodiscard]] Index size() const noexcept { return shared_->topology.total(); }
  [[nodiscard]] const Topology& topology() const noexcept {
    return shared_->topology;
  }
  [[nodiscard]] bool is_root() const noexcept { return rank_ == 0; }

  CostCounters& cost() noexcept { return cost_; }
  [[nodiscard]] const CostCounters& cost() const noexcept { return cost_; }

  /// User tags live in [0, kUserTagLimit); everything at or above the limit
  /// is reserved for the internal collective protocol (broadcast/reduce/
  /// gather/scatter trees). A user message carrying an internal tag would be
  /// indistinguishable from collective traffic and silently corrupt any
  /// concurrent collective, so send/recv reject the whole reserved range.
  static constexpr int kUserTagLimit = 1 << 20;

  // -- point to point --------------------------------------------------------

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send(Index dest, int tag, std::span<const T> data) {
    check_tag(tag);
    send_impl(dest, tag, data);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_value(Index dest, int tag, const T& value) {
    send(dest, tag, std::span<const T>(&value, 1));
  }

  /// Receives exactly `out.size()` elements from `source`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void recv(Index source, int tag, std::span<T> out) {
    check_tag(tag);
    recv_impl(source, tag, out);
  }

  /// Receives a message of a-priori-unknown length.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> recv_vector(Index source, int tag) {
    check_tag(tag);
    return recv_vector_impl<T>(source, tag);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] T recv_value(Index source, int tag) {
    T value{};
    recv(source, tag, std::span<T>(&value, 1));
    return value;
  }

  // -- collectives -----------------------------------------------------------

  void barrier() {
    const util::TraceScope scope(util::TraceRecorder::global(),
                                 "comm.barrier");
    shared_->barrier.arrive_and_wait();
  }

  /// Binomial-tree broadcast of `buf` from `root` to all ranks.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void broadcast(Index root, std::span<T> buf) {
    const util::TraceScope scope(
        util::TraceRecorder::global(), "comm.broadcast", "root",
        static_cast<std::uint64_t>(root), "words",
        buf.size_bytes() / sizeof(la::Real));
    const Index p = size();
    const Index vr = (rank_ - root + p) % p;
    for (Index mask = 1; mask < p; mask <<= 1) {
      if (vr < mask) {
        const Index dest_v = vr + mask;
        if (dest_v < p) {
          send_impl(real_rank(dest_v, root), kTagBroadcast,
                    std::span<const T>(buf));
        }
      } else if (vr < 2 * mask) {
        recv_impl(real_rank(vr - mask, root), kTagBroadcast, buf);
      }
    }
  }

  /// Binomial-tree sum-reduction into `buf` at `root`; on non-root ranks the
  /// buffer contents are clobbered (partial sums), matching MPI_Reduce with
  /// an in/out buffer. Reduction arithmetic is charged as FLOPs.
  void reduce_sum(Index root, std::span<la::Real> buf);

  /// reduce_sum followed by broadcast (semantics of MPI_Allreduce).
  void allreduce_sum(std::span<la::Real> buf) {
    reduce_sum(0, buf);
    broadcast(0, buf);
  }

  [[nodiscard]] la::Real allreduce_sum_scalar(la::Real v) {
    allreduce_sum(std::span<la::Real>(&v, 1));
    return v;
  }

  /// Max-reduction to everyone (small scalars; flat exchange via root).
  [[nodiscard]] la::Real allreduce_max_scalar(la::Real v);

  /// Flat gather of variable-length contributions to `root`. On root the
  /// return value holds all contributions concatenated in rank order and
  /// `counts` (if non-null) the per-rank element counts; on other ranks the
  /// return is empty.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> gather(Index root, std::span<const T> local,
                                      std::vector<Index>* counts = nullptr) {
    const util::TraceScope scope(
        util::TraceRecorder::global(), "comm.gather", "root",
        static_cast<std::uint64_t>(root), "words",
        local.size_bytes() / sizeof(la::Real));
    if (rank_ != root) {
      send_impl(root, kTagGather, local);
      return {};
    }
    std::vector<T> all;
    if (counts) counts->assign(static_cast<std::size_t>(size()), 0);
    for (Index r = 0; r < size(); ++r) {
      std::vector<T> chunk;
      if (r == root) {
        chunk.assign(local.begin(), local.end());
      } else {
        chunk = recv_vector_impl<T>(r, kTagGather);
      }
      if (counts) (*counts)[static_cast<std::size_t>(r)] = static_cast<Index>(chunk.size());
      all.insert(all.end(), chunk.begin(), chunk.end());
    }
    return all;
  }

  /// Flat scatter from `root`: rank r receives chunks[r]. Non-root ranks
  /// pass an empty `chunks`.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> scatter(Index root,
                                       const std::vector<std::vector<T>>& chunks) {
    const util::TraceScope scope(util::TraceRecorder::global(), "comm.scatter",
                                 "root", static_cast<std::uint64_t>(root));
    if (rank_ == root) {
      if (static_cast<Index>(chunks.size()) != size()) {
        throw std::invalid_argument("Communicator::scatter: chunk count != size()");
      }
      for (Index r = 0; r < size(); ++r) {
        if (r == root) continue;
        send_impl(r, kTagScatter,
                  std::span<const T>(chunks[static_cast<std::size_t>(r)]));
      }
      return chunks[static_cast<std::size_t>(root)];
    }
    return recv_vector_impl<T>(root, kTagScatter);
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> allgather(std::span<const T> local) {
    std::vector<T> all = gather(0, local);
    Index n = static_cast<Index>(all.size());
    broadcast(0, std::span<Index>(&n, 1));
    all.resize(static_cast<std::size_t>(n));
    broadcast(0, std::span<T>(all));
    return all;
  }

 private:
  static constexpr int kTagBroadcast = 1 << 20;
  static constexpr int kTagReduce = (1 << 20) + 1;
  static constexpr int kTagGather = (1 << 20) + 2;
  static constexpr int kTagScatter = (1 << 20) + 3;
  static constexpr int kTagScalar = (1 << 20) + 4;

  SharedState* shared_;
  Index rank_;
  CostCounters cost_;

  [[nodiscard]] Index real_rank(Index virtual_rank, Index root) const noexcept {
    return (virtual_rank + root) % size();
  }

  void check_peer(Index peer) const {
    if (peer < 0 || peer >= size()) {
      throw std::out_of_range("Communicator: peer rank out of range");
    }
  }
  static void check_tag(int tag) {
    if (tag < 0 || tag >= kUserTagLimit) {
      throw std::invalid_argument(
          "Communicator: user tags must lie in [0, 1<<20); tags >= 1<<20 are "
          "reserved for the internal collective protocol");
    }
  }

  // Tag-unchecked transport used by the collectives, which deliberately
  // carry tags in the reserved range. User-facing send/recv validate first,
  // then delegate here.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send_impl(Index dest, int tag, std::span<const T> data) {
    check_peer(dest);
    const util::TraceScope scope(
        util::TraceRecorder::global(), "comm.send", "peer",
        static_cast<std::uint64_t>(dest), "words",
        data.size_bytes() / sizeof(la::Real));
    Mailbox::Envelope env{rank_, tag, to_bytes(data)};
    account_send(dest, env.payload.size());
    shared_->boxes[static_cast<std::size_t>(dest)]->push(std::move(env));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void recv_impl(Index source, int tag, std::span<T> out) {
    check_peer(source);
    // Scope opens before the pop, so the slice includes any blocking wait —
    // that is exactly the "wait" component analyze_trace.py attributes.
    const util::TraceScope scope(
        util::TraceRecorder::global(), "comm.recv", "peer",
        static_cast<std::uint64_t>(source), "words",
        out.size_bytes() / sizeof(la::Real));
    const std::vector<std::byte> payload = pop(source, tag);
    if (payload.size() != out.size() * sizeof(T)) {
      throw std::runtime_error("Communicator::recv: size mismatch");
    }
    std::memcpy(out.data(), payload.data(), payload.size());
    account_recv(source, payload.size());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] std::vector<T> recv_vector_impl(Index source, int tag) {
    check_peer(source);
    // Payload length is only known at completion; it rides on the end event.
    util::TraceScope scope(util::TraceRecorder::global(), "comm.recv", "peer",
                           static_cast<std::uint64_t>(source));
    const std::vector<std::byte> payload = pop(source, tag);
    if (payload.size() % sizeof(T) != 0) {
      throw std::runtime_error("Communicator::recv_vector: torn payload");
    }
    scope.set_end_arg("words", payload.size() / sizeof(la::Real));
    std::vector<T> out(payload.size() / sizeof(T));
    std::memcpy(out.data(), payload.data(), payload.size());
    account_recv(source, payload.size());
    return out;
  }

  template <typename T>
  static std::vector<std::byte> to_bytes(std::span<const T> data) {
    std::vector<std::byte> bytes(data.size_bytes());
    std::memcpy(bytes.data(), data.data(), data.size_bytes());
    return bytes;
  }

  void account_send(Index dest, std::size_t bytes) noexcept {
    cost_.add_send(bytes / sizeof(la::Real),
                   !shared_->topology.same_node(rank_, dest));
  }
  void account_recv(Index source, std::size_t bytes) noexcept {
    cost_.add_recv(bytes / sizeof(la::Real),
                   !shared_->topology.same_node(rank_, source));
  }

  [[nodiscard]] std::vector<std::byte> pop(Index source, int tag) {
    return shared_->boxes[static_cast<std::size_t>(rank_)]->pop(source, tag);
  }

  friend class Cluster;
};

}  // namespace extdict::dist
