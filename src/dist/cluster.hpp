#pragma once

#include <functional>
#include <utility>

#include "dist/communicator.hpp"
#include "dist/cost.hpp"
#include "dist/topology.hpp"

namespace extdict::dist {

/// Emulated message-passing cluster.
///
/// `run` executes one SPMD region: it spawns `topology.total()` host threads,
/// gives each a rank-scoped `Communicator`, waits for all of them, and
/// returns the per-rank cost counters plus host wall time. Exceptions thrown
/// by any rank abort the whole region (peers blocked in recv/barrier unwind
/// via `ClusterAborted`) and the first exception is rethrown to the caller.
///
/// Within a region each rank pins its OpenMP team to a single thread so the
/// emulation's FLOP/communication counters are not skewed by nested
/// parallelism; the library's OpenMP kernels remain parallel outside SPMD
/// regions (preprocessing, serial baselines).
class Cluster {
 public:
  explicit Cluster(Topology topology) : topology_(std::move(topology)) {}

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }

  using Body = std::function<void(Communicator&)>;

  /// Runs `body` on every rank; returns the merged statistics.
  RunStats run(const Body& body) const;

 private:
  Topology topology_;
};

}  // namespace extdict::dist
