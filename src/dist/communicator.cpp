#include "dist/communicator.hpp"

#include <algorithm>

namespace extdict::dist {

void CentralBarrier::arrive_and_wait() {
  const util::MutexLock lock(mu_);
  if (poisoned_) throw ClusterAborted{};
  const std::uint64_t my_generation = generation_;
  if (++count_ == total_) {
    count_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  // Explicit predicate loop (not the lambda-predicate overload): the
  // analysis then sees every guarded read with mu_ held.
  while (generation_ == my_generation && !poisoned_) cv_.wait(mu_);
  if (poisoned_ && generation_ == my_generation) throw ClusterAborted{};
}

void CentralBarrier::poison() noexcept {
  {
    const util::MutexLock lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

SharedState::SharedState(Topology topo)
    : topology(std::move(topo)), barrier(topology.total()) {
  boxes.reserve(static_cast<std::size_t>(topology.total()));
  for (Index r = 0; r < topology.total(); ++r) {
    boxes.push_back(std::make_unique<Mailbox>());
  }
}

void SharedState::abort(std::exception_ptr err) noexcept {
  {
    const util::MutexLock lock(error_mu_);
    if (!first_error_) first_error_ = err;
  }
  // error_mu_ is released before the fan-out: poisoning takes each leaf lock
  // one at a time, so abort() never holds two locks (lock order, see header).
  aborted.store(true, std::memory_order_release);
  for (auto& box : boxes) box->poison();
  barrier.poison();
}

std::exception_ptr SharedState::first_error() const {
  const util::MutexLock lock(error_mu_);
  return first_error_;
}

void Communicator::reduce_sum(Index root, std::span<la::Real> buf) {
  const util::TraceScope scope(util::TraceRecorder::global(), "comm.reduce",
                               "root", static_cast<std::uint64_t>(root),
                               "words", buf.size());
  const Index p = size();
  const Index vr = (rank_ - root + p) % p;
  std::vector<la::Real> incoming(buf.size());
  for (Index mask = 1; mask < p; mask <<= 1) {
    if (vr & mask) {
      send_impl(real_rank(vr - mask, root), kTagReduce,
                std::span<const la::Real>(buf));
      return;  // this rank's contribution is absorbed upstream
    }
    if (vr + mask < p) {
      recv_impl(real_rank(vr + mask, root), kTagReduce,
                std::span<la::Real>(incoming));
      for (std::size_t i = 0; i < buf.size(); ++i) buf[i] += incoming[i];
      cost_.add_flops(buf.size());
    }
  }
}

la::Real Communicator::allreduce_max_scalar(la::Real v) {
  // Flat max at root + broadcast; scalar traffic is negligible in the cost
  // model but still metered.
  if (rank_ == 0) {
    for (Index r = 1; r < size(); ++r) {
      la::Real incoming{};
      recv_impl(r, kTagScalar, std::span<la::Real>(&incoming, 1));
      v = std::max(v, incoming);
    }
  } else {
    send_impl(Index{0}, kTagScalar, std::span<const la::Real>(&v, 1));
  }
  broadcast(0, std::span<la::Real>(&v, 1));
  return v;
}

}  // namespace extdict::dist
