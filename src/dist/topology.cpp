#include "dist/topology.hpp"

namespace extdict::dist {

std::string Topology::name() const {
  return std::to_string(nodes) + "x" + std::to_string(cores_per_node);
}

}  // namespace extdict::dist
