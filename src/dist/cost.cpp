#include "dist/cost.hpp"

#include <algorithm>
#include <stdexcept>

namespace extdict::dist {

CostCounters& CostCounters::operator+=(const CostCounters& o) noexcept {
  flops += o.flops;
  words_sent_intra += o.words_sent_intra;
  words_sent_inter += o.words_sent_inter;
  words_recv_intra += o.words_recv_intra;
  words_recv_inter += o.words_recv_inter;
  messages_sent += o.messages_sent;
  messages_recv += o.messages_recv;
  peak_memory_words = std::max(peak_memory_words, o.peak_memory_words);
  return *this;
}

std::uint64_t RunStats::total_flops() const noexcept {
  std::uint64_t s = 0;
  for (const auto& c : per_rank) s += c.flops;
  return s;
}

std::uint64_t RunStats::max_rank_flops() const noexcept {
  std::uint64_t m = 0;
  for (const auto& c : per_rank) m = std::max(m, c.flops);
  return m;
}

std::uint64_t RunStats::total_words() const noexcept {
  std::uint64_t s = 0;
  for (const auto& c : per_rank) s += c.words_sent();
  return s;
}

std::uint64_t RunStats::max_rank_words() const noexcept {
  std::uint64_t m = 0;
  for (const auto& c : per_rank) m = std::max(m, c.words_touched());
  return m;
}

std::uint64_t RunStats::max_peak_memory_words() const noexcept {
  std::uint64_t m = 0;
  for (const auto& c : per_rank) m = std::max(m, c.peak_memory_words);
  return m;
}

RunStats& RunStats::operator+=(const RunStats& o) {
  if (per_rank.empty()) {
    per_rank = o.per_rank;
  } else {
    if (per_rank.size() != o.per_rank.size()) {
      throw std::invalid_argument("RunStats::operator+=: rank count mismatch");
    }
    for (std::size_t i = 0; i < per_rank.size(); ++i) per_rank[i] += o.per_rank[i];
  }
  wall_seconds += o.wall_seconds;
  return *this;
}

}  // namespace extdict::dist
