#include "dist/mailbox.hpp"

#include <algorithm>

namespace extdict::dist {

void Mailbox::push(Envelope env) {
  {
    const util::MutexLock lock(mu_);
    queue_.push_back(std::move(env));
  }
  cv_.notify_all();
}

std::vector<std::byte> Mailbox::pop(Index source, int tag) {
  const util::MutexLock lock(mu_);
  for (;;) {
    const auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Envelope& e) {
      return e.source == source && e.tag == tag;
    });
    if (it != queue_.end()) {
      std::vector<std::byte> payload = std::move(it->payload);
      queue_.erase(it);
      return payload;
    }
    if (poisoned_) throw ClusterAborted{};
    cv_.wait(mu_);
  }
}

void Mailbox::poison() noexcept {
  {
    const util::MutexLock lock(mu_);
    poisoned_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::empty() const {
  const util::MutexLock lock(mu_);
  return queue_.empty();
}

}  // namespace extdict::dist
