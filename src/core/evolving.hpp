#pragma once

#include "core/exd.hpp"

namespace extdict::core {

/// Outcome of an evolving-data update (§V-E, Fig. 3).
struct EvolveReport {
  Index new_columns = 0;       ///< columns appended to A
  Index expressed_columns = 0; ///< pass 1: coded against the old D within ε
  Index reencoded_columns = 0; ///< pass 2: re-coded against the extended D
  Index failed_columns = 0;    ///< columns the old D could not express
  Index new_atoms = 0;         ///< atoms appended to D (0 if D unchanged)
  bool dictionary_extended = false;
  /// Largest relative residual ||r|| / ||a_j|| across the new columns after
  /// every pass ran — the achieved quality of the spliced codes, which the
  /// pre-fix code never checked for pass-2 recodes.
  Real max_post_extension_residual = 0;
  /// New columns still above ε after extension (the sampled atoms are not
  /// guaranteed to span every failing column; nonzero is legal, silent was
  /// the bug).
  Index unresolved_columns = 0;
};

/// Samples the atoms an extension appends to D: `config.dictionary_size`
/// columns of `hard` (the columns the current D could not express), chosen
/// uniformly at random with `config.seed` — exactly `exd_transform`'s
/// Alg. 1 step-0 sampling, factored out so `evolve`'s pass 2 and the online
/// `serve::DictRegistry::extend_from_samples` share one selection rule.
/// The count is clamped to [1, hard.cols()].
[[nodiscard]] Matrix select_extension_atoms(const Matrix& hard,
                                            const ExdConfig& config);

/// Incorporates a batch of new columns `a_new` into an existing projection
/// `exd` without re-running ExD on the whole dataset:
///
///  1. sparse-code every new column against the current dictionary;
///  2. if some columns cannot meet the ε criterion (the data expanded into
///     new structure), sample new atoms from *those columns only*, append
///     them to D, grow the coder's Gram by bordering (no full recompute),
///     zero-pad the existing C to the enlarged atom space, re-code the
///     failing columns, and splice in the new codes (the Fig. 3 block
///     layout).
///
/// `config.dictionary_size` is interpreted as the number of atoms to sample
/// from the failing columns when an extension is needed (capped by their
/// count). The report records per-pass counts and the post-extension
/// residual quality; `expressed + failed == new_columns` and
/// `reencoded == failed` whenever an extension ran.
EvolveReport evolve(ExdResult& exd, const Matrix& a_new, const ExdConfig& config);

}  // namespace extdict::core
