#pragma once

#include "core/exd.hpp"

namespace extdict::core {

/// Outcome of an evolving-data update (§V-E, Fig. 3).
struct EvolveReport {
  Index new_columns = 0;        ///< columns appended to A
  Index reencoded_columns = 0;  ///< new columns coded against the old D
  Index failed_columns = 0;     ///< columns the old D could not express
  Index new_atoms = 0;          ///< atoms appended to D (0 if D unchanged)
  bool dictionary_extended = false;
};

/// Incorporates a batch of new columns `a_new` into an existing projection
/// `exd` without re-running ExD on the whole dataset:
///
///  1. sparse-code every new column against the current dictionary;
///  2. if some columns cannot meet the ε criterion (the data expanded into
///     new structure), run ExD on *those columns only*, append the new atoms
///     to D, zero-pad the existing C to the enlarged atom space, and splice
///     in the new codes (the Fig. 3 block layout).
///
/// `config.dictionary_size` is interpreted as the number of atoms to sample
/// from the failing columns when an extension is needed (capped by their
/// count).
EvolveReport evolve(ExdResult& exd, const Matrix& a_new, const ExdConfig& config);

}  // namespace extdict::core
