#include "core/alpha_profile.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/exd.hpp"
#include "la/random.hpp"
#include "util/contracts.hpp"
#include "util/timer.hpp"

namespace extdict::core {

Index AlphaProfile::min_feasible_l() const noexcept {
  for (const auto& p : points) {
    if (p.feasible) return p.l;
  }
  return -1;
}

const AlphaPoint& AlphaProfile::at(Index l) const {
  for (const auto& p : points) {
    if (p.l == l) return p;
  }
  throw std::out_of_range("AlphaProfile::at: L not in grid");
}

AlphaProfile estimate_alpha_profile(const Matrix& a,
                                    const AlphaProfileConfig& config) {
  EXTDICT_REQUIRE_SHAPE(!config.l_grid.empty() && config.trials >= 1,
                        "estimate_alpha_profile: bad config");
  util::Timer timer;
  AlphaProfile profile;
  profile.columns_used = a.cols();

  la::Rng seeder(config.seed);
  for (const Index l : config.l_grid) {
    if (l > a.cols()) continue;  // grid point unavailable at this subset size
    AlphaPoint point;
    point.l = l;
    std::vector<Real> alphas;
    alphas.reserve(static_cast<std::size_t>(config.trials));
    Real error_sum = 0;
    for (int t = 0; t < config.trials; ++t) {
      ExdConfig exd;
      exd.dictionary_size = l;
      exd.tolerance = config.tolerance;
      exd.seed = seeder.fork().engine()();
      const ExdResult r = exd_transform(a, exd);
      alphas.push_back(r.alpha());
      error_sum += r.transformation_error;
    }
    Real mean = 0;
    for (Real v : alphas) mean += v;
    mean /= static_cast<Real>(alphas.size());
    Real var = 0;
    for (Real v : alphas) var += (v - mean) * (v - mean);
    var /= static_cast<Real>(alphas.size());
    point.alpha_mean = mean;
    point.alpha_stddev = std::sqrt(var);
    point.error_mean = error_sum / static_cast<Real>(config.trials);
    // The OMP stop rule targets per-column ε, so the aggregate Frobenius
    // criterion holds with a little slack when feasible at all.
    point.feasible = point.error_mean <= config.tolerance * Real{1.05};
    profile.points.push_back(point);
  }
  profile.elapsed_ms = timer.elapsed_ms();
  return profile;
}

AlphaProfile estimate_alpha_profile_subsets(const Matrix& a,
                                            const AlphaProfileConfig& config,
                                            std::vector<Index> subset_sizes,
                                            Real convergence_threshold) {
  EXTDICT_REQUIRE_SHAPE(!subset_sizes.empty(),
                        "estimate_alpha_profile_subsets: empty sizes");
  EXTDICT_REQUIRE_SHAPE(std::is_sorted(subset_sizes.begin(), subset_sizes.end()),
                        "estimate_alpha_profile_subsets: sizes must increase");
  util::Timer timer;
  la::Rng rng(config.seed ^ 0xabcdefULL);
  // One shared shuffled order makes the subsets nested: A_1 ⊂ A_2 ⊂ ... ⊂ A.
  const std::vector<Index> order = rng.permutation(a.cols());

  AlphaProfile previous;
  for (std::size_t s = 0; s < subset_sizes.size(); ++s) {
    const Index n = std::min<Index>(subset_sizes[s], a.cols());
    const Matrix subset = a.select_columns({order.data(), static_cast<std::size_t>(n)});
    AlphaProfile current = estimate_alpha_profile(subset, config);
    current.columns_used = n;

    if (!previous.points.empty()) {
      // Max relative discrepancy across common feasible grid points.
      Real disc = 0;
      bool comparable = false;
      for (const auto& p : current.points) {
        for (const auto& q : previous.points) {
          if (q.l != p.l || !p.feasible || !q.feasible) continue;
          comparable = true;
          const Real denom = std::max(p.alpha_mean, Real{1e-12});
          disc = std::max(disc, std::abs(p.alpha_mean - q.alpha_mean) / denom);
        }
      }
      if (comparable && disc <= convergence_threshold) {
        current.elapsed_ms = timer.elapsed_ms();
        return current;
      }
    }
    previous = std::move(current);
  }
  previous.elapsed_ms = timer.elapsed_ms();
  return previous;
}

}  // namespace extdict::core
