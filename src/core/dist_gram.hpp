#pragma once

#include "dist/cluster.hpp"
#include "la/csc_matrix.hpp"
#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::core {

using la::CscMatrix;
using la::Index;
using la::Matrix;
using la::Real;

/// Result of a distributed iterated Gram multiply: the final vector
/// (gathered on the caller) plus the per-rank cost counters of the run.
struct DistGramResult {
  la::Vector y;
  dist::RunStats stats;
  int iterations = 0;

  /// FLOPs of the Gram updates alone, summed over ranks and iterations —
  /// excludes the normalisation and collective-reduction arithmetic that
  /// `stats` also meters. This is the quantity the cost model's work term
  /// predicts: with 2 FLOPs per multiply–add pair, every Eq. (2)-covered
  /// strategy satisfies
  ///   update_flops == iterations * 2 * (work multiply–add pairs)
  /// exactly (see core/cost_model.hpp and tests/gram_model_regression_test).
  std::uint64_t update_flops = 0;

  /// update_flops / iterations (0 when no iterations ran).
  [[nodiscard]] std::uint64_t update_flops_per_iteration() const noexcept {
    return iterations > 0
               ? update_flops / static_cast<std::uint64_t>(iterations)
               : 0;
  }
};

/// Column partition: rank i owns columns [offset(i), offset(i+1)) — the
/// contiguous N/P blocks of Algorithm 2 step 0 (load balanced to within one
/// column).
struct ColumnPartition {
  Index n = 0;
  Index parts = 1;

  [[nodiscard]] Index begin(Index rank) const noexcept {
    return rank * n / parts;
  }
  [[nodiscard]] Index end(Index rank) const noexcept {
    return (rank + 1) * n / parts;
  }
  [[nodiscard]] Index count(Index rank) const noexcept {
    return end(rank) - begin(rank);
  }
};

/// Distribution strategy for the dictionary factor in Algorithm 2.
enum class GramStrategy {
  /// Partitioned-D when L <= M, replicated-D otherwise. This is the
  /// dispatch whose per-rank work matches the paper's Eq. (2),
  /// (M·L + nnz)/P, on every rank.
  kAuto,
  /// Alg. 2 Case 1 as literally printed: D lives on rank 0, which performs
  /// the D and Dᵀ multiplies alone. Matches the paper's text but leaves
  /// 2·M·L FLOPs serialised on one rank — kept for the ablation bench.
  kRootDictionary,
  /// Alg. 2 Case 2: D replicated, M-sized collectives, the Dᵀ multiply
  /// redundant on every rank.
  kReplicatedDictionary,
  /// Row-partitioned D: rank i owns M/P rows; v1 is all-reduced (L words),
  /// each rank lifts its row block and contributes a partial Dᵀ product,
  /// which is all-reduced again (L words). FLOPs are 2(M·L)/P per rank —
  /// the parallelisation Eq. (2) presumes.
  kPartitionedDictionary,
};

/// Algorithm 2: `iterations` successive Gram updates x <- (DC)ᵀDC·x on the
/// emulated cluster, under the chosen dictionary-distribution strategy.
///
/// Every rank meters its FLOPs, words, and resident memory, so the returned
/// stats plug directly into PlatformSpec::modeled_seconds / the paper's
/// Eqs. 2-4.
[[nodiscard]] DistGramResult dist_gram_apply(
    const dist::Cluster& cluster, const Matrix& d, const CscMatrix& c,
    const la::Vector& x0, int iterations,
    GramStrategy strategy = GramStrategy::kAuto);

/// Baseline: the same iterated update on the original dense matrix,
/// x <- AᵀA·x, with A column-partitioned across ranks.
[[nodiscard]] DistGramResult dist_gram_apply_original(const dist::Cluster& cluster,
                                                      const Matrix& a,
                                                      const la::Vector& x0,
                                                      int iterations);

}  // namespace extdict::core
