#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "la/csc_matrix.hpp"
#include "la/matrix.hpp"
#include "la/types.hpp"
#include "util/sync.hpp"

namespace extdict::core {

using la::CscMatrix;
using la::Index;
using la::Matrix;
using la::Real;

/// Abstraction of the Gram product y = AᵀA·x the iterative learners
/// (LASSO gradient descent, Power method) are written against. Swapping the
/// dense operator for the transformed one is the whole point of ExtDict —
/// the solver code does not change.
class GramOperator {
 public:
  virtual ~GramOperator() = default;

  /// Dimension of x and y (the dataset's column count N).
  [[nodiscard]] virtual Index dim() const noexcept = 0;

  /// y = AᵀA x (conceptually).
  virtual void apply(std::span<const Real> x, std::span<Real> y) const = 0;

  /// y = Aᵀ v for v in data space (length rows of A) — needed for the
  /// gradient's Aᵀb term.
  virtual void apply_adjoint(std::span<const Real> v, std::span<Real> y) const = 0;

  /// v = A x (reconstruction; length rows of A).
  virtual void apply_forward(std::span<const Real> x, std::span<Real> v) const = 0;

  [[nodiscard]] virtual Index data_dim() const noexcept = 0;  ///< rows of A

  /// Multiplication FLOPs of one `apply` (multiply-add pairs x2).
  [[nodiscard]] virtual std::uint64_t flops_per_apply() const noexcept = 0;
};

/// Baseline: the dense Gram product via two GEMVs against A itself.
///
/// Thread-safe: the per-operator scratch buffer (the one mutable state an
/// OpenMP caller could race on through a shared const operator) is guarded
/// by a leaf `util::Mutex` — one uncontended lock per apply, noise next to
/// the GEMVs it brackets, and the guarantee is compile-checked.
class DenseGramOperator final : public GramOperator {
 public:
  explicit DenseGramOperator(const Matrix& a);

  [[nodiscard]] Index dim() const noexcept override { return a_->cols(); }
  [[nodiscard]] Index data_dim() const noexcept override { return a_->rows(); }
  void apply(std::span<const Real> x, std::span<Real> y) const override;
  void apply_adjoint(std::span<const Real> v, std::span<Real> y) const override;
  void apply_forward(std::span<const Real> x, std::span<Real> v) const override;
  [[nodiscard]] std::uint64_t flops_per_apply() const noexcept override;

 private:
  const Matrix* const a_;
  mutable util::Mutex scratch_mu_;  // leaf lock (policy: util/sync.hpp)
  mutable la::Vector scratch_ EXTDICT_GUARDED_BY(scratch_mu_);  // A x
};

/// ExtDict: the Gram product through the projection, (DC)ᵀDC·x, exploiting
/// C's sparsity exactly as Algorithm 2 does in its serial form.
///
/// Thread-safe on the same terms as DenseGramOperator: the chain scratch
/// vectors are guarded by one leaf mutex per operator instance.
class TransformedGramOperator final : public GramOperator {
 public:
  TransformedGramOperator(const Matrix& d, const CscMatrix& c);

  [[nodiscard]] Index dim() const noexcept override { return c_->cols(); }
  [[nodiscard]] Index data_dim() const noexcept override { return d_->rows(); }
  void apply(std::span<const Real> x, std::span<Real> y) const override;
  void apply_adjoint(std::span<const Real> v, std::span<Real> y) const override;
  void apply_forward(std::span<const Real> x, std::span<Real> v) const override;
  [[nodiscard]] std::uint64_t flops_per_apply() const noexcept override;

 private:
  const Matrix* const d_;
  const CscMatrix* const c_;
  mutable util::Mutex scratch_mu_;  // leaf lock (policy: util/sync.hpp)
  mutable la::Vector v1_ EXTDICT_GUARDED_BY(scratch_mu_);  // C x       (L)
  mutable la::Vector v2_ EXTDICT_GUARDED_BY(scratch_mu_);  // D C x     (M)
  mutable la::Vector v3_ EXTDICT_GUARDED_BY(scratch_mu_);  // Dᵀ D C x  (L)
};

}  // namespace extdict::core
