#include "core/cost_model.hpp"

#include <algorithm>

namespace extdict::core {

namespace {

UpdateCost build(double work, double comm, std::uint64_t memory, Index p,
                 const dist::PlatformSpec& platform) {
  UpdateCost cost;
  cost.flops_per_proc = work / static_cast<double>(p);
  // A single-processor run passes no messages.
  cost.comm_words = p > 1 ? comm : 0.0;
  cost.time_cost = cost.flops_per_proc + cost.comm_words * platform.r_time_bf();
  cost.energy_cost =
      cost.flops_per_proc + cost.comm_words * platform.r_energy_bf();
  cost.memory_words_per_proc = memory;
  return cost;
}

}  // namespace

UpdateCost transformed_update_cost(Index m, Index l, std::uint64_t nnz_c,
                                   Index n, Index p,
                                   const dist::PlatformSpec& platform) {
  // Cᵀ(Dᵀ(D(Cx))) touches every D entry twice (lift + adjoint) and every C
  // entry twice, so one update is 2·(M·L + nnz(C)) multiply–add pairs — the
  // same unit original_update_cost charges (2·M·N for the two A GEMVs).
  const double work =
      2.0 * (static_cast<double>(m) * static_cast<double>(l) +
             static_cast<double>(nnz_c));
  const double comm = static_cast<double>(std::min(m, l));
  const std::uint64_t memory =
      static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(l) +
      (nnz_c + static_cast<std::uint64_t>(n)) / static_cast<std::uint64_t>(p);
  return build(work, comm, memory, p, platform);
}

UpdateCost original_update_cost(Index m, Index n, Index p,
                                const dist::PlatformSpec& platform) {
  // AᵀA·x via v = A x then Aᵀ v: 2·M·N multiplications, M words reduced.
  const double work = 2.0 * static_cast<double>(m) * static_cast<double>(n);
  const double comm = static_cast<double>(m);
  const std::uint64_t memory =
      (static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) +
       static_cast<std::uint64_t>(n)) /
      static_cast<std::uint64_t>(p);
  return build(work, comm, memory, p, platform);
}

UpdateCost predicted_update_cost(Index m, Index l, Real alpha, Index n, Index p,
                                 const dist::PlatformSpec& platform) {
  const auto nnz = static_cast<std::uint64_t>(
      std::max(0.0, static_cast<double>(alpha) * static_cast<double>(n)));
  return transformed_update_cost(m, l, nnz, n, p, platform);
}

}  // namespace extdict::core
