#include "core/gram_extend.hpp"

#include <algorithm>

#include "la/blas.hpp"
#include "util/contracts.hpp"
#include "util/metrics.hpp"

namespace extdict::core {

Matrix extend_gram_bordered(const Matrix& gram, const Matrix& dict,
                            const Matrix& new_atoms) {
  const Index l = dict.cols();
  const Index k = new_atoms.cols();
  EXTDICT_REQUIRE_SHAPE(
      gram.rows() == l && gram.cols() == l,
      "extend_gram_bordered: gram is " + std::to_string(gram.rows()) + "x" +
          std::to_string(gram.cols()) + " but the dictionary has " +
          std::to_string(l) + " columns");
  EXTDICT_REQUIRE_SHAPE(new_atoms.rows() == dict.rows(),
                        "extend_gram_bordered: new atoms have " +
                            std::to_string(new_atoms.rows()) +
                            " rows but the dictionary has " +
                            std::to_string(dict.rows()) + " rows");

  Matrix out(l + k, l + k);
  // Top-left block: the resident Gram, column-by-column (both column-major).
  for (Index j = 0; j < l; ++j) {
    const auto src = gram.col(j);
    const auto dst = out.col(j);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  // Border blocks, with la::gram's exact accumulation (a plain la::dot per
  // entry) so G' is bitwise what a full recompute would produce.
  const Index n = l + k;
#pragma omp parallel for schedule(dynamic, 8) default(none) \
    shared(out, dict, new_atoms, l, k) if (k > 1)
  for (Index jk = 0; jk < k; ++jk) {
    const Index j = l + jk;
    for (Index i = 0; i < l; ++i) {
      out(i, j) = la::dot(dict.col(i), new_atoms.col(jk));
    }
    for (Index ik = 0; ik <= jk; ++ik) {
      out(l + ik, j) = la::dot(new_atoms.col(ik), new_atoms.col(jk));
    }
  }
  // Mirror the border into the bottom-left rows.
  for (Index j = 0; j < n; ++j) {
    for (Index i = std::max(j + 1, l); i < n; ++i) out(i, j) = out(j, i);
  }

  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.add("core.gram_extend.bordered", 1);
  metrics.add("core.gram_extend.atoms_appended", static_cast<std::uint64_t>(k));
  return out;
}

}  // namespace extdict::core
