#pragma once

#include <cstdint>

#include "dist/platform.hpp"
#include "la/types.hpp"

namespace extdict::core {

using la::Index;
using la::Real;

/// The paper's closed-form performance quantification (§VI-B) of one
/// iterative Gram update on the transformed data, (DC)ᵀDC·x, on P
/// processors:
///
///   Work   (Eq. before (2)): 2·(M·L + nnz(C)) multiply–add pairs — the
///                            chain Cᵀ(Dᵀ(D(Cx))) touches every D entry and
///                            every C entry twice — parallelised over P,
///   Comm.  : min(M, L) words per reduce/broadcast phase — the
///            communication-optimal bound of Demmel et al.,
///   Time   (Eq. 2): 2·(M·L + nnz(C))/P + min(M,L)·R_bf^time,
///   Energy (Eq. 3): 2·(M·L + nnz(C))/P + min(M,L)·R_bf^energy,
///   Memory (Eq. 4): M·L + (nnz(C) + N)/P words per node.
///
/// The same quantities for the untransformed update AᵀA·x (used as the
/// baseline everywhere) follow by substituting D -> A, C -> I:
/// work 2·M·N/P, comm M words, memory M·N/P + N/P.
///
/// Unit convention: the work terms count multiply–add *pairs*; the emulated
/// cluster's counters (dist::CostCounters, fed by la::gemv_flops and the
/// spmv charges) count a pair as 2 FLOPs. So for every strategy Eq. (2)
/// models, measured FLOPs == 2 × the work term here, exactly —
/// `bench/run_benchmarks` and tests/gram_model_regression_test.cpp pin that
/// identity per iteration.
struct UpdateCost {
  double flops_per_proc = 0;
  double comm_words = 0;
  double time_cost = 0;    ///< Eq. 2, in FLOP-equivalents
  double energy_cost = 0;  ///< Eq. 3, in FLOP-equivalents
  std::uint64_t memory_words_per_proc = 0;  ///< Eq. 4
};

/// Cost of one transformed update given the measured sparsity nnz(C).
[[nodiscard]] UpdateCost transformed_update_cost(Index m, Index l,
                                                 std::uint64_t nnz_c, Index n,
                                                 Index p,
                                                 const dist::PlatformSpec& platform);

/// Cost of one update on the original dense A (baseline).
[[nodiscard]] UpdateCost original_update_cost(Index m, Index n, Index p,
                                              const dist::PlatformSpec& platform);

/// Eq. 2/3 evaluated from a density estimate α(L) instead of a realised C
/// (this is what the tuner minimises before any full transform is run):
/// nnz(C) ≈ α·N.
[[nodiscard]] UpdateCost predicted_update_cost(Index m, Index l, Real alpha,
                                               Index n, Index p,
                                               const dist::PlatformSpec& platform);

}  // namespace extdict::core
