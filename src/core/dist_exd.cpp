#include "core/dist_exd.hpp"

#include "core/dist_gram.hpp"
#include "la/random.hpp"
#include "sparsecoding/batch_omp.hpp"
#include "util/contracts.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace extdict::core {

DistExdResult exd_transform_distributed(const dist::Cluster& cluster,
                                        const Matrix& a, const ExdConfig& config) {
  EXTDICT_REQUIRE_SHAPE(
      config.dictionary_size > 0 && config.dictionary_size <= a.cols(),
      "exd_transform_distributed: dictionary_size out of range");
  const Index m = a.rows();
  const Index l = config.dictionary_size;
  const Index n = a.cols();
  const ColumnPartition part{n, cluster.topology().total()};

  DistExdResult result;
  const util::SpanTimer span("exd.transform_distributed");
  util::Timer timer;

  // Per-rank outputs stitched together after the run. Each rank writes only
  // its own slot; rank 0 additionally fills the gathered collections.
  std::vector<Index> atoms(static_cast<std::size_t>(l));
  std::vector<Index> all_counts;
  std::vector<Index> all_rows;
  std::vector<la::Real> all_values;

  result.stats = cluster.run([&](dist::Communicator& comm) {
    const util::TraceScope rank_trace(util::TraceRecorder::global(),
                                      "dist_exd.rank");
    const Index rank = comm.rank();
    const Index b = part.begin(rank);
    const Index e = part.end(rank);
    const Index local_n = e - b;

    // Step 0: rank 0 draws the atom index set and broadcasts it.
    std::vector<Index> atom_local(static_cast<std::size_t>(l));
    if (rank == 0) {
      la::Rng rng(config.seed);
      atom_local = rng.sample_without_replacement(n, l);
    }
    comm.broadcast(0, std::span<Index>(atom_local));

    // Step 1: the dictionary columns travel from rank 0 (who owns the
    // sampled data) to everyone: L·M words through the broadcast tree.
    Matrix dict(m, l);
    if (rank == 0) {
      for (Index j = 0; j < l; ++j) {
        const auto src = a.col(atom_local[static_cast<std::size_t>(j)]);
        std::copy(src.begin(), src.end(), dict.col(j).begin());
      }
    }
    comm.broadcast(0, std::span<la::Real>(
                          dict.data(), static_cast<std::size_t>(dict.size())));

    comm.cost().record_memory(
        static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(l) +
        static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(local_n));

    // Steps 2-3: code the local block column by column.
    sparsecoding::OmpConfig omp;
    omp.tolerance = config.tolerance;
    omp.max_atoms = config.max_atoms;
    const sparsecoding::BatchOmp coder(dict, omp);
    // Gram precompute: M·L² mult-add pairs, once per rank.
    comm.cost().add_flops(2 * static_cast<std::uint64_t>(m) *
                          static_cast<std::uint64_t>(l) *
                          static_cast<std::uint64_t>(l));

    std::vector<Index> counts;
    std::vector<Index> rows;
    std::vector<la::Real> values;
    counts.reserve(static_cast<std::size_t>(local_n));
    {
      const util::TraceScope encode_trace(
          util::TraceRecorder::global(), "dist_exd.encode", "columns",
          static_cast<std::uint64_t>(local_n));
      for (Index j = b; j < e; ++j) {
        const auto code = coder.encode(a.col(j));
        counts.push_back(code.nnz());
        for (const auto& [atom, coeff] : code.entries) {
          rows.push_back(atom);
          values.push_back(coeff);
        }
        comm.cost().add_flops(coder.encode_flops(code.nnz()));
      }
    }

    // Gather the per-block pieces on rank 0 (rank blocks arrive in order).
    auto gathered_counts = comm.gather(0, std::span<const Index>(counts));
    auto gathered_rows = comm.gather(0, std::span<const Index>(rows));
    auto gathered_values = comm.gather(0, std::span<const la::Real>(values));
    if (rank == 0) {
      atoms = std::move(atom_local);
      all_counts = std::move(gathered_counts);
      all_rows = std::move(gathered_rows);
      all_values = std::move(gathered_values);
    }
  });

  // Assemble C from the gathered stream.
  la::CscMatrix::Builder builder(l, n);
  std::size_t cursor = 0;
  for (Index j = 0; j < n; ++j) {
    const Index count = all_counts[static_cast<std::size_t>(j)];
    for (Index k = 0; k < count; ++k) {
      builder.add(all_rows[cursor], all_values[cursor]);
      ++cursor;
    }
    builder.commit_column();
  }

  result.exd.dictionary = a.select_columns(atoms);
  result.exd.coefficients = std::move(builder).build();
  result.exd.atom_indices = std::move(atoms);
  result.exd.transform_ms = timer.elapsed_ms();
  result.exd.transformation_error = transformation_error(
      a, result.exd.dictionary, result.exd.coefficients);
  util::MetricsRegistry::global().add("exd.transform_nnz",
                                      result.exd.coefficients.nnz());
  return result;
}

}  // namespace extdict::core
