#include "core/serialize.hpp"

#include <fstream>
#include <stdexcept>

#include "la/io.hpp"

namespace extdict::core {

namespace {
constexpr int kFormatVersion = 1;
}

void save_transform(const ExdResult& exd, const std::string& basename) {
  la::write_binary(exd.dictionary, basename + ".dict.bin");
  la::write_matrix_market(exd.coefficients, basename + ".coeffs.mtx");

  std::ofstream meta(basename + ".meta");
  if (!meta) {
    throw std::runtime_error("save_transform: cannot create " + basename + ".meta");
  }
  meta << "extdict-transform v" << kFormatVersion << '\n';
  meta.precision(17);
  meta << "error " << exd.transformation_error << '\n';
  meta << "transform_ms " << exd.transform_ms << '\n';
  meta << "atoms " << exd.atom_indices.size() << '\n';
  for (const Index atom : exd.atom_indices) meta << atom << '\n';
  if (!meta) {
    throw std::runtime_error("save_transform: write failed " + basename + ".meta");
  }
}

ExdResult load_transform(const std::string& basename) {
  ExdResult exd;
  exd.dictionary = la::read_binary(basename + ".dict.bin");
  exd.coefficients = la::read_matrix_market_sparse(basename + ".coeffs.mtx");
  if (exd.coefficients.rows() != exd.dictionary.cols()) {
    throw std::runtime_error("load_transform: D/C shape mismatch in " + basename);
  }

  std::ifstream meta(basename + ".meta");
  if (!meta) {
    throw std::runtime_error("load_transform: cannot open " + basename + ".meta");
  }
  std::string magic, version;
  meta >> magic >> version;
  if (magic != "extdict-transform" || version != "v1") {
    throw std::runtime_error("load_transform: bad metadata header in " + basename);
  }
  std::string key;
  std::size_t atom_count = 0;
  while (meta >> key) {
    if (key == "error") {
      meta >> exd.transformation_error;
    } else if (key == "transform_ms") {
      meta >> exd.transform_ms;
    } else if (key == "atoms") {
      meta >> atom_count;
      // The atom list can never be larger than the dictionary it indexes;
      // reject a corrupt count before resizing (no multi-GB allocation from
      // a one-line header edit).
      if (meta &&
          atom_count > static_cast<std::size_t>(exd.dictionary.cols())) {
        throw std::runtime_error("load_transform: implausible atom count in " +
                                 basename);
      }
      exd.atom_indices.resize(atom_count);
      for (std::size_t i = 0; i < atom_count; ++i) {
        meta >> exd.atom_indices[i];
        if (meta && exd.atom_indices[i] < 0) {
          throw std::runtime_error("load_transform: negative atom index in " +
                                   basename);
        }
      }
    } else {
      throw std::runtime_error("load_transform: unknown metadata key '" + key + "'");
    }
    if (!meta) {
      throw std::runtime_error("load_transform: truncated metadata in " + basename);
    }
  }
  if (atom_count != static_cast<std::size_t>(exd.dictionary.cols())) {
    throw std::runtime_error("load_transform: atom count mismatch in " + basename);
  }
  return exd;
}

}  // namespace extdict::core
