#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::core {

using la::Index;
using la::Matrix;
using la::Real;

/// One point of the density profile α(L) (Figs. 4-6).
struct AlphaPoint {
  Index l = 0;
  Real alpha_mean = 0;    ///< avg nnz per column of C
  Real alpha_stddev = 0;  ///< over dictionary re-draws (Fig. 4 error bars)
  Real error_mean = 0;    ///< achieved ||A-DC||_F/||A||_F
  bool feasible = false;  ///< error within tolerance (L >= L_min)
};

struct AlphaProfile {
  std::vector<AlphaPoint> points;
  Index columns_used = 0;  ///< |A_s| the profile was computed on
  double elapsed_ms = 0;

  /// Smallest feasible L in the grid, or -1 if none met the tolerance.
  [[nodiscard]] Index min_feasible_l() const noexcept;

  /// α at a given L (throws if L is not a grid point).
  [[nodiscard]] const AlphaPoint& at(Index l) const;
};

struct AlphaProfileConfig {
  std::vector<Index> l_grid;
  Real tolerance = 0.1;
  int trials = 1;  ///< dictionary draws per L
  std::uint64_t seed = 1;
};

/// Profiles α(L) over `l_grid` on the full matrix (or a caller-selected
/// column subset — pass `a.select_columns(...)`).
[[nodiscard]] AlphaProfile estimate_alpha_profile(const Matrix& a,
                                                  const AlphaProfileConfig& config);

/// §VII subset-based estimation: profiles α(L) on nested random column
/// subsets of growing size until the profile stabilises (successive relative
/// discrepancy below `convergence_threshold`), never touching more columns
/// than needed. `subset_sizes` must be increasing; the last entry may equal
/// a.cols(). Returns the converged profile (computed on the smallest
/// sufficient subset).
[[nodiscard]] AlphaProfile estimate_alpha_profile_subsets(
    const Matrix& a, const AlphaProfileConfig& config,
    std::vector<Index> subset_sizes, Real convergence_threshold = 0.15);

}  // namespace extdict::core
