#pragma once

#include <cstdint>
#include <vector>

#include "la/csc_matrix.hpp"
#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::core {

using la::CscMatrix;
using la::Index;
using la::Matrix;
using la::Real;

/// Inputs of Algorithm 1 (ExD): the dictionary size L (the *extensible*
/// knob), the transformation error tolerance ε, and the sampling seed.
struct ExdConfig {
  Index dictionary_size = 0;  ///< L, number of columns sampled into D
  Real tolerance = 0.1;       ///< ε: target ||A - DC||_F <= ε ||A||_F
  Index max_atoms = 0;        ///< per-column OMP cap (0 = min(M, L))
  std::uint64_t seed = 1;
};

/// Output of the ExD projection A ≈ D·C.
struct ExdResult {
  Matrix dictionary;         ///< D, M x L
  CscMatrix coefficients;    ///< C, L x N (sparse)
  std::vector<Index> atom_indices;  ///< columns of A used as atoms
  Real transformation_error = 0;    ///< achieved ||A - DC||_F / ||A||_F
  double transform_ms = 0;          ///< wall time of the projection

  /// Paper's density measure α(L, A, ε) = nnz(C)/N (Eq. 5).
  [[nodiscard]] Real alpha() const noexcept {
    return coefficients.density_per_column();
  }
  /// Memory footprint of the transformed representation in words.
  [[nodiscard]] std::uint64_t memory_words() const noexcept {
    return dictionary.memory_words() + coefficients.memory_words();
  }
};

/// Algorithm 1: samples `dictionary_size` columns of `a` uniformly at
/// random into D, then sparse-codes every column of `a` against D with
/// Batch-OMP at tolerance ε. `a` must have (near-)unit-norm columns.
[[nodiscard]] ExdResult exd_transform(const Matrix& a, const ExdConfig& config);

/// ExD with a caller-supplied dictionary (used by the evolving-data path,
/// the RankMap baseline, and tests).
[[nodiscard]] ExdResult exd_transform_with_dictionary(const Matrix& a,
                                                      Matrix dictionary,
                                                      const ExdConfig& config);

/// ||A - D·C||_F / ||A||_F computed column-wise (never materialises DC).
[[nodiscard]] Real transformation_error(const Matrix& a, const Matrix& d,
                                        const CscMatrix& c);

}  // namespace extdict::core
