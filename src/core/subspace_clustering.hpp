#pragma once

#include <vector>

#include "core/exd.hpp"

namespace extdict::core {

/// Sparse-subspace clustering on top of the ExD codes (§V-B's machinery
/// turned into an application): a column's sparse code selects atoms —
/// which are themselves dataset columns — from its own subspace, so the
/// bipartite column/atom graph decomposes along the union-of-subspaces.
/// Connecting each column to its atoms (weights |c_ij| above a threshold)
/// and taking connected components recovers the clusters without ever
/// forming the N x N affinity matrix classic SSC needs.
struct ClusteringConfig {
  /// Edges with |coefficient| below this fraction of the column's largest
  /// coefficient are ignored (prunes incidental cross-subspace leakage).
  Real relative_weight_threshold = 0.05;
};

struct ClusteringResult {
  std::vector<Index> labels;  ///< cluster id per column, 0..num_clusters-1
  Index num_clusters = 0;
  /// Columns with empty codes get singleton clusters; their count.
  Index singletons = 0;
};

[[nodiscard]] ClusteringResult cluster_by_codes(const ExdResult& exd,
                                                const ClusteringConfig& config = {});

/// Rand index between two labelings (pair-counting agreement in [0, 1]);
/// label values need not match, only the induced partitions matter.
[[nodiscard]] Real rand_index(const std::vector<Index>& a,
                              const std::vector<Index>& b);

}  // namespace extdict::core
