#include "core/evolving.hpp"

#include "la/blas.hpp"
#include "la/random.hpp"
#include "sparsecoding/batch_omp.hpp"
#include "util/contracts.hpp"

namespace extdict::core {

EvolveReport evolve(ExdResult& exd, const Matrix& a_new, const ExdConfig& config) {
  EXTDICT_REQUIRE_SHAPE(a_new.rows() == exd.dictionary.rows(),
                        "evolve: row mismatch with existing dictionary");
  EvolveReport report;
  report.new_columns = a_new.cols();
  if (a_new.cols() == 0) return report;

  sparsecoding::OmpConfig omp;
  omp.tolerance = config.tolerance;
  omp.max_atoms = config.max_atoms;

  // Pass 1: code the new columns against the current dictionary and find
  // the ones whose residual misses the ε criterion.
  const sparsecoding::BatchOmp coder(exd.dictionary, omp);
  const Index n_new = a_new.cols();
  std::vector<sparsecoding::SparseCode> codes(static_cast<std::size_t>(n_new));
#pragma omp parallel for schedule(dynamic, 16) default(none) \
    shared(a_new, codes, coder, n_new) if (n_new > 1)
  for (Index j = 0; j < n_new; ++j) {
    codes[static_cast<std::size_t>(j)] = coder.encode(a_new.col(j));
  }

  std::vector<Index> failed;
  for (Index j = 0; j < n_new; ++j) {
    const Real norm = la::nrm2(a_new.col(j));
    if (codes[static_cast<std::size_t>(j)].residual_norm >
        config.tolerance * norm * Real{1.001}) {
      failed.push_back(j);
    }
  }
  report.reencoded_columns = n_new - static_cast<Index>(failed.size());
  report.failed_columns = static_cast<Index>(failed.size());

  const Index old_l = exd.dictionary.cols();

  if (!failed.empty()) {
    // Pass 2: learn new atoms from the failing columns only.
    const Matrix hard = a_new.select_columns(failed);
    ExdConfig sub = config;
    sub.dictionary_size =
        std::min<Index>(std::max<Index>(config.dictionary_size, 1), hard.cols());
    const ExdResult extension = exd_transform(hard, sub);
    report.new_atoms = extension.dictionary.cols();
    report.dictionary_extended = true;

    // Fig. 3 zero-padding: old C gains `new_atoms` zero rows at the bottom.
    exd.dictionary.append_columns(extension.dictionary);
    exd.coefficients.pad_rows(old_l + report.new_atoms);

    // Re-code the failing columns against the extended dictionary (their
    // pass-1 codes were below tolerance).
    const sparsecoding::BatchOmp recoder(exd.dictionary, omp);
    const Index n_failed = report.failed_columns;
#pragma omp parallel for schedule(dynamic, 16) default(none) \
    shared(a_new, codes, failed, recoder, n_failed) if (n_failed > 1)
    for (Index k = 0; k < n_failed; ++k) {
      const Index j = failed[static_cast<std::size_t>(k)];
      // codes[j] is iteration-unique because `failed` holds distinct column
      // indices (built by a strictly increasing scan of [0, n_new)), but the
      // analyzer cannot prove uniqueness through the indirection.
      // extdict-lint: allow(omp-sharing) failed[] holds distinct indices, so codes[j] is iteration-unique
      codes[static_cast<std::size_t>(j)] = recoder.encode(a_new.col(j));
    }
  }

  // Splice the new columns into C.
  std::vector<std::vector<std::pair<Index, Real>>> new_cols(
      static_cast<std::size_t>(n_new));
  for (Index j = 0; j < n_new; ++j) {
    new_cols[static_cast<std::size_t>(j)] =
        std::move(codes[static_cast<std::size_t>(j)].entries);
  }
  exd.coefficients.append_columns(
      la::CscMatrix::from_columns(exd.dictionary.cols(), new_cols));
  return report;
}

}  // namespace extdict::core
