#include "core/evolving.hpp"

#include <algorithm>
#include <utility>

#include "core/gram_extend.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "sparsecoding/batch_omp.hpp"
#include "util/contracts.hpp"

namespace extdict::core {

Matrix select_extension_atoms(const Matrix& hard, const ExdConfig& config) {
  EXTDICT_REQUIRE_SHAPE(hard.cols() > 0,
                        "select_extension_atoms: no candidate columns");
  const Index count = std::min<Index>(
      std::max<Index>(config.dictionary_size, 1), hard.cols());
  la::Rng rng(config.seed);
  const std::vector<Index> atoms =
      rng.sample_without_replacement(hard.cols(), count);
  return hard.select_columns(atoms);
}

EvolveReport evolve(ExdResult& exd, const Matrix& a_new, const ExdConfig& config) {
  EXTDICT_REQUIRE_SHAPE(a_new.rows() == exd.dictionary.rows(),
                        "evolve: row mismatch with existing dictionary");
  EvolveReport report;
  report.new_columns = a_new.cols();
  if (a_new.cols() == 0) return report;

  sparsecoding::OmpConfig omp;
  omp.tolerance = config.tolerance;
  omp.max_atoms = config.max_atoms;

  // Pass 1: code the new columns against the current dictionary and find
  // the ones whose residual misses the ε criterion.
  const sparsecoding::BatchOmp coder(exd.dictionary, omp);
  const Index n_new = a_new.cols();
  std::vector<sparsecoding::SparseCode> codes(static_cast<std::size_t>(n_new));
#pragma omp parallel for schedule(dynamic, 16) default(none) \
    shared(a_new, codes, coder, n_new) if (n_new > 1)
  for (Index j = 0; j < n_new; ++j) {
    codes[static_cast<std::size_t>(j)] = coder.encode(a_new.col(j));
  }

  std::vector<Index> failed;
  for (Index j = 0; j < n_new; ++j) {
    const Real norm = la::nrm2(a_new.col(j));
    if (codes[static_cast<std::size_t>(j)].residual_norm >
        config.tolerance * norm * Real{1.001}) {
      failed.push_back(j);
    }
  }
  report.expressed_columns = n_new - static_cast<Index>(failed.size());
  report.failed_columns = static_cast<Index>(failed.size());

  const Index old_l = exd.dictionary.cols();

  if (!failed.empty()) {
    // Pass 2: sample new atoms from the failing columns only.
    const Matrix hard = a_new.select_columns(failed);
    const Matrix new_atoms = select_extension_atoms(hard, config);
    report.new_atoms = new_atoms.cols();
    report.dictionary_extended = true;

    // Grow the pass-1 coder's Gram by bordering — the old D is still intact
    // here, which is what the cross block DᵀA_new needs. No la::gram on the
    // extended dictionary anywhere on this path.
    Matrix extended_gram =
        extend_gram_bordered(coder.gram(), exd.dictionary, new_atoms);

    // Fig. 3 zero-padding: old C gains `new_atoms` zero rows at the bottom.
    exd.dictionary.append_columns(new_atoms);
    exd.coefficients.pad_rows(old_l + report.new_atoms);

    // Re-code the failing columns against the extended dictionary (their
    // pass-1 codes were below tolerance).
    const sparsecoding::BatchOmp recoder(exd.dictionary,
                                         std::move(extended_gram), omp);
    const Index n_failed = report.failed_columns;
#pragma omp parallel for schedule(dynamic, 16) default(none) \
    shared(a_new, codes, failed, recoder, n_failed) if (n_failed > 1)
    for (Index k = 0; k < n_failed; ++k) {
      const Index j = failed[static_cast<std::size_t>(k)];
      // codes[j] is iteration-unique because `failed` holds distinct column
      // indices (built by a strictly increasing scan of [0, n_new)), but the
      // analyzer cannot prove uniqueness through the indirection.
      // extdict-lint: allow(omp-sharing) failed[] holds distinct indices, so codes[j] is iteration-unique
      codes[static_cast<std::size_t>(j)] = recoder.encode(a_new.col(j));
    }
    report.reencoded_columns = n_failed;
  }

  // The pass-2 recodes were never checked against ε before: record the
  // achieved quality so callers see (instead of silently absorbing) columns
  // the sampled atoms still cannot express.
  for (Index j = 0; j < n_new; ++j) {
    const Real norm = la::nrm2(a_new.col(j));
    const Real residual = codes[static_cast<std::size_t>(j)].residual_norm;
    const Real relative = norm > 0 ? residual / norm : Real{0};
    report.max_post_extension_residual =
        std::max(report.max_post_extension_residual, relative);
    if (residual > config.tolerance * norm * Real{1.001}) {
      ++report.unresolved_columns;
    }
  }

  // Splice the new columns into C.
  std::vector<std::vector<std::pair<Index, Real>>> new_cols(
      static_cast<std::size_t>(n_new));
  for (Index j = 0; j < n_new; ++j) {
    new_cols[static_cast<std::size_t>(j)] =
        std::move(codes[static_cast<std::size_t>(j)].entries);
  }
  exd.coefficients.append_columns(
      la::CscMatrix::from_columns(exd.dictionary.cols(), new_cols));
  return report;
}

}  // namespace extdict::core
