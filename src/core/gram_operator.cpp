#include "core/gram_operator.hpp"

#include <stdexcept>

#include "la/blas.hpp"
#include "util/contracts.hpp"
#include "util/metrics.hpp"

namespace extdict::core {

namespace {

void require_sizes(std::span<const Real> x, Index nx, std::span<const Real> y,
                   Index ny, [[maybe_unused]] const char* op) {
  EXTDICT_REQUIRE_SHAPE(static_cast<Index>(x.size()) == nx &&
                            static_cast<Index>(y.size()) == ny,
                        std::string(op) + ": |in|=" +
                            std::to_string(x.size()) + " (want " +
                            std::to_string(nx) + "), |out|=" +
                            std::to_string(y.size()) + " (want " +
                            std::to_string(ny) + ")");
}

}  // namespace

DenseGramOperator::DenseGramOperator(const Matrix& a)
    : a_(&a), scratch_(static_cast<std::size_t>(a.rows())) {}

void DenseGramOperator::apply(std::span<const Real> x, std::span<Real> y) const {
  require_sizes(x, dim(), y, dim(), "DenseGramOperator::apply");
  {
    const util::MutexLock lock(scratch_mu_);
    la::gemv(1, *a_, x, 0, scratch_);
    la::gemv_t(1, *a_, scratch_, 0, y);
  }
  // One registry touch per apply — noise next to the two GEMVs it brackets.
  util::MetricsRegistry::global().add("gram_operator.dense.flops",
                                      flops_per_apply());
}

void DenseGramOperator::apply_adjoint(std::span<const Real> v,
                                      std::span<Real> y) const {
  require_sizes(v, data_dim(), y, dim(), "DenseGramOperator::apply_adjoint");
  la::gemv_t(1, *a_, v, 0, y);
}

void DenseGramOperator::apply_forward(std::span<const Real> x,
                                      std::span<Real> v) const {
  require_sizes(x, dim(), v, data_dim(), "DenseGramOperator::apply_forward");
  la::gemv(1, *a_, x, 0, v);
}

std::uint64_t DenseGramOperator::flops_per_apply() const noexcept {
  return 2 * la::gemv_flops(a_->rows(), a_->cols());
}

TransformedGramOperator::TransformedGramOperator(const Matrix& d,
                                                 const CscMatrix& c)
    : d_(&d),
      c_(&c),
      v1_(static_cast<std::size_t>(c.rows())),
      v2_(static_cast<std::size_t>(d.rows())),
      v3_(static_cast<std::size_t>(c.rows())) {
  if (d.cols() != c.rows()) {
    throw std::invalid_argument("TransformedGramOperator: D/C shape mismatch");
  }
}

void TransformedGramOperator::apply(std::span<const Real> x,
                                    std::span<Real> y) const {
  require_sizes(x, dim(), y, dim(), "TransformedGramOperator::apply");
  {
    const util::MutexLock lock(scratch_mu_);
    c_->spmv(x, v1_);                // v1 = C x
    la::gemv(1, *d_, v1_, 0, v2_);   // v2 = D v1
    la::gemv_t(1, *d_, v2_, 0, v3_); // v3 = Dᵀ v2
    c_->spmv_t(v3_, y);              // y  = Cᵀ v3
  }
  util::MetricsRegistry::global().add("gram_operator.transformed.flops",
                                      flops_per_apply());
}

void TransformedGramOperator::apply_adjoint(std::span<const Real> v,
                                            std::span<Real> y) const {
  require_sizes(v, data_dim(), y, dim(),
                "TransformedGramOperator::apply_adjoint");
  const util::MutexLock lock(scratch_mu_);
  la::gemv_t(1, *d_, v, 0, v3_);
  c_->spmv_t(v3_, y);
}

void TransformedGramOperator::apply_forward(std::span<const Real> x,
                                            std::span<Real> v) const {
  require_sizes(x, dim(), v, data_dim(),
                "TransformedGramOperator::apply_forward");
  const util::MutexLock lock(scratch_mu_);
  c_->spmv(x, v1_);
  la::gemv(1, *d_, v1_, 0, v);
}

std::uint64_t TransformedGramOperator::flops_per_apply() const noexcept {
  // Two sparse products (C x, Cᵀ v3) and two dense GEMVs against D.
  return 2 * la::gemv_flops(d_->rows(), d_->cols()) + 4 * c_->nnz();
}

}  // namespace extdict::core
