#include "core/gram_operator.hpp"

#include <stdexcept>

#include "la/blas.hpp"

namespace extdict::core {

DenseGramOperator::DenseGramOperator(const Matrix& a)
    : a_(&a), scratch_(static_cast<std::size_t>(a.rows())) {}

void DenseGramOperator::apply(std::span<const Real> x, std::span<Real> y) const {
  la::gemv(1, *a_, x, 0, scratch_);
  la::gemv_t(1, *a_, scratch_, 0, y);
}

void DenseGramOperator::apply_adjoint(std::span<const Real> v,
                                      std::span<Real> y) const {
  la::gemv_t(1, *a_, v, 0, y);
}

void DenseGramOperator::apply_forward(std::span<const Real> x,
                                      std::span<Real> v) const {
  la::gemv(1, *a_, x, 0, v);
}

std::uint64_t DenseGramOperator::flops_per_apply() const noexcept {
  return 2 * la::gemv_flops(a_->rows(), a_->cols());
}

TransformedGramOperator::TransformedGramOperator(const Matrix& d,
                                                 const CscMatrix& c)
    : d_(&d),
      c_(&c),
      v1_(static_cast<std::size_t>(c.rows())),
      v2_(static_cast<std::size_t>(d.rows())),
      v3_(static_cast<std::size_t>(c.rows())) {
  if (d.cols() != c.rows()) {
    throw std::invalid_argument("TransformedGramOperator: D/C shape mismatch");
  }
}

void TransformedGramOperator::apply(std::span<const Real> x,
                                    std::span<Real> y) const {
  c_->spmv(x, v1_);                // v1 = C x
  la::gemv(1, *d_, v1_, 0, v2_);   // v2 = D v1
  la::gemv_t(1, *d_, v2_, 0, v3_); // v3 = Dᵀ v2
  c_->spmv_t(v3_, y);              // y  = Cᵀ v3
}

void TransformedGramOperator::apply_adjoint(std::span<const Real> v,
                                            std::span<Real> y) const {
  la::gemv_t(1, *d_, v, 0, v3_);
  c_->spmv_t(v3_, y);
}

void TransformedGramOperator::apply_forward(std::span<const Real> x,
                                            std::span<Real> v) const {
  c_->spmv(x, v1_);
  la::gemv(1, *d_, v1_, 0, v);
}

std::uint64_t TransformedGramOperator::flops_per_apply() const noexcept {
  // Two sparse products (C x, Cᵀ v3) and two dense GEMVs against D.
  return 2 * la::gemv_flops(d_->rows(), d_->cols()) + 4 * c_->nnz();
}

}  // namespace extdict::core
