#pragma once

#include <string>

#include "core/exd.hpp"

namespace extdict::core {

/// Persistence for ExD transforms. Preprocessing is a one-time cost
/// amortised over many runs (§IV); saving the transform lets later sessions
/// (or other machines) skip it entirely.
///
/// Layout under `basename`:
///   <basename>.dict.bin    dictionary D (library binary format)
///   <basename>.coeffs.mtx  coefficients C (Matrix Market coordinate)
///   <basename>.meta        text metadata: atom indices, error, timing
void save_transform(const ExdResult& exd, const std::string& basename);

/// Loads a transform saved by `save_transform`. Throws std::runtime_error
/// on missing/corrupt files or inconsistent shapes.
[[nodiscard]] ExdResult load_transform(const std::string& basename);

}  // namespace extdict::core
