#pragma once

#include <memory>
#include <optional>

#include "core/dist_gram.hpp"
#include "core/evolving.hpp"
#include "core/exd.hpp"
#include "core/gram_operator.hpp"
#include "core/tuner.hpp"
#include "dist/platform.hpp"

namespace extdict::core {

/// End-to-end ExtDict façade — the "API" of §VIII:
///
///   auto engine = ExtDict::preprocess(A, platform, {.tolerance = 0.1});
///   auto& op = engine.gram_operator();       // plug into any iterative solver
///   auto result = engine.run_gram_iterations(x0, 20);   // or run distributed
///
/// `preprocess` tunes the dictionary size L for the target platform (unless
/// the caller pins one), runs the ExD projection, and retains everything a
/// downstream solver needs. The original matrix `a` must outlive the engine
/// only through `preprocess` (the engine stores D and C, not A).
class ExtDict {
 public:
  struct Options {
    Real tolerance = 0.1;                ///< ε
    Objective objective = Objective::kTime;
    std::vector<Index> l_grid;           ///< empty = geometric default grid
    std::optional<Index> fixed_l;        ///< skip tuning, use this L
    std::vector<Index> subset_sizes;     ///< for low-overhead tuning; empty = full data
    int trials = 1;
    std::uint64_t seed = 1;
  };

  /// Tunes (if needed) and projects.
  [[nodiscard]] static ExtDict preprocess(const Matrix& a,
                                          const dist::PlatformSpec& platform,
                                          const Options& options);

  [[nodiscard]] const ExdResult& transform() const noexcept { return exd_; }
  [[nodiscard]] Index tuned_l() const noexcept { return exd_.dictionary.cols(); }
  [[nodiscard]] const std::optional<TunerResult>& tuning() const noexcept {
    return tuning_;
  }
  [[nodiscard]] const dist::PlatformSpec& platform() const noexcept {
    return platform_;
  }
  [[nodiscard]] double preprocessing_ms() const noexcept {
    return (tuning_ ? tuning_->tuning_ms : 0.0) + exd_.transform_ms;
  }

  /// Serial Gram operator over the transformed data (for in-process solvers).
  [[nodiscard]] const TransformedGramOperator& gram_operator() const noexcept {
    return *op_;
  }

  /// Distributed iterated Gram update on this engine's platform (Alg. 2).
  [[nodiscard]] DistGramResult run_gram_iterations(const la::Vector& x0,
                                                   int iterations) const;

  /// Paper cost model of one update for this engine's (L, nnz) on P ranks.
  [[nodiscard]] UpdateCost update_cost() const;

  /// Evolving data (§V-E): absorbs new columns, extending D if needed.
  EvolveReport extend(const Matrix& a_new);

 private:
  ExtDict(ExdResult exd, dist::PlatformSpec platform, Options options,
          std::optional<TunerResult> tuning);

  ExdResult exd_;
  dist::PlatformSpec platform_;
  Options options_;
  std::optional<TunerResult> tuning_;
  std::unique_ptr<TransformedGramOperator> op_;
};

/// Default geometric L grid from L_min-ish up to N (used when the caller
/// does not provide one).
[[nodiscard]] std::vector<Index> default_l_grid(Index m, Index n);

}  // namespace extdict::core
