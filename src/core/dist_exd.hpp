#pragma once

#include "core/exd.hpp"
#include "dist/cluster.hpp"

namespace extdict::core {

/// Result of the distributed ExD preprocessing run: the transform plus the
/// exact cost counters of the SPMD region (Alg. 1 is specified as a
/// distributed program in the paper — "pid = 0 creates a random subset of
/// indices ... and broadcasts it to other processors; pid = i applies OMP
/// to its columns").
struct DistExdResult {
  ExdResult exd;
  dist::RunStats stats;
};

/// Algorithm 1, distributed:
///
///   step 0  rank 0 draws the L atom indices and broadcasts them;
///   step 1  every rank materialises D (in the emulation D's columns are
///           broadcast: L·M words from rank 0, matching a cluster where
///           only rank 0 holds A's sampled columns);
///   step 2  rank i takes the i-th contiguous block of N/P columns of A;
///   step 3  rank i Batch-OMP-codes its block against D;
///   gather  the per-block coefficient matrices are gathered on rank 0 and
///           assembled into C.
///
/// The returned transform is bit-identical to `exd_transform` with the same
/// config (the coding of a column does not depend on which rank ran it).
[[nodiscard]] DistExdResult exd_transform_distributed(const dist::Cluster& cluster,
                                                      const Matrix& a,
                                                      const ExdConfig& config);

}  // namespace extdict::core
