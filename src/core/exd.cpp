#include "core/exd.hpp"

#include <cmath>

#include "la/blas.hpp"
#include "la/random.hpp"
#include "sparsecoding/batch_omp.hpp"
#include "util/contracts.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"

namespace extdict::core {

ExdResult exd_transform(const Matrix& a, const ExdConfig& config) {
  EXTDICT_REQUIRE_SHAPE(
      config.dictionary_size > 0 && config.dictionary_size <= a.cols(),
      "exd_transform: dictionary_size out of range");
  la::Rng rng(config.seed);
  // Alg. 1 step 0: uniform random subset of column indices forms D.
  std::vector<Index> atoms =
      rng.sample_without_replacement(a.cols(), config.dictionary_size);
  ExdResult result =
      exd_transform_with_dictionary(a, a.select_columns(atoms), config);
  result.atom_indices = std::move(atoms);
  return result;
}

ExdResult exd_transform_with_dictionary(const Matrix& a, Matrix dictionary,
                                        const ExdConfig& config) {
  EXTDICT_REQUIRE_SHAPE(dictionary.rows() == a.rows(),
                        "exd_transform_with_dictionary: row mismatch");
  EXTDICT_CHECK_FINITE(
      std::span<const Real>(a.data(), static_cast<std::size_t>(a.size())),
      "exd_transform: data matrix");
  const util::SpanTimer span("exd.transform");
  util::Timer timer;

  sparsecoding::OmpConfig omp;
  omp.tolerance = config.tolerance;
  omp.max_atoms = config.max_atoms;

  ExdResult result;
  result.dictionary = std::move(dictionary);
  const sparsecoding::BatchOmp coder(result.dictionary, omp);
  result.coefficients = coder.encode_all(a);
  result.transform_ms = timer.elapsed_ms();
  result.transformation_error =
      transformation_error(a, result.dictionary, result.coefficients);
  util::MetricsRegistry::global().add("exd.transform_nnz",
                                      result.coefficients.nnz());
  return result;
}

Real transformation_error(const Matrix& a, const Matrix& d, const CscMatrix& c) {
  EXTDICT_REQUIRE_SHAPE(
      c.rows() == d.cols() && c.cols() == a.cols() && d.rows() == a.rows(),
      "transformation_error: shape mismatch");
  const Index n = a.cols();
  Real num = 0, den = 0;
#pragma omp parallel for schedule(static) default(none) shared(a, d, c, n) \
    reduction(+ : num, den) if (n > 64)
  for (Index j = 0; j < n; ++j) {
    la::Vector r(a.col(j).begin(), a.col(j).end());
    const auto rows = c.col_rows(j);
    const auto vals = c.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      la::axpy(-vals[k], d.col(rows[k]), r);
    }
    num += la::dot(r, r);
    den += la::dot(a.col(j), a.col(j));
  }
  EXTDICT_ASSERT(std::isfinite(num) && std::isfinite(den),
                 "transformation_error: non-finite residual energy");
  return den > 0 ? std::sqrt(num / den) : Real{0};
}

}  // namespace extdict::core
