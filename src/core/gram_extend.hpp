#pragma once

#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::core {

using la::Index;
using la::Matrix;
using la::Real;

/// Grows the Gram matrix G = DᵀD to cover `dict` extended by `new_atoms`
/// via bordering instead of a full recompute:
///
///   G' = [ G        Dᵀ·A_new      ]
///        [ A_newᵀ·D  A_newᵀ·A_new ]
///
/// Cost: an L² copy plus 2·M·L·K + M·K² FLOPs for the border blocks, versus
/// 2·M·(L+K)² for `la::gram` on the extended dictionary — the difference is
/// what makes online dictionary extension (serve::DictRegistry, the
/// core::evolve pass-2 re-code) cheap enough to run under load.
///
/// Every border entry is computed with the same `la::dot` accumulation
/// order `la::gram` uses, so the result is BITWISE identical to
/// `la::gram(extended_dict)` — extension changes where the Gram comes from,
/// never what Batch-OMP sees (dict_registry_test pins this).
///
/// Shapes: `gram` is L×L, `dict` is M×L, `new_atoms` is M×K; the result is
/// (L+K)×(L+K).
[[nodiscard]] Matrix extend_gram_bordered(const Matrix& gram,
                                          const Matrix& dict,
                                          const Matrix& new_atoms);

}  // namespace extdict::core
