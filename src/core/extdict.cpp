#include "core/extdict.hpp"

#include <algorithm>
#include <cmath>

namespace extdict::core {

std::vector<Index> default_l_grid(Index m, Index n) {
  // Geometric ladder between ~n/64 and ~n/2, clipped to [8, n].
  std::vector<Index> grid;
  Index l = std::max<Index>(8, n / 64);
  const Index top = std::max<Index>(l + 1, n / 2);
  while (l <= top) {
    grid.push_back(std::min(l, n));
    l = std::max(l + 1, l * 8 / 5);
  }
  // Make sure something at/above M is present so OMP can always converge.
  if (grid.back() < std::min(m, n)) grid.push_back(std::min(m, n));
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

ExtDict::ExtDict(ExdResult exd, dist::PlatformSpec platform, Options options,
                 std::optional<TunerResult> tuning)
    : exd_(std::move(exd)),
      platform_(std::move(platform)),
      options_(std::move(options)),
      tuning_(std::move(tuning)),
      op_(std::make_unique<TransformedGramOperator>(exd_.dictionary,
                                                    exd_.coefficients)) {}

ExtDict ExtDict::preprocess(const Matrix& a, const dist::PlatformSpec& platform,
                            const Options& options) {
  std::optional<TunerResult> tuning;
  Index l = 0;
  if (options.fixed_l) {
    l = *options.fixed_l;
  } else {
    TunerConfig config;
    config.profile.l_grid =
        options.l_grid.empty() ? default_l_grid(a.rows(), a.cols()) : options.l_grid;
    config.profile.tolerance = options.tolerance;
    config.profile.trials = options.trials;
    config.profile.seed = options.seed;
    config.objective = options.objective;
    config.subset_sizes = options.subset_sizes;
    tuning = tune(a, platform, config);
    l = tuning->best_l;
  }

  ExdConfig exd;
  exd.dictionary_size = l;
  exd.tolerance = options.tolerance;
  exd.seed = options.seed;
  return ExtDict(exd_transform(a, exd), platform, options, std::move(tuning));
}

DistGramResult ExtDict::run_gram_iterations(const la::Vector& x0,
                                            int iterations) const {
  const dist::Cluster cluster(platform_.topology);
  return dist_gram_apply(cluster, exd_.dictionary, exd_.coefficients, x0,
                         iterations);
}

UpdateCost ExtDict::update_cost() const {
  return transformed_update_cost(exd_.dictionary.rows(), exd_.dictionary.cols(),
                                 exd_.coefficients.nnz(),
                                 exd_.coefficients.cols(),
                                 platform_.topology.total(), platform_);
}

EvolveReport ExtDict::extend(const Matrix& a_new) {
  ExdConfig config;
  config.tolerance = options_.tolerance;
  config.seed = options_.seed + 17;
  config.dictionary_size = std::max<Index>(1, a_new.cols() / 4);
  const EvolveReport report = evolve(exd_, a_new, config);
  // The operator holds pointers into exd_; rebuild after mutation.
  op_ = std::make_unique<TransformedGramOperator>(exd_.dictionary,
                                                  exd_.coefficients);
  return report;
}

}  // namespace extdict::core
