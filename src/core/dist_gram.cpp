#include "core/dist_gram.hpp"

#include <cmath>
#include <numeric>

#include "la/blas.hpp"
#include "util/contracts.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace extdict::core {

namespace {

// Observability span names (docs/ARCHITECTURE.md "Observability"): every
// rank's whole SPMD body is `kSpanRank`; the three phase spans partition it
// up to the per-rank setup, so their sums stay within tolerance of the
// rank-total sum (metrics_test pins that invariant end to end).
constexpr std::string_view kSpanRank = "dist_gram.rank";
constexpr std::string_view kSpanUpdate = "dist_gram.update";
constexpr std::string_view kSpanNormalize = "dist_gram.normalize";
constexpr std::string_view kSpanGather = "dist_gram.gather";

std::uint64_t range_nnz(const CscMatrix& c, Index j0, Index j1) {
  std::uint64_t nnz = 0;
  for (Index j = j0; j < j1; ++j) nnz += static_cast<std::uint64_t>(c.col_nnz(j));
  return nnz;
}

// Normalises the distributed vector x (owned in slices) to unit norm; the
// norm exchange is tiny but still metered. Keeps iterated updates bounded.
void normalize_distributed(dist::Communicator& comm, std::span<Real> local) {
  Real ss = la::dot(local, local);
  comm.cost().add_flops(2 * local.size());
  ss = comm.allreduce_sum_scalar(ss);
  const Real norm = std::sqrt(ss);
  if (norm > Real{0}) {
    la::scal(1 / norm, local);
    comm.cost().add_flops(local.size());
  }
}

}  // namespace

DistGramResult dist_gram_apply(const dist::Cluster& cluster, const Matrix& d,
                               const CscMatrix& c, const la::Vector& x0,
                               int iterations, GramStrategy strategy) {
  EXTDICT_REQUIRE_SHAPE(c.rows() == d.cols(),
                        "dist_gram_apply: D/C shape mismatch");
  EXTDICT_REQUIRE_SHAPE(static_cast<Index>(x0.size()) == c.cols(),
                        "dist_gram_apply: x size mismatch");
  EXTDICT_CHECK_FINITE(std::span<const Real>(x0), "dist_gram_apply: x0");
  const Index m = d.rows();
  const Index l = d.cols();
  const Index n = c.cols();
  if (strategy == GramStrategy::kAuto) {
    strategy = l > m ? GramStrategy::kReplicatedDictionary
                     : GramStrategy::kPartitionedDictionary;
  }
  const Index p = cluster.topology().total();
  const ColumnPartition part{n, p};
  const ColumnPartition row_part{m, p};  // D's rows for the partitioned mode

  DistGramResult result;
  result.iterations = iterations;
  result.y.assign(static_cast<std::size_t>(n), Real{0});

  // Per-rank Gram-update FLOPs (each rank writes only its slot; summed after
  // the join, same publication pattern as Cluster::run's per_rank stats).
  std::vector<std::uint64_t> update_flops_per_rank(
      static_cast<std::size_t>(p), 0);
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();

  dist::RunStats stats = cluster.run([&](dist::Communicator& comm) {
    const util::SpanTimer rank_span(metrics, kSpanRank);
    const util::TraceScope rank_trace(util::TraceRecorder::global(),
                                      kSpanRank);
    const Index rank = comm.rank();
    const Index b = part.begin(rank);
    const Index e = part.end(rank);
    const Index local_n = e - b;
    const Index rb = row_part.begin(rank);
    const Index re = row_part.end(rank);
    const Index local_m = re - rb;
    std::uint64_t my_update_flops = 0;
    // Charges FLOPs that belong to the Gram update itself (as opposed to
    // normalisation / collective adds) to both the rank counter and the
    // update tally the cost model is checked against.
    const auto charge_update = [&](std::uint64_t flops) {
      comm.cost().add_flops(flops);
      my_update_flops += flops;
    };

    // Step 0: rank i "loads" C_i and its slice of x. In the emulation the
    // slices are views into shared memory; the footprint is metered as if
    // each rank held its own copy (Eq. 4 accounting).
    la::Vector x_local(x0.begin() + b, x0.begin() + e);
    std::uint64_t resident = range_nnz(c, b, e) * 3 / 2 +
                             static_cast<std::uint64_t>(local_n) +
                             static_cast<std::uint64_t>(local_n + 1);
    switch (strategy) {
      case GramStrategy::kRootDictionary:
        if (rank == 0) {
          resident += static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(l);
        }
        break;
      case GramStrategy::kReplicatedDictionary:
        resident += static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(l);
        break;
      case GramStrategy::kPartitionedDictionary:
        resident +=
            static_cast<std::uint64_t>(local_m) * static_cast<std::uint64_t>(l);
        break;
      case GramStrategy::kAuto:
        break;  // resolved above
    }
    comm.cost().record_memory(resident);

    la::Vector v1(static_cast<std::size_t>(l));
    la::Vector v2(static_cast<std::size_t>(m));
    la::Vector v3(static_cast<std::size_t>(l));
    la::Vector v2_local(static_cast<std::size_t>(std::max<Index>(local_m, 1)));

    const std::uint64_t local_nnz = range_nnz(c, b, e);

    for (int it = 0; it < iterations; ++it) {
      {
        const util::SpanTimer update_span(metrics, kSpanUpdate);
        const util::TraceScope update_trace(util::TraceRecorder::global(),
                                            kSpanUpdate, "iteration",
                                            static_cast<std::uint64_t>(it));
        // Step 1: v1_i = C_i x_i.
        std::fill(v1.begin(), v1.end(), Real{0});
        c.spmv_range(b, e, x_local, v1);
        charge_update(2 * local_nnz);

        switch (strategy) {
          case GramStrategy::kRootDictionary: {
            // Alg. 2 Case 1 verbatim: D on rank 0; reduce the L-vector.
            comm.reduce_sum(0, v1);
            if (rank == 0) {
              la::gemv(1, d, v1, 0, v2);    // v2 = D Σ v1
              la::gemv_t(1, d, v2, 0, v3);  // v3 = Dᵀ v2
              charge_update(2 * la::gemv_flops(m, l));
            }
            comm.broadcast(0, std::span<Real>(v3));
            break;
          }
          case GramStrategy::kReplicatedDictionary: {
            // Alg. 2 Case 2: each rank lifts its partial v1 to data space,
            // the M-vector is reduced/broadcast, and the Dᵀ multiply is done
            // redundantly everywhere (step 7).
            la::gemv(1, d, v1, 0, v2);
            charge_update(la::gemv_flops(m, l));
            comm.reduce_sum(0, v2);
            comm.broadcast(0, std::span<Real>(v2));
            la::gemv_t(1, d, v2, 0, v3);
            charge_update(la::gemv_flops(m, l));
            break;
          }
          case GramStrategy::kPartitionedDictionary: {
            // Row-partitioned D: every rank's dense work is 2·(M/P)·L mults —
            // the 2·(M·L + nnz)/P parallelisation the paper's Eq. (2) models.
            comm.allreduce_sum(std::span<Real>(v1));  // full Σ v1 everywhere
            // v2 block: rows [rb, re) of D times v1.
            std::fill(v2_local.begin(), v2_local.end(), Real{0});
            for (Index j = 0; j < l; ++j) {
              const Real w = v1[static_cast<std::size_t>(j)];
              if (w == Real{0}) continue;
              const auto col = d.col(j);
              for (Index i = 0; i < local_m; ++i) {
                v2_local[static_cast<std::size_t>(i)] +=
                    w * col[static_cast<std::size_t>(rb + i)];
              }
            }
            // Partial Dᵀ product from the owned row block.
            for (Index j = 0; j < l; ++j) {
              const auto col = d.col(j);
              Real s = 0;
              for (Index i = 0; i < local_m; ++i) {
                s += col[static_cast<std::size_t>(rb + i)] *
                     v2_local[static_cast<std::size_t>(i)];
              }
              v3[static_cast<std::size_t>(j)] = s;
            }
            charge_update(4 * static_cast<std::uint64_t>(local_m) *
                          static_cast<std::uint64_t>(l));
            comm.allreduce_sum(std::span<Real>(v3));
            break;
          }
          case GramStrategy::kAuto:
            break;  // unreachable
        }

        // Step 7: x_i = C_iᵀ v3.
        c.spmv_t_range(b, e, v3, x_local);
        charge_update(2 * local_nnz);
      }
      EXTDICT_CHECK_FINITE(std::span<const Real>(x_local),
                           "dist_gram_apply: x after iteration " +
                               std::to_string(it) + " on rank " +
                               std::to_string(rank));

      {
        const util::SpanTimer normalize_span(metrics, kSpanNormalize);
        const util::TraceScope normalize_trace(util::TraceRecorder::global(),
                                               kSpanNormalize, "iteration",
                                               static_cast<std::uint64_t>(it));
        normalize_distributed(comm, x_local);
      }
    }

    // Collect the distributed result on rank 0.
    const util::SpanTimer gather_span(metrics, kSpanGather);
    const util::TraceScope gather_trace(util::TraceRecorder::global(),
                                        kSpanGather);
    std::vector<Index> counts;
    const la::Vector gathered =
        comm.gather(0, std::span<const Real>(x_local), &counts);
    if (rank == 0) {
      std::copy(gathered.begin(), gathered.end(), result.y.begin());
    }
    update_flops_per_rank[static_cast<std::size_t>(rank)] = my_update_flops;
  });

  result.stats = std::move(stats);
  result.update_flops = std::accumulate(update_flops_per_rank.begin(),
                                        update_flops_per_rank.end(),
                                        std::uint64_t{0});
  metrics.add("dist_gram.update_flops", result.update_flops);
  return result;
}

DistGramResult dist_gram_apply_original(const dist::Cluster& cluster,
                                        const Matrix& a, const la::Vector& x0,
                                        int iterations) {
  EXTDICT_REQUIRE_SHAPE(static_cast<Index>(x0.size()) == a.cols(),
                        "dist_gram_apply_original: x size mismatch");
  const Index m = a.rows();
  const Index n = a.cols();
  const Index p = cluster.topology().total();
  const ColumnPartition part{n, p};

  DistGramResult result;
  result.iterations = iterations;
  result.y.assign(static_cast<std::size_t>(n), Real{0});

  std::vector<std::uint64_t> update_flops_per_rank(
      static_cast<std::size_t>(p), 0);
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();

  dist::RunStats stats = cluster.run([&](dist::Communicator& comm) {
    const util::SpanTimer rank_span(metrics, kSpanRank);
    const util::TraceScope rank_trace(util::TraceRecorder::global(),
                                      kSpanRank);
    const Index rank = comm.rank();
    const Index b = part.begin(rank);
    const Index e = part.end(rank);
    const Index local_n = e - b;
    std::uint64_t my_update_flops = 0;
    const auto charge_update = [&](std::uint64_t flops) {
      comm.cost().add_flops(flops);
      my_update_flops += flops;
    };

    la::Vector x_local(x0.begin() + b, x0.begin() + e);
    comm.cost().record_memory(
        static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(local_n) +
        static_cast<std::uint64_t>(local_n));

    la::Vector u(static_cast<std::size_t>(m));

    for (int it = 0; it < iterations; ++it) {
      {
        const util::SpanTimer update_span(metrics, kSpanUpdate);
        const util::TraceScope update_trace(util::TraceRecorder::global(),
                                            kSpanUpdate, "iteration",
                                            static_cast<std::uint64_t>(it));
        // u = Σ_i A_i x_i.
        std::fill(u.begin(), u.end(), Real{0});
        for (Index j = b; j < e; ++j) {
          la::axpy(x_local[static_cast<std::size_t>(j - b)], a.col(j), u);
        }
        charge_update(2 * static_cast<std::uint64_t>(m) *
                      static_cast<std::uint64_t>(local_n));
        comm.reduce_sum(0, u);
        comm.broadcast(0, std::span<Real>(u));

        // x_i = A_iᵀ u.
        for (Index j = b; j < e; ++j) {
          x_local[static_cast<std::size_t>(j - b)] = la::dot(a.col(j), u);
        }
        charge_update(2 * static_cast<std::uint64_t>(m) *
                      static_cast<std::uint64_t>(local_n));
      }

      const util::SpanTimer normalize_span(metrics, kSpanNormalize);
      const util::TraceScope normalize_trace(util::TraceRecorder::global(),
                                             kSpanNormalize, "iteration",
                                             static_cast<std::uint64_t>(it));
      normalize_distributed(comm, x_local);
    }

    const util::SpanTimer gather_span(metrics, kSpanGather);
    const util::TraceScope gather_trace(util::TraceRecorder::global(),
                                        kSpanGather);
    std::vector<Index> counts;
    const la::Vector gathered =
        comm.gather(0, std::span<const Real>(x_local), &counts);
    if (rank == 0) {
      std::copy(gathered.begin(), gathered.end(), result.y.begin());
    }
    update_flops_per_rank[static_cast<std::size_t>(rank)] = my_update_flops;
  });

  result.stats = std::move(stats);
  result.update_flops = std::accumulate(update_flops_per_rank.begin(),
                                        update_flops_per_rank.end(),
                                        std::uint64_t{0});
  metrics.add("dist_gram.update_flops", result.update_flops);
  return result;
}

}  // namespace extdict::core
