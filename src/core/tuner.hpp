#pragma once

#include <utility>
#include <vector>

#include "core/alpha_profile.hpp"
#include "core/cost_model.hpp"
#include "dist/platform.hpp"

namespace extdict::core {

/// What the tuner minimises (§VII): the runtime model (Eq. 2), energy model
/// (Eq. 3), or per-node memory (Eq. 4).
enum class Objective { kTime, kEnergy, kMemory };

struct TunerConfig {
  AlphaProfileConfig profile;
  Objective objective = Objective::kTime;
  /// Subset sizes for the low-overhead α estimation; empty = profile the
  /// full matrix (Brute Force, used by tests for ground truth).
  std::vector<Index> subset_sizes;
  Real convergence_threshold = 0.15;
};

struct TunerResult {
  Index best_l = -1;
  double best_cost = 0;
  AlphaProfile profile;
  /// Modelled cost per feasible grid point (for Fig. 8's predicted curves).
  std::vector<std::pair<Index, double>> costs;
  double tuning_ms = 0;
};

/// ExtDict's automated ExD customisation: estimates α(L) (from subsets when
/// configured), evaluates the platform cost model at every feasible L, and
/// returns the argmin. Throws std::runtime_error when no grid point meets
/// the tolerance (grid below L_min everywhere).
[[nodiscard]] TunerResult tune(const Matrix& a, const dist::PlatformSpec& platform,
                               const TunerConfig& config);

/// Cost-model evaluation helper shared with the benches: the objective value
/// of one (L, α) pair on `platform`.
[[nodiscard]] double objective_value(Objective objective, Index m, Index l,
                                     Real alpha, Index n,
                                     const dist::PlatformSpec& platform);

}  // namespace extdict::core
