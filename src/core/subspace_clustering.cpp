#include "core/subspace_clustering.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace extdict::core {

namespace {

// Union-find with path halving.
class DisjointSets {
 public:
  explicit DisjointSets(Index n) : parent_(static_cast<std::size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), Index{0});
  }

  Index find(Index x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }

  void unite(Index a, Index b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(a)] = b;
  }

 private:
  std::vector<Index> parent_;
};

}  // namespace

ClusteringResult cluster_by_codes(const ExdResult& exd,
                                  const ClusteringConfig& config) {
  const CscMatrix& c = exd.coefficients;
  const Index n = c.cols();
  EXTDICT_REQUIRE_SHAPE(
      exd.atom_indices.size() == static_cast<std::size_t>(c.rows()),
      "cluster_by_codes: transform lacks atom provenance (atom_indices)");

  // Union columns with the *source columns* of the atoms they use.
  DisjointSets sets(n);
  ClusteringResult result;
  for (Index j = 0; j < n; ++j) {
    const auto rows = c.col_rows(j);
    const auto values = c.col_values(j);
    if (rows.empty()) {
      ++result.singletons;
      continue;
    }
    Real top = 0;
    for (const Real v : values) top = std::max(top, std::abs(v));
    for (std::size_t k = 0; k < rows.size(); ++k) {
      if (std::abs(values[k]) < config.relative_weight_threshold * top) continue;
      const Index atom_column =
          exd.atom_indices[static_cast<std::size_t>(rows[k])];
      sets.unite(j, atom_column);
    }
  }

  // Compact component ids into 0..k-1 labels.
  result.labels.assign(static_cast<std::size_t>(n), -1);
  std::vector<Index> root_to_label(static_cast<std::size_t>(n), -1);
  for (Index j = 0; j < n; ++j) {
    const Index root = sets.find(j);
    Index& label = root_to_label[static_cast<std::size_t>(root)];
    if (label < 0) label = result.num_clusters++;
    result.labels[static_cast<std::size_t>(j)] = label;
  }
  return result;
}

Real rand_index(const std::vector<Index>& a, const std::vector<Index>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("rand_index: size mismatch");
  }
  std::uint64_t agree = 0, total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      ++total;
      const bool same_a = a[i] == a[j];
      const bool same_b = b[i] == b[j];
      if (same_a == same_b) ++agree;
    }
  }
  return static_cast<Real>(agree) / static_cast<Real>(total);
}

}  // namespace extdict::core
