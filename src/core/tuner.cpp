#include "core/tuner.hpp"

#include <stdexcept>

#include "util/metrics.hpp"
#include "util/timer.hpp"

namespace extdict::core {

double objective_value(Objective objective, Index m, Index l, Real alpha,
                       Index n, const dist::PlatformSpec& platform) {
  const UpdateCost cost = predicted_update_cost(
      m, l, alpha, n, platform.topology.total(), platform);
  switch (objective) {
    case Objective::kTime:
      return cost.time_cost;
    case Objective::kEnergy:
      return cost.energy_cost;
    case Objective::kMemory:
      return static_cast<double>(cost.memory_words_per_proc);
  }
  throw std::logic_error("objective_value: unknown objective");
}

TunerResult tune(const Matrix& a, const dist::PlatformSpec& platform,
                 const TunerConfig& config) {
  const util::SpanTimer span("tuner.tune");
  util::Timer timer;
  TunerResult result;
  if (config.subset_sizes.empty()) {
    result.profile = estimate_alpha_profile(a, config.profile);
  } else {
    result.profile = estimate_alpha_profile_subsets(
        a, config.profile, config.subset_sizes, config.convergence_threshold);
  }

  double best = 0;
  for (const AlphaPoint& point : result.profile.points) {
    if (!point.feasible) continue;
    const double value = objective_value(config.objective, a.rows(), point.l,
                                         point.alpha_mean, a.cols(), platform);
    result.costs.emplace_back(point.l, value);
    if (result.best_l < 0 || value < best) {
      best = value;
      result.best_l = point.l;
    }
  }
  if (result.best_l < 0) {
    throw std::runtime_error(
        "tune: no feasible dictionary size in the grid (all below L_min)");
  }
  result.best_cost = best;
  result.tuning_ms = timer.elapsed_ms();
  util::MetricsRegistry::global().add(
      "tuner.grid_points_evaluated", result.costs.size());
  return result;
}

}  // namespace extdict::core
