#include "baselines/rankmap.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/exd.hpp"
#include "util/timer.hpp"

namespace extdict::baselines {

TransformResult rankmap_transform(const Matrix& a, Real tolerance,
                                  std::uint64_t seed) {
  util::Timer timer;

  auto attempt = [&](Index l) {
    core::ExdConfig config;
    config.dictionary_size = l;
    config.tolerance = tolerance;
    config.seed = seed;
    return core::exd_transform(a, config);
  };

  // Error-driven search for the smallest feasible dictionary: geometric
  // bracket, then binary refinement.
  Index lo = 0;
  Index l = std::max<Index>(8, a.cols() / 64);
  core::ExdResult best;
  bool found = false;
  while (l <= a.cols()) {
    core::ExdResult r = attempt(l);
    if (r.transformation_error <= tolerance) {
      best = std::move(r);
      found = true;
      break;
    }
    lo = l;
    if (l == a.cols()) break;
    l = std::min(a.cols(), l * 2);
  }
  if (!found) {
    throw std::runtime_error("rankmap_transform: tolerance unreachable");
  }
  Index hi = best.dictionary.cols();
  while (hi - lo > std::max<Index>(8, hi / 10)) {
    const Index mid = lo + (hi - lo) / 2;
    core::ExdResult r = attempt(mid);
    if (r.transformation_error <= tolerance) {
      best = std::move(r);
      hi = mid;
    } else {
      lo = mid;
    }
  }

  TransformResult result;
  result.method = "RankMap";
  result.dictionary = std::move(best.dictionary);
  result.coefficients = std::move(best.coefficients);
  result.transformation_error = best.transformation_error;
  result.transform_ms = timer.elapsed_ms();
  return result;
}

}  // namespace extdict::baselines
