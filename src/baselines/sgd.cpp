#include "baselines/sgd.hpp"

#include <cmath>
#include <stdexcept>

#include "core/dist_gram.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "solvers/adagrad.hpp"

namespace extdict::baselines {

SgdResult sgd_lasso(const dist::Cluster& cluster, const Matrix& a,
                    const la::Vector& y, const SgdConfig& config) {
  const Index m = a.rows();
  const Index n = a.cols();
  if (static_cast<Index>(y.size()) != m) {
    throw std::invalid_argument("sgd_lasso: y size mismatch");
  }
  const Index batch = std::min(config.batch_rows, m);
  const core::ColumnPartition part{n, cluster.topology().total()};

  SgdResult result;
  result.x.assign(static_cast<std::size_t>(n), Real{0});
  int iterations_shared = 0;
  bool reached_shared = false;
  Real objective_shared = 0;
  std::vector<std::pair<int, Real>> trace_shared;

  dist::RunStats stats = cluster.run([&](dist::Communicator& comm) {
    const Index rank = comm.rank();
    const Index b = part.begin(rank);
    const Index e = part.end(rank);
    const Index local_n = e - b;

    // SGD keeps the original data resident: A_i plus the targets.
    comm.cost().record_memory(
        static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(local_n) +
        static_cast<std::uint64_t>(m) + static_cast<std::uint64_t>(local_n) * 3);

    la::Vector x_local(static_cast<std::size_t>(local_n), Real{0});
    la::Vector g_local(static_cast<std::size_t>(local_n));
    la::Vector u(static_cast<std::size_t>(batch));
    la::Vector u_full(static_cast<std::size_t>(m));
    solvers::Adagrad adagrad(std::max<Index>(local_n, 1), config.base_rate);

    int it = 0;
    bool reached = false;
    Real objective = 0;
    std::vector<std::pair<int, Real>> trace;

    for (; it < config.max_iterations; ++it) {
      // All ranks draw the same batch: per-iteration deterministic seed.
      la::Rng batch_rng(config.seed * 0x9e3779b9ULL + static_cast<std::uint64_t>(it));
      const auto rows = batch_rng.sample_without_replacement(m, batch);

      // u = A_b x (allreduced batch-sized partial products).
      std::fill(u.begin(), u.end(), Real{0});
      for (Index j = b; j < e; ++j) {
        const Real xj = x_local[static_cast<std::size_t>(j - b)];
        if (xj == Real{0}) continue;
        const auto col = a.col(j);
        for (Index r = 0; r < batch; ++r) {
          u[static_cast<std::size_t>(r)] +=
              xj * col[static_cast<std::size_t>(rows[static_cast<std::size_t>(r)])];
        }
      }
      comm.cost().add_flops(2 * static_cast<std::uint64_t>(batch) *
                            static_cast<std::uint64_t>(local_n));
      comm.allreduce_sum(u);

      // Residual on the batch, then the local gradient block.
      for (Index r = 0; r < batch; ++r) {
        u[static_cast<std::size_t>(r)] -=
            y[static_cast<std::size_t>(rows[static_cast<std::size_t>(r)])];
      }
      for (Index j = b; j < e; ++j) {
        const auto col = a.col(j);
        Real s = 0;
        for (Index r = 0; r < batch; ++r) {
          s += u[static_cast<std::size_t>(r)] *
               col[static_cast<std::size_t>(rows[static_cast<std::size_t>(r)])];
        }
        g_local[static_cast<std::size_t>(j - b)] = s;
      }
      comm.cost().add_flops(2 * static_cast<std::uint64_t>(batch) *
                            static_cast<std::uint64_t>(local_n));

      if (local_n > 0) {
        adagrad.accumulate(g_local);
        for (std::size_t i = 0; i < g_local.size(); ++i) {
          const Real r = adagrad.rate(static_cast<Index>(i));
          x_local[i] = solvers::soft_threshold(x_local[i] - r * g_local[i],
                                               r * config.lambda);
        }
        comm.cost().add_flops(static_cast<std::uint64_t>(local_n) * 6);
      }

      // Periodic full-objective check against the target.
      if (config.target_objective > 0 && config.check_every > 0 &&
          (it + 1) % config.check_every == 0) {
        std::fill(u_full.begin(), u_full.end(), Real{0});
        for (Index j = b; j < e; ++j) {
          la::axpy(x_local[static_cast<std::size_t>(j - b)], a.col(j), u_full);
        }
        comm.cost().add_flops(2 * static_cast<std::uint64_t>(m) *
                              static_cast<std::uint64_t>(local_n));
        comm.allreduce_sum(u_full);
        Real fit = 0;
        for (Index i = 0; i < m; ++i) {
          const Real d0 = u_full[static_cast<std::size_t>(i)] -
                          y[static_cast<std::size_t>(i)];
          fit += d0 * d0;
        }
        Real l1 = 0;
        for (Real v : x_local) l1 += std::abs(v);
        l1 = comm.allreduce_sum_scalar(l1);
        objective = Real{0.5} * fit + config.lambda * l1;
        if (rank == 0) trace.emplace_back(it + 1, objective);
        if (objective <= config.target_objective) {
          reached = true;
          ++it;
          break;
        }
      }
    }

    std::vector<Index> counts;
    const la::Vector gathered =
        comm.gather(0, std::span<const Real>(x_local), &counts);
    if (rank == 0) {
      std::copy(gathered.begin(), gathered.end(), result.x.begin());
      iterations_shared = it;
      reached_shared = reached;
      objective_shared = objective;
      trace_shared = std::move(trace);
    }
  });

  result.stats = std::move(stats);
  result.iterations = iterations_shared;
  result.reached_target = reached_shared;
  result.final_objective = objective_shared;
  result.objective_trace = std::move(trace_shared);
  return result;
}

}  // namespace extdict::baselines
