#include "baselines/oasis.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/exd.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"
#include "la/random.hpp"
#include "util/timer.hpp"

namespace extdict::baselines {

TransformResult oasis_transform(const Matrix& a, Real tolerance,
                                std::uint64_t seed, Index max_l) {
  const Index m = a.rows();
  const Index n = a.cols();
  if (max_l <= 0) max_l = std::min(m, n);
  max_l = std::min(max_l, n);

  util::Timer timer;
  la::Rng rng(seed);

  // Residual energy of each column w.r.t. the selected span; total energy
  // drives the Frobenius stopping rule.
  la::Vector res_energy(static_cast<std::size_t>(n));
  Real total_energy = 0;
  for (Index j = 0; j < n; ++j) {
    const Real e = la::dot(a.col(j), a.col(j));
    res_energy[static_cast<std::size_t>(j)] = e;
    total_energy += e;
  }
  if (total_energy == Real{0}) {
    throw std::invalid_argument("oasis_transform: zero matrix");
  }
  const Real target_energy = tolerance * tolerance * total_energy;

  Matrix basis(m, max_l);  // orthonormalised selected columns
  std::vector<Index> selected;
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  Real remaining = total_energy;

  // Seed with a random column, then adapt.
  Index pick = rng.uniform_index(0, n - 1);
  while (remaining > target_energy &&
         static_cast<Index>(selected.size()) < max_l) {
    if (used[static_cast<std::size_t>(pick)]) {
      // Fall back to the max-residual unused column.
      pick = -1;
      Real best = -1;
      for (Index j = 0; j < n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        if (res_energy[static_cast<std::size_t>(j)] > best) {
          best = res_energy[static_cast<std::size_t>(j)];
          pick = j;
        }
      }
      if (pick < 0) break;
    }
    used[static_cast<std::size_t>(pick)] = true;

    // Orthonormalise the picked column against the current basis.
    const Index k = static_cast<Index>(selected.size());
    auto q = basis.col(k);
    std::copy(a.col(pick).begin(), a.col(pick).end(), q.begin());
    for (int pass = 0; pass < 2; ++pass) {
      for (Index b = 0; b < k; ++b) {
        const Real r = la::dot(basis.col(b), q);
        la::axpy(-r, basis.col(b), q);
      }
    }
    const Real norm = la::nrm2(q);
    if (norm < 1e-10) {
      // Numerically dependent pick; drop it and try the next best.
      res_energy[static_cast<std::size_t>(pick)] = 0;
      pick = -1;
      continue;
    }
    la::scal(1 / norm, q);
    selected.push_back(pick);

    // Downdate all residual energies with the new direction; track the next
    // argmax on the fly.
    Index next = -1;
    Real next_best = -1;
    remaining = 0;
    const Index cols = n;
#pragma omp parallel for schedule(static) default(none) \
    shared(a, q, res_energy, cols) if (cols > 512)
    for (Index j = 0; j < cols; ++j) {
      if (res_energy[static_cast<std::size_t>(j)] <= Real{0}) continue;
      const Real proj = la::dot(q, a.col(j));
      res_energy[static_cast<std::size_t>(j)] = std::max(
          Real{0}, res_energy[static_cast<std::size_t>(j)] - proj * proj);
    }
    for (Index j = 0; j < n; ++j) {
      remaining += res_energy[static_cast<std::size_t>(j)];
      if (!used[static_cast<std::size_t>(j)] &&
          res_energy[static_cast<std::size_t>(j)] > next_best) {
        next_best = res_energy[static_cast<std::size_t>(j)];
        next = j;
      }
    }
    pick = next < 0 ? 0 : next;
    if (next < 0) break;
  }

  TransformResult result;
  result.method = "oASIS";
  result.dense_coefficients = true;
  result.dictionary =
      a.select_columns({selected.data(), selected.size()});
  const la::HouseholderQr qr(result.dictionary);
  result.coefficients = dense_to_csc(qr.solve_many(a));
  result.transform_ms = timer.elapsed_ms();
  result.transformation_error =
      core::transformation_error(a, result.dictionary, result.coefficients);
  return result;
}

}  // namespace extdict::baselines
