#pragma once

#include <cstdint>
#include <vector>

#include "dist/cluster.hpp"
#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::baselines {

using la::Index;
using la::Matrix;
using la::Real;

/// Distributed mini-batch Stochastic Gradient Descent with Adagrad — the
/// paper's learning-application baseline (§VIII-A): each iteration draws a
/// random batch of `batch_rows` rows of A, computes the batch gradient
/// A_bᵀ(A_b x - y_b), and applies a proximal Adagrad step. Columns of A
/// (and so coordinates of x) are partitioned across ranks; the per-
/// iteration communication is the batch-sized partial-product reduction —
/// smaller than ExtDict's min(M, L), but SGD needs many more iterations and
/// never reduces memory (it stores all of A).
struct SgdConfig {
  Real lambda = 1e-3;
  Index batch_rows = 64;  ///< the paper's batch size
  Real base_rate = 0.05;
  int max_iterations = 4000;
  /// Stop when the full objective (checked every `check_every` iterations)
  /// drops to `target_objective`; <= 0 disables the target.
  Real target_objective = -1;
  int check_every = 25;
  std::uint64_t seed = 3;
};

struct SgdResult {
  la::Vector x;
  int iterations = 0;
  bool reached_target = false;
  Real final_objective = 0;
  std::vector<std::pair<int, Real>> objective_trace;
  dist::RunStats stats;
};

/// Runs distributed SGD for LASSO on the *original* matrix A (SGD does not
/// use the transform). The objective checks' extra communication is metered
/// too — monitoring is part of the algorithm when a target is set.
[[nodiscard]] SgdResult sgd_lasso(const dist::Cluster& cluster, const Matrix& a,
                                  const la::Vector& y, const SgdConfig& config);

}  // namespace extdict::baselines
