#include "baselines/rcss.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/exd.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/qr.hpp"
#include "la/random.hpp"
#include "util/timer.hpp"

namespace extdict::baselines {

CscMatrix dense_to_csc(const Matrix& c) {
  CscMatrix::Builder builder(c.rows(), c.cols());
  for (Index j = 0; j < c.cols(); ++j) {
    for (Index i = 0; i < c.rows(); ++i) {
      if (c(i, j) != Real{0}) builder.add(i, c(i, j));
    }
    builder.commit_column();
  }
  return std::move(builder).build();
}

namespace {

// C = D⁺A for tall or wide D. Tall: one QR. Wide (L > M): the minimum-norm
// solution C = Dᵀ(DDᵀ)⁻¹A via a Cholesky of the small M x M Gram (with a
// tiny ridge if the sampled columns are rank-deficient).
Matrix pseudo_inverse_apply(const Matrix& d, const Matrix& a) {
  if (d.rows() >= d.cols()) {
    return la::HouseholderQr(d).solve_many(a);
  }
  Matrix ddt = la::matmul(d, d, la::Trans::kNo, la::Trans::kYes);
  Matrix w(d.rows(), a.cols());
  for (Real ridge = 0;; ridge = ridge == 0 ? 1e-10 : ridge * 100) {
    for (Index i = 0; i < ddt.rows(); ++i) ddt(i, i) += ridge;
    try {
      const la::Cholesky chol(ddt);
      const Index cols = a.cols();
#pragma omp parallel for schedule(static) default(none) \
    shared(a, w, chol, cols) if (cols > 8)
      for (Index j = 0; j < cols; ++j) {
        la::Vector col(a.col(j).begin(), a.col(j).end());
        chol.solve_in_place(col);
        std::copy(col.begin(), col.end(), w.col(j).begin());
      }
      break;
    } catch (const std::domain_error&) {
      if (ridge > 1e-2) throw;
    }
  }
  return la::matmul(d, w, la::Trans::kYes, la::Trans::kNo);
}

}  // namespace

TransformResult rcss_transform(const Matrix& a, Index l, std::uint64_t seed) {
  if (l <= 0 || l > a.cols()) {
    throw std::invalid_argument("rcss_transform: L out of range");
  }
  util::Timer timer;
  la::Rng rng(seed);
  const auto atoms = rng.sample_without_replacement(a.cols(), l);

  TransformResult result;
  result.method = "RCSS";
  result.dense_coefficients = true;
  result.dictionary = a.select_columns(atoms);
  result.coefficients = dense_to_csc(pseudo_inverse_apply(result.dictionary, a));
  result.transform_ms = timer.elapsed_ms();
  result.transformation_error =
      core::transformation_error(a, result.dictionary, result.coefficients);
  return result;
}

TransformResult rcss_transform_for_error(const Matrix& a, Real tolerance,
                                         std::uint64_t seed) {
  // Geometric growth to bracket the feasible region...
  Index lo = 0;  // largest known-infeasible L
  Index l = std::max<Index>(8, a.cols() / 64);
  TransformResult best;
  bool found = false;
  while (l <= a.cols()) {
    TransformResult r = rcss_transform(a, l, seed);
    if (r.transformation_error <= tolerance) {
      best = std::move(r);
      found = true;
      break;
    }
    lo = l;
    if (l == a.cols()) break;
    l = std::min(a.cols(), l * 2);
  }
  if (!found) {
    throw std::runtime_error("rcss_transform_for_error: tolerance unreachable");
  }
  // ...then a short binary refinement for the smallest workable L.
  Index hi = best.dictionary.cols();
  while (hi - lo > std::max<Index>(8, hi / 10)) {
    const Index mid = lo + (hi - lo) / 2;
    TransformResult r = rcss_transform(a, mid, seed);
    if (r.transformation_error <= tolerance) {
      best = std::move(r);
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return best;
}

}  // namespace extdict::baselines
