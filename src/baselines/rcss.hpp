#pragma once

#include <cstdint>

#include "baselines/transform_result.hpp"

namespace extdict::baselines {

/// Randomized Column Subset Selection (the paper's RCSS baseline [17], [32]):
/// sample L columns of A uniformly at random into D and project the data
/// densely, C = D⁺A (least squares). Unlike ExD there is no sparsity and no
/// platform knob — for a target error the method fixes its output.
[[nodiscard]] TransformResult rcss_transform(const Matrix& a, Index l,
                                             std::uint64_t seed);

/// RCSS sized for an error target: grows L geometrically (then binary
/// refines) until ||A - DC||_F <= tolerance * ||A||_F, mirroring how an
/// error-driven user would run it. Returns the smallest tested L that meets
/// the tolerance.
[[nodiscard]] TransformResult rcss_transform_for_error(const Matrix& a,
                                                       Real tolerance,
                                                       std::uint64_t seed);

}  // namespace extdict::baselines
