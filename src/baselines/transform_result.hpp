#pragma once

#include <cstdint>
#include <string>

#include "la/csc_matrix.hpp"
#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::baselines {

using la::CscMatrix;
using la::Index;
using la::Matrix;
using la::Real;

/// Common shape of every dimensionality-reduction baseline's output so the
/// framework can swap transformations freely (§VIII-A "each of these
/// transformations can substitute ExD within our proposed framework").
/// Dense methods (RCSS, oASIS) produce a fully dense coefficient matrix,
/// stored in the same CSC container for uniform downstream handling — their
/// memory numbers in Table III reflect that density.
struct TransformResult {
  std::string method;
  Matrix dictionary;       ///< M x L
  CscMatrix coefficients;  ///< L x N
  /// True for methods whose C is dense by construction (RCSS, oASIS): their
  /// footprint is charged as a dense L x N array, which is what such an
  /// implementation would actually store (cheaper than CSC on dense data).
  bool dense_coefficients = false;
  Real transformation_error = 0;
  double transform_ms = 0;

  [[nodiscard]] std::uint64_t memory_words() const noexcept {
    const std::uint64_t c_words =
        dense_coefficients
            ? static_cast<std::uint64_t>(coefficients.rows()) *
                  static_cast<std::uint64_t>(coefficients.cols())
            : coefficients.memory_words();
    return dictionary.memory_words() + c_words;
  }
  [[nodiscard]] Index dictionary_size() const noexcept {
    return dictionary.cols();
  }
};

/// Dense L x N coefficients -> CSC (drops exact zeros only).
[[nodiscard]] CscMatrix dense_to_csc(const Matrix& c);

}  // namespace extdict::baselines
