#pragma once

#include <cstdint>

#include "baselines/transform_result.hpp"

namespace extdict::baselines {

/// RankMap (the authors' earlier system [28], [39]): like ExD it produces a
/// sparse coefficient matrix by OMP against a column-sampled dictionary,
/// but its dictionary size is chosen purely by the error criterion — the
/// smallest L that meets the tolerance — with no platform awareness. That
/// is exactly the paper's characterisation: "the error-based criteria for
/// selecting the transformation basis in RankMap prevents it from creating
/// versatile and over-complete dictionaries."
[[nodiscard]] TransformResult rankmap_transform(const Matrix& a, Real tolerance,
                                                std::uint64_t seed);

}  // namespace extdict::baselines
