#pragma once

#include <cstdint>

#include "baselines/transform_result.hpp"

namespace extdict::baselines {

/// Adaptive column sampling in the spirit of oASIS [22]: greedily add the
/// column with the largest residual energy after projection onto the span
/// of the columns selected so far. Residuals are maintained incrementally
/// against an orthonormalised basis, so the method never forms the N x N
/// Gram matrix (the memory-efficiency property the paper credits oASIS
/// with) and runs in O(M·N) per selected column.
///
/// Selection stops when the *projection* residual meets `tolerance` (or
/// `max_l` columns are chosen); the final coefficients are the dense least
/// squares C = D⁺A, like RCSS.
[[nodiscard]] TransformResult oasis_transform(const Matrix& a, Real tolerance,
                                              std::uint64_t seed,
                                              Index max_l = 0);

}  // namespace extdict::baselines
