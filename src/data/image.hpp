#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "la/random.hpp"
#include "la/types.hpp"

namespace extdict::data {

using la::Index;
using la::Matrix;
using la::Real;

/// Grayscale image with values nominally in [0, 1].
struct Image {
  Index width = 0;
  Index height = 0;
  std::vector<Real> pixels;  // row-major

  Image() = default;
  Image(Index w, Index h) : width(w), height(h), pixels(static_cast<std::size_t>(w * h), 0) {}

  Real& at(Index x, Index y) noexcept {
    return pixels[static_cast<std::size_t>(y * width + x)];
  }
  [[nodiscard]] Real at(Index x, Index y) const noexcept {
    return pixels[static_cast<std::size_t>(y * width + x)];
  }

  /// Bilinear sample at a fractional position, clamped to the border.
  [[nodiscard]] Real sample(Real x, Real y) const noexcept;
};

/// Smooth synthetic scene: Gaussian noise low-passed by repeated box blurs,
/// then range-normalised to [0, 1]. Smoothness gives image patches their
/// union-of-low-rank structure.
[[nodiscard]] Image make_smooth_scene(Index width, Index height, la::Rng& rng,
                                      int blur_passes = 6, Index blur_radius = 3);

/// Adds N(0, stddev) noise to every pixel (no clamping; callers compare in
/// the linear domain).
void add_gaussian_noise(Image& img, Real stddev, la::Rng& rng);

/// Peak signal-to-noise ratio in dB: 10 log10(MAX² / MSE) where MAX is the
/// reference image's peak value (the paper's §VIII-D2 metric).
[[nodiscard]] Real psnr_db(const std::vector<Real>& reference,
                           const std::vector<Real>& reconstructed);

/// Extracts `count` square patches of side `patch` at random positions; each
/// patch becomes one column (length patch²) of the result.
[[nodiscard]] Matrix extract_patches(const Image& img, Index patch, Index count,
                                     la::Rng& rng);

/// Binary PGM (P5, 8-bit) I/O for eyeballing example outputs.
void write_pgm(const Image& img, const std::string& path);
[[nodiscard]] Image read_pgm(const std::string& path);

}  // namespace extdict::data
