#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "la/random.hpp"
#include "la/types.hpp"

namespace extdict::data {

using la::Index;
using la::Matrix;
using la::Real;

/// Parameters of the union-of-subspaces signal model (§II-B, §V-B): columns
/// live on `num_subspaces` subspaces of dimension `subspace_dim` inside an
/// `ambient_dim`-dimensional space, optionally corrupted by dense noise and
/// a few outlier columns. This is the structural property ExD exploits.
struct SubspaceModelConfig {
  Index ambient_dim = 100;   ///< M
  Index num_columns = 1000;  ///< N
  Index num_subspaces = 8;   ///< N_s
  Index subspace_dim = 5;    ///< K_i (uniform across subspaces)
  Real noise_stddev = 0;     ///< additive Gaussian noise on each entry
  Real outlier_fraction = 0; ///< fraction of columns replaced by full-rank noise
  /// Number of basis directions shared between consecutive subspaces; > 0
  /// produces the "denser geometry" of the Cancer Cells set.
  Index shared_dims = 0;
  std::uint64_t seed = 1;
};

/// A generated dataset plus its ground truth: per-column subspace membership
/// (-1 for outliers) and the orthonormal basis of each subspace.
struct SubspaceData {
  Matrix a;  ///< ambient_dim x num_columns, unit-norm columns
  std::vector<Index> membership;
  std::vector<Matrix> bases;
};

/// Samples the model. Columns are generated subspace-round-robin and then
/// shuffled; every column is normalised (the ExD preprocessing contract).
[[nodiscard]] SubspaceData make_union_of_subspaces(const SubspaceModelConfig& config);

/// Numerical rank of the matrix (via QR diagonal) — used by tests to verify
/// generators produce genuinely full-rank data that nevertheless has sparse
/// union-of-subspace structure, like the paper's Fig. 2 example.
[[nodiscard]] Index numerical_rank(const Matrix& a, Real rel_tol = 1e-8);

}  // namespace extdict::data
