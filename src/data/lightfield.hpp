#pragma once

#include <cstdint>

#include "data/image.hpp"
#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::data {

/// Synthetic light-field dataset (the paper's "Light Field" set [35]).
///
/// A light-field camera array captures the same scene from a `views x views`
/// grid of viewpoints; an 8x8 patch observed from every view forms one
/// column of length patch² · views². Because the views are near-shifted
/// copies of each other, these columns live on a union of low-rank
/// subspaces — exactly the structure ExD exploits. The generator renders a
/// smooth random scene and samples each view with a per-view disparity
/// shift plus slight per-view gain, then adds sensor noise.
struct LightFieldConfig {
  Index scene_size = 96;    ///< square scene resolution
  Index views = 5;          ///< camera grid side (paper: 5x5)
  Index patch = 8;          ///< spatial patch side (paper: 8x8)
  Index num_patches = 2000; ///< N, number of columns
  Real disparity = 1.3;     ///< pixel shift per view step (depth proxy)
  Real view_gain_jitter = 0.02;
  Real noise_stddev = 0.005;
  std::uint64_t seed = 7;
};

/// Result: the data matrix plus the scene (kept for the imaging apps).
struct LightFieldData {
  Matrix a;     ///< (patch²·views²) x num_patches, unit-norm columns
  Image scene;
  LightFieldConfig config;

  /// Row indices of `a` that belong to the central `sub x sub` camera
  /// subset — the paper's super-resolution setup derives its observation
  /// matrix by restricting A_lf to a 3x3 camera subset (576 of 1600 rows).
  [[nodiscard]] std::vector<Index> view_subset_rows(Index sub) const;
};

[[nodiscard]] LightFieldData make_light_field(const LightFieldConfig& config);

}  // namespace extdict::data
