#include "data/hyperspectral.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/random.hpp"

namespace extdict::data {

namespace {

// Smooth positive spectrum: sum of a few Gaussian absorption bumps over a
// gentle baseline.
la::Vector make_endmember(Index bands, la::Rng& rng) {
  la::Vector s(static_cast<std::size_t>(bands), Real{0});
  const Real base = rng.uniform(0.2, 0.6);
  const Real slope = rng.uniform(-0.3, 0.3);
  const int bumps = static_cast<int>(rng.uniform_index(3, 7));
  std::vector<Real> centers, widths, heights;
  for (int b = 0; b < bumps; ++b) {
    centers.push_back(rng.uniform(0, static_cast<Real>(bands - 1)));
    widths.push_back(rng.uniform(static_cast<Real>(bands) / 40,
                                 static_cast<Real>(bands) / 8));
    heights.push_back(rng.uniform(-0.4, 0.8));
  }
  for (Index i = 0; i < bands; ++i) {
    const Real t = static_cast<Real>(i) / static_cast<Real>(bands - 1);
    Real v = base + slope * t;
    for (int b = 0; b < bumps; ++b) {
      const Real d = (static_cast<Real>(i) - centers[static_cast<std::size_t>(b)]) /
                     widths[static_cast<std::size_t>(b)];
      v += heights[static_cast<std::size_t>(b)] * std::exp(-d * d / 2);
    }
    s[static_cast<std::size_t>(i)] = std::max(Real{0.01}, v);
  }
  return s;
}

}  // namespace

HyperspectralData make_hyperspectral(const HyperspectralConfig& config) {
  if (config.mix_size > config.num_endmembers) {
    throw std::invalid_argument("make_hyperspectral: mix_size > endmembers");
  }
  la::Rng rng(config.seed);

  HyperspectralData out;
  out.endmembers = Matrix(config.bands, config.num_endmembers);
  for (Index e = 0; e < config.num_endmembers; ++e) {
    const auto spec = make_endmember(config.bands, rng);
    std::copy(spec.begin(), spec.end(), out.endmembers.col(e).begin());
  }

  // Each region picks a palette of `mix_size` materials; pixels of a region
  // mix that palette with random abundances (sum-to-one), so all pixels of a
  // region share a mix_size-dimensional subspace.
  std::vector<std::vector<Index>> palettes;
  palettes.reserve(static_cast<std::size_t>(config.num_regions));
  for (Index r = 0; r < config.num_regions; ++r) {
    palettes.push_back(
        rng.sample_without_replacement(config.num_endmembers, config.mix_size));
  }

  out.a = Matrix(config.bands, config.num_pixels);
  la::Vector abundances(static_cast<std::size_t>(config.mix_size));
  for (Index j = 0; j < config.num_pixels; ++j) {
    const auto& palette =
        palettes[static_cast<std::size_t>(rng.uniform_index(0, config.num_regions - 1))];
    // Dirichlet-ish abundances via normalised exponentials.
    Real total = 0;
    for (Real& w : abundances) {
      w = -std::log(std::max(rng.uniform(), Real{1e-12}));
      total += w;
    }
    auto col = out.a.col(j);
    std::fill(col.begin(), col.end(), Real{0});
    for (Index k = 0; k < config.mix_size; ++k) {
      const Real w = abundances[static_cast<std::size_t>(k)] / total;
      const auto em = out.endmembers.col(palette[static_cast<std::size_t>(k)]);
      for (Index i = 0; i < config.bands; ++i) {
        col[static_cast<std::size_t>(i)] += w * em[static_cast<std::size_t>(i)];
      }
    }
    if (config.noise_stddev > 0) {
      for (Real& v : col) v += rng.gaussian(0, config.noise_stddev);
    }
  }

  out.a.normalize_columns();
  return out;
}

}  // namespace extdict::data
