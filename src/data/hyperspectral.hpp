#pragma once

#include <cstdint>

#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::data {

using la::Index;
using la::Matrix;
using la::Real;

/// Synthetic hyperspectral dataset (the paper's "Salina" scene [34]).
///
/// Hyperspectral pixels follow the linear mixing model: each spectrum is a
/// non-negative combination of a handful of material "endmember" spectra.
/// Pixels mixing the same few materials therefore share a low-dimensional
/// subspace — a textbook union-of-subspaces instance. The generator builds
/// `num_endmembers` smooth spectra and mixes `mix_size` of them per pixel
/// with region-coherent material choices.
struct HyperspectralConfig {
  Index bands = 200;        ///< M (Salina: 204)
  Index num_pixels = 4000;  ///< N (Salina: 54129, scaled down)
  Index num_endmembers = 12;
  Index mix_size = 3;       ///< materials blended per pixel
  Index num_regions = 16;   ///< spatial regions sharing a material palette
  Real noise_stddev = 0.003;
  std::uint64_t seed = 11;
};

struct HyperspectralData {
  Matrix a;           ///< bands x num_pixels, unit-norm columns
  Matrix endmembers;  ///< bands x num_endmembers
};

[[nodiscard]] HyperspectralData make_hyperspectral(const HyperspectralConfig& config);

}  // namespace extdict::data
