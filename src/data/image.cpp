#include "data/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace extdict::data {

Real Image::sample(Real x, Real y) const noexcept {
  const Real cx = std::clamp(x, Real{0}, static_cast<Real>(width - 1));
  const Real cy = std::clamp(y, Real{0}, static_cast<Real>(height - 1));
  const Index x0 = static_cast<Index>(cx);
  const Index y0 = static_cast<Index>(cy);
  const Index x1 = std::min(x0 + 1, width - 1);
  const Index y1 = std::min(y0 + 1, height - 1);
  const Real fx = cx - static_cast<Real>(x0);
  const Real fy = cy - static_cast<Real>(y0);
  const Real top = at(x0, y0) * (1 - fx) + at(x1, y0) * fx;
  const Real bottom = at(x0, y1) * (1 - fx) + at(x1, y1) * fx;
  return top * (1 - fy) + bottom * fy;
}

Image make_smooth_scene(Index width, Index height, la::Rng& rng,
                        int blur_passes, Index blur_radius) {
  Image img(width, height);
  rng.fill_gaussian(img.pixels);

  // Separable box blur, repeated: approximates a Gaussian low-pass.
  std::vector<Real> tmp(img.pixels.size());
  for (int pass = 0; pass < blur_passes; ++pass) {
    // Horizontal.
    for (Index y = 0; y < height; ++y) {
      for (Index x = 0; x < width; ++x) {
        Real s = 0;
        Index n = 0;
        for (Index dx = -blur_radius; dx <= blur_radius; ++dx) {
          const Index xx = x + dx;
          if (xx < 0 || xx >= width) continue;
          s += img.at(xx, y);
          ++n;
        }
        tmp[static_cast<std::size_t>(y * width + x)] = s / static_cast<Real>(n);
      }
    }
    img.pixels = tmp;
    // Vertical.
    for (Index y = 0; y < height; ++y) {
      for (Index x = 0; x < width; ++x) {
        Real s = 0;
        Index n = 0;
        for (Index dy = -blur_radius; dy <= blur_radius; ++dy) {
          const Index yy = y + dy;
          if (yy < 0 || yy >= height) continue;
          s += img.at(x, yy);
          ++n;
        }
        tmp[static_cast<std::size_t>(y * width + x)] = s / static_cast<Real>(n);
      }
    }
    img.pixels = tmp;
  }

  const auto [lo_it, hi_it] =
      std::minmax_element(img.pixels.begin(), img.pixels.end());
  const Real lo = *lo_it;  // copy before mutating the buffer they point into
  const Real range = *hi_it - lo;
  if (range > 0) {
    for (Real& v : img.pixels) v = (v - lo) / range;
  }
  return img;
}

void add_gaussian_noise(Image& img, Real stddev, la::Rng& rng) {
  for (Real& v : img.pixels) v += rng.gaussian(0, stddev);
}

Real psnr_db(const std::vector<Real>& reference,
             const std::vector<Real>& reconstructed) {
  if (reference.size() != reconstructed.size() || reference.empty()) {
    throw std::invalid_argument("psnr_db: size mismatch");
  }
  Real mse = 0;
  Real peak = 0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const Real d = reference[i] - reconstructed[i];
    mse += d * d;
    peak = std::max(peak, std::abs(reference[i]));
  }
  mse /= static_cast<Real>(reference.size());
  if (mse == Real{0}) return std::numeric_limits<Real>::infinity();
  if (peak == Real{0}) peak = 1;
  return Real{10} * std::log10(peak * peak / mse);
}

Matrix extract_patches(const Image& img, Index patch, Index count, la::Rng& rng) {
  if (patch > img.width || patch > img.height) {
    throw std::invalid_argument("extract_patches: patch larger than image");
  }
  Matrix out(patch * patch, count);
  for (Index j = 0; j < count; ++j) {
    const Index x0 = rng.uniform_index(0, img.width - patch);
    const Index y0 = rng.uniform_index(0, img.height - patch);
    auto col = out.col(j);
    Index k = 0;
    for (Index dy = 0; dy < patch; ++dy) {
      for (Index dx = 0; dx < patch; ++dx) {
        col[static_cast<std::size_t>(k++)] = img.at(x0 + dx, y0 + dy);
      }
    }
  }
  return out;
}

void write_pgm(const Image& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
  out << "P5\n" << img.width << ' ' << img.height << "\n255\n";
  for (Real v : img.pixels) {
    const int q = static_cast<int>(std::lround(std::clamp(v, Real{0}, Real{1}) * 255));
    out.put(static_cast<char>(q));
  }
}

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_pgm: cannot open " + path);
  std::string magic;
  in >> magic;
  if (magic != "P5") throw std::runtime_error("read_pgm: not a binary PGM");
  Index w = 0, h = 0;
  int maxval = 0;
  in >> w >> h >> maxval;
  in.get();  // single whitespace after header
  if (w <= 0 || h <= 0 || maxval <= 0 || maxval > 255) {
    throw std::runtime_error("read_pgm: bad header");
  }
  Image img(w, h);
  std::vector<char> raw(static_cast<std::size_t>(w * h));
  in.read(raw.data(), static_cast<std::streamsize>(raw.size()));
  if (!in) throw std::runtime_error("read_pgm: truncated payload");
  for (std::size_t i = 0; i < raw.size(); ++i) {
    img.pixels[i] = static_cast<Real>(static_cast<unsigned char>(raw[i])) /
                    static_cast<Real>(maxval);
  }
  return img;
}

}  // namespace extdict::data
