#include "data/datasets.hpp"

#include <stdexcept>

#include "data/cells.hpp"
#include "data/hyperspectral.hpp"
#include "data/lightfield.hpp"

namespace extdict::data {

const std::vector<DatasetSpec>& all_datasets() {
  static const std::vector<DatasetSpec> specs = {
      {DatasetId::kSalina, "Salina", "PCA (Power method)", "204 x 54129",
       "87.9 MB", 200, 4000, {15, 25, 40, 60, 100, 160, 260, 400, 640, 1000}},
      {DatasetId::kCancerCells, "Cancer Cells", "PCA (Power method)",
       "11024 x 110196", "911.7 MB", 500, 3000,
       {60, 100, 160, 240, 320, 400, 640}},
      {DatasetId::kLightField, "Light Field",
       "Denoising / Super-Resolution (gradient descent)", "18496 x 27000",
       "4.3 GB", 576, 2000, {8, 15, 25, 40, 80, 140, 240, 400, 640}},
  };
  return specs;
}

const DatasetSpec& dataset_spec(DatasetId id) {
  for (const auto& spec : all_datasets()) {
    if (spec.id == id) return spec;
  }
  throw std::invalid_argument("dataset_spec: unknown dataset");
}

la::Matrix make_dataset(DatasetId id, Scale scale) {
  const bool bench = scale == Scale::kBench;
  switch (id) {
    case DatasetId::kSalina: {
      HyperspectralConfig config;
      config.bands = bench ? 200 : 60;
      config.num_pixels = bench ? 4000 : 400;
      config.num_endmembers = bench ? 28 : 6;
      config.mix_size = bench ? 4 : 3;
      config.num_regions = bench ? 60 : 6;
      config.noise_stddev = bench ? 0.0005 : 0.003;
      return make_hyperspectral(config).a;
    }
    case DatasetId::kCancerCells: {
      CellsConfig config;
      config.features = 500;
      config.num_cells = 3000;
      config.num_phenotypes = 20;
      config.phenotype_dim = 12;
      config.shared_dims = 5;
      config.noise_stddev = 0.0003;
      config.outlier_fraction = 0.01;
      if (!bench) {
        config.features = 80;
        config.num_cells = 400;
        config.num_phenotypes = 8;
        config.phenotype_dim = 6;
        config.shared_dims = 2;
        config.noise_stddev = 0.02;
        config.outlier_fraction = 0.02;
      }
      return make_cells(config).a;
    }
    case DatasetId::kLightField: {
      LightFieldConfig config;
      config.views = 3;  // 3x3 grid keeps M = 576 for the sweep benches
      config.num_patches = bench ? 2000 : 300;
      if (bench) {
        config.scene_size = 160;  // more texture -> richer patch structure
        config.disparity = 2.5;
        config.view_gain_jitter = 0.05;
        config.noise_stddev = 0.0003;
      } else {
        config.scene_size = 64;
        config.patch = 6;
      }
      return make_light_field(config).a;
    }
  }
  throw std::invalid_argument("make_dataset: unknown dataset");
}

}  // namespace extdict::data
