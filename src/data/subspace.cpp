#include "data/subspace.hpp"

#include <algorithm>
#include <stdexcept>

#include "la/blas.hpp"
#include "la/qr.hpp"

namespace extdict::data {

namespace {

// Orthonormal basis with `shared` leading directions copied from `prev`
// (when requested) and the rest sampled fresh; Gram-Schmidt against the
// shared block keeps the basis orthonormal.
Matrix make_basis(Index ambient, Index dim, Index shared, const Matrix* prev,
                  la::Rng& rng) {
  Matrix b = rng.gaussian_matrix(ambient, dim);
  if (prev && shared > 0) {
    const Index s = std::min({shared, dim, prev->cols()});
    for (Index j = 0; j < s; ++j) {
      auto dst = b.col(j);
      auto src = prev->col(j);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  // Modified Gram-Schmidt, two passes.
  for (Index j = 0; j < b.cols(); ++j) {
    auto cj = b.col(j);
    for (int pass = 0; pass < 2; ++pass) {
      for (Index k = 0; k < j; ++k) {
        const Real r = la::dot(b.col(k), cj);
        la::axpy(-r, b.col(k), cj);
      }
    }
    const Real norm = la::nrm2(cj);
    if (norm < 1e-12) {
      throw std::runtime_error("make_basis: degenerate direction");
    }
    la::scal(1 / norm, cj);
  }
  return b;
}

}  // namespace

SubspaceData make_union_of_subspaces(const SubspaceModelConfig& config) {
  if (config.subspace_dim > config.ambient_dim) {
    throw std::invalid_argument("make_union_of_subspaces: K > M");
  }
  la::Rng rng(config.seed);

  SubspaceData out;
  out.bases.reserve(static_cast<std::size_t>(config.num_subspaces));
  for (Index s = 0; s < config.num_subspaces; ++s) {
    const Matrix* prev = s > 0 ? &out.bases.back() : nullptr;
    out.bases.push_back(make_basis(config.ambient_dim, config.subspace_dim,
                                   config.shared_dims, prev, rng));
  }

  out.a = Matrix(config.ambient_dim, config.num_columns);
  out.membership.assign(static_cast<std::size_t>(config.num_columns), -1);

  const Index num_outliers = static_cast<Index>(
      config.outlier_fraction * static_cast<Real>(config.num_columns));
  la::Vector coeffs(static_cast<std::size_t>(config.subspace_dim));

  for (Index j = 0; j < config.num_columns; ++j) {
    auto col = out.a.col(j);
    if (j < num_outliers) {
      rng.fill_gaussian(col);
    } else {
      const Index s = j % config.num_subspaces;
      out.membership[static_cast<std::size_t>(j)] = s;
      rng.fill_gaussian(coeffs);
      std::fill(col.begin(), col.end(), Real{0});
      la::gemv(1, out.bases[static_cast<std::size_t>(s)], coeffs, 0, col);
    }
    if (config.noise_stddev > 0) {
      for (Real& v : col) v += rng.gaussian(0, config.noise_stddev);
    }
  }

  // Shuffle columns so subsets of the data are representative (the §VII
  // subset-estimation property relies on exchangeability).
  const auto perm = rng.permutation(config.num_columns);
  Matrix shuffled(out.a.rows(), out.a.cols());
  std::vector<Index> shuffled_membership(out.membership.size());
  for (Index j = 0; j < config.num_columns; ++j) {
    const Index src = perm[static_cast<std::size_t>(j)];
    auto s = out.a.col(src);
    std::copy(s.begin(), s.end(), shuffled.col(j).begin());
    shuffled_membership[static_cast<std::size_t>(j)] =
        out.membership[static_cast<std::size_t>(src)];
  }
  out.a = std::move(shuffled);
  out.membership = std::move(shuffled_membership);

  out.a.normalize_columns();
  return out;
}

Index numerical_rank(const Matrix& a, Real rel_tol) {
  if (a.rows() >= a.cols()) return la::HouseholderQr(a).rank(rel_tol);
  return la::HouseholderQr(a.transposed()).rank(rel_tol);
}

}  // namespace extdict::data
