#include "data/cells.hpp"

namespace extdict::data {

SubspaceData make_cells(const CellsConfig& config) {
  SubspaceModelConfig model;
  model.ambient_dim = config.features;
  model.num_columns = config.num_cells;
  model.num_subspaces = config.num_phenotypes;
  model.subspace_dim = config.phenotype_dim;
  model.shared_dims = config.shared_dims;
  model.noise_stddev = config.noise_stddev;
  model.outlier_fraction = config.outlier_fraction;
  model.seed = config.seed;
  return make_union_of_subspaces(model);
}

}  // namespace extdict::data
