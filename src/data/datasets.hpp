#pragma once

#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::data {

/// The three evaluation datasets of Table I, backed by the synthetic
/// generators (see DESIGN.md §2 for the substitution rationale).
enum class DatasetId { kSalina, kCancerCells, kLightField };

/// Generation scale: tests use tiny instances, benches the scaled-down
/// evaluation instances (the paper's originals are listed in `paper_dims`).
enum class Scale { kTest, kBench };

struct DatasetSpec {
  DatasetId id;
  std::string name;
  std::string application;       ///< what the paper uses it for
  std::string paper_dims;        ///< M x N in the paper
  std::string paper_size;        ///< on-disk size in the paper
  la::Index bench_rows;
  la::Index bench_cols;
  /// Dictionary sizes swept in the figures (scaled to our N).
  std::vector<la::Index> l_grid;
};

[[nodiscard]] const std::vector<DatasetSpec>& all_datasets();

[[nodiscard]] const DatasetSpec& dataset_spec(DatasetId id);

/// Generates the dataset (unit-norm columns) at the requested scale.
[[nodiscard]] la::Matrix make_dataset(DatasetId id, Scale scale);

}  // namespace extdict::data
