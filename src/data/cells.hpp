#pragma once

#include <cstdint>

#include "data/subspace.hpp"

namespace extdict::data {

/// Synthetic cancer-cell morphology dataset (the paper's "Cancer Cells"
/// set, MD Anderson tumor morphologies).
///
/// The paper observes this set has a "denser geometry" than the imaging
/// sets: ExD needs more OMP iterations per column for the same ε (Table II
/// discussion, Fig. 5 middle panel). We reproduce that by sampling a
/// union-of-subspaces with more subspaces, higher intrinsic dimension,
/// shared directions between clusters (cell phenotypes blend into each
/// other), a few percent of outlier columns, and stronger dense noise.
struct CellsConfig {
  Index features = 600;    ///< M (paper: 11024, scaled)
  Index num_cells = 3600;  ///< N (paper: 110196, scaled)
  Index num_phenotypes = 24;
  Index phenotype_dim = 14;
  Index shared_dims = 5;
  Real noise_stddev = 0.02;
  Real outlier_fraction = 0.02;
  std::uint64_t seed = 13;
};

[[nodiscard]] SubspaceData make_cells(const CellsConfig& config);

}  // namespace extdict::data
