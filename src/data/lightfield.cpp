#include "data/lightfield.hpp"

#include <stdexcept>

#include "la/random.hpp"

namespace extdict::data {

std::vector<Index> LightFieldData::view_subset_rows(Index sub) const {
  const Index views = config.views;
  const Index patch = config.patch;
  if (sub > views) {
    throw std::invalid_argument("view_subset_rows: subset larger than grid");
  }
  // Rows are laid out view-major: view (u, v) occupies the patch²-row block
  // at index (v * views + u). The subset is the centred sub x sub window.
  const Index off = (views - sub) / 2;
  std::vector<Index> rows;
  rows.reserve(static_cast<std::size_t>(sub * sub * patch * patch));
  for (Index v = 0; v < sub; ++v) {
    for (Index u = 0; u < sub; ++u) {
      const Index block = (v + off) * views + (u + off);
      for (Index k = 0; k < patch * patch; ++k) {
        rows.push_back(block * patch * patch + k);
      }
    }
  }
  return rows;
}

LightFieldData make_light_field(const LightFieldConfig& config) {
  la::Rng rng(config.seed);
  LightFieldData out;
  out.config = config;
  out.scene = make_smooth_scene(config.scene_size, config.scene_size, rng);

  const Index views = config.views;
  const Index patch = config.patch;
  const Index m = patch * patch * views * views;
  out.a = Matrix(m, config.num_patches);

  // Per-view multiplicative gain (vignetting / exposure jitter) — keeps the
  // views correlated but not identical.
  std::vector<Real> gain(static_cast<std::size_t>(views * views), Real{1});
  for (Real& g : gain) g += rng.gaussian(0, config.view_gain_jitter);

  const Real margin =
      config.disparity * static_cast<Real>(views) + static_cast<Real>(patch) + 2;
  if (static_cast<Real>(config.scene_size) <= 2 * margin) {
    throw std::invalid_argument("make_light_field: scene too small for patches");
  }

  const Real center = static_cast<Real>(views - 1) / 2;
  for (Index j = 0; j < config.num_patches; ++j) {
    const Real x0 = rng.uniform(margin, static_cast<Real>(config.scene_size) - margin);
    const Real y0 = rng.uniform(margin, static_cast<Real>(config.scene_size) - margin);
    // Per-patch depth determines how strongly views shift.
    const Real depth = rng.uniform(0.5, 1.5);
    auto col = out.a.col(j);
    Index k = 0;
    for (Index v = 0; v < views; ++v) {
      for (Index u = 0; u < views; ++u) {
        const Real du = (static_cast<Real>(u) - center) * config.disparity * depth;
        const Real dv = (static_cast<Real>(v) - center) * config.disparity * depth;
        const Real g = gain[static_cast<std::size_t>(v * views + u)];
        for (Index py = 0; py < patch; ++py) {
          for (Index px = 0; px < patch; ++px) {
            Real value = g * out.scene.sample(x0 + static_cast<Real>(px) + du,
                                              y0 + static_cast<Real>(py) + dv);
            if (config.noise_stddev > 0) {
              value += rng.gaussian(0, config.noise_stddev);
            }
            col[static_cast<std::size_t>(k++)] = value;
          }
        }
      }
    }
  }

  out.a.normalize_columns();
  return out;
}

}  // namespace extdict::data
