#pragma once

#include <memory>

#include "core/exd.hpp"
#include "data/image.hpp"
#include "dist/platform.hpp"

namespace extdict::apps {

using data::Image;
using la::Index;
using la::Matrix;
using la::Real;

/// Full-image patch-based restoration on top of ExtDict — the production
/// form of the paper's denoising and super-resolution applications: a
/// dictionary of clean patches is ExD-transformed once; restoring an image
/// then slides a window over it, solves a small LASSO per patch on the
/// transformed Gram, and blends the overlapping reconstructions.
///
/// Patch means are removed before coding and restored after (the DC
/// component carries no structure and would otherwise dominate every code).
struct PatchPipelineConfig {
  Index patch = 8;             ///< window side
  Index stride = 4;            ///< window step (< patch -> overlap-averaging)
  Real lambda = 5e-4;          ///< LASSO weight
  Real tolerance = 0.1;        ///< ExD transformation error budget
  int lasso_iterations = 150;  ///< per-patch solver budget
  std::uint64_t seed = 1;
};

/// Denoiser: train on clean patches, restore noisy images.
class PatchDenoiser {
 public:
  /// `clean_patches`: patch² x N matrix of training patches (raw intensity;
  /// the constructor centres and normalises internally). The ExD dictionary
  /// size is tuned for `platform`.
  PatchDenoiser(const Matrix& clean_patches, const dist::PlatformSpec& platform,
                const PatchPipelineConfig& config);

  ~PatchDenoiser();
  PatchDenoiser(PatchDenoiser&&) noexcept;
  PatchDenoiser& operator=(PatchDenoiser&&) noexcept;

  /// Restores a full image: sliding-window LASSO + overlap blending.
  [[nodiscard]] Image denoise(const Image& noisy) const;

  /// Denoises one raw patch signal (length patch²).
  [[nodiscard]] la::Vector denoise_patch(std::span<const Real> patch) const;

  [[nodiscard]] Index dictionary_size() const noexcept;
  [[nodiscard]] Real transform_error() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Extracts ALL patches on the stride grid (plus the right/bottom borders)
/// as columns; used for training-set construction and by the pipelines.
[[nodiscard]] Matrix extract_patch_grid(const Image& img, Index patch,
                                        Index stride);

}  // namespace extdict::apps
