#include "apps/patch_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/extdict.hpp"
#include "core/gram_operator.hpp"
#include "la/blas.hpp"
#include "solvers/lasso.hpp"

namespace extdict::apps {

namespace {

// Centres a patch (removes its mean); returns the mean.
Real centre(std::span<Real> patch) {
  Real mean = 0;
  for (const Real v : patch) mean += v;
  mean /= static_cast<Real>(patch.size());
  for (Real& v : patch) v -= mean;
  return mean;
}

// Grid positions along one axis: stride steps plus a final border-aligned
// window, so the whole image is covered.
std::vector<Index> axis_positions(Index extent, Index patch, Index stride) {
  std::vector<Index> positions;
  for (Index p = 0; p + patch <= extent; p += stride) positions.push_back(p);
  if (positions.empty() || positions.back() + patch < extent) {
    positions.push_back(extent - patch);
  }
  return positions;
}

}  // namespace

Matrix extract_patch_grid(const Image& img, Index patch, Index stride) {
  if (patch <= 0 || stride <= 0 || patch > img.width || patch > img.height) {
    throw std::invalid_argument("extract_patch_grid: bad geometry");
  }
  const auto xs = axis_positions(img.width, patch, stride);
  const auto ys = axis_positions(img.height, patch, stride);
  Matrix out(patch * patch,
             static_cast<Index>(xs.size()) * static_cast<Index>(ys.size()));
  Index column = 0;
  for (const Index y0 : ys) {
    for (const Index x0 : xs) {
      auto col = out.col(column++);
      Index k = 0;
      for (Index dy = 0; dy < patch; ++dy) {
        for (Index dx = 0; dx < patch; ++dx) {
          col[static_cast<std::size_t>(k++)] = img.at(x0 + dx, y0 + dy);
        }
      }
    }
  }
  return out;
}

struct PatchDenoiser::Impl {
  PatchPipelineConfig config;
  core::ExdResult exd;
  Real mean_scale = 1;  // average training-patch norm after centring

  [[nodiscard]] la::Vector solve_patch(std::span<const Real> raw) const {
    la::Vector work(raw.begin(), raw.end());
    const Real mean = centre(work);
    const Real norm = la::nrm2(work);
    la::Vector out(raw.size());
    if (norm < 1e-9) {
      // Flat patch: the mean is the whole story.
      std::fill(out.begin(), out.end(), mean);
      return out;
    }
    la::scal(1 / norm, work);

    // Per-call operator: the shared transform is read-only. The operator is
    // thread-safe (its scratch is mutex-guarded, see gram_operator.hpp), but
    // a thread-private instance keeps the OpenMP patch loop lock-free.
    const core::TransformedGramOperator op(exd.dictionary, exd.coefficients);
    solvers::LassoConfig lasso;
    lasso.lambda = config.lambda;
    lasso.max_iterations = config.lasso_iterations;
    lasso.tolerance = 1e-6;
    lasso.objective_every = 0;
    const auto r = solvers::lasso_solve(op, work, lasso);

    op.apply_forward(r.x, out);
    for (Real& v : out) v = v * norm + mean;
    return out;
  }
};

PatchDenoiser::PatchDenoiser(const Matrix& clean_patches,
                             const dist::PlatformSpec& platform,
                             const PatchPipelineConfig& config)
    : impl_(std::make_unique<Impl>()) {
  if (clean_patches.rows() != config.patch * config.patch) {
    throw std::invalid_argument("PatchDenoiser: training rows != patch^2");
  }
  impl_->config = config;

  // Centre + normalise the training patches (drop near-flat ones, which
  // carry no structure and would become zero columns).
  Matrix train(clean_patches.rows(), clean_patches.cols());
  Index kept = 0;
  for (Index j = 0; j < clean_patches.cols(); ++j) {
    la::Vector p(clean_patches.col(j).begin(), clean_patches.col(j).end());
    centre(p);
    const Real norm = la::nrm2(p);
    if (norm < 1e-9) continue;
    auto dst = train.col(kept++);
    for (std::size_t i = 0; i < p.size(); ++i) dst[i] = p[i] / norm;
  }
  if (kept < 8) {
    throw std::invalid_argument("PatchDenoiser: too few non-flat patches");
  }
  std::vector<Index> cols(static_cast<std::size_t>(kept));
  for (Index j = 0; j < kept; ++j) cols[static_cast<std::size_t>(j)] = j;
  const Matrix a = train.select_columns(cols);

  core::ExtDict::Options options;
  options.tolerance = config.tolerance;
  options.seed = config.seed;
  const auto engine = core::ExtDict::preprocess(a, platform, options);
  impl_->exd = engine.transform();
}

PatchDenoiser::~PatchDenoiser() = default;
PatchDenoiser::PatchDenoiser(PatchDenoiser&&) noexcept = default;
PatchDenoiser& PatchDenoiser::operator=(PatchDenoiser&&) noexcept = default;

Index PatchDenoiser::dictionary_size() const noexcept {
  return impl_->exd.dictionary.cols();
}

Real PatchDenoiser::transform_error() const noexcept {
  return impl_->exd.transformation_error;
}

la::Vector PatchDenoiser::denoise_patch(std::span<const Real> patch) const {
  if (static_cast<Index>(patch.size()) !=
      impl_->config.patch * impl_->config.patch) {
    throw std::invalid_argument("denoise_patch: wrong patch length");
  }
  return impl_->solve_patch(patch);
}

Image PatchDenoiser::denoise(const Image& noisy) const {
  const Index patch = impl_->config.patch;
  const Index stride = impl_->config.stride;
  if (patch > noisy.width || patch > noisy.height) {
    throw std::invalid_argument("denoise: image smaller than the patch");
  }
  const auto xs = axis_positions(noisy.width, patch, stride);
  const auto ys = axis_positions(noisy.height, patch, stride);

  // Flatten the window list so the per-patch solves parallelise cleanly.
  struct Window {
    Index x0, y0;
  };
  std::vector<Window> windows;
  windows.reserve(xs.size() * ys.size());
  for (const Index y0 : ys) {
    for (const Index x0 : xs) windows.push_back({x0, y0});
  }
  std::vector<la::Vector> restored(windows.size());

  const Index count = static_cast<Index>(windows.size());
#pragma omp parallel for schedule(dynamic, 4) default(none) \
    shared(noisy, windows, restored, patch, count) if (count > 1)
  for (Index w = 0; w < count; ++w) {
    const auto [x0, y0] = windows[static_cast<std::size_t>(w)];
    la::Vector raw(static_cast<std::size_t>(patch * patch));
    Index k = 0;
    for (Index dy = 0; dy < patch; ++dy) {
      for (Index dx = 0; dx < patch; ++dx) {
        raw[static_cast<std::size_t>(k++)] = noisy.at(x0 + dx, y0 + dy);
      }
    }
    restored[static_cast<std::size_t>(w)] = impl_->solve_patch(raw);
  }

  // Overlap-average the reconstructions.
  Image out(noisy.width, noisy.height);
  std::vector<Real> weight(out.pixels.size(), 0);
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const auto [x0, y0] = windows[w];
    Index k = 0;
    for (Index dy = 0; dy < patch; ++dy) {
      for (Index dx = 0; dx < patch; ++dx) {
        out.at(x0 + dx, y0 + dy) += restored[w][static_cast<std::size_t>(k++)];
        weight[static_cast<std::size_t>((y0 + dy) * out.width + (x0 + dx))] += 1;
      }
    }
  }
  for (std::size_t i = 0; i < out.pixels.size(); ++i) {
    if (weight[i] > 0) out.pixels[i] /= weight[i];
  }
  return out;
}

}  // namespace extdict::apps
