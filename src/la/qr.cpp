#include "la/qr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "la/blas.hpp"
#include "util/contracts.hpp"

namespace extdict::la {

HouseholderQr::HouseholderQr(Matrix a) : qr_(std::move(a)) {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  EXTDICT_REQUIRE_SHAPE(m >= n,
                        "HouseholderQr: requires rows >= cols, got " +
                            std::to_string(m) + "x" + std::to_string(n));
  EXTDICT_CHECK_FINITE(
      std::span<const Real>(qr_.data(), static_cast<std::size_t>(qr_.size())),
      "HouseholderQr: input matrix");
  beta_.assign(static_cast<std::size_t>(n), Real{0});

  for (Index k = 0; k < n; ++k) {
    // Build the Householder vector for column k below row k.
    Real norm = 0;
    for (Index i = k; i < m; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == Real{0}) continue;  // column already zero below diagonal

    const Real alpha = qr_(k, k) >= 0 ? -norm : norm;
    const Real v0 = qr_(k, k) - alpha;
    qr_(k, k) = alpha;
    // Store v (scaled so v[0] = 1) below the diagonal.
    for (Index i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    beta_[static_cast<std::size_t>(k)] = -v0 / alpha;

    // Apply the reflector to trailing columns.
    for (Index j = k + 1; j < n; ++j) {
      Real s = qr_(k, j);
      for (Index i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= beta_[static_cast<std::size_t>(k)];
      qr_(k, j) -= s;
      for (Index i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

// extdict-lint: allow(missing-shape-contract) internal helper, caller-validated
void HouseholderQr::apply_qt(std::span<Real> v) const {
  const Index m = qr_.rows();
  const Index n = qr_.cols();
  for (Index k = 0; k < n; ++k) {
    const Real beta = beta_[static_cast<std::size_t>(k)];
    if (beta == Real{0}) continue;
    Real s = v[static_cast<std::size_t>(k)];
    for (Index i = k + 1; i < m; ++i) s += qr_(i, k) * v[static_cast<std::size_t>(i)];
    s *= beta;
    v[static_cast<std::size_t>(k)] -= s;
    for (Index i = k + 1; i < m; ++i) v[static_cast<std::size_t>(i)] -= s * qr_(i, k);
  }
}

// extdict-lint: allow(missing-shape-contract) internal helper, caller-validated
void HouseholderQr::back_substitute(std::span<Real> v) const {
  const Index n = qr_.cols();
  for (Index i = n - 1; i >= 0; --i) {
    Real s = v[static_cast<std::size_t>(i)];
    for (Index k = i + 1; k < n; ++k) s -= qr_(i, k) * v[static_cast<std::size_t>(k)];
    const Real d = qr_(i, i);
    if (d == Real{0}) {
      // Rank-deficient column: pick the minimum-norm-ish solution component.
      v[static_cast<std::size_t>(i)] = 0;
    } else {
      v[static_cast<std::size_t>(i)] = s / d;
    }
  }
}

Vector HouseholderQr::solve(std::span<const Real> b) const {
  EXTDICT_REQUIRE_SHAPE(static_cast<Index>(b.size()) == qr_.rows(),
                        "HouseholderQr::solve: |b|=" +
                            std::to_string(b.size()) + " but A has " +
                            std::to_string(qr_.rows()) + " rows");
  Vector v(b.begin(), b.end());
  apply_qt(v);
  back_substitute(v);
  v.resize(static_cast<std::size_t>(qr_.cols()));
  return v;
}

Matrix HouseholderQr::solve_many(const Matrix& b) const {
  EXTDICT_REQUIRE_SHAPE(b.rows() == qr_.rows(),
                        "HouseholderQr::solve_many: B has " +
                            std::to_string(b.rows()) + " rows but A has " +
                            std::to_string(qr_.rows()));
  Matrix x(qr_.cols(), b.cols());
  const Index cols = b.cols();
#pragma omp parallel for schedule(static) default(none) shared(b, x, cols) \
    if (cols > 8)
  for (Index j = 0; j < cols; ++j) {
    Vector v(b.col(j).begin(), b.col(j).end());
    apply_qt(v);
    back_substitute(v);
    for (Index i = 0; i < qr_.cols(); ++i) x(i, j) = v[static_cast<std::size_t>(i)];
  }
  return x;
}

Index HouseholderQr::rank(Real rel_tol) const {
  Real dmax = 0;
  for (Index i = 0; i < qr_.cols(); ++i) dmax = std::max(dmax, std::abs(qr_(i, i)));
  if (dmax == Real{0}) return 0;
  Index r = 0;
  for (Index i = 0; i < qr_.cols(); ++i) {
    if (std::abs(qr_(i, i)) > rel_tol * dmax) ++r;
  }
  return r;
}

// extdict-lint: allow(missing-shape-contract) shape-checked by HouseholderQr
Vector least_squares(const Matrix& a, std::span<const Real> b) {
  return HouseholderQr(a).solve(b);
}

}  // namespace extdict::la
