#pragma once

#include <span>

#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::la {

// ---------------------------------------------------------------------------
// BLAS level 1
// ---------------------------------------------------------------------------

/// y += alpha * x
void axpy(Real alpha, std::span<const Real> x, std::span<Real> y) noexcept;

/// x *= alpha
void scal(Real alpha, std::span<Real> x) noexcept;

/// Inner product <x, y>.
[[nodiscard]] Real dot(std::span<const Real> x, std::span<const Real> y) noexcept;

/// Euclidean norm ||x||_2 (overflow-safe scaled accumulation).
[[nodiscard]] Real nrm2(std::span<const Real> x) noexcept;

/// Index of max |x_i|; returns -1 for an empty span.
[[nodiscard]] Index iamax(std::span<const Real> x) noexcept;

// ---------------------------------------------------------------------------
// BLAS level 2
// ---------------------------------------------------------------------------

/// y = alpha * A * x + beta * y   (A is rows x cols, x sized cols, y rows).
void gemv(Real alpha, const Matrix& a, std::span<const Real> x, Real beta,
          std::span<Real> y);

/// y = alpha * A^T * x + beta * y  (x sized rows, y sized cols).
/// Column-major makes the transposed product the cache-friendly one: each
/// output element is a contiguous column dot product; parallelised over
/// columns with OpenMP.
void gemv_t(Real alpha, const Matrix& a, std::span<const Real> x, Real beta,
            std::span<Real> y);

// ---------------------------------------------------------------------------
// BLAS level 3
// ---------------------------------------------------------------------------

enum class Trans { kNo, kYes };

/// C = alpha * op(A) * op(B) + beta * C with op in {identity, transpose}.
/// Blocked over columns of C and parallelised with OpenMP.
void gemm(Real alpha, const Matrix& a, Trans ta, const Matrix& b, Trans tb,
          Real beta, Matrix& c);

/// Convenience: returns op(A) * op(B).
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b,
                            Trans ta = Trans::kNo, Trans tb = Trans::kNo);

/// Gram matrix A^T A (exploits symmetry: computes the upper triangle and
/// mirrors it).
[[nodiscard]] Matrix gram(const Matrix& a);

/// FLOP counters for the kernels above (multiply+add pairs counted as 2
/// FLOPs, matching the paper's accounting).
[[nodiscard]] constexpr std::uint64_t gemv_flops(Index rows, Index cols) noexcept {
  return 2ull * static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
}
[[nodiscard]] constexpr std::uint64_t gemm_flops(Index m, Index n, Index k) noexcept {
  return 2ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(k);
}

}  // namespace extdict::la
