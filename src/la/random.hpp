#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::la {

/// Deterministic RNG wrapper. All randomness in the library flows through
/// this type so every experiment is reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] Index uniform_index(Index lo, Index hi) {
    std::uniform_int_distribution<Index> d(lo, hi);
    return d(engine_);
  }

  [[nodiscard]] Real uniform(Real lo = 0, Real hi = 1) {
    std::uniform_real_distribution<Real> d(lo, hi);
    return d(engine_);
  }

  [[nodiscard]] Real gaussian(Real mean = 0, Real stddev = 1) {
    std::normal_distribution<Real> d(mean, stddev);
    return d(engine_);
  }

  // extdict-lint: allow(missing-shape-contract) any length is valid
  void fill_gaussian(std::span<Real> x, Real mean = 0, Real stddev = 1) {
    std::normal_distribution<Real> d(mean, stddev);
    for (Real& v : x) v = d(engine_);
  }

  // extdict-lint: allow(missing-shape-contract) any length is valid
  void fill_uniform(std::span<Real> x, Real lo = 0, Real hi = 1) {
    std::uniform_real_distribution<Real> d(lo, hi);
    for (Real& v : x) v = d(engine_);
  }

  /// `count` distinct indices drawn uniformly from [0, n), in random order.
  /// This is how ExD draws its dictionary columns (Alg. 1 step 0).
  [[nodiscard]] std::vector<Index> sample_without_replacement(Index n, Index count);

  /// Random permutation of [0, n).
  [[nodiscard]] std::vector<Index> permutation(Index n);

  /// Gaussian random matrix, optionally with unit-norm columns.
  [[nodiscard]] Matrix gaussian_matrix(Index rows, Index cols,
                                       bool normalize_columns = false);

  /// Derives an independent child RNG (e.g. one per SPMD rank) from this one.
  [[nodiscard]] Rng fork() {
    return Rng(static_cast<std::uint64_t>(engine_()) * 0x9e3779b97f4a7c15ULL + 1);
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace extdict::la
