#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/contracts.hpp"

namespace extdict::la {

Matrix Matrix::from_rows(std::initializer_list<std::initializer_list<Real>> rows) {
  const Index r = static_cast<Index>(rows.size());
  const Index c = r == 0 ? 0 : static_cast<Index>(rows.begin()->size());
  Matrix m(r, c);
  Index i = 0;
  for (const auto& row : rows) {
    if (static_cast<Index>(row.size()) != c) {
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    }
    Index j = 0;
    for (Real v : row) m(i, j++) = v;
    ++i;
  }
  return m;
}

// extdict-lint: allow(missing-shape-contract) any index count valid; per-index bounds throw std::out_of_range (tested API contract)
Matrix Matrix::select_columns(std::span<const Index> idx) const {
  Matrix out(rows_, static_cast<Index>(idx.size()));
  for (Index j = 0; j < out.cols(); ++j) {
    const Index src = idx[static_cast<std::size_t>(j)];
    if (src < 0 || src >= cols_) {
      throw std::out_of_range("Matrix::select_columns: index out of range");
    }
    auto s = col(src);
    std::copy(s.begin(), s.end(), out.col(j).begin());
  }
  return out;
}

// extdict-lint: allow(missing-shape-contract) any index count valid; per-index bounds throw std::out_of_range (tested API contract)
Matrix Matrix::select_rows(std::span<const Index> idx) const {
  Matrix out(static_cast<Index>(idx.size()), cols_);
  for (Index i = 0; i < out.rows(); ++i) {
    const Index src = idx[static_cast<std::size_t>(i)];
    if (src < 0 || src >= rows_) {
      throw std::out_of_range("Matrix::select_rows: index out of range");
    }
    for (Index j = 0; j < cols_; ++j) out(i, j) = (*this)(src, j);
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (Index j = 0; j < cols_; ++j) {
    for (Index i = 0; i < rows_; ++i) out(j, i) = (*this)(i, j);
  }
  return out;
}

void Matrix::append_columns(const Matrix& other) {
  if (other.empty()) return;
  EXTDICT_REQUIRE_SHAPE(rows_ == 0 || other.rows() == rows_,
                        "Matrix::append_columns: left has " +
                            std::to_string(rows_) + " rows, right has " +
                            std::to_string(other.rows()));
  if (rows_ == 0) rows_ = other.rows();
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  cols_ += other.cols();
}

Real Matrix::frobenius_norm() const noexcept {
  // Scaled accumulation to avoid overflow on large matrices.
  Real scale = 0, ssq = 1;
  for (Real v : data_) {
    if (v == Real{0}) continue;
    const Real a = std::abs(v);
    if (scale < a) {
      ssq = 1 + ssq * (scale / a) * (scale / a);
      scale = a;
    } else {
      ssq += (a / scale) * (a / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

void Matrix::normalize_columns() {
  for (Index j = 0; j < cols_; ++j) {
    auto c = col(j);
    Real ss = 0;
    for (Real v : c) ss += v * v;
    const Real norm = std::sqrt(ss);
    if (norm > Real{0}) {
      for (Real& v : c) v /= norm;
    }
  }
}

Real max_abs_diff(const Matrix& a, const Matrix& b) {
  EXTDICT_REQUIRE_SHAPE(a.rows() == b.rows() && a.cols() == b.cols(),
                        "max_abs_diff: a is " +
                            util::shape_string(a.rows(), a.cols()) +
                            ", b is " + util::shape_string(b.rows(), b.cols()));
  Real m = 0;
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

}  // namespace extdict::la
